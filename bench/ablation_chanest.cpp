// ABLATION — channel-estimate smoothing. The paper's SPW demo receiver
// performs "channel correction"; whether the LS estimate from the long
// training field should be smoothed across carriers depends on the
// channel: smoothing averages out estimation noise (good on a near-flat
// front-end response) but biases the estimate when the channel is
// frequency-selective (multipath). This bench quantifies both sides.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

using namespace wlansim;

core::BerResult run(std::size_t smoothing, bool multipath, double snr,
                    std::size_t packets) {
  core::LinkConfig cfg = core::default_link_config();
  // Idealized front-end: isolates the channel-estimation question from the
  // Chebyshev ripple of the RF chain (which is itself frequency-selective
  // enough to bias a smoothed estimate — that is part of the finding).
  cfg.rf_engine = core::RfEngine::kNone;
  cfg.rate = phy::Rate::kMbps12;  // QPSK: estimation noise dominates low SNR
  cfg.snr_db = snr;
  cfg.receiver.chanest_smoothing = smoothing;
  if (multipath) {
    cfg.fading = channel::environment_config(channel::Environment::kOpenSpace);
  }
  core::WlanLink link(cfg);
  return link.run_ber(packets);
}

}  // namespace

int main() {
  bench::banner("ABL-CHANEST", "channel-estimate smoothing (ablation)",
                "smoothing helps on a flat channel (less estimation "
                "noise), hurts under multipath (biased estimate)");

  const std::size_t packets = 10;

  std::printf("flat channel, QPSK at 7 dB SNR (estimation noise "
              "dominates):\n");
  std::printf("%10s  %10s  %8s\n", "window", "ber", "evm%");
  double evm_flat_1 = 0.0, evm_flat_5 = 0.0;
  for (std::size_t w : {1u, 3u, 5u}) {
    const core::BerResult r = run(w, false, 7.0, packets);
    std::printf("%10zu  %10.2e  %8.2f\n", w, r.ber(), 100.0 * r.evm_rms_avg);
    if (w == 1) evm_flat_1 = r.evm_rms_avg;
    if (w == 5) evm_flat_5 = r.evm_rms_avg;
  }

  std::printf("\n150 ns RMS multipath, QPSK at 25 dB SNR:\n");
  std::printf("%10s  %10s  %8s  %8s\n", "window", "ber", "per", "evm%");
  double evm_mp_1 = 0.0, evm_mp_5 = 0.0;
  for (std::size_t w : {1u, 3u, 5u}) {
    const core::BerResult r = run(w, true, 25.0, packets);
    std::printf("%10zu  %10.2e  %8.2f  %8.2f\n", w, r.ber(), r.per(),
                100.0 * r.evm_rms_avg);
    if (w == 1) evm_mp_1 = r.evm_rms_avg;
    if (w == 5) evm_mp_5 = r.evm_rms_avg;
  }

  const bool helps_flat = evm_flat_5 < evm_flat_1;
  const bool hurts_multipath = evm_mp_5 >= evm_mp_1;
  std::printf("\nsmoothing helps on flat channel: %s; does not help under "
              "multipath: %s\n", helps_flat ? "yes" : "NO",
              hurts_multipath ? "yes" : "NO");
  const bool ok = helps_flat && hurts_multipath;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
