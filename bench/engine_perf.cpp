// PERF — paper §4.1/§6: "the simulator is able to analyze very large
// systems in a sufficient time. It provides simulations in interpreted or
// compiled mode. The compiled mode (SPB-C) is suggested for long
// simulation times."
//
// Google-benchmark microbenches of the engine and the hot kernels.
#include <benchmark/benchmark.h>

#include "core/link.h"
#include "core/experiments.h"
#include "dsp/fft.h"
#include "dsp/rng.h"
#include "phy80211a/convcode.h"
#include "phy80211b/chips.h"
#include "rf/receiver_chain.h"
#include "sim/graph.h"

namespace {

using namespace wlansim;

void BM_Fft64(benchmark::State& state) {
  dsp::Fft fft(64);
  dsp::Rng rng(1);
  dsp::CVec x(64);
  for (auto& v : x) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    fft.forward(std::span<dsp::Cplx>(x));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft64);

void BM_ViterbiDecode(benchmark::State& state) {
  dsp::Rng rng(2);
  phy::Bits info(static_cast<std::size_t>(state.range(0)));
  for (auto& b : info) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < 6; ++i) info.push_back(0);
  const phy::Bits coded = phy::convolutional_encode(info);
  phy::SoftBits soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = coded[i] ? -1.0 : 1.0;
  for (auto _ : state) {
    auto out = phy::viterbi_decode(soft);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(info.size()));
}
BENCHMARK(BM_ViterbiDecode)->Arg(1024)->Arg(4096);

void BM_RfChainThroughput(benchmark::State& state) {
  rf::DoubleConversionConfig cfg;
  rf::DoubleConversionReceiver rx(cfg, dsp::Rng(3));
  dsp::Rng rng(4);
  dsp::CVec in(4096);
  for (auto& v : in) v = 1e-4 * rng.cgaussian(1.0);
  for (auto _ : state) {
    auto out = rx.process(in);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RfChainThroughput);

/// The SPW interpreted-vs-compiled comparison on a representative graph.
void run_graph(sim::ExecutionMode mode) {
  dsp::Rng rng(5);
  dsp::CVec wave(8192);
  for (auto& v : wave) v = rng.cgaussian(1e-6);
  sim::Graph g;
  auto* src = g.add<sim::SourceNode>("src", std::move(wave));
  auto* up = g.add<sim::UpsampleNode>("up", 4);
  auto* gain = g.add<sim::GainNode>("gain", dsp::Cplx{0.5, 0.0});
  auto* down = g.add<sim::DecimateNode>("down", 4);
  auto* sink = g.add<sim::SinkNode>("sink");
  g.connect(src, up);
  g.connect(up, gain);
  g.connect(gain, down);
  g.connect(down, sink);
  g.run(mode, 512);
  benchmark::DoNotOptimize(sink->data().data());
}

void BM_GraphCompiled(benchmark::State& state) {
  for (auto _ : state) run_graph(sim::ExecutionMode::kCompiled);
}
BENCHMARK(BM_GraphCompiled);

void BM_GraphInterpreted(benchmark::State& state) {
  for (auto _ : state) run_graph(sim::ExecutionMode::kInterpreted);
}
BENCHMARK(BM_GraphInterpreted);

void BM_BarkerMatchedFilter(benchmark::State& state) {
  dsp::Rng rng(6);
  dsp::CVec rx(8192);
  for (auto& v : rx) v = rng.cgaussian(1.0);
  const auto& b = phy11b::barker_sequence();
  for (auto _ : state) {
    dsp::Cplx acc_total{0.0, 0.0};
    for (std::size_t n = 0; n + phy11b::kBarkerLen <= rx.size(); ++n) {
      dsp::Cplx acc{0.0, 0.0};
      for (std::size_t k = 0; k < phy11b::kBarkerLen; ++k)
        acc += rx[n + k] * b[k];
      acc_total += acc;
    }
    benchmark::DoNotOptimize(acc_total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rx.size()));
}
BENCHMARK(BM_BarkerMatchedFilter);

void BM_Cck64Correlator(benchmark::State& state) {
  // One 11 Mbps CCK symbol decision: 64 codeword correlations of 8 chips.
  dsp::Rng rng(7);
  std::vector<dsp::CVec> codes;
  for (int v = 0; v < 64; ++v) {
    codes.push_back(phy11b::cck_codeword(
        0.0, phy11b::cck_dibit_phase(v & 1, (v >> 1) & 1),
        phy11b::cck_dibit_phase((v >> 2) & 1, (v >> 3) & 1),
        phy11b::cck_dibit_phase((v >> 4) & 1, (v >> 5) & 1)));
  }
  dsp::CVec sym(phy11b::kCckLen);
  for (auto& v : sym) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    double best = -1.0;
    for (const auto& c : codes) {
      dsp::Cplx acc{0.0, 0.0};
      for (std::size_t k = 0; k < phy11b::kCckLen; ++k)
        acc += sym[k] * std::conj(c[k]);
      best = std::max(best, std::norm(acc));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Cck64Correlator);

void BM_FullPacketSystemLevel(benchmark::State& state) {
  core::LinkConfig cfg = core::default_link_config();
  core::WlanLink link(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto r = link.run_packet(i++);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_FullPacketSystemLevel);

}  // namespace

BENCHMARK_MAIN();
