// PERF — paper §4.1/§6: "the simulator is able to analyze very large
// systems in a sufficient time. It provides simulations in interpreted or
// compiled mode. The compiled mode (SPB-C) is suggested for long
// simulation times."
//
// Google-benchmark microbenches of the engine and the hot kernels.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <thread>

#include "core/experiments.h"
#include "core/link.h"
#include "core/parallel.h"
#include "core/surrogate.h"
#include "dsp/fft.h"
#include "dsp/rng.h"
#include "phy80211a/convcode.h"
#include "phy80211a/preamble.h"
#include "phy80211a/receiver.h"
#include "phy80211a/sync.h"
#include "phy80211a/transmitter.h"
#include "phy80211b/chips.h"
#include "rf/receiver_chain.h"
#include "scenario/drop.h"
#include "service/scheduler.h"
#include "service/shard.h"
#include "sim/graph.h"
#include "testsupport/alloc_hook.h"

namespace {

using namespace wlansim;

void BM_Fft64(benchmark::State& state) {
  dsp::Fft fft(64);
  dsp::Rng rng(1);
  dsp::CVec x(64);
  for (auto& v : x) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    fft.forward(std::span<dsp::Cplx>(x));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft64);

void BM_Fft64OutOfPlace(benchmark::State& state) {
  // The plan the per-symbol OFDM (de)modulator runs: bit-reversed copy into
  // a caller buffer, no permutation pass, no allocation.
  dsp::Fft fft(64);
  dsp::Rng rng(1);
  dsp::CVec x(64), y(64);
  for (auto& v : x) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    fft.forward(std::span<const dsp::Cplx>(x), std::span<dsp::Cplx>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft64OutOfPlace);

void BM_FftBatch64(benchmark::State& state) {
  // The batch plan the symbol engine runs: m stacked 64-point transforms
  // through one twiddle walk, rows lifted at OFDM symbol stride (80).
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(64);
  dsp::Rng rng(1);
  dsp::CVec x((m - 1) * 80 + 64), y(m * 64);
  for (auto& v : x) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    fft.forward_batch(x.data(), 80, y.data(), m);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(m));
}
BENCHMARK(BM_FftBatch64)->Arg(8)->Arg(32);

void BM_TxModulateBatch(benchmark::State& state) {
  // Full DATA-field modulation on the batched pipeline (fused
  // interleave+map gather, one batch IFFT, one-pass CP assembly).
  dsp::Rng rng(9);
  phy::Transmitter tx;
  const phy::Frame f{phy::Rate::kMbps54, phy::random_bytes(1000, rng)};
  for (auto _ : state) {
    auto w = tx.modulate(f);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxModulateBatch);

void BM_RxDataSymbolsBatch(benchmark::State& state) {
  // Full receive of a long 54 Mbps frame — dominated by the fused batch
  // data path (batch FFT, vectorized equalize, demap scattered straight
  // into decoder order, Viterbi).
  dsp::Rng rng(10);
  phy::Transmitter tx;
  const dsp::CVec frame =
      tx.modulate({phy::Rate::kMbps54, phy::random_bytes(1000, rng)});
  dsp::CVec rx(200, dsp::Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.begin(), frame.end());
  rx.insert(rx.end(), 80, dsp::Cplx{0.0, 0.0});
  const phy::Receiver receiver;
  for (auto _ : state) {
    auto res = receiver.receive(rx);
    benchmark::DoNotOptimize(&res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RxDataSymbolsBatch);

void BM_ViterbiDecode(benchmark::State& state) {
  dsp::Rng rng(2);
  phy::Bits info(static_cast<std::size_t>(state.range(0)));
  for (auto& b : info) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < 6; ++i) info.push_back(0);
  const phy::Bits coded = phy::convolutional_encode(info);
  phy::SoftBits soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = coded[i] ? -1.0 : 1.0;
  for (auto _ : state) {
    auto out = phy::viterbi_decode(soft);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(info.size()));
}
BENCHMARK(BM_ViterbiDecode)->Arg(1024)->Arg(4096);

void BM_RfChainThroughput(benchmark::State& state) {
  rf::DoubleConversionConfig cfg;
  rf::DoubleConversionReceiver rx(cfg, dsp::Rng(3));
  dsp::Rng rng(4);
  dsp::CVec in(4096);
  for (auto& v : in) v = 1e-4 * rng.cgaussian(1.0);
  for (auto _ : state) {
    auto out = rx.process(in);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RfChainThroughput);

void BM_RfChainSteadyState(benchmark::State& state) {
  // Same chain, caller-provided output buffer: the zero-allocation contract
  // the packet hot path relies on. `allocs_per_call` must read 0.
  rf::DoubleConversionConfig cfg;
  rf::DoubleConversionReceiver rx(cfg, dsp::Rng(3));
  dsp::Rng rng(4);
  dsp::CVec in(4096), out;
  for (auto& v : in) v = 1e-4 * rng.cgaussian(1.0);
  rx.process_into(in, out);  // warm up the scratch buffers
  testhook::reset_allocation_count();
  for (auto _ : state) {
    rx.process_into(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["allocs_per_call"] = benchmark::Counter(
      static_cast<double>(testhook::allocation_count()),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RfChainSteadyState);

void BM_RfChainFused(benchmark::State& state) {
  // The fused ChainExecutor path: L1-sized tiles pushed through the whole
  // cascade so each sample is touched once while hot in cache. Compare
  // against BM_RfChainBlockwise — same blocks, same arithmetic, different
  // traversal order.
  rf::DoubleConversionConfig cfg;
  rf::DoubleConversionReceiver rx(cfg, dsp::Rng(3));
  dsp::Rng rng(4);
  dsp::CVec in(65536), out;
  for (auto& v : in) v = 1e-4 * rng.cgaussian(1.0);
  rx.process_into(in, out);  // warm up the tile buffers
  for (auto _ : state) {
    rx.process_into(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(in.size()));
}
BENCHMARK(BM_RfChainFused);

void BM_RfChainBlockwise(benchmark::State& state) {
  // Reference block-at-a-time traversal: every stage streams the full
  // buffer before the next one starts (N x buffer memory traffic). Produces
  // bit-identical output to the fused path.
  rf::DoubleConversionConfig cfg;
  rf::DoubleConversionReceiver rx(cfg, dsp::Rng(3));
  dsp::Rng rng(4);
  dsp::CVec in(65536), out;
  for (auto& v : in) v = 1e-4 * rng.cgaussian(1.0);
  rx.process_blockwise_into(in, out);
  for (auto _ : state) {
    rx.process_blockwise_into(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(in.size()));
}
BENCHMARK(BM_RfChainBlockwise);

void BM_SyncDetect(benchmark::State& state) {
  // Packet detection + long-training fine timing over a realistic frame:
  // a noise lead, the full 802.11a preamble, and a noise-like payload. This
  // is the O(N) sliding-window path; the O(N*W) references stay available
  // as detect_packet_reference / locate_long_training_reference.
  dsp::Rng rng(8);
  const dsp::CVec pre = phy::full_preamble();
  dsp::CVec sig;
  sig.reserve(8192);
  for (std::size_t i = 0; i < 512; ++i)
    sig.push_back(rng.cgaussian(1e-3));
  for (const auto& v : pre) sig.push_back(v + rng.cgaussian(1e-3));
  while (sig.size() < 8192) sig.push_back(rng.cgaussian(0.3));
  for (auto _ : state) {
    auto det = phy::detect_packet(sig);
    benchmark::DoNotOptimize(&det);
    if (det) {
      auto lts = phy::locate_long_training(sig, det->detect_index,
                                           det->detect_index + 400);
      benchmark::DoNotOptimize(&lts);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(sig.size()));
}
BENCHMARK(BM_SyncDetect);

/// The SPW interpreted-vs-compiled comparison on a representative graph.
void run_graph(sim::ExecutionMode mode) {
  dsp::Rng rng(5);
  dsp::CVec wave(8192);
  for (auto& v : wave) v = rng.cgaussian(1e-6);
  sim::Graph g;
  auto* src = g.add<sim::SourceNode>("src", std::move(wave));
  auto* up = g.add<sim::UpsampleNode>("up", 4);
  auto* gain = g.add<sim::GainNode>("gain", dsp::Cplx{0.5, 0.0});
  auto* down = g.add<sim::DecimateNode>("down", 4);
  auto* sink = g.add<sim::SinkNode>("sink");
  g.connect(src, up);
  g.connect(up, gain);
  g.connect(gain, down);
  g.connect(down, sink);
  g.run(mode, 512);
  benchmark::DoNotOptimize(sink->data().data());
}

void BM_GraphCompiled(benchmark::State& state) {
  for (auto _ : state) run_graph(sim::ExecutionMode::kCompiled);
}
BENCHMARK(BM_GraphCompiled);

void BM_GraphInterpreted(benchmark::State& state) {
  for (auto _ : state) run_graph(sim::ExecutionMode::kInterpreted);
}
BENCHMARK(BM_GraphInterpreted);

void BM_BarkerMatchedFilter(benchmark::State& state) {
  dsp::Rng rng(6);
  dsp::CVec rx(8192);
  for (auto& v : rx) v = rng.cgaussian(1.0);
  const auto& b = phy11b::barker_sequence();
  {
    // One-shot check that the split-accumulator form is bit-identical to
    // the original complex accumulation.
    dsp::Cplx ref{0.0, 0.0};
    double re = 0.0, im = 0.0;
    for (std::size_t k = 0; k < phy11b::kBarkerLen; ++k) {
      ref += rx[k] * b[k];
      re += rx[k].real() * b[k];
      im += rx[k].imag() * b[k];
    }
    if (ref.real() != re || ref.imag() != im) {
      state.SkipWithError("split accumulators diverged from complex form");
      return;
    }
  }
  for (auto _ : state) {
    // Separate real/imag accumulators: complex += chains one dependent
    // complex add per tap, which blocks vectorization; two independent
    // double chains produce the same values (complex add and
    // complex-times-real are both componentwise) and pipeline freely.
    double tot_re = 0.0, tot_im = 0.0;
    for (std::size_t n = 0; n + phy11b::kBarkerLen <= rx.size(); ++n) {
      double re = 0.0, im = 0.0;
      for (std::size_t k = 0; k < phy11b::kBarkerLen; ++k) {
        re += rx[n + k].real() * b[k];
        im += rx[n + k].imag() * b[k];
      }
      tot_re += re;
      tot_im += im;
    }
    dsp::Cplx acc_total{tot_re, tot_im};
    benchmark::DoNotOptimize(acc_total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rx.size()));
}
BENCHMARK(BM_BarkerMatchedFilter);

void BM_Cck64Correlator(benchmark::State& state) {
  // One 11 Mbps CCK symbol decision: 64 codeword correlations of 8 chips.
  dsp::Rng rng(7);
  std::vector<dsp::CVec> codes;
  for (int v = 0; v < 64; ++v) {
    codes.push_back(phy11b::cck_codeword(
        0.0, phy11b::cck_dibit_phase(v & 1, (v >> 1) & 1),
        phy11b::cck_dibit_phase((v >> 2) & 1, (v >> 3) & 1),
        phy11b::cck_dibit_phase((v >> 4) & 1, (v >> 5) & 1)));
  }
  dsp::CVec sym(phy11b::kCckLen);
  for (auto& v : sym) v = rng.cgaussian(1.0);
  {
    dsp::Cplx ref{0.0, 0.0};
    double re = 0.0, im = 0.0;
    for (std::size_t k = 0; k < phy11b::kCckLen; ++k) {
      ref += sym[k] * std::conj(codes[0][k]);
      const double sr = sym[k].real(), si = sym[k].imag();
      const double cr = codes[0][k].real(), ci = codes[0][k].imag();
      re += sr * cr + si * ci;
      im += si * cr - sr * ci;
    }
    if (ref.real() != re || ref.imag() != im ||
        std::norm(ref) != re * re + im * im) {
      state.SkipWithError("split accumulators diverged from complex form");
      return;
    }
  }
  for (auto _ : state) {
    double best = -1.0;
    for (const auto& c : codes) {
      // sym[k] * conj(c[k]) accumulated on independent real/imag chains —
      // exactly the (ac+bd, bc-ad) the complex operator* computes, minus
      // the loop-carried complex dependency.
      double re = 0.0, im = 0.0;
      for (std::size_t k = 0; k < phy11b::kCckLen; ++k) {
        const double sr = sym[k].real(), si = sym[k].imag();
        const double cr = c[k].real(), ci = c[k].imag();
        re += sr * cr + si * ci;
        im += si * cr - sr * ci;
      }
      best = std::max(best, re * re + im * im);
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Cck64Correlator);

void BM_FullPacketSystemLevel(benchmark::State& state) {
  core::LinkConfig cfg = core::default_link_config();
  core::WlanLink link(cfg);
  link.run_packet(0);  // warm up the workspace
  testhook::reset_allocation_count();
  std::uint64_t i = 1;
  for (auto _ : state) {
    auto r = link.run_packet(i++);
    benchmark::DoNotOptimize(&r);
  }
  // Steady-state heap traffic of one packet (TX/RX bit pipeline only once
  // the workspace is warm; the oversampled scene allocates nothing).
  state.counters["allocs_per_packet"] = benchmark::Counter(
      static_cast<double>(testhook::allocation_count()),
      benchmark::Counter::kAvgIterations);
  state.counters["alloc_kb_per_packet"] = benchmark::Counter(
      static_cast<double>(testhook::allocation_bytes()) / 1024.0,
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullPacketSystemLevel);

void BM_FullPacketGraphPath(benchmark::State& state) {
  // The dataflow-graph reference on the identical configuration — the
  // pre-optimization packet cost, kept for regression tracking.
  core::LinkConfig cfg = core::default_link_config();
  cfg.packet_path = core::PacketPath::kGraph;
  core::WlanLink link(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto r = link.run_packet(i++);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_FullPacketGraphPath);

void BM_BerSweepParallel(benchmark::State& state) {
  // An 8-point SNR sweep, 50 packets per point, on the persistent pool —
  // the paper's Fig. 5/6 measurement shape.
  core::LinkConfig base = core::default_link_config();
  base.psdu_bytes = 100;
  std::vector<core::LinkConfig> points;
  for (int k = 0; k < 8; ++k) {
    core::LinkConfig c = base;
    c.snr_db = 14.0 + 2.0 * k;
    points.push_back(c);
  }
  for (auto _ : state) {
    const auto sweep = core::sweep_ber_parallel(points, 50);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 50);
}
BENCHMARK(BM_BerSweepParallel)->Unit(benchmark::kMillisecond)->Iterations(1);

std::vector<core::LinkConfig> waterfall_points() {
  // The paper's §4.1 verification shape: TX PA at finite backoff, adjacent
  // -channel interferer at +16 dB (§2.2 spec), SNR swept across the
  // waterfall. Every point shares the TX-and-channel half, which is what
  // the memoized sweep caches.
  core::LinkConfig base = core::default_link_config();
  base.psdu_bytes = 100;
  base.tx_pa_backoff_db = 8.0;
  base.interferer =
      channel::InterfererConfig{.offset_hz = 20e6, .level_db = 16.0};
  std::vector<core::LinkConfig> points;
  for (int k = 0; k < 8; ++k) {
    core::LinkConfig c = base;
    c.snr_db = 14.0 + 2.0 * k;
    points.push_back(c);
  }
  return points;
}

void BM_BerWaterfallMemoized(benchmark::State& state) {
  // The same 8 x 50 waterfall with TX-scene memoization: each packet's
  // pre-noise scene (TX chain, upsampling, impairments) is built at one SNR
  // point and replayed at the other seven. Bit-identical to the unmemoized
  // sweep below.
  const auto points = waterfall_points();
  core::SweepOptions opts;
  opts.memoize_tx = true;
  for (auto _ : state) {
    const auto sweep = core::sweep_ber_parallel(points, 50, opts);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 50);
}
BENCHMARK(BM_BerWaterfallMemoized)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_BerWaterfallUnmemoized(benchmark::State& state) {
  // Reference: every point rebuilds every packet from scratch.
  const auto points = waterfall_points();
  core::SweepOptions opts;
  opts.memoize_tx = false;
  for (auto _ : state) {
    const auto sweep = core::sweep_ber_parallel(points, 50, opts);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 50);
}
BENCHMARK(BM_BerWaterfallUnmemoized)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

std::vector<core::LinkConfig> deep_waterfall_points() {
  // An 8-point waterfall reaching into the deep-SNR tail: the noisy points
  // collect their error quota within a wave or two while the clean tail is
  // the only place the packet cap binds. This asymmetry is exactly what the
  // adaptive engine exploits.
  core::LinkConfig base = core::default_link_config();
  base.psdu_bytes = 100;
  std::vector<core::LinkConfig> points;
  for (int k = 0; k < 8; ++k) {
    core::LinkConfig c = base;
    c.snr_db = 6.0 + static_cast<double>(k);
    points.push_back(c);
  }
  return points;
}

sim::StoppingRule deep_waterfall_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.25;
  rule.min_errors = 50;
  rule.min_packets = 8;
  rule.max_packets = 768;
  return rule;
}

void BM_BerSweepAdaptive(benchmark::State& state) {
  // Early-stopping sweep over the deep waterfall: each point runs until its
  // Wilson 95 % CI is within 25 % of the BER estimate (with >= 50 errors)
  // or the 256-packet cap. Compare against BM_BerSweepFixedBudget, which
  // spends the cap on every point — the budget the binding tail point
  // needs — for the same-or-looser interval everywhere.
  const auto points = deep_waterfall_points();
  const sim::StoppingRule rule = deep_waterfall_rule();
  std::size_t packets = 0, converged = 0;
  for (auto _ : state) {
    const auto sweep = core::sweep_ber_adaptive(points, rule);
    benchmark::DoNotOptimize(sweep.data());
    packets = 0;
    converged = 0;
    for (const auto& r : sweep) {
      packets += r.packets;
      if (r.converged) ++converged;
    }
  }
  state.counters["packets"] = static_cast<double>(packets);
  state.counters["converged_points"] = static_cast<double>(converged);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(packets));
}
BENCHMARK(BM_BerSweepAdaptive)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BerSweepFixedBudget(benchmark::State& state) {
  // The fixed-budget reference on the identical points: every point pays
  // the full packet cap whether it needs it or not.
  const auto points = deep_waterfall_points();
  const std::size_t budget = deep_waterfall_rule().max_packets;
  for (auto _ : state) {
    const auto sweep = core::sweep_ber_parallel(points, budget);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.counters["packets"] = static_cast<double>(8 * budget);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(8 * budget));
}
BENCHMARK(BM_BerSweepFixedBudget)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Per-process scratch calibration store so bench runs never touch (or
/// depend on) the user's real ~/.cache store.
std::filesystem::path bench_calib_dir() {
  return std::filesystem::temp_directory_path() /
         ("wlansim-bench-calib-" + std::to_string(::getpid()));
}

core::SurrogateOptions bench_surrogate_opts() {
  core::SurrogateOptions opts;
  opts.store_dir = bench_calib_dir();
  opts.axis = sim::SurrogateAxis::kSnrDb;
  opts.rule = deep_waterfall_rule();
  opts.grid_step = 1.0;
  opts.grid_pad = 0.0;
  return opts;
}

void BM_SurrogateCalibrateCold(benchmark::State& state) {
  // One-time cost of the surrogate: calibrate the deep-waterfall curve from
  // an empty store. grid_step 1 / pad 0 over [6, 13] puts the 8 knots on
  // exactly the BM_BerSweepAdaptive points, so cold calibration should cost
  // about one adaptive sweep plus the store write.
  const core::LinkConfig base = deep_waterfall_points()[0];
  const core::SurrogateOptions opts = bench_surrogate_opts();
  for (auto _ : state) {
    std::filesystem::remove_all(opts.store_dir);
    const auto curve = core::calibrate_ber_surrogate(base, 6.0, 13.0, opts);
    if (curve.points.size() != 8) {
      state.SkipWithError("expected 8 calibration knots");
      return;
    }
    benchmark::DoNotOptimize(curve.points.data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SurrogateCalibrateCold)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SurrogateQueryWarm(benchmark::State& state) {
  // The payoff: a 40-point waterfall query against the warm store — one
  // store read plus interpolation, zero Monte-Carlo packets (miss policy
  // kError guarantees it). Target: >= 100x faster than BM_BerSweepAdaptive
  // measuring the same span with packets.
  const core::LinkConfig base = deep_waterfall_points()[0];
  core::SurrogateOptions opts = bench_surrogate_opts();
  std::filesystem::remove_all(opts.store_dir);
  core::calibrate_ber_surrogate(base, 6.0, 13.0, opts);  // warm the store
  opts.miss_policy = core::SurrogateMissPolicy::kError;

  std::vector<core::LinkConfig> points;
  for (int k = 0; k < 40; ++k) {
    core::LinkConfig c = base;
    c.snr_db = 6.0 + 7.0 * static_cast<double>(k) / 39.0;
    points.push_back(c);
  }
  for (auto _ : state) {
    try {
      const auto sweep = core::sweep_ber_surrogate(points, opts);
      benchmark::DoNotOptimize(sweep.data());
    } catch (const std::exception& e) {
      state.SkipWithError(e.what());
      return;
    }
  }
  std::filesystem::remove_all(opts.store_dir);
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_SurrogateQueryWarm)->Unit(benchmark::kMillisecond)->Iterations(1);

scenario::DropConfig bench_drop_config() {
  // A 256-station, 2-step drop whose SNRs collapse onto ~15 one-dB bins:
  // the network-scale workload of the drop engine. The loose rule keeps the
  // cold pooled pass to a few waves; max_packets bounds the error-free
  // high-SNR bins.
  scenario::DropConfig cfg;
  cfg.num_stations = 256;
  cfg.num_steps = 2;
  cfg.area_half_m = 60.0;
  cfg.link = core::default_link_config();
  cfg.link.psdu_bytes = 60;
  cfg.snr_bin_db = 1.0;
  cfg.snr_min_db = 2.0;
  cfg.snr_max_db = 14.0;
  cfg.rule.target_rel_ci = 0.5;
  cfg.rule.min_errors = 20;
  cfg.rule.min_packets = 8;
  cfg.rule.max_packets = 48;
  cfg.store_dir = bench_calib_dir() / "drop";
  return cfg;
}

void BM_DropThroughputCold(benchmark::State& state) {
  // Empty store: every distinct (fingerprint, SNR-bin) key pays one pooled
  // adaptive Monte-Carlo evaluation; stations/sec here is the floor the
  // warm path is measured against.
  const scenario::DropConfig cfg = bench_drop_config();
  for (auto _ : state) {
    std::filesystem::remove_all(cfg.store_dir);
    const scenario::DropSummary s = scenario::run_drop(cfg, {});
    if (s.totals.warm + s.totals.cold != s.totals.distinct) {
      state.SkipWithError("dedup stats inconsistent");
      return;
    }
    benchmark::DoNotOptimize(s.totals.queries);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(cfg.num_stations * cfg.num_steps));
}
BENCHMARK(BM_DropThroughputCold)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_DropThroughputWarm(benchmark::State& state) {
  // The payoff: the identical drop against the store the cold run filled —
  // every station-step answered by curve interpolation, zero Monte-Carlo
  // packets. Target: >= 100x the cold stations/sec.
  const scenario::DropConfig cfg = bench_drop_config();
  std::filesystem::remove_all(cfg.store_dir);
  scenario::run_drop(cfg, {});  // warm the store
  for (auto _ : state) {
    const scenario::DropSummary s = scenario::run_drop(cfg, {});
    if (s.totals.cold != 0) {
      state.SkipWithError("warm drop hit a cold key");
      return;
    }
    benchmark::DoNotOptimize(s.totals.queries);
  }
  std::filesystem::remove_all(cfg.store_dir);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(cfg.num_stations * cfg.num_steps));
}
BENCHMARK(BM_DropThroughputWarm)->Unit(benchmark::kMillisecond)->Iterations(1);

// --- Simulation service: cross-request coalescing, warm-query latency ------

sim::StoppingRule service_bench_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.5;
  rule.min_errors = 20;
  rule.min_packets = 8;
  rule.max_packets = 48;
  return rule;
}

service::JobRequest service_bench_job(double snr_from, double snr_to) {
  service::JobRequest req;
  core::LinkConfig base = core::default_link_config();
  base.psdu_bytes = 60;
  for (double snr = snr_from; snr <= snr_to + 1e-9; snr += 1.0) {
    core::LinkConfig c = base;
    c.snr_db = snr;
    req.configs.push_back(c);
  }
  req.rule = service_bench_rule();
  req.bin_width_db = 0.0;
  req.use_store = true;
  return req;
}

void BM_ServiceColdCoalesced(benchmark::State& state) {
  // Four concurrent clients submit overlapping 8-point sweeps against an
  // empty store while the engine is held; releasing it drains all four into
  // ONE pooled pass. 32 queries collapse to 11 distinct cold points — the
  // in-bench gate fails the run if pooling ever does as much Monte-Carlo
  // work as four independent cold evaluations would.
  const std::filesystem::path dir = bench_calib_dir() / "service-cold";
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    service::Scheduler::Options opts;
    opts.store_dir = dir;
    opts.start_paused = true;
    service::Scheduler sched(opts);
    std::vector<std::future<service::JobResult>> futs;
    std::size_t independent_cold = 0;
    for (int j = 0; j < 4; ++j) {
      service::JobRequest req =
          service_bench_job(4.0 + j, 11.0 + j);  // heavy pairwise overlap
      independent_cold += req.configs.size();
      futs.push_back(sched.submit(std::move(req)));
    }
    sched.resume();
    for (auto& f : futs) benchmark::DoNotOptimize(f.get().results.data());
    const service::SchedulerStats st = sched.stats();
    if (st.batches != 1 || st.groups != 1) {
      state.SkipWithError("jobs did not coalesce into one pooled pass");
      return;
    }
    if (st.dedup.cold >= independent_cold) {
      state.SkipWithError(
          "pooled pass did not beat 4 independent cold runs");
      return;
    }
    sched.stop();
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ServiceColdCoalesced)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ServiceWarmQuery(benchmark::State& state) {
  // The payoff: resubmitting a sweep the store has already measured is a
  // fingerprint lookup plus curve interpolation per point — no Monte-Carlo
  // packets. The cold pass that fills the store is timed in-bench as the
  // reference; the gate fails the run unless warm is >= 100x faster.
  const std::filesystem::path dir = bench_calib_dir() / "service-warm";
  std::filesystem::remove_all(dir);
  service::Scheduler::Options opts;
  opts.store_dir = dir;
  service::Scheduler sched(opts);

  const auto t0 = std::chrono::steady_clock::now();
  sched.submit(service_bench_job(4.0, 14.0)).get();  // fill the store
  const double cold_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  double warm_s = 0.0;
  for (auto _ : state) {
    const auto w0 = std::chrono::steady_clock::now();
    const service::JobResult r =
        sched.submit(service_bench_job(4.0, 14.0)).get();
    warm_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
    for (const core::BerResult& p : r.results) {
      if (!p.from_surrogate) {
        state.SkipWithError("warm query fell back to Monte-Carlo");
        return;
      }
    }
    benchmark::DoNotOptimize(r.results.data());
  }
  if (warm_s * 100.0 > cold_s * static_cast<double>(state.iterations())) {
    state.SkipWithError("warm query not >=100x faster than the cold pass");
    return;
  }
  state.counters["cold_ms"] = 1e3 * cold_s;
  state.counters["speedup"] =
      cold_s * static_cast<double>(state.iterations()) / warm_s;
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * 11);
}
BENCHMARK(BM_ServiceWarmQuery)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ShardedColdSweep(benchmark::State& state) {
  // One pooled cold pass fanned out across N worker processes
  // (service/shard.h) and merged back. The in-process single-threaded
  // sweep is timed first: it is both the bit-identity oracle (the merged
  // results must match it exactly) and the wall-time baseline for the
  // speedup counter. The >=1.6x gate at 2 workers only applies on
  // multi-core hosts — on one core, two worker processes time-slice one
  // CPU and honestly measure the fan-out overhead instead.
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  std::vector<core::LinkConfig> links;
  for (int i = 0; i < 12; ++i) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.psdu_bytes = 120;
    cfg.snr_db = 3.0 + i;
    links.push_back(cfg);
  }
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.12;
  rule.min_errors = 150;
  rule.min_packets = 8;
  rule.max_packets = 240;
  core::SweepOptions sopts;
  sopts.threads = 1;  // parallelism comes from the workers, not MC threads

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<core::BerResult> reference =
      core::sweep_ber_adaptive(links, rule, sopts);
  const double single_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::filesystem::path dir =
      bench_calib_dir() / ("sharded-" + std::to_string(workers));
  double sharded_s = 0.0;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    service::ShardCoordinator::Options copts;
    copts.workers = workers;
    copts.checkpoint_dir = dir;
    copts.worker_threads = 1;
    service::ShardCoordinator coord(std::move(copts));
    const auto w0 = std::chrono::steady_clock::now();
    const std::vector<core::BerResult> merged = coord.run(links, rule, sopts);
    sharded_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
    if (merged.size() != reference.size()) {
      state.SkipWithError("sharded pass returned a wrong point count");
      return;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (merged[i].packets != reference[i].packets ||
          merged[i].bit_errors != reference[i].bit_errors ||
          merged[i].evm_rms_avg != reference[i].evm_rms_avg) {
        state.SkipWithError(
            "sharded pass diverged from the single-process reference");
        return;
      }
    }
    benchmark::DoNotOptimize(merged.data());
  }
  const double speedup =
      single_s * static_cast<double>(state.iterations()) / sharded_s;
  state.counters["speedup_vs_single"] = speedup;
  if (workers == 2 && std::thread::hardware_concurrency() >= 2 &&
      speedup < 1.6) {
    state.SkipWithError(
        "2-worker sharded cold pass not >=1.6x over single-process");
    return;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(links.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ShardedColdSweep)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

}  // namespace

BENCHMARK_MAIN();
