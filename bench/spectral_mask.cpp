// MASK — transmit spectral mask conformance (Std 802.11a 17.3.9.2; the
// transmit-side counterpart of the paper's Fig. 4 spectrum work).
//
// The dominant mask-failure mechanism in a real 802.11a transmitter is PA
// spectral regrowth: the cubic intermodulation of the OFDM envelope
// spreads energy into the 11-30 MHz region. This bench sweeps the PA
// output backoff and locates the compliance boundary, and also reports
// the shoulder-level improvement from time-domain windowing.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "dsp/spectrum.h"
#include "phy80211a/bits.h"
#include "phy80211a/conformance.h"
#include "phy80211a/transmitter.h"
#include "rf/amplifier.h"

namespace {

using namespace wlansim;

dsp::CVec make_tx_waveform(std::size_t window_overlap, dsp::Rng& rng) {
  phy::Transmitter::Config cfg;
  cfg.output_power_dbm = -30.0;
  cfg.window_overlap = window_overlap;
  phy::Transmitter tx(cfg);
  dsp::CVec wave;
  for (int i = 0; i < 5; ++i) {
    const dsp::CVec f =
        tx.modulate({phy::Rate::kMbps54, phy::random_bytes(400, rng)});
    wave.insert(wave.end(), f.begin(), f.end());
  }
  return dsp::upsample(wave, 4, 80.0);  // interpolating DAC at 80 Msps
}

phy::MaskCheckResult mask_after_pa(const dsp::CVec& analog,
                                   double backoff_db) {
  rf::AmplifierConfig pa;
  pa.label = "pa";
  pa.gain_db = 0.0;
  pa.model = rf::NonlinearityModel::kRapp;
  pa.rapp_smoothness = 3.0;
  // Input P1dB set `backoff_db` above the signal's mean power (-30 dBm).
  pa.p1db_in_dbm = -30.0 + backoff_db;
  rf::Amplifier amp(pa, 80e6, dsp::Rng(3));
  const dsp::CVec out = amp.process(analog);
  const dsp::PsdEstimate psd = dsp::welch_psd(out, {.nfft = 4096});
  return phy::check_spectral_mask(psd, 80e6, /*min_offset_hz=*/9.2e6);
}

double shoulder_dbr(const dsp::CVec& analog) {
  const dsp::PsdEstimate psd = dsp::welch_psd(analog, {.nfft = 4096});
  double ref = 0.0;
  for (double f = -8e6; f <= 8e6; f += 100e3)
    ref = std::max(ref, psd.band_power(f / 80e6, 100e3 / 80e6));
  const double sh = psd.band_power(9.8e6 / 80e6, 200e3 / 80e6) / 2.0;
  return dsp::to_db(std::max(sh, 1e-30) / ref);
}

}  // namespace

int main() {
  bench::banner("MASK", "transmit spectral mask vs PA backoff "
                        "(Std 17.3.9.2)",
                "mask met at high backoff; regrowth violates it as the PA "
                "is driven harder");

  dsp::Rng rng(17);
  const dsp::CVec analog = make_tx_waveform(0, rng);

  std::printf("%14s  %16s  %16s  %6s\n", "backoff [dB]", "worst margin [dB]",
              "at offset [MHz]", "mask");
  bool any_pass = false, any_fail = false;
  double pass_backoff = -100.0, fail_backoff = 100.0;
  for (double backoff : {14.0, 10.0, 6.0, 3.0, 0.0, -3.0}) {
    const auto res = mask_after_pa(analog, backoff);
    std::printf("%14.0f  %16.1f  %16.1f  %6s\n", backoff,
                res.worst_margin_db, res.worst_offset_hz / 1e6,
                res.pass ? "PASS" : "FAIL");
    if (res.pass) {
      any_pass = true;
      pass_backoff = std::max(pass_backoff, backoff);
    } else {
      any_fail = true;
      fail_backoff = std::min(fail_backoff, backoff);
    }
  }

  // Windowing: shoulder at 9.8 MHz with and without.
  dsp::Rng rng2(17);
  const double sh_rect = shoulder_dbr(analog);
  const double sh_win = shoulder_dbr(make_tx_waveform(4, rng2));
  std::printf("\nband-edge shoulder at 9.8 MHz: rectangular %.1f dBr, "
              "4-sample RC window %.1f dBr (%.1f dB better)\n", sh_rect,
              sh_win, sh_rect - sh_win);

  const bool ok = any_pass && any_fail && pass_backoff > fail_backoff &&
                  sh_win < sh_rect;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
