// IP3 — paper §4.1: "it was possible to measure bit error rates versus
// critical parameters of the RF front-end, e.g. IP3 value of the LNA."
// BER vs LNA IIP3 with the adjacent channel present (clipped-cubic model,
// where IIP3 = P1dB + 9.6 dB).
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("IP3", "BER vs IP3 value of the LNA (sec. 4.1)",
                "low IIP3 -> intermodulation of the adjacent channel "
                "destroys the link; high IIP3 -> clean");

  core::LinkConfig cfg = core::default_link_config();
  const std::vector<double> iip3 = {-32, -27, -22, -17, -12, -7, -2, 3};
  const std::size_t packets = 12;
  const auto res = core::experiment_ip3_sweep(cfg, iip3, packets);

  std::printf("%zu packets/point, wanted -40 dBm, adjacent +16 dB\n\n",
              packets);
  std::printf("%12s  %10s  %8s\n", "IIP3 [dBm]", "ber", "evm%");
  const auto ber = res.column("ber");
  const auto evm = res.column("evm");
  for (std::size_t i = 0; i < iip3.size(); ++i) {
    std::printf("%12.1f  %10.2e  %8.2f\n", iip3[i], ber[i], 100.0 * evm[i]);
  }

  const bool ok = ber.front() > 0.1 && ber.back() < 1e-2;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
