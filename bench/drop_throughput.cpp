// DROP — network-scale drop throughput: the paper's system-level promise
// ("analyze very large systems in a sufficient time") cashed out. A
// multi-user drop's link evaluations collapse onto a few dozen distinct
// (fingerprint, SNR-bin) points; the drop engine dedups, serves warm bins
// from the calibration store, and pools all cold bins into one adaptive
// Monte-Carlo pass. This bench reports stations/sec cold (empty store) and
// warm (second run), gates warm >= 100x the naive per-station adaptive
// cost, and spot-checks the dedup-vs-direct bit-identity contract.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "scenario/drop.h"

namespace {

using namespace wlansim;

double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::banner("DROP", "multi-user drop throughput via dedup + surrogate",
                "warm drops run >= 100x faster than paying the adaptive "
                "Monte-Carlo cost per station, and dedup changes no result "
                "bit");

  scenario::DropConfig cfg;
  cfg.num_stations = 512;
  cfg.num_steps = 2;
  cfg.area_half_m = 60.0;
  cfg.link = core::default_link_config();
  cfg.link.psdu_bytes = 60;
  cfg.snr_bin_db = 1.0;
  cfg.snr_min_db = 2.0;
  cfg.snr_max_db = 14.0;
  cfg.rule.target_rel_ci = 0.5;
  cfg.rule.min_errors = 20;
  cfg.rule.min_packets = 8;
  cfg.rule.max_packets = 48;
  cfg.store_dir = std::filesystem::temp_directory_path() /
                  ("wlansim-drop-bench-" + std::to_string(::getpid()));
  std::filesystem::remove_all(cfg.store_dir);

  const double n = static_cast<double>(cfg.num_stations * cfg.num_steps);

  auto t0 = std::chrono::steady_clock::now();
  std::vector<scenario::StationSample> cold_samples;
  const scenario::DropSummary cold = run_drop_collect(cfg, cold_samples);
  const double cold_s = now_minus(t0);

  t0 = std::chrono::steady_clock::now();
  std::vector<scenario::StationSample> warm_samples;
  const scenario::DropSummary warm = run_drop_collect(cfg, warm_samples);
  const double warm_s = now_minus(t0);

  // The naive cost per station: the pooled cold pass measured
  // cold.totals.cold distinct points; without dedup every station-step
  // would have paid that Monte-Carlo price individually.
  const double distinct_frac =
      static_cast<double>(cold.totals.cold) / n;
  const double naive_s = cold_s / distinct_frac;
  const double speedup = naive_s / warm_s;

  std::printf("%zu stations x %zu steps = %.0f evaluations\n",
              cfg.num_stations, cfg.num_steps, n);
  std::printf("cold: %6.2f s  (%7.0f stations/s, %zu distinct cold bins)\n",
              cold_s, n / cold_s, cold.totals.cold);
  std::printf("warm: %6.2f s  (%7.0f stations/s, %zu warm, %zu cold)\n",
              warm_s, n / warm_s, warm.totals.warm, warm.totals.cold);
  std::printf("naive per-station adaptive estimate: %.1f s\n", naive_s);
  std::printf("warm speedup vs naive: %.0fx (target >= 100x)\n", speedup);

  // Bit-identity spot check: a cold sample's counters must equal a direct
  // run_ber_adaptive of the exact config the drop evaluated.
  bool identical = true;
  std::size_t checked = 0;
  for (const auto& s : cold_samples) {
    if (s.result.from_surrogate || checked >= 3) continue;
    const core::LinkConfig direct_cfg = sample_link_config(cfg, s);
    const core::BerResult direct =
        core::run_ber_adaptive(direct_cfg, cfg.rule, cfg.threads);
    if (direct.packets != s.result.packets ||
        direct.bit_errors != s.result.bit_errors ||
        direct.bits != s.result.bits ||
        direct.packet_errors != s.result.packet_errors) {
      identical = false;
      std::printf("MISMATCH at step %u station %u: direct %zu/%zu vs drop "
                  "%zu/%zu\n",
                  s.step, s.station, direct.bit_errors, direct.bits,
                  s.result.bit_errors, s.result.bits);
    }
    ++checked;
  }
  std::printf("dedup-vs-direct spot check: %zu cold samples %s\n", checked,
              identical ? "bit-identical" : "MISMATCHED");

  std::filesystem::remove_all(cfg.store_dir);
  const bool ok = identical && warm.totals.cold == 0 && speedup >= 100.0;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
