// NOISEGAP — paper §5.1: "During a co-simulation it was not possible to
// examine the influence of the noise figure, because the AMS Designer does
// not support the Verilog-AMS noise functions. This causes, that the
// measured BER values were better than the results from the corresponding
// SPW only simulation."
//
// Three runs of the identical link near sensitivity:
//   1. system-level model, RF noise sources active       (SPW reference)
//   2. co-simulation, noise functions unsupported        (AMS 2.0 behavior)
//   3. co-simulation with the random-function workaround (paper's fix)
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("NOISEGAP", "co-simulated BER optimistic without noise "
                            "functions (sec. 5.1)",
                "co-sim BER/EVM better than the SPW reference; the "
                "workaround restores agreement");

  core::LinkConfig cfg = core::default_link_config();
  cfg.rx_power_dbm = -81.0;          // near sensitivity: chain noise matters
  cfg.rate = phy::Rate::kMbps24;
  cfg.snr_db.reset();                // antenna thermal floor only
  cfg.cosim.analog_oversample = 16;  // keep three full BER runs affordable
  const std::size_t packets = 25;

  const core::NoiseGapResult r = core::experiment_noise_gap(cfg, packets);

  std::printf("operating point: %.0f dBm, %s, %zu packets/run\n\n",
              cfg.rx_power_dbm,
              std::string(phy::rate_name(cfg.rate)).c_str(), packets);
  std::printf("%-44s %10s %8s\n", "configuration", "BER", "EVM%");
  std::printf("%-44s %10.2e %8.2f\n",
              "system-level (SPW), noise sources active", r.ber_system,
              100.0 * r.evm_system);
  std::printf("%-44s %10.2e %8.2f\n",
              "co-simulation, noise functions unsupported",
              r.ber_cosim_nonoise, 100.0 * r.evm_cosim_nonoise);
  std::printf("%-44s %10.2e %8s\n",
              "co-simulation + random-function workaround", r.ber_cosim_fixed,
              "-");

  const bool optimistic = r.evm_cosim_nonoise < r.evm_system &&
                          r.ber_cosim_nonoise <= r.ber_system;
  const bool fixed_close =
      std::abs(r.ber_cosim_fixed - r.ber_system) <
      0.5 * std::max(r.ber_system, 1e-3);
  std::printf("\nco-sim without noise is optimistic: %s\n",
              optimistic ? "yes (as in the paper)" : "NO");
  std::printf("workaround restores agreement with SPW: %s\n",
              fixed_close ? "yes" : "NO");
  const bool ok = optimistic && fixed_close;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
