// BLACKBOX — paper §4 (flow option two) and §6: "the J&K models [6] are
// available to bring the RF subsystems of receiver and transmitter as
// black-box into a SPW system simulation."
//
// Extracts a J&K-style surrogate (frequency response + AM/AM + AM/PM +
// equivalent noise) from the full double-conversion chain, then runs the
// identical WLAN link with both and compares fidelity and speed.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "rf/blackbox.h"

int main() {
  using namespace wlansim;
  bench::banner("BLACKBOX", "J&K black-box model of the RF subsystem",
                "the extracted surrogate matches the full chain's link "
                "quality and simulates faster");

  // A static-gain variant of the front-end (extraction needs the chain in
  // a settled state, like the PSS-based K-model extraction).
  core::LinkConfig base = core::default_link_config();
  base.rf.agc.loop_gain = 0.0;
  base.rf.agc.initial_gain_db = 0.0;
  base.rf.adc.enabled = false;

  rf::DoubleConversionConfig rfc = base.rf;
  rfc.sample_rate_hz = phy::kSampleRate * base.oversample;
  rf::DoubleConversionReceiver chain(rfc, dsp::Rng(99));

  std::printf("extracting (frequency grid + envelope sweep + noise)...\n");
  rf::ExtractionConfig ec;
  const auto t0 = std::chrono::steady_clock::now();
  const rf::BlackBoxData data = rf::extract_blackbox(chain, ec);
  const double t_extract =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("extraction done in %.2f s (%zu frequency points, %zu "
              "envelope points)\n\n", t_extract, data.freq_hz.size(),
              data.env_in.size());

  const std::size_t packets = 20;

  core::LinkConfig full = base;
  const auto t1 = std::chrono::steady_clock::now();
  core::WlanLink full_link(full);
  const core::BerResult r_full = full_link.run_ber(packets);
  const double t_full =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  core::LinkConfig surr = base;
  surr.rf_engine = core::RfEngine::kCustom;
  surr.custom_rf = [&data](dsp::Rng rng) {
    return std::make_unique<rf::BlackBoxModel>(data, rng);
  };
  const auto t2 = std::chrono::steady_clock::now();
  core::WlanLink surr_link(surr);
  const core::BerResult r_surr = surr_link.run_ber(packets);
  const double t_surr =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count();

  std::printf("%-26s %10s %8s %10s\n", "model", "BER", "EVM%", "time [s]");
  std::printf("%-26s %10.2e %8.2f %10.2f\n", "full behavioral chain",
              r_full.ber(), 100.0 * r_full.evm_rms_avg, t_full);
  std::printf("%-26s %10.2e %8.2f %10.2f\n", "extracted black-box",
              r_surr.ber(), 100.0 * r_surr.evm_rms_avg, t_surr);
  std::printf("\nspeedup %.1fx; EVM difference %.2f points\n",
              t_full / t_surr,
              100.0 * std::abs(r_full.evm_rms_avg - r_surr.evm_rms_avg));

  const bool fidelity =
      std::abs(r_full.evm_rms_avg - r_surr.evm_rms_avg) < 0.04 &&
      r_surr.ber() < 1e-2 && r_full.ber() < 1e-2;
  const bool faster = t_surr < t_full;
  std::printf("\nresult: %s\n",
              (fidelity && faster) ? "SHAPE REPRODUCED" : "MISMATCH");
  return (fidelity && faster) ? 0 : 1;
}
