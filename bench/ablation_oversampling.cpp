// ABLATION — oversampling factor of the RF model. Paper §4.1: "The
// baseband signal was over-sampled to fulfill the sampling theorem."
// At 1x and 2x the +20 MHz adjacent channel cannot be represented at all
// (make_interferer refuses); at 4x it fits. Without an interferer the
// oversampling factor must NOT change the result — that is the consistency
// check here.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("ABL-OVERSAMPLING", "RF-model oversampling factor (ablation)",
                "4x is the minimum rate representing the adjacent channel; "
                "without an interferer the factor barely matters");

  std::printf("no interferer (link quality must be stable across factors):\n");
  std::printf("%8s  %10s  %8s\n", "factor", "ber", "evm%");
  bool ok = true;
  double evm_ref = 0.0;
  for (std::size_t os : {2u, 4u, 8u}) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.oversample = os;
    core::WlanLink link(cfg);
    const core::BerResult r = link.run_ber(8);
    std::printf("%8zu  %10.2e  %8.2f\n", os, r.ber(), 100.0 * r.evm_rms_avg);
    if (os == 4) evm_ref = r.evm_rms_avg;
    ok = ok && r.ber() < 1e-2;
  }

  std::printf("\nadjacent channel at +20 MHz needs fs >= 60 MHz:\n");
  for (std::size_t os : {2u, 4u}) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.oversample = os;
    cfg.interferer = channel::InterfererConfig{.offset_hz = 20e6,
                                               .level_db = 16.0};
    bool representable = true;
    try {
      core::WlanLink link(cfg);
      (void)link.run_packet(0);
    } catch (const std::exception& e) {
      representable = false;
      std::printf("  %zux: rejected (%s)\n", os, e.what());
    }
    if (representable) std::printf("  %zux: representable, link runs\n", os);
    if (os == 2) ok = ok && !representable;  // must refuse: aliased scene
    if (os == 4) ok = ok && representable;
  }

  (void)evm_ref;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
