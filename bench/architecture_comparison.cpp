// ARCH — the paper's §2.2 design rationale, made measurable: "The first
// mixer converts the signal to half of the RF frequency, with a image
// frequency around zero. As there is no signal at 0 Hz, this architecture
// overcomes problems concerning image rejection. ... DC-offsets and
// flicker (1/f) noise are filtered out by high-pass filtering between the
// stages."
//
// Compares the paper's double-conversion receiver against a zero-IF
// (direct-conversion) receiver under the impairments that separate them:
// the wandering LO-leakage self-mixing product (drifts inside the occupied
// spectrum at zero IF, removed between the stages in the half-RF design)
// and IQ imbalance (first-order at zero IF, negligible when quadrature is
// generated at one fixed frequency).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"
#include "rf/direct_conversion.h"

namespace {

using namespace wlansim;

core::BerResult run_zif(double wander_rms, double iq_gain_db,
                        double iq_phase_deg, std::size_t packets) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rf_engine = core::RfEngine::kCustom;
  const double fs = phy::kSampleRate * cfg.oversample;
  cfg.custom_rf = [=](dsp::Rng rng) -> std::unique_ptr<rf::RfBlock> {
    rf::DirectConversionConfig zc;
    zc.sample_rate_hz = fs;
    zc.dynamic_dc_rms = wander_rms;
    zc.iq_gain_imbalance_db = iq_gain_db;
    zc.iq_phase_error_deg = iq_phase_deg;
    return std::make_unique<rf::DirectConversionReceiver>(zc, rng);
  };
  core::WlanLink link(cfg);
  return link.run_ber(packets);
}

core::BerResult run_double(std::size_t packets) {
  core::LinkConfig cfg = core::default_link_config();
  core::WlanLink link(cfg);
  return link.run_ber(packets);
}

}  // namespace

int main() {
  bench::banner("ARCH", "double-conversion vs zero-IF architecture "
                        "(sec. 2.2 rationale)",
                "the wandering self-mixing product and IQ imbalance degrade "
                "the zero-IF chain; the double-conversion chain is immune "
                "by construction");

  const std::size_t packets = 10;

  // Signal at the mixer output is ~-34 dBm (6e-4 sqrt(W) RMS); sweep the
  // wandering product from negligible to a quarter of the signal level.
  std::printf("wandering LO self-mixing product (nominal 0.3 dB / 2 deg IQ "
              "imbalance, %zu packets):\n", packets);
  std::printf("%18s  %12s %8s\n", "wander RMS", "zeroIF BER", "EVM%");
  double zif_evm_lo = 0.0, zif_evm_hi = 0.0;
  for (double rms : {3e-6, 3e-5, 1.5e-4}) {
    const core::BerResult z = run_zif(rms, 0.3, 2.0, packets);
    std::printf("%18.1e  %12.2e %8.2f\n", rms, z.ber(),
                100.0 * z.evm_rms_avg);
    if (rms == 3e-6) zif_evm_lo = z.evm_rms_avg;
    zif_evm_hi = z.evm_rms_avg;
  }
  const core::BerResult d_ref = run_double(packets);
  std::printf("%18s  %12.2e %8.2f  (immune: product removed at IF)\n",
              "double conversion", d_ref.ber(), 100.0 * d_ref.evm_rms_avg);

  // IQ imbalance: a first-order zero-IF problem — the whole band folds
  // onto itself through the image. (The double-conversion design generates
  // quadrature at one fixed frequency and holds ~0 imbalance.)
  std::printf("\nzero-IF IQ imbalance sweep (%zu packets):\n", packets);
  std::printf("%24s  %12s %8s\n", "gain dB / phase deg", "zeroIF BER",
              "EVM%");
  std::vector<double> iq_evm;
  const double iq_steps[][2] = {{0.0, 0.0}, {0.3, 2.0}, {1.0, 5.0},
                                {2.0, 10.0}};
  for (const auto& s : iq_steps) {
    const core::BerResult z = run_zif(3e-6, s[0], s[1], packets);
    std::printf("%14.1f / %-7.0f  %12.2e %8.2f\n", s[0], s[1], z.ber(),
                100.0 * z.evm_rms_avg);
    iq_evm.push_back(z.evm_rms_avg);
  }

  const bool wander_hurts = zif_evm_hi > 1.3 * zif_evm_lo;
  const bool double_immune = d_ref.ber() < 1e-2;
  const bool iq_hurts = iq_evm.back() > 1.3 * iq_evm.front();
  std::printf("\nwandering product degrades zero IF: %s; double conversion "
              "immune: %s; IQ imbalance degrades zero IF: %s\n",
              wander_hurts ? "yes" : "NO", double_immune ? "yes" : "NO",
              iq_hurts ? "yes" : "NO");
  std::printf("(note: 1/f noise with a corner below the first occupied "
              "subcarrier is benign for OFDM in either architecture — the "
              "DC null absorbs it.)\n");
  const bool ok = wander_hurts && double_immune && iq_hurts;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
