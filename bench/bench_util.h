// Shared helpers for the reproduction benches: consistent headers and
// table printing so every binary reports paper-vs-measured the same way.
#pragma once

#include <cstdio>
#include <string>

namespace wlansim::bench {

inline void banner(const char* experiment_id, const char* paper_artifact,
                   const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id, paper_artifact);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace wlansim::bench
