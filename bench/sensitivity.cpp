// SENS — receiver minimum input sensitivity (Std 802.11a 17.3.10.1,
// Table 91; the "-88 to -23 dBm" operating range of the paper's §2.2).
// Measures the level where each rate's PER crosses 10 % through the full
// double-conversion front-end and compares against the standard's
// requirement (which budgets a 10 dB noise figure + 5 dB implementation
// margin — a good front-end beats it comfortably).
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "phy80211a/conformance.h"

namespace {

double measure_sensitivity(wlansim::phy::Rate rate) {
  using namespace wlansim;
  // Walk down in 2 dB steps until PER exceeds 10 %.
  double last_pass = 0.0;
  for (double dbm = required_sensitivity_dbm(rate) + 2.0; dbm >= -95.0;
       dbm -= 2.0) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.rate = rate;
    cfg.psdu_bytes = 1000;  // the standard's PER reference length
    cfg.rx_power_dbm = dbm;
    cfg.snr_db.reset();  // thermal floor + chain noise only
    core::WlanLink link(cfg);
    const core::BerResult r = link.run_ber(10);
    if (r.per() > 0.10) return last_pass;
    last_pass = dbm;
  }
  return last_pass;
}

}  // namespace

int main() {
  using namespace wlansim;
  bench::banner("SENS", "receiver minimum sensitivity (Std Table 91)",
                "every rate meets its required sensitivity; the ladder "
                "spans ~17 dB from 6 to 54 Mbps");

  std::printf("%-24s %14s %14s %8s\n", "rate", "required [dBm]",
              "measured [dBm]", "margin");
  bool all_pass = true;
  double sens6 = 0.0, sens54 = 0.0;
  for (phy::Rate rate : {phy::Rate::kMbps6, phy::Rate::kMbps12,
                         phy::Rate::kMbps24, phy::Rate::kMbps36,
                         phy::Rate::kMbps54}) {
    const double req = phy::required_sensitivity_dbm(rate);
    const double meas = measure_sensitivity(rate);
    const double margin = req - meas;
    std::printf("%-24s %14.0f %14.0f %7.0f\n",
                std::string(phy::rate_name(rate)).c_str(), req, meas, margin);
    all_pass = all_pass && meas <= req;
    if (rate == phy::Rate::kMbps6) sens6 = meas;
    if (rate == phy::Rate::kMbps54) sens54 = meas;
  }

  const double ladder = sens54 - sens6;
  std::printf("\nsensitivity ladder 6 -> 54 Mbps: %.0f dB (standard "
              "requires 17 dB spread)\n", ladder);

  // Adaptive BER characterization 1 dB below the 6 Mbps sensitivity edge:
  // the early-stopping engine runs just enough packets for a trustworthy
  // estimate instead of a guessed fixed budget.
  {
    core::LinkConfig cfg = core::default_link_config();
    cfg.rate = phy::Rate::kMbps6;
    cfg.psdu_bytes = 1000;
    cfg.rx_power_dbm = sens6 - 1.0;
    cfg.snr_db.reset();
    sim::StoppingRule rule;
    rule.target_rel_ci = 0.30;
    rule.min_errors = 40;
    rule.min_packets = 8;
    rule.max_packets = 48;
    const core::BerResult r = core::run_ber_adaptive(cfg, rule);
    std::printf("\nadaptive BER at %.0f dBm (6 Mbps, edge - 1 dB): "
                "BER %.1e over %zu packets, %zu errors, CI +/- %.0f %%, "
                "%s, %.2f s\n",
                cfg.rx_power_dbm, r.ber(), r.packets, r.bit_errors,
                100.0 * r.ber_ci_rel,
                r.converged ? "converged" : "hit cap", r.wall_seconds);
  }

  const bool ok = all_pass && ladder > 10.0 && ladder < 25.0;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
