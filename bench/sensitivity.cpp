// SENS — receiver minimum input sensitivity (Std 802.11a 17.3.10.1,
// Table 91; the "-88 to -23 dBm" operating range of the paper's §2.2).
// Measures the level where each rate's PER crosses 10 % through the full
// double-conversion front-end and compares against the standard's
// requirement (which budgets a 10 dB noise figure + 5 dB implementation
// margin — a good front-end beats it comfortably).
//
// The sensitivity walk runs on the calibrated BER surrogate
// (core/surrogate.h, axis = receive power): the first run measures each
// level with the adaptive Monte-Carlo engine and backfills the persistent
// calibration store; later runs answer the whole ladder from the store in
// microseconds. A Monte-Carlo spot-check pass re-measures the sensitivity
// edge (a stored knot — must match exactly) and an off-knot interpolated
// level (must agree within the combined Wilson CI) every run.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "core/surrogate.h"
#include "phy80211a/conformance.h"

namespace {

using namespace wlansim;

sim::StoppingRule sens_rule() {
  // Per-level adaptive budget: tight enough that the 10 % PER crossing is
  // trustworthy, capped so clean (error-free) levels stay cheap.
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.30;
  rule.min_errors = 32;
  rule.min_packets = 8;
  rule.max_packets = 32;
  return rule;
}

core::SurrogateOptions sens_opts() {
  core::SurrogateOptions opts;
  opts.axis = sim::SurrogateAxis::kRxPowerDbm;
  opts.rule = sens_rule();
  return opts;  // store_dir empty: default_calibration_dir()
}

core::LinkConfig sens_config(phy::Rate rate, double dbm) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate;
  cfg.psdu_bytes = 1000;  // the standard's PER reference length
  cfg.rx_power_dbm = dbm;
  cfg.snr_db.reset();  // thermal floor + chain noise only
  return cfg;
}

struct SensResult {
  double sensitivity_dbm = 0.0;
  std::size_t levels = 0;
  std::size_t surrogate_hits = 0;
  double wall_s = 0.0;
};

SensResult measure_sensitivity(phy::Rate rate) {
  using clock = std::chrono::steady_clock;
  // The 2 dB ladder from just above the requirement down to -95 dBm; one
  // surrogate sweep answers every level (stored-curve interpolation where
  // calibrated, adaptive MC + store backfill where not).
  std::vector<core::LinkConfig> levels;
  for (double dbm = phy::required_sensitivity_dbm(rate) + 2.0; dbm >= -95.0;
       dbm -= 2.0) {
    levels.push_back(sens_config(rate, dbm));
  }
  const auto t0 = clock::now();
  const std::vector<core::BerResult> results =
      core::sweep_ber_surrogate(levels, sens_opts());
  const auto t1 = clock::now();

  SensResult out;
  out.levels = levels.size();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  double last_pass = 0.0;
  bool crossed = false;
  for (std::size_t k = 0; k < levels.size(); ++k) {
    if (results[k].from_surrogate) ++out.surrogate_hits;
    if (!crossed) {
      if (results[k].per() > 0.10) {
        crossed = true;
      } else {
        last_pass = levels[k].rx_power_dbm;
      }
    }
  }
  out.sensitivity_dbm = last_pass;
  return out;
}

/// Monte-Carlo spot check at one level: the surrogate answer must agree
/// with a direct adaptive-MC measurement within the combined Wilson CI
/// band (for a stored knot the two are bit-identical — the MC fallback is
/// a pure function of (config, rule), so re-running it reproduces the
/// stored curve exactly).
bool spot_check(phy::Rate rate, double dbm, const char* what) {
  const core::LinkConfig cfg = sens_config(rate, dbm);
  const core::BerResult s = core::run_ber_surrogate(cfg, sens_opts());
  const core::BerResult mc = core::run_ber_adaptive(cfg, sens_rule());
  const double s_hw =
      std::isfinite(s.ber_ci_rel) ? s.ber() * s.ber_ci_rel : 0.0;
  const double mc_hw =
      std::isfinite(mc.ber_ci_rel) ? mc.ber() * mc.ber_ci_rel : 0.0;
  const double tol = s_hw + mc_hw;
  const bool agree = std::abs(s.ber() - mc.ber()) <= tol;
  std::printf("  spot check %-22s @ %5.0f dBm: surrogate BER %.2e vs "
              "MC %.2e (tol %.1e) %s%s\n",
              what, dbm, s.ber(), mc.ber(), tol, agree ? "AGREE" : "DISAGREE",
              s.from_surrogate ? "" : " [store was cold: MC vs MC]");
  return agree;
}

}  // namespace

int main() {
  using namespace wlansim;
  bench::banner("SENS", "receiver minimum sensitivity (Std Table 91)",
                "every rate meets its required sensitivity; the ladder "
                "spans ~17 dB from 6 to 54 Mbps");
  std::printf("calibration store: %s\n\n",
              core::default_calibration_dir().string().c_str());

  std::printf("%-24s %14s %14s %8s %10s %8s\n", "rate", "required [dBm]",
              "measured [dBm]", "margin", "surrogate", "wall [s]");
  bool all_pass = true;
  double sens6 = 0.0, sens54 = 0.0;
  double total_wall = 0.0;
  std::size_t total_hits = 0, total_levels = 0;
  for (phy::Rate rate : {phy::Rate::kMbps6, phy::Rate::kMbps12,
                         phy::Rate::kMbps24, phy::Rate::kMbps36,
                         phy::Rate::kMbps54}) {
    const double req = phy::required_sensitivity_dbm(rate);
    const SensResult r = measure_sensitivity(rate);
    const double margin = req - r.sensitivity_dbm;
    std::printf("%-24s %14.0f %14.0f %7.0f %6zu/%-3zu %8.3f\n",
                std::string(phy::rate_name(rate)).c_str(), req,
                r.sensitivity_dbm, margin, r.surrogate_hits, r.levels,
                r.wall_s);
    all_pass = all_pass && r.sensitivity_dbm <= req;
    total_wall += r.wall_s;
    total_hits += r.surrogate_hits;
    total_levels += r.levels;
    if (rate == phy::Rate::kMbps6) sens6 = r.sensitivity_dbm;
    if (rate == phy::Rate::kMbps54) sens54 = r.sensitivity_dbm;
  }
  std::printf("\n%zu/%zu levels answered from the calibration store, "
              "total walk %.3f s (%s store)\n",
              total_hits, total_levels, total_wall,
              total_hits == total_levels ? "warm"
              : total_hits == 0          ? "cold"
                                         : "partly warm");

  const double ladder = sens54 - sens6;
  std::printf("\nsensitivity ladder 6 -> 54 Mbps: %.0f dB (standard "
              "requires 17 dB spread)\n\n", ladder);

  // Surrogate-vs-MC agreement: a stored knot (the 6 Mbps edge) and an
  // interpolated off-knot level halfway to the next knot.
  bool spots_ok = spot_check(phy::Rate::kMbps6, sens6, "edge knot");
  spots_ok =
      spot_check(phy::Rate::kMbps6, sens6 - 1.0, "interpolated edge-1") &&
      spots_ok;

  const bool ok = all_pass && ladder > 10.0 && ladder < 25.0 && spots_ok;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
