// TAB2 — "Comparison of simulation time" (paper Table 2).
// Times the identical BER run with the system-level RF model (SPW-style)
// and through the co-simulation engine (AMS-Designer-style fine-timestep
// analog evaluation with per-sample event synchronization).
//
// The paper measured 30-40x on a Sun Sparc Enterprise; only the ratio and
// its flatness across packet counts are meaningful, not absolute seconds.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("TAB2", "simulation time: system-level vs co-simulation",
                "co-simulation is 30-40x slower than the pure system "
                "simulation; time grows linearly with packets");

  core::LinkConfig cfg = core::default_link_config();
  const std::vector<std::size_t> counts = {1, 2, 5};
  const auto rows = core::experiment_table2_timing(cfg, counts);

  std::printf("analog refinement: %zu steps/sample, sync overhead %zu "
              "ops/sample\n\n", cfg.cosim.analog_oversample,
              cfg.cosim.sync_overhead_ops);
  std::printf("%10s  %14s  %14s  %8s\n", "packets", "system [s]",
              "co-sim [s]", "ratio");
  for (const auto& r : rows) {
    std::printf("%10zu  %14.3f  %14.3f  %7.1fx\n", r.packets,
                r.system_seconds, r.cosim_seconds, r.ratio);
  }

  // Shape checks: ratio >> 1, same order of magnitude as the paper's
  // 30-40x, and roughly flat across packet counts (both scale linearly).
  bool ok = true;
  for (const auto& r : rows) ok = ok && r.ratio > 8.0;
  const double spread = rows.back().ratio / rows.front().ratio;
  ok = ok && spread > 0.5 && spread < 2.0;
  std::printf("\npaper reported 30-40x on its testbed; our behavioral "
              "analog evaluation is cheaper per step than a circuit "
              "solver, so >8x with a flat profile reproduces the claim's "
              "shape.\n");
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
