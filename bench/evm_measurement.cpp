// EVM — paper §5.2: error vector magnitude measured with an ideal
// receiver. Reports EVM per modulation at the nominal level, then sweeps
// the receive level toward the LNA compression point to show EVM
// collapsing exactly where the front-end compresses.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("EVM", "error vector magnitude measurement (sec. 5.2)",
                "EVM flat in the linear region, degrading toward the "
                "compression point; same front-end EVM for every "
                "modulation");

  // Per-modulation EVM at the nominal operating point.
  std::printf("per-rate EVM at -65 dBm (5 packets each):\n");
  std::printf("%-24s %8s %8s %10s\n", "rate", "EVM%", "EVM dB", "BER");
  for (phy::Rate rate : {phy::Rate::kMbps6, phy::Rate::kMbps12,
                         phy::Rate::kMbps24, phy::Rate::kMbps54}) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.rate = rate;
    core::WlanLink link(cfg);
    const core::BerResult r = link.run_ber(5);
    const double evm_db =
        r.evm_rms_avg > 0 ? 20.0 * std::log10(r.evm_rms_avg) : -100.0;
    std::printf("%-24s %8.2f %8.2f %10.2e\n",
                std::string(phy::rate_name(rate)).c_str(),
                100.0 * r.evm_rms_avg, evm_db, r.ber());
  }

  // EVM vs drive level (LNA P1dB is -20 dBm input-referred).
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps54;  // most EVM-sensitive constellation
  const std::vector<double> levels = {-65, -55, -45, -35, -30, -25, -20, -16};
  const auto res = core::experiment_evm_vs_power(cfg, levels, 4);

  std::printf("\nEVM vs receive level (64-QAM, LNA P1dB at -20 dBm):\n");
  std::printf("%12s  %8s  %8s  %10s\n", "level [dBm]", "EVM%", "EVM dB", "BER");
  const auto evp = res.column("evm_percent");
  const auto evd = res.column("evm_db");
  const auto ber = res.column("ber");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::printf("%12.0f  %8.2f  %8.2f  %10.2e\n", levels[i], evp[i], evd[i],
                ber[i]);
  }

  // Shape: EVM roughly flat in the linear region, clearly worse at the top.
  const double linear_evm = evp[1];
  const double hot_evm = evp.back();
  std::printf("\nlinear-region EVM %.1f %%, near-compression EVM %.1f %%\n",
              linear_evm, hot_evm);
  const bool ok = hot_evm > 1.5 * linear_evm;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
