// DYNRANGE — the paper's §2.2 operating requirement: "The input signal of
// the receiver is in the range from -88 to -23 dBm for the wanted
// channel." Sweeps the receive level across that range through the full
// front-end (AGC + ADC in the loop) and checks the link holds, with the
// expected failures just past both ends (thermal floor below, LNA
// compression above). Also exercises the transmit-PA option: a hard-driven
// TX PA erodes the top of the range.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

using namespace wlansim;

core::BerResult run_level(double dbm, std::optional<double> tx_backoff,
                          std::size_t packets) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rx_power_dbm = dbm;
  cfg.snr_db.reset();  // the physical floor defines the bottom end
  cfg.tx_pa_backoff_db = tx_backoff;
  core::WlanLink link(cfg);
  return link.run_ber(packets);
}

}  // namespace

int main() {
  bench::banner("DYNRANGE", "receiver operating range -88..-23 dBm "
                            "(sec. 2.2)",
                "the AGC holds the link across the specified 65 dB range; "
                "a compressed TX PA erodes the top end");

  const std::size_t packets = 8;
  std::printf("24 Mbps, ideal transmitter (%zu packets/level):\n", packets);
  std::printf("%14s  %10s  %8s\n", "level [dBm]", "ber", "evm%");
  bool in_range_ok = true;
  for (double dbm : {-88.0, -80.0, -70.0, -60.0, -50.0, -40.0, -30.0, -23.0}) {
    const core::BerResult r = run_level(dbm, std::nullopt, packets);
    std::printf("%14.0f  %10.2e  %8.2f\n", dbm, r.ber(),
                100.0 * r.evm_rms_avg);
    if (dbm >= -85.0 && dbm <= -23.0 && r.per() > 0.25) in_range_ok = false;
  }

  std::printf("\nwith a TX PA at 6 dB backoff:\n");
  std::printf("%14s  %10s  %8s\n", "level [dBm]", "ber", "evm%");
  double evm_pa = 0.0, evm_ideal = 0.0;
  for (double dbm : {-60.0}) {
    const core::BerResult ideal = run_level(dbm, std::nullopt, packets);
    const core::BerResult pa = run_level(dbm, 6.0, packets);
    std::printf("%10.0f(id)  %10.2e  %8.2f\n", dbm, ideal.ber(),
                100.0 * ideal.evm_rms_avg);
    std::printf("%10.0f(pa)  %10.2e  %8.2f\n", dbm, pa.ber(),
                100.0 * pa.evm_rms_avg);
    evm_ideal = ideal.evm_rms_avg;
    evm_pa = pa.evm_rms_avg;
  }

  const bool pa_visible = evm_pa > evm_ideal;
  std::printf("\nlink alive across -88..-23 dBm: %s; TX PA distortion "
              "visible: %s\n", in_range_ok ? "yes" : "NO",
              pa_visible ? "yes" : "NO");
  const bool ok = in_range_ok && pa_visible;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
