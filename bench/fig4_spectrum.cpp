// FIG4 — "OFDM signal and adjacent channel" (paper Fig. 4).
// Regenerates the spectrum at the RF front-end input: the wanted 802.11a
// channel at baseband plus the +20 MHz adjacent channel 16 dB above it.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "dsp/mathutil.h"

int main() {
  using namespace wlansim;
  bench::banner("FIG4", "OFDM signal and adjacent channel spectrum",
                "adjacent channel visible at +20 MHz, 16 dB above the "
                "wanted channel");

  core::LinkConfig cfg = core::default_link_config();
  const core::SpectrumResult res = core::experiment_fig4_spectrum(cfg);

  std::printf("sample rate: %.0f Msps, adjacent offset: %+.0f MHz\n\n",
              res.sample_rate_hz / 1e6, res.offset_hz / 1e6);

  // Print the PSD as a coarse series (averaged into 2 MHz buckets) plus an
  // ASCII rendering of the two humps.
  std::printf("%10s  %12s\n", "f [MHz]", "PSD [dBm/bkt]");
  const double fs = res.sample_rate_hz;
  const double bucket_hz = 2e6;
  for (double f = -fs / 2.0 + bucket_hz; f < fs / 2.0 - bucket_hz;
       f += bucket_hz) {
    const double p = res.psd.band_power(f / fs, bucket_hz / fs);
    const double dbm = dsp::watts_to_dbm(std::max(p, 1e-30));
    const int bars = static_cast<int>(std::max(0.0, (dbm + 110.0) / 2.0));
    std::printf("%10.1f  %12.1f  |%.*s\n", f / 1e6, dbm, bars,
                "########################################################");
  }

  std::printf("\nintegrated band power:\n");
  std::printf("  wanted   (0 MHz)  : %7.2f dBm\n", res.wanted_power_dbm);
  std::printf("  adjacent (+20 MHz): %7.2f dBm\n", res.adjacent_power_dbm);
  std::printf("  delta             : %7.2f dB   (paper: +16 dB)\n",
              res.adjacent_power_dbm - res.wanted_power_dbm);

  const double delta = res.adjacent_power_dbm - res.wanted_power_dbm;
  const bool ok = delta > 14.0 && delta < 18.0;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
