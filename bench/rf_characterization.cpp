// RFCHAR — paper §3.2/§4.2: SpectreRF-style characterization of the RF
// blocks and the assembled double-conversion receiver ("test benches with
// two tone signals allow ... several measurements of RF specific
// parameters": gain, compression point, intercept point, noise figure).
#include <cstdio>

#include "bench_util.h"
#include "dsp/mathutil.h"
#include "rf/amplifier.h"
#include "rf/analyses.h"
#include "rf/receiver_chain.h"

int main() {
  using namespace wlansim;
  bench::banner("RFCHAR", "RF-specific analyses (SpectreRF stand-in)",
                "measured gain / P1dB / IIP3 / NF match the behavioral "
                "model parameters");

  rf::ToneTestConfig tc;
  tc.tone_hz = 1e6;
  tc.tone2_hz = 1.4e6;
  tc.num_samples = 1 << 14;
  tc.settle_samples = 1 << 12;

  bool ok = true;

  // --- Standalone LNA -------------------------------------------------------
  {
    rf::AmplifierConfig cfg;
    cfg.label = "lna";
    cfg.gain_db = 15.0;
    cfg.noise_figure_db = 3.0;
    cfg.p1db_in_dbm = -20.0;
    cfg.model = rf::NonlinearityModel::kClippedCubic;
    rf::Amplifier lna(cfg, 80e6, dsp::Rng(11));

    const double g = rf::measure_gain_db(lna, tc, -60.0);
    const double p1 = rf::measure_p1db_in_dbm(lna, tc, -45.0, 0.0);
    const double ip3 = rf::measure_iip3_dbm(lna, tc, -45.0);
    const double nf = rf::measure_noise_figure_db(lna, tc);
    std::printf("LNA (configured: G=15 dB, NF=3 dB, P1dB=-20 dBm)\n");
    std::printf("  measured gain : %7.2f dB\n", g);
    std::printf("  measured P1dB : %7.2f dBm (input-referred)\n", p1);
    std::printf("  measured IIP3 : %7.2f dBm (cubic theory: P1dB+9.6)\n", ip3);
    std::printf("  measured NF   : %7.2f dB\n\n", nf);
    ok = ok && std::abs(g - 15.0) < 0.2 && std::abs(p1 - (-20.0)) < 1.0 &&
         std::abs(ip3 - (-10.4)) < 1.5 && std::abs(nf - 3.0) < 0.5;
  }

  // --- Full double-conversion receiver --------------------------------------
  {
    rf::DoubleConversionConfig cfg;
    cfg.agc.loop_gain = 0.0;  // static gain for characterization
    cfg.agc.initial_gain_db = 0.0;
    cfg.adc.enabled = false;
    rf::DoubleConversionReceiver rx(cfg, dsp::Rng(12));

    rf::ToneTestConfig tcc = tc;
    tcc.settle_samples = 1 << 13;
    // Spot NF at mid-band (3 MHz): below that the 1/f noise of the second
    // mixer dominates and the measurement reads flicker, not thermal NF.
    tcc.tone_hz = 3e6;
    rf::DoubleConversionConfig quiet = cfg;
    quiet.noise_enabled = false;
    rf::DoubleConversionReceiver rx_quiet(quiet, dsp::Rng(12));

    const double g = rf::measure_gain_db(rx_quiet, tcc, -60.0);
    const double p1 = rf::measure_p1db_in_dbm(rx_quiet, tcc, -40.0, -5.0);
    const double nf = rf::measure_noise_figure_db(rx, tcc);
    const double acr20 = rf::measure_rejection_db(rx_quiet, tcc, 3e6, 20e6);
    const double acr12 = rf::measure_rejection_db(rx_quiet, tcc, 3e6, 12e6);
    std::printf("Double-conversion receiver (front-end gain %.0f dB)\n",
                rx.front_end_gain_db());
    std::printf("  measured gain          : %7.2f dB\n", g);
    std::printf("  measured P1dB          : %7.2f dBm (LNA set to -20)\n", p1);
    std::printf("  measured NF            : %7.2f dB (LNA NF 3 dB + chain)\n",
                nf);
    std::printf("  rejection at +12 MHz   : %7.2f dB\n", acr12);
    std::printf("  rejection at +20 MHz   : %7.2f dB\n", acr20);
    ok = ok && std::abs(g - rx.front_end_gain_db()) < 1.0 &&
         std::abs(p1 - (-20.0)) < 2.5 && nf > 2.0 && nf < 6.0 &&
         acr12 > 25.0 && acr20 > 50.0;
  }

  std::printf("result: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
