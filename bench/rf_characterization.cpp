// RFCHAR — paper §3.2/§4.2: SpectreRF-style characterization of the RF
// blocks and the assembled double-conversion receiver ("test benches with
// two tone signals allow ... several measurements of RF specific
// parameters": gain, compression point, intercept point, noise figure).
// The closing section ties the tone-test characterization to link-level
// impact: a calibrated-surrogate BER walk across an LNA P1dB family (each
// compression point is its own front-end fingerprint, hence its own stored
// calibration curve), with a Monte-Carlo spot check of every curve.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "core/surrogate.h"
#include "dsp/mathutil.h"
#include "rf/amplifier.h"
#include "rf/analyses.h"
#include "rf/receiver_chain.h"

int main() {
  using namespace wlansim;
  bench::banner("RFCHAR", "RF-specific analyses (SpectreRF stand-in)",
                "measured gain / P1dB / IIP3 / NF match the behavioral "
                "model parameters");

  rf::ToneTestConfig tc;
  tc.tone_hz = 1e6;
  tc.tone2_hz = 1.4e6;
  tc.num_samples = 1 << 14;
  tc.settle_samples = 1 << 12;

  bool ok = true;

  // --- Standalone LNA -------------------------------------------------------
  {
    rf::AmplifierConfig cfg;
    cfg.label = "lna";
    cfg.gain_db = 15.0;
    cfg.noise_figure_db = 3.0;
    cfg.p1db_in_dbm = -20.0;
    cfg.model = rf::NonlinearityModel::kClippedCubic;
    rf::Amplifier lna(cfg, 80e6, dsp::Rng(11));

    const double g = rf::measure_gain_db(lna, tc, -60.0);
    const double p1 = rf::measure_p1db_in_dbm(lna, tc, -45.0, 0.0);
    const double ip3 = rf::measure_iip3_dbm(lna, tc, -45.0);
    const double nf = rf::measure_noise_figure_db(lna, tc);
    std::printf("LNA (configured: G=15 dB, NF=3 dB, P1dB=-20 dBm)\n");
    std::printf("  measured gain : %7.2f dB\n", g);
    std::printf("  measured P1dB : %7.2f dBm (input-referred)\n", p1);
    std::printf("  measured IIP3 : %7.2f dBm (cubic theory: P1dB+9.6)\n", ip3);
    std::printf("  measured NF   : %7.2f dB\n\n", nf);
    ok = ok && std::abs(g - 15.0) < 0.2 && std::abs(p1 - (-20.0)) < 1.0 &&
         std::abs(ip3 - (-10.4)) < 1.5 && std::abs(nf - 3.0) < 0.5;
  }

  // --- Full double-conversion receiver --------------------------------------
  {
    rf::DoubleConversionConfig cfg;
    cfg.agc.loop_gain = 0.0;  // static gain for characterization
    cfg.agc.initial_gain_db = 0.0;
    cfg.adc.enabled = false;
    rf::DoubleConversionReceiver rx(cfg, dsp::Rng(12));

    rf::ToneTestConfig tcc = tc;
    tcc.settle_samples = 1 << 13;
    // Spot NF at mid-band (3 MHz): below that the 1/f noise of the second
    // mixer dominates and the measurement reads flicker, not thermal NF.
    tcc.tone_hz = 3e6;
    rf::DoubleConversionConfig quiet = cfg;
    quiet.noise_enabled = false;
    rf::DoubleConversionReceiver rx_quiet(quiet, dsp::Rng(12));

    const double g = rf::measure_gain_db(rx_quiet, tcc, -60.0);
    const double p1 = rf::measure_p1db_in_dbm(rx_quiet, tcc, -40.0, -5.0);
    const double nf = rf::measure_noise_figure_db(rx, tcc);
    const double acr20 = rf::measure_rejection_db(rx_quiet, tcc, 3e6, 20e6);
    const double acr12 = rf::measure_rejection_db(rx_quiet, tcc, 3e6, 12e6);
    std::printf("Double-conversion receiver (front-end gain %.0f dB)\n",
                rx.front_end_gain_db());
    std::printf("  measured gain          : %7.2f dB\n", g);
    std::printf("  measured P1dB          : %7.2f dBm (LNA set to -20)\n", p1);
    std::printf("  measured NF            : %7.2f dB (LNA NF 3 dB + chain)\n",
                nf);
    std::printf("  rejection at +12 MHz   : %7.2f dB\n", acr12);
    std::printf("  rejection at +20 MHz   : %7.2f dB\n", acr20);
    ok = ok && std::abs(g - rx.front_end_gain_db()) < 1.0 &&
         std::abs(p1 - (-20.0)) < 2.5 && nf > 2.0 && nf < 6.0 &&
         acr12 > 25.0 && acr20 > 50.0;
  }

  // --- Link-level BER vs LNA compression (surrogate-calibrated) -------------
  {
    using clock = std::chrono::steady_clock;
    sim::StoppingRule rule;
    rule.target_rel_ci = 0.30;
    rule.min_errors = 30;
    rule.min_packets = 8;
    rule.max_packets = 256;

    core::SurrogateOptions sopts;
    sopts.axis = sim::SurrogateAxis::kSnrDb;
    sopts.rule = rule;  // store_dir empty: default_calibration_dir()

    std::printf("BER vs LNA P1dB (24 Mbps, SNR 9-11 dB, calibrated "
                "surrogate; store %s)\n",
                core::default_calibration_dir().string().c_str());
    std::printf("  %-12s %10s %10s %10s %10s %9s\n", "P1dB [dBm]",
                "BER@9dB", "BER@10dB", "BER@11dB", "surrogate", "wall [s]");

    bool spots_ok = true;
    for (double p1db : {-30.0, -20.0, -10.0}) {
      core::LinkConfig base = core::default_link_config();
      base.psdu_bytes = 100;
      base.rx_power_dbm = -30.0;  // hot input: the compression point matters
      base.rf.lna_p1db_in_dbm = p1db;
      std::vector<core::LinkConfig> points;
      for (double snr : {9.0, 10.0, 11.0}) {
        core::LinkConfig c = base;
        c.snr_db = snr;
        points.push_back(c);
      }
      const auto t0 = clock::now();
      const auto res = core::sweep_ber_surrogate(points, sopts);
      const auto t1 = clock::now();
      std::size_t hits = 0;
      for (const auto& r : res) hits += r.from_surrogate ? 1 : 0;
      std::printf("  %-12.0f %10.2e %10.2e %10.2e %6zu/3 %10.3f\n", p1db,
                  res[0].ber(), res[1].ber(), res[2].ber(), hits,
                  std::chrono::duration<double>(t1 - t0).count());

      // Spot check this curve at a stored knot: the backfilled knots ARE
      // adaptive-MC results and each adaptive point is a pure function of
      // (config, rule), so re-measuring must reproduce the surrogate
      // answer EXACTLY — any deviation means the store round-trip or the
      // determinism contract broke.
      core::LinkConfig knot = base;
      knot.snr_db = 10.0;
      const core::BerResult s = core::run_ber_surrogate(knot, sopts);
      const core::BerResult mc = core::run_ber_adaptive(knot, rule);
      const bool knot_ok = s.ber() == mc.ber() && s.per() == mc.per();
      std::printf("    spot check @ 10 dB (knot): surrogate %.6e vs MC "
                  "%.6e %s\n",
                  s.ber(), mc.ber(), knot_ok ? "EXACT" : "DIVERGED");
      spots_ok = spots_ok && knot_ok;

      // Off-knot interpolation quality, informational: compression kinks
      // the waterfall between 1 dB knots, so model (interpolation) error
      // can exceed the purely statistical Wilson band — the calibrated CI
      // bounds measurement noise, not curve shape between knots.
      core::LinkConfig mid = base;
      mid.snr_db = 9.5;
      const core::BerResult si = core::run_ber_surrogate(mid, sopts);
      const core::BerResult mi = core::run_ber_adaptive(mid, rule);
      const double tol = (std::isfinite(si.ber_ci_rel)
                              ? si.ber() * si.ber_ci_rel : 0.0) +
                         (std::isfinite(mi.ber_ci_rel)
                              ? mi.ber() * mi.ber_ci_rel : 0.0);
      std::printf("    interp @ 9.5 dB: surrogate %.2e vs MC %.2e "
                  "(stat tol %.1e) %s\n",
                  si.ber(), mi.ber(), tol,
                  std::abs(si.ber() - mi.ber()) <= tol
                      ? "WITHIN CI" : "model error > stat CI (info)");
    }
    ok = ok && spots_ok;
    std::printf("\n");
  }

  std::printf("result: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
