// GOODPUT — end-to-end goodput vs SNR with ARQ over the RF front-end: the
// system-level figure of merit that everything in the paper's Fig. 1
// pipeline (PHY + RF + "MAC PDU stream") ultimately serves. The optimum
// rate climbs with SNR, and pushing a too-high rate collapses goodput via
// retransmissions — the crossover structure every WLAN rate-control
// algorithm lives off.
//
// Measurement: one pooled adaptive Monte-Carlo sweep over all (rate, SNR)
// points gives each point's PER to a bounded confidence interval (instead
// of the old fixed per-point frame budget), then the stop-and-wait ARQ
// layer is closed analytically over the measured PER: delivery ratio
// 1 - p^(r+1), expected attempts (1 - p^(r+1)) / (1 - p), airtime from the
// PPDU duration at the MAC frame size.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/arq.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "phy80211a/mpdu.h"

namespace {

using namespace wlansim;

constexpr std::size_t kPayloadBytes = 500;
constexpr std::size_t kMaxRetries = 3;

/// Analytic stop-and-wait ARQ goodput [Mbps] over a measured PER.
double arq_goodput_mbps(phy::Rate rate, double per) {
  const std::size_t psdu =
      kPayloadBytes + phy::kMacHeaderBytes + phy::kFcsBytes;
  const double airtime_s = core::ppdu_airtime_s(rate, psdu);
  const double p = per;
  // r+1 tries max; expected attempts per offered frame E = sum of the
  // geometric series, delivery probability 1 - p^(r+1).
  const double delivery = 1.0 - std::pow(p, kMaxRetries + 1);
  const double attempts =
      p < 1.0 ? (1.0 - std::pow(p, kMaxRetries + 1)) / (1.0 - p)
              : static_cast<double>(kMaxRetries + 1);
  const double payload_bits = 8.0 * static_cast<double>(kPayloadBytes);
  return delivery * payload_bits / (attempts * airtime_s) / 1e6;
}

}  // namespace

int main() {
  bench::banner("GOODPUT", "ARQ goodput vs SNR per rate (MAC PDU stream, "
                           "Fig. 1)",
                "the goodput-optimal rate climbs with SNR; overdriving the "
                "rate collapses goodput through retransmissions");

  const phy::Rate rates[] = {phy::Rate::kMbps6, phy::Rate::kMbps12,
                             phy::Rate::kMbps24, phy::Rate::kMbps54};
  const double snrs[] = {8.0, 14.0, 20.0, 28.0};

  // All 16 (rate, SNR) points in ONE pooled adaptive pass: the noisy
  // low-SNR points stop on their CI while the clean points run to the cap,
  // and the wave scheduler steals work across the whole grid.
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.30;
  rule.min_errors = 30;
  rule.min_packets = 8;
  rule.max_packets = 64;

  std::vector<core::LinkConfig> points;
  for (phy::Rate r : rates) {
    for (double snr : snrs) {
      core::LinkConfig cfg = core::default_link_config();
      cfg.rate = r;
      cfg.snr_db = snr;
      cfg.psdu_bytes = kPayloadBytes + phy::kMacHeaderBytes + phy::kFcsBytes;
      points.push_back(cfg);
    }
  }
  const std::vector<core::BerResult> results =
      core::sweep_ber_adaptive(points, rule);

  std::size_t packets = 0;
  for (const auto& r : results) packets += r.packets;
  std::printf("stop-and-wait ARQ closed over adaptive-MC PER (CI-bounded, "
              "%zu packets total), 500-byte payloads, RF front-end in the "
              "loop:\n\n", packets);
  std::printf("%8s", "SNR");
  for (phy::Rate r : rates)
    std::printf("  %8.0fM", phy::rate_params(r).rate_mbps);
  std::printf("   best\n");

  double best_at_low = 0.0, best_at_high = 0.0;
  bool ordered = true;
  for (std::size_t si = 0; si < std::size(snrs); ++si) {
    std::printf("%8.0f", snrs[si]);
    double best_rate = 0.0, best_gp = -1.0;
    for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
      const core::BerResult& res = results[ri * std::size(snrs) + si];
      const double gp = arq_goodput_mbps(rates[ri], res.per());
      std::printf("  %9.2f", gp);
      if (gp > best_gp) {
        best_gp = gp;
        best_rate = phy::rate_params(rates[ri]).rate_mbps;
      }
    }
    std::printf("   %4.0fM\n", best_rate);
    if (snrs[si] == 8.0) best_at_low = best_rate;
    if (snrs[si] == 28.0) best_at_high = best_rate;
    if (best_gp <= 0.0) ordered = false;
  }

  const bool ok = ordered && best_at_high > best_at_low;
  std::printf("\noptimal rate at 8 dB: %.0f Mbps; at 28 dB: %.0f Mbps\n",
              best_at_low, best_at_high);
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
