// GOODPUT — end-to-end goodput vs SNR with ARQ over the RF front-end: the
// system-level figure of merit that everything in the paper's Fig. 1
// pipeline (PHY + RF + "MAC PDU stream") ultimately serves. The optimum
// rate climbs with SNR, and pushing a too-high rate collapses goodput via
// retransmissions — the crossover structure every WLAN rate-control
// algorithm lives off.
#include <cstdio>

#include "bench_util.h"
#include "core/arq.h"
#include "core/experiments.h"

namespace {

using namespace wlansim;

double goodput_mbps(phy::Rate rate, double snr, std::size_t frames) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate;
  cfg.snr_db = snr;
  core::ArqConfig arq;
  arq.payload_bytes = 500;
  arq.num_frames = frames;
  const core::ArqResult r = core::run_arq(cfg, arq);
  return r.goodput_bps(arq.payload_bytes) / 1e6;
}

}  // namespace

int main() {
  bench::banner("GOODPUT", "ARQ goodput vs SNR per rate (MAC PDU stream, "
                           "Fig. 1)",
                "the goodput-optimal rate climbs with SNR; overdriving the "
                "rate collapses goodput through retransmissions");

  const phy::Rate rates[] = {phy::Rate::kMbps6, phy::Rate::kMbps12,
                             phy::Rate::kMbps24, phy::Rate::kMbps54};
  const std::size_t frames = 12;

  std::printf("stop-and-wait ARQ, 500-byte payloads, %zu frames/point, "
              "RF front-end in the loop:\n\n", frames);
  std::printf("%8s", "SNR");
  for (phy::Rate r : rates)
    std::printf("  %8.0fM", phy::rate_params(r).rate_mbps);
  std::printf("   best\n");

  double best_at_low = 0.0, best_at_high = 0.0;
  bool ordered = true;
  for (double snr : {8.0, 14.0, 20.0, 28.0}) {
    std::printf("%8.0f", snr);
    double best_rate = 0.0, best_gp = -1.0;
    for (phy::Rate r : rates) {
      const double gp = goodput_mbps(r, snr, frames);
      std::printf("  %9.2f", gp);
      if (gp > best_gp) {
        best_gp = gp;
        best_rate = phy::rate_params(r).rate_mbps;
      }
    }
    std::printf("   %4.0fM\n", best_rate);
    if (snr == 8.0) best_at_low = best_rate;
    if (snr == 28.0) best_at_high = best_rate;
    if (best_gp <= 0.0) ordered = false;
  }

  const bool ok = ordered && best_at_high > best_at_low;
  std::printf("\noptimal rate at 8 dB: %.0f Mbps; at 28 dB: %.0f Mbps\n",
              best_at_low, best_at_high);
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
