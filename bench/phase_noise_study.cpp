// PHASENOISE — BER/EVM vs LO phase noise of the shared 2.6 GHz LO.
// The paper's receiver runs both mixer stages from one PLL/VCO (Fig. 2);
// its phase noise rotates all subcarriers together (common phase error,
// tracked by the pilots) and spreads inter-carrier interference (not
// trackable). This bench sweeps the phase-noise level and shows the
// pilot tracking absorbing the CPE until ICI takes over — and what
// happens when phase tracking is disabled.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

using namespace wlansim;

core::BerResult run_point(double dbc_hz, std::size_t packets) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps54;  // 64-QAM: most phase-sensitive
  cfg.snr_db = 30.0;
  cfg.rf.lo_phase_noise.level_dbc_hz = dbc_hz;
  cfg.rf.lo_phase_noise.offset_hz = 100e3;
  core::WlanLink link(cfg);
  return link.run_ber(packets);
}

}  // namespace

int main() {
  bench::banner("PHASENOISE", "BER/EVM vs LO phase noise (shared-LO "
                              "double conversion, Fig. 2)",
                "EVM grows with the phase-noise level; pilots absorb the "
                "common phase error until ICI dominates");

  const std::size_t packets = 8;
  std::printf("64-QAM, 30 dB SNR, phase noise quoted at 100 kHz offset, "
              "%zu packets/point:\n\n", packets);
  std::printf("%16s  %10s  %8s\n", "L [dBc/Hz@100k]", "ber", "evm%");

  std::vector<double> evm;
  for (double l : {-110.0, -100.0, -90.0, -80.0, -72.0, -66.0}) {
    const core::BerResult r = run_point(l, packets);
    std::printf("%16.0f  %10.2e  %8.2f\n", l, r.ber(), 100.0 * r.evm_rms_avg);
    evm.push_back(r.evm_rms_avg);
  }

  // Shape: monotone-ish EVM growth; clean at -110, broken at -80.
  const bool clean_low = evm.front() < 0.15;
  const bool degraded_high = evm.back() > 1.5 * evm.front() || evm.back() == 0.0;
  // (evm == 0 means every packet was lost: also "degraded".)
  const core::BerResult broken = run_point(-66.0, packets);
  const bool high_errors = broken.ber() > 1e-3 || broken.per() > 0.2;

  std::printf("\nclean at -110 dBc/Hz: %s; degraded at -66 dBc/Hz: %s\n",
              clean_low ? "yes" : "NO",
              (degraded_high && high_errors) ? "yes" : "NO");
  const bool ok = clean_low && degraded_high && high_errors;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
