// ABLATION — soft- vs hard-decision Viterbi decoding. Justifies the soft
// demapper in the receiver: soft decisions buy the classic ~2 dB at the
// BER waterfall, which is why the SPW reference receiver (and ours)
// decodes LLRs rather than sliced bits.
#include <cstdio>

#include "bench_util.h"
#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211a/convcode.h"
#include "phy80211a/mapper.h"

int main() {
  using namespace wlansim;
  bench::banner("ABL-SOFTHARD", "soft vs hard Viterbi decisions (ablation)",
                "soft decisions reach a given BER ~2 dB earlier");

  dsp::Rng rng(42);
  const phy::Mapper mapper(phy::Modulation::kBpsk);
  const std::size_t info_bits = 4000;
  const std::size_t trials = 12;

  std::printf("%10s  %12s  %12s\n", "SNR [dB]", "BER soft", "BER hard");
  double soft_wins = 0;
  for (double snr_db : {-3.0, -2.0, -1.0, 0.0, 1.0, 2.0}) {
    const double noise_var = dsp::from_db(-snr_db);
    std::size_t err_soft = 0, err_hard = 0, total = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      phy::Bits info(info_bits);
      for (auto& b : info) b = rng.bit() ? 1 : 0;
      for (int i = 0; i < 6; ++i) info.push_back(0);
      const phy::Bits coded = phy::convolutional_encode(info);
      const dsp::CVec tx = mapper.map(coded);

      phy::SoftBits soft(coded.size());
      phy::Bits hard(coded.size());
      for (std::size_t i = 0; i < tx.size(); ++i) {
        const dsp::Cplx y = tx[i] + rng.cgaussian(noise_var);
        soft[i] = mapper.demap_soft_point(y, 1.0)[0];
        hard[i] = mapper.demap_hard_point(y)[0];
      }
      const phy::Bits ds = phy::viterbi_decode(soft);
      const phy::Bits dh = phy::viterbi_decode_hard(hard);
      for (std::size_t i = 0; i < info.size(); ++i) {
        err_soft += (ds[i] != info[i]);
        err_hard += (dh[i] != info[i]);
        ++total;
      }
    }
    const double bs = static_cast<double>(err_soft) / total;
    const double bh = static_cast<double>(err_hard) / total;
    std::printf("%10.1f  %12.2e  %12.2e\n", snr_db, bs, bh);
    if (bs < bh) soft_wins += 1;
  }

  const bool ok = soft_wins >= 4;  // soft at least as good nearly everywhere
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
