// TXEVM — transmit constellation error conformance (Std 802.11a
// 17.3.9.6.3, Table 90: the allowed TX EVM tightens from -5 dB at 6 Mbps
// to -25 dB at 54 Mbps). The transmit-side RF verification question the
// paper's §6 points at ("the RF subsystems of receiver and transmitter"):
// which TX impairment budgets still meet the mask per rate?
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "phy80211a/conformance.h"

namespace {

using namespace wlansim;

struct TxScenario {
  const char* name;
  std::optional<double> pa_backoff_db;
  double iq_gain_db;
  double iq_phase_deg;
  double lo_leak;
};

double measure_tx_evm_db(phy::Rate rate, const TxScenario& s) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate;
  // Genie receive conditions: idealized front-end, essentially no channel
  // noise — what remains is the transmitter's own constellation error.
  cfg.rf_engine = core::RfEngine::kNone;
  cfg.snr_db = 48.0;
  cfg.tx_pa_backoff_db = s.pa_backoff_db;
  cfg.tx_iq_gain_imbalance_db = s.iq_gain_db;
  cfg.tx_iq_phase_error_deg = s.iq_phase_deg;
  cfg.tx_lo_leakage_rel = s.lo_leak;
  core::WlanLink link(cfg);
  const core::BerResult r = link.run_ber(4);
  return r.evm_rms_avg > 0.0 ? 20.0 * std::log10(r.evm_rms_avg) : -100.0;
}

}  // namespace

int main() {
  bench::banner("TXEVM", "transmit constellation error vs Table 90",
                "a clean transmitter meets every rate's limit; a "
                "hard-driven PA or sloppy quadrature modulator fails the "
                "top rates first");

  const TxScenario scenarios[] = {
      {"clean", std::nullopt, 0.0, 0.0, 0.0},
      {"PA @ 9 dB backoff", 9.0, 0.0, 0.0, 0.0},
      {"PA @ 4 dB backoff", 4.0, 0.0, 0.0, 0.0},
      {"IQ 0.7 dB / 4 deg", std::nullopt, 0.7, 4.0, 0.0},
  };
  const phy::Rate rates[] = {phy::Rate::kMbps6, phy::Rate::kMbps24,
                             phy::Rate::kMbps54};

  std::printf("%-22s", "scenario \\ limit");
  for (phy::Rate r : rates)
    std::printf("  %5.0fM(%3.0f dB)", phy::rate_params(r).rate_mbps,
                phy::required_tx_evm_db(r));
  std::printf("\n");

  bool clean_all_pass = true;
  bool dirty_fails_54 = false;
  for (const auto& s : scenarios) {
    std::printf("%-22s", s.name);
    for (phy::Rate r : rates) {
      const double evm_db = measure_tx_evm_db(r, s);
      const bool pass = evm_db <= phy::required_tx_evm_db(r);
      std::printf("  %8.1f %s", evm_db, pass ? "PASS" : "FAIL");
      if (std::string(s.name) == "clean" && !pass) clean_all_pass = false;
      if (std::string(s.name) != "clean" && r == phy::Rate::kMbps54 && !pass)
        dirty_fails_54 = true;
    }
    std::printf("\n");
  }

  std::printf("\nclean transmitter meets every limit: %s; impaired "
              "transmitters fail 54 Mbps first: %s\n",
              clean_all_pass ? "yes" : "NO", dirty_fails_54 ? "yes" : "NO");
  const bool ok = clean_all_pass && dirty_fails_54;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
