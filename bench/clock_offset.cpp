// SCO — sampling-clock offset tolerance. Std 802.11a allows +/-20 ppm per
// station (17.3.9.4/17.3.9.5), so a receiver must absorb up to ~40 ppm of
// combined clock error. Over a long frame the accumulated timing drift
// rotates carrier k by a growing linear phase that common-phase tracking
// cannot see — pilot timing-slope tracking (this library's receiver
// default) can. The ablation shows the link dying without it.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

using namespace wlansim;

core::BerResult run(double ppm, bool track_timing, std::size_t psdu_bytes,
                    std::size_t packets) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps54;  // long frames of the touchiest rate
  cfg.snr_db = 28.0;
  cfg.psdu_bytes = psdu_bytes;
  cfg.sco_ppm = ppm;
  cfg.receiver.track_timing = track_timing;
  core::WlanLink link(cfg);
  return link.run_ber(packets);
}

}  // namespace

int main() {
  bench::banner("SCO", "sampling-clock offset tolerance "
                       "(Std 17.3.9.4: +/-20 ppm per station)",
                "pilot timing tracking holds the link at the standard's "
                "clock tolerance; without it long frames die");

  const std::size_t packets = 6;
  std::printf("64-QAM, 1000-byte frames, %zu packets/point:\n\n", packets);
  std::printf("%12s  %14s %8s  %14s %8s\n", "SCO [ppm]", "tracked BER",
              "EVM%", "untracked BER", "EVM%");
  double tracked_at_40 = 1.0, untracked_at_40 = 0.0;
  for (double ppm : {0.0, 20.0, 40.0, 80.0}) {
    const core::BerResult t = run(ppm, true, 1000, packets);
    const core::BerResult u = run(ppm, false, 1000, packets);
    std::printf("%12.0f  %14.2e %8.2f  %14.2e %8.2f\n", ppm, t.ber(),
                100.0 * t.evm_rms_avg, u.ber(), 100.0 * u.evm_rms_avg);
    if (ppm == 40.0) {
      tracked_at_40 = t.ber();
      untracked_at_40 = u.ber();
    }
  }

  std::printf("\nshort frames barely notice (drift has no time to "
              "accumulate):\n");
  const core::BerResult short_u = run(40.0, false, 100, packets);
  std::printf("100-byte frames, 40 ppm, untracked: BER %.2e\n", short_u.ber());

  const bool ok = tracked_at_40 < 1e-2 && untracked_at_40 > 1e-2 &&
                  short_u.ber() < untracked_at_40;
  std::printf("\ntracked receiver at the combined 40 ppm point: %s; "
              "untracked long frames broken: %s\n",
              tracked_at_40 < 1e-2 ? "clean" : "BROKEN",
              untracked_at_40 > 1e-2 ? "yes" : "NO");
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
