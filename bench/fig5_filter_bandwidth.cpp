// FIG5 — "BER vs filter bandwidth (with present adjacent channel)"
// (paper Fig. 5). Sweeps the Chebyshev channel-select passband edge with a
// +16 dB adjacent channel present.
//
// Expected shape: BER ~0.5 when the filter is far too narrow (the wanted
// signal itself is destroyed), a low floor around the nominal bandwidth,
// and a steep rise once the filter is wide enough to let the adjacent
// channel alias through the ADC. The paper's plotted sweep covers the
// falling arm (narrow -> adequate); the rising arm is the adjacent-channel
// requirement its §2.2 spec implies.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("FIG5", "BER vs Chebyshev baseband filter bandwidth",
                "BER falls as the filter opens to the nominal channel "
                "bandwidth (adjacent channel present)");

  core::LinkConfig cfg = core::default_link_config();
  const std::vector<double> factors = {0.3, 0.4, 0.5, 0.6, 0.7, 0.85,
                                       1.0, 1.15, 1.3, 1.5, 1.8, 2.2};
  const std::size_t packets = 25;
  const auto res = core::experiment_fig5_filter_bandwidth(cfg, factors, packets);

  std::printf("%zu packets/point, edge = factor x %.1f MHz\n\n", packets,
              cfg.rf.bb_filter_edge_hz / 1e6);
  std::printf("%10s  %10s  %10s  %8s\n", "factor", "ber", "per", "evm%");
  const auto ber = res.column("ber");
  const auto per = res.column("per");
  const auto evm = res.column("evm");
  for (std::size_t i = 0; i < factors.size(); ++i) {
    std::printf("%10.2f  %10.2e  %10.3f  %8.2f\n", factors[i], ber[i], per[i],
                100.0 * evm[i]);
  }

  // Shape checks: narrow end bad, nominal good.
  double best = 1.0;
  for (double b : ber) best = std::min(best, b);
  const bool narrow_bad = ber.front() > 0.1;
  const bool nominal_good = best < 1e-2;
  const bool wide_bad = ber.back() > 0.1;
  std::printf("\nnarrow end BER %.2e (expect > 0.1): %s\n", ber.front(),
              narrow_bad ? "ok" : "FAIL");
  std::printf("best BER %.2e (expect < 1e-2): %s\n", best,
              nominal_good ? "ok" : "FAIL");
  std::printf("wide end BER %.2e (adjacent aliases in, expect > 0.1): %s\n",
              ber.back(), wide_bad ? "ok" : "FAIL");
  const bool ok = narrow_bad && nominal_good && wide_bad;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
