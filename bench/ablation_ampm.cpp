// ABLATION — AM/PM conversion in the LNA model. Paper §6 asks to "make
// the SPW rflib more compatible to the SpectreRF models. The SpectreRF
// baseband models provide an extended functionality including AM/PM
// conversion, which must be realized in SPW by separate blocks."
// Our amplifier has it built in; this bench shows what ignoring it costs.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("ABL-AMPM", "AM/PM conversion on/off (ablation)",
                "near compression, AM/PM visibly degrades EVM beyond pure "
                "AM/AM compression");

  std::printf("64-QAM at -22 dBm (2 dB below the LNA P1dB), 6 packets:\n");
  std::printf("%16s  %8s  %10s\n", "AM/PM [deg max]", "evm%", "ber");
  double evm0 = 0.0, evm_last = 0.0;
  for (double ampm : {0.0, 10.0, 20.0, 30.0}) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.rate = phy::Rate::kMbps54;
    cfg.rx_power_dbm = -22.0;  // hot: envelope peaks reach compression
    cfg.rf.lna_am_pm_max_deg = ampm;
    core::WlanLink link(cfg);
    const core::BerResult r = link.run_ber(6);
    std::printf("%16.0f  %8.2f  %10.2e\n", ampm, 100.0 * r.evm_rms_avg,
                r.ber());
    if (ampm == 0.0) evm0 = r.evm_rms_avg;
    evm_last = r.evm_rms_avg;
  }

  const bool ok = evm_last > 1.1 * evm0;
  std::printf("\nEVM without AM/PM %.2f %%, with 30 deg AM/PM %.2f %%\n",
              100.0 * evm0, 100.0 * evm_last);
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
