// PAPR — OFDM crest factor and clipping: the constraint behind every PA
// backoff number in the MASK and TXEVM benches. Prints the PAPR CCDF of
// the 802.11a waveform, then walks the clipping tradeoff: harder clipping
// lowers the crest factor (letting the PA run hotter) but injects
// clipping noise that shows up as TX EVM.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "dsp/mathutil.h"
#include "phy80211a/bits.h"
#include "phy80211a/measure.h"
#include "phy80211a/transmitter.h"

namespace {

using namespace wlansim;

dsp::CVec long_waveform(double clip_db, dsp::Rng& rng) {
  phy::Transmitter::Config cfg;
  cfg.clip_papr_db = clip_db;
  phy::Transmitter tx(cfg);
  dsp::CVec wave;
  for (int i = 0; i < 8; ++i) {
    const dsp::CVec f =
        tx.modulate({phy::Rate::kMbps54, phy::random_bytes(500, rng)});
    wave.insert(wave.end(), f.begin(), f.end());
  }
  return wave;
}

double tx_evm_db(double clip_db) {
  // Direct genie loopback: clipped transmitter, clean channel, equalized
  // constellation compared against the transmitter's own reference points.
  dsp::Rng rng(3);
  phy::Transmitter::Config txc;
  txc.clip_papr_db = clip_db;
  phy::Transmitter tx(txc);
  const phy::Frame f{phy::Rate::kMbps54, phy::random_bytes(500, rng)};
  dsp::CVec wave = tx.modulate(f);
  dsp::CVec padded(200, dsp::Cplx{0.0, 0.0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 100, dsp::Cplx{0.0, 0.0});
  phy::Receiver rx;
  const phy::RxResult res = rx.receive(padded);
  if (!res.header_ok) return 0.0;
  const auto ref = tx.data_symbol_points(f);
  phy::EvmCounter evm;
  const std::size_t n = std::min(ref.size(), res.data_points.size());
  for (std::size_t s = 0; s < n; ++s) evm.add(res.data_points[s], ref[s]);
  return evm.evm_db();
}

}  // namespace

int main() {
  bench::banner("PAPR", "OFDM crest factor and clipping tradeoff",
                "unclipped 802.11a shows the classic ~10 dB PAPR tail; "
                "clipping trades crest factor against TX EVM");

  dsp::Rng rng(11);
  const dsp::CVec raw = long_waveform(0.0, rng);
  const std::vector<double> thresholds = {4, 5, 6, 7, 8, 9, 10};
  const auto ccdf = phy::papr_ccdf(raw, thresholds);

  std::printf("PAPR CCDF of the unclipped waveform (%zu samples):\n", raw.size());
  std::printf("%14s  %12s\n", "thresh [dB]", "P(> thresh)");
  for (std::size_t i = 0; i < thresholds.size(); ++i)
    std::printf("%14.0f  %12.2e\n", thresholds[i], ccdf[i]);
  std::printf("peak PAPR %.1f dB\n\n", phy::papr_db(raw));

  std::printf("clipping tradeoff (54 Mbps):\n");
  std::printf("%14s  %12s  %10s\n", "clip [dB]", "peak PAPR", "TX EVM");
  double evm_unclipped = 0.0, evm_hard = 0.0;
  double papr_unclipped = 0.0, papr_hard = 0.0;
  for (double clip : {0.0, 8.0, 6.0, 4.0}) {
    dsp::Rng r2(11);
    const dsp::CVec w = long_waveform(clip, r2);
    const double p = phy::papr_db(w);
    const double e = tx_evm_db(clip);
    std::printf("%14.0f  %11.1f  %9.1f dB\n", clip, p, e);
    if (clip == 0.0) {
      evm_unclipped = e;
      papr_unclipped = p;
    }
    if (clip == 4.0) {
      evm_hard = e;
      papr_hard = p;
    }
  }

  // Shape: the CCDF tail exists (some samples beyond 8 dB), clipping
  // reduces peak PAPR substantially and costs EVM.
  const bool tail = ccdf[4] > 1e-5 && ccdf[0] > ccdf[4];
  const bool trade = papr_hard < papr_unclipped - 3.0 && evm_hard > evm_unclipped + 5.0;
  std::printf("\nCCDF tail present: %s; clipping trades PAPR for EVM: %s\n",
              tail ? "yes" : "NO", trade ? "yes" : "NO");
  const bool ok = tail && trade;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
