// COEX — legacy coexistence: the paper's Table 1 world has 11 Mbit/s
// DSSS (802.11b) gear "widely used today" next to the new high-speed
// OFDM WLAN. This bench runs the 802.11a link with an 802.11b DSSS
// interferer in the adjacent channel and compares against the OFDM
// interferer of Fig. 5/6, and also produces the 802.11b AWGN waterfall
// (the second complete modem substrate in this repository).
#include <cstdio>

#include "bench_util.h"
#include "channel/awgn.h"
#include "dsp/mathutil.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "phy80211b/chips.h"
#include "phy80211b/receiver.h"
#include "phy80211b/transmitter.h"
#include "sim/node.h"
#include "sim/sweep.h"

namespace {

using namespace wlansim;

/// Loose CI-bounded stopping rule for the coexistence shape checks: points
/// with real error rates stop as soon as the estimate is usable; clean
/// points are capped instead of burning a fixed budget.
sim::StoppingRule coex_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 4;
  rule.max_packets = 12;
  return rule;
}

/// Adaptive packet loop over ONE link (the custom-RF wrapper makes the
/// link non-fingerprintable, so the pooled engines would rebuild the RF
/// chain per packet; a single WlanLink keeps the old per-packet cost while
/// the stopping rule bounds the budget).
core::BerResult run_ber_adaptive_single(core::WlanLink& link,
                                        const sim::StoppingRule& rule) {
  core::BerResult agg;
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  // stopping_rule_met only signals CI convergence; the packet cap is the
  // caller's job (the pooled engine enforces it in its scheduler).
  while (agg.packets < rule.max_packets &&
         !sim::stopping_rule_met(rule, agg.packets, agg.bit_errors,
                                 agg.bits)) {
    const core::PacketResult r = link.run_packet(agg.packets);
    ++agg.packets;
    agg.bits += r.bits;
    agg.bit_errors += r.bit_errors;
    if (r.bit_errors > 0 || !r.decoded) ++agg.packet_errors;
    if (!r.decoded) {
      ++agg.packets_lost;
    } else {
      evm_acc += r.evm_rms;
      ++evm_n;
    }
  }
  agg.evm_rms_avg = evm_n ? evm_acc / static_cast<double>(evm_n) : 0.0;
  agg.ber_ci_rel = sim::wilson_rel_halfwidth(agg.bit_errors, agg.bits,
                                             rule.confidence_z);
  agg.converged = agg.packets < rule.max_packets;
  return agg;
}

/// 802.11a BER with a DSSS blocker at +20 MHz injected via the custom path.
core::BerResult run_with_dsss(double level_db) {
  // The stock interferer machinery generates OFDM traffic; inject the DSSS
  // blocker by wrapping the RF front-end: add the blocker at its input.
  core::LinkConfig cfg = core::default_link_config();
  cfg.rf_engine = core::RfEngine::kCustom;
  const double fs = phy::kSampleRate * cfg.oversample;
  const double p_sig = dsp::dbm_to_watts(cfg.rx_power_dbm);
  cfg.custom_rf = [=](dsp::Rng rng) -> std::unique_ptr<rf::RfBlock> {
    struct Wrapper : rf::RfBlock {
      std::unique_ptr<rf::RfBlock> inner;
      dsp::Rng rng;
      double fs, p_sig, level_db;
      dsp::CVec process(std::span<const dsp::Cplx> in) override {
        dsp::CVec jam = channel::make_dsss_interferer(
            in.size(), fs, p_sig, 20e6, level_db, rng);
        for (std::size_t i = 0; i < in.size(); ++i) jam[i] += in[i];
        return inner->process(jam);
      }
      void reset() override { inner->reset(); }
      std::string name() const override { return "dsss_jam+rf"; }
    };
    auto w = std::make_unique<Wrapper>();
    w->rng = rng.fork();
    w->fs = fs;
    w->p_sig = p_sig;
    w->level_db = level_db;
    rf::DoubleConversionConfig rfc;
    rfc.sample_rate_hz = fs;
    w->inner = std::make_unique<rf::DoubleConversionReceiver>(rfc, rng.fork());
    return w;
  };
  // Adaptive loop under the CI rule: the high-blocker point collects its
  // error quota quickly while the clean points stop at the cap.
  core::WlanLink link(cfg);
  return run_ber_adaptive_single(link, coex_rule());
}

/// 802.11b PER at a chip SNR [dB] (AWGN, one-sample-per-chip). Adaptive
/// frame loop: stop once the rule is satisfied on the frame-error count
/// (frames double as both packets and trials for the CI test).
double per11b(phy11b::Rate11b rate, double chip_snr_db,
              const sim::StoppingRule& rule) {
  dsp::Rng rng(7 + static_cast<int>(rate));
  phy11b::Transmitter11b tx;
  phy11b::Receiver11b rx;
  std::size_t errors = 0;
  std::size_t frames = 0;
  while (frames < rule.max_packets &&
         !sim::stopping_rule_met(rule, frames, errors, frames)) {
    const phy::Bytes payload = phy::random_bytes(100, rng);
    dsp::CVec wave = tx.modulate({rate, payload});
    dsp::CVec in(200, dsp::Cplx{0.0, 0.0});
    in.insert(in.end(), wave.begin(), wave.end());
    in.insert(in.end(), 100, dsp::Cplx{0.0, 0.0});
    const double noise = dsp::dbm_to_watts(0.0) / dsp::from_db(chip_snr_db);
    in = channel::add_awgn(in, noise, rng);
    const auto res = rx.receive(in);
    if (!res.header_ok || res.psdu != payload) ++errors;
    ++frames;
  }
  return static_cast<double>(errors) / static_cast<double>(frames);
}

}  // namespace

int main() {
  bench::banner("COEX", "legacy 802.11b coexistence with the 802.11a link",
                "a DSSS blocker in the adjacent channel behaves like the "
                "OFDM one; the 802.11b modem's own waterfall is ordered "
                "1 < 2 < 5.5 < 11 Mbps");

  std::printf("802.11a (24 Mbps) with an 11 Mchip/s DSSS blocker at "
              "+20 MHz (adaptive, CI-bounded):\n");
  std::printf("%16s  %10s  %8s  %8s\n", "blocker [dB]", "ber", "evm%",
              "packets");
  double ber_low = 0.0, ber_high = 0.0;
  for (double level : {0.0, 16.0, 36.0}) {
    const core::BerResult r = run_with_dsss(level);
    std::printf("%16.0f  %10.2e  %8.2f  %8zu\n", level, r.ber(),
                100.0 * r.evm_rms_avg, r.packets);
    if (level == 16.0) ber_low = r.ber();
    if (level == 36.0) ber_high = r.ber();
  }

  // Frame-error rule for the 11b waterfall: error-heavy points stop once
  // 10 frame errors give a usable PER; clean points cap at 24 frames.
  sim::StoppingRule rule11b;
  rule11b.target_rel_ci = 0.35;
  rule11b.min_errors = 10;
  rule11b.min_packets = 8;
  rule11b.max_packets = 24;

  std::printf("\n802.11b packet error rate vs chip SNR (AWGN, adaptive "
              "frame loop, <= %zu frames):\n", rule11b.max_packets);
  std::printf("%12s  %8s %8s %8s %8s\n", "chip SNR", "1M", "2M", "5.5M",
              "11M");
  double per11_at_low = 0.0, per1_at_low = 0.0;
  for (double snr : {-4.0, 0.0, 4.0, 8.0}) {
    std::printf("%12.0f", snr);
    for (phy11b::Rate11b r :
         {phy11b::Rate11b::kMbps1, phy11b::Rate11b::kMbps2,
          phy11b::Rate11b::kMbps5_5, phy11b::Rate11b::kMbps11}) {
      const double per = per11b(r, snr, rule11b);
      std::printf(" %8.2f", per);
      if (snr == 0.0 && r == phy11b::Rate11b::kMbps1) per1_at_low = per;
      if (snr == 0.0 && r == phy11b::Rate11b::kMbps11) per11_at_low = per;
    }
    std::printf("\n");
  }

  // Shape: the 802.11a receiver meets +16 dB against the DSSS blocker and
  // breaks at an extreme level; the 11b ladder is ordered (Barker's
  // processing gain carries 1 Mbps through SNRs where CCK-11 fails).
  const bool a_ok = ber_low < 1e-2 && ber_high > 0.1;
  const bool b_ok = per1_at_low <= per11_at_low;
  std::printf("\nresult: %s\n", (a_ok && b_ok) ? "SHAPE REPRODUCED"
                                               : "MISMATCH");
  return (a_ok && b_ok) ? 0 : 1;
}
