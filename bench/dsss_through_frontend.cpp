// DSSSRF — the legacy 802.11b modem through the paper's double-conversion
// front-end: a zero-order-hold chip DAC puts the 11 Mchip/s waveform onto
// the 80 Msps RF scene, and a chip-rate integrate-and-dump with sub-chip
// timing search recovers it — how a multi-mode receiver reuses one analog
// front-end for both PHYs (the combined world of the paper's Table 1).
// Two front-end reconfigurations prove necessary and are part of the
// finding: the channel filter opens to the 11b bandwidth, and the
// interstage DC notch backs off (DSSS has low-frequency content that
// CCK's 8-chip correlation cannot lose).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "channel/awgn.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "phy80211b/chips.h"
#include "phy80211b/receiver.h"
#include "phy80211b/transmitter.h"
#include "rf/receiver_chain.h"

namespace {

using namespace wlansim;

bool run_frame(phy11b::Rate11b rate, double rx_dbm, std::uint64_t seed) {
  dsp::Rng rng(seed);
  phy11b::Transmitter11b tx({.scrambler_seed = 0x6C,
                             .output_power_dbm = rx_dbm});
  const phy::Bytes payload = phy::random_bytes(100, rng);
  dsp::CVec chips = tx.modulate({rate, payload});
  dsp::CVec padded(600, dsp::Cplx{0.0, 0.0});
  padded.insert(padded.end(), chips.begin(), chips.end());
  padded.insert(padded.end(), 300, dsp::Cplx{0.0, 0.0});

  // Chip DAC: zero-order hold onto the 80 Msps grid (rectangular chips,
  // the real DSSS transmit waveform; a bandlimited interpolator would
  // destroy the chip edges).
  const double ratio = 80.0 / 11.0;
  dsp::CVec at80(static_cast<std::size_t>(padded.size() * ratio));
  for (std::size_t k = 0; k < at80.size(); ++k) {
    const auto idx = static_cast<std::size_t>(static_cast<double>(k) / ratio);
    at80[k] = padded[std::min(idx, padded.size() - 1)];
  }

  // Antenna thermal floor.
  dsp::Rng nrng = rng.fork();
  at80 = channel::add_awgn(at80, dsp::kBoltzmann * dsp::kT0 * 80e6, nrng);

  // The paper's double-conversion front-end in its DSSS mode: channel
  // filter opened to the 11b bandwidth (25 MHz channel spacing) and the
  // interstage DC notch backed off to 20 kHz/1st order — unlike OFDM, the
  // DSSS spectrum has low-frequency content and CCK's short 8-chip
  // correlation cannot absorb the notch's baseline wander.
  rf::DoubleConversionConfig rfc;
  rfc.sample_rate_hz = 80e6;
  rfc.bb_filter_edge_hz = 14e6;
  rfc.hpf_cutoff_hz = 20e3;
  rfc.hpf_order = 1;
  rf::DoubleConversionReceiver chain(rfc, rng.fork());
  const dsp::CVec out80 = chain.process(at80);

  // Chip-rate integrate-and-dump with sub-chip timing search (chip-timing
  // recovery): average over each chip interval at a few trial phases.
  phy11b::Receiver11b rx;
  for (std::size_t off : {0u, 2u, 4u, 6u}) {
    dsp::CVec out11(
        static_cast<std::size_t>((out80.size() - off) / ratio));
    for (std::size_t k = 0; k < out11.size(); ++k) {
      const auto lo =
          off + static_cast<std::size_t>(static_cast<double>(k) * ratio);
      const auto hi = std::min(
          out80.size(),
          off + static_cast<std::size_t>(static_cast<double>(k + 1) * ratio));
      dsp::Cplx acc{0.0, 0.0};
      for (std::size_t i = lo; i < hi; ++i) acc += out80[i];
      out11[k] = acc / static_cast<double>(std::max<std::size_t>(1, hi - lo));
    }
    const phy11b::RxResult11b res = rx.receive(out11);
    if (res.header_ok && res.psdu == payload) return true;
  }
  return false;
}

}  // namespace

int main() {
  bench::banner("DSSSRF", "802.11b DSSS through the double-conversion "
                          "front-end",
                "the legacy modem survives the modern analog chain at "
                "operating levels and dies at the thermal floor");

  std::printf("%-26s", "level");
  const phy11b::Rate11b rates[] = {phy11b::Rate11b::kMbps1,
                                   phy11b::Rate11b::kMbps2,
                                   phy11b::Rate11b::kMbps5_5,
                                   phy11b::Rate11b::kMbps11};
  for (auto r : rates) std::printf("  %8.1f", phy11b::rate_bps(r) / 1e6);
  std::printf("  (Mbps, frames delivered / 4)\n");

  int delivered_nominal = 0;
  int delivered_weak = 0;
  for (double dbm : {-60.0, -88.0, -97.0}) {
    std::printf("%-24.0f dBm", dbm);
    for (auto r : rates) {
      int ok = 0;
      for (std::uint64_t s = 0; s < 4; ++s)
        ok += run_frame(r, dbm, 100 * s + static_cast<int>(r)) ? 1 : 0;
      std::printf("  %8d", ok);
      if (dbm == -60.0) delivered_nominal += ok;
      if (dbm == -97.0) delivered_weak += ok;
    }
    std::printf("\n");
  }

  // Shape: clean at -60 dBm, mostly dead at -97 dBm (below the DSSS
  // sensitivity even with the Barker processing gain).
  const bool ok = delivered_nominal >= 14 && delivered_weak <= 8;
  std::printf("\nnominal level: %d/16 frames, near floor: %d/16\n",
              delivered_nominal, delivered_weak);
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
