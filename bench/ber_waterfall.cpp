// WATERFALL — BER vs SNR per rate, the canonical link-level validation
// behind every number in the paper's §5: the SPW demo system's BER
// measurement, reproduced over our PHY with the idealized front-end and
// compared with the RF front-end in the loop (implementation loss).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

double waterfall_point(wlansim::phy::Rate rate, double snr,
                       wlansim::core::RfEngine engine, std::size_t packets) {
  using namespace wlansim;
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate;
  cfg.snr_db = snr;
  cfg.rf_engine = engine;
  cfg.psdu_bytes = 150;
  core::WlanLink link(cfg);
  return link.run_ber(packets).ber();
}

}  // namespace

int main() {
  using namespace wlansim;
  bench::banner("WATERFALL", "BER vs SNR per rate (the SPW demo system's "
                             "BER measurement)",
                "waterfalls ordered by rate; RF front-end adds an "
                "implementation loss");

  const phy::Rate rates[] = {phy::Rate::kMbps6, phy::Rate::kMbps12,
                             phy::Rate::kMbps24, phy::Rate::kMbps54};
  const std::vector<double> snrs = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24};
  const std::size_t packets = 10;

  std::printf("idealized front-end, %zu packets/point:\n", packets);
  std::printf("%8s", "SNR");
  for (phy::Rate r : rates)
    std::printf("  %10.0fM", phy::rate_params(r).rate_mbps);
  std::printf("\n");

  // waterfall_snr[r] = first SNR with BER < 1e-3.
  std::vector<double> wf(std::size(rates), 1e9);
  for (double snr : snrs) {
    std::printf("%8.0f", snr);
    for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
      const double ber = waterfall_point(rates[ri], snr,
                                         core::RfEngine::kNone, packets);
      std::printf("  %11.1e", ber);
      if (ber < 1e-3 && wf[ri] > 1e8) wf[ri] = snr;
    }
    std::printf("\n");
  }

  std::printf("\nwaterfall (BER < 1e-3) at SNR: ");
  for (std::size_t ri = 0; ri < std::size(rates); ++ri)
    std::printf("%.0fM: %.0f dB  ", phy::rate_params(rates[ri]).rate_mbps,
                wf[ri]);
  std::printf("\n");

  // Implementation loss of the RF front-end at 24 Mbps.
  double wf_rf = 1e9;
  for (double snr : snrs) {
    const double ber =
        waterfall_point(phy::Rate::kMbps24, snr, core::RfEngine::kSystemLevel,
                        packets);
    if (ber < 1e-3) {
      wf_rf = snr;
      break;
    }
  }
  std::printf("24 Mbps with RF front-end: waterfall at %.0f dB "
              "(implementation loss %.0f dB)\n", wf_rf, wf_rf - wf[2]);

  // Shape: waterfalls strictly ordered by rate, RF loss nonnegative.
  bool ok = wf[0] < 1e8 && wf[3] < 1e8;
  for (std::size_t ri = 0; ri + 1 < std::size(rates); ++ri)
    ok = ok && wf[ri] <= wf[ri + 1];
  ok = ok && wf_rf >= wf[2] && wf_rf < 1e8;
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
