// WATERFALL — BER vs SNR per rate, the canonical link-level validation
// behind every number in the paper's §5: the SPW demo system's BER
// measurement, reproduced over our PHY with the idealized front-end and
// compared with the RF front-end in the loop (implementation loss).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"

namespace {

double waterfall_point(wlansim::phy::Rate rate, double snr,
                       wlansim::core::RfEngine engine, std::size_t packets) {
  using namespace wlansim;
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate;
  cfg.snr_db = snr;
  cfg.rf_engine = engine;
  cfg.psdu_bytes = 150;
  core::WlanLink link(cfg);
  return link.run_ber(packets).ber();
}

}  // namespace

int main() {
  using namespace wlansim;
  bench::banner("WATERFALL", "BER vs SNR per rate (the SPW demo system's "
                             "BER measurement)",
                "waterfalls ordered by rate; RF front-end adds an "
                "implementation loss");

  const phy::Rate rates[] = {phy::Rate::kMbps6, phy::Rate::kMbps12,
                             phy::Rate::kMbps24, phy::Rate::kMbps54};
  const std::vector<double> snrs = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24};
  const std::size_t packets = 10;

  std::printf("idealized front-end, %zu packets/point:\n", packets);
  std::printf("%8s", "SNR");
  for (phy::Rate r : rates)
    std::printf("  %10.0fM", phy::rate_params(r).rate_mbps);
  std::printf("\n");

  // waterfall_snr[r] = first SNR with BER < 1e-3.
  std::vector<double> wf(std::size(rates), 1e9);
  for (double snr : snrs) {
    std::printf("%8.0f", snr);
    for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
      const double ber = waterfall_point(rates[ri], snr,
                                         core::RfEngine::kNone, packets);
      std::printf("  %11.1e", ber);
      if (ber < 1e-3 && wf[ri] > 1e8) wf[ri] = snr;
    }
    std::printf("\n");
  }

  std::printf("\nwaterfall (BER < 1e-3) at SNR: ");
  for (std::size_t ri = 0; ri < std::size(rates); ++ri)
    std::printf("%.0fM: %.0f dB  ", phy::rate_params(rates[ri]).rate_mbps,
                wf[ri]);
  std::printf("\n");

  // Implementation loss of the RF front-end at 24 Mbps.
  double wf_rf = 1e9;
  for (double snr : snrs) {
    const double ber =
        waterfall_point(phy::Rate::kMbps24, snr, core::RfEngine::kSystemLevel,
                        packets);
    if (ber < 1e-3) {
      wf_rf = snr;
      break;
    }
  }
  std::printf("24 Mbps with RF front-end: waterfall at %.0f dB "
              "(implementation loss %.0f dB)\n", wf_rf, wf_rf - wf[2]);

  // Adaptive Monte-Carlo pass over the 24 Mbps knee: each point runs until
  // its BER confidence interval is tight enough (or the cap), so the noisy
  // low-SNR points stop early and donate their budget to the clean tail.
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.30;
  rule.min_errors = 40;
  rule.min_packets = 8;
  rule.max_packets = 64;
  core::LinkConfig base = core::default_link_config();
  base.psdu_bytes = 150;
  const std::vector<double> knee = {6, 8, 10, 12, 14};
  const sim::SweepResult adaptive =
      core::experiment_ber_waterfall_adaptive(base, knee, rule);

  std::printf("\nadaptive early-stopping pass, 24 Mbps (target CI %.0f %%, "
              ">= %zu errors, cap %zu packets):\n",
              100.0 * rule.target_rel_ci, rule.min_errors, rule.max_packets);
  std::printf("%8s %11s %9s %8s %9s %10s\n", "SNR", "BER", "packets",
              "errors", "CI rel", "converged");
  std::size_t adaptive_packets = 0;
  bool adaptive_ok = true;
  for (const auto& row : adaptive.rows) {
    const bool conv = row.results.at("converged") > 0.5;
    std::printf("%8.0f %11.1e %9.0f %8.0f %8.0f%% %10s\n", row.value,
                row.results.at("ber"), row.results.at("packets"),
                row.results.at("bit_errors"), 100.0 * row.results.at("ci_rel"),
                conv ? "yes" : "cap");
    adaptive_packets += static_cast<std::size_t>(row.results.at("packets"));
    // A converged point must actually deliver the target interval.
    if (conv) adaptive_ok = adaptive_ok && row.results.at("ci_rel") <=
                                               rule.target_rel_ci + 1e-12;
  }
  std::printf("adaptive total: %zu packets vs %zu fixed at the cap\n",
              adaptive_packets, rule.max_packets * knee.size());

  // Shape: waterfalls strictly ordered by rate, RF loss nonnegative, and
  // the adaptive engine never claims convergence above its CI target.
  bool ok = wf[0] < 1e8 && wf[3] < 1e8;
  for (std::size_t ri = 0; ri + 1 < std::size(rates); ++ri)
    ok = ok && wf[ri] <= wf[ri + 1];
  ok = ok && wf_rf >= wf[2] && wf_rf < 1e8;
  ok = ok && adaptive_ok && adaptive_packets <= rule.max_packets * knee.size();
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
