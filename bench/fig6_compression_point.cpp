// FIG6 — "BER vs compression point of first LNA" (paper Fig. 6).
// Sweeps the LNA input-referred 1 dB compression point with (a) the
// +16 dB adjacent channel at +20 MHz and (b) the +32 dB non-adjacent
// channel at +40 MHz (the paper's §2.2 blocker levels).
//
// Expected shape: each curve is a waterfall — BER ~0.5 while the blocker
// drives the LNA into compression, dropping to ~0 once P1dB clears the
// blocker level. The non-adjacent blocker is 16 dB stronger, so its curve
// needs a correspondingly higher compression point.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

int main() {
  using namespace wlansim;
  bench::banner("FIG6", "BER vs LNA compression point, with/without "
                        "adjacent channel",
                "higher compression point -> lower BER; the stronger "
                "(non-adjacent) blocker needs a higher P1dB");

  core::LinkConfig cfg = core::default_link_config();
  const std::vector<double> p1db = {-45, -40, -35, -30, -27, -24,
                                    -21, -18, -15, -10, -5};
  const std::size_t packets = 12;
  const auto res = core::experiment_fig6_compression(cfg, p1db, packets);

  std::printf("%zu packets/point, wanted -40 dBm, adjacent -24 dBm "
              "(+16 dB), non-adjacent -8 dBm (+32 dB)\n\n", packets);
  std::printf("%12s  %14s  %14s\n", "P1dB [dBm]", "BER adjacent",
              "BER non-adjacent");
  const auto ba = res.column("ber_adjacent");
  const auto bn = res.column("ber_nonadjacent");
  for (std::size_t i = 0; i < p1db.size(); ++i) {
    std::printf("%12.1f  %14.3e  %14.3e\n", p1db[i], ba[i], bn[i]);
  }

  // Crossover: first sweep value where BER drops below 1e-2.
  auto crossover = [&](const std::vector<double>& ber) {
    for (std::size_t i = 0; i < ber.size(); ++i)
      if (ber[i] < 1e-2) return p1db[i];
    return 1e9;
  };
  const double xa = crossover(ba);
  const double xn = crossover(bn);
  std::printf("\ncrossover (BER < 1e-2): adjacent at P1dB >= %.0f dBm, "
              "non-adjacent at >= %.0f dBm\n", xa, xn);
  std::printf("separation %.0f dB (blocker level difference is 16 dB)\n",
              xn - xa);

  const bool ok = ba.front() > 0.1 && bn.front() > 0.1 &&  // compressed: dead
                  ba.back() < 1e-2 && bn.back() < 1e-2 &&  // clean: fine
                  xn > xa;  // stronger blocker needs more headroom
  std::printf("\nresult: %s\n", ok ? "SHAPE REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
