// wlansim_daemon — persistent simulation service.
//
//   wlansim_daemon --socket /tmp/wlansim.sock [--store DIR]
//                  [--checkpoint-dir DIR] [--threads N]
//                  [--checkpoint-every N] [--paused]
//                  [--workers N] [--attach SOCK[,SOCK...]] [--worker]
//
// Listens on a Unix-domain stream socket for newline-delimited JSON
// requests (src/service/protocol.h), schedules sweep/eval/drop jobs on the
// shared engine, coalesces concurrent requests into pooled deduplicated
// passes, and serves warm keys from the content-addressed calibration
// store. SIGINT/SIGTERM (or an {"op":"shutdown"} request) wind the daemon
// down gracefully: in-flight cold passes are preempted at the next wave
// boundary with their progress checkpointed, so a restarted daemon resumes
// instead of recomputing.
//
// Sharding (service/shard.h): --workers N spawns N local worker daemons
// and fans every multi-key cold pass out across them; --attach joins
// already-running worker daemons by socket. --worker runs THIS daemon as a
// worker: it serves the full protocol (shard jobs included — every daemon
// does) but never spawns workers of its own, so a coordinator can never
// recurse.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "cli_link.h"
#include "core/cliargs.h"
#include "service/server.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int run(int argc, char** argv) {
  using namespace wlansim;
  const core::CliArgs args = core::CliArgs::parse(argc, argv, 1);
  service::Server::Options opts;
  opts.socket_path = args.get_string("socket", "/tmp/wlansim.sock");
  opts.scheduler.store_dir = args.get_string("store", "");
  opts.scheduler.checkpoint_dir = args.get_string("checkpoint-dir", "");
  opts.scheduler.threads =
      static_cast<std::size_t>(args.get_long("threads", 0));
  opts.scheduler.checkpoint_every_waves =
      static_cast<std::size_t>(args.get_long("checkpoint-every", 1));
  opts.scheduler.start_paused = args.has("paused");
  const bool worker_mode = args.has("worker");
  if (!worker_mode) {
    opts.scheduler.workers =
        static_cast<std::size_t>(args.get_long("workers", 0));
    const std::string attach = args.get_string("attach", "");
    std::size_t start = 0;
    while (start < attach.size()) {
      std::size_t comma = attach.find(',', start);
      if (comma == std::string::npos) comma = attach.size();
      if (comma > start)
        opts.scheduler.worker_sockets.emplace_back(
            attach.substr(start, comma - start));
      start = comma + 1;
    }
  }
  tools::fail_on_unused(args);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  service::Server server(std::move(opts));
  std::printf("wlansim-daemon%s listening on %s\n",
              worker_mode ? " (worker)" : "",
              server.socket_path().string().c_str());
  std::printf("store: %s\n",
              server.scheduler().store_dir().string().c_str());
  if (const service::ShardCoordinator* c = server.scheduler().coordinator())
    std::printf("workers: %zu\n", c->num_workers());
  std::fflush(stdout);
  server.run(&g_stop);
  std::printf("wlansim-daemon stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wlansim-daemon: %s\n", e.what());
    return 1;
  }
}
