// Shared drop-config argument parsing for the wlansim command-line tools.
//
// Same contract as cli_link.h: `wlansim drop` and `wlansim_client drop`
// must build the SAME scenario::DropConfig from the same flags, or the
// byte-identity between the local CLI table and the daemon-served one
// breaks. One definition, two includers.
#pragma once

#include <cstddef>
#include <string>

#include "core/cliargs.h"
#include "scenario/drop.h"
#include "scenario/geometry.h"
#include "cli_link.h"

namespace wlansim::tools {

inline scenario::DropConfig drop_config_from_args(const core::CliArgs& args) {
  scenario::DropConfig cfg;
  cfg.num_stations = static_cast<std::size_t>(args.get_long("stations", 100));
  cfg.num_steps = static_cast<std::size_t>(args.get_long("steps", 1));
  cfg.area_half_m = args.get_double("area-half", cfg.area_half_m);
  cfg.tx_power_dbm = args.get_double("tx-power-dbm", cfg.tx_power_dbm);
  cfg.noise_figure_db = args.get_double("noise-figure", cfg.noise_figure_db);
  cfg.path_loss.exponent = args.get_double("pl-exp", cfg.path_loss.exponent);
  cfg.path_loss.ref_loss_db =
      args.get_double("pl-ref-db", cfg.path_loss.ref_loss_db);
  cfg.path_loss.shadowing_sigma_db =
      args.get_double("shadow-sigma", cfg.path_loss.shadowing_sigma_db);
  cfg.mobility.step_m = args.get_double("walk-step", cfg.mobility.step_m);
  cfg.snr_bin_db = args.get_double("snr-bin", cfg.snr_bin_db);
  cfg.snr_min_db = args.get_double("snr-min", cfg.snr_min_db);
  cfg.snr_max_db = args.get_double("snr-max", cfg.snr_max_db);
  cfg.adj_bin_db = args.get_double("adj-bin", cfg.adj_bin_db);
  cfg.adj_floor_db = args.get_double("adj-floor", cfg.adj_floor_db);

  // Interferer BSSs: counter-seeded positions like stations, with entity
  // indices far above any station index so the streams never collide.
  const auto cochannel = static_cast<std::size_t>(
      args.get_long("cochannel-bss", 0));
  const auto adjacent = static_cast<std::size_t>(
      args.get_long("adjacent-bss", 0));
  const double bss_power = args.get_double("bss-power-dbm", 16.0);
  const double adj_offset = args.get_double("adjacent-offset-hz", 20e6);
  cfg.link = link_from_args(args);
  cfg.seed = cfg.link.seed;
  for (std::size_t j = 0; j < cochannel + adjacent; ++j) {
    scenario::InterfererBss bss;
    bss.position = scenario::place_uniform(cfg.seed, (1ull << 32) + j,
                                           cfg.area_half_m);
    bss.tx_power_dbm = bss_power;
    bss.offset_hz = j < cochannel ? 0.0 : adj_offset;
    cfg.interferers.push_back(bss);
  }

  cfg.threads = static_cast<std::size_t>(args.get_long("threads", 0));
  const auto rule = core::stopping_rule_from_args(args);
  if (rule.has_value()) cfg.rule = *rule;
  cfg.use_store = !args.has("no-store");
  const std::string dir = args.get_string("calib-dir", "");
  if (!dir.empty()) cfg.store_dir = dir;
  return cfg;
}

}  // namespace wlansim::tools
