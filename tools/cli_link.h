// Shared link-config argument parsing for the wlansim command-line tools.
//
// The CLI (`wlansim`) and the service client (`wlansim_client`) must build
// the SAME core::LinkConfig from the same flags — byte-identical output
// between `wlansim sweep --surrogate` and a daemon-served sweep depends on
// it. One definition, two includers; drift is a compile-time impossibility.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "channel/interferer.h"
#include "core/cliargs.h"
#include "core/experiments.h"
#include "core/linkconfig.h"

namespace wlansim::tools {

inline phy::Rate rate_from_mbps(long mbps) {
  switch (mbps) {
    case 6: return phy::Rate::kMbps6;
    case 9: return phy::Rate::kMbps9;
    case 12: return phy::Rate::kMbps12;
    case 18: return phy::Rate::kMbps18;
    case 24: return phy::Rate::kMbps24;
    case 36: return phy::Rate::kMbps36;
    case 48: return phy::Rate::kMbps48;
    case 54: return phy::Rate::kMbps54;
    default:
      throw std::invalid_argument("--rate must be one of 6 9 12 18 24 36 48 54");
  }
}

inline core::LinkConfig link_from_args(const core::CliArgs& args) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate_from_mbps(args.get_long("rate", 24));
  cfg.psdu_bytes = static_cast<std::size_t>(args.get_long("bytes", 200));
  cfg.rx_power_dbm = args.get_double("power-dbm", -65.0);
  if (args.has("no-snr")) {
    cfg.snr_db.reset();
  } else {
    cfg.snr_db = args.get_double("snr", 25.0);
  }
  const std::string rf = args.get_string("rf", "system");
  if (rf == "none") {
    cfg.rf_engine = core::RfEngine::kNone;
  } else if (rf == "system") {
    cfg.rf_engine = core::RfEngine::kSystemLevel;
  } else if (rf == "cosim") {
    cfg.rf_engine = core::RfEngine::kCosim;
  } else {
    throw std::invalid_argument("--rf must be none|system|cosim");
  }
  cfg.rf.lna_p1db_in_dbm = args.get_double("p1db", cfg.rf.lna_p1db_in_dbm);
  cfg.rf.bb_bandwidth_factor =
      args.get_double("bandwidth-factor", cfg.rf.bb_bandwidth_factor);
  cfg.sco_ppm = args.get_double("sco-ppm", 0.0);
  if (args.has("adjacent-db")) {
    cfg.interferer = channel::InterfererConfig{
        .offset_hz = args.get_double("adjacent-offset-hz", 20e6),
        .level_db = args.get_double("adjacent-db", 16.0)};
  }
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 2003));
  return cfg;
}

inline void fail_on_unused(const core::CliArgs& args) {
  const auto extra = args.unused();
  if (extra.empty()) return;
  std::string msg = "unknown option(s):";
  for (const auto& k : extra) msg += " --" + k;
  throw std::invalid_argument(msg);
}

}  // namespace wlansim::tools
