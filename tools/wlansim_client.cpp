// wlansim_client — submit jobs to a running wlansim_daemon.
//
//   wlansim_client ping     --socket /tmp/wlansim.sock
//   wlansim_client stats    --socket /tmp/wlansim.sock
//   wlansim_client shutdown --socket /tmp/wlansim.sock
//   wlansim_client sweep    --socket /tmp/wlansim.sock --param snr|power
//                           --from A --to B --step S [link flags]
//                           [stopping-rule flags] [--bin-width W]
//                           [--no-store] [--csv out.csv]
//   wlansim_client drop     --socket /tmp/wlansim.sock [drop flags]
//
// The sweep subcommand accepts the same link and stopping-rule flags as
// `wlansim sweep` (tools/cli_link.h — one parser, two binaries) and renders
// the daemon's results through the same sim::SweepResult table, so a
// daemon-served sweep and `wlansim sweep --surrogate` over the same flags
// print byte-identical output (modulo the deliberately non-deterministic
// wall_s column, which is exactly 0 for store-served points on both paths).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "cli_drop.h"
#include "cli_link.h"
#include "core/cliargs.h"
#include "service/protocol.h"
#include "service/shard.h"
#include "sim/sweep.h"

namespace {

using namespace wlansim;

/// One round trip: connect, send `request` + '\n', read one response line.
/// Connect retries with backoff for a bounded window (default 5 s,
/// $WLANSIM_CONNECT_TIMEOUT_MS to change it), so racing a just-started
/// daemon waits for its socket instead of failing — CI smoke needs no
/// sleep loops.
std::string round_trip(const std::string& socket_path,
                       const std::string& request) {
  int timeout_ms = 5000;
  if (const char* env = std::getenv("WLANSIM_CONNECT_TIMEOUT_MS")) {
    if (*env != '\0') timeout_ms = std::atoi(env);
  }
  const int fd = service::connect_unix_retry(socket_path, timeout_ms);
  if (fd < 0) {
    throw std::runtime_error("connect(" + socket_path + "): " +
                             std::strerror(errno) +
                             " (is wlansim_daemon running?)");
  }

  const std::string line = request + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("send(): ") + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      ::close(fd);
      return buffer.substr(0, nl);
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("recv(): ") + std::strerror(err));
    }
    if (n == 0) {
      ::close(fd);
      throw std::runtime_error("daemon closed the connection mid-response");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

service::Json parse_response(const std::string& line) {
  std::string err;
  const std::optional<service::Json> j = service::Json::parse(line, &err);
  if (!j) throw std::runtime_error("malformed response: " + err);
  return *j;
}

int cmd_simple(const std::string& op, const core::CliArgs& args) {
  const std::string sock = args.get_string("socket", "/tmp/wlansim.sock");
  tools::fail_on_unused(args);
  service::Json req = service::Json::object();
  req.set("op", service::Json::string(op));
  const std::string reply = round_trip(sock, req.dump());
  std::printf("%s\n", reply.c_str());
  const service::Json j = parse_response(reply);
  const service::Json* ok = j.find("ok");
  return (ok && ok->is_bool() && ok->as_bool()) ? 0 : 1;
}

int cmd_sweep(const core::CliArgs& args) {
  const std::string sock = args.get_string("socket", "/tmp/wlansim.sock");
  const std::string csv = args.get_string("csv", "");

  service::SweepRequest sweep;
  sweep.param = args.get_string("param", "snr");
  sweep.from = args.get_double("from", 5.0);
  sweep.to = args.get_double("to", 25.0);
  sweep.step = args.get_double("step", 2.0);
  if (sweep.step <= 0.0 || sweep.to < sweep.from)
    throw std::invalid_argument("sweep needs --from <= --to and --step > 0");
  sweep.base = tools::link_from_args(args);
  // Absent stopping flags mean the same default adaptive rule the CLI's
  // --surrogate path uses (core::SurrogateOptions' default).
  sweep.rule =
      core::stopping_rule_from_args(args).value_or(sim::StoppingRule{});
  sweep.bin_width_db = args.get_double("bin-width", 0.0);
  sweep.use_store = !args.has("no-store");
  tools::fail_on_unused(args);

  service::Json req = sweep.to_json();
  const service::ResultsReply reply =
      service::results_reply_from_json(parse_response(round_trip(
          sock, req.dump())));
  if (reply.results.size() != reply.values.size())
    throw std::runtime_error("daemon returned a mismatched result count");

  // The exact row set `wlansim sweep --surrogate` builds — same keys, same
  // values — rendered through the same table writer.
  sim::SweepResult res;
  res.param_name = sweep.param;
  res.rows.reserve(reply.values.size());
  for (std::size_t k = 0; k < reply.values.size(); ++k) {
    const core::BerResult& r = reply.results[k];
    std::map<std::string, double> row{
        {"ber", r.ber()}, {"per", r.per()}, {"evm", r.evm_rms_avg}};
    row["packets"] = static_cast<double>(r.packets);
    row["bit_errors"] = static_cast<double>(r.bit_errors);
    row["ci_rel"] = r.ber_ci_rel;
    row["converged"] = r.converged ? 1.0 : 0.0;
    row["wall_s"] = r.wall_seconds;
    row["surrogate"] = r.from_surrogate ? 1.0 : 0.0;
    res.rows.push_back(sim::SweepRow{reply.values[k], std::move(row)});
  }

  std::fputs(res.to_table().c_str(), stdout);
  if (!csv.empty()) {
    std::ofstream os(csv);
    os << res.to_csv();
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

int cmd_drop(const core::CliArgs& args) {
  const std::string sock = args.get_string("socket", "/tmp/wlansim.sock");
  // Same flag surface as `wlansim drop` (tools/cli_drop.h — one parser,
  // two binaries). --threads and --calib-dir parse but stay local: the
  // daemon evaluates with ITS threads against ITS store.
  service::DropRequest drop;
  drop.cfg = tools::drop_config_from_args(args);
  tools::fail_on_unused(args);

  const scenario::DropSummary summary = service::drop_summary_from_json(
      parse_response(round_trip(sock, drop.to_json().dump())));
  // The CLI's exact table bytes (scenario::drop_summary_table on both
  // ends) — a daemon-served drop prints what `wlansim drop` prints.
  std::fputs(scenario::drop_summary_table(summary).c_str(), stdout);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: wlansim_client <ping|stats|shutdown|sweep|drop> "
               "--socket PATH [options]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const core::CliArgs args = core::CliArgs::parse(argc, argv, 2);
    if (cmd == "ping" || cmd == "stats" || cmd == "shutdown")
      return cmd_simple(cmd, args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "drop") return cmd_drop(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wlansim_client: %s\n", e.what());
    return 1;
  }
}
