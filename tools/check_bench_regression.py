#!/usr/bin/env python3
"""Compare a fresh BENCH_engine.json against the committed baseline.

Fails (exit 1) when any watched benchmark's cpu_time regressed beyond the
tolerance factor, so perf regressions on the packet hot path surface in CI
instead of silently accumulating. Run via the `bench-check` CMake target or
directly:

    tools/run_bench.sh                      # re-record BENCH_engine.json
    tools/check_bench_regression.py --fresh /tmp/fresh.json

With --dry-run no baseline is consulted: the fresh recording alone is
validated (parses, Release-flavored, and contains every watched benchmark).
run_bench.sh uses this to vet a recording before publishing it, and CI uses
it to keep the bench suite compiling and the watch list honest on machines
with no trustworthy baseline timing.

cpu_time is compared rather than real_time: the BER-sweep benches are
wall-clock parallel and cpu_time is the steadier signal on loaded CI boxes.
"""

import argparse
import json
import sys

# The hot-path benches the PR-level perf targets are stated against.
DEFAULT_WATCHED = [
    "BM_ViterbiDecode/4096",
    "BM_FullPacketSystemLevel",
    "BM_BerWaterfallMemoized/iterations:1",
    "BM_BerSweepAdaptive/iterations:1",
    "BM_BerSweepFixedBudget/iterations:1",
    "BM_RfChainThroughput",
    "BM_RfChainFused",
    "BM_SyncDetect",
    "BM_FftBatch64/8",
    "BM_FftBatch64/32",
    "BM_TxModulateBatch",
    "BM_RxDataSymbolsBatch",
    "BM_SurrogateCalibrateCold/iterations:1",
    "BM_SurrogateQueryWarm/iterations:1",
    "BM_DropThroughputCold/iterations:1",
    "BM_DropThroughputWarm/iterations:1",
    "BM_ServiceColdCoalesced/iterations:1",
    "BM_ServiceWarmQuery/iterations:1",
    "BM_ShardedColdSweep/1/iterations:1",
    "BM_ShardedColdSweep/2/iterations:1",
    "BM_ShardedColdSweep/4/iterations:1",
]


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    ctx = data.get("context", {})
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = (float(b["cpu_time"]), b.get("time_unit", "ns"))
    return ctx, times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_engine.json",
                    help="committed baseline JSON (default: %(default)s)")
    ap.add_argument("--fresh", required=True,
                    help="freshly recorded benchmark JSON to check")
    ap.add_argument("--tolerance", type=float, default=1.30,
                    help="max allowed fresh/baseline cpu_time ratio "
                         "(default: %(default)s)")
    ap.add_argument("--benchmarks", default=",".join(DEFAULT_WATCHED),
                    help="comma-separated benchmark names to watch "
                         "(default: the hot-path set)")
    ap.add_argument("--dry-run", action="store_true",
                    help="validate the fresh recording only (no baseline "
                         "comparison): it must parse, be Release-flavored, "
                         "and contain every watched benchmark")
    args = ap.parse_args()

    watched = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    if args.dry_run:
        try:
            fresh_ctx, fresh = load_times(args.fresh)
        except (OSError, ValueError, KeyError) as err:
            print(f"bench-check: --dry-run: cannot read {args.fresh}: {err}",
                  file=sys.stderr)
            return 1
        failures = []
        if fresh_ctx.get("wlansim_non_release_build"):
            failures.append(
                f"recorded from a non-Release build "
                f"({fresh_ctx['wlansim_non_release_build']})")
        for name in watched:
            if name not in fresh:
                failures.append(f"watched benchmark '{name}' missing")
        if failures:
            for msg in failures:
                print(f"bench-check: FAILURE: {args.fresh}: {msg}",
                      file=sys.stderr)
            return 1
        print(f"bench-check: --dry-run: {args.fresh} OK "
              f"({len(watched)} watched benchmarks present)")
        return 0

    base_ctx, base = load_times(args.baseline)
    fresh_ctx, fresh = load_times(args.fresh)

    for ctx, label in ((base_ctx, args.baseline), (fresh_ctx, args.fresh)):
        if ctx.get("wlansim_non_release_build"):
            print(f"bench-check: {label} was recorded from a non-Release "
                  f"build ({ctx['wlansim_non_release_build']}); refusing "
                  "to compare.", file=sys.stderr)
            return 1

    # A debug google-benchmark library inflates harness overhead; comparing
    # across library flavors measures the harness, not the code. Same flavor
    # on both sides (even debug-vs-debug, for boxes whose packaged
    # libbenchmark only ships debug) compares fine.
    base_lib = base_ctx.get("library_build_type", "")
    fresh_lib = fresh_ctx.get("library_build_type", "")
    if base_lib != fresh_lib:
        print(f"bench-check: library_build_type mismatch — baseline "
              f"'{base_lib or '<unset>'}' vs fresh '{fresh_lib or '<unset>'}'; "
              "refusing to compare across libbenchmark flavors.",
              file=sys.stderr)
        return 1

    failures = []
    for name in watched:
        # A watched name absent from the FRESH run is a hard failure: a
        # silent skip would let a renamed or accidentally-dropped benchmark
        # evacuate the watch list without anyone noticing.
        if name not in fresh:
            failures.append(f"'{name}' missing from fresh run {args.fresh}")
            continue
        # Absent from the baseline but present fresh = a benchmark newly
        # added to the watch list, checked against a recording that predates
        # it. Nothing to compare yet — report it and move on, so growing the
        # watch list does not hard-fail every older baseline. (Re-record
        # with tools/run_bench.sh to start tracking it.)
        if name not in base:
            print(f"bench-check: NEW {name}: not in baseline "
                  f"{args.baseline}; recorded fresh, nothing to compare")
            continue
        (b, unit_b), (f, unit_f) = base[name], fresh[name]
        if unit_b != unit_f:
            failures.append(f"'{name}': time_unit mismatch "
                            f"({unit_b} vs {unit_f})")
            continue
        ratio = f / b if b > 0 else float("inf")
        status = "OK " if ratio <= args.tolerance else "FAIL"
        print(f"bench-check: {status} {name}: {b:.0f} -> {f:.0f} {unit_b} "
              f"(x{ratio:.3f}, tolerance x{args.tolerance:.2f})")
        if ratio > args.tolerance:
            failures.append(
                f"'{name}' regressed x{ratio:.3f} — cpu_time "
                f"+{(ratio - 1.0) * 100.0:.1f}% over baseline, "
                f"{(ratio - args.tolerance) * 100.0:.1f} points past the "
                f"x{args.tolerance:.2f} tolerance "
                f"({b:.0f} -> {f:.0f} {unit_b})")

    if failures:
        for msg in failures:
            print(f"bench-check: FAILURE: {msg}", file=sys.stderr)
        return 1
    print("bench-check: all watched benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
