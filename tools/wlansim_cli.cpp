// wlansim — command-line driver for the link-level verification framework.
//
//   wlansim ber     --rate 24 --snr 20 --packets 50 [--adjacent-db 16]
//                   [--rf system|none|cosim] [--power-dbm -65]
//                   [--p1db -20] [--bandwidth-factor 1.0] [--threads 4]
//   wlansim sweep   --param snr|p1db|bandwidth|power --from A --to B
//                   --step S [--packets N] [--csv out.csv]
//   wlansim spectrum [--adjacent-db 16] [--csv psd.csv]
//   wlansim rfchar
//   wlansim help
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/arq.h"
#include "core/cliargs.h"
#include "core/experiments.h"
#include "core/parallel.h"
#include "core/surrogate.h"
#include "dsp/mathutil.h"
#include "rf/analyses.h"
#include "scenario/drop.h"
#include "scenario/trace.h"
#include "sim/waveio.h"
#include "cli_drop.h"
#include "cli_link.h"

namespace {

using namespace wlansim;
using tools::fail_on_unused;
using tools::link_from_args;

void print_ber_result(const core::LinkConfig& cfg, const core::BerResult& r) {
  std::printf("rate        : %s\n",
              std::string(phy::rate_name(cfg.rate)).c_str());
  std::printf("packets     : %zu x %zu bytes\n", r.packets, cfg.psdu_bytes);
  std::printf("BER         : %.3e  (%zu/%zu bits)\n", r.ber(), r.bit_errors,
              r.bits);
  std::printf("PER         : %.3f  (%zu errored, %zu lost)\n", r.per(),
              r.packet_errors, r.packets_lost);
  std::printf("EVM         : %.2f %%\n", 100.0 * r.evm_rms_avg);
  std::printf("BER 95%% CI  : +/- %.1f %% relative\n", 100.0 * r.ber_ci_rel);
}

int cmd_ber(const core::CliArgs& args) {
  const core::LinkConfig cfg = link_from_args(args);
  const auto packets = static_cast<std::size_t>(args.get_long("packets", 20));
  const auto threads = static_cast<std::size_t>(args.get_long("threads", 0));
  const auto rule = core::stopping_rule_from_args(args);
  const bool surrogate = args.has("surrogate");
  const core::SurrogateOptions sopts = core::surrogate_options_from_args(
      args, sim::SurrogateAxis::kSnrDb, rule, threads);
  fail_on_unused(args);

  if (surrogate) {
    const core::BerResult r = core::run_ber_surrogate(cfg, sopts);
    print_ber_result(cfg, r);
    if (r.from_surrogate) {
      std::printf("source      : calibration store (surrogate, ~0 packets)\n");
    } else {
      std::printf("source      : adaptive MC (store miss; curve backfilled "
                  "for next time)\n");
      std::printf("wall        : %.2f s\n", r.wall_seconds);
    }
    return 0;
  }
  if (rule.has_value()) {
    const core::BerResult r = core::run_ber_adaptive(cfg, *rule, threads);
    print_ber_result(cfg, r);
    std::printf("stopping    : %s after %zu packets (target CI %.0f %%, "
                ">= %zu errors, cap %zu)\n",
                r.converged ? "converged" : "hit packet cap", r.packets,
                100.0 * rule->target_rel_ci, rule->min_errors,
                rule->max_packets);
    std::printf("wall        : %.2f s\n", r.wall_seconds);
  } else {
    print_ber_result(cfg, core::run_ber_parallel(cfg, packets, threads));
  }
  return 0;
}

int cmd_sweep(const core::CliArgs& args) {
  const std::string param = args.get_string("param", "snr");
  const double from = args.get_double("from", 5.0);
  const double to = args.get_double("to", 25.0);
  const double step = args.get_double("step", 2.0);
  const auto packets = static_cast<std::size_t>(args.get_long("packets", 10));
  const auto threads = static_cast<std::size_t>(args.get_long("threads", 0));
  const std::string csv = args.get_string("csv", "");
  const auto rule = core::stopping_rule_from_args(args);
  if (step <= 0.0 || to < from)
    throw std::invalid_argument("sweep needs --from <= --to and --step > 0");

  std::vector<double> values;
  for (double v = from; v <= to + 1e-9; v += step) values.push_back(v);

  const bool surrogate = args.has("surrogate");
  std::optional<sim::SurrogateAxis> axis;
  if (surrogate) {
    if (param == "snr") {
      axis = sim::SurrogateAxis::kSnrDb;
    } else if (param == "power") {
      axis = sim::SurrogateAxis::kRxPowerDbm;
    } else {
      throw std::invalid_argument(
          "--surrogate sweeps support --param snr|power only (other "
          "parameters change the front-end, i.e. the calibration key)");
    }
  }
  const core::SurrogateOptions sopts = core::surrogate_options_from_args(
      args, axis.value_or(sim::SurrogateAxis::kSnrDb), rule, threads);

  const core::LinkConfig base = link_from_args(args);
  fail_on_unused(args);

  std::vector<core::LinkConfig> points;
  points.reserve(values.size());
  for (const double v : values) {
    core::LinkConfig cfg = base;
    if (param == "snr") {
      cfg.snr_db = v;
    } else if (param == "p1db") {
      cfg.rf.lna_p1db_in_dbm = v;
    } else if (param == "bandwidth") {
      cfg.rf.bb_bandwidth_factor = v;
    } else if (param == "power") {
      cfg.rx_power_dbm = v;
    } else if (param == "sco") {
      cfg.sco_ppm = v;
    } else {
      throw std::invalid_argument(
          "--param must be snr|p1db|bandwidth|power|sco");
    }
    points.push_back(cfg);
  }

  std::vector<core::BerResult> results;
  if (surrogate) {
    results = core::sweep_ber_surrogate(points, sopts);
  } else if (rule.has_value()) {
    core::SweepOptions opts;
    opts.threads = threads;
    results = core::sweep_ber_adaptive(points, *rule, opts);
  } else {
    results = core::sweep_ber_parallel(points, packets, threads);
  }

  sim::SweepResult res;
  res.param_name = param;
  res.rows.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    const core::BerResult& r = results[k];
    std::map<std::string, double> row{
        {"ber", r.ber()}, {"per", r.per()}, {"evm", r.evm_rms_avg}};
    if (rule.has_value() || surrogate) {
      row["packets"] = static_cast<double>(r.packets);
      row["bit_errors"] = static_cast<double>(r.bit_errors);
      row["ci_rel"] = r.ber_ci_rel;
      row["converged"] = r.converged ? 1.0 : 0.0;
      row["wall_s"] = r.wall_seconds;
    }
    if (surrogate) row["surrogate"] = r.from_surrogate ? 1.0 : 0.0;
    res.rows.push_back(sim::SweepRow{values[k], std::move(row)});
  }

  std::fputs(res.to_table().c_str(), stdout);
  if (!csv.empty()) {
    std::ofstream os(csv);
    os << res.to_csv();
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

int cmd_goodput(const core::CliArgs& args) {
  const core::LinkConfig cfg = link_from_args(args);
  core::ArqConfig arq;
  arq.payload_bytes = static_cast<std::size_t>(args.get_long("payload", 500));
  arq.num_frames = static_cast<std::size_t>(args.get_long("frames", 20));
  arq.max_retries = static_cast<std::size_t>(args.get_long("retries", 3));
  fail_on_unused(args);

  const core::ArqResult r = core::run_arq(cfg, arq);
  std::printf("frames      : %zu offered, %zu delivered (%.0f %%)\n",
              r.frames_offered, r.frames_delivered,
              100.0 * r.delivery_ratio());
  std::printf("attempts    : %zu (%zu FCS failures, %zu PHY losses)\n",
              r.attempts, r.fcs_failures, r.phy_losses);
  std::printf("air time    : %.2f ms\n", 1e3 * r.air_time_s);
  std::printf("goodput     : %.2f Mbps\n",
              r.goodput_bps(arq.payload_bytes) / 1e6);
  return 0;
}

int cmd_drop(const core::CliArgs& args) {
  scenario::DropConfig cfg = tools::drop_config_from_args(args);
  const std::string csv = args.get_string("csv", "");
  const std::string jsonl = args.get_string("jsonl", "");
  const std::string run_tag = args.get_string("run-tag", "drop");
  fail_on_unused(args);

  std::ofstream csv_os, jsonl_os;
  std::vector<scenario::TraceWriter> writers;
  if (!csv.empty()) {
    csv_os.open(csv);
    if (!csv_os) throw std::runtime_error("cannot open " + csv);
    writers.emplace_back(csv_os, scenario::TraceFormat::kCsv, run_tag);
  }
  if (!jsonl.empty()) {
    jsonl_os.open(jsonl);
    if (!jsonl_os) throw std::runtime_error("cannot open " + jsonl);
    writers.emplace_back(jsonl_os, scenario::TraceFormat::kJsonl, run_tag);
  }

  const scenario::DropSummary summary = scenario::run_drop(
      cfg, [&writers](const scenario::StationSample& s) {
        for (auto& w : writers) w.write(s);
      });

  std::fputs(scenario::drop_summary_table(summary).c_str(), stdout);
  if (!csv.empty()) std::printf("wrote %s\n", csv.c_str());
  if (!jsonl.empty()) std::printf("wrote %s\n", jsonl.c_str());
  return 0;
}

int cmd_spectrum(const core::CliArgs& args) {
  core::LinkConfig cfg = link_from_args(args);
  const std::string csv = args.get_string("csv", "");
  fail_on_unused(args);

  const core::SpectrumResult res = core::experiment_fig4_spectrum(cfg);
  std::printf("wanted channel power   : %7.2f dBm\n", res.wanted_power_dbm);
  if (cfg.interferer.has_value()) {
    std::printf("adjacent channel power : %7.2f dBm at %+.0f MHz\n",
                res.adjacent_power_dbm, res.offset_hz / 1e6);
  }
  if (!csv.empty()) {
    sim::write_psd_csv(csv, res.psd, res.sample_rate_hz);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

int cmd_rfchar(const core::CliArgs& args) {
  core::LinkConfig cfg = link_from_args(args);
  fail_on_unused(args);
  rf::DoubleConversionConfig rfc = cfg.rf;
  rfc.sample_rate_hz = phy::kSampleRate * cfg.oversample;
  rfc.agc.loop_gain = 0.0;
  rfc.agc.initial_gain_db = 0.0;
  rfc.adc.enabled = false;
  rfc.noise_enabled = false;
  rf::DoubleConversionReceiver chain(rfc, dsp::Rng(1));

  rf::ToneTestConfig tc;
  tc.sample_rate_hz = rfc.sample_rate_hz;
  tc.num_samples = 1 << 14;
  tc.settle_samples = 1 << 13;
  std::printf("gain           : %7.2f dB\n",
              rf::measure_gain_db(chain, tc, -60.0));
  std::printf("input P1dB     : %7.2f dBm\n",
              rf::measure_p1db_in_dbm(chain, tc, rfc.lna_p1db_in_dbm - 15.0,
                                      rfc.lna_p1db_in_dbm + 10.0));
  std::printf("ACR (+20 MHz)  : %7.2f dB\n",
              rf::measure_rejection_db(chain, tc, 3e6, 20e6));
  rfc.noise_enabled = true;
  rf::DoubleConversionReceiver noisy(rfc, dsp::Rng(2));
  rf::ToneTestConfig tnf = tc;
  tnf.tone_hz = 3e6;  // spot NF above the flicker corner
  std::printf("noise figure   : %7.2f dB (spot, 3 MHz)\n",
              rf::measure_noise_figure_db(noisy, tnf));
  return 0;
}

void usage() {
  std::fputs(
      "wlansim — 802.11a link-level verification with RF in the loop\n"
      "\n"
      "  wlansim ber      [link options] [--packets N] [--threads T]\n"
      "                   [adaptive options] [surrogate options]\n"
      "  wlansim goodput  [link options] [--payload B] [--frames N]\n"
      "                   [--retries R]\n"
      "  wlansim sweep    --param snr|p1db|bandwidth|power|sco\n"
      "                   --from A --to B --step S [--packets N] [--csv F]\n"
      "                   [--threads T] [adaptive options]\n"
      "                   [surrogate options]\n"
      "  wlansim drop     [drop options] [link options] [--threads T]\n"
      "                   [adaptive options] [--calib-dir DIR]\n"
      "  wlansim spectrum [link options] [--csv F]\n"
      "  wlansim rfchar   [link options]\n"
      "\n"
      "drop options (network-scale multi-user drop: stations placed around\n"
      "an AP, log-distance path loss + shadowing + random-walk mobility;\n"
      "every station-step evaluated through the full PHY/RF chain,\n"
      "deduplicated by quantized SNR and served from the calibration\n"
      "store):\n"
      "  --stations N                   station count [100]\n"
      "  --steps N                      mobility steps [1]\n"
      "  --area-half M                  stations in [-M, M]^2 meters [50]\n"
      "  --tx-power-dbm P               AP transmit power [16]\n"
      "  --noise-figure NF              receiver noise figure [7]\n"
      "  --pl-exp E                     path-loss exponent [3]\n"
      "  --pl-ref-db L                  loss at 1 m [46.7]\n"
      "  --shadow-sigma S               lognormal shadowing sigma [6]\n"
      "  --walk-step M                  random-walk step length [1]\n"
      "  --cochannel-bss N              co-channel interferer BSSs [0]\n"
      "  --adjacent-bss N               adjacent-channel BSSs [0]\n"
      "  --bss-power-dbm P              interferer BSS power [16]\n"
      "  --snr-bin W                    SNR dedup bin width [0.5]\n"
      "  --snr-min A / --snr-max B      SNR clamp span [0, 30]\n"
      "  --adj-bin W                    adjacent-level bin width [2]\n"
      "  --adj-floor L                  drop adjacent below L dB rel [-10]\n"
      "  --csv F / --jsonl F            stream per-station traces\n"
      "  --run-tag TAG                  tag column in traces [drop]\n"
      "  --no-store                     dedup only, skip calibration store\n"
      "\n"
      "adaptive options (any one enables early-stopping Monte-Carlo; each\n"
      "point then runs until its BER confidence interval is tight enough\n"
      "instead of a fixed --packets budget; results are deterministic for\n"
      "any thread count):\n"
      "  --target-ci R                  stop at relative 95%-CI half-width\n"
      "                                 <= R on the BER estimate [0.10]\n"
      "  --min-errors E                 require E bit errors first [100]\n"
      "  --min-packets N                minimum packets per point [8]\n"
      "  --max-packets N                hard cap per point [10000]\n"
      "\n"
      "surrogate options (ber and sweep; sweep supports --param snr|power):\n"
      "  --surrogate                    answer from the persistent BER\n"
      "                                 calibration store when a stored\n"
      "                                 curve covers the point; misses run\n"
      "                                 adaptive MC and backfill the store\n"
      "  --calib-dir DIR                calibration store directory\n"
      "                                 [$WLANSIM_CALIB_DIR, else\n"
      "                                 ~/.cache/wlansim/calib]\n"
      "\n"
      "link options:\n"
      "  --rate 6|9|12|18|24|36|48|54   data rate [24]\n"
      "  --bytes N                      PSDU size [200]\n"
      "  --power-dbm P                  receive level [-65]\n"
      "  --snr S | --no-snr             channel SNR [25]\n"
      "  --rf none|system|cosim         RF engine [system]\n"
      "  --p1db P                       LNA compression point [-20]\n"
      "  --bandwidth-factor F           channel filter width [1.0]\n"
      "  --sco-ppm P                    TX clock offset [0]\n"
      "  --adjacent-db L                enable adjacent channel at +20 MHz\n"
      "  --adjacent-offset-hz F         interferer offset [20e6]\n"
      "  --seed N                       reproducibility seed [2003]\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    const core::CliArgs args = core::CliArgs::parse(argc, argv, 2);
    if (cmd == "ber") return cmd_ber(args);
    if (cmd == "goodput") return cmd_goodput(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "drop") return cmd_drop(args);
    if (cmd == "spectrum") return cmd_spectrum(args);
    if (cmd == "rfchar") return cmd_rfchar(args);
    if (cmd == "help" || cmd == "--help") {
      usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
