#!/usr/bin/env bash
# Build and run the engine microbenchmarks, writing Google-Benchmark JSON to
# BENCH_engine.json at the repo root (the file docs/PERFORMANCE.md explains).
#
# Usage: tools/run_bench.sh [build-dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 )) || true

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" -j --target engine_perf > /dev/null

out="$repo_root/BENCH_engine.json"
# Older google-benchmark wants a plain number for --benchmark_min_time.
"$build_dir/bench/engine_perf" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@" > /dev/null

echo "wrote $out"
