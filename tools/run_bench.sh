#!/usr/bin/env bash
# Build and run the engine microbenchmarks, writing Google-Benchmark JSON to
# BENCH_engine.json at the repo root (the file docs/PERFORMANCE.md explains).
#
# The committed baseline must come from a Release build: anything else
# (RelWithDebInfo included) measures a different binary than the one the
# perf targets are stated against. The script therefore refuses non-Release
# build trees unless WLANSIM_BENCH_ALLOW_NONRELEASE=1, in which case the
# output is loudly annotated instead.
#
# The same goes for the google-benchmark *library* itself: a debug
# libbenchmark inflates the per-iteration harness overhead, which the JSON
# records as context.library_build_type == "debug". Such a recording is
# rejected (the partial output is removed), not merely annotated, unless
# WLANSIM_BENCH_ALLOW_DEBUG_LIBBENCHMARK=1 — needed on boxes whose packaged
# libbenchmark only ships the debug flavor.
#
# Usage: tools/run_bench.sh [build-dir] [extra benchmark args...]
#   build-dir defaults to <repo>/build-release, configured as Release.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"
shift $(( $# > 0 ? 1 : 0 )) || true

if [[ -f "$build_dir/CMakeCache.txt" ]]; then
  cmake -B "$build_dir" -S "$repo_root" > /dev/null
else
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release > /dev/null
fi

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ "$build_type" != "Release" ]]; then
  if [[ "${WLANSIM_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
    echo "run_bench.sh: '$build_dir' is configured as '${build_type:-<unset>}'," >&2
    echo "  not Release. Benchmark numbers from such a build are not" >&2
    echo "  comparable to the committed baseline. Either pass a Release" >&2
    echo "  build dir (default: tools/run_bench.sh with no args) or set" >&2
    echo "  WLANSIM_BENCH_ALLOW_NONRELEASE=1 to record annotated numbers." >&2
    exit 1
  fi
  echo "run_bench.sh: WARNING: recording from a '${build_type:-<unset>}' build;" >&2
  echo "  numbers will NOT be comparable to the Release baseline." >&2
fi

# Fail fast, with a message naming the fix, when the tree has no bench
# targets at all (configured before bench/ existed, or with the benchmark
# package missing) — otherwise the --target build dies with an opaque
# "No rule to make target 'engine_perf'".
# (grep without -q: an early-exit grep would SIGPIPE cmake and trip pipefail
# on perfectly good trees.)
if ! cmake --build "$build_dir" --target help 2>/dev/null \
    | grep 'engine_perf' > /dev/null; then
  echo "run_bench.sh: build tree '$build_dir' has no 'engine_perf' target." >&2
  echo "  The tree was configured without the benchmark suite (stale cache" >&2
  echo "  from before bench/ existed, or find_package(benchmark) failed)." >&2
  echo "  Reconfigure it — e.g. 'rm -rf $build_dir' and rerun this script" >&2
  echo "  — or pass a build dir that has the bench targets." >&2
  exit 1
fi

cmake --build "$build_dir" -j --target engine_perf > /dev/null

bench_bin="$build_dir/bench/engine_perf"
if [[ ! -x "$bench_bin" ]]; then
  echo "run_bench.sh: built engine_perf but '$bench_bin' is missing;" >&2
  echo "  the build tree does not place bench binaries in <dir>/bench/." >&2
  exit 1
fi

out="$repo_root/BENCH_engine.json"
tmp_out="$out.tmp"
# Older google-benchmark wants a plain number for --benchmark_min_time.
"$bench_bin" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="$tmp_out" \
  --benchmark_out_format=json \
  "$@" > /dev/null

# Recording into a temp file means a rejected run leaves the committed
# baseline untouched.
lib_build_type="$(python3 -c 'import json,sys
print(json.load(open(sys.argv[1]))["context"].get("library_build_type", ""))' \
  "$tmp_out")"
if [[ "$lib_build_type" == "debug" ]]; then
  if [[ "${WLANSIM_BENCH_ALLOW_DEBUG_LIBBENCHMARK:-0}" != "1" ]]; then
    rm -f "$tmp_out"
    echo "run_bench.sh: the google-benchmark library linked into engine_perf" >&2
    echo "  is a debug build (context.library_build_type == \"debug\"); its" >&2
    echo "  harness overhead is not comparable to a release-library baseline." >&2
    echo "  Link a release libbenchmark, or set" >&2
    echo "  WLANSIM_BENCH_ALLOW_DEBUG_LIBBENCHMARK=1 to record anyway" >&2
    echo "  (check_bench_regression.py still refuses cross-flavor compares)." >&2
    exit 1
  fi
  echo "run_bench.sh: WARNING: debug libbenchmark; numbers are only" >&2
  echo "  comparable to a baseline recorded with the same library flavor." >&2
fi

# Vet the recording we just made before it can become the baseline: it must
# parse and contain every benchmark the regression checker watches. Catches
# a watched-list/suite drift (renamed or dropped benchmark) at record time
# instead of at the next bench-check.
if ! python3 "$repo_root/tools/check_bench_regression.py" \
    --dry-run --fresh "$tmp_out"; then
  rm -f "$tmp_out"
  echo "run_bench.sh: freshly recorded output failed validation (see" >&2
  echo "  bench-check messages above); baseline left untouched." >&2
  exit 1
fi
mv "$tmp_out" "$out"

if [[ "$build_type" != "Release" ]]; then
  python3 - "$out" "$build_type" <<'EOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    data = json.load(f)
data["context"]["wlansim_non_release_build"] = build_type
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
EOF
  echo "wrote $out (ANNOTATED: non-Release '$build_type' build)"
else
  echo "wrote $out"
fi
