file(REMOVE_RECURSE
  "CMakeFiles/wlansim_cli.dir/wlansim_cli.cpp.o"
  "CMakeFiles/wlansim_cli.dir/wlansim_cli.cpp.o.d"
  "wlansim"
  "wlansim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
