# Empty compiler generated dependencies file for wlansim_cli.
# This may be replaced when dependencies are built.
