file(REMOVE_RECURSE
  "../bench/phase_noise_study"
  "../bench/phase_noise_study.pdb"
  "CMakeFiles/phase_noise_study.dir/phase_noise_study.cpp.o"
  "CMakeFiles/phase_noise_study.dir/phase_noise_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_noise_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
