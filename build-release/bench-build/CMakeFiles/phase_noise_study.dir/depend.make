# Empty dependencies file for phase_noise_study.
# This may be replaced when dependencies are built.
