# Empty dependencies file for dynamic_range.
# This may be replaced when dependencies are built.
