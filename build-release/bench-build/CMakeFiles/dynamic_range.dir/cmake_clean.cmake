file(REMOVE_RECURSE
  "../bench/dynamic_range"
  "../bench/dynamic_range.pdb"
  "CMakeFiles/dynamic_range.dir/dynamic_range.cpp.o"
  "CMakeFiles/dynamic_range.dir/dynamic_range.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
