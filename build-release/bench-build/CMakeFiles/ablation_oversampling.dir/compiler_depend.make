# Empty compiler generated dependencies file for ablation_oversampling.
# This may be replaced when dependencies are built.
