file(REMOVE_RECURSE
  "../bench/ablation_oversampling"
  "../bench/ablation_oversampling.pdb"
  "CMakeFiles/ablation_oversampling.dir/ablation_oversampling.cpp.o"
  "CMakeFiles/ablation_oversampling.dir/ablation_oversampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oversampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
