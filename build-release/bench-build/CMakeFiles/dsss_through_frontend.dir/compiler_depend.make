# Empty compiler generated dependencies file for dsss_through_frontend.
# This may be replaced when dependencies are built.
