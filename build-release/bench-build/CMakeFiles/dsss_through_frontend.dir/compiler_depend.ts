# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dsss_through_frontend.
