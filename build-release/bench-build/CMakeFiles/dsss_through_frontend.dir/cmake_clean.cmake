file(REMOVE_RECURSE
  "../bench/dsss_through_frontend"
  "../bench/dsss_through_frontend.pdb"
  "CMakeFiles/dsss_through_frontend.dir/dsss_through_frontend.cpp.o"
  "CMakeFiles/dsss_through_frontend.dir/dsss_through_frontend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsss_through_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
