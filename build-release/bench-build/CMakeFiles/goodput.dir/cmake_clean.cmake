file(REMOVE_RECURSE
  "../bench/goodput"
  "../bench/goodput.pdb"
  "CMakeFiles/goodput.dir/goodput.cpp.o"
  "CMakeFiles/goodput.dir/goodput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
