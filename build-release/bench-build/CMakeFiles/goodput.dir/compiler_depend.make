# Empty compiler generated dependencies file for goodput.
# This may be replaced when dependencies are built.
