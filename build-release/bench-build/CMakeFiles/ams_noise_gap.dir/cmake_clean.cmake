file(REMOVE_RECURSE
  "../bench/ams_noise_gap"
  "../bench/ams_noise_gap.pdb"
  "CMakeFiles/ams_noise_gap.dir/ams_noise_gap.cpp.o"
  "CMakeFiles/ams_noise_gap.dir/ams_noise_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ams_noise_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
