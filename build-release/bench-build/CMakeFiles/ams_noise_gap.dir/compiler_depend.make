# Empty compiler generated dependencies file for ams_noise_gap.
# This may be replaced when dependencies are built.
