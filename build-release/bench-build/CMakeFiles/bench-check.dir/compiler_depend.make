# Empty custom commands generated dependencies file for bench-check.
# This may be replaced when dependencies are built.
