file(REMOVE_RECURSE
  "CMakeFiles/bench-check"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
