file(REMOVE_RECURSE
  "../bench/ablation_soft_hard"
  "../bench/ablation_soft_hard.pdb"
  "CMakeFiles/ablation_soft_hard.dir/ablation_soft_hard.cpp.o"
  "CMakeFiles/ablation_soft_hard.dir/ablation_soft_hard.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_soft_hard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
