# Empty dependencies file for ablation_soft_hard.
# This may be replaced when dependencies are built.
