# Empty compiler generated dependencies file for fig4_spectrum.
# This may be replaced when dependencies are built.
