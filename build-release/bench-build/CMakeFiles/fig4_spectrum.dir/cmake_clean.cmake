file(REMOVE_RECURSE
  "../bench/fig4_spectrum"
  "../bench/fig4_spectrum.pdb"
  "CMakeFiles/fig4_spectrum.dir/fig4_spectrum.cpp.o"
  "CMakeFiles/fig4_spectrum.dir/fig4_spectrum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
