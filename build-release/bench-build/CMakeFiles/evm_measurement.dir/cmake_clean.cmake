file(REMOVE_RECURSE
  "../bench/evm_measurement"
  "../bench/evm_measurement.pdb"
  "CMakeFiles/evm_measurement.dir/evm_measurement.cpp.o"
  "CMakeFiles/evm_measurement.dir/evm_measurement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evm_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
