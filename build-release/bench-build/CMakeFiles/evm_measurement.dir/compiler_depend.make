# Empty compiler generated dependencies file for evm_measurement.
# This may be replaced when dependencies are built.
