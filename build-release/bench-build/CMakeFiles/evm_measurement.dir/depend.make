# Empty dependencies file for evm_measurement.
# This may be replaced when dependencies are built.
