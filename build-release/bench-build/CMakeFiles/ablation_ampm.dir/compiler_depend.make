# Empty compiler generated dependencies file for ablation_ampm.
# This may be replaced when dependencies are built.
