file(REMOVE_RECURSE
  "../bench/ablation_ampm"
  "../bench/ablation_ampm.pdb"
  "CMakeFiles/ablation_ampm.dir/ablation_ampm.cpp.o"
  "CMakeFiles/ablation_ampm.dir/ablation_ampm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ampm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
