# Empty dependencies file for ablation_chanest.
# This may be replaced when dependencies are built.
