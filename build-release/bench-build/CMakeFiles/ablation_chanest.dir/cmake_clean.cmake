file(REMOVE_RECURSE
  "../bench/ablation_chanest"
  "../bench/ablation_chanest.pdb"
  "CMakeFiles/ablation_chanest.dir/ablation_chanest.cpp.o"
  "CMakeFiles/ablation_chanest.dir/ablation_chanest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chanest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
