# Empty dependencies file for ber_waterfall.
# This may be replaced when dependencies are built.
