file(REMOVE_RECURSE
  "../bench/ber_waterfall"
  "../bench/ber_waterfall.pdb"
  "CMakeFiles/ber_waterfall.dir/ber_waterfall.cpp.o"
  "CMakeFiles/ber_waterfall.dir/ber_waterfall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ber_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
