# Empty compiler generated dependencies file for architecture_comparison.
# This may be replaced when dependencies are built.
