file(REMOVE_RECURSE
  "../bench/architecture_comparison"
  "../bench/architecture_comparison.pdb"
  "CMakeFiles/architecture_comparison.dir/architecture_comparison.cpp.o"
  "CMakeFiles/architecture_comparison.dir/architecture_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
