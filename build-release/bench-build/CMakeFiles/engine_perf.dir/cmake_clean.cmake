file(REMOVE_RECURSE
  "../bench/engine_perf"
  "../bench/engine_perf.pdb"
  "CMakeFiles/engine_perf.dir/engine_perf.cpp.o"
  "CMakeFiles/engine_perf.dir/engine_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
