# Empty dependencies file for engine_perf.
# This may be replaced when dependencies are built.
