# Empty compiler generated dependencies file for fig5_filter_bandwidth.
# This may be replaced when dependencies are built.
