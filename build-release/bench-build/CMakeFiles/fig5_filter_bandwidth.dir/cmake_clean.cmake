file(REMOVE_RECURSE
  "../bench/fig5_filter_bandwidth"
  "../bench/fig5_filter_bandwidth.pdb"
  "CMakeFiles/fig5_filter_bandwidth.dir/fig5_filter_bandwidth.cpp.o"
  "CMakeFiles/fig5_filter_bandwidth.dir/fig5_filter_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_filter_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
