# Empty dependencies file for clock_offset.
# This may be replaced when dependencies are built.
