file(REMOVE_RECURSE
  "../bench/clock_offset"
  "../bench/clock_offset.pdb"
  "CMakeFiles/clock_offset.dir/clock_offset.cpp.o"
  "CMakeFiles/clock_offset.dir/clock_offset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
