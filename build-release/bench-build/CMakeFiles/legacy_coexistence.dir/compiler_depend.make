# Empty compiler generated dependencies file for legacy_coexistence.
# This may be replaced when dependencies are built.
