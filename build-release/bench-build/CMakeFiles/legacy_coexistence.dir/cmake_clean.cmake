file(REMOVE_RECURSE
  "../bench/legacy_coexistence"
  "../bench/legacy_coexistence.pdb"
  "CMakeFiles/legacy_coexistence.dir/legacy_coexistence.cpp.o"
  "CMakeFiles/legacy_coexistence.dir/legacy_coexistence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
