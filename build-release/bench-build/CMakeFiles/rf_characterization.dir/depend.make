# Empty dependencies file for rf_characterization.
# This may be replaced when dependencies are built.
