file(REMOVE_RECURSE
  "../bench/rf_characterization"
  "../bench/rf_characterization.pdb"
  "CMakeFiles/rf_characterization.dir/rf_characterization.cpp.o"
  "CMakeFiles/rf_characterization.dir/rf_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
