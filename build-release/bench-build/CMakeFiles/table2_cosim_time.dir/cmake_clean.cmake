file(REMOVE_RECURSE
  "../bench/table2_cosim_time"
  "../bench/table2_cosim_time.pdb"
  "CMakeFiles/table2_cosim_time.dir/table2_cosim_time.cpp.o"
  "CMakeFiles/table2_cosim_time.dir/table2_cosim_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cosim_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
