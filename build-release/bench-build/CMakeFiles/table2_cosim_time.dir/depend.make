# Empty dependencies file for table2_cosim_time.
# This may be replaced when dependencies are built.
