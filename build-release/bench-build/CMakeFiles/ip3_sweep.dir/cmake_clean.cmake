file(REMOVE_RECURSE
  "../bench/ip3_sweep"
  "../bench/ip3_sweep.pdb"
  "CMakeFiles/ip3_sweep.dir/ip3_sweep.cpp.o"
  "CMakeFiles/ip3_sweep.dir/ip3_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip3_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
