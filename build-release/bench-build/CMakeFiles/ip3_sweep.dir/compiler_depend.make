# Empty compiler generated dependencies file for ip3_sweep.
# This may be replaced when dependencies are built.
