# Empty dependencies file for tx_evm_conformance.
# This may be replaced when dependencies are built.
