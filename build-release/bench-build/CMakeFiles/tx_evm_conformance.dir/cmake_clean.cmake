file(REMOVE_RECURSE
  "../bench/tx_evm_conformance"
  "../bench/tx_evm_conformance.pdb"
  "CMakeFiles/tx_evm_conformance.dir/tx_evm_conformance.cpp.o"
  "CMakeFiles/tx_evm_conformance.dir/tx_evm_conformance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_evm_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
