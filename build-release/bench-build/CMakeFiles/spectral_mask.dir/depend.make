# Empty dependencies file for spectral_mask.
# This may be replaced when dependencies are built.
