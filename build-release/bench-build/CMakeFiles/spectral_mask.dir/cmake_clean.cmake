file(REMOVE_RECURSE
  "../bench/spectral_mask"
  "../bench/spectral_mask.pdb"
  "CMakeFiles/spectral_mask.dir/spectral_mask.cpp.o"
  "CMakeFiles/spectral_mask.dir/spectral_mask.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
