# Empty compiler generated dependencies file for blackbox_extraction.
# This may be replaced when dependencies are built.
