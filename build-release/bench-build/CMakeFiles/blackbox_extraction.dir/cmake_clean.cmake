file(REMOVE_RECURSE
  "../bench/blackbox_extraction"
  "../bench/blackbox_extraction.pdb"
  "CMakeFiles/blackbox_extraction.dir/blackbox_extraction.cpp.o"
  "CMakeFiles/blackbox_extraction.dir/blackbox_extraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
