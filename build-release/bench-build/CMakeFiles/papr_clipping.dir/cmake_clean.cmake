file(REMOVE_RECURSE
  "../bench/papr_clipping"
  "../bench/papr_clipping.pdb"
  "CMakeFiles/papr_clipping.dir/papr_clipping.cpp.o"
  "CMakeFiles/papr_clipping.dir/papr_clipping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papr_clipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
