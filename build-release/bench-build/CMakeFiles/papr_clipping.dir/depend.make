# Empty dependencies file for papr_clipping.
# This may be replaced when dependencies are built.
