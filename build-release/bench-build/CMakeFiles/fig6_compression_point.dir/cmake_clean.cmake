file(REMOVE_RECURSE
  "../bench/fig6_compression_point"
  "../bench/fig6_compression_point.pdb"
  "CMakeFiles/fig6_compression_point.dir/fig6_compression_point.cpp.o"
  "CMakeFiles/fig6_compression_point.dir/fig6_compression_point.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_compression_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
