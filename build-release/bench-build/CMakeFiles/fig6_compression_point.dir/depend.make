# Empty dependencies file for fig6_compression_point.
# This may be replaced when dependencies are built.
