# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-release/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-release/tests/dsp_tests[1]_include.cmake")
include("/root/repo/build-release/tests/phy_tests[1]_include.cmake")
include("/root/repo/build-release/tests/batch_engine_tests[1]_include.cmake")
include("/root/repo/build-release/tests/rf_tests[1]_include.cmake")
include("/root/repo/build-release/tests/channel_tests[1]_include.cmake")
include("/root/repo/build-release/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-release/tests/core_tests[1]_include.cmake")
include("/root/repo/build-release/tests/alloc_tests[1]_include.cmake")
include("/root/repo/build-release/tests/phy11b_tests[1]_include.cmake")
