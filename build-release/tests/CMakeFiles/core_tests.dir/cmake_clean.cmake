file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_arq.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_arq.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_cliargs.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_cliargs.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_link.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_link.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_packet_path.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_packet_path.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_parallel.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_parallel.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_parallel_determinism.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_parallel_determinism.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_sweep_memo.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_sweep_memo.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
