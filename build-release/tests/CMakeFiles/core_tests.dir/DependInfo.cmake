
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_arq.cpp" "tests/CMakeFiles/core_tests.dir/core/test_arq.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_arq.cpp.o.d"
  "/root/repo/tests/core/test_cliargs.cpp" "tests/CMakeFiles/core_tests.dir/core/test_cliargs.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_cliargs.cpp.o.d"
  "/root/repo/tests/core/test_link.cpp" "tests/CMakeFiles/core_tests.dir/core/test_link.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_link.cpp.o.d"
  "/root/repo/tests/core/test_packet_path.cpp" "tests/CMakeFiles/core_tests.dir/core/test_packet_path.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_packet_path.cpp.o.d"
  "/root/repo/tests/core/test_parallel.cpp" "tests/CMakeFiles/core_tests.dir/core/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_parallel.cpp.o.d"
  "/root/repo/tests/core/test_parallel_determinism.cpp" "tests/CMakeFiles/core_tests.dir/core/test_parallel_determinism.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_parallel_determinism.cpp.o.d"
  "/root/repo/tests/core/test_sweep_memo.cpp" "tests/CMakeFiles/core_tests.dir/core/test_sweep_memo.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_sweep_memo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/core/CMakeFiles/wlansim_core.dir/DependInfo.cmake"
  "/root/repo/build-release/src/channel/CMakeFiles/wlansim_channel.dir/DependInfo.cmake"
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  "/root/repo/build-release/src/sim/CMakeFiles/wlansim_sim.dir/DependInfo.cmake"
  "/root/repo/build-release/src/rf/CMakeFiles/wlansim_rf.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
