file(REMOVE_RECURSE
  "CMakeFiles/dsp_tests.dir/dsp/test_fft.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_fft.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_fft_plans.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_fft_plans.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_fir.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_fir.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_iir.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_iir.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_kernels.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_kernels.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_mathutil.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_mathutil.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_resample_spectrum.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_resample_spectrum.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/test_window_rng.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/test_window_rng.cpp.o.d"
  "dsp_tests"
  "dsp_tests.pdb"
  "dsp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
