
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dsp/test_fft.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_fft.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_fft.cpp.o.d"
  "/root/repo/tests/dsp/test_fft_plans.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_fft_plans.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_fft_plans.cpp.o.d"
  "/root/repo/tests/dsp/test_fir.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_fir.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_fir.cpp.o.d"
  "/root/repo/tests/dsp/test_iir.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_iir.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_iir.cpp.o.d"
  "/root/repo/tests/dsp/test_kernels.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_kernels.cpp.o.d"
  "/root/repo/tests/dsp/test_mathutil.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_mathutil.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_mathutil.cpp.o.d"
  "/root/repo/tests/dsp/test_resample_spectrum.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_resample_spectrum.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_resample_spectrum.cpp.o.d"
  "/root/repo/tests/dsp/test_window_rng.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/test_window_rng.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/test_window_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
