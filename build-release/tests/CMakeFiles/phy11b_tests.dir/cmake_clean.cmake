file(REMOVE_RECURSE
  "CMakeFiles/phy11b_tests.dir/phy11b/test_dsss.cpp.o"
  "CMakeFiles/phy11b_tests.dir/phy11b/test_dsss.cpp.o.d"
  "CMakeFiles/phy11b_tests.dir/phy11b/test_link11b.cpp.o"
  "CMakeFiles/phy11b_tests.dir/phy11b/test_link11b.cpp.o.d"
  "phy11b_tests"
  "phy11b_tests.pdb"
  "phy11b_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy11b_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
