
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy11b/test_dsss.cpp" "tests/CMakeFiles/phy11b_tests.dir/phy11b/test_dsss.cpp.o" "gcc" "tests/CMakeFiles/phy11b_tests.dir/phy11b/test_dsss.cpp.o.d"
  "/root/repo/tests/phy11b/test_link11b.cpp" "tests/CMakeFiles/phy11b_tests.dir/phy11b/test_link11b.cpp.o" "gcc" "tests/CMakeFiles/phy11b_tests.dir/phy11b/test_link11b.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/phy80211b/CMakeFiles/wlansim_phy11b.dir/DependInfo.cmake"
  "/root/repo/build-release/src/channel/CMakeFiles/wlansim_channel.dir/DependInfo.cmake"
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
