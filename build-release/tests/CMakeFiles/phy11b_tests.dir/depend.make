# Empty dependencies file for phy11b_tests.
# This may be replaced when dependencies are built.
