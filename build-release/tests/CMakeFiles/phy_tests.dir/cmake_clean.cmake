file(REMOVE_RECURSE
  "CMakeFiles/phy_tests.dir/phy/test_edge_cases.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_edge_cases.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_equalizer.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_equalizer.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_interleaver_mapper.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_interleaver_mapper.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_link.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_link.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_mpdu_conformance.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_mpdu_conformance.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_ofdm_preamble.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_ofdm_preamble.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_scrambler_convcode.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_scrambler_convcode.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_sync_fast.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_sync_fast.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/test_viterbi_equivalence.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/test_viterbi_equivalence.cpp.o.d"
  "phy_tests"
  "phy_tests.pdb"
  "phy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
