# Empty dependencies file for phy_tests.
# This may be replaced when dependencies are built.
