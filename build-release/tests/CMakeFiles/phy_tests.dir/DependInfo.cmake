
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/test_edge_cases.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_edge_cases.cpp.o.d"
  "/root/repo/tests/phy/test_equalizer.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_equalizer.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_equalizer.cpp.o.d"
  "/root/repo/tests/phy/test_interleaver_mapper.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_interleaver_mapper.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_interleaver_mapper.cpp.o.d"
  "/root/repo/tests/phy/test_link.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_link.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_link.cpp.o.d"
  "/root/repo/tests/phy/test_mpdu_conformance.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_mpdu_conformance.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_mpdu_conformance.cpp.o.d"
  "/root/repo/tests/phy/test_ofdm_preamble.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_ofdm_preamble.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_ofdm_preamble.cpp.o.d"
  "/root/repo/tests/phy/test_scrambler_convcode.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_scrambler_convcode.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_scrambler_convcode.cpp.o.d"
  "/root/repo/tests/phy/test_sync_fast.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_sync_fast.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_sync_fast.cpp.o.d"
  "/root/repo/tests/phy/test_viterbi_equivalence.cpp" "tests/CMakeFiles/phy_tests.dir/phy/test_viterbi_equivalence.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/test_viterbi_equivalence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
