file(REMOVE_RECURSE
  "CMakeFiles/rf_tests.dir/rf/test_amplifier.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_amplifier.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_blackbox.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_blackbox.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_calibration.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_calibration.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_chain.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_chain.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_chain_executor.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_chain_executor.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_direct_conversion.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_direct_conversion.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_mixer_noise.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_mixer_noise.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_property_sweeps.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_property_sweeps.cpp.o.d"
  "rf_tests"
  "rf_tests.pdb"
  "rf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
