
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rf/test_amplifier.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_amplifier.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_amplifier.cpp.o.d"
  "/root/repo/tests/rf/test_blackbox.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_blackbox.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_blackbox.cpp.o.d"
  "/root/repo/tests/rf/test_calibration.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_calibration.cpp.o.d"
  "/root/repo/tests/rf/test_chain.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_chain.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_chain.cpp.o.d"
  "/root/repo/tests/rf/test_chain_executor.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_chain_executor.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_chain_executor.cpp.o.d"
  "/root/repo/tests/rf/test_direct_conversion.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_direct_conversion.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_direct_conversion.cpp.o.d"
  "/root/repo/tests/rf/test_mixer_noise.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_mixer_noise.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_mixer_noise.cpp.o.d"
  "/root/repo/tests/rf/test_property_sweeps.cpp" "tests/CMakeFiles/rf_tests.dir/rf/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/rf_tests.dir/rf/test_property_sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/rf/CMakeFiles/wlansim_rf.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
