# Empty compiler generated dependencies file for rf_tests.
# This may be replaced when dependencies are built.
