# Empty dependencies file for batch_engine_tests.
# This may be replaced when dependencies are built.
