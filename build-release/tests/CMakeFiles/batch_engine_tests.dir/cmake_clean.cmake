file(REMOVE_RECURSE
  "CMakeFiles/batch_engine_tests.dir/phy/test_batch_engine.cpp.o"
  "CMakeFiles/batch_engine_tests.dir/phy/test_batch_engine.cpp.o.d"
  "batch_engine_tests"
  "batch_engine_tests.pdb"
  "batch_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
