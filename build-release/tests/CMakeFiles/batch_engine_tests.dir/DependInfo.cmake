
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/test_batch_engine.cpp" "tests/CMakeFiles/batch_engine_tests.dir/phy/test_batch_engine.cpp.o" "gcc" "tests/CMakeFiles/batch_engine_tests.dir/phy/test_batch_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  "/root/repo/build-release/src/channel/CMakeFiles/wlansim_channel.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
