# Empty compiler generated dependencies file for alloc_tests.
# This may be replaced when dependencies are built.
