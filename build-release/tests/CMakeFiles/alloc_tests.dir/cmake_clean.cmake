file(REMOVE_RECURSE
  "CMakeFiles/alloc_tests.dir/core/test_alloc.cpp.o"
  "CMakeFiles/alloc_tests.dir/core/test_alloc.cpp.o.d"
  "alloc_tests"
  "alloc_tests.pdb"
  "alloc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
