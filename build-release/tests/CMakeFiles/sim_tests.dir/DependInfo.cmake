
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_cosim.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_cosim.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_cosim.cpp.o.d"
  "/root/repo/tests/sim/test_graph.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_graph.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_graph.cpp.o.d"
  "/root/repo/tests/sim/test_waveio.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_waveio.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_waveio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/sim/CMakeFiles/wlansim_sim.dir/DependInfo.cmake"
  "/root/repo/build-release/src/rf/CMakeFiles/wlansim_rf.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
