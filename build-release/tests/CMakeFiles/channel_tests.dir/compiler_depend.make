# Empty compiler generated dependencies file for channel_tests.
# This may be replaced when dependencies are built.
