file(REMOVE_RECURSE
  "CMakeFiles/channel_tests.dir/channel/test_channel.cpp.o"
  "CMakeFiles/channel_tests.dir/channel/test_channel.cpp.o.d"
  "channel_tests"
  "channel_tests.pdb"
  "channel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
