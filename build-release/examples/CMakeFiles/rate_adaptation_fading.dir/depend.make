# Empty dependencies file for rate_adaptation_fading.
# This may be replaced when dependencies are built.
