file(REMOVE_RECURSE
  "CMakeFiles/rate_adaptation_fading.dir/rate_adaptation_fading.cpp.o"
  "CMakeFiles/rate_adaptation_fading.dir/rate_adaptation_fading.cpp.o.d"
  "rate_adaptation_fading"
  "rate_adaptation_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_adaptation_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
