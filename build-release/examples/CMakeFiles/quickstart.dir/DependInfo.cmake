
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/core/CMakeFiles/wlansim_core.dir/DependInfo.cmake"
  "/root/repo/build-release/src/channel/CMakeFiles/wlansim_channel.dir/DependInfo.cmake"
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  "/root/repo/build-release/src/sim/CMakeFiles/wlansim_sim.dir/DependInfo.cmake"
  "/root/repo/build-release/src/rf/CMakeFiles/wlansim_rf.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
