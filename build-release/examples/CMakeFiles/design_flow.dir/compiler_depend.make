# Empty compiler generated dependencies file for design_flow.
# This may be replaced when dependencies are built.
