file(REMOVE_RECURSE
  "CMakeFiles/design_flow.dir/design_flow.cpp.o"
  "CMakeFiles/design_flow.dir/design_flow.cpp.o.d"
  "design_flow"
  "design_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
