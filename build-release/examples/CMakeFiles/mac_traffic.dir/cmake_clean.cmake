file(REMOVE_RECURSE
  "CMakeFiles/mac_traffic.dir/mac_traffic.cpp.o"
  "CMakeFiles/mac_traffic.dir/mac_traffic.cpp.o.d"
  "mac_traffic"
  "mac_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
