# Empty compiler generated dependencies file for mac_traffic.
# This may be replaced when dependencies are built.
