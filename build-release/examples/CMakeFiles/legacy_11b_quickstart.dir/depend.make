# Empty dependencies file for legacy_11b_quickstart.
# This may be replaced when dependencies are built.
