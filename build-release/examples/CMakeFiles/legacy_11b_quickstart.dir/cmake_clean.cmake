file(REMOVE_RECURSE
  "CMakeFiles/legacy_11b_quickstart.dir/legacy_11b_quickstart.cpp.o"
  "CMakeFiles/legacy_11b_quickstart.dir/legacy_11b_quickstart.cpp.o.d"
  "legacy_11b_quickstart"
  "legacy_11b_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_11b_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
