# Empty dependencies file for block_diagram.
# This may be replaced when dependencies are built.
