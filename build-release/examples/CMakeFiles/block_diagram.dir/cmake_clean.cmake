file(REMOVE_RECURSE
  "CMakeFiles/block_diagram.dir/block_diagram.cpp.o"
  "CMakeFiles/block_diagram.dir/block_diagram.cpp.o.d"
  "block_diagram"
  "block_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
