file(REMOVE_RECURSE
  "CMakeFiles/adjacent_channel_study.dir/adjacent_channel_study.cpp.o"
  "CMakeFiles/adjacent_channel_study.dir/adjacent_channel_study.cpp.o.d"
  "adjacent_channel_study"
  "adjacent_channel_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacent_channel_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
