# Empty dependencies file for adjacent_channel_study.
# This may be replaced when dependencies are built.
