# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for adjacent_channel_study.
