file(REMOVE_RECURSE
  "CMakeFiles/carrier_diagnostics.dir/carrier_diagnostics.cpp.o"
  "CMakeFiles/carrier_diagnostics.dir/carrier_diagnostics.cpp.o.d"
  "carrier_diagnostics"
  "carrier_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carrier_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
