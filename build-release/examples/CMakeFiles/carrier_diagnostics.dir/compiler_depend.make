# Empty compiler generated dependencies file for carrier_diagnostics.
# This may be replaced when dependencies are built.
