# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-release/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("dsp")
subdirs("phy80211a")
subdirs("phy80211b")
subdirs("rf")
subdirs("channel")
subdirs("sim")
subdirs("core")
subdirs("testsupport")
