# Empty dependencies file for wlansim_sim.
# This may be replaced when dependencies are built.
