
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cosim.cpp" "src/sim/CMakeFiles/wlansim_sim.dir/cosim.cpp.o" "gcc" "src/sim/CMakeFiles/wlansim_sim.dir/cosim.cpp.o.d"
  "/root/repo/src/sim/graph.cpp" "src/sim/CMakeFiles/wlansim_sim.dir/graph.cpp.o" "gcc" "src/sim/CMakeFiles/wlansim_sim.dir/graph.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/wlansim_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/wlansim_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/wlansim_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/wlansim_sim.dir/sweep.cpp.o.d"
  "/root/repo/src/sim/waveio.cpp" "src/sim/CMakeFiles/wlansim_sim.dir/waveio.cpp.o" "gcc" "src/sim/CMakeFiles/wlansim_sim.dir/waveio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  "/root/repo/build-release/src/rf/CMakeFiles/wlansim_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
