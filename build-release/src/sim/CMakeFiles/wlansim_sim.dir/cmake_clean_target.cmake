file(REMOVE_RECURSE
  "libwlansim_sim.a"
)
