file(REMOVE_RECURSE
  "CMakeFiles/wlansim_sim.dir/cosim.cpp.o"
  "CMakeFiles/wlansim_sim.dir/cosim.cpp.o.d"
  "CMakeFiles/wlansim_sim.dir/graph.cpp.o"
  "CMakeFiles/wlansim_sim.dir/graph.cpp.o.d"
  "CMakeFiles/wlansim_sim.dir/node.cpp.o"
  "CMakeFiles/wlansim_sim.dir/node.cpp.o.d"
  "CMakeFiles/wlansim_sim.dir/sweep.cpp.o"
  "CMakeFiles/wlansim_sim.dir/sweep.cpp.o.d"
  "CMakeFiles/wlansim_sim.dir/waveio.cpp.o"
  "CMakeFiles/wlansim_sim.dir/waveio.cpp.o.d"
  "libwlansim_sim.a"
  "libwlansim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
