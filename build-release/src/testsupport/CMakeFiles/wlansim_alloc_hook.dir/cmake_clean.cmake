file(REMOVE_RECURSE
  "CMakeFiles/wlansim_alloc_hook.dir/alloc_hook.cpp.o"
  "CMakeFiles/wlansim_alloc_hook.dir/alloc_hook.cpp.o.d"
  "libwlansim_alloc_hook.a"
  "libwlansim_alloc_hook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_alloc_hook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
