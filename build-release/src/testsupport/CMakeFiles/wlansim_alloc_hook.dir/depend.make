# Empty dependencies file for wlansim_alloc_hook.
# This may be replaced when dependencies are built.
