file(REMOVE_RECURSE
  "libwlansim_alloc_hook.a"
)
