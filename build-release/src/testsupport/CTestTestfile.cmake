# CMake generated Testfile for 
# Source directory: /root/repo/src/testsupport
# Build directory: /root/repo/build-release/src/testsupport
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
