
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/iir.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/iir.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/iir.cpp.o.d"
  "/root/repo/src/dsp/kernels.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/kernels.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/kernels.cpp.o.d"
  "/root/repo/src/dsp/mathutil.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/mathutil.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/mathutil.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/rng.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/rng.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/rng.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/spectrum.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/spectrum.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/wlansim_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/wlansim_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
