file(REMOVE_RECURSE
  "CMakeFiles/wlansim_dsp.dir/fft.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/fir.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/iir.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/iir.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/kernels.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/kernels.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/mathutil.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/mathutil.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/resample.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/rng.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/rng.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/wlansim_dsp.dir/window.cpp.o"
  "CMakeFiles/wlansim_dsp.dir/window.cpp.o.d"
  "libwlansim_dsp.a"
  "libwlansim_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
