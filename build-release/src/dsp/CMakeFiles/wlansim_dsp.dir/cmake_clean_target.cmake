file(REMOVE_RECURSE
  "libwlansim_dsp.a"
)
