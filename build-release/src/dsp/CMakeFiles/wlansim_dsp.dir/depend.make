# Empty dependencies file for wlansim_dsp.
# This may be replaced when dependencies are built.
