# Empty dependencies file for wlansim_channel.
# This may be replaced when dependencies are built.
