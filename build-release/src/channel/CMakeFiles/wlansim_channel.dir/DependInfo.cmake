
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/awgn.cpp" "src/channel/CMakeFiles/wlansim_channel.dir/awgn.cpp.o" "gcc" "src/channel/CMakeFiles/wlansim_channel.dir/awgn.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "src/channel/CMakeFiles/wlansim_channel.dir/fading.cpp.o" "gcc" "src/channel/CMakeFiles/wlansim_channel.dir/fading.cpp.o.d"
  "/root/repo/src/channel/interferer.cpp" "src/channel/CMakeFiles/wlansim_channel.dir/interferer.cpp.o" "gcc" "src/channel/CMakeFiles/wlansim_channel.dir/interferer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
