file(REMOVE_RECURSE
  "CMakeFiles/wlansim_channel.dir/awgn.cpp.o"
  "CMakeFiles/wlansim_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/wlansim_channel.dir/fading.cpp.o"
  "CMakeFiles/wlansim_channel.dir/fading.cpp.o.d"
  "CMakeFiles/wlansim_channel.dir/interferer.cpp.o"
  "CMakeFiles/wlansim_channel.dir/interferer.cpp.o.d"
  "libwlansim_channel.a"
  "libwlansim_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
