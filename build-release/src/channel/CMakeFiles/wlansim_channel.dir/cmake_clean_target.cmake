file(REMOVE_RECURSE
  "libwlansim_channel.a"
)
