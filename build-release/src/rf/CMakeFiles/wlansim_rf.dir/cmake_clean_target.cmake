file(REMOVE_RECURSE
  "libwlansim_rf.a"
)
