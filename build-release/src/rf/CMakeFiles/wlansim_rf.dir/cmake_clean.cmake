file(REMOVE_RECURSE
  "CMakeFiles/wlansim_rf.dir/adc.cpp.o"
  "CMakeFiles/wlansim_rf.dir/adc.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/agc.cpp.o"
  "CMakeFiles/wlansim_rf.dir/agc.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/amplifier.cpp.o"
  "CMakeFiles/wlansim_rf.dir/amplifier.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/analyses.cpp.o"
  "CMakeFiles/wlansim_rf.dir/analyses.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/blackbox.cpp.o"
  "CMakeFiles/wlansim_rf.dir/blackbox.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/calibration.cpp.o"
  "CMakeFiles/wlansim_rf.dir/calibration.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/chain_executor.cpp.o"
  "CMakeFiles/wlansim_rf.dir/chain_executor.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/direct_conversion.cpp.o"
  "CMakeFiles/wlansim_rf.dir/direct_conversion.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/filters.cpp.o"
  "CMakeFiles/wlansim_rf.dir/filters.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/mixer.cpp.o"
  "CMakeFiles/wlansim_rf.dir/mixer.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/noise.cpp.o"
  "CMakeFiles/wlansim_rf.dir/noise.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/receiver_chain.cpp.o"
  "CMakeFiles/wlansim_rf.dir/receiver_chain.cpp.o.d"
  "CMakeFiles/wlansim_rf.dir/rfblock.cpp.o"
  "CMakeFiles/wlansim_rf.dir/rfblock.cpp.o.d"
  "libwlansim_rf.a"
  "libwlansim_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
