# Empty dependencies file for wlansim_rf.
# This may be replaced when dependencies are built.
