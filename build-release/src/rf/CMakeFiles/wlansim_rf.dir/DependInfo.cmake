
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/adc.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/adc.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/adc.cpp.o.d"
  "/root/repo/src/rf/agc.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/agc.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/agc.cpp.o.d"
  "/root/repo/src/rf/amplifier.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/amplifier.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/amplifier.cpp.o.d"
  "/root/repo/src/rf/analyses.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/analyses.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/analyses.cpp.o.d"
  "/root/repo/src/rf/blackbox.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/blackbox.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/blackbox.cpp.o.d"
  "/root/repo/src/rf/calibration.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/calibration.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/calibration.cpp.o.d"
  "/root/repo/src/rf/chain_executor.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/chain_executor.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/chain_executor.cpp.o.d"
  "/root/repo/src/rf/direct_conversion.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/direct_conversion.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/direct_conversion.cpp.o.d"
  "/root/repo/src/rf/filters.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/filters.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/filters.cpp.o.d"
  "/root/repo/src/rf/mixer.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/mixer.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/mixer.cpp.o.d"
  "/root/repo/src/rf/noise.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/noise.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/noise.cpp.o.d"
  "/root/repo/src/rf/receiver_chain.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/receiver_chain.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/receiver_chain.cpp.o.d"
  "/root/repo/src/rf/rfblock.cpp" "src/rf/CMakeFiles/wlansim_rf.dir/rfblock.cpp.o" "gcc" "src/rf/CMakeFiles/wlansim_rf.dir/rfblock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
