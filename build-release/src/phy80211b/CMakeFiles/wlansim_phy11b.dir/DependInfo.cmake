
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy80211b/chips.cpp" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/chips.cpp.o" "gcc" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/chips.cpp.o.d"
  "/root/repo/src/phy80211b/plcp.cpp" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/plcp.cpp.o" "gcc" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/plcp.cpp.o.d"
  "/root/repo/src/phy80211b/receiver.cpp" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/receiver.cpp.o" "gcc" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/receiver.cpp.o.d"
  "/root/repo/src/phy80211b/transmitter.cpp" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/transmitter.cpp.o" "gcc" "src/phy80211b/CMakeFiles/wlansim_phy11b.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  "/root/repo/build-release/src/phy80211a/CMakeFiles/wlansim_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
