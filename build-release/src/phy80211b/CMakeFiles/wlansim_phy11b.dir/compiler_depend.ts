# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wlansim_phy11b.
