file(REMOVE_RECURSE
  "libwlansim_phy11b.a"
)
