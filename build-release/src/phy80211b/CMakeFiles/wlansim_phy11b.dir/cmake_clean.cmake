file(REMOVE_RECURSE
  "CMakeFiles/wlansim_phy11b.dir/chips.cpp.o"
  "CMakeFiles/wlansim_phy11b.dir/chips.cpp.o.d"
  "CMakeFiles/wlansim_phy11b.dir/plcp.cpp.o"
  "CMakeFiles/wlansim_phy11b.dir/plcp.cpp.o.d"
  "CMakeFiles/wlansim_phy11b.dir/receiver.cpp.o"
  "CMakeFiles/wlansim_phy11b.dir/receiver.cpp.o.d"
  "CMakeFiles/wlansim_phy11b.dir/transmitter.cpp.o"
  "CMakeFiles/wlansim_phy11b.dir/transmitter.cpp.o.d"
  "libwlansim_phy11b.a"
  "libwlansim_phy11b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_phy11b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
