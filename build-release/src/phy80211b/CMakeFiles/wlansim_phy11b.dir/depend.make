# Empty dependencies file for wlansim_phy11b.
# This may be replaced when dependencies are built.
