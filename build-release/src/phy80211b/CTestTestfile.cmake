# CMake generated Testfile for 
# Source directory: /root/repo/src/phy80211b
# Build directory: /root/repo/build-release/src/phy80211b
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
