# Empty dependencies file for wlansim_core.
# This may be replaced when dependencies are built.
