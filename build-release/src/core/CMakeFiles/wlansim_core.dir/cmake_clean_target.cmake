file(REMOVE_RECURSE
  "libwlansim_core.a"
)
