file(REMOVE_RECURSE
  "CMakeFiles/wlansim_core.dir/arq.cpp.o"
  "CMakeFiles/wlansim_core.dir/arq.cpp.o.d"
  "CMakeFiles/wlansim_core.dir/cliargs.cpp.o"
  "CMakeFiles/wlansim_core.dir/cliargs.cpp.o.d"
  "CMakeFiles/wlansim_core.dir/experiments.cpp.o"
  "CMakeFiles/wlansim_core.dir/experiments.cpp.o.d"
  "CMakeFiles/wlansim_core.dir/link.cpp.o"
  "CMakeFiles/wlansim_core.dir/link.cpp.o.d"
  "CMakeFiles/wlansim_core.dir/parallel.cpp.o"
  "CMakeFiles/wlansim_core.dir/parallel.cpp.o.d"
  "CMakeFiles/wlansim_core.dir/thread_pool.cpp.o"
  "CMakeFiles/wlansim_core.dir/thread_pool.cpp.o.d"
  "libwlansim_core.a"
  "libwlansim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlansim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
