# CMake generated Testfile for 
# Source directory: /root/repo/src/phy80211a
# Build directory: /root/repo/build-release/src/phy80211a
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
