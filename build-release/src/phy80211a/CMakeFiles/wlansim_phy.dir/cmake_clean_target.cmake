file(REMOVE_RECURSE
  "libwlansim_phy.a"
)
