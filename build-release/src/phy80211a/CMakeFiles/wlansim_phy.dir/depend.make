# Empty dependencies file for wlansim_phy.
# This may be replaced when dependencies are built.
