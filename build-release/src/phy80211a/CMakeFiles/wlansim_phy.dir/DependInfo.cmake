
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy80211a/bits.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/bits.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/bits.cpp.o.d"
  "/root/repo/src/phy80211a/conformance.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/conformance.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/conformance.cpp.o.d"
  "/root/repo/src/phy80211a/convcode.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/convcode.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/convcode.cpp.o.d"
  "/root/repo/src/phy80211a/equalizer.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/equalizer.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/equalizer.cpp.o.d"
  "/root/repo/src/phy80211a/interleaver.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/interleaver.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy80211a/mapper.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/mapper.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/mapper.cpp.o.d"
  "/root/repo/src/phy80211a/measure.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/measure.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/measure.cpp.o.d"
  "/root/repo/src/phy80211a/mpdu.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/mpdu.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/mpdu.cpp.o.d"
  "/root/repo/src/phy80211a/ofdm.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/ofdm.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy80211a/params.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/params.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/params.cpp.o.d"
  "/root/repo/src/phy80211a/preamble.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/preamble.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy80211a/receiver.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/receiver.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/receiver.cpp.o.d"
  "/root/repo/src/phy80211a/scrambler.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/scrambler.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/scrambler.cpp.o.d"
  "/root/repo/src/phy80211a/signal_field.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/signal_field.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/signal_field.cpp.o.d"
  "/root/repo/src/phy80211a/sync.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/sync.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/sync.cpp.o.d"
  "/root/repo/src/phy80211a/transmitter.cpp" "src/phy80211a/CMakeFiles/wlansim_phy.dir/transmitter.cpp.o" "gcc" "src/phy80211a/CMakeFiles/wlansim_phy.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dsp/CMakeFiles/wlansim_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
