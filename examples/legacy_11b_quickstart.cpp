// Legacy 802.11b quickstart: one DSSS/CCK packet per rate through an AWGN
// channel — the "up to 11 Mbit/s widely used today" world of the paper's
// introduction, as a second complete modem in this library.
//
//   build/examples/legacy_11b_quickstart
#include <cstdio>

#include "channel/awgn.h"
#include "dsp/mathutil.h"
#include "phy80211b/receiver.h"
#include "phy80211b/transmitter.h"

int main() {
  using namespace wlansim;

  std::printf("802.11b DSSS/CCK quickstart (6 dB chip SNR)\n\n");
  dsp::Rng rng(99);
  int ok_count = 0;
  for (phy11b::Rate11b rate :
       {phy11b::Rate11b::kMbps1, phy11b::Rate11b::kMbps2,
        phy11b::Rate11b::kMbps5_5, phy11b::Rate11b::kMbps11}) {
    phy11b::Transmitter11b tx;
    const phy::Bytes payload = phy::random_bytes(200, rng);
    dsp::CVec wave = tx.modulate({rate, payload});

    dsp::CVec air(300, dsp::Cplx{0.0, 0.0});
    air.insert(air.end(), wave.begin(), wave.end());
    air.insert(air.end(), 100, dsp::Cplx{0.0, 0.0});
    dsp::Rng noise(5);
    air = channel::add_awgn(
        air, dsp::dbm_to_watts(0.0) / dsp::from_db(6.0), noise);

    phy11b::Receiver11b rx;
    const phy11b::RxResult11b res = rx.receive(air);
    const bool ok = res.header_ok && res.psdu == payload;
    std::printf("  %-24s frame %5zu chips (%.0f us)  -> %s\n",
                phy11b::rate11b_name(rate), wave.size(),
                wave.size() / 11.0, ok ? "delivered" : "FAILED");
    if (ok) ++ok_count;
  }

  std::printf("\nnote how CCK trades the Barker processing gain for rate: "
              "the 11 Mbps frame is ~7x shorter on air but needs ~8 dB "
              "more SNR.\n");
  // At 6 dB chip SNR the 11 Mbps CCK frame may or may not survive; the
  // Barker rates must.
  return ok_count >= 3 ? 0 : 1;
}
