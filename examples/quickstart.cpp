// Quickstart: send one 802.11a packet through the double-conversion RF
// front-end and decode it — the minimal end-to-end use of the library.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/experiments.h"
#include "core/link.h"
#include "dsp/mathutil.h"

int main() {
  using namespace wlansim;

  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps24;
  cfg.psdu_bytes = 200;
  cfg.rx_power_dbm = -65.0;  // wanted level at the antenna
  cfg.snr_db = 25.0;

  std::printf("wlansim quickstart\n");
  std::printf("  rate        : %s\n",
              std::string(phy::rate_name(cfg.rate)).c_str());
  std::printf("  PSDU        : %zu bytes\n", cfg.psdu_bytes);
  std::printf("  RX level    : %.1f dBm\n", cfg.rx_power_dbm);
  std::printf("  RF front-end: double conversion at %.0f Msps\n",
              phy::kSampleRate * cfg.oversample / 1e6);

  core::WlanLink link(cfg);
  int decoded = 0;
  std::size_t bit_errors = 0, bits = 0;
  double evm = 0.0;
  const int kPackets = 10;
  for (int i = 0; i < kPackets; ++i) {
    const core::PacketResult r = link.run_packet(i);
    decoded += r.decoded ? 1 : 0;
    bit_errors += r.bit_errors;
    bits += r.bits;
    evm += r.evm_rms;
    std::printf("  packet %2d: %s  bit errors %4zu/%zu  EVM %5.2f %%\n", i,
                r.decoded ? "decoded" : "LOST   ", r.bit_errors, r.bits,
                100.0 * r.evm_rms);
  }
  std::printf("\nsummary: %d/%d packets decoded, BER %.2e, mean EVM %.2f %%\n",
              decoded, kPackets,
              bits ? static_cast<double>(bit_errors) / bits : 0.0,
              100.0 * evm / kPackets);
  return decoded == kPackets ? 0 : 1;
}
