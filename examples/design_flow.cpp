// The paper's §4 design flow, end to end:
//
//   1. create the RF model and verify it inside the system simulation
//      ("SPW simulation standalone", §4.1);
//   2. characterize the RF subsystem with RF-specific analyses
//      ("SpectreRF simulation", §4.2);
//   3. run the co-simulation and compare cost and accuracy
//      ("SPW-AMS co-simulation", §4.3, §5.3);
//   4. calibrate the behavioral model against a circuit-level golden
//      reference ("Calibration of the behavioral models", §4);
//   5. extract a black-box (J&K) surrogate for fast system simulation
//      ("Other solution: Extraction of a black-box model", §4).
//
//   build/examples/design_flow
#include <chrono>
#include <cstdio>

#include "core/experiments.h"
#include "core/link.h"
#include "rf/analyses.h"
#include "rf/blackbox.h"
#include "rf/calibration.h"
#include "rf/receiver_chain.h"

int main() {
  using namespace wlansim;

  std::printf("=== step 1: system-level verification (SPW style) ===\n");
  core::LinkConfig cfg = core::default_link_config();
  cfg.interferer =
      channel::InterfererConfig{.offset_hz = 20e6, .level_db = 16.0};
  {
    core::WlanLink link(cfg);
    const core::BerResult r = link.run_ber(10);
    std::printf("10 packets through the full link (adjacent channel on): "
                "BER %.2e, EVM %.2f %%\n\n", r.ber(), 100.0 * r.evm_rms_avg);
  }

  std::printf("=== step 2: RF characterization (SpectreRF style) ===\n");
  {
    rf::DoubleConversionConfig rfc;
    rfc.agc.loop_gain = 0.0;
    rfc.agc.initial_gain_db = 0.0;
    rfc.adc.enabled = false;
    rfc.noise_enabled = false;
    rf::DoubleConversionReceiver rx(rfc, dsp::Rng(1));
    rf::ToneTestConfig tc;
    tc.num_samples = 1 << 14;
    tc.settle_samples = 1 << 13;
    std::printf("gain %.2f dB, input P1dB %.2f dBm, ACR(+20 MHz) %.1f dB\n\n",
                rf::measure_gain_db(rx, tc, -60.0),
                rf::measure_p1db_in_dbm(rx, tc, -40.0, -5.0),
                rf::measure_rejection_db(rx, tc, 3e6, 20e6));
  }

  std::printf("=== step 3: co-simulation (AMS Designer style) ===\n");
  {
    core::LinkConfig co = cfg;
    co.rf_engine = core::RfEngine::kCosim;
    co.cosim.analog_oversample = 32;  // moderate refinement for the demo

    const auto t0 = std::chrono::steady_clock::now();
    core::WlanLink sys_link(cfg);
    const core::BerResult rs = sys_link.run_ber(3);
    const auto t1 = std::chrono::steady_clock::now();
    core::WlanLink co_link(co);
    const core::BerResult rc = co_link.run_ber(3);
    const auto t2 = std::chrono::steady_clock::now();

    const double ts = std::chrono::duration<double>(t1 - t0).count();
    const double tc2 = std::chrono::duration<double>(t2 - t1).count();
    std::printf("system-level: BER %.2e in %.2f s\n", rs.ber(), ts);
    std::printf("co-simulated: BER %.2e in %.2f s (%.1fx slower; the "
                "paper saw 30-40x)\n", rc.ber(), tc2, tc2 / ts);
    std::printf("note: co-sim BER is optimistic — the analog transient "
                "ignores the noise functions (sec. 5.1).\n");
  }

  std::printf("\n=== step 4: calibrate the behavioral model ===\n");
  {
    // A "circuit-level" golden LNA (richer cubic model, known numbers).
    rf::AmplifierConfig golden_cfg;
    golden_cfg.label = "circuit_lna";
    golden_cfg.gain_db = 16.5;
    golden_cfg.p1db_in_dbm = -18.0;
    golden_cfg.noise_figure_db = 2.7;
    golden_cfg.model = rf::NonlinearityModel::kClippedCubic;
    rf::Amplifier golden(golden_cfg, 80e6, dsp::Rng(7));

    rf::CalibrationConfig cc;
    cc.tones.num_samples = 8192;
    cc.tones.settle_samples = 512;
    const rf::CalibrationResult cal = rf::calibrate_amplifier(
        golden, cc, rf::NonlinearityModel::kRapp, dsp::Rng(8));
    std::printf("fitted behavioral LNA: gain %.2f dB, P1dB %.2f dBm, "
                "NF %.2f dB (residuals %.2f/%.2f/%.2f)\n\n",
                cal.fitted.gain_db, cal.fitted.p1db_in_dbm,
                cal.fitted.noise_figure_db, cal.gain_error_db,
                cal.p1db_error_db, cal.nf_error_db);
  }

  std::printf("=== step 5: extract a J&K black-box surrogate ===\n");
  {
    rf::DoubleConversionConfig rfc;
    rfc.agc.loop_gain = 0.0;
    rfc.agc.initial_gain_db = 0.0;
    rfc.adc.enabled = false;
    rf::DoubleConversionReceiver chain(rfc, dsp::Rng(9));
    rf::ExtractionConfig ec;
    ec.fir_taps = 41;
    ec.num_env_points = 12;
    ec.tone_samples = 2048;
    ec.settle_samples = 2048;
    const rf::BlackBoxData data = rf::extract_blackbox(chain, ec);
    rf::BlackBoxModel surrogate(data, dsp::Rng(10));
    rf::ToneTestConfig tc;
    tc.tone_hz = 2e6;
    tc.num_samples = 4096;
    tc.settle_samples = 2048;
    std::printf("surrogate gain %.2f dB vs chain %.2f dB — ready to "
                "instantiate in the system schematic\n",
                rf::measure_gain_db(surrogate, tc, -60.0),
                rf::measure_gain_db(chain, tc, -60.0));
  }
  return 0;
}
