// Adjacent-channel study: the scenario motivating the paper's §2.2
// receiver requirements. Sweeps the adjacent-channel level over the
// double-conversion front-end and reports BER/EVM — showing where the
// +16 dB spec point sits relative to the receiver's breaking point.
//
//   build/examples/adjacent_channel_study
#include <cstdio>

#include "core/experiments.h"
#include "core/link.h"

int main() {
  using namespace wlansim;

  std::printf("adjacent-channel robustness of the double-conversion "
              "receiver\n");
  std::printf("wanted: 24 Mbps at -65 dBm; interferer at +20 MHz\n\n");
  std::printf("%18s  %10s  %8s  %6s\n", "interferer [dB]", "BER", "EVM %",
              "PER");

  bool spec_point_ok = false;
  for (double level : {0.0, 8.0, 16.0, 24.0, 32.0, 40.0}) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.interferer =
        channel::InterfererConfig{.offset_hz = 20e6, .level_db = level};
    core::WlanLink link(cfg);
    const core::BerResult r = link.run_ber(8);
    std::printf("%18.0f  %10.2e  %8.2f  %6.2f\n", level, r.ber(),
                100.0 * r.evm_rms_avg, r.per());
    if (level == 16.0 && r.ber() < 1e-2) spec_point_ok = true;
  }

  std::printf("\nIEEE 802.11a spec point: first adjacent channel may be "
              "16 dB above the wanted signal.\n");
  std::printf("receiver meets the +16 dB point: %s\n",
              spec_point_ok ? "yes" : "NO");
  return spec_point_ok ? 0 : 1;
}
