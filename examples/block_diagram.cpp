// Block-diagram API demo: assemble a custom scene with the dataflow graph
// (the SPW-schematic style of working), probe an internal signal, and
// inspect its spectrum — the workflow behind the paper's Fig. 3/Fig. 4.
//
//   build/examples/block_diagram
#include <cstdio>

#include "channel/interferer.h"
#include "dsp/mathutil.h"
#include "dsp/spectrum.h"
#include "phy80211a/bits.h"
#include "phy80211a/transmitter.h"
#include "rf/receiver_chain.h"
#include "sim/graph.h"

int main() {
  using namespace wlansim;
  dsp::Rng rng(7);

  // A transmitter frame at 20 Msps, like dropping the TX block on the
  // schematic.
  phy::Transmitter tx({.scrambler_seed = 0x5D, .output_power_dbm = -60.0});
  dsp::CVec frame = tx.modulate({phy::Rate::kMbps12, phy::random_bytes(300, rng)});
  frame.insert(frame.begin(), 400, dsp::Cplx{0.0, 0.0});

  const std::size_t over = 4;
  const double fs = phy::kSampleRate * over;

  // Interferer branch, already at the oversampled rate.
  dsp::Rng jrng = rng.fork();
  dsp::CVec jam = channel::make_interferer(
      frame.size() * over, fs, dsp::dbm_to_watts(-60.0),
      {.offset_hz = 20e6, .level_db = 16.0, .rate = phy::Rate::kMbps24,
       .psdu_bytes = 200},
      jrng);

  // Wire the schematic.
  sim::Graph g;
  auto* src = g.add<sim::SourceNode>("wanted_tx", std::move(frame));
  auto* up = g.add<sim::UpsampleNode>("oversample_x4", over);
  auto* jsrc = g.add<sim::SourceNode>("adjacent_tx", std::move(jam));
  jsrc->set_rate_weight(over);
  auto* air = g.add<sim::AddNode>("air", 2);
  auto* probe = g.add<sim::ProbeNode>("antenna_probe");
  auto* rf = g.add<sim::RfNode>(
      "rf_rx", std::make_unique<rf::DoubleConversionReceiver>(
                   rf::DoubleConversionConfig{}, rng.fork()));
  auto* out_probe = g.add<sim::ProbeNode>("baseband_probe");
  auto* sink = g.add<sim::SinkNode>("to_dsp");

  g.connect(src, up);
  g.connect(up, 0, air, 0);
  g.connect(jsrc, 0, air, 1);
  g.connect(air, probe);
  g.connect(probe, rf);
  g.connect(rf, out_probe);
  g.connect(out_probe, sink);

  g.run(sim::ExecutionMode::kCompiled, 512, 64);

  // Inspect the probed antenna signal: wanted at 0 Hz, adjacent at +20 MHz.
  const dsp::PsdEstimate psd = dsp::welch_psd(probe->data(), {.nfft = 1024});
  const double wanted = psd.band_power(0.0, 16.6e6 / fs);
  const double adjacent = psd.band_power(20e6 / fs, 16.6e6 / fs);
  std::printf("graph ran %zu nodes; probe captured %zu samples\n",
              g.num_nodes(), probe->data().size());
  std::printf("antenna probe: wanted %.1f dBm, adjacent %.1f dBm "
              "(delta %.1f dB)\n",
              dsp::watts_to_dbm(wanted), dsp::watts_to_dbm(adjacent),
              dsp::to_db(adjacent / wanted));

  // After the RF front-end the adjacent channel is gone. Skip the AGC
  // acquisition transient (lead + early preamble) — its gain swings smear
  // broadband energy across the analysis band.
  const std::size_t skip = 6000;
  const std::span<const dsp::Cplx> settled(
      out_probe->data().data() + skip, out_probe->data().size() - skip);
  const dsp::PsdEstimate bb = dsp::welch_psd(settled, {.nfft = 1024});
  const double bb_wanted = bb.band_power(0.0, 16.6e6 / fs);
  const double bb_adjacent = bb.band_power(20e6 / fs, 16.6e6 / fs);
  std::printf("baseband probe: wanted-to-adjacent ratio %.1f dB after "
              "channel selection\n",
              dsp::to_db(bb_wanted / bb_adjacent));
  return dsp::to_db(bb_wanted / bb_adjacent) > 20.0 ? 0 : 1;
}
