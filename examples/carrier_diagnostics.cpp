// Per-carrier diagnostics: localize RF impairments spectrally. Runs the
// link with the second mixer's flicker noise cranked up and plots the
// per-subcarrier EVM profile — the 1/f products hit the innermost
// carriers, the channel-filter edge hits the outermost. Also exports the
// received baseband and its PSD as CSV (the SigCalc-viewer workflow of the
// paper's §4.3).
//
//   build/examples/carrier_diagnostics [output_dir]
#include <cstdio>
#include <string>

#include "core/experiments.h"
#include "core/link.h"
#include "dsp/spectrum.h"
#include "phy80211a/mapper.h"
#include "phy80211a/measure.h"
#include "phy80211a/transmitter.h"
#include "sim/waveio.h"

int main(int argc, char** argv) {
  using namespace wlansim;
  const std::string outdir = argc > 1 ? argv[1] : "/tmp";

  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps54;
  cfg.snr_db = 30.0;
  cfg.rf.mixer2_flicker_power_dbm = -52.0;  // strong 1/f for the demo
  cfg.rf.flicker_corner_hz = 800e3;         // reaches the inner carriers

  // Run one long packet, then profile its equalized constellation against
  // decision-directed references (per-carrier, like a vector signal
  // analyzer would).
  cfg.psdu_bytes = 1500;
  phy::PerCarrierEvm profile;
  core::WlanLink link(cfg);
  const core::PacketResult pkt = link.run_packet(0);
  if (!pkt.decoded) {
    std::printf("packet did not decode; cannot profile\n");
    return 1;
  }
  const phy::Receiver rx(cfg.receiver);
  const phy::RxResult res = rx.receive(link.last_rx_baseband());
  const phy::Mapper mapper(phy::Modulation::kQam64);
  for (const auto& pts : res.data_points) {
    dsp::CVec ref(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
      ref[i] = mapper.nearest_point(pts[i]);
    profile.add_symbol(pts, ref);
  }

  std::printf("per-carrier EVM over %zu OFDM symbols (64-QAM, hot 1/f "
              "noise):\n\n", profile.symbols());
  const auto evm = profile.evm_per_carrier();
  for (std::size_t i = 0; i < evm.size(); ++i) {
    const int k = phy::PerCarrierEvm::carrier_index(i);
    const int bars = static_cast<int>(evm[i] * 400);
    std::printf("  k=%+3d  %5.1f %%  |%.*s\n", k, 100.0 * evm[i],
                std::min(bars, 60), "###########################################################");
  }

  // Inner-vs-outer comparison (carriers |k| <= 4 vs |k| >= 20).
  double inner = 0.0, outer = 0.0;
  int ni = 0, no = 0;
  for (std::size_t i = 0; i < evm.size(); ++i) {
    const int k = std::abs(phy::PerCarrierEvm::carrier_index(i));
    if (k <= 4) {
      inner += evm[i];
      ++ni;
    } else if (k >= 20) {
      outer += evm[i];
      ++no;
    }
  }
  std::printf("\ninner carriers (|k|<=4) mean EVM %.1f %%, outer (|k|>=20) "
              "%.1f %%\n", 100.0 * inner / ni, 100.0 * outer / no);
  std::printf("the 1/f products concentrate on the inner carriers.\n");

  // Export waveforms for offline viewing.
  const std::string wave_path = outdir + "/rx_baseband.csv";
  const std::string psd_path = outdir + "/rx_psd.csv";
  sim::write_waveform_csv(wave_path, link.last_rx_baseband(),
                          phy::kSampleRate);
  const dsp::PsdEstimate psd =
      dsp::welch_psd(link.last_rf_input(), {.nfft = 1024});
  sim::write_psd_csv(psd_path, psd, phy::kSampleRate * cfg.oversample);
  std::printf("\nwrote %s and %s\n", wave_path.c_str(), psd_path.c_str());

  return inner / ni > outer / no ? 0 : 1;
}
