// Rate adaptation over a fading indoor channel: runs every 802.11a rate
// through a multipath channel at several SNRs and picks the highest rate
// whose packet error rate stays under 10 % — the link-adaptation question
// the 802.11a rate ladder exists to answer.
//
//   build/examples/rate_adaptation_fading
#include <cstdio>

#include "core/experiments.h"
#include "core/link.h"

int main() {
  using namespace wlansim;

  const phy::Rate rates[] = {phy::Rate::kMbps6,  phy::Rate::kMbps12,
                             phy::Rate::kMbps24, phy::Rate::kMbps36,
                             phy::Rate::kMbps54};

  std::printf("rate adaptation over a 50 ns RMS delay-spread channel\n");
  std::printf("(8 packets per rate/SNR point, RF front-end in the loop)\n\n");
  std::printf("%10s", "SNR [dB]");
  for (phy::Rate r : rates)
    std::printf("  %11.0f", phy::rate_params(r).rate_mbps);
  std::printf("   best rate\n");

  for (double snr : {10.0, 15.0, 20.0, 28.0}) {
    std::printf("%10.0f", snr);
    double best = 0.0;
    for (phy::Rate r : rates) {
      core::LinkConfig cfg = core::default_link_config();
      cfg.rate = r;
      cfg.snr_db = snr;
      channel::FadingConfig fc;
      fc.rms_delay_spread_s = 50e-9;
      cfg.fading = fc;
      core::WlanLink link(cfg);
      const core::BerResult res = link.run_ber(8);
      std::printf("  %10.2f%%", 100.0 * res.per());
      if (res.per() < 0.1) best = phy::rate_params(r).rate_mbps;
    }
    if (best > 0) {
      std::printf("   %4.0f Mbps\n", best);
    } else {
      std::printf("   (none)\n");
    }
  }

  std::printf("\ncolumns show packet error rate per rate; the usable rate "
              "climbs with SNR.\n");
  return 0;
}
