// MAC-PDU traffic through the RF link: frames carry real 802.11 data-MPDU
// framing with CRC-32 FCS, so frame errors are detected the way a real
// station detects them (FCS failure) instead of by genie comparison —
// completing the paper's Fig. 1 pipeline out to the "MAC PDU stream".
//
//   build/examples/mac_traffic
#include <cstdio>

#include "core/experiments.h"
#include "core/link.h"
#include "phy80211a/mpdu.h"

int main() {
  using namespace wlansim;

  const phy::MacAddress sta = phy::MacAddress::from_id(1);
  const phy::MacAddress ap = phy::MacAddress::from_id(100);

  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps36;
  cfg.snr_db = 15.5;  // marginal for 16-QAM 3/4: some frames will fail FCS
  cfg.psdu_bytes = phy::kMacHeaderBytes + 150 + phy::kFcsBytes;
  core::WlanLink link(cfg);

  std::printf("station %s -> AP %s at %s, SNR %.0f dB\n\n",
              sta.to_string().c_str(), ap.to_string().c_str(),
              std::string(phy::rate_name(cfg.rate)).c_str(), *cfg.snr_db);

  dsp::Rng rng(2026);
  int delivered = 0, fcs_fail = 0, lost = 0, misdelivered = 0;
  const int kFrames = 30;
  for (int seq = 0; seq < kFrames; ++seq) {
    phy::MacHeader hdr;
    hdr.addr1 = ap;
    hdr.addr2 = sta;
    hdr.addr3 = ap;
    hdr.set_sequence_number(static_cast<std::uint16_t>(seq));
    const phy::Bytes llc = phy::random_bytes(150, rng);
    const phy::Bytes psdu = phy::build_data_mpdu(hdr, llc);

    phy::Bytes rx_psdu;
    const core::PacketResult r = link.run_packet_with_payload(
        psdu, static_cast<std::uint64_t>(seq), &rx_psdu);

    if (!r.decoded) {
      ++lost;
      std::printf("  seq %2d: PHY lost (no header / sync failure)\n", seq);
      continue;
    }
    const auto parsed = phy::parse_mpdu(rx_psdu);
    if (!parsed) {
      ++fcs_fail;
      std::printf("  seq %2d: FCS failure (%zu raw bit errors)\n", seq,
                  r.bit_errors);
    } else if (parsed->header.sequence_number() !=
                   static_cast<std::uint16_t>(seq) ||
               parsed->payload != llc) {
      ++misdelivered;  // FCS passed on corrupted data: ~2^-32 event
      std::printf("  seq %2d: UNDETECTED corruption!\n", seq);
    } else {
      ++delivered;
    }
  }

  std::printf("\n%d/%d delivered, %d FCS failures, %d lost at PHY, "
              "%d undetected\n", delivered, kFrames, fcs_fail, lost,
              misdelivered);
  std::printf("frame error rate %.1f %%\n",
              100.0 * (kFrames - delivered) / kFrames);
  return (delivered > 0 && misdelivered == 0) ? 0 : 1;
}
