#include "phy80211b/plcp.h"

#include <cmath>
#include <stdexcept>

namespace wlansim::phy11b {

double rate_bps(Rate11b r) {
  switch (r) {
    case Rate11b::kMbps1: return 1e6;
    case Rate11b::kMbps2: return 2e6;
    case Rate11b::kMbps5_5: return 5.5e6;
    case Rate11b::kMbps11: return 11e6;
  }
  throw std::invalid_argument("rate_bps: bad rate");
}

std::uint8_t signal_field_value(Rate11b r) {
  switch (r) {
    case Rate11b::kMbps1: return 0x0A;    // 10 x 100 kbps
    case Rate11b::kMbps2: return 0x14;    // 20
    case Rate11b::kMbps5_5: return 0x37;  // 55
    case Rate11b::kMbps11: return 0x6E;   // 110
  }
  throw std::invalid_argument("signal_field_value: bad rate");
}

bool rate_from_signal(std::uint8_t signal, Rate11b* out) {
  switch (signal) {
    case 0x0A: *out = Rate11b::kMbps1; return true;
    case 0x14: *out = Rate11b::kMbps2; return true;
    case 0x37: *out = Rate11b::kMbps5_5; return true;
    case 0x6E: *out = Rate11b::kMbps11; return true;
    default: return false;
  }
}

const char* rate11b_name(Rate11b r) {
  switch (r) {
    case Rate11b::kMbps1: return "1 Mbps (DBPSK/Barker)";
    case Rate11b::kMbps2: return "2 Mbps (DQPSK/Barker)";
    case Rate11b::kMbps5_5: return "5.5 Mbps (CCK)";
    case Rate11b::kMbps11: return "11 Mbps (CCK)";
  }
  return "?";
}

std::uint8_t Scrambler11b::scramble(std::uint8_t bit) {
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 3) ^ (state_ >> 6)) & 1);
  const std::uint8_t out = (bit ^ fb) & 1;
  state_ = static_cast<std::uint8_t>(((state_ << 1) | out) & 0x7F);
  return out;
}

std::uint8_t Scrambler11b::descramble(std::uint8_t bit) {
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 3) ^ (state_ >> 6)) & 1);
  const std::uint8_t out = (bit ^ fb) & 1;
  state_ = static_cast<std::uint8_t>(((state_ << 1) | (bit & 1)) & 0x7F);
  return out;
}

void Scrambler11b::scramble(Bits& bits) {
  for (auto& b : bits) b = scramble(b);
}

void Scrambler11b::descramble(Bits& bits) {
  for (auto& b : bits) b = descramble(b);
}

std::uint16_t plcp_crc16(std::span<const std::uint8_t> bits) {
  // Bitwise CRC-16-CCITT over the bit stream, preset ones, complemented.
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : bits) {
    const std::uint16_t msb = (crc >> 15) & 1;
    const std::uint16_t in = (b & 1) ^ msb;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (in) crc ^= 0x1021;  // x^16 + x^12 + x^5 + 1
  }
  return static_cast<std::uint16_t>(~crc);
}

void encode_length(Rate11b rate, std::size_t bytes, std::uint16_t* length_us,
                   bool* extension) {
  const double us = 8.0 * static_cast<double>(bytes) * 1e6 / rate_bps(rate);
  *extension = false;
  double rounded = std::ceil(us);
  if (rate == Rate11b::kMbps11) {
    // Std 18.2.3.5: extension bit set when ceil added >= 8/11 us.
    if (rounded - us >= 8.0 / 11.0) *extension = true;
  }
  *length_us = static_cast<std::uint16_t>(rounded);
}

std::size_t decode_length(Rate11b rate, std::uint16_t length_us,
                          bool extension) {
  switch (rate) {
    case Rate11b::kMbps1: return length_us / 8;
    case Rate11b::kMbps2: return length_us / 4;
    case Rate11b::kMbps5_5:
      return static_cast<std::size_t>(std::floor(length_us * 5.5 / 8.0));
    case Rate11b::kMbps11: {
      const auto n = static_cast<std::size_t>(
          std::floor(static_cast<double>(length_us) * 11.0 / 8.0));
      return n - (extension ? 1 : 0);
    }
  }
  throw std::invalid_argument("decode_length: bad rate");
}

namespace {

void append_lsb_first(Bits& out, std::uint32_t value, int bits) {
  for (int i = 0; i < bits; ++i)
    out.push_back(static_cast<std::uint8_t>((value >> i) & 1));
}

std::uint32_t read_lsb_first(const Bits& in, std::size_t pos, int bits) {
  std::uint32_t v = 0;
  for (int i = 0; i < bits; ++i)
    v |= static_cast<std::uint32_t>(in[pos + i] & 1) << i;
  return v;
}

}  // namespace

Bits plcp_header_bits(const PlcpHeader& hdr) {
  std::uint16_t length_us = 0;
  bool ext = false;
  encode_length(hdr.rate, hdr.psdu_bytes, &length_us, &ext);

  Bits b;
  b.reserve(48);
  append_lsb_first(b, signal_field_value(hdr.rate), 8);
  std::uint8_t service = 0x04;  // locked-clocks bit, Std 18.2.3.4
  if (ext) service |= 0x80;
  append_lsb_first(b, service, 8);
  append_lsb_first(b, length_us, 16);
  const std::uint16_t crc = plcp_crc16(std::span<const std::uint8_t>(b));
  append_lsb_first(b, crc, 16);
  return b;
}

std::optional<PlcpHeader> parse_plcp_header(const Bits& bits) {
  if (bits.size() != 48) return std::nullopt;
  const Bits body(bits.begin(), bits.begin() + 32);
  const auto crc_rx = static_cast<std::uint16_t>(read_lsb_first(bits, 32, 16));
  if (plcp_crc16(std::span<const std::uint8_t>(body)) != crc_rx)
    return std::nullopt;

  const auto signal = static_cast<std::uint8_t>(read_lsb_first(bits, 0, 8));
  Rate11b rate;
  if (!rate_from_signal(signal, &rate)) return std::nullopt;
  const auto service = static_cast<std::uint8_t>(read_lsb_first(bits, 8, 8));
  const auto length_us =
      static_cast<std::uint16_t>(read_lsb_first(bits, 16, 16));

  PlcpHeader hdr;
  hdr.rate = rate;
  hdr.length_extension = (service & 0x80) != 0;
  hdr.psdu_bytes = decode_length(rate, length_us, hdr.length_extension);
  if (hdr.psdu_bytes == 0) return std::nullopt;
  return hdr;
}

}  // namespace wlansim::phy11b
