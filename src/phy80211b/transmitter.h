// 802.11b DSSS/CCK transmitter: long-preamble PPDU at one sample per chip
// (11 Msps complex baseband).
#pragma once

#include "dsp/types.h"
#include "phy80211b/plcp.h"

namespace wlansim::phy11b {

struct Frame11b {
  Rate11b rate = Rate11b::kMbps1;
  Bytes psdu;
};

class Transmitter11b {
 public:
  struct Config {
    std::uint8_t scrambler_seed = 0x6C;
    double output_power_dbm = 0.0;  ///< mean frame power
    /// Short-preamble format (Std 18.2.2.2): 56-bit SYNC of scrambled
    /// zeros, reversed SFD, PLCP header at 2 Mbps DQPSK. Halves the PLCP
    /// overhead; only valid for the 2/5.5/11 Mbps payload rates.
    bool short_preamble = false;
  };

  Transmitter11b();
  explicit Transmitter11b(Config cfg);

  /// Complete PPDU: SYNC(128) + SFD(16) + header(48) at 1 Mbps DBPSK,
  /// then the PSDU at the selected rate. One sample per chip.
  dsp::CVec modulate(const Frame11b& frame) const;

  /// Frame length in chips for a given configuration.
  static std::size_t frame_chips(Rate11b rate, std::size_t psdu_bytes,
                                 bool short_preamble = false);

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace wlansim::phy11b
