// 802.11b PLCP layer: self-synchronizing scrambler, CRC-16 header
// protection, long preamble (SYNC + SFD) and PLCP header fields
// (Std 802.11b-1999, 18.2).
#pragma once

#include <cstdint>
#include <optional>

#include "phy80211a/bits.h"

namespace wlansim::phy11b {

using phy::Bits;
using phy::Bytes;

/// DSSS/CCK rates.
enum class Rate11b : std::uint8_t { kMbps1, kMbps2, kMbps5_5, kMbps11 };

/// Data rate in bits per second.
double rate_bps(Rate11b r);

/// SIGNAL field value (rate in units of 100 kbps; Std 18.2.3.3).
std::uint8_t signal_field_value(Rate11b r);

/// Decode a SIGNAL field value; false if not a valid rate.
bool rate_from_signal(std::uint8_t signal, Rate11b* out);

/// Human-readable rate name.
const char* rate11b_name(Rate11b r);

/// Self-synchronizing scrambler G(z) = z^-7 + z^-4 + 1 (Std 18.2.4).
/// The descrambler locks onto the transmit state from the received stream
/// itself after seven bits.
class Scrambler11b {
 public:
  explicit Scrambler11b(std::uint8_t seed = 0x6C) : state_(seed & 0x7F) {}

  /// Scramble one transmit bit.
  std::uint8_t scramble(std::uint8_t bit);

  /// Descramble one received bit (self-synchronizing).
  std::uint8_t descramble(std::uint8_t bit);

  void scramble(Bits& bits);
  void descramble(Bits& bits);

 private:
  std::uint8_t state_;
};

/// CRC-16 of the PLCP header (CCITT polynomial x^16+x^12+x^5+1, preset to
/// ones, result complemented; Std 18.2.3.6).
std::uint16_t plcp_crc16(std::span<const std::uint8_t> bits);

/// Number of SYNC bits in the long preamble (scrambled ones).
inline constexpr std::size_t kSyncBits = 128;

/// Start frame delimiter, transmitted LSB first (Std 18.2.3.2).
inline constexpr std::uint16_t kSfd = 0xF3A0;

/// Short-preamble format (Std 18.2.2.2): 56 scrambled zeros and the
/// time-reversed SFD; the PLCP header then runs at 2 Mbps DQPSK.
inline constexpr std::size_t kShortSyncBits = 56;
inline constexpr std::uint16_t kShortSfd = 0x05CF;

/// PLCP header content.
struct PlcpHeader {
  Rate11b rate = Rate11b::kMbps1;
  std::size_t psdu_bytes = 0;
  bool length_extension = false;  ///< SERVICE bit 7 (11 Mbps ambiguity)
};

/// LENGTH field (microseconds) and extension bit for a payload size.
void encode_length(Rate11b rate, std::size_t bytes, std::uint16_t* length_us,
                   bool* extension);

/// Payload size in bytes from LENGTH/extension.
std::size_t decode_length(Rate11b rate, std::uint16_t length_us,
                          bool extension);

/// Assemble the 48 PLCP header bits (SIGNAL, SERVICE, LENGTH, CRC), all
/// fields LSB first.
Bits plcp_header_bits(const PlcpHeader& hdr);

/// Parse and CRC-check 48 received header bits.
std::optional<PlcpHeader> parse_plcp_header(const Bits& bits);

}  // namespace wlansim::phy11b
