#include "phy80211b/chips.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::phy11b {

const std::array<double, kBarkerLen>& barker_sequence() {
  // Std 18.4.6.4: +1 -1 +1 +1 -1 +1 +1 +1 -1 -1 -1.
  static const std::array<double, kBarkerLen> seq = {
      1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0};
  return seq;
}

dsp::CVec barker_spread(dsp::Cplx symbol) {
  const auto& b = barker_sequence();
  dsp::CVec out(kBarkerLen);
  // Normalize so one spread symbol carries unit energy per chip on
  // average: |symbol|^2 per chip.
  for (std::size_t i = 0; i < kBarkerLen; ++i) out[i] = b[i] * symbol;
  return out;
}

dsp::Cplx barker_despread(std::span<const dsp::Cplx> chips11) {
  if (chips11.size() != kBarkerLen)
    throw std::invalid_argument("barker_despread: need 11 chips");
  const auto& b = barker_sequence();
  dsp::Cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < kBarkerLen; ++i) acc += chips11[i] * b[i];
  return acc / static_cast<double>(kBarkerLen);
}

dsp::CVec cck_codeword(double phi1, double phi2, double phi3, double phi4) {
  auto e = [](double p) { return dsp::Cplx{std::cos(p), std::sin(p)}; };
  dsp::CVec c(kCckLen);
  c[0] = e(phi1 + phi2 + phi3 + phi4);
  c[1] = e(phi1 + phi3 + phi4);
  c[2] = e(phi1 + phi2 + phi4);
  c[3] = -e(phi1 + phi4);
  c[4] = e(phi1 + phi2 + phi3);
  c[5] = e(phi1 + phi3);
  c[6] = -e(phi1 + phi2);
  c[7] = e(phi1);
  return c;
}

double cck_dibit_phase(std::uint8_t d0, std::uint8_t d1) {
  // Dibit pattern (d0 d1), d0 first in time (Std Table 111):
  // 00->0, 01->pi/2, 10->pi, 11->3pi/2.
  const int v = ((d0 & 1) << 1) | (d1 & 1);
  switch (v) {
    case 0: return 0.0;
    case 1: return dsp::kPi / 2.0;
    case 2: return dsp::kPi;
    case 3: return 3.0 * dsp::kPi / 2.0;
  }
  return 0.0;
}

void cck55_phases(std::uint8_t d2, std::uint8_t d3, double* phi2,
                  double* phi3, double* phi4) {
  *phi2 = (d2 & 1) * dsp::kPi + dsp::kPi / 2.0;
  *phi3 = 0.0;
  *phi4 = (d3 & 1) * dsp::kPi;
}

}  // namespace wlansim::phy11b
