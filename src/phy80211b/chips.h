// Spreading sequences of IEEE 802.11b: the 11-chip Barker code used at
// 1 and 2 Mbps and the 8-chip Complementary Code Keying (CCK) codes used
// at 5.5 and 11 Mbps (Std 802.11b-1999, 18.4.6.5 / 18.4.6.6).
//
// The paper's Table 1 lists these legacy rates alongside 802.11a; this
// module provides the "widely used today" DSSS PHY as a second, complete
// modem substrate.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "dsp/types.h"

namespace wlansim::phy11b {

/// Chips per Barker symbol.
inline constexpr std::size_t kBarkerLen = 11;

/// Chips per CCK symbol.
inline constexpr std::size_t kCckLen = 8;

/// Chip rate [chips/s].
inline constexpr double kChipRate = 11e6;

/// The 11-chip Barker sequence (+1/-1), Std 18.4.6.4.
const std::array<double, kBarkerLen>& barker_sequence();

/// Spread one BPSK/QPSK symbol value onto the Barker sequence.
dsp::CVec barker_spread(dsp::Cplx symbol);

/// Correlate 11 received chips against the Barker sequence (normalized:
/// a clean spread symbol returns the symbol value).
dsp::Cplx barker_despread(std::span<const dsp::Cplx> chips11);

/// CCK code word for the phases (phi1..phi4), Std 18.4.6.5:
/// c = e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
///     e^{j(p1+p2+p3)}, e^{j(p1+p3)}, -e^{j(p1+p2)}, e^{j(p1)}
dsp::CVec cck_codeword(double phi1, double phi2, double phi3, double phi4);

/// QPSK phase for a dibit (d0 = LSB first): 00->0, 01->pi/2, 10->pi,
/// 11->3pi/2 (Std Table 111 ordering for CCK phase encoding).
double cck_dibit_phase(std::uint8_t d0, std::uint8_t d1);

/// All 4 (phi2,phi3,phi4) triples of the 5.5 Mbps mode indexed by the two
/// data bits (d2, d3): phi2 = d2*pi + pi/2, phi3 = 0, phi4 = d3*pi.
void cck55_phases(std::uint8_t d2, std::uint8_t d3, double* phi2,
                  double* phi3, double* phi4);

}  // namespace wlansim::phy11b
