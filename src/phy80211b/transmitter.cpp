#include "phy80211b/transmitter.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"
#include "phy80211b/chips.h"

namespace wlansim::phy11b {

namespace {

/// DQPSK phase increment for a dibit, d0 first in time (Std Table 110):
/// 00->0, 01->pi/2, 11->pi, 10->3pi/2.
double dqpsk_delta(std::uint8_t d0, std::uint8_t d1) {
  const int v = ((d0 & 1) << 1) | (d1 & 1);
  switch (v) {
    case 0: return 0.0;                    // 00
    case 1: return dsp::kPi / 2.0;         // 01
    case 3: return dsp::kPi;               // 11
    case 2: return 3.0 * dsp::kPi / 2.0;   // 10
  }
  return 0.0;
}

}  // namespace

Transmitter11b::Transmitter11b() : Transmitter11b(Config()) {}

Transmitter11b::Transmitter11b(Config cfg) : cfg_(cfg) {
  if ((cfg_.scrambler_seed & 0x7F) == 0)
    throw std::invalid_argument("Transmitter11b: zero scrambler seed");
}

std::size_t Transmitter11b::frame_chips(Rate11b rate, std::size_t psdu_bytes,
                                        bool short_preamble) {
  // Long: SYNC(128) + SFD(16) + header(48) symbols at 1 Mbps.
  // Short: SYNC(56) + SFD(16) at 1 Mbps + header(24 symbols) at 2 Mbps.
  const std::size_t preamble_syms =
      short_preamble ? kShortSyncBits + 16 + 24 : kSyncBits + 16 + 48;
  const std::size_t nbits = 8 * psdu_bytes;
  std::size_t payload_chips = 0;
  switch (rate) {
    case Rate11b::kMbps1: payload_chips = nbits * kBarkerLen; break;
    case Rate11b::kMbps2: payload_chips = nbits / 2 * kBarkerLen; break;
    case Rate11b::kMbps5_5: payload_chips = nbits / 4 * kCckLen; break;
    case Rate11b::kMbps11: payload_chips = nbits / 8 * kCckLen; break;
  }
  return preamble_syms * kBarkerLen + payload_chips;
}

dsp::CVec Transmitter11b::modulate(const Frame11b& frame) const {
  if (frame.psdu.empty() || frame.psdu.size() > 4095)
    throw std::invalid_argument("Transmitter11b: PSDU must be 1..4095 bytes");
  const std::size_t nbits = 8 * frame.psdu.size();
  // Bit-count granularity per rate (2/4/8 bits per symbol beyond 1 Mbps);
  // byte payloads always satisfy these.
  if ((frame.rate == Rate11b::kMbps2 && nbits % 2) ||
      (frame.rate == Rate11b::kMbps5_5 && nbits % 4) ||
      (frame.rate == Rate11b::kMbps11 && nbits % 8))
    throw std::invalid_argument("Transmitter11b: bit count mismatch");

  if (cfg_.short_preamble && frame.rate == Rate11b::kMbps1)
    throw std::invalid_argument(
        "Transmitter11b: the short preamble excludes the 1 Mbps payload");

  Scrambler11b scr(cfg_.scrambler_seed);
  dsp::CVec out;
  out.reserve(frame_chips(frame.rate, frame.psdu.size(), cfg_.short_preamble));

  double phase = 0.0;  // differential reference, carried across fields

  auto emit_barker_bit = [&](std::uint8_t scrambled_bit) {
    phase += (scrambled_bit & 1) ? dsp::kPi : 0.0;  // DBPSK
    const dsp::Cplx sym{std::cos(phase), std::sin(phase)};
    const dsp::CVec chips = barker_spread(sym);
    out.insert(out.end(), chips.begin(), chips.end());
  };
  auto emit_dqpsk_dibit = [&](std::uint8_t d0, std::uint8_t d1) {
    phase += dqpsk_delta(d0, d1);
    const dsp::CVec chips =
        barker_spread(dsp::Cplx{std::cos(phase), std::sin(phase)});
    out.insert(out.end(), chips.begin(), chips.end());
  };

  // --- SYNC + SFD at 1 Mbps ---------------------------------------------------
  if (cfg_.short_preamble) {
    for (std::size_t i = 0; i < kShortSyncBits; ++i)
      emit_barker_bit(scr.scramble(0));
    for (int i = 0; i < 16; ++i)
      emit_barker_bit(
          scr.scramble(static_cast<std::uint8_t>((kShortSfd >> i) & 1)));
  } else {
    for (std::size_t i = 0; i < kSyncBits; ++i)
      emit_barker_bit(scr.scramble(1));
    for (int i = 0; i < 16; ++i)
      emit_barker_bit(
          scr.scramble(static_cast<std::uint8_t>((kSfd >> i) & 1)));
  }

  // --- PLCP header: 1 Mbps DBPSK (long) or 2 Mbps DQPSK (short) --------------
  PlcpHeader hdr;
  hdr.rate = frame.rate;
  hdr.psdu_bytes = frame.psdu.size();
  const Bits hdr_bits = plcp_header_bits(hdr);
  if (cfg_.short_preamble) {
    for (std::size_t i = 0; i < hdr_bits.size(); i += 2) {
      const std::uint8_t s0 = scr.scramble(hdr_bits[i]);
      const std::uint8_t s1 = scr.scramble(hdr_bits[i + 1]);
      emit_dqpsk_dibit(s0, s1);
    }
  } else {
    for (std::uint8_t b : hdr_bits) emit_barker_bit(scr.scramble(b));
  }

  // --- PSDU at the data rate -------------------------------------------------
  Bits data = phy::bytes_to_bits(frame.psdu);
  scr.scramble(data);

  switch (frame.rate) {
    case Rate11b::kMbps1:
      for (std::uint8_t b : data) {
        phase += (b & 1) ? dsp::kPi : 0.0;
        const dsp::CVec chips =
            barker_spread(dsp::Cplx{std::cos(phase), std::sin(phase)});
        out.insert(out.end(), chips.begin(), chips.end());
      }
      break;
    case Rate11b::kMbps2:
      for (std::size_t i = 0; i < data.size(); i += 2) {
        phase += dqpsk_delta(data[i], data[i + 1]);
        const dsp::CVec chips =
            barker_spread(dsp::Cplx{std::cos(phase), std::sin(phase)});
        out.insert(out.end(), chips.begin(), chips.end());
      }
      break;
    case Rate11b::kMbps5_5: {
      std::size_t sym = 0;
      for (std::size_t i = 0; i < data.size(); i += 4, ++sym) {
        phase += dqpsk_delta(data[i], data[i + 1]);
        if (sym % 2 == 1) phase += dsp::kPi;  // odd-symbol rotation
        double p2, p3, p4;
        cck55_phases(data[i + 2], data[i + 3], &p2, &p3, &p4);
        const dsp::CVec chips = cck_codeword(phase, p2, p3, p4);
        out.insert(out.end(), chips.begin(), chips.end());
      }
      break;
    }
    case Rate11b::kMbps11: {
      std::size_t sym = 0;
      for (std::size_t i = 0; i < data.size(); i += 8, ++sym) {
        phase += dqpsk_delta(data[i], data[i + 1]);
        if (sym % 2 == 1) phase += dsp::kPi;
        const double p2 = cck_dibit_phase(data[i + 2], data[i + 3]);
        const double p3 = cck_dibit_phase(data[i + 4], data[i + 5]);
        const double p4 = cck_dibit_phase(data[i + 6], data[i + 7]);
        const dsp::CVec chips = cck_codeword(phase, p2, p3, p4);
        out.insert(out.end(), chips.begin(), chips.end());
      }
      break;
    }
  }

  dsp::set_mean_power(out, dsp::dbm_to_watts(cfg_.output_power_dbm));
  return out;
}

}  // namespace wlansim::phy11b
