#include "phy80211b/receiver.h"

#include <algorithm>
#include <cmath>
#include <vector>
#include <stdexcept>

#include "dsp/mathutil.h"
#include "phy80211b/chips.h"

namespace wlansim::phy11b {

namespace {

/// Nearest DQPSK phase increment -> dibit (inverse of Std Table 110).
void dqpsk_decide(double delta, std::uint8_t* d0, std::uint8_t* d1) {
  const double w = dsp::wrap_phase(delta);
  // Quadrant decision around {0, pi/2, pi, -pi/2}.
  if (w > -dsp::kPi / 4.0 && w <= dsp::kPi / 4.0) {
    *d0 = 0; *d1 = 0;                       // 0
  } else if (w > dsp::kPi / 4.0 && w <= 3.0 * dsp::kPi / 4.0) {
    *d0 = 0; *d1 = 1;                       // pi/2
  } else if (w > -3.0 * dsp::kPi / 4.0 && w <= -dsp::kPi / 4.0) {
    *d0 = 1; *d1 = 0;                       // 3pi/2 == -pi/2
  } else {
    *d0 = 1; *d1 = 1;                       // pi
  }
}

struct CckCandidate {
  dsp::CVec code;  ///< codeword at phi1 = 0
  std::uint8_t bits[6];
  std::size_t nbits;
};

std::vector<CckCandidate> make_cck_candidates(Rate11b rate) {
  std::vector<CckCandidate> out;
  if (rate == Rate11b::kMbps5_5) {
    for (int d2 = 0; d2 < 2; ++d2) {
      for (int d3 = 0; d3 < 2; ++d3) {
        double p2, p3, p4;
        cck55_phases(static_cast<std::uint8_t>(d2),
                     static_cast<std::uint8_t>(d3), &p2, &p3, &p4);
        CckCandidate c;
        c.code = cck_codeword(0.0, p2, p3, p4);
        c.bits[0] = static_cast<std::uint8_t>(d2);
        c.bits[1] = static_cast<std::uint8_t>(d3);
        c.nbits = 2;
        out.push_back(std::move(c));
      }
    }
  } else {
    for (int v = 0; v < 64; ++v) {
      const std::uint8_t b[6] = {
          static_cast<std::uint8_t>(v & 1),
          static_cast<std::uint8_t>((v >> 1) & 1),
          static_cast<std::uint8_t>((v >> 2) & 1),
          static_cast<std::uint8_t>((v >> 3) & 1),
          static_cast<std::uint8_t>((v >> 4) & 1),
          static_cast<std::uint8_t>((v >> 5) & 1)};
      const double p2 = cck_dibit_phase(b[0], b[1]);
      const double p3 = cck_dibit_phase(b[2], b[3]);
      const double p4 = cck_dibit_phase(b[4], b[5]);
      CckCandidate c;
      c.code = cck_codeword(0.0, p2, p3, p4);
      for (int i = 0; i < 6; ++i) c.bits[i] = b[i];
      c.nbits = 6;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

Receiver11b::Receiver11b() : Receiver11b(Config()) {}
Receiver11b::Receiver11b(Config cfg) : cfg_(cfg) {}

RxResult11b Receiver11b::receive(std::span<const dsp::Cplx> rx) const {
  RxResult11b res;
  if (rx.size() < 64 * kBarkerLen) return res;

  // --- Barker matched filter ------------------------------------------------
  const auto& b = barker_sequence();
  const std::size_t nmf = rx.size() - kBarkerLen + 1;
  dsp::CVec mf(nmf);
  for (std::size_t n = 0; n < nmf; ++n) {
    dsp::Cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < kBarkerLen; ++k) acc += rx[n + k] * b[k];
    mf[n] = acc / static_cast<double>(kBarkerLen);
  }

  // --- acquisition: first chip offset with a sustained despread peak --------
  // Compare the symbol-spaced despread power against the average
  // matched-filter output power: a Barker-aligned signal concentrates
  // ~11x more power at the symbol instants (the processing gain).
  const double mf_mean = dsp::mean_power(mf);
  if (mf_mean <= 0.0) return res;
  const std::size_t span_syms = 16;
  std::size_t lock = SIZE_MAX;
  for (std::size_t n = 0; n + span_syms * kBarkerLen < nmf; ++n) {
    double acc = 0.0;
    for (std::size_t j = 0; j < span_syms; ++j)
      acc += std::norm(mf[n + j * kBarkerLen]);
    if (acc / static_cast<double>(span_syms) >
        cfg_.detect_threshold * mf_mean) {
      lock = n;
      break;
    }
  }
  if (lock == SIZE_MAX) return res;
  // Refine: the threshold crossing can fire a little early (the span
  // window already overlaps the frame); snap to the strongest chip
  // alignment in the next few symbol periods.
  {
    double best = -1.0;
    std::size_t best_n = lock;
    const std::size_t hi =
        std::min(lock + 3 * kBarkerLen, nmf - span_syms * kBarkerLen);
    for (std::size_t n = lock; n < hi; ++n) {
      double acc = 0.0;
      for (std::size_t j = 0; j < span_syms; ++j)
        acc += std::norm(mf[n + j * kBarkerLen]);
      if (acc > best) {
        best = acc;
        best_n = n;
      }
    }
    lock = best_n;
  }
  res.detected = true;
  res.sync_chip = lock;

  // --- optional RAKE: estimate chip-delayed fingers from the SYNC field ---
  // and MRC-combine the delayed copies into a single chip stream, then
  // rebuild the matched filter on it. Finger 0 is the lock path (gain 1);
  // additional fingers are echoes whose relative complex gain is measured
  // against finger 0 over `span_syms` SYNC symbols.
  dsp::CVec combined;  // keeps rx alive when RAKE rebuilds the stream
  if (cfg_.rake_fingers > 1) {
    struct Finger {
      std::size_t delay;
      dsp::Cplx gain;
      double energy;
    };
    std::vector<Finger> fingers;
    const double e0 = [&] {
      double acc = 0.0;
      for (std::size_t j = 0; j < span_syms; ++j)
        acc += std::norm(mf[lock + j * kBarkerLen]);
      return acc;
    }();
    fingers.push_back({0, {1.0, 0.0}, e0});
    for (std::size_t d = 1;
         d <= cfg_.rake_max_delay && lock + d + span_syms * kBarkerLen < nmf;
         ++d) {
      dsp::Cplx cross{0.0, 0.0};
      double e = 0.0;
      for (std::size_t j = 0; j < span_syms; ++j) {
        cross += mf[lock + d + j * kBarkerLen] *
                 std::conj(mf[lock + j * kBarkerLen]);
        e += std::norm(mf[lock + d + j * kBarkerLen]);
      }
      // Keep echoes carrying at least a few percent of the main energy.
      if (e > 0.02 * e0) fingers.push_back({d, cross / e0, e});
    }
    std::sort(fingers.begin() + 1, fingers.end(),
              [](const Finger& a, const Finger& b) { return a.energy > b.energy; });
    if (fingers.size() > cfg_.rake_fingers) fingers.resize(cfg_.rake_fingers);

    if (fingers.size() > 1) {
      combined.assign(rx.size(), dsp::Cplx{0.0, 0.0});
      for (const Finger& f : fingers) {
        const dsp::Cplx g = std::conj(f.gain);
        for (std::size_t n = 0; n + f.delay < rx.size(); ++n)
          combined[n] += g * rx[n + f.delay];
      }
      rx = combined;
      // Rebuild the matched filter on the combined stream.
      for (std::size_t n = 0; n < nmf; ++n) {
        dsp::Cplx acc{0.0, 0.0};
        for (std::size_t k = 0; k < kBarkerLen; ++k) acc += rx[n + k] * b[k];
        mf[n] = acc / static_cast<double>(kBarkerLen);
      }
    }
  }

  // --- demodulate 1 Mbps symbols, descramble, hunt for the SFD ---------------
  Scrambler11b descr(0x7F);  // self-synchronizing: seed is irrelevant
  dsp::Cplx prev = mf[lock];
  std::size_t chip = lock + kBarkerLen;
  auto next_bit = [&]() -> std::optional<std::uint8_t> {
    if (chip >= nmf) return std::nullopt;
    const dsp::Cplx y = mf[chip];
    chip += kBarkerLen;
    const std::uint8_t sbit = (std::real(y * std::conj(prev)) < 0.0) ? 1 : 0;
    prev = y;
    return descr.descramble(sbit);
  };

  // SFD pattern: the window shifts newest bit into bit 0, so the first
  // transmitted SFD bit (LSB-first on air) must sit at bit 15 of the match
  // target. Both preamble formats are hunted simultaneously; the
  // time-reversed short SFD identifies the short format (header at 2 Mbps).
  std::uint32_t window = 0;
  std::uint32_t target_long = 0;
  std::uint32_t target_short = 0;
  for (int i = 0; i < 16; ++i) {
    target_long = (target_long << 1) | ((kSfd >> i) & 1);
    target_short = (target_short << 1) | ((kShortSfd >> i) & 1);
  }
  std::size_t hunted = 0;
  bool found = false;
  bool short_fmt = false;
  while (hunted < kSyncBits + 16 + 64) {
    const auto bit = next_bit();
    if (!bit) return res;
    window = ((window << 1) | *bit) & 0xFFFF;
    ++hunted;
    if (hunted >= 16 && (window == target_long || window == target_short)) {
      found = true;
      short_fmt = (window == target_short);
      break;
    }
  }
  if (!found) return res;

  // --- PLCP header: 48 DBPSK bits (long) or 24 DQPSK symbols (short) ----------
  Bits hdr_bits;
  if (short_fmt) {
    for (int s = 0; s < 24; ++s) {
      if (chip >= nmf) return res;
      const dsp::Cplx y = mf[chip];
      chip += kBarkerLen;
      std::uint8_t d0, d1;
      dqpsk_decide(std::arg(y * std::conj(prev)), &d0, &d1);
      prev = y;
      hdr_bits.push_back(descr.descramble(d0));
      hdr_bits.push_back(descr.descramble(d1));
    }
  } else {
    for (int i = 0; i < 48; ++i) {
      const auto bit = next_bit();
      if (!bit) return res;
      hdr_bits.push_back(*bit);
    }
  }
  const auto hdr = parse_plcp_header(hdr_bits);
  if (!hdr) return res;
  res.header = *hdr;
  res.header_ok = true;

  // --- payload -----------------------------------------------------------------
  const std::size_t nbits = 8 * hdr->psdu_bytes;
  Bits data;
  data.reserve(nbits);

  if (hdr->rate == Rate11b::kMbps1 || hdr->rate == Rate11b::kMbps2) {
    const std::size_t bits_per_sym = hdr->rate == Rate11b::kMbps1 ? 1 : 2;
    while (data.size() < nbits) {
      if (chip >= nmf) {
        res.header_ok = false;
        return res;
      }
      const dsp::Cplx y = mf[chip];
      chip += kBarkerLen;
      const double delta = std::arg(y * std::conj(prev));
      prev = y;
      if (bits_per_sym == 1) {
        data.push_back(std::abs(dsp::wrap_phase(delta)) > dsp::kPi / 2.0 ? 1
                                                                          : 0);
      } else {
        std::uint8_t d0, d1;
        dqpsk_decide(delta, &d0, &d1);
        data.push_back(d0);
        data.push_back(d1);
      }
    }
  } else {
    // CCK blocks of 8 chips start right after the header's last Barker
    // symbol. `chip` already indexes the first sample past that symbol
    // (the reader advances by 11 after each despread), i.e. the first
    // payload chip.
    std::size_t pos = chip;
    const auto candidates = make_cck_candidates(hdr->rate);
    const std::size_t bits_per_sym = hdr->rate == Rate11b::kMbps5_5 ? 4 : 8;
    double phi_prev = std::arg(prev);
    std::size_t sym = 0;
    while (data.size() < nbits) {
      if (pos + kCckLen > rx.size()) {
        res.header_ok = false;
        return res;
      }
      const CckCandidate* best = nullptr;
      dsp::Cplx best_corr{0.0, 0.0};
      for (const auto& cand : candidates) {
        dsp::Cplx acc{0.0, 0.0};
        for (std::size_t k = 0; k < kCckLen; ++k)
          acc += rx[pos + k] * std::conj(cand.code[k]);
        if (std::norm(acc) > std::norm(best_corr)) {
          best_corr = acc;
          best = &cand;
        }
      }
      const double phi1 = std::arg(best_corr);
      double delta = phi1 - phi_prev;
      if (sym % 2 == 1) delta -= dsp::kPi;  // odd-symbol rotation
      std::uint8_t d0, d1;
      dqpsk_decide(delta, &d0, &d1);
      data.push_back(d0);
      data.push_back(d1);
      for (std::size_t i = 0; i < best->nbits; ++i)
        data.push_back(best->bits[i]);
      phi_prev = phi1;
      pos += kCckLen;
      ++sym;
      (void)bits_per_sym;
    }
  }

  descr.descramble(data);
  res.psdu = phy::bits_to_bytes(data);
  return res;
}

}  // namespace wlansim::phy11b
