// 802.11b DSSS/CCK receiver: Barker matched-filter acquisition, SFD
// search, PLCP header decode and payload demodulation (DBPSK/DQPSK
// despreading, maximum-likelihood CCK codeword detection).
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"
#include "phy80211b/plcp.h"

namespace wlansim::phy11b {

struct RxResult11b {
  bool detected = false;
  bool header_ok = false;
  PlcpHeader header;
  Bytes psdu;
  std::size_t sync_chip = 0;  ///< chip index where symbol lock was acquired
};

class Receiver11b {
 public:
  struct Config {
    /// Detection threshold: despread-peak power over mean chip power.
    double detect_threshold = 4.0;
    /// RAKE fingers for multipath reception: chip-delayed copies of the
    /// signal are MRC-combined before despreading (1 = plain matched
    /// filter). Fingers and their complex gains are estimated from the
    /// SYNC field's despread peaks.
    std::size_t rake_fingers = 1;
    /// Maximum finger delay searched [chips].
    std::size_t rake_max_delay = 4;
  };

  Receiver11b();
  explicit Receiver11b(Config cfg);

  /// Receive from a one-sample-per-chip stream.
  RxResult11b receive(std::span<const dsp::Cplx> rx) const;

 private:
  Config cfg_;
};

}  // namespace wlansim::phy11b
