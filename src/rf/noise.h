// Noise sources: thermal (white) and flicker (1/f) noise generators.
//
// These are the behavioral equivalents of the Verilog-A white_noise /
// flicker_noise functions whose absence in the AMS Designer transient
// analysis the paper calls out in §4.3/§5.1.
#pragma once

#include "dsp/iir.h"
#include "dsp/rng.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

/// Additive white Gaussian noise with a one-sided density of `psd_w_per_hz`
/// watts/Hz over the complex bandwidth fs (total power = psd * fs).
class WhiteNoiseSource : public RfBlock {
 public:
  WhiteNoiseSource(double psd_w_per_hz, double sample_rate_hz, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  std::string name() const override { return "white_noise"; }

  /// Replace the noise generator (see Amplifier::set_rng).
  void set_rng(dsp::Rng rng) { rng_ = rng; }

  double total_power_watts() const { return power_; }

 private:
  double power_;
  dsp::Rng rng_;
  dsp::RVec scratch_;  ///< per-tile unit normals for the bulk fill
};

/// Additive 1/f (flicker) noise: white noise shaped by a cascade of
/// first-order sections approximating a -10 dB/decade slope between
/// `corner_low_hz` and `corner_high_hz`. `power_watts` is the total added
/// power integrated over that band.
class FlickerNoiseSource : public RfBlock {
 public:
  FlickerNoiseSource(double power_watts, double corner_low_hz,
                     double corner_high_hz, double sample_rate_hz,
                     dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return "flicker_noise"; }

  /// Replace the drive generator (the calibration in the constructor uses
  /// its own fixed-seed rng, so reset() + set_rng() makes a persistent
  /// source equivalent to a freshly constructed one).
  void set_rng(dsp::Rng rng) { rng_ = rng; }

  /// Lane path: per-lane drive draws + stage-outer lanes_biquad shaping.
  bool supports_lanes() const override { return true; }
  void begin_lanes(std::size_t nl) override;
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;
  /// Per-lane drive generator (see Amplifier::set_lane_rng).
  void set_lane_rng(std::size_t lane, dsp::Rng rng) { lane_rng_[lane] = rng; }
  /// Per-lane unit-normal tape (see Amplifier::set_lane_tape).
  void set_lane_tape(std::size_t lane, dsp::RVec* tape) {
    lane_tape_[lane] = tape;
  }

 private:
  double drive_sigma_;
  std::vector<dsp::Biquad> stages_;
  dsp::Rng rng_;
  dsp::CVec scratch_;   ///< per-tile noise stream for stage-outer shaping
  dsp::RVec rscratch_;  ///< per-tile unit normals for the bulk fill
  dsp::RVec w_soa_;     ///< lane path: per-tile SoA noise stream
  dsp::RVec lane_state_;  ///< per-stage s1/s2 rows (4*nl doubles each)
  std::vector<dsp::Rng> lane_rng_;
  std::vector<dsp::RVec*> lane_tape_;
  std::vector<std::size_t> lane_tape_pos_;
  std::vector<const double*> lane_units_;  ///< per-lane tile unit pointers
};

/// Slowly wandering complex offset: LO leakage reflecting off the moving
/// environment self-mixes into a baseband product that drifts within
/// `bandwidth_hz` of DC. At zero IF it lands inside the occupied signal
/// (no servo fast enough removes it without eating the signal); in the
/// paper's half-RF double conversion the same product appears between the
/// stages where the interstage high-pass kills it before it can reach the
/// baseband in-band.
class WanderingDcSource : public RfBlock {
 public:
  WanderingDcSource(double rms_amplitude, double bandwidth_hz,
                    double sample_rate_hz, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return "wandering_dc"; }

  /// Replace the rng and redo the construction-time draw of the initial
  /// walk state, so the source behaves exactly like a new one.
  void reseed(dsp::Rng rng);

 private:
  double rms_;
  double alpha_;       ///< one-pole smoothing factor
  double drive_std_;   ///< per-sample drive giving the target RMS
  dsp::Cplx state_{0.0, 0.0};
  dsp::Rng rng_;
  dsp::RVec scratch_;  ///< per-tile unit normals for the bulk fill
};

/// Static complex DC offset (e.g. LO self-mixing in the second mixer of
/// the double-conversion receiver).
class DcOffsetSource : public RfBlock {
 public:
  explicit DcOffsetSource(dsp::Cplx offset) : offset_(offset) {}

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  std::string name() const override { return "dc_offset"; }

  dsp::Cplx offset() const { return offset_; }

 private:
  dsp::Cplx offset_;
};

}  // namespace wlansim::rf
