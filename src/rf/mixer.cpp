#include "rf/mixer.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"

namespace wlansim::rf {

double PhaseNoiseSpec::linewidth_hz() const {
  if (!enabled()) return 0.0;
  return dsp::kPi * offset_hz * offset_hz * std::pow(10.0, level_dbc_hz / 10.0);
}

Mixer::Mixer(const MixerConfig& cfg, double sample_rate_hz, dsp::Rng rng)
    : cfg_(cfg), rng_(rng) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("Mixer: bad sample rate");
  gain_ = std::pow(10.0, cfg_.conversion_gain_db / 20.0);
  dphi_lo_ = dsp::kTwoPi * cfg_.lo_offset_hz / sample_rate_hz;

  // Wiener phase noise: variance per sample = 2 pi * linewidth / fs.
  const double lw = cfg_.phase_noise.linewidth_hz();
  pn_sigma_ = (cfg_.noise_enabled && lw > 0.0)
                  ? std::sqrt(dsp::kTwoPi * lw / sample_rate_hz)
                  : 0.0;

  image_amp_ = cfg_.image_rejection_db >= 200.0
                   ? 0.0
                   : std::pow(10.0, -cfg_.image_rejection_db / 20.0);
  iq_eps_ = std::pow(10.0, cfg_.iq_gain_imbalance_db / 20.0);
  iq_phi_ = cfg_.iq_phase_error_deg * dsp::kPi / 180.0;
}

dsp::CVec Mixer::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Mixer::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void Mixer::process_tile(std::span<const dsp::Cplx> in,
                         std::span<dsp::Cplx> out) {
  const std::size_t n = in.size();
  if (n == 0) return;

  dsp::kernels::MixParams p;
  p.gain = gain_;
  p.image_amp = image_amp_;
  p.iq_active = iq_eps_ != 1.0 || iq_phi_ != 0.0;
  p.iq_eps = iq_eps_;
  p.iq_sin = std::sin(iq_phi_);
  p.iq_cos = std::cos(iq_phi_);
  p.dc = cfg_.dc_offset;

  // With no LO offset and no phase noise the LO phasor is one constant for
  // the whole block (and no state advances), so the per-sample cos/sin —
  // the bulk of this block's cost in the default receiver chain, where the
  // phase is identically zero — collapses to a single evaluation.
  if (pn_sigma_ <= 0.0 && dphi_lo_ == 0.0 && lo_phase_ <= 64.0 * dsp::kPi) {
    const double phi = lo_phase_ + pn_phase_;
    const dsp::Cplx lo{std::cos(phi), std::sin(phi)};
    dsp::kernels::mix_const_lo(in.data(), n, lo, p, out.data());
    return;
  }

  // General case: fill the per-sample phase stream (the sequential part —
  // phase-noise draws and accumulator wrapping), then mix element-wise.
  phase_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pn_sigma_ > 0.0) pn_phase_ += rng_.gaussian(pn_sigma_);
    phase_scratch_[i] = lo_phase_ + pn_phase_;
    lo_phase_ += dphi_lo_;
    if (lo_phase_ > 64.0 * dsp::kPi) lo_phase_ = dsp::wrap_phase(lo_phase_);
    if (pn_phase_ > 64.0 * dsp::kPi || pn_phase_ < -64.0 * dsp::kPi)
      pn_phase_ = dsp::wrap_phase(pn_phase_);
  }
  dsp::kernels::mix_phase(in.data(), phase_scratch_.data(), n, p, out.data());
}

void Mixer::reset() {
  lo_phase_ = 0.0;
  pn_phase_ = 0.0;
}

void Mixer::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  // supports_lanes() pinned the unity-LO stateless case, so the per-lane
  // arithmetic is exactly the mix_unity_lo path of process_tile.
  dsp::kernels::MixParams p;
  p.gain = gain_;
  p.image_amp = image_amp_;
  p.iq_active = iq_eps_ != 1.0 || iq_phi_ != 0.0;
  p.iq_eps = iq_eps_;
  p.iq_sin = std::sin(iq_phi_);
  p.iq_cos = std::cos(iq_phi_);
  p.dc = cfg_.dc_offset;
  dsp::kernels::lanes_mix_unity_lo(soa, n, nl, p);
}

}  // namespace wlansim::rf
