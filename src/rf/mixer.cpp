#include "rf/mixer.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

double PhaseNoiseSpec::linewidth_hz() const {
  if (!enabled()) return 0.0;
  return dsp::kPi * offset_hz * offset_hz * std::pow(10.0, level_dbc_hz / 10.0);
}

Mixer::Mixer(const MixerConfig& cfg, double sample_rate_hz, dsp::Rng rng)
    : cfg_(cfg), rng_(rng) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("Mixer: bad sample rate");
  gain_ = std::pow(10.0, cfg_.conversion_gain_db / 20.0);
  dphi_lo_ = dsp::kTwoPi * cfg_.lo_offset_hz / sample_rate_hz;

  // Wiener phase noise: variance per sample = 2 pi * linewidth / fs.
  const double lw = cfg_.phase_noise.linewidth_hz();
  pn_sigma_ = (cfg_.noise_enabled && lw > 0.0)
                  ? std::sqrt(dsp::kTwoPi * lw / sample_rate_hz)
                  : 0.0;

  image_amp_ = cfg_.image_rejection_db >= 200.0
                   ? 0.0
                   : std::pow(10.0, -cfg_.image_rejection_db / 20.0);
  iq_eps_ = std::pow(10.0, cfg_.iq_gain_imbalance_db / 20.0);
  iq_phi_ = cfg_.iq_phase_error_deg * dsp::kPi / 180.0;
}

dsp::CVec Mixer::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Mixer::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (pn_sigma_ > 0.0) pn_phase_ += rng_.gaussian(pn_sigma_);
    const double phi = lo_phase_ + pn_phase_;
    const dsp::Cplx lo{std::cos(phi), std::sin(phi)};
    dsp::Cplx y = gain_ * in[i] * lo;

    // Finite image rejection folds a conjugate copy on top.
    if (image_amp_ > 0.0) y += image_amp_ * gain_ * std::conj(in[i] * lo);

    // IQ imbalance: distinct gain and quadrature phase on the Q rail.
    if (iq_eps_ != 1.0 || iq_phi_ != 0.0) {
      const double ii = y.real();
      const double qq = y.imag();
      y = dsp::Cplx{ii + qq * std::sin(iq_phi_) * iq_eps_,
                    qq * iq_eps_ * std::cos(iq_phi_)};
    }

    y += cfg_.dc_offset;
    out[i] = y;

    lo_phase_ += dphi_lo_;
    if (lo_phase_ > 64.0 * dsp::kPi) lo_phase_ = dsp::wrap_phase(lo_phase_);
    if (pn_phase_ > 64.0 * dsp::kPi || pn_phase_ < -64.0 * dsp::kPi)
      pn_phase_ = dsp::wrap_phase(pn_phase_);
  }
}

void Mixer::reset() {
  lo_phase_ = 0.0;
  pn_phase_ = 0.0;
}

}  // namespace wlansim::rf
