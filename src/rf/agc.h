// Automatic gain-controlled amplifier: a one-pole power detector drives a
// proportional logarithmic gain loop toward a target output power (the
// "BB Amp" of the paper's Fig. 2). The proportional loop converges without
// the limit cycle a fixed-step (bang-bang) loop exhibits, so the gain is
// quiet once settled and the constellation does not breathe.
#pragma once

#include "rf/rfblock.h"

namespace wlansim::rf {

struct AgcConfig {
  std::string label = "agc";
  double target_power_dbm = 0.0;
  double max_gain_db = 60.0;
  double min_gain_db = -20.0;
  /// Proportional loop gain: dB of gain correction per dB of detector
  /// error per sample. Stability requires loop_gain * detector_time_const
  /// comfortably below 1.
  double loop_gain = 0.005;
  /// Per-sample slew limits [dB]: attack = max gain reduction, decay = max
  /// gain increase.
  double attack_db_per_sample = 0.05;
  double decay_db_per_sample = 0.01;
  /// Power detector averaging constant (samples).
  double detector_time_const = 128.0;
  double initial_gain_db = 0.0;

  /// Auto-lock: once the detector error stays within `lock_window_db` for
  /// `lock_count` consecutive samples the gain freezes (real WLAN AGCs lock
  /// during the PLCP preamble so the constellation does not breathe); a
  /// level jump beyond `unlock_window_db` re-opens the loop. Set
  /// lock_count = 0 to disable.
  double lock_window_db = 1.5;
  std::size_t lock_count = 256;
  double unlock_window_db = 10.0;
};

class Agc : public RfBlock {
 public:
  explicit Agc(const AgcConfig& cfg);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return cfg_.label; }

  double current_gain_db() const;

  /// Manual freeze/unfreeze of the loop (in addition to auto-lock).
  void freeze(bool on) { frozen_ = on; }

  /// True once the loop has auto-locked on a settled level.
  bool locked() const { return locked_; }

  /// Lane path: the same per-sample loop, lanes-inner, with fully
  /// independent per-lane loop state initialized as reset() leaves the
  /// scalar block.
  bool supports_lanes() const override { return true; }
  void begin_lanes(std::size_t nl) override;
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

 private:
  struct LaneState {
    double gain_db;
    double det_power;
    double cached_gain_db;
    double cached_gain_lin;
    bool locked;
    std::size_t settled_run;
  };
  std::vector<LaneState> lanes_;

  AgcConfig cfg_;
  double gain_db_;
  double det_power_;  ///< smoothed power estimate [W]
  double alpha_;      ///< detector smoothing factor
  bool frozen_ = false;
  bool locked_ = false;
  std::size_t settled_run_ = 0;
  /// pow(10, gain_db_/20) memoized on gain_db_: once the loop locks (or a
  /// step lands on the slew clamp) the gain repeats for long runs and the
  /// per-sample pow() disappears. Keyed on NaN initially so the first
  /// sample always computes.
  double cached_gain_db_;
  double cached_gain_lin_ = 1.0;
  /// Slightly widened linear-domain [W] brackets of the unlock window:
  /// while det_power_ sits inside them the dB-domain unlock test cannot
  /// fire, so the locked steady state skips the per-sample log10; outside
  /// them the exact legacy comparison runs, preserving its boundary.
  double unlock_lo_w_;
  double unlock_hi_w_;
};

}  // namespace wlansim::rf
