#include "rf/rfblock.h"

#include <algorithm>

namespace wlansim::rf {

void RfBlock::process_tile(std::span<const dsp::Cplx> in,
                           std::span<dsp::Cplx> out) {
  const dsp::CVec tmp = process(in);
  std::copy(tmp.begin(), tmp.end(), out.begin());
}

dsp::CVec RfChain::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void RfChain::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void RfChain::process_tile(std::span<const dsp::Cplx> in,
                           std::span<dsp::Cplx> out) {
  exec_.run(raw_.data(), raw_.size(), in, out);
}

void RfChain::process_blockwise_into(std::span<const dsp::Cplx> in,
                                     dsp::CVec& out) {
  if (blocks_.empty()) {
    out.assign(in.begin(), in.end());
    return;
  }
  // Ping-pong between `out` and the member scratch buffer so each block
  // writes into a warm vector. Starting on `out` for odd cascades and on
  // the scratch for even ones makes the final block always land in `out`.
  dsp::CVec* dst = (blocks_.size() % 2 == 1) ? &out : &scratch_;
  dsp::CVec* alt = (blocks_.size() % 2 == 1) ? &scratch_ : &out;
  std::span<const dsp::Cplx> cur = in;
  for (auto& b : blocks_) {
    b->process_into(cur, *dst);
    cur = *dst;
    std::swap(dst, alt);
  }
}

void RfChain::reset() {
  for (auto& b : blocks_) b->reset();
}

}  // namespace wlansim::rf
