#include "rf/rfblock.h"

namespace wlansim::rf {

dsp::CVec RfChain::process(std::span<const dsp::Cplx> in) {
  dsp::CVec buf(in.begin(), in.end());
  for (auto& b : blocks_) {
    buf = b->process(buf);
  }
  return buf;
}

void RfChain::reset() {
  for (auto& b : blocks_) b->reset();
}

}  // namespace wlansim::rf
