#include "rf/rfblock.h"

#include <algorithm>
#include <cstdlib>

namespace wlansim::rf {

void RfBlock::process_tile(std::span<const dsp::Cplx> in,
                           std::span<dsp::Cplx> out) {
  const dsp::CVec tmp = process(in);
  std::copy(tmp.begin(), tmp.end(), out.begin());
}

dsp::CVec RfChain::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void RfChain::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void RfChain::process_tile(std::span<const dsp::Cplx> in,
                           std::span<dsp::Cplx> out) {
  exec_.run(raw_.data(), raw_.size(), in, out);
}

void RfChain::process_blockwise_into(std::span<const dsp::Cplx> in,
                                     dsp::CVec& out) {
  if (blocks_.empty()) {
    out.assign(in.begin(), in.end());
    return;
  }
  // Ping-pong between `out` and the member scratch buffer so each block
  // writes into a warm vector. Starting on `out` for odd cascades and on
  // the scratch for even ones makes the final block always land in `out`.
  dsp::CVec* dst = (blocks_.size() % 2 == 1) ? &out : &scratch_;
  dsp::CVec* alt = (blocks_.size() % 2 == 1) ? &scratch_ : &out;
  std::span<const dsp::Cplx> cur = in;
  for (auto& b : blocks_) {
    b->process_into(cur, *dst);
    cur = *dst;
    std::swap(dst, alt);
  }
}

void RfChain::reset() {
  for (auto& b : blocks_) b->reset();
}

void RfBlock::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  (void)soa;
  (void)n;
  (void)nl;
  // Reaching here means a caller ignored supports_lanes() == false.
  std::abort();
}

bool RfChain::supports_lanes() const {
  for (const RfBlock* b : raw_)
    if (!b->supports_lanes()) return false;
  return true;
}

void RfChain::begin_lanes(std::size_t nl) {
  for (RfBlock* b : raw_) b->begin_lanes(nl);
}

void RfChain::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  // Same fused schedule as ChainExecutor::run, shrunk so a tile of SoA
  // rows costs what a scalar tile costs (16*nl bytes per row): push one
  // tile through every block before the next tile. Per the tile-invariance
  // contract this is bit-identical per lane to whole-buffer execution.
  std::size_t tile = ChainExecutor::auto_tile_size() / (nl ? nl : 1);
  if (tile == 0) tile = 1;
  for (std::size_t off = 0; off < n; off += tile) {
    const std::size_t len = std::min(tile, n - off);
    double* rows = soa + off * 2 * nl;
    for (RfBlock* b : raw_) b->process_tile_lanes(rows, len, nl);
  }
}

}  // namespace wlansim::rf
