#include "rf/analyses.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"
#include "dsp/spectrum.h"

namespace wlansim::rf {

namespace {

/// Snap a frequency to an exact DFT bin of the analysis window so the
/// single-bin projection is leakage-free.
double snap_to_bin(double f_hz, double fs, std::size_t n) {
  const double bin = fs / static_cast<double>(n);
  return std::round(f_hz / bin) * bin;
}

dsp::CVec make_tone(std::size_t n, double f_norm, double power_w) {
  const double a = std::sqrt(power_w);
  dsp::CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = dsp::kTwoPi * f_norm * static_cast<double>(i);
    x[i] = a * dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  return x;
}

struct ToneRun {
  dsp::CVec settled;  ///< output with the settling prefix removed
};

ToneRun run_tones(RfBlock& dut, const ToneTestConfig& cfg,
                  std::initializer_list<std::pair<double, double>> tones) {
  // tones: {f_hz, power_w} pairs, all snapped to analysis bins.
  const std::size_t total = cfg.settle_samples + cfg.num_samples;
  dsp::CVec x(total, dsp::Cplx{0.0, 0.0});
  for (const auto& [f_hz, p_w] : tones) {
    const double fn = f_hz / cfg.sample_rate_hz;
    const dsp::CVec t = make_tone(total, fn, p_w);
    for (std::size_t i = 0; i < total; ++i) x[i] += t[i];
  }
  dut.reset();
  dsp::CVec y = dut.process(x);
  ToneRun out;
  out.settled.assign(y.begin() + static_cast<std::ptrdiff_t>(cfg.settle_samples),
                     y.end());
  return out;
}

}  // namespace

dsp::Cplx tone_amplitude(std::span<const dsp::Cplx> x, double f_norm) {
  if (x.empty()) throw std::invalid_argument("tone_amplitude: empty signal");
  dsp::Cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ang = -dsp::kTwoPi * f_norm * static_cast<double>(i);
    acc += x[i] * dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  return acc / static_cast<double>(x.size());
}

double tone_power(std::span<const dsp::Cplx> x, double f_norm) {
  return std::norm(tone_amplitude(x, f_norm));
}

double measure_gain_db(RfBlock& dut, const ToneTestConfig& cfg,
                       double input_dbm) {
  const double f = snap_to_bin(cfg.tone_hz, cfg.sample_rate_hz, cfg.num_samples);
  const double p_in = dsp::dbm_to_watts(input_dbm);
  const ToneRun run = run_tones(dut, cfg, {{f, p_in}});
  const double p_out = tone_power(run.settled, f / cfg.sample_rate_hz);
  return dsp::to_db(p_out / p_in);
}

double measure_p1db_in_dbm(RfBlock& dut, const ToneTestConfig& cfg,
                           double start_dbm, double stop_dbm, double step_db) {
  const double g0 = measure_gain_db(dut, cfg, start_dbm);
  for (double pin = start_dbm + step_db; pin <= stop_dbm; pin += step_db) {
    const double g = measure_gain_db(dut, cfg, pin);
    if (g <= g0 - 1.0) return pin;
  }
  return stop_dbm;  // never compressed within the sweep
}

double measure_iip3_dbm(RfBlock& dut, const ToneTestConfig& cfg,
                        double input_dbm) {
  const double f1 = snap_to_bin(cfg.tone_hz, cfg.sample_rate_hz, cfg.num_samples);
  const double f2 =
      snap_to_bin(cfg.tone2_hz, cfg.sample_rate_hz, cfg.num_samples);
  if (f1 == f2) throw std::invalid_argument("measure_iip3: tones coincide");
  const double p_in = dsp::dbm_to_watts(input_dbm);
  const ToneRun run = run_tones(dut, cfg, {{f1, p_in}, {f2, p_in}});
  const double fs = cfg.sample_rate_hz;
  const double p_fund = tone_power(run.settled, f1 / fs);
  const double im3_hz = 2.0 * f1 - f2;  // lower IM3 product
  const double p_im3 = tone_power(run.settled, im3_hz / fs);
  if (p_im3 <= 0.0) return 100.0;  // unmeasurably linear
  const double delta_db = dsp::to_db(p_fund / p_im3);
  return input_dbm + delta_db / 2.0;
}

double measure_noise_figure_db(RfBlock& dut, const ToneTestConfig& cfg) {
  // Small-signal gain well below compression, measured at the test tone.
  const double gain_db = measure_gain_db(dut, cfg, -60.0);
  const double gain = dsp::from_db(gain_db);

  dut.reset();
  dsp::CVec zeros(cfg.settle_samples + cfg.num_samples, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = dut.process(zeros);
  const std::span<const dsp::Cplx> settled(y.data() + cfg.settle_samples,
                                           cfg.num_samples);

  // Spot noise measured in a band around the tone frequency — a chain with
  // a channel-select filter removes most wideband noise before the output,
  // so comparing total powers would understate its in-band noise figure.
  const double band_hz = std::min(2e6, cfg.sample_rate_hz / 16.0);
  dsp::WelchConfig wc;
  wc.nfft = 1024;
  const dsp::PsdEstimate psd = welch_psd(settled, wc);
  const double n_out =
      psd.band_power(cfg.tone_hz / cfg.sample_rate_hz, band_hz / cfg.sample_rate_hz);

  const double n_in = dsp::kBoltzmann * dsp::kT0 * band_hz;
  // F = 1 + Nadded/(G k T0 B); our sources model only the added part, so
  // the in-band output noise is G * kT0B * (F - 1).
  const double f = 1.0 + n_out / (gain * n_in);
  return dsp::to_db(f);
}

double measure_rejection_db(RfBlock& dut, const ToneTestConfig& cfg,
                            double pass_hz, double reject_hz,
                            double input_dbm) {
  const double fs = cfg.sample_rate_hz;
  const double fp = snap_to_bin(pass_hz, fs, cfg.num_samples);
  const double fr = snap_to_bin(reject_hz, fs, cfg.num_samples);
  const double p_in = dsp::dbm_to_watts(input_dbm);
  const ToneRun run = run_tones(dut, cfg, {{fp, p_in}, {fr, p_in}});
  const double pp = tone_power(run.settled, fp / fs);
  const double pr = tone_power(run.settled, fr / fs);
  if (pr <= 0.0) return 200.0;
  return dsp::to_db(pp / pr);
}

}  // namespace wlansim::rf
