// ADC model: full-scale clipping and uniform quantization on each rail
// (the boundary between the paper's analog RF subsystem and the DSP part,
// Fig. 1 "RF Rx -> ADC").
#pragma once

#include "rf/rfblock.h"

namespace wlansim::rf {

struct AdcConfig {
  std::string label = "adc";
  std::size_t bits = 10;
  /// Full-scale amplitude per rail [sqrt(W)]; inputs beyond clip.
  double full_scale = 1.0;
  bool enabled = true;  ///< false = transparent (ideal infinite-resolution)
};

class Adc : public RfBlock {
 public:
  explicit Adc(const AdcConfig& cfg);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  std::string name() const override { return cfg_.label; }

  /// Quantize one rail value.
  double quantize(double v) const;

  /// Lane path: quantize_clamp is element-wise per rail, so the SoA buffer
  /// quantizes as n*nl contiguous complex samples.
  bool supports_lanes() const override { return true; }
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

  const AdcConfig& config() const { return cfg_; }

 private:
  AdcConfig cfg_;
  double step_;
  double inv_step_;  ///< 1/step_: the hot loop multiplies instead of divides
};

}  // namespace wlansim::rf
