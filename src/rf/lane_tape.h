// Per-lane unit-normal record/replay for the width-W packet-lane path.
//
// The noisy front-end blocks (Amplifier thermal noise, FlickerNoiseSource)
// draw signal-independent unit normals whose count depends only on the
// buffer length. For a memoized packet those draws are identical on every
// replay — the per-packet front-end rng is forked from the scene's saved
// post-TX rng, so its seed is a pure function of the packet index. A lane
// tape caches the draws in the TxScene: the first traversal records them,
// later traversals (other sweep points, same packet) copy instead of
// re-deriving gaussians. Replay is bit-identical by construction because
// the tape holds the exact doubles the rng produced.
#pragma once

#include <cstddef>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace wlansim::rf {

/// Return `need` unit normals for one lane tile: replayed from `tape` when
/// it already holds them at `pos`, otherwise drawn from `rng` into
/// `scratch` (and appended to the tape when extending it in order — any
/// out-of-phase tape is left untouched and the draw stands on its own).
/// Advances `pos` past the samples consumed or recorded.
inline const double* lane_tape_units(dsp::RVec* tape, std::size_t& pos,
                                     dsp::Rng& rng, dsp::RVec& scratch,
                                     std::size_t need) {
  if (tape != nullptr && pos + need <= tape->size()) {
    const double* u = tape->data() + pos;
    pos += need;
    return u;
  }
  scratch.resize(need);
  rng.fill_gaussian(scratch.data(), need);
  if (tape != nullptr && pos == tape->size()) {
    tape->insert(tape->end(), scratch.begin(), scratch.end());
    pos += need;
  }
  return scratch.data();
}

/// Segment form of lane_tape_units: a fresh draw lands in caller-provided
/// `seg` (`need` doubles) instead of a private scratch vector, so a tile
/// can keep every lane's units alive at once for the fused multi-lane
/// kernels. Same record/replay contract and the same rng consumption.
inline const double* lane_tape_units_into(dsp::RVec* tape, std::size_t& pos,
                                          dsp::Rng& rng, double* seg,
                                          std::size_t need) {
  if (tape != nullptr && pos + need <= tape->size()) {
    const double* u = tape->data() + pos;
    pos += need;
    return u;
  }
  rng.fill_gaussian(seg, need);
  if (tape != nullptr && pos == tape->size()) {
    tape->insert(tape->end(), seg, seg + need);
    pos += need;
  }
  return seg;
}

}  // namespace wlansim::rf
