#include "rf/direct_conversion.h"

#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

DirectConversionReceiver::DirectConversionReceiver(
    const DirectConversionConfig& cfg, dsp::Rng rng)
    : cfg_(cfg) {
  const double fs = cfg_.sample_rate_hz;
  if (fs <= 0.0)
    throw std::invalid_argument("DirectConversionReceiver: bad sample rate");

  AmplifierConfig lna;
  lna.label = "zif_lna";
  lna.gain_db = cfg_.lna_gain_db;
  lna.noise_figure_db = cfg_.lna_nf_db;
  lna.p1db_in_dbm = cfg_.lna_p1db_in_dbm;
  lna.model = cfg_.lna_model;
  lna.noise_enabled = cfg_.noise_enabled;
  chain_.emplace<Amplifier>(lna, fs, rng.fork());

  MixerConfig mix;
  mix.label = "zif_mixer";
  mix.conversion_gain_db = cfg_.mixer_gain_db;
  mix.lo_offset_hz = cfg_.lo_offset_hz;
  mix.phase_noise = cfg_.lo_phase_noise;
  mix.dc_offset = cfg_.dc_offset;  // lands at the channel center
  mix.iq_gain_imbalance_db = cfg_.iq_gain_imbalance_db;
  mix.iq_phase_error_deg = cfg_.iq_phase_error_deg;
  mix.noise_enabled = cfg_.noise_enabled;
  chain_.emplace<Mixer>(mix, fs, rng.fork());

  if (cfg_.dynamic_dc_rms > 0.0) {
    chain_.emplace<WanderingDcSource>(cfg_.dynamic_dc_rms,
                                      cfg_.dynamic_dc_bandwidth_hz, fs,
                                      rng.fork());
  }

  if (cfg_.noise_enabled && cfg_.flicker_power_dbm > -150.0) {
    chain_.emplace<FlickerNoiseSource>(
        dsp::dbm_to_watts(cfg_.flicker_power_dbm),
        /*corner_low_hz=*/1e3, cfg_.flicker_corner_hz, fs, rng.fork());
  }

  if (cfg_.dc_servo_cutoff_hz > 0.0) {
    chain_.emplace<DcBlockHighpass>(1, cfg_.dc_servo_cutoff_hz, fs,
                                    "dc_servo");
  }

  chain_.emplace<ChebyshevLowpass>(cfg_.bb_filter_order,
                                   cfg_.bb_filter_ripple_db,
                                   cfg_.bb_filter_edge_hz, fs, "zif_lpf");
  chain_.emplace<Agc>(cfg_.agc);
  chain_.emplace<Adc>(cfg_.adc);
}

dsp::CVec DirectConversionReceiver::process(std::span<const dsp::Cplx> in) {
  return chain_.process(in);
}

}  // namespace wlansim::rf
