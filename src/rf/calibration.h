// Behavioral-model calibration — the design-flow step the paper lists as
// "Verification of the circuit designs in the RF subsystem model.
// Calibration of the behavioral models." (§4).
//
// Given a golden reference block (in the paper: the circuit-level design;
// here: any RfBlock, e.g. a richer model or measured data), fit an
// Amplifier's behavioral parameters (gain, P1dB, noise figure) so the
// behavioral model reproduces the reference's measured characteristics.
#pragma once

#include "rf/amplifier.h"
#include "rf/analyses.h"

namespace wlansim::rf {

struct CalibrationResult {
  AmplifierConfig fitted;       ///< behavioral parameters after calibration
  double gain_error_db = 0.0;   ///< residual |gain difference|
  double p1db_error_db = 0.0;   ///< residual |P1dB difference|
  double nf_error_db = 0.0;     ///< residual |NF difference|
};

struct CalibrationConfig {
  ToneTestConfig tones{};
  /// Sweep bounds for the P1dB search on the reference.
  double p1db_search_start_dbm = -60.0;
  double p1db_search_stop_dbm = 10.0;
  bool calibrate_noise = true;
};

/// Measure `reference` (gain, P1dB, NF) and return an AmplifierConfig that
/// reproduces those numbers with the given nonlinearity model; the result
/// reports residual errors re-measured on the fitted behavioral model.
CalibrationResult calibrate_amplifier(RfBlock& reference,
                                      const CalibrationConfig& cfg,
                                      NonlinearityModel model,
                                      dsp::Rng rng);

}  // namespace wlansim::rf
