// Fused, cache-blocked execution of a serial RF block cascade.
//
// Block-at-a-time execution streams the whole oversampled buffer through
// every block in turn: N samples x B blocks of memory traffic, with each
// intermediate buffer evicted from cache before the next block reads it
// back. The executor instead pushes one L1-sized tile through the *entire*
// cascade before moving to the next tile, so each sample is loaded once
// and every intermediate value stays in two hot ping-pong tiles.
//
// Bit-exactness contract: every RfBlock's process_tile() must depend only
// on carried state plus the input samples in order (no per-call resets, no
// whole-buffer reductions). Under that contract, processing a buffer in
// consecutive tiles of any size is bit-identical to one whole-buffer call,
// and therefore fused execution is bit-identical to block-at-a-time
// execution — tests/rf/test_chain_executor.cpp asserts exact equality
// across tile sizes, including non-divisor tiles.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace wlansim::rf {

class RfBlock;

class ChainExecutor {
 public:
  /// `tile_size` in samples; 0 = auto (see auto_tile_size()).
  explicit ChainExecutor(std::size_t tile_size = 0) : tile_(tile_size) {}

  std::size_t tile_size() const { return tile_; }
  void set_tile_size(std::size_t t) { tile_ = t; }

  /// The tile actually used when tile_size() == 0: the two ping-pong tiles
  /// of T complex<double> samples cost 32*T bytes, and T = 1024 keeps that
  /// 32 KiB working set inside a typical 32-48 KiB L1d with room for block
  /// state (biquad registers, AGC loop, RNG). Overridable at runtime via
  /// the WLANSIM_RF_TILE environment variable (samples, parsed once).
  static std::size_t auto_tile_size();

  std::size_t effective_tile_size() const {
    return tile_ != 0 ? tile_ : auto_tile_size();
  }

  /// Run `in` through blocks[0..nblocks) tile by tile. `out` must be
  /// pre-sized to in.size(); it may alias `in` (each tile's reads complete
  /// before its region of `out` is written).
  void run(RfBlock* const* blocks, std::size_t nblocks,
           std::span<const dsp::Cplx> in, std::span<dsp::Cplx> out);

 private:
  std::size_t tile_ = 0;
  dsp::CVec tile_a_, tile_b_;  // ping-pong intermediates, warm across calls
};

}  // namespace wlansim::rf
