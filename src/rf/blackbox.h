// Black-box ("J&K / K-model") extraction of a complete RF subsystem —
// the paper's alternative integration path (§4: "Extraction of a black-box
// model of the complete RF subsystem in SpectreRF simulation which can be
// instantiated in SPW (J&K models)", after Moult & Chen [6]).
//
// The extractor characterizes any RfBlock with tone sweeps:
//   * complex small-signal frequency response H(f) over the band,
//   * static AM/AM and AM/PM envelope transfer at a reference frequency,
//   * output noise power (equivalent white source).
// The extracted BlackBoxModel replays that behavior as
//   y = NL(|x|) * exp(j arg_nl(|x|)) filtered by H(f) + noise,
// i.e. a Hammerstein (static nonlinearity -> linear filter) surrogate.
// It is far cheaper than evaluating the full chain and is accurate in
// exactly the regime the J&K models target: a settled, weakly nonlinear
// front-end.
#pragma once

#include <memory>

#include "dsp/fir.h"
#include "dsp/rng.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

/// Extraction settings.
struct ExtractionConfig {
  double sample_rate_hz = 80e6;
  /// The frequency response is sampled on a uniform grid of `fir_taps`
  /// tones across the whole complex band [-fs/2, fs/2) so the fitted FIR
  /// interpolates it exactly (frequency-sampling design). The grid must be
  /// dense enough for the DUT's sharpest feature (the channel filter edge);
  /// 61 taps at 80 Msps gives ~1.3 MHz spacing.
  std::size_t fir_taps = 61;
  /// Envelope sweep for AM/AM / AM/PM, in dBm at the input.
  double env_start_dbm = -70.0;
  double env_stop_dbm = -10.0;
  std::size_t num_env_points = 25;
  /// Reference frequency for the envelope sweep (inside the passband, away
  /// from the DC notch).
  double env_ref_hz = 2e6;
  /// Drive level for the frequency-response sweep (well below compression).
  double smallsig_dbm = -60.0;
  std::size_t tone_samples = 4096;
  std::size_t settle_samples = 4096;
};

/// The extracted characterization data (inspectable / serializable).
struct BlackBoxData {
  double sample_rate_hz = 0.0;
  /// Sampled small-signal response: freq_hz[i] -> h[i].
  std::vector<double> freq_hz;
  dsp::CVec h;
  /// Envelope transfer at band center: input amplitude -> output amplitude
  /// (through the *normalized* filter) and phase shift.
  std::vector<double> env_in;   ///< input envelope [sqrt(W)]
  std::vector<double> env_out;  ///< output envelope [sqrt(W)]
  std::vector<double> env_phase;  ///< AM/PM [rad]
  /// Equivalent output-referred white noise power [W].
  double noise_power = 0.0;
};

/// Characterize `dut` (resets it repeatedly).
BlackBoxData extract_blackbox(RfBlock& dut, const ExtractionConfig& cfg);

/// Replayable surrogate built from extracted data.
class BlackBoxModel : public RfBlock {
 public:
  BlackBoxModel(BlackBoxData data, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return "blackbox"; }

  const BlackBoxData& data() const { return data_; }

  /// Static envelope gain (|out|/|in|) at input envelope `a` —
  /// interpolated from the extracted AM/AM table.
  double am_am_gain(double a) const;

  /// Static phase shift at input envelope `a` [rad].
  double am_pm(double a) const;

 private:
  /// One table walk yielding both the AM/AM gain and the AM/PM shift at
  /// envelope `a` (am_am_gain and am_pm each repeat the same binary
  /// search; the replay loop needs both per sample).
  void nl_gain_phase(double a, double* g, double* phi) const;

  BlackBoxData data_;
  dsp::CFirFilter filter_;  ///< normalized linear part H(f)/H(f_ref)
  double noise_sqrt_ = 0.0;
  dsp::Rng rng_;
};

/// Frequency-sampling FIR fit: `h` sampled on the uniform grid
/// f_k = (k - (T-1)/2) / T of normalized frequency (T = h.size()); the
/// bulk group delay is re-centered to (T-1)/2 taps before inversion.
/// Exposed for tests.
dsp::CVec fit_complex_fir(const dsp::CVec& h);

}  // namespace wlansim::rf
