#include "rf/noise.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"
#include "rf/lane_tape.h"

namespace wlansim::rf {

WhiteNoiseSource::WhiteNoiseSource(double psd_w_per_hz, double sample_rate_hz,
                                   dsp::Rng rng)
    : power_(psd_w_per_hz * sample_rate_hz), rng_(rng) {
  if (psd_w_per_hz < 0.0 || sample_rate_hz <= 0.0)
    throw std::invalid_argument("WhiteNoiseSource: bad parameters");
}

dsp::CVec WhiteNoiseSource::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void WhiteNoiseSource::process_into(std::span<const dsp::Cplx> in,
                                    dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void WhiteNoiseSource::process_tile(std::span<const dsp::Cplx> in,
                                    std::span<dsp::Cplx> out) {
  if (out.data() != in.data())
    std::copy(in.begin(), in.end(), out.begin());
  if (power_ > 0.0) {
    // Bulk form of v += cgaussian(p): same stream, same arithmetic
    // (cgaussian evaluates s*u per rail with s = sqrt(p/2)).
    scratch_.resize(2 * out.size());
    rng_.fill_gaussian(scratch_.data(), scratch_.size());
    const double s = std::sqrt(power_ / 2.0);
    dsp::kernels::add_scaled_pairs(out.data(), out.size(), s,
                                   scratch_.data());
  }
}

namespace {

/// Build log-spaced pole/zero first-order sections approximating a
/// -10 dB/decade magnitude slope between f_lo and f_hi.
std::vector<dsp::Biquad> pink_sections(double f_lo, double f_hi, double fs) {
  if (f_lo <= 0.0 || f_hi <= f_lo || f_hi >= fs / 2.0)
    throw std::invalid_argument("FlickerNoiseSource: bad corner frequencies");
  const double decades = std::log10(f_hi / f_lo);
  const std::size_t stages =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(decades)));
  const double ratio = std::pow(f_hi / f_lo, 1.0 / static_cast<double>(stages));

  std::vector<dsp::Biquad> out;
  double fp = f_lo;
  for (std::size_t k = 0; k < stages; ++k) {
    const double fz = fp * std::sqrt(ratio);  // zero half a stage above pole
    dsp::Biquad s;
    const double p = std::exp(-dsp::kTwoPi * fp / fs);
    const double z = std::exp(-dsp::kTwoPi * fz / fs);
    s.b0 = 1.0;
    s.b1 = -z;
    s.b2 = 0.0;
    s.a1 = -p;
    s.a2 = 0.0;
    out.push_back(s);
    fp *= ratio;
  }
  // Band-limit above the upper corner: without this the shelf cascade is
  // flat from f_hi to Nyquist and the broadband floor, integrated over
  // tens of MHz, would dominate the "flicker" power. One RBJ biquad
  // (2nd-order Butterworth lowpass at f_hi) suffices.
  {
    const double w0 = dsp::kTwoPi * f_hi / fs;
    const double q = 1.0 / std::sqrt(2.0);
    const double alpha = std::sin(w0) / (2.0 * q);
    const double cosw = std::cos(w0);
    const double a0 = 1.0 + alpha;
    dsp::Biquad s;
    s.b0 = (1.0 - cosw) / 2.0 / a0;
    s.b1 = (1.0 - cosw) / a0;
    s.b2 = s.b0;
    s.a1 = -2.0 * cosw / a0;
    s.a2 = (1.0 - alpha) / a0;
    out.push_back(s);
  }
  return out;
}

}  // namespace

FlickerNoiseSource::FlickerNoiseSource(double power_watts, double corner_low_hz,
                                       double corner_high_hz,
                                       double sample_rate_hz, dsp::Rng rng)
    : drive_sigma_(0.0),
      stages_(pink_sections(corner_low_hz, corner_high_hz, sample_rate_hz)),
      rng_(rng) {
  if (power_watts < 0.0)
    throw std::invalid_argument("FlickerNoiseSource: negative power");
  if (power_watts == 0.0) return;

  // Calibrate the drive level empirically: run unit-variance noise through
  // a copy of the shaping cascade and measure the output power.
  std::vector<dsp::Biquad> probe = stages_;
  dsp::Rng cal(12345);
  double acc = 0.0;
  const std::size_t n = 1 << 15;
  for (std::size_t i = 0; i < n; ++i) {
    dsp::Cplx v = cal.cgaussian(1.0);
    for (auto& s : probe) v = s.step(v);
    if (i >= n / 4) acc += std::norm(v);  // skip the settling transient
  }
  const double measured = acc / static_cast<double>(n - n / 4);
  drive_sigma_ = std::sqrt(power_watts / measured);
}

dsp::CVec FlickerNoiseSource::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void FlickerNoiseSource::process_into(std::span<const dsp::Cplx> in,
                                      dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void FlickerNoiseSource::process_tile(std::span<const dsp::Cplx> in,
                                      std::span<dsp::Cplx> out) {
  if (out.data() != in.data())
    std::copy(in.begin(), in.end(), out.begin());
  if (drive_sigma_ <= 0.0) return;
  // Stage-outer shaping (the BiquadCascade::process_into argument): draw
  // the whole tile's noise stream first (the rng-ordered sequential part),
  // then stream each section over it with its state in registers. Every
  // sample still traverses the sections in order with the same recurrence,
  // so the values are identical to the sample-inner step() form.
  const std::size_t n = in.size();
  scratch_.resize(n);
  dsp::Cplx* w = scratch_.data();
  // cgaussian(1.0) * drive_sigma_ decomposes to (s0*u) * drive per rail
  // with s0 = sqrt(1/2); drawing the normals in bulk and applying the
  // same two multiplies in the same order reproduces it exactly.
  rscratch_.resize(2 * n);
  rng_.fill_gaussian(rscratch_.data(), rscratch_.size());
  const double s0 = std::sqrt(1.0 / 2.0);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = dsp::Cplx{s0 * rscratch_[2 * i], s0 * rscratch_[2 * i + 1]} *
           drive_sigma_;
  for (auto& s : stages_) {
    const double b0 = s.b0, b1 = s.b1, b2 = s.b2, a1 = s.a1, a2 = s.a2;
    dsp::Cplx s1 = s.s1, s2 = s.s2;
    for (std::size_t i = 0; i < n; ++i) {
      const dsp::Cplx x = w[i];
      const dsp::Cplx y = b0 * x + s1;
      s1 = b1 * x - a1 * y + s2;
      s2 = b2 * x - a2 * y;
      w[i] = y;
    }
    s.s1 = s1;
    s.s2 = s2;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] += w[i];
}

void FlickerNoiseSource::reset() {
  for (auto& s : stages_) s.reset();
}

void FlickerNoiseSource::begin_lanes(std::size_t nl) {
  lane_rng_.assign(nl, dsp::Rng{});
  lane_tape_.assign(nl, nullptr);
  lane_tape_pos_.assign(nl, 0);
  lane_state_.assign(stages_.size() * 4 * nl, 0.0);
}

void FlickerNoiseSource::process_tile_lanes(double* soa, std::size_t n,
                                            std::size_t nl) {
  if (drive_sigma_ <= 0.0) return;
  // The lane form of process_tile: per lane the same 2n drive normals (or
  // their taped recording) and the same (s0*u)*drive rails, then the
  // shaping cascade stage-outer over all 2*nl rails, then out += w.
  w_soa_.resize(2 * n * nl);
  const double s0 = std::sqrt(1.0 / 2.0);
  rscratch_.resize(2 * n * nl);
  lane_units_.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    lane_units_[l] =
        lane_tape_units_into(lane_tape_[l], lane_tape_pos_[l], lane_rng_[l],
                             rscratch_.data() + l * 2 * n, 2 * n);
  }
  dsp::kernels::lanes_write_scaled_pairs_multi(w_soa_.data(), n, nl, s0,
                                               drive_sigma_,
                                               lane_units_.data());
  double* st = lane_state_.data();
  for (const dsp::Biquad& s : stages_) {
    dsp::kernels::lanes_biquad(w_soa_.data(), n, nl, s.b0, s.b1, s.b2, s.a1,
                               s.a2, st);
    st += 4 * nl;
  }
  dsp::kernels::lanes_add(soa, w_soa_.data(), 2 * n * nl);
}

WanderingDcSource::WanderingDcSource(double rms_amplitude, double bandwidth_hz,
                                     double sample_rate_hz, dsp::Rng rng)
    : rms_(rms_amplitude), rng_(rng) {
  if (rms_amplitude < 0.0 || bandwidth_hz <= 0.0 || sample_rate_hz <= 0.0 ||
      bandwidth_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("WanderingDcSource: bad parameters");
  alpha_ = 1.0 - std::exp(-dsp::kTwoPi * bandwidth_hz / sample_rate_hz);
  // One-pole AR(1): var_state = drive^2 * alpha / (2 - alpha) per rail.
  const double var_per_rail = rms_ * rms_ / 2.0;
  drive_std_ = std::sqrt(var_per_rail * (2.0 - alpha_) / alpha_);
  // Start the walk at a random point of its stationary distribution so
  // short runs are representative.
  state_ = {rng_.gaussian(std::sqrt(var_per_rail)),
            rng_.gaussian(std::sqrt(var_per_rail))};
}

dsp::CVec WanderingDcSource::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void WanderingDcSource::process_into(std::span<const dsp::Cplx> in,
                                     dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void WanderingDcSource::process_tile(std::span<const dsp::Cplx> in,
                                     std::span<dsp::Cplx> out) {
  if (out.data() != in.data())
    std::copy(in.begin(), in.end(), out.begin());
  if (rms_ <= 0.0) return;
  // The AR(1) recurrence is inherently sequential, but the two gaussian
  // draws per sample are not: fill them in bulk (gaussian(sigma) is
  // sigma*u, reproduced below) and keep only the recurrence in the loop.
  const std::size_t n = out.size();
  scratch_.resize(2 * n);
  rng_.fill_gaussian(scratch_.data(), scratch_.size());
  dsp::Cplx state = state_;
  for (std::size_t i = 0; i < n; ++i) {
    state += alpha_ * (dsp::Cplx{drive_std_ * scratch_[2 * i],
                                 drive_std_ * scratch_[2 * i + 1]} -
                       state);
    out[i] += state;
  }
  state_ = state;
}

void WanderingDcSource::reset() { state_ = dsp::Cplx{0.0, 0.0}; }

void WanderingDcSource::reseed(dsp::Rng rng) {
  rng_ = rng;
  // Same draw a fresh construction performs.
  const double var_per_rail = rms_ * rms_ / 2.0;
  state_ = {rng_.gaussian(std::sqrt(var_per_rail)),
            rng_.gaussian(std::sqrt(var_per_rail))};
}

dsp::CVec DcOffsetSource::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void DcOffsetSource::process_into(std::span<const dsp::Cplx> in,
                                  dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void DcOffsetSource::process_tile(std::span<const dsp::Cplx> in,
                                  std::span<dsp::Cplx> out) {
  if (out.data() != in.data())
    std::copy(in.begin(), in.end(), out.begin());
  for (auto& v : out) v += offset_;
}

}  // namespace wlansim::rf
