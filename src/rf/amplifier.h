// Behavioral amplifier: gain, thermal noise (noise figure), and a
// memoryless envelope nonlinearity (Rapp SSPA or clipped-cubic) with
// optional AM/PM conversion.
//
// This is the model whose compression point the paper sweeps in Fig. 6
// ("ratio between compression point and BER with and without adjacent
// channel") and whose IP3 it examines in §4.1.
#pragma once

#include "dsp/rng.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

enum class NonlinearityModel {
  kLinear,       ///< no compression (ideal)
  kRapp,         ///< smooth saturating SSPA model
  kClippedCubic  ///< third-order polynomial, hard-limited at saturation
};

struct AmplifierConfig {
  std::string label = "amp";
  double gain_db = 20.0;
  double noise_figure_db = 0.0;      ///< 0 = noiseless
  NonlinearityModel model = NonlinearityModel::kRapp;
  /// Input-referred 1 dB compression point [dBm]; ignored for kLinear.
  double p1db_in_dbm = -20.0;
  double rapp_smoothness = 2.0;      ///< Rapp "p" parameter
  /// AM/PM conversion: maximum phase deviation approached in saturation
  /// [degrees]; 0 disables. (The paper notes SpectreRF models include
  /// AM/PM while SPW models need extra blocks — §6.)
  double am_pm_max_deg = 0.0;
  bool noise_enabled = true;         ///< master switch (AMS noise gap, §5.1)
};

class Amplifier : public RfBlock {
 public:
  Amplifier(const AmplifierConfig& cfg, double sample_rate_hz, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  std::string name() const override { return cfg_.label; }

  /// Replace the noise generator — with the rng a fresh construction would
  /// receive, this makes a persistent block equivalent to a new one.
  void set_rng(dsp::Rng rng) { rng_ = rng; }

  /// Lane path: the element-wise envelope models (Rapp p == 2 or linear,
  /// no AM/PM) plus the per-lane noise draws.
  bool supports_lanes() const override {
    return cfg_.am_pm_max_deg == 0.0 &&
           ((cfg_.model == NonlinearityModel::kRapp && rapp_is_p2_) ||
            cfg_.model == NonlinearityModel::kLinear);
  }
  void begin_lanes(std::size_t nl) override;
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

  /// Per-lane noise generator — the rng a fresh scalar block would receive
  /// for that lane's packet. Call after begin_lanes().
  void set_lane_rng(std::size_t lane, dsp::Rng rng) { lane_rng_[lane] = rng; }

  /// Optional per-lane unit-normal tape: when the tape already holds this
  /// packet's draws they are replayed instead of regenerated (bit-identical
  /// by construction — the tape was recorded from the same lane rng); when
  /// it is being extended in order, fresh draws are appended. Pass nullptr
  /// (the default after begin_lanes) to always draw.
  void set_lane_tape(std::size_t lane, dsp::RVec* tape) {
    lane_tape_[lane] = tape;
  }

  /// Instantaneous output envelope for input envelope `a` (volts); exposes
  /// the static AM/AM curve for characterization tests.
  double am_am(double a) const;

  /// Static AM/PM phase shift [radians] at input envelope `a`.
  double am_pm(double a) const;

  const AmplifierConfig& config() const { return cfg_; }

  /// Derived input-referred IIP3 estimate [dBm] for the cubic model
  /// (classic 9.6 dB above P1dB); meaningful for kClippedCubic.
  double iip3_dbm() const { return cfg_.p1db_in_dbm + 9.6; }

 private:
  /// Envelope gain (am_am(a)/a) computed from |x|^2, avoiding the per-sample
  /// sqrt of |x|: the Rapp curve only needs the envelope squared, and for
  /// the default smoothness p == 2 the two pow() calls collapse to two
  /// sqrt() (g / (1 + (g^2 n2 / Vsat^2)^2)^(1/4)).
  double rapp_gain_from_norm(double n2) const;

  AmplifierConfig cfg_;
  double lin_gain_;       ///< voltage gain
  double a1db_;           ///< input envelope at the compression point
  double vsat_rapp_;      ///< Rapp saturation parameter
  double lin_gain2_;      ///< lin_gain_^2 (hot-loop constant)
  double inv_vsat2_;      ///< 1 / vsat_rapp_^2
  double inv_2p_;         ///< 1 / (2 * rapp_smoothness)
  bool rapp_is_p2_;       ///< smoothness == 2: sqrt-only fast curve
  double cubic_a3_;       ///< cubic coefficient (envelope domain)
  double clip_in_;        ///< cubic model: input clip level
  double noise_power_;    ///< input-referred added noise power [W]
  dsp::Rng rng_;
  dsp::RVec noise_scratch_;  ///< per-tile unit normals for the bulk fill
  std::vector<dsp::Rng> lane_rng_;
  std::vector<dsp::RVec*> lane_tape_;
  std::vector<std::size_t> lane_tape_pos_;
  std::vector<const double*> lane_units_;  ///< per-lane tile unit pointers
};

}  // namespace wlansim::rf
