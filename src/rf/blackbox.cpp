#include "rf/blackbox.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"
#include "rf/analyses.h"

namespace wlansim::rf {

namespace {

/// Run one tone through the DUT (after reset) and return the complex gain.
dsp::Cplx tone_gain(RfBlock& dut, double f_norm, double amp,
                    std::size_t settle, std::size_t n) {
  const std::size_t total = settle + n;
  dsp::CVec x(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double ang = dsp::kTwoPi * f_norm * static_cast<double>(i);
    x[i] = amp * dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  dut.reset();
  const dsp::CVec y = dut.process(x);
  const std::span<const dsp::Cplx> settled(y.data() + settle, n);
  // Projection carries the phase of the settled window start: the input
  // tone at the window start has phase 2*pi*f*settle, divide it out.
  const dsp::Cplx out = tone_amplitude(settled, f_norm);
  const double ang0 = dsp::kTwoPi * f_norm * static_cast<double>(settle);
  const dsp::Cplx in0 = amp * dsp::Cplx{std::cos(ang0), std::sin(ang0)};
  return out / in0;
}

}  // namespace

dsp::CVec fit_complex_fir(const dsp::CVec& h) {
  const std::size_t t = h.size();
  if (t < 3 || t % 2 == 0)
    throw std::invalid_argument("fit_complex_fir: need an odd tap count >= 3");
  const double dcenter = (static_cast<double>(t) - 1.0) / 2.0;

  // Estimate the bulk group delay from the phase slope across strong bins
  // and re-center it so the impulse response fits the tap span.
  double dsum = 0.0, wsum = 0.0;
  double hmax = 0.0;
  for (const auto& v : h) hmax = std::max(hmax, std::abs(v));
  for (std::size_t k = 0; k + 1 < t; ++k) {
    const double w = std::min(std::abs(h[k]), std::abs(h[k + 1]));
    if (w < 0.1 * hmax) continue;
    const double dphi = std::arg(h[k + 1] * std::conj(h[k]));
    // Adjacent grid spacing is 1/T of fs: delay d gives dphi = -2 pi d / T.
    dsum += w * (-dphi * static_cast<double>(t) / dsp::kTwoPi);
    wsum += w;
  }
  const double bulk = wsum > 0.0 ? dsum / wsum : dcenter;
  const double shift = bulk - dcenter;  // delay to remove

  // Target response G_k = H_k * e^{+j 2 pi f_k shift}; then taps are the
  // inverse DFT on the centered grid f_k = (k - (t-1)/2)/t.
  dsp::CVec taps(t, dsp::Cplx{0.0, 0.0});
  for (std::size_t n = 0; n < t; ++n) {
    dsp::Cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < t; ++k) {
      const double fk = (static_cast<double>(k) - dcenter) / static_cast<double>(t);
      const dsp::Cplx g = h[k] * dsp::Cplx{std::cos(dsp::kTwoPi * fk * shift),
                                           std::sin(dsp::kTwoPi * fk * shift)};
      const double ang = dsp::kTwoPi * fk * static_cast<double>(n);
      acc += g * dsp::Cplx{std::cos(ang), std::sin(ang)};
    }
    taps[n] = acc / static_cast<double>(t);
  }
  return taps;
}

BlackBoxData extract_blackbox(RfBlock& dut, const ExtractionConfig& cfg) {
  if (cfg.fir_taps < 3 || cfg.fir_taps % 2 == 0)
    throw std::invalid_argument("extract_blackbox: fir_taps must be odd >= 3");
  BlackBoxData data;
  data.sample_rate_hz = cfg.sample_rate_hz;

  // --- small-signal frequency response on the uniform grid ---------------
  const std::size_t t = cfg.fir_taps;
  const double amp = std::sqrt(dsp::dbm_to_watts(cfg.smallsig_dbm));
  const double dcenter = (static_cast<double>(t) - 1.0) / 2.0;
  data.freq_hz.resize(t);
  data.h.resize(t);
  for (std::size_t k = 0; k < t; ++k) {
    const double fn = (static_cast<double>(k) - dcenter) / static_cast<double>(t);
    data.freq_hz[k] = fn * cfg.sample_rate_hz;
    data.h[k] =
        tone_gain(dut, fn, amp, cfg.settle_samples, cfg.tone_samples);
  }

  // --- envelope transfer at the reference frequency ----------------------
  const double fref_n =
      std::round(cfg.env_ref_hz / cfg.sample_rate_hz * static_cast<double>(t)) /
      static_cast<double>(t);
  dsp::Cplx g_small{0.0, 0.0};
  for (std::size_t i = 0; i < cfg.num_env_points; ++i) {
    const double dbm =
        cfg.env_start_dbm + (cfg.env_stop_dbm - cfg.env_start_dbm) *
                                static_cast<double>(i) /
                                static_cast<double>(cfg.num_env_points - 1);
    const double a = std::sqrt(dsp::dbm_to_watts(dbm));
    const dsp::Cplx g =
        tone_gain(dut, fref_n, a, cfg.settle_samples, cfg.tone_samples);
    if (i == 0) g_small = g;
    data.env_in.push_back(a);
    data.env_out.push_back(std::abs(g) * a);
    data.env_phase.push_back(std::arg(g * std::conj(g_small)));
  }

  // --- output noise -------------------------------------------------------
  dut.reset();
  dsp::CVec zeros(cfg.settle_samples + cfg.tone_samples, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = dut.process(zeros);
  double acc = 0.0;
  for (std::size_t i = cfg.settle_samples; i < y.size(); ++i)
    acc += std::norm(y[i]);
  data.noise_power = acc / static_cast<double>(cfg.tone_samples);

  return data;
}

BlackBoxModel::BlackBoxModel(BlackBoxData data, dsp::Rng rng)
    : data_(std::move(data)),
      filter_([this] {
        // Normalize the linear part to unit gain at the envelope reference
        // (the nonlinearity carries the absolute gain there).
        if (data_.h.empty() || data_.env_in.empty())
          throw std::invalid_argument("BlackBoxModel: empty extraction data");
        // Reference gain = small-signal envelope gain.
        const double gref = data_.env_out.front() / data_.env_in.front();
        dsp::CVec hn = data_.h;
        for (auto& v : hn) v /= gref;
        return dsp::CFirFilter(fit_complex_fir(hn));
      }()),
      noise_sqrt_(std::sqrt(std::max(0.0, data_.noise_power))),
      rng_(rng) {}

void BlackBoxModel::nl_gain_phase(double a, double* g, double* phi) const {
  const auto& xin = data_.env_in;
  const auto& xout = data_.env_out;
  const auto& ph = data_.env_phase;
  if (a <= xin.front()) {
    *g = xout.front() / xin.front();
    *phi = ph.front();
    return;
  }
  if (a >= xin.back()) {
    *g = xout.back() / xin.back();
    *phi = ph.back();
    return;
  }
  const auto it = std::upper_bound(xin.begin(), xin.end(), a);
  const std::size_t i = static_cast<std::size_t>(it - xin.begin());
  const double w = (a - xin[i - 1]) / (xin[i] - xin[i - 1]);
  const double out = xout[i - 1] + w * (xout[i] - xout[i - 1]);
  *g = out / a;
  *phi = ph[i - 1] + w * (ph[i] - ph[i - 1]);
}

double BlackBoxModel::am_am_gain(double a) const {
  double g, phi;
  nl_gain_phase(a, &g, &phi);
  return g;
}

double BlackBoxModel::am_pm(double a) const {
  double g, phi;
  nl_gain_phase(a, &g, &phi);
  return phi;
}

dsp::CVec BlackBoxModel::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out(in.size());
  process_tile(in, out);
  return out;
}

void BlackBoxModel::process_into(std::span<const dsp::Cplx> in,
                                 dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, out);
}

void BlackBoxModel::process_tile(std::span<const dsp::Cplx> in,
                                 std::span<dsp::Cplx> out) {
  // Three passes over the tile instead of one interleaved per-sample loop:
  // the nonlinearity is sample-local, the filter state consumes only the
  // NL outputs in order, and the noise stream is independent of the
  // signal. Note the linear part is evaluated by block convolution, whose
  // rounding depends on the call partition (see CFirFilter::process_into)
  // — this block is exempt from the chain's tile-schedule bit-exactness
  // contract, as the RfBlock doc allows for black-box models.
  for (std::size_t i = 0; i < in.size(); ++i) {
    // sqrt(norm) instead of std::abs: the envelope range here is far from
    // over/underflow, and hypot's extra rounding care costs ~3x per sample.
    const double a = std::sqrt(std::norm(in[i]));
    if (a > 0.0) {
      double g, phi;
      nl_gain_phase(a, &g, &phi);
      out[i] = in[i] * g * dsp::Cplx{std::cos(phi), std::sin(phi)};
    } else {
      out[i] = dsp::Cplx{0.0, 0.0};
    }
  }
  filter_.process_into(out, out);
  if (noise_sqrt_ > 0.0) {
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += rng_.cgaussian(data_.noise_power);
  }
}

void BlackBoxModel::reset() { filter_.reset(); }

}  // namespace wlansim::rf
