#include "rf/receiver_chain.h"

#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

DoubleConversionReceiver::DoubleConversionReceiver(
    const DoubleConversionConfig& cfg, dsp::Rng rng)
    : cfg_(cfg) {
  const double fs = cfg_.sample_rate_hz;
  if (fs <= 0.0)
    throw std::invalid_argument("DoubleConversionReceiver: bad sample rate");

  AmplifierConfig lna_cfg;
  lna_cfg.label = "lna";
  lna_cfg.gain_db = cfg_.lna_gain_db;
  lna_cfg.noise_figure_db = cfg_.lna_nf_db;
  lna_cfg.model = cfg_.lna_model;
  lna_cfg.p1db_in_dbm = cfg_.lna_p1db_in_dbm;
  lna_cfg.am_pm_max_deg = cfg_.lna_am_pm_max_deg;
  lna_cfg.noise_enabled = cfg_.noise_enabled;
  lna_ = chain_.emplace<Amplifier>(lna_cfg, fs, rng.fork());

  MixerConfig m1;
  m1.label = "mixer1";
  m1.conversion_gain_db = cfg_.mixer1_gain_db;
  m1.lo_offset_hz = cfg_.lo_offset_hz;
  m1.phase_noise = cfg_.lo_phase_noise;
  m1.image_rejection_db = cfg_.mixer1_image_rejection_db;
  m1.noise_enabled = cfg_.noise_enabled;
  mixer1_ = chain_.emplace<Mixer>(m1, fs, rng.fork());

  chain_.emplace<DcBlockHighpass>(cfg_.hpf_order, cfg_.hpf_cutoff_hz, fs,
                                  "interstage_hpf1");

  MixerConfig m2;
  m2.label = "mixer2";
  m2.conversion_gain_db = cfg_.mixer2_gain_db;
  // Second stage shares the LO; its frequency error is already expressed at
  // stage one, so only the self-mixing DC offset appears here.
  m2.dc_offset = cfg_.mixer2_dc_offset;
  m2.noise_enabled = cfg_.noise_enabled;
  mixer2_ = chain_.emplace<Mixer>(m2, fs, rng.fork());

  if (cfg_.noise_enabled && cfg_.mixer2_flicker_power_dbm > -150.0) {
    flicker_ = chain_.emplace<FlickerNoiseSource>(
        dsp::dbm_to_watts(cfg_.mixer2_flicker_power_dbm),
        /*corner_low_hz=*/1e3, cfg_.flicker_corner_hz, fs, rng.fork());
  }

  chain_.emplace<DcBlockHighpass>(cfg_.hpf_order, cfg_.hpf_cutoff_hz, fs,
                                  "interstage_hpf2");

  bb_lpf_ = chain_.emplace<ChebyshevLowpass>(
      cfg_.bb_filter_order, cfg_.bb_filter_ripple_db,
      cfg_.bb_filter_edge_hz * cfg_.bb_bandwidth_factor, fs, "bb_chebyshev");

  agc_ = chain_.emplace<Agc>(cfg_.agc);
  chain_.emplace<Adc>(cfg_.adc);

  chain_.set_tile_size(cfg_.tile_size);
}

dsp::CVec DoubleConversionReceiver::process(std::span<const dsp::Cplx> in) {
  return chain_.process(in);
}

void DoubleConversionReceiver::process_into(std::span<const dsp::Cplx> in,
                                            dsp::CVec& out) {
  chain_.process_into(in, out);
}

void DoubleConversionReceiver::process_tile(std::span<const dsp::Cplx> in,
                                            std::span<dsp::Cplx> out) {
  chain_.process_tile(in, out);
}

void DoubleConversionReceiver::reseed(dsp::Rng rng) {
  // Same fork order as the constructor: lna, mixer1, mixer2, flicker.
  lna_->set_rng(rng.fork());
  mixer1_->set_rng(rng.fork());
  mixer2_->set_rng(rng.fork());
  if (flicker_) flicker_->set_rng(rng.fork());
}

void DoubleConversionReceiver::reseed_lanes(std::size_t lane, dsp::Rng rng) {
  // Same fork order as the constructor and reseed(): lna, mixer1, mixer2,
  // flicker. The mixers ignore their rng on the lane path (it exists only
  // for phase noise, which the lane path does not support), but forking
  // them keeps the lna/flicker children identical to the scalar ones.
  lna_->set_lane_rng(lane, rng.fork());
  (void)rng.fork();  // mixer1
  (void)rng.fork();  // mixer2
  if (flicker_) flicker_->set_lane_rng(lane, rng.fork());
}

void DoubleConversionReceiver::set_lane_tapes(std::size_t lane,
                                              dsp::RVec* lna_tape,
                                              dsp::RVec* flicker_tape) {
  lna_->set_lane_tape(lane, lna_tape);
  if (flicker_) flicker_->set_lane_tape(lane, flicker_tape);
}

double DoubleConversionReceiver::front_end_gain_db() const {
  return cfg_.lna_gain_db + cfg_.mixer1_gain_db + cfg_.mixer2_gain_db;
}

}  // namespace wlansim::rf
