#include "rf/agc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

Agc::Agc(const AgcConfig& cfg)
    : cfg_(cfg),
      gain_db_(cfg.initial_gain_db),
      det_power_(0.0),
      alpha_(1.0 / std::max(1.0, cfg.detector_time_const)),
      cached_gain_db_(std::numeric_limits<double>::quiet_NaN()) {
  if (cfg_.min_gain_db > cfg_.max_gain_db)
    throw std::invalid_argument("Agc: min gain above max gain");
  if (cfg_.attack_db_per_sample < 0.0 || cfg_.decay_db_per_sample < 0.0 ||
      cfg_.loop_gain < 0.0)
    throw std::invalid_argument("Agc: negative loop parameters");
  // Widen the brackets by 1e-9 relative — orders of magnitude beyond the
  // rounding error of dbm_to_watts — so they are a strict superset of the
  // set where the exact dB comparison could unlock. Inside them, skipping
  // the comparison is decision-identical to the legacy per-sample form.
  unlock_lo_w_ =
      dsp::dbm_to_watts(cfg_.target_power_dbm - cfg_.unlock_window_db) *
      (1.0 + 1e-9);
  unlock_hi_w_ =
      dsp::dbm_to_watts(cfg_.target_power_dbm + cfg_.unlock_window_db) *
      (1.0 - 1e-9);
}

dsp::CVec Agc::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Agc::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void Agc::process_tile(std::span<const dsp::Cplx> in,
                       std::span<dsp::Cplx> out) {
  const double target_dbm = cfg_.target_power_dbm;
  const dsp::Cplx* src = in.data();
  dsp::Cplx* dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (gain_db_ != cached_gain_db_) {
      cached_gain_db_ = gain_db_;
      cached_gain_lin_ = std::pow(10.0, gain_db_ / 20.0);
    }
    const dsp::Cplx y = cached_gain_lin_ * src[i];
    dst[i] = y;

    det_power_ += alpha_ * (std::norm(y) - det_power_);
    if (det_power_ > 1e-30) {
      if (locked_) {
        // Level jumped: re-acquire. The cheap linear-domain bracket test
        // rules out an unlock in the common settled case; only near or
        // beyond the window does the exact dB comparison (the legacy
        // decision boundary) run.
        if (det_power_ < unlock_lo_w_ || det_power_ > unlock_hi_w_) {
          const double err_db = target_dbm - dsp::watts_to_dbm(det_power_);
          if (std::abs(err_db) > cfg_.unlock_window_db) {
            locked_ = false;
            settled_run_ = 0;
          }
        }
      }
      if (!frozen_ && !locked_) {
        const double err_db = target_dbm - dsp::watts_to_dbm(det_power_);
        const double step =
            std::clamp(cfg_.loop_gain * err_db, -cfg_.attack_db_per_sample,
                       cfg_.decay_db_per_sample);
        gain_db_ =
            std::clamp(gain_db_ + step, cfg_.min_gain_db, cfg_.max_gain_db);
        if (cfg_.lock_count > 0) {
          if (std::abs(err_db) < cfg_.lock_window_db) {
            if (++settled_run_ >= cfg_.lock_count) locked_ = true;
          } else {
            settled_run_ = 0;
          }
        }
      }
    }
  }
}

void Agc::reset() {
  gain_db_ = cfg_.initial_gain_db;
  det_power_ = 0.0;
  frozen_ = false;
  locked_ = false;
  settled_run_ = 0;
}

double Agc::current_gain_db() const { return gain_db_; }

}  // namespace wlansim::rf
