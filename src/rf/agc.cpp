#include "rf/agc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

Agc::Agc(const AgcConfig& cfg)
    : cfg_(cfg),
      gain_db_(cfg.initial_gain_db),
      det_power_(0.0),
      alpha_(1.0 / std::max(1.0, cfg.detector_time_const)),
      cached_gain_db_(std::numeric_limits<double>::quiet_NaN()) {
  if (cfg_.min_gain_db > cfg_.max_gain_db)
    throw std::invalid_argument("Agc: min gain above max gain");
  if (cfg_.attack_db_per_sample < 0.0 || cfg_.decay_db_per_sample < 0.0 ||
      cfg_.loop_gain < 0.0)
    throw std::invalid_argument("Agc: negative loop parameters");
  // Widen the brackets by 1e-9 relative — orders of magnitude beyond the
  // rounding error of dbm_to_watts — so they are a strict superset of the
  // set where the exact dB comparison could unlock. Inside them, skipping
  // the comparison is decision-identical to the legacy per-sample form.
  unlock_lo_w_ =
      dsp::dbm_to_watts(cfg_.target_power_dbm - cfg_.unlock_window_db) *
      (1.0 + 1e-9);
  unlock_hi_w_ =
      dsp::dbm_to_watts(cfg_.target_power_dbm + cfg_.unlock_window_db) *
      (1.0 - 1e-9);
}

dsp::CVec Agc::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Agc::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void Agc::process_tile(std::span<const dsp::Cplx> in,
                       std::span<dsp::Cplx> out) {
  const double target_dbm = cfg_.target_power_dbm;
  const dsp::Cplx* src = in.data();
  dsp::Cplx* dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (gain_db_ != cached_gain_db_) {
      cached_gain_db_ = gain_db_;
      cached_gain_lin_ = std::pow(10.0, gain_db_ / 20.0);
    }
    const dsp::Cplx y = cached_gain_lin_ * src[i];
    dst[i] = y;

    det_power_ += alpha_ * (std::norm(y) - det_power_);
    if (det_power_ > 1e-30) {
      if (locked_) {
        // Level jumped: re-acquire. The cheap linear-domain bracket test
        // rules out an unlock in the common settled case; only near or
        // beyond the window does the exact dB comparison (the legacy
        // decision boundary) run.
        if (det_power_ < unlock_lo_w_ || det_power_ > unlock_hi_w_) {
          const double err_db = target_dbm - dsp::watts_to_dbm(det_power_);
          if (std::abs(err_db) > cfg_.unlock_window_db) {
            locked_ = false;
            settled_run_ = 0;
          }
        }
      }
      if (!frozen_ && !locked_) {
        const double err_db = target_dbm - dsp::watts_to_dbm(det_power_);
        const double step =
            std::clamp(cfg_.loop_gain * err_db, -cfg_.attack_db_per_sample,
                       cfg_.decay_db_per_sample);
        gain_db_ =
            std::clamp(gain_db_ + step, cfg_.min_gain_db, cfg_.max_gain_db);
        if (cfg_.lock_count > 0) {
          if (std::abs(err_db) < cfg_.lock_window_db) {
            if (++settled_run_ >= cfg_.lock_count) locked_ = true;
          } else {
            settled_run_ = 0;
          }
        }
      }
    }
  }
}

void Agc::begin_lanes(std::size_t nl) {
  lanes_.assign(nl, LaneState{cfg_.initial_gain_db, 0.0,
                              std::numeric_limits<double>::quiet_NaN(), 1.0,
                              false, 0});
}

void Agc::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  // Sample-outer, lane-inner transcription of process_tile: every lane
  // carries its own gain/detector/lock state and performs the identical
  // per-sample decisions, so lane l is bit-identical to a reset() scalar
  // loop over that lane's stream. The pow/log10 calls stay scalar per lane
  // and are rare (gain memoization, linear-domain unlock brackets).
  const double target_dbm = cfg_.target_power_dbm;
  for (std::size_t i = 0; i < n; ++i) {
    double* re = soa + i * 2 * nl;
    double* im = re + nl;
    for (std::size_t l = 0; l < nl; ++l) {
      LaneState& st = lanes_[l];
      if (st.gain_db != st.cached_gain_db) {
        st.cached_gain_db = st.gain_db;
        st.cached_gain_lin = std::pow(10.0, st.gain_db / 20.0);
      }
      const double yr = st.cached_gain_lin * re[l];
      const double yi = st.cached_gain_lin * im[l];
      re[l] = yr;
      im[l] = yi;

      st.det_power += alpha_ * ((yr * yr + yi * yi) - st.det_power);
      if (st.det_power > 1e-30) {
        if (st.locked) {
          if (st.det_power < unlock_lo_w_ || st.det_power > unlock_hi_w_) {
            const double err_db = target_dbm - dsp::watts_to_dbm(st.det_power);
            if (std::abs(err_db) > cfg_.unlock_window_db) {
              st.locked = false;
              st.settled_run = 0;
            }
          }
        }
        if (!frozen_ && !st.locked) {
          const double err_db = target_dbm - dsp::watts_to_dbm(st.det_power);
          const double step =
              std::clamp(cfg_.loop_gain * err_db, -cfg_.attack_db_per_sample,
                         cfg_.decay_db_per_sample);
          st.gain_db =
              std::clamp(st.gain_db + step, cfg_.min_gain_db, cfg_.max_gain_db);
          if (cfg_.lock_count > 0) {
            if (std::abs(err_db) < cfg_.lock_window_db) {
              if (++st.settled_run >= cfg_.lock_count) st.locked = true;
            } else {
              st.settled_run = 0;
            }
          }
        }
      }
    }
  }
}

void Agc::reset() {
  gain_db_ = cfg_.initial_gain_db;
  det_power_ = 0.0;
  frozen_ = false;
  locked_ = false;
  settled_run_ = 0;
}

double Agc::current_gain_db() const { return gain_db_; }

}  // namespace wlansim::rf
