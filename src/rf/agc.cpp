#include "rf/agc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

Agc::Agc(const AgcConfig& cfg)
    : cfg_(cfg),
      gain_db_(cfg.initial_gain_db),
      det_power_(0.0),
      alpha_(1.0 / std::max(1.0, cfg.detector_time_const)) {
  if (cfg_.min_gain_db > cfg_.max_gain_db)
    throw std::invalid_argument("Agc: min gain above max gain");
  if (cfg_.attack_db_per_sample < 0.0 || cfg_.decay_db_per_sample < 0.0 ||
      cfg_.loop_gain < 0.0)
    throw std::invalid_argument("Agc: negative loop parameters");
}

dsp::CVec Agc::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Agc::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  const double target_dbm = cfg_.target_power_dbm;
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double g = std::pow(10.0, gain_db_ / 20.0);
    const dsp::Cplx y = g * in[i];
    out[i] = y;

    det_power_ += alpha_ * (std::norm(y) - det_power_);
    if (det_power_ > 1e-30) {
      const double err_db = target_dbm - dsp::watts_to_dbm(det_power_);
      if (locked_ && std::abs(err_db) > cfg_.unlock_window_db) {
        locked_ = false;  // level jumped: re-acquire
        settled_run_ = 0;
      }
      if (!frozen_ && !locked_) {
        const double step =
            std::clamp(cfg_.loop_gain * err_db, -cfg_.attack_db_per_sample,
                       cfg_.decay_db_per_sample);
        gain_db_ =
            std::clamp(gain_db_ + step, cfg_.min_gain_db, cfg_.max_gain_db);
        if (cfg_.lock_count > 0) {
          if (std::abs(err_db) < cfg_.lock_window_db) {
            if (++settled_run_ >= cfg_.lock_count) locked_ = true;
          } else {
            settled_run_ = 0;
          }
        }
      }
    }
  }
}

void Agc::reset() {
  gain_db_ = cfg_.initial_gain_db;
  det_power_ = 0.0;
  frozen_ = false;
  locked_ = false;
  settled_run_ = 0;
}

double Agc::current_gain_db() const { return gain_db_; }

}  // namespace wlansim::rf
