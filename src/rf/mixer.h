// Behavioral mixer at complex baseband: conversion gain, LO frequency
// error, LO phase noise, IQ imbalance, finite image rejection, and LO
// self-mixing DC offset.
//
// The paper's double-conversion receiver (Fig. 2) uses two mixer stages at
// the same 2.6 GHz LO; the first has a benign image (no signal near 0 Hz),
// the second contributes DC offset and flicker noise, which are modeled
// here and removed by the interstage high-pass filters.
#pragma once

#include "dsp/rng.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

/// Lorentzian (Wiener-process) LO phase noise specified the way a datasheet
/// does: L dBc/Hz at a given offset.
struct PhaseNoiseSpec {
  double level_dbc_hz = -200.0;  ///< <= -200 disables
  double offset_hz = 100e3;

  bool enabled() const { return level_dbc_hz > -199.0; }

  /// Equivalent Lorentzian linewidth [Hz]: L(f) ~ df / (pi f^2) for
  /// f >> df, so df = pi f^2 10^{L/10}.
  double linewidth_hz() const;
};

struct MixerConfig {
  std::string label = "mixer";
  double conversion_gain_db = 0.0;
  double lo_offset_hz = 0.0;        ///< LO frequency error (CFO source)
  PhaseNoiseSpec phase_noise;
  double iq_gain_imbalance_db = 0.0;  ///< Q-rail gain relative to I
  double iq_phase_error_deg = 0.0;    ///< quadrature error
  double image_rejection_db = 200.0;  ///< >= 200 = perfect
  dsp::Cplx dc_offset{0.0, 0.0};      ///< LO self-mixing product [sqrt(W)]
  bool noise_enabled = true;          ///< gates phase noise (AMS gap, §5.1)
};

class Mixer : public RfBlock {
 public:
  Mixer(const MixerConfig& cfg, double sample_rate_hz, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return cfg_.label; }

  /// Replace the phase-noise generator (see Amplifier::set_rng).
  void set_rng(dsp::Rng rng) { rng_ = rng; }

  /// Lane path: only the stateless unity-LO configuration (no LO offset, no
  /// phase noise, phase 0 — the default receiver chain after reset()).
  bool supports_lanes() const override {
    return pn_sigma_ <= 0.0 && dphi_lo_ == 0.0 && lo_phase_ == 0.0 &&
           pn_phase_ == 0.0;
  }
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

  const MixerConfig& config() const { return cfg_; }

 private:
  MixerConfig cfg_;
  double gain_;
  double dphi_lo_;       ///< LO offset phase increment per sample
  double pn_sigma_;      ///< phase noise random-walk step std dev
  double image_amp_;     ///< conj-term amplitude from image rejection
  double iq_eps_;        ///< Q gain factor
  double iq_phi_;        ///< quadrature phase error [rad]
  double lo_phase_ = 0.0;
  double pn_phase_ = 0.0;
  dsp::Rng rng_;
  dsp::RVec phase_scratch_;  ///< per-sample LO phase (SoA) for the kernel
};

}  // namespace wlansim::rf
