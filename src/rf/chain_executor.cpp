#include "rf/chain_executor.h"

#include <algorithm>
#include <cstdlib>

#include "rf/rfblock.h"

namespace wlansim::rf {

std::size_t ChainExecutor::auto_tile_size() {
  static const std::size_t tile = [] {
    if (const char* e = std::getenv("WLANSIM_RF_TILE")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(e, &end, 10);
      if (end != e && *end == '\0' && v > 0)
        return static_cast<std::size_t>(v);
    }
    return std::size_t{1024};
  }();
  return tile;
}

void ChainExecutor::run(RfBlock* const* blocks, std::size_t nblocks,
                        std::span<const dsp::Cplx> in,
                        std::span<dsp::Cplx> out) {
  const std::size_t n = in.size();
  if (nblocks == 0) {
    if (out.data() != in.data())
      std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  if (nblocks == 1) {
    // Nothing to fuse: one whole-buffer pass is the same arithmetic.
    blocks[0]->process_tile(in, out);
    return;
  }
  const std::size_t t = std::min(n != 0 ? n : std::size_t{1},
                                 effective_tile_size());
  tile_a_.resize(t);
  tile_b_.resize(t);
  for (std::size_t o = 0; o < n; o += t) {
    const std::size_t m = std::min(t, n - o);
    std::span<const dsp::Cplx> cur = in.subspan(o, m);
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::span<dsp::Cplx> dst =
          (b + 1 == nblocks)
              ? out.subspan(o, m)
              : std::span<dsp::Cplx>((b % 2 == 0) ? tile_a_.data()
                                                  : tile_b_.data(),
                                     m);
      blocks[b]->process_tile(cur, dst);
      cur = dst;
    }
  }
}

}  // namespace wlansim::rf
