// Base interface for behavioral RF blocks operating on complex-baseband
// sample streams — the C++ equivalent of the SPW rflib / SpectreRF
// baseband models the paper evaluates.
//
// Conventions:
//  * signals are complex envelopes normalized to a 1-ohm system, so
//    power [W] == mean |x|^2 and a tone of amplitude A carries A^2 watts;
//  * every block is constructed with the sample rate it runs at, because
//    noise floors and filter corners are physical (Hz) quantities;
//  * blocks keep state across process() calls so long runs can stream.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.h"
#include "rf/chain_executor.h"

namespace wlansim::rf {

class RfBlock {
 public:
  virtual ~RfBlock() = default;

  /// Process a chunk; output has the same length as the input.
  virtual dsp::CVec process(std::span<const dsp::Cplx> in) = 0;

  /// Process a chunk into a caller-provided vector, which is resized to the
  /// input length. Blocks on the packet hot path override this so that a
  /// warm `out` means zero heap allocation; the default delegates to
  /// process(). `out` must not alias `in`.
  virtual void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
    out = process(in);
  }

  /// Tile-safe streaming contract for the fused ChainExecutor: filter `in`
  /// into the pre-sized `out` (out.size() == in.size(), aliasing allowed).
  /// The output must depend only on carried state plus the input samples in
  /// order, so that processing a buffer in consecutive tiles of any size is
  /// bit-identical to one whole-buffer call. Every concrete block overrides
  /// this with its allocation-free core loop; the base default routes
  /// through process() (allocating) for blocks that never see the hot path
  /// (black-box table models, co-simulation wrappers).
  virtual void process_tile(std::span<const dsp::Cplx> in,
                            std::span<dsp::Cplx> out);

  /// Clear internal state (filters, AGC loops, oscillator phase).
  virtual void reset() {}

  /// Human-readable block name for reports.
  virtual std::string name() const = 0;

  // ---- width-W packet-lane interface (SoA, sample-major / packet-minor) ---
  //
  // The batched packet engine runs up to dsp::kernels::kLaneWidth
  // same-config packets in lockstep: sample i is one 2*nl-double row
  // [re lanes][im lanes] of a flat buffer. A block that opts in must make
  // lane l of process_tile_lanes() bit-identical to its scalar
  // process_tile() on that lane's stream (same carried state per lane, same
  // per-sample arithmetic, per-lane RNG streams drawn in the same
  // call-granularity-invariant way). Tiling applies per the ChainExecutor
  // contract: consecutive lane tiles of any size must equal one
  // whole-buffer call.

  /// Whether this block implements the lane path for its *current*
  /// configuration (blocks with unsupported impairment combinations return
  /// false and the wave falls back to the scalar engine).
  virtual bool supports_lanes() const { return false; }

  /// Prepare per-lane state for a batch of `nl` lanes, lane l seeded /
  /// reset exactly as reset() leaves the scalar block. Called once per
  /// wave, before any process_tile_lanes().
  virtual void begin_lanes(std::size_t nl) { (void)nl; }

  /// Process `n` SoA rows of `nl` lanes in place.
  virtual void process_tile_lanes(double* soa, std::size_t n, std::size_t nl);
};

/// A serial cascade of RF blocks, executed fused: L1-sized tiles stream
/// through the whole cascade (see ChainExecutor), bit-identical to the
/// retained block-at-a-time reference process_blockwise_into().
class RfChain : public RfBlock {
 public:
  RfChain() = default;

  /// Append a block; returns a handle for later inspection.
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto block = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = block.get();
    raw_.push_back(raw);
    blocks_.push_back(std::move(block));
    return raw;
  }

  void append(std::unique_ptr<RfBlock> block) {
    raw_.push_back(block.get());
    blocks_.push_back(std::move(block));
  }

  std::size_t size() const { return blocks_.size(); }
  RfBlock& at(std::size_t i) { return *blocks_.at(i); }

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return "chain"; }

  /// Fused-execution tile size (samples); 0 = auto. Forwarded to the
  /// executor — see ChainExecutor::auto_tile_size() for the L1 model.
  void set_tile_size(std::size_t t) { exec_.set_tile_size(t); }
  std::size_t tile_size() const { return exec_.tile_size(); }

  /// Reference block-at-a-time execution (the pre-fusion semantics): each
  /// block does a full pass over the buffer, ping-ponging between `out` and
  /// a member scratch vector. Kept for the fused-vs-blockwise equivalence
  /// tests and the BM_RfChainBlockwise benchmark.
  void process_blockwise_into(std::span<const dsp::Cplx> in, dsp::CVec& out);

  /// Lane path: supported only when every block in the cascade supports it.
  bool supports_lanes() const override;
  void begin_lanes(std::size_t nl) override;
  /// Fused lane execution: one ~L1-sized tile of SoA rows (the scalar tile
  /// budget divided by nl) streams through the whole cascade in place
  /// before the next tile starts.
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

 private:
  std::vector<std::unique_ptr<RfBlock>> blocks_;
  std::vector<RfBlock*> raw_;  // same order; flat array for the executor
  ChainExecutor exec_;
  dsp::CVec scratch_;  // ping-pong partner of `out` in the blockwise path
};

}  // namespace wlansim::rf
