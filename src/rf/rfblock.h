// Base interface for behavioral RF blocks operating on complex-baseband
// sample streams — the C++ equivalent of the SPW rflib / SpectreRF
// baseband models the paper evaluates.
//
// Conventions:
//  * signals are complex envelopes normalized to a 1-ohm system, so
//    power [W] == mean |x|^2 and a tone of amplitude A carries A^2 watts;
//  * every block is constructed with the sample rate it runs at, because
//    noise floors and filter corners are physical (Hz) quantities;
//  * blocks keep state across process() calls so long runs can stream.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.h"
#include "rf/chain_executor.h"

namespace wlansim::rf {

class RfBlock {
 public:
  virtual ~RfBlock() = default;

  /// Process a chunk; output has the same length as the input.
  virtual dsp::CVec process(std::span<const dsp::Cplx> in) = 0;

  /// Process a chunk into a caller-provided vector, which is resized to the
  /// input length. Blocks on the packet hot path override this so that a
  /// warm `out` means zero heap allocation; the default delegates to
  /// process(). `out` must not alias `in`.
  virtual void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
    out = process(in);
  }

  /// Tile-safe streaming contract for the fused ChainExecutor: filter `in`
  /// into the pre-sized `out` (out.size() == in.size(), aliasing allowed).
  /// The output must depend only on carried state plus the input samples in
  /// order, so that processing a buffer in consecutive tiles of any size is
  /// bit-identical to one whole-buffer call. Every concrete block overrides
  /// this with its allocation-free core loop; the base default routes
  /// through process() (allocating) for blocks that never see the hot path
  /// (black-box table models, co-simulation wrappers).
  virtual void process_tile(std::span<const dsp::Cplx> in,
                            std::span<dsp::Cplx> out);

  /// Clear internal state (filters, AGC loops, oscillator phase).
  virtual void reset() {}

  /// Human-readable block name for reports.
  virtual std::string name() const = 0;
};

/// A serial cascade of RF blocks, executed fused: L1-sized tiles stream
/// through the whole cascade (see ChainExecutor), bit-identical to the
/// retained block-at-a-time reference process_blockwise_into().
class RfChain : public RfBlock {
 public:
  RfChain() = default;

  /// Append a block; returns a handle for later inspection.
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto block = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = block.get();
    raw_.push_back(raw);
    blocks_.push_back(std::move(block));
    return raw;
  }

  void append(std::unique_ptr<RfBlock> block) {
    raw_.push_back(block.get());
    blocks_.push_back(std::move(block));
  }

  std::size_t size() const { return blocks_.size(); }
  RfBlock& at(std::size_t i) { return *blocks_.at(i); }

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override;
  std::string name() const override { return "chain"; }

  /// Fused-execution tile size (samples); 0 = auto. Forwarded to the
  /// executor — see ChainExecutor::auto_tile_size() for the L1 model.
  void set_tile_size(std::size_t t) { exec_.set_tile_size(t); }
  std::size_t tile_size() const { return exec_.tile_size(); }

  /// Reference block-at-a-time execution (the pre-fusion semantics): each
  /// block does a full pass over the buffer, ping-ponging between `out` and
  /// a member scratch vector. Kept for the fused-vs-blockwise equivalence
  /// tests and the BM_RfChainBlockwise benchmark.
  void process_blockwise_into(std::span<const dsp::Cplx> in, dsp::CVec& out);

 private:
  std::vector<std::unique_ptr<RfBlock>> blocks_;
  std::vector<RfBlock*> raw_;  // same order; flat array for the executor
  ChainExecutor exec_;
  dsp::CVec scratch_;  // ping-pong partner of `out` in the blockwise path
};

}  // namespace wlansim::rf
