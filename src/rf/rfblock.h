// Base interface for behavioral RF blocks operating on complex-baseband
// sample streams — the C++ equivalent of the SPW rflib / SpectreRF
// baseband models the paper evaluates.
//
// Conventions:
//  * signals are complex envelopes normalized to a 1-ohm system, so
//    power [W] == mean |x|^2 and a tone of amplitude A carries A^2 watts;
//  * every block is constructed with the sample rate it runs at, because
//    noise floors and filter corners are physical (Hz) quantities;
//  * blocks keep state across process() calls so long runs can stream.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsp/types.h"

namespace wlansim::rf {

class RfBlock {
 public:
  virtual ~RfBlock() = default;

  /// Process a chunk; output has the same length as the input.
  virtual dsp::CVec process(std::span<const dsp::Cplx> in) = 0;

  /// Process a chunk into a caller-provided vector, which is resized to the
  /// input length. Blocks on the packet hot path override this so that a
  /// warm `out` means zero heap allocation; the default delegates to
  /// process(). `out` must not alias `in`.
  virtual void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
    out = process(in);
  }

  /// Clear internal state (filters, AGC loops, oscillator phase).
  virtual void reset() {}

  /// Human-readable block name for reports.
  virtual std::string name() const = 0;
};

/// A serial cascade of RF blocks.
class RfChain : public RfBlock {
 public:
  RfChain() = default;

  /// Append a block; returns a handle for later inspection.
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto block = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = block.get();
    blocks_.push_back(std::move(block));
    return raw;
  }

  void append(std::unique_ptr<RfBlock> block) {
    blocks_.push_back(std::move(block));
  }

  std::size_t size() const { return blocks_.size(); }
  RfBlock& at(std::size_t i) { return *blocks_.at(i); }

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void reset() override;
  std::string name() const override { return "chain"; }

 private:
  std::vector<std::unique_ptr<RfBlock>> blocks_;
  dsp::CVec scratch_;  // ping-pong partner of the caller's `out` buffer
};

}  // namespace wlansim::rf
