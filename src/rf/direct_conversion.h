// Zero-IF (direct-conversion) receiver — the architecture the paper's
// double-conversion design is built to avoid (§2.2): with the LO at the
// carrier, the self-mixing DC offset and flicker noise land in the middle
// of the occupied spectrum where no high-pass filter can remove them
// without eating the signal, and finite LO isolation gives time-varying
// offsets. Having both architectures makes the paper's design rationale a
// measurable comparison (see bench/architecture_comparison).
#pragma once

#include "dsp/rng.h"
#include "rf/adc.h"
#include "rf/agc.h"
#include "rf/amplifier.h"
#include "rf/filters.h"
#include "rf/mixer.h"
#include "rf/noise.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

struct DirectConversionConfig {
  double sample_rate_hz = 80e6;

  // --- LNA (same role as in the double-conversion chain) -------------------
  double lna_gain_db = 15.0;
  double lna_nf_db = 3.0;
  double lna_p1db_in_dbm = -20.0;
  NonlinearityModel lna_model = NonlinearityModel::kRapp;

  // --- Single quadrature mixer at the carrier ------------------------------
  double mixer_gain_db = 16.0;  ///< one stage does both conversions' work
  double lo_offset_hz = 0.0;
  PhaseNoiseSpec lo_phase_noise{};
  /// Self-mixing DC offset [sqrt(W)] — sits at the channel center, on top
  /// of the signal, and cannot be high-pass filtered away.
  dsp::Cplx dc_offset{3e-4, 2e-4};
  /// Wandering LO-leakage self-mixing product: RMS amplitude [sqrt(W)] of
  /// an offset drifting within `dynamic_dc_bandwidth_hz` of DC (antenna
  /// reflections, AGC gain steps). The defining zero-IF impairment: too
  /// fast for a DC servo, squarely inside the occupied spectrum. In the
  /// half-RF double-conversion architecture the equivalent product appears
  /// between the stages and is removed by the interstage high-pass.
  double dynamic_dc_rms = 0.0;
  double dynamic_dc_bandwidth_hz = 50e3;
  /// IQ imbalance is a first-order problem at zero IF.
  double iq_gain_imbalance_db = 0.3;
  double iq_phase_error_deg = 2.0;

  // --- Baseband flicker noise (in-band at zero IF) -------------------------
  double flicker_power_dbm = -60.0;
  double flicker_corner_hz = 200e3;

  /// Optional "DC servo" notch: a very narrow high-pass. At zero IF it
  /// necessarily bites into the occupied spectrum near DC — the tradeoff
  /// that motivates the paper's double-conversion choice. 0 disables.
  double dc_servo_cutoff_hz = 10e3;

  // --- Channel selection / AGC / ADC (shared design) -----------------------
  std::size_t bb_filter_order = 7;
  double bb_filter_ripple_db = 1.0;
  double bb_filter_edge_hz = 8.6e6;
  AgcConfig agc{.label = "zif_agc",
                .target_power_dbm = -3.0,
                .max_gain_db = 70.0,
                .min_gain_db = -30.0,
                .loop_gain = 0.01,
                .attack_db_per_sample = 0.1,
                .decay_db_per_sample = 0.1,
                .detector_time_const = 32.0,
                .initial_gain_db = 30.0,
                .lock_window_db = 2.0,
                .lock_count = 96,
                .unlock_window_db = 10.0};
  AdcConfig adc{.label = "zif_adc", .bits = 10, .full_scale = 0.08,
                .enabled = true};
  bool noise_enabled = true;
};

class DirectConversionReceiver : public RfBlock {
 public:
  DirectConversionReceiver(const DirectConversionConfig& cfg, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override {
    chain_.process_into(in, out);
  }
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override {
    chain_.process_tile(in, out);
  }
  void reset() override { chain_.reset(); }
  std::string name() const override { return "direct_conversion_rx"; }

  const DirectConversionConfig& config() const { return cfg_; }
  double front_end_gain_db() const {
    return cfg_.lna_gain_db + cfg_.mixer_gain_db;
  }

 private:
  DirectConversionConfig cfg_;
  RfChain chain_;
};

}  // namespace wlansim::rf
