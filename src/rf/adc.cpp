#include "rf/adc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"

namespace wlansim::rf {

Adc::Adc(const AdcConfig& cfg) : cfg_(cfg) {
  if (cfg_.bits < 1 || cfg_.bits > 24)
    throw std::invalid_argument("Adc: bits must be 1..24");
  if (cfg_.full_scale <= 0.0)
    throw std::invalid_argument("Adc: full scale must be positive");
  step_ = 2.0 * cfg_.full_scale /
          static_cast<double>((std::size_t{1} << cfg_.bits) - 1);
  inv_step_ = 1.0 / step_;
}

double Adc::quantize(double v) const {
  // Mid-tread rounding, then clip at the rails (the rail value itself need
  // not sit on the quantization grid — it is the saturated output). The
  // reciprocal multiply replaces a ~20-cycle divide; it can pick the
  // neighboring code only when v/step_ rounds within one ulp of a x.5
  // boundary, where the two codes are equally valid quantizations.
  return std::clamp(std::round(v * inv_step_) * step_, -cfg_.full_scale,
                    cfg_.full_scale);
}

dsp::CVec Adc::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Adc::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void Adc::process_tile(std::span<const dsp::Cplx> in,
                       std::span<dsp::Cplx> out) {
  if (!cfg_.enabled) {
    if (out.data() != in.data())
      std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  // Same per-rail arithmetic as quantize() — the kernel computes the
  // std::round call arithmetically and is pinned bit-identical to it by
  // tests/dsp/test_kernels.cpp.
  dsp::kernels::quantize_clamp(in.data(), in.size(), inv_step_, step_,
                               cfg_.full_scale, out.data());
}

void Adc::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  if (!cfg_.enabled) return;
  // Element-wise per rail: the 2*n*nl SoA doubles quantize exactly as the
  // same rails would in AoS order.
  dsp::Cplx* samples = reinterpret_cast<dsp::Cplx*>(soa);
  dsp::kernels::quantize_clamp(samples, n * nl, inv_step_, step_,
                               cfg_.full_scale, samples);
}

}  // namespace wlansim::rf
