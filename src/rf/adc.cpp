#include "rf/adc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlansim::rf {

Adc::Adc(const AdcConfig& cfg) : cfg_(cfg) {
  if (cfg_.bits < 1 || cfg_.bits > 24)
    throw std::invalid_argument("Adc: bits must be 1..24");
  if (cfg_.full_scale <= 0.0)
    throw std::invalid_argument("Adc: full scale must be positive");
  step_ = 2.0 * cfg_.full_scale /
          static_cast<double>((std::size_t{1} << cfg_.bits) - 1);
}

double Adc::quantize(double v) const {
  // Mid-tread rounding, then clip at the rails (the rail value itself need
  // not sit on the quantization grid — it is the saturated output).
  return std::clamp(std::round(v / step_) * step_, -cfg_.full_scale,
                    cfg_.full_scale);
}

dsp::CVec Adc::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Adc::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  if (!cfg_.enabled) {
    out.assign(in.begin(), in.end());
    return;
  }
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = dsp::Cplx{quantize(in[i].real()), quantize(in[i].imag())};
  }
}

}  // namespace wlansim::rf
