#include "rf/calibration.h"

#include <cmath>

namespace wlansim::rf {

CalibrationResult calibrate_amplifier(RfBlock& reference,
                                      const CalibrationConfig& cfg,
                                      NonlinearityModel model, dsp::Rng rng) {
  CalibrationResult out;

  // --- measure the golden reference ---------------------------------------
  const double ref_gain = measure_gain_db(reference, cfg.tones, -60.0);
  const double ref_p1db = measure_p1db_in_dbm(
      reference, cfg.tones, cfg.p1db_search_start_dbm,
      cfg.p1db_search_stop_dbm);
  const double ref_nf =
      cfg.calibrate_noise ? measure_noise_figure_db(reference, cfg.tones) : 0.0;

  // --- instantiate the behavioral model at those numbers -------------------
  AmplifierConfig fitted;
  fitted.label = "calibrated";
  fitted.gain_db = ref_gain;
  fitted.p1db_in_dbm = ref_p1db;
  fitted.model = model;
  fitted.noise_figure_db = cfg.calibrate_noise ? ref_nf : 0.0;
  fitted.noise_enabled = cfg.calibrate_noise;
  out.fitted = fitted;

  // --- verify: re-measure the behavioral model -----------------------------
  Amplifier behavioral(fitted, cfg.tones.sample_rate_hz, rng);
  const double fit_gain = measure_gain_db(behavioral, cfg.tones, -60.0);
  const double fit_p1db = measure_p1db_in_dbm(
      behavioral, cfg.tones, cfg.p1db_search_start_dbm,
      cfg.p1db_search_stop_dbm);
  out.gain_error_db = std::abs(fit_gain - ref_gain);
  out.p1db_error_db = std::abs(fit_p1db - ref_p1db);
  if (cfg.calibrate_noise) {
    const double fit_nf = measure_noise_figure_db(behavioral, cfg.tones);
    out.nf_error_db = std::abs(fit_nf - ref_nf);
  }
  return out;
}

}  // namespace wlansim::rf
