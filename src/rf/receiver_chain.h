// The double-conversion WLAN receiver front-end of the paper's Fig. 2,
// assembled from behavioral blocks at complex baseband:
//
//   LNA -> mixer 1 -> interstage HPF -> mixer 2 (I/Q, DC offset, flicker)
//       -> interstage HPF -> Chebyshev channel-select LPF -> AGC -> ADC
//
// Both mixers run from one 2.6 GHz LO in the real architecture; at complex
// baseband the two stages appear as their impairments (phase noise and
// frequency error once, self-mixing DC and 1/f noise at the second stage).
#pragma once

#include <optional>

#include "dsp/rng.h"
#include "rf/adc.h"
#include "rf/agc.h"
#include "rf/amplifier.h"
#include "rf/filters.h"
#include "rf/mixer.h"
#include "rf/noise.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

struct DoubleConversionConfig {
  double sample_rate_hz = 80e6;  ///< oversampled complex baseband rate

  // --- LNA ---------------------------------------------------------------
  double lna_gain_db = 15.0;
  double lna_nf_db = 3.0;
  double lna_p1db_in_dbm = -20.0;         ///< the Fig. 6 sweep variable
  NonlinearityModel lna_model = NonlinearityModel::kRapp;
  double lna_am_pm_max_deg = 0.0;

  // --- Mixer stages (shared 2.6 GHz LO) -----------------------------------
  double mixer1_gain_db = 8.0;
  double mixer2_gain_db = 8.0;
  double lo_offset_hz = 0.0;              ///< LO frequency error
  PhaseNoiseSpec lo_phase_noise{};        ///< disabled by default
  double mixer1_image_rejection_db = 40.0;
  dsp::Cplx mixer2_dc_offset{3e-5, 2e-5}; ///< self-mixing product [sqrt(W)]
  double mixer2_flicker_power_dbm = -65.0;///< 1/f noise power (< -150 = off)
  double flicker_corner_hz = 200e3;

  // --- Interstage high-pass (DC / flicker removal) ------------------------
  std::size_t hpf_order = 2;
  double hpf_cutoff_hz = 120e3;

  // --- Channel-select Chebyshev lowpass (the Fig. 5 sweep) ----------------
  std::size_t bb_filter_order = 7;
  double bb_filter_ripple_db = 1.0;
  /// Nominal single-sided channel bandwidth [Hz]; the occupied 802.11a
  /// spectrum extends to +/-8.3 MHz.
  double bb_filter_edge_hz = 8.6e6;
  /// Multiplier on the nominal edge — the x-axis of Fig. 5.
  double bb_bandwidth_factor = 1.0;

  // --- AGC / ADC -----------------------------------------------------------
  /// AGC tuned to settle ~10-25 dB of level error within the 16 us PLCP
  /// preamble at 80 Msps and then hold quiet; residual slow drift is
  /// absorbed by the receiver's pilot common-gain correction.
  AgcConfig agc{.label = "bb_agc",
                .target_power_dbm = -3.0,
                .max_gain_db = 70.0,
                .min_gain_db = -30.0,
                .loop_gain = 0.01,
                .attack_db_per_sample = 0.1,
                .decay_db_per_sample = 0.1,
                .detector_time_const = 32.0,
                .initial_gain_db = 30.0,
                .lock_window_db = 2.0,
                .lock_count = 96,
                .unlock_window_db = 10.0};
  AdcConfig adc{.label = "adc", .bits = 10, .full_scale = 0.08, .enabled = true};

  /// Master switch for every stochastic impairment (thermal noise, flicker,
  /// phase noise). Turning it off reproduces the AMS Designer limitation of
  /// §5.1 — "the AMS designer does not support ... white_noise,
  /// flicker_noise" — which made co-simulated BER optimistic.
  bool noise_enabled = true;

  /// Fused-executor tile size in samples; 0 = auto (an L1-sized tile, see
  /// ChainExecutor::auto_tile_size). Any value produces bit-identical
  /// output — this only trades cache locality against per-tile overhead.
  std::size_t tile_size = 0;
};

class DoubleConversionReceiver : public RfBlock {
 public:
  DoubleConversionReceiver(const DoubleConversionConfig& cfg, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override { chain_.reset(); }
  std::string name() const override { return "double_conversion_rx"; }

  /// Reference block-at-a-time execution (see RfChain::process_blockwise_into)
  /// for the fused-vs-blockwise equivalence tests and benchmarks.
  void process_blockwise_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
    chain_.process_blockwise_into(in, out);
  }

  /// Fused-executor tile size (samples); 0 = auto.
  void set_tile_size(std::size_t t) { chain_.set_tile_size(t); }

  /// Re-fork the per-stage rngs from `rng` in construction order. After
  /// reset() + reseed(rng) a persistent receiver produces exactly the
  /// stream a DoubleConversionReceiver(cfg, rng) built from scratch would
  /// (the flicker calibration uses its own fixed seed, so skipping it
  /// changes nothing).
  void reseed(dsp::Rng rng);

  /// Width-W packet-lane path (see RfBlock): supported when every block in
  /// the cascade supports its current configuration.
  bool supports_lanes() const override { return chain_.supports_lanes(); }
  void begin_lanes(std::size_t nl) override { chain_.begin_lanes(nl); }
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override {
    chain_.process_tile_lanes(soa, n, nl);
  }

  /// Per-lane equivalent of reset() + reseed(rng): fork the per-stage rngs
  /// from `rng` into lane `lane`'s slots, same construction order. Call
  /// after begin_lanes(); lane l then reproduces a fresh scalar receiver
  /// reseeded with that lane's rng, bit for bit.
  void reseed_lanes(std::size_t lane, dsp::Rng rng);

  /// Optional per-lane unit-normal tapes for the two noisy stages (LNA
  /// thermal noise, mixer-2 flicker). Pass nullptr to draw from the lane
  /// rng; pass an empty tape to record; pass a complete tape to replay.
  void set_lane_tapes(std::size_t lane, dsp::RVec* lna_tape,
                      dsp::RVec* flicker_tape);

  const DoubleConversionConfig& config() const { return cfg_; }

  /// Stage handles for characterization and tests.
  Amplifier& lna() { return *lna_; }
  Mixer& mixer1() { return *mixer1_; }
  Mixer& mixer2() { return *mixer2_; }
  ChebyshevLowpass& channel_filter() { return *bb_lpf_; }
  Agc& agc() { return *agc_; }

  /// Total small-signal voltage gain up to the AGC input [dB].
  double front_end_gain_db() const;

 private:
  DoubleConversionConfig cfg_;
  RfChain chain_;
  Amplifier* lna_ = nullptr;
  Mixer* mixer1_ = nullptr;
  Mixer* mixer2_ = nullptr;
  FlickerNoiseSource* flicker_ = nullptr;
  ChebyshevLowpass* bb_lpf_ = nullptr;
  Agc* agc_ = nullptr;
};

}  // namespace wlansim::rf
