// RF filter blocks with physical (Hz) parameters: the Chebyshev
// channel-selection lowpass whose bandwidth the paper sweeps in Fig. 5 and
// the interstage DC-blocking high-pass of the double-conversion receiver.
#pragma once

#include "dsp/iir.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

/// Chebyshev-I lowpass channel-select filter. The SpectreRF rflib has no
/// wideband bandpass model (paper §4.2), so — exactly like the authors —
/// we realize channel selection with low/high-pass sections.
class ChebyshevLowpass : public RfBlock {
 public:
  ChebyshevLowpass(std::size_t order, double ripple_db, double edge_hz,
                   double sample_rate_hz, std::string label = "bb_lpf");

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override { filt_.reset(); }
  std::string name() const override { return label_; }

  double edge_hz() const { return edge_hz_; }

  /// Magnitude response at frequency f [Hz].
  double magnitude_at(double f_hz) const;

  bool supports_lanes() const override { return true; }
  void begin_lanes(std::size_t nl) override;
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

 private:
  std::string label_;
  double edge_hz_;
  double sample_rate_hz_;
  dsp::BiquadCascade filt_;
  dsp::RVec lane_state_;  ///< per-section s1/s2 rows (4*nl doubles each)
};

/// Butterworth high-pass DC block (removes self-mixing DC offsets and
/// flicker noise between the mixer stages).
class DcBlockHighpass : public RfBlock {
 public:
  DcBlockHighpass(std::size_t order, double cutoff_hz, double sample_rate_hz,
                  std::string label = "hpf");

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override { filt_.reset(); }
  std::string name() const override { return label_; }

  double cutoff_hz() const { return cutoff_hz_; }

  bool supports_lanes() const override { return true; }
  void begin_lanes(std::size_t nl) override;
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

 private:
  std::string label_;
  double cutoff_hz_;
  dsp::BiquadCascade filt_;
  dsp::RVec lane_state_;  ///< per-section s1/s2 rows (4*nl doubles each)
};

/// Butterworth lowpass (anti-alias / generic band limiting).
class ButterworthLowpass : public RfBlock {
 public:
  ButterworthLowpass(std::size_t order, double cutoff_hz,
                     double sample_rate_hz, std::string label = "lpf");

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) override;
  void process_tile(std::span<const dsp::Cplx> in,
                    std::span<dsp::Cplx> out) override;
  void reset() override { filt_.reset(); }
  std::string name() const override { return label_; }

  bool supports_lanes() const override { return true; }
  void begin_lanes(std::size_t nl) override;
  void process_tile_lanes(double* soa, std::size_t n, std::size_t nl) override;

 private:
  std::string label_;
  dsp::BiquadCascade filt_;
  dsp::RVec lane_state_;  ///< per-section s1/s2 rows (4*nl doubles each)
};

}  // namespace wlansim::rf
