// SpectreRF-style RF characterization analyses run on behavioral chains:
// single-tone gain, 1 dB compression point, two-tone IIP3, noise figure
// and filter selectivity. These replace the "Periodic Steady State /
// two tone" measurements the paper performs on the Spectre rflib models
// (§3.2, §4.2).
#pragma once

#include "dsp/types.h"
#include "rf/rfblock.h"

namespace wlansim::rf {

/// Complex amplitude of the tone at normalized frequency `f_norm` in `x`
/// (single-bin DFT projection; exact for integer-bin tones).
dsp::Cplx tone_amplitude(std::span<const dsp::Cplx> x, double f_norm);

/// Power [W] of the tone at `f_norm`.
double tone_power(std::span<const dsp::Cplx> x, double f_norm);

struct ToneTestConfig {
  double sample_rate_hz = 80e6;
  double tone_hz = 1e6;        ///< test-tone frequency
  double tone2_hz = 1.5e6;     ///< second tone for IIP3
  std::size_t num_samples = 16384;
  std::size_t settle_samples = 4096;  ///< discarded (filter transients)
};

/// Small-signal gain [dB] at `input_dbm` drive level.
double measure_gain_db(RfBlock& dut, const ToneTestConfig& cfg,
                       double input_dbm);

/// Input-referred 1 dB compression point [dBm], found by sweeping the
/// drive from `start_dbm` upward in `step_db` steps until the gain has
/// dropped 1 dB below the small-signal gain.
double measure_p1db_in_dbm(RfBlock& dut, const ToneTestConfig& cfg,
                           double start_dbm = -60.0, double stop_dbm = 20.0,
                           double step_db = 0.25);

/// Input-referred third-order intercept [dBm] from a two-tone test at
/// `input_dbm` per tone: IIP3 = Pin + (Pfund - Pim3) / 2.
double measure_iip3_dbm(RfBlock& dut, const ToneTestConfig& cfg,
                        double input_dbm);

/// Noise figure [dB]: drive with zeros, integrate output noise power over
/// the complex bandwidth, refer through the measured small-signal gain.
double measure_noise_figure_db(RfBlock& dut, const ToneTestConfig& cfg);

/// Rejection [dB] of a tone at `reject_hz` relative to one at `pass_hz`
/// (adjacent-channel selectivity of a filter chain).
double measure_rejection_db(RfBlock& dut, const ToneTestConfig& cfg,
                            double pass_hz, double reject_hz,
                            double input_dbm = -40.0);

}  // namespace wlansim::rf
