#include "rf/filters.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"

namespace wlansim::rf {

namespace {
double checked_norm(double f_hz, double fs_hz) {
  if (fs_hz <= 0.0) throw std::invalid_argument("RF filter: bad sample rate");
  const double fn = f_hz / fs_hz;
  if (fn <= 0.0 || fn >= 0.5)
    throw std::invalid_argument("RF filter: corner beyond Nyquist");
  return fn;
}

// Width-W form of BiquadCascade::process_into: gain pre-scale pass, then
// stage-outer lanes_biquad over all 2*nl rails with the section states
// carried in `state` (4*nl doubles per section, +0.0 after begin_lanes —
// exactly a reset() scalar cascade per lane).
void cascade_begin_lanes(const dsp::BiquadCascade& c, dsp::RVec& state,
                         std::size_t nl) {
  state.assign(c.num_sections() * 4 * nl, 0.0);
}

void cascade_lanes(const dsp::BiquadCascade& c, dsp::RVec& state, double* soa,
                   std::size_t n, std::size_t nl) {
  dsp::kernels::scale(soa, 2 * n * nl, c.gain());
  double* st = state.data();
  for (const dsp::Biquad& s : c.sections()) {
    dsp::kernels::lanes_biquad(soa, n, nl, s.b0, s.b1, s.b2, s.a1, s.a2, st);
    st += 4 * nl;
  }
}
}  // namespace

ChebyshevLowpass::ChebyshevLowpass(std::size_t order, double ripple_db,
                                   double edge_hz, double sample_rate_hz,
                                   std::string label)
    : label_(std::move(label)),
      edge_hz_(edge_hz),
      sample_rate_hz_(sample_rate_hz),
      filt_(dsp::design_chebyshev1_lowpass(
          order, ripple_db, checked_norm(edge_hz, sample_rate_hz))) {}

dsp::CVec ChebyshevLowpass::process(std::span<const dsp::Cplx> in) {
  return filt_.process(in);
}

void ChebyshevLowpass::process_into(std::span<const dsp::Cplx> in,
                                    dsp::CVec& out) {
  out.resize(in.size());
  filt_.process_into(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void ChebyshevLowpass::process_tile(std::span<const dsp::Cplx> in,
                                    std::span<dsp::Cplx> out) {
  filt_.process_into(in, out);
}

void ChebyshevLowpass::begin_lanes(std::size_t nl) {
  cascade_begin_lanes(filt_, lane_state_, nl);
}

void ChebyshevLowpass::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  cascade_lanes(filt_, lane_state_, soa, n, nl);
}

double ChebyshevLowpass::magnitude_at(double f_hz) const {
  return std::abs(filt_.response(f_hz / sample_rate_hz_));
}

DcBlockHighpass::DcBlockHighpass(std::size_t order, double cutoff_hz,
                                 double sample_rate_hz, std::string label)
    : label_(std::move(label)),
      cutoff_hz_(cutoff_hz),
      filt_(dsp::design_butterworth_highpass(
          order, checked_norm(cutoff_hz, sample_rate_hz))) {}

dsp::CVec DcBlockHighpass::process(std::span<const dsp::Cplx> in) {
  return filt_.process(in);
}

void DcBlockHighpass::process_into(std::span<const dsp::Cplx> in,
                                   dsp::CVec& out) {
  out.resize(in.size());
  filt_.process_into(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void DcBlockHighpass::process_tile(std::span<const dsp::Cplx> in,
                                   std::span<dsp::Cplx> out) {
  filt_.process_into(in, out);
}

void DcBlockHighpass::begin_lanes(std::size_t nl) {
  cascade_begin_lanes(filt_, lane_state_, nl);
}

void DcBlockHighpass::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  cascade_lanes(filt_, lane_state_, soa, n, nl);
}

ButterworthLowpass::ButterworthLowpass(std::size_t order, double cutoff_hz,
                                       double sample_rate_hz, std::string label)
    : label_(std::move(label)),
      filt_(dsp::design_butterworth_lowpass(
          order, checked_norm(cutoff_hz, sample_rate_hz))) {}

dsp::CVec ButterworthLowpass::process(std::span<const dsp::Cplx> in) {
  return filt_.process(in);
}

void ButterworthLowpass::process_into(std::span<const dsp::Cplx> in,
                                      dsp::CVec& out) {
  out.resize(in.size());
  filt_.process_into(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void ButterworthLowpass::process_tile(std::span<const dsp::Cplx> in,
                                      std::span<dsp::Cplx> out) {
  filt_.process_into(in, out);
}

void ButterworthLowpass::begin_lanes(std::size_t nl) {
  cascade_begin_lanes(filt_, lane_state_, nl);
}

void ButterworthLowpass::process_tile_lanes(double* soa, std::size_t n, std::size_t nl) {
  cascade_lanes(filt_, lane_state_, soa, n, nl);
}

}  // namespace wlansim::rf
