#include "rf/amplifier.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::rf {

namespace {
/// Gain drop of 1 dB expressed as (1 - 10^{-1/20}) = 0.10875...
const double kComp1dB = 1.0 - std::pow(10.0, -1.0 / 20.0);
}  // namespace

Amplifier::Amplifier(const AmplifierConfig& cfg, double sample_rate_hz,
                     dsp::Rng rng)
    : cfg_(cfg), rng_(rng) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("Amplifier: bad sample rate");
  lin_gain_ = std::pow(10.0, cfg_.gain_db / 20.0);

  a1db_ = std::sqrt(dsp::dbm_to_watts(cfg_.p1db_in_dbm));

  // Rapp: solve for Vsat so the gain is 1 dB compressed at a = a1db.
  const double p = cfg_.rapp_smoothness;
  if (p <= 0.0) throw std::invalid_argument("Amplifier: bad Rapp smoothness");
  const double t = std::pow(10.0, p / 10.0) - 1.0;
  vsat_rapp_ = lin_gain_ * a1db_ / std::pow(t, 1.0 / (2.0 * p));

  // Envelope-domain cubic y = g (a + c3 a^3): 1 dB compression at a1db
  // gives c3 = -kComp1dB / a1db^2; clip where the polynomial peaks.
  cubic_a3_ = -kComp1dB / (a1db_ * a1db_);
  clip_in_ = a1db_ / std::sqrt(3.0 * kComp1dB);

  const double f = std::pow(10.0, cfg_.noise_figure_db / 10.0);
  noise_power_ = cfg_.noise_enabled && cfg_.noise_figure_db > 0.0
                     ? dsp::kBoltzmann * dsp::kT0 * sample_rate_hz * (f - 1.0)
                     : 0.0;
}

double Amplifier::am_am(double a) const {
  switch (cfg_.model) {
    case NonlinearityModel::kLinear:
      return lin_gain_ * a;
    case NonlinearityModel::kRapp: {
      const double p = cfg_.rapp_smoothness;
      const double num = lin_gain_ * a;
      return num / std::pow(1.0 + std::pow(num / vsat_rapp_, 2.0 * p),
                            1.0 / (2.0 * p));
    }
    case NonlinearityModel::kClippedCubic: {
      const double ac = std::min(a, clip_in_);
      return lin_gain_ * (ac + cubic_a3_ * ac * ac * ac);
    }
  }
  throw std::logic_error("Amplifier: bad model");
}

double Amplifier::am_pm(double a) const {
  if (cfg_.am_pm_max_deg == 0.0) return 0.0;
  const double max_rad = cfg_.am_pm_max_deg * dsp::kPi / 180.0;
  const double r = (a * a) / (a1db_ * a1db_);
  return max_rad * r / (1.0 + r);  // quadratic onset, saturating
}

dsp::CVec Amplifier::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Amplifier::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  const std::size_t n = in.size();
  // Split the sequential part (the rng-ordered noise draws) from the
  // element-wise envelope math, and skip the AM/PM rotation entirely when
  // it is configured off: x*g*{cos 0, sin 0} is x*g.
  const dsp::Cplx* src = in.data();
  if (noise_power_ > 0.0) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = in[i] + rng_.cgaussian(noise_power_);
    src = out.data();
  }
  const bool pm_active = cfg_.am_pm_max_deg != 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const dsp::Cplx x = src[i];
    const double a = std::abs(x);
    if (a <= 0.0) {
      out[i] = dsp::Cplx{0.0, 0.0};
      continue;
    }
    const double g = am_am(a) / a;
    if (pm_active) {
      const double phi = am_pm(a);
      out[i] = x * g * dsp::Cplx{std::cos(phi), std::sin(phi)};
    } else {
      out[i] = x * g;
    }
  }
}

}  // namespace wlansim::rf
