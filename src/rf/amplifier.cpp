#include "rf/amplifier.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"
#include "rf/lane_tape.h"

namespace wlansim::rf {

namespace {
/// Gain drop of 1 dB expressed as (1 - 10^{-1/20}) = 0.10875...
const double kComp1dB = 1.0 - std::pow(10.0, -1.0 / 20.0);
}  // namespace

Amplifier::Amplifier(const AmplifierConfig& cfg, double sample_rate_hz,
                     dsp::Rng rng)
    : cfg_(cfg), rng_(rng) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("Amplifier: bad sample rate");
  lin_gain_ = std::pow(10.0, cfg_.gain_db / 20.0);

  a1db_ = std::sqrt(dsp::dbm_to_watts(cfg_.p1db_in_dbm));

  // Rapp: solve for Vsat so the gain is 1 dB compressed at a = a1db.
  const double p = cfg_.rapp_smoothness;
  if (p <= 0.0) throw std::invalid_argument("Amplifier: bad Rapp smoothness");
  const double t = std::pow(10.0, p / 10.0) - 1.0;
  vsat_rapp_ = lin_gain_ * a1db_ / std::pow(t, 1.0 / (2.0 * p));
  lin_gain2_ = lin_gain_ * lin_gain_;
  inv_vsat2_ = 1.0 / (vsat_rapp_ * vsat_rapp_);
  inv_2p_ = 1.0 / (2.0 * p);
  rapp_is_p2_ = (p == 2.0);

  // Envelope-domain cubic y = g (a + c3 a^3): 1 dB compression at a1db
  // gives c3 = -kComp1dB / a1db^2; clip where the polynomial peaks.
  cubic_a3_ = -kComp1dB / (a1db_ * a1db_);
  clip_in_ = a1db_ / std::sqrt(3.0 * kComp1dB);

  const double f = std::pow(10.0, cfg_.noise_figure_db / 10.0);
  noise_power_ = cfg_.noise_enabled && cfg_.noise_figure_db > 0.0
                     ? dsp::kBoltzmann * dsp::kT0 * sample_rate_hz * (f - 1.0)
                     : 0.0;
}

double Amplifier::rapp_gain_from_norm(double n2) const {
  // (lin*a / vsat)^(2p) == (lin^2 a^2 / vsat^2)^p, so the curve needs only
  // the envelope squared; at p == 2 both pow() collapse to nested sqrt().
  const double r2 = lin_gain2_ * n2 * inv_vsat2_;
  if (rapp_is_p2_) return lin_gain_ / std::sqrt(std::sqrt(1.0 + r2 * r2));
  return lin_gain_ /
         std::pow(1.0 + std::pow(r2, cfg_.rapp_smoothness), inv_2p_);
}

double Amplifier::am_am(double a) const {
  switch (cfg_.model) {
    case NonlinearityModel::kLinear:
      return lin_gain_ * a;
    case NonlinearityModel::kRapp:
      return a * rapp_gain_from_norm(a * a);
    case NonlinearityModel::kClippedCubic: {
      const double ac = std::min(a, clip_in_);
      return lin_gain_ * (ac + cubic_a3_ * ac * ac * ac);
    }
  }
  throw std::logic_error("Amplifier: bad model");
}

double Amplifier::am_pm(double a) const {
  if (cfg_.am_pm_max_deg == 0.0) return 0.0;
  const double max_rad = cfg_.am_pm_max_deg * dsp::kPi / 180.0;
  const double r = (a * a) / (a1db_ * a1db_);
  return max_rad * r / (1.0 + r);  // quadratic onset, saturating
}

dsp::CVec Amplifier::process(std::span<const dsp::Cplx> in) {
  dsp::CVec out;
  process_into(in, out);
  return out;
}

void Amplifier::process_into(std::span<const dsp::Cplx> in, dsp::CVec& out) {
  out.resize(in.size());
  process_tile(in, std::span<dsp::Cplx>(out.data(), out.size()));
}

void Amplifier::process_tile(std::span<const dsp::Cplx> in,
                             std::span<dsp::Cplx> out) {
  const std::size_t n = in.size();
  // Split the sequential part (the rng-ordered noise draws) from the
  // element-wise envelope math, and skip the AM/PM rotation entirely when
  // it is configured off: x*g*{cos 0, sin 0} is x*g.
  const dsp::Cplx* src = in.data();
  dsp::Cplx* dst = out.data();
  if (noise_power_ > 0.0) {
    // Bulk form of dst[i] = src[i] + cgaussian(p): fill the unit normals
    // first, then add the scaled pairs — identical stream, identical
    // arithmetic (cgaussian evaluates s*u per rail with s = sqrt(p/2)).
    if (dst != src) std::copy(src, src + n, dst);
    noise_scratch_.resize(2 * n);
    rng_.fill_gaussian(noise_scratch_.data(), noise_scratch_.size());
    const double s = std::sqrt(noise_power_ / 2.0);
    dsp::kernels::add_scaled_pairs(dst, n, s, noise_scratch_.data());
    src = dst;
  }
  const bool pm_active = cfg_.am_pm_max_deg != 0.0;
  if (!pm_active && cfg_.model == NonlinearityModel::kRapp) {
    // Norm-domain Rapp: no |x| (hypot) and no pow per sample. r2 == 0 gives
    // the small-signal gain, so exact zeros need no special case.
    for (std::size_t i = 0; i < n; ++i) {
      const dsp::Cplx x = src[i];
      const double n2 = x.real() * x.real() + x.imag() * x.imag();
      dst[i] = x * rapp_gain_from_norm(n2);
    }
    return;
  }
  if (!pm_active && cfg_.model == NonlinearityModel::kLinear) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] * lin_gain_;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const dsp::Cplx x = src[i];
    const double a = std::abs(x);
    if (a <= 0.0) {
      dst[i] = dsp::Cplx{0.0, 0.0};
      continue;
    }
    const double g = am_am(a) / a;
    if (pm_active) {
      const double phi = am_pm(a);
      dst[i] = x * g * dsp::Cplx{std::cos(phi), std::sin(phi)};
    } else {
      dst[i] = x * g;
    }
  }
}

void Amplifier::begin_lanes(std::size_t nl) {
  lane_rng_.assign(nl, dsp::Rng{});
  lane_tape_.assign(nl, nullptr);
  lane_tape_pos_.assign(nl, 0);
}

void Amplifier::process_tile_lanes(double* soa, std::size_t n,
                                   std::size_t nl) {
  if (noise_power_ > 0.0) {
    // Per lane the exact bulk noise add of process_tile: 2n unit normals in
    // rng order (or their taped recording), then dst += s * u per rail —
    // gathered first so one fused row-major pass adds all lanes at once.
    const double s = std::sqrt(noise_power_ / 2.0);
    noise_scratch_.resize(2 * n * nl);
    lane_units_.resize(nl);
    for (std::size_t l = 0; l < nl; ++l) {
      lane_units_[l] =
          lane_tape_units_into(lane_tape_[l], lane_tape_pos_[l], lane_rng_[l],
                               noise_scratch_.data() + l * 2 * n, 2 * n);
    }
    dsp::kernels::lanes_add_scaled_pairs_multi(soa, n, nl, s,
                                               lane_units_.data());
  }
  if (cfg_.model == NonlinearityModel::kRapp) {
    dsp::kernels::lanes_amp_rapp_p2(soa, n, nl, lin_gain_, lin_gain2_,
                                    inv_vsat2_);
  } else {
    // Linear: rails *= g, componentwise identical to x * lin_gain_.
    dsp::kernels::scale(soa, 2 * n * nl, lin_gain_);
  }
}

}  // namespace wlansim::rf
