#include "core/cliargs.h"

#include <stdexcept>

#include "core/surrogate.h"

namespace wlansim::core {

CliArgs CliArgs::parse(int argc, const char* const* argv, int start) {
  CliArgs out;
  int i = start;
  while (i < argc) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || key.size() < 3)
      throw std::invalid_argument("expected --key, got '" + key + "'");
    const std::string name = key.substr(2);
    if (out.kv_.count(name))
      throw std::invalid_argument("duplicate option --" + name);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out.kv_[name] = argv[i + 1];
      i += 2;
    } else {
      out.kv_[name] = "";  // boolean flag
      ++i;
    }
  }
  return out;
}

bool CliArgs::has(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  used_.insert(key);
  return true;
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_.insert(key);
  return it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_.insert(key);
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

long CliArgs::get_long(const std::string& key, long fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  used_.insert(key);
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (!used_.count(k)) out.push_back(k);
  }
  return out;
}

std::optional<sim::StoppingRule> stopping_rule_from_args(const CliArgs& args) {
  if (!args.has("target-ci") && !args.has("min-errors") &&
      !args.has("max-packets") && !args.has("min-packets")) {
    return std::nullopt;
  }
  sim::StoppingRule rule;
  rule.target_rel_ci = args.get_double("target-ci", rule.target_rel_ci);
  rule.min_errors = static_cast<std::size_t>(args.get_long("min-errors", 100));
  rule.min_packets = static_cast<std::size_t>(args.get_long("min-packets", 8));
  rule.max_packets =
      static_cast<std::size_t>(args.get_long("max-packets", 10000));
  return rule;
}

SurrogateOptions surrogate_options_from_args(
    const CliArgs& args, sim::SurrogateAxis axis,
    const std::optional<sim::StoppingRule>& rule, std::size_t threads) {
  SurrogateOptions opts;
  opts.axis = axis;
  if (rule.has_value()) opts.rule = *rule;
  const std::string dir = args.get_string("calib-dir", "");
  if (!dir.empty()) opts.store_dir = dir;
  opts.threads = threads;
  return opts;
}

}  // namespace wlansim::core
