// Content fingerprints of a LinkConfig — byte-exact serializations of the
// fields that influence a measurement, used as cache keys at three scopes:
//
//   * link_fingerprint      — everything run_packet consumes. Keys the
//                             per-worker WlanLink cache (core/parallel).
//   * tx_scene_fingerprint  — the noise-independent TX half only. Two
//                             configs with equal TX fingerprints build
//                             bit-identical pre-noise scenes for every
//                             packet index, so a sweep over them shares
//                             one TxScene per packet (core/parallel).
//   * surrogate_fingerprint — everything EXCEPT the swept axis (SNR or
//                             receive power). Keys a BER-vs-axis
//                             calibration curve in the on-disk
//                             content-addressed store (core/surrogate):
//                             configs that differ only in the axis value
//                             share one curve.
//
// All three serialize field by field (never whole structs), so struct
// padding bytes cannot poison a comparison, and return "" when the config
// is not fingerprintable (callable members such as custom_rf).
#pragma once

#include <string>

#include "core/linkconfig.h"
#include "sim/ber_surrogate.h"

namespace wlansim::core {

/// Byte-exact serialization of every LinkConfig field that influences
/// run_packet. Returns "" when the config is not fingerprintable.
std::string link_fingerprint(const LinkConfig& c);

/// Byte-exact serialization of the LinkConfig fields that shape a packet's
/// noise-independent TX scene: everything WlanLink consumes up to (and
/// including) the interferer, plus the fields that decide the packet path.
/// Noise-level fields (snr_db, antenna noise density), the RF front-end,
/// and the receiver are deliberately absent — those act after the scene
/// snapshot. Returns "" when not fingerprintable.
std::string tx_scene_fingerprint(const LinkConfig& c);

/// The calibration-curve key: an axis tag plus link_fingerprint with the
/// axis field canonicalized away, so every config of a sweep along that
/// axis maps to the same curve. Everything else — rate, PSDU size, RF
/// front-end parameters, receiver options, and the seed — stays in the
/// key: any field that could move the BER curve forces its own
/// calibration. Returns "" when the config is not fingerprintable or the
/// axis value is absent (e.g. axis kSnrDb with snr_db == nullopt).
std::string surrogate_fingerprint(const LinkConfig& c, sim::SurrogateAxis axis);

}  // namespace wlansim::core
