// Multi-threaded BER measurement. Packet i's randomness depends only on
// (seed, i), so partitioning packets across worker threads reproduces the
// serial result bit-for-bit — parameter sweeps get a near-linear speedup
// without giving up reproducibility.
//
// Work runs on the process-wide persistent ThreadPool; each worker thread
// caches its WlanLink between calls (keyed by a config fingerprint), so a
// sweep re-running the same configuration pays neither thread creation nor
// link construction per point.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/link.h"
#include "sim/sweep.h"

namespace wlansim::core {

/// Run `num_packets` through `cfg` using `threads` workers (0 = the shared
/// persistent pool at hardware concurrency; an explicit count runs on a
/// dedicated pool of that size). The thread count never exceeds one worker
/// per 8-packet chunk. Results are identical to
/// WlanLink(cfg).run_ber(num_packets) bit for bit, including the EVM
/// average's floating-point accumulation order.
BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads = 0);

struct SweepOptions {
  /// Worker count, run_ber_parallel semantics (0 = shared pool).
  std::size_t threads = 0;
  /// Reuse each packet's noise-independent TX scene across sweep points
  /// (see WlanLink::run_packet_memo). Applies when every config shares the
  /// same TX-side fingerprint — the usual SNR waterfall — and is bit-exact:
  /// results are identical to memoize_tx = false either way.
  bool memoize_tx = true;
  /// Lane width for the lockstep packet waves (WlanLink::run_packet_wave):
  /// each ≤8-packet work chunk runs as one width-`count` SoA wave through
  /// noise + RF + decimation. Purely a throughput knob — every lane is
  /// bit-identical to the scalar path, so results never depend on it.
  /// 1 (or 0) disables batching and runs the scalar reference path.
  std::size_t batch_width = 8;
};

/// Measure every configuration of a sweep. Results are bit-identical to
/// calling run_ber_parallel(configs[k], num_packets, threads) for each k.
///
/// When the configs differ only in noise level (SNR / antenna noise
/// density / RF front-end fields), the sweep schedules (point, packet
/// chunk) pairs jointly: a worker runs one chunk of packets across all
/// sweep points before moving on, building each packet's TX scene once and
/// replaying it at the other points.
std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          const SweepOptions& opts = {});

/// Back-compat overload: explicit worker count, TX memoization on.
std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads);

// ---------------------------------------------------------------------------
// Adaptive Monte-Carlo engine (sequential early stopping)
// ---------------------------------------------------------------------------
//
// A fixed packets-per-point budget spends almost all of its work where it
// buys nothing: the low-SNR points of a waterfall reach a tight BER
// confidence interval within a few dozen packets, while the budget has to
// be sized for the rare-error tail. The adaptive engine instead runs every
// point until sim::StoppingRule is satisfied (target relative CI + error
// floor) or the packet cap is hit, and lets points that converge early
// release their workers to the deep-SNR stragglers (cross-point work
// stealing over the shared chunk queue).
//
// Determinism contract — the results are a pure function of (configs,
// rule), independent of thread count, scheduling order, and wave sizing:
//   1. every packet's randomness derives from the counter-based seed
//      packet_seed(cfg.seed, packet_index) (see core/link.h), so per-packet
//      results are schedule-independent;
//   2. the stopping rule is evaluated on the in-order prefix of packet
//      results at fixed boundaries (every 8 packets, plus the cap), and the
//      stop index is the EARLIEST boundary whose prefix satisfies the rule
//      — packets the scheduler speculatively ran beyond it are discarded
//      deterministically;
//   3. each point's result is the packet-order reduction of its prefix
//      [0, stop index), the exact arithmetic of WlanLink::run_ber.
// With the CI test disabled (rule.target_rel_ci == 0) every point runs
// exactly rule.max_packets and the statistics are bit-identical to
// sweep_ber_parallel(configs, rule.max_packets, ...).

/// Adaptive single-point measurement: run packets until `rule` stops.
/// `threads` has run_ber_parallel semantics (0 = shared persistent pool).
BerResult run_ber_adaptive(const LinkConfig& cfg, const sim::StoppingRule& rule,
                           std::size_t threads = 0);

/// Adaptive sweep: every point runs until `rule` stops it; active points
/// share one work queue, so early-converging points donate their workers to
/// the stragglers. TX-scene memoization (opts.memoize_tx) composes with the
/// adaptive schedule whenever the configs share a TX fingerprint. Each
/// BerResult carries the streaming statistics (packets run, errors, CI
/// half-width, wall time to the stopping decision, converged flag).
std::vector<BerResult> sweep_ber_adaptive(std::span<const LinkConfig> configs,
                                          const sim::StoppingRule& rule,
                                          const SweepOptions& opts = {});

// ---------------------------------------------------------------------------
// Resumable adaptive sweeps (checkpoint/restore at the stop quantum)
// ---------------------------------------------------------------------------
//
// The adaptive engine evaluates its stopping rule on in-order packet
// prefixes at fixed 8-packet boundaries, and every packet is a pure
// function of (config seed, packet index) — packet_seed's counter-based
// contract. A point's state at any boundary therefore compresses to the
// streaming reduction of its prefix: restart the engine with that state
// and it schedules, folds, and stops exactly as the uninterrupted run
// would from that boundary on. SweepPointProgress is that state, and
// sweep_ber_adaptive_resumable is the entry point a service layer uses to
// checkpoint million-point studies across process restarts (the file
// format lives in service/checkpoint.h; core only defines the state).

/// The boundary quantum [packets] at which adaptive progress is
/// evaluated, checkpointable, and resumable.
inline constexpr std::size_t kAdaptiveStopQuantum = 8;

/// Serializable progress of one adaptive sweep point: the streaming
/// packet-order reduction of the evaluated prefix. For a still-running
/// point, `packets` is quantum-aligned; a stopped point's `packets` is its
/// final stop index. The RNG needs no state of its own — counter-based
/// seeding makes `packets` the complete "rng counter state".
struct SweepPointProgress {
  std::uint64_t packets = 0;        ///< evaluated in-order prefix length
  std::uint64_t packets_lost = 0;
  std::uint64_t packet_errors = 0;
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  double evm_sum = 0.0;             ///< running EVM fold (exact packet order)
  std::uint64_t evm_packets = 0;    ///< decoded packets in the fold
  bool stopped = false;
  bool converged = false;           ///< rule met (vs. ran into the cap)
};

/// Resume state + per-wave observation hook for
/// sweep_ber_adaptive_resumable.
struct AdaptiveResume {
  /// In: the state to resume from — either empty (cold start) or exactly
  /// one entry per config, each a state a previous run reported (running
  /// entries quantum-aligned and below the cap). Out: the final state.
  /// Invalid resume states throw std::invalid_argument.
  std::vector<SweepPointProgress> progress;

  /// Called after every wave's stopping scan with the current progress
  /// (quantum-boundary state, safe to checkpoint). Return false to preempt:
  /// the sweep stops scheduling, `progress` keeps the preempted state for a
  /// later resume, and the returned results carry the partial prefixes
  /// (un-stopped points report converged == false). Null = never preempt.
  std::function<bool(std::span<const SweepPointProgress>)> on_wave;

  /// Out: true when on_wave preempted the sweep before every point stopped.
  bool preempted = false;
};

/// sweep_ber_adaptive with checkpoint/resume plumbing. With `resume`
/// null (or default-constructed) this IS sweep_ber_adaptive; with a
/// progress vector from an earlier (preempted) run it continues from that
/// boundary, and the completed results are bit-identical to the
/// uninterrupted run's for every field except wall_seconds (which measures
/// this call, not the sum of attempts).
std::vector<BerResult> sweep_ber_adaptive_resumable(
    std::span<const LinkConfig> configs, const sim::StoppingRule& rule,
    const SweepOptions& opts, AdaptiveResume* resume);

}  // namespace wlansim::core
