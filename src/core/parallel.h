// Multi-threaded BER measurement. Packet i's randomness depends only on
// (seed, i), so partitioning packets across worker threads reproduces the
// serial result bit-for-bit — parameter sweeps get a near-linear speedup
// without giving up reproducibility.
#pragma once

#include "core/link.h"

namespace wlansim::core {

/// Run `num_packets` through `cfg` using `threads` workers (0 = hardware
/// concurrency). Identical results to WlanLink(cfg).run_ber(num_packets).
BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads = 0);

}  // namespace wlansim::core
