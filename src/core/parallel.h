// Multi-threaded BER measurement. Packet i's randomness depends only on
// (seed, i), so partitioning packets across worker threads reproduces the
// serial result bit-for-bit — parameter sweeps get a near-linear speedup
// without giving up reproducibility.
//
// Work runs on the process-wide persistent ThreadPool; each worker thread
// caches its WlanLink between calls (keyed by a config fingerprint), so a
// sweep re-running the same configuration pays neither thread creation nor
// link construction per point.
#pragma once

#include <span>
#include <vector>

#include "core/link.h"

namespace wlansim::core {

/// Run `num_packets` through `cfg` using `threads` workers (0 = the shared
/// persistent pool at hardware concurrency; an explicit count runs on a
/// dedicated pool of that size). The thread count never exceeds one worker
/// per 8-packet chunk. Results are identical to
/// WlanLink(cfg).run_ber(num_packets) bit for bit, including the EVM
/// average's floating-point accumulation order.
BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads = 0);

struct SweepOptions {
  /// Worker count, run_ber_parallel semantics (0 = shared pool).
  std::size_t threads = 0;
  /// Reuse each packet's noise-independent TX scene across sweep points
  /// (see WlanLink::run_packet_memo). Applies when every config shares the
  /// same TX-side fingerprint — the usual SNR waterfall — and is bit-exact:
  /// results are identical to memoize_tx = false either way.
  bool memoize_tx = true;
};

/// Measure every configuration of a sweep. Results are bit-identical to
/// calling run_ber_parallel(configs[k], num_packets, threads) for each k.
///
/// When the configs differ only in noise level (SNR / antenna noise
/// density / RF front-end fields), the sweep schedules (point, packet
/// chunk) pairs jointly: a worker runs one chunk of packets across all
/// sweep points before moving on, building each packet's TX scene once and
/// replaying it at the other points.
std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          const SweepOptions& opts = {});

/// Back-compat overload: explicit worker count, TX memoization on.
std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads);

}  // namespace wlansim::core
