// Stop-and-wait ARQ over the PHY link: frames carry real MPDU framing
// with CRC-32 FCS, failed frames are retransmitted up to a retry limit,
// and goodput is accounted against air time — turning the paper's Fig. 1
// "MAC PDU stream" into an end-to-end throughput measurement. Rate
// adaptation questions ("which rate maximizes goodput at this SNR?")
// become directly answerable.
#pragma once

#include "core/link.h"
#include "phy80211a/mpdu.h"

namespace wlansim::core {

struct ArqConfig {
  std::size_t payload_bytes = 500;  ///< LLC payload per frame
  std::size_t num_frames = 20;      ///< distinct frames to deliver
  std::size_t max_retries = 3;      ///< retransmissions per frame
  /// Inter-frame overhead charged per transmission attempt [s]: DIFS+SIFS+
  /// ACK at the base rate, a fixed MAC-level cost.
  double per_attempt_overhead_s = 60e-6;
};

struct ArqResult {
  std::size_t frames_offered = 0;
  std::size_t frames_delivered = 0;
  std::size_t attempts = 0;           ///< total transmissions incl. retries
  std::size_t fcs_failures = 0;       ///< decoded but FCS-rejected
  std::size_t phy_losses = 0;         ///< header/sync failures
  double air_time_s = 0.0;            ///< frames + overhead on air

  double delivery_ratio() const {
    return frames_offered ? static_cast<double>(frames_delivered) /
                                static_cast<double>(frames_offered)
                          : 0.0;
  }
  /// Delivered LLC payload bits per second of air time.
  double goodput_bps(std::size_t payload_bytes) const {
    return air_time_s > 0.0 ? 8.0 * static_cast<double>(payload_bytes) *
                                  static_cast<double>(frames_delivered) /
                                  air_time_s
                            : 0.0;
  }
};

/// Run stop-and-wait ARQ traffic over the configured link.
ArqResult run_arq(const LinkConfig& link_cfg, const ArqConfig& arq_cfg);

/// Air time of one PPDU at `rate` carrying `psdu_bytes` [s]
/// (preamble + SIGNAL + data symbols at 4 us each).
double ppdu_airtime_s(phy::Rate rate, std::size_t psdu_bytes);

}  // namespace wlansim::core
