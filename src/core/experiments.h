// Canned experiments reproducing every table and figure of the paper's
// evaluation. Each returns raw data; the bench binaries print the series.
//
// Index (see DESIGN.md):
//   FIG4     - OFDM spectrum with adjacent channel
//   FIG5     - BER vs. Chebyshev baseband filter bandwidth
//   FIG6     - BER vs. LNA compression point (adjacent / non-adjacent)
//   TAB2     - simulation time, system-level vs. co-simulation
//   EVM      - error vector magnitude with ideal receiver (§5.2)
//   NOISEGAP - co-simulation optimistic BER without noise functions (§5.1)
#pragma once

#include <vector>

#include "core/link.h"
#include "dsp/spectrum.h"
#include "sim/sweep.h"

namespace wlansim::core {

/// Baseline link used by the experiments: 24 Mbps, 200-byte packets,
/// double-conversion front-end at 4x oversampling, 25 dB SNR.
LinkConfig default_link_config();

// ---------------------------------------------------------------------------
// FIG4 — "OFDM signal and adjacent channel"
// ---------------------------------------------------------------------------
struct SpectrumResult {
  dsp::PsdEstimate psd;          ///< of the RF front-end input
  double sample_rate_hz = 0.0;
  double wanted_power_dbm = 0.0;    ///< integrated over +/-10 MHz around 0
  double adjacent_power_dbm = 0.0;  ///< integrated around the offset
  double offset_hz = 0.0;
};
SpectrumResult experiment_fig4_spectrum(LinkConfig base);

// ---------------------------------------------------------------------------
// FIG5 — "BER vs filter bandwidth (with present adjacent channel)"
// ---------------------------------------------------------------------------
/// Sweeps the Chebyshev channel-select passband-edge multiplier. Columns:
/// "ber", "per", "evm".
sim::SweepResult experiment_fig5_filter_bandwidth(
    LinkConfig base, const std::vector<double>& bandwidth_factors,
    std::size_t packets_per_point);

// ---------------------------------------------------------------------------
// FIG6 — "BER vs compression point of first LNA"
// ---------------------------------------------------------------------------
/// Sweeps the LNA input-referred P1dB. Columns: "ber_adjacent",
/// "ber_nonadjacent" (adjacent = +16 dB at +20 MHz, non-adjacent = +32 dB
/// at +40 MHz, per the paper's §2.2 receiver requirements).
sim::SweepResult experiment_fig6_compression(
    LinkConfig base, const std::vector<double>& p1db_dbm,
    std::size_t packets_per_point);

/// §4.1 companion sweep: BER vs LNA IIP3 (clipped-cubic model, adjacent
/// channel present). Columns: "ber", "evm".
sim::SweepResult experiment_ip3_sweep(LinkConfig base,
                                      const std::vector<double>& iip3_dbm,
                                      std::size_t packets_per_point);

// ---------------------------------------------------------------------------
// ADAPTIVE — sequential early-stopping BER waterfall (Figs. 5-7 cost shape)
// ---------------------------------------------------------------------------
/// BER vs SNR on the adaptive Monte-Carlo engine: every point runs until
/// `rule` is satisfied (or its packet cap), with converged points donating
/// their workers to the deep-SNR stragglers. Columns: "ber", "per", "evm",
/// "packets", "bit_errors", "ci_rel", "converged", "wall_s". Results are
/// deterministic for any `threads` (see core/parallel.h).
sim::SweepResult experiment_ber_waterfall_adaptive(
    LinkConfig base, const std::vector<double>& snrs_db,
    const sim::StoppingRule& rule, std::size_t threads = 0);

// ---------------------------------------------------------------------------
// TAB2 — "Comparison of simulation time"
// ---------------------------------------------------------------------------
struct TimingRow {
  std::size_t packets = 0;
  double system_seconds = 0.0;  ///< SPW-style system-level run
  double cosim_seconds = 0.0;   ///< AMS-style co-simulation run
  double ratio = 0.0;           ///< cosim / system (paper: 30-40x)
};
std::vector<TimingRow> experiment_table2_timing(
    LinkConfig base, const std::vector<std::size_t>& packet_counts);

// ---------------------------------------------------------------------------
// EVM (§5.2) — ideal-receiver constellation quality vs. drive level
// ---------------------------------------------------------------------------
/// Sweeps the received power toward the LNA compression point. Columns:
/// "evm_percent", "evm_db", "ber" for each rate requested.
sim::SweepResult experiment_evm_vs_power(LinkConfig base,
                                         const std::vector<double>& rx_dbm,
                                         std::size_t packets_per_point);

// ---------------------------------------------------------------------------
// NOISEGAP (§5.1) — missing noise functions make co-simulated BER optimistic
// ---------------------------------------------------------------------------
struct NoiseGapResult {
  double ber_system = 0.0;        ///< system-level model, noise on (SPW)
  double ber_cosim_nonoise = 0.0; ///< co-sim, noise functions unsupported
  double ber_cosim_fixed = 0.0;   ///< co-sim with the random-function fix
  double evm_system = 0.0;
  double evm_cosim_nonoise = 0.0;
};
NoiseGapResult experiment_noise_gap(LinkConfig base,
                                    std::size_t packets_per_point);

}  // namespace wlansim::core
