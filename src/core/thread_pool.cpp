#include "core/thread_pool.h"

#include <algorithm>

namespace wlansim::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  size_ = threads;
  workers_.reserve(size_ > 0 ? size_ - 1 : 0);
  // Worker 0 is the calling thread; spawn the rest.
  for (std::size_t w = 1; w < size_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

void ThreadPool::drain(std::size_t worker) {
  for (;;) {
    std::size_t begin, end;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= n_) return;
      begin = next_;
      end = std::min(n_, begin + chunk_);
      next_ = end;
    }
    for (std::size_t i = begin; i < end; ++i) (*fn_)(worker, i);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return stop_ || (fn_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      ++active_;
    }
    drain(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    // notify_all: both the submitting caller (waiting on active_ == 0) and a
    // shutdown() drainer (waiting on in_flight_ == false) sleep on cv_done_.
    cv_done_.notify_all();
  }
}

bool ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunk == 0) chunk = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return false;
    if (n == 0) return true;
    in_flight_ = true;
    if (size_ > 1) {
      fn_ = &fn;
      n_ = n;
      chunk_ = chunk;
      next_ = 0;
      ++generation_;
    }
  }
  if (size_ <= 1) {
    // Inline pool: still an in-flight job — shutdown() waits for it.
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = false;
    }
    cv_done_.notify_all();
    return true;
  }
  cv_start_.notify_all();
  drain(/*worker=*/0);  // the caller works too
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    fn_ = nullptr;
    in_flight_ = false;
  }
  cv_done_.notify_all();
  return true;
}

void ThreadPool::shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  // Let an in-flight parallel_for run its full index range to completion —
  // nothing is torn down mid-wave.
  cv_done_.wait(lock, [&] { return !in_flight_; });
  if (stop_) return;  // an earlier shutdown() already joined the workers
  stop_ = true;
  lock.unlock();
  cv_start_.notify_all();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

bool ThreadPool::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = new ThreadPool();  // immortal
  return *pool;
}

}  // namespace wlansim::core
