// Minimal command-line argument parsing for the wlansim CLI tool:
// `--key value` and `--flag` pairs after a subcommand, with typed lookup
// and unknown-key detection. No external dependencies.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace wlansim::core {

class CliArgs {
 public:
  /// Parse argv past the subcommand. Keys must start with "--"; a key
  /// followed by another key (or end of argv) is a boolean flag.
  /// Throws std::invalid_argument on malformed input.
  static CliArgs parse(int argc, const char* const* argv, int start);

  bool has(const std::string& key) const;

  /// Typed getters; throw std::invalid_argument on unparsable values.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key) const { return has(key); }

  /// Keys that were provided but never read — surfaced as usage errors so
  /// typos don't silently do nothing.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> used_;
};

}  // namespace wlansim::core
