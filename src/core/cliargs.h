// Minimal command-line argument parsing for the wlansim CLI tool:
// `--key value` and `--flag` pairs after a subcommand, with typed lookup
// and unknown-key detection — plus the shared flag -> option translations
// (adaptive stopping rule, surrogate store) every measuring subcommand and
// bench driver uses, so the flag names and defaults stay in one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace wlansim::sim {
enum class SurrogateAxis : std::uint8_t;
}

namespace wlansim::core {

struct SurrogateOptions;  // core/surrogate.h

class CliArgs {
 public:
  /// Parse argv past the subcommand. Keys must start with "--"; a key
  /// followed by another key (or end of argv) is a boolean flag.
  /// Throws std::invalid_argument on malformed input.
  static CliArgs parse(int argc, const char* const* argv, int start);

  bool has(const std::string& key) const;

  /// Typed getters; throw std::invalid_argument on unparsable values.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key) const { return has(key); }

  /// Keys that were provided but never read — surfaced as usage errors so
  /// typos don't silently do nothing.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> used_;
};

/// Adaptive early-stopping rule from --target-ci / --min-errors /
/// --max-packets / --min-packets: present when any of the four is given
/// (defaults 0.10 / 100 / 10000 / 8), nullopt = fixed packet budget.
std::optional<sim::StoppingRule> stopping_rule_from_args(const CliArgs& args);

/// Surrogate / dedup evaluation options from --calib-dir plus the adaptive
/// flags (the stopping rule doubles as the calibration / fallback-MC rule).
SurrogateOptions surrogate_options_from_args(
    const CliArgs& args, sim::SurrogateAxis axis,
    const std::optional<sim::StoppingRule>& rule, std::size_t threads);

}  // namespace wlansim::core
