#include "core/arq.h"

namespace wlansim::core {

double ppdu_airtime_s(phy::Rate rate, std::size_t psdu_bytes) {
  const std::size_t nsym = phy::num_data_symbols(rate, psdu_bytes);
  const std::size_t samples =
      phy::kPreambleLen + phy::kSymbolLen * (1 + nsym);  // SIGNAL + data
  return static_cast<double>(samples) / phy::kSampleRate;
}

ArqResult run_arq(const LinkConfig& link_cfg, const ArqConfig& arq_cfg) {
  ArqResult res;
  res.frames_offered = arq_cfg.num_frames;

  LinkConfig cfg = link_cfg;
  cfg.psdu_bytes =
      phy::kMacHeaderBytes + arq_cfg.payload_bytes + phy::kFcsBytes;
  WlanLink link(cfg);

  const phy::MacAddress sta = phy::MacAddress::from_id(1);
  const phy::MacAddress ap = phy::MacAddress::from_id(2);
  dsp::Rng payload_rng(cfg.seed ^ 0xA5A5A5A5ull);

  std::uint64_t packet_index = 0;
  for (std::size_t f = 0; f < arq_cfg.num_frames; ++f) {
    phy::MacHeader hdr;
    hdr.addr1 = ap;
    hdr.addr2 = sta;
    hdr.addr3 = ap;
    hdr.set_sequence_number(static_cast<std::uint16_t>(f));
    const phy::Bytes llc =
        phy::random_bytes(arq_cfg.payload_bytes, payload_rng);

    bool delivered = false;
    for (std::size_t attempt = 0; attempt <= arq_cfg.max_retries; ++attempt) {
      hdr.frame_control =
          static_cast<std::uint16_t>(0x0008 | (attempt > 0 ? 0x0800 : 0));
      const phy::Bytes psdu = phy::build_data_mpdu(hdr, llc);

      ++res.attempts;
      res.air_time_s += ppdu_airtime_s(cfg.rate, psdu.size()) +
                        arq_cfg.per_attempt_overhead_s;

      phy::Bytes rx_psdu;
      const PacketResult r =
          link.run_packet_with_payload(psdu, packet_index++, &rx_psdu);
      if (!r.decoded) {
        ++res.phy_losses;
        continue;
      }
      const auto parsed = phy::parse_mpdu(rx_psdu);
      if (!parsed || parsed->payload != llc) {
        ++res.fcs_failures;
        continue;
      }
      delivered = true;
      break;
    }
    if (delivered) ++res.frames_delivered;
  }
  return res;
}

}  // namespace wlansim::core
