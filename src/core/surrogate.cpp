#include "core/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/fingerprint.h"

namespace wlansim::core {

namespace {

double axis_value(const LinkConfig& c, sim::SurrogateAxis axis) {
  switch (axis) {
    case sim::SurrogateAxis::kSnrDb:
      return c.snr_db.value();  // fingerprintability guarantees has_value
    case sim::SurrogateAxis::kRxPowerDbm:
      return c.rx_power_dbm;
  }
  return 0.0;
}

void set_axis_value(LinkConfig& c, sim::SurrogateAxis axis, double x) {
  switch (axis) {
    case sim::SurrogateAxis::kSnrDb:
      c.snr_db = x;
      break;
    case sim::SurrogateAxis::kRxPowerDbm:
      c.rx_power_dbm = x;
      break;
  }
}

/// A stored curve answers for a rule only when it was calibrated under
/// exactly that rule — a looser calibration would report CIs the caller
/// did not ask for, and a tighter one would break the cold-path
/// bit-identity contract on backfill. Mismatch reads as a full miss.
bool rule_matches(const sim::CalibrationCurve& curve,
                  const sim::StoppingRule& rule) {
  return curve.target_rel_ci == rule.target_rel_ci &&
         curve.confidence_z == rule.confidence_z &&
         curve.min_errors == rule.min_errors &&
         curve.min_packets == rule.min_packets &&
         curve.max_packets == rule.max_packets;
}

sim::CalibrationCurve fresh_curve(std::string fingerprint,
                                  const SurrogateOptions& opts) {
  sim::CalibrationCurve curve;
  curve.axis = opts.axis;
  curve.fingerprint = std::move(fingerprint);
  curve.target_rel_ci = opts.rule.target_rel_ci;
  curve.confidence_z = opts.rule.confidence_z;
  curve.min_errors = opts.rule.min_errors;
  curve.min_packets = opts.rule.min_packets;
  curve.max_packets = opts.rule.max_packets;
  // Never let the calibration grid outrun the coverage rule.
  curve.max_gap = std::max(curve.max_gap, opts.grid_step +
                           sim::CalibrationCurve::kKnotTol);
  return curve;
}

sim::CalibrationPoint point_from_result(double x, const BerResult& r) {
  sim::CalibrationPoint p;
  p.x = x;
  p.ber = r.ber();
  p.ber_ci_rel = r.ber_ci_rel;
  p.per = r.per();
  p.evm = r.evm_rms_avg;
  p.bits = r.bits;
  p.bit_errors = r.bit_errors;
  p.packets = r.packets;
  p.converged = r.converged;
  return p;
}

BerResult result_from_query(const sim::SurrogateQuery& q,
                            const sim::CalibrationCurve& curve) {
  BerResult r;
  r.model_ber = q.ber;
  r.model_per = q.per;
  r.from_surrogate = true;
  r.evm_rms_avg = q.evm;
  r.ber_ci_rel = q.ber_ci_rel;
  r.converged = std::isfinite(q.ber_ci_rel) &&
                q.ber_ci_rel <= curve.target_rel_ci;
  return r;
}

/// The store view for one call: the caller's persistent cache when given,
/// else a fresh per-call view (so store-file deletions between calls are
/// observed — see SurrogateOptions::cache).
sim::BerSurrogate make_local_view(const SurrogateOptions& opts) {
  std::filesystem::path dir =
      opts.store_dir.empty() ? default_calibration_dir() : opts.store_dir;
  return sim::BerSurrogate(sim::CalibrationStore(std::move(dir)));
}

}  // namespace

std::filesystem::path default_calibration_dir() {
  if (const char* dir = std::getenv("WLANSIM_CALIB_DIR"); dir && *dir) {
    return dir;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg) {
    return std::filesystem::path(xdg) / "wlansim" / "calib";
  }
  if (const char* home = std::getenv("HOME"); home && *home) {
    return std::filesystem::path(home) / ".cache" / "wlansim" / "calib";
  }
  return std::filesystem::path(".wlansim-calib");
}

sim::CalibrationCurve calibrate_ber_surrogate(const LinkConfig& base,
                                              double x_lo, double x_hi,
                                              const SurrogateOptions& opts) {
  if (!(opts.grid_step > 0.0)) {
    throw std::invalid_argument("calibrate_ber_surrogate: grid_step <= 0");
  }
  if (!(x_lo <= x_hi)) {
    throw std::invalid_argument("calibrate_ber_surrogate: x_lo > x_hi");
  }
  std::string fp = surrogate_fingerprint(base, opts.axis);
  if (fp.empty()) {
    throw std::invalid_argument(
        "calibrate_ber_surrogate: config not fingerprintable (custom_rf, or "
        "axis snr_db with snr_db unset)");
  }

  sim::BerSurrogate local = make_local_view(opts);
  sim::BerSurrogate& view = opts.cache ? *opts.cache : local;

  sim::CalibrationCurve curve;
  if (const sim::CalibrationCurve* stored = view.lookup(fp);
      stored && rule_matches(*stored, opts.rule)) {
    curve = *stored;
    curve.max_gap = std::max(curve.max_gap,
                             opts.grid_step + sim::CalibrationCurve::kKnotTol);
  } else {
    curve = fresh_curve(fp, opts);
  }

  // Grid knots on multiples of grid_step covering the padded span, so
  // repeated calibrations over overlapping ranges land on shared knots.
  const long k_lo =
      static_cast<long>(std::floor((x_lo - opts.grid_pad) / opts.grid_step));
  const long k_hi =
      static_cast<long>(std::ceil((x_hi + opts.grid_pad) / opts.grid_step));
  std::vector<double> missing;
  for (long k = k_lo; k <= k_hi; ++k) {
    const double x = static_cast<double>(k) * opts.grid_step;
    const bool have = std::any_of(
        curve.points.begin(), curve.points.end(), [&](const auto& p) {
          return std::abs(p.x - x) <= sim::CalibrationCurve::kKnotTol;
        });
    if (!have) missing.push_back(x);
  }

  if (!missing.empty()) {
    std::vector<LinkConfig> cfgs;
    cfgs.reserve(missing.size());
    for (double x : missing) {
      LinkConfig c = base;
      set_axis_value(c, opts.axis, x);
      cfgs.push_back(std::move(c));
    }
    SweepOptions sweep_opts;
    sweep_opts.threads = opts.threads;
    std::vector<BerResult> results =
        sweep_ber_adaptive(cfgs, opts.rule, sweep_opts);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      curve.merge_point(point_from_result(missing[i], results[i]));
    }
    view.put(curve);  // save failure tolerated: the store is a cache
  }
  return curve;
}

std::vector<BerResult> sweep_ber_surrogate(std::span<const LinkConfig> configs,
                                           const SurrogateOptions& opts) {
  if (configs.empty()) return {};

  const std::string fp = surrogate_fingerprint(configs[0], opts.axis);
  if (fp.empty()) {
    throw std::invalid_argument(
        "sweep_ber_surrogate: config not fingerprintable (custom_rf, or axis "
        "snr_db with snr_db unset)");
  }
  for (std::size_t i = 1; i < configs.size(); ++i) {
    if (surrogate_fingerprint(configs[i], opts.axis) != fp) {
      throw std::invalid_argument(
          "sweep_ber_surrogate: configs must differ only along the surrogate "
          "axis (config " +
          std::to_string(i) + " has a different fingerprint)");
    }
  }

  sim::BerSurrogate local = make_local_view(opts);
  sim::BerSurrogate& view = opts.cache ? *opts.cache : local;

  std::vector<double> xs;
  xs.reserve(configs.size());
  for (const LinkConfig& c : configs) xs.push_back(axis_value(c, opts.axis));

  const sim::CalibrationCurve* stored = view.lookup(fp);
  const bool usable = stored && rule_matches(*stored, opts.rule);

  std::vector<BerResult> out(configs.size());
  std::vector<std::size_t> miss_idx;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (usable && stored->covers(xs[i])) {
      out[i] = result_from_query(stored->query(xs[i]), *stored);
    } else {
      miss_idx.push_back(i);
    }
  }
  if (miss_idx.empty()) return out;

  switch (opts.miss_policy) {
    case SurrogateMissPolicy::kError: {
      std::ostringstream msg;
      msg << "sweep_ber_surrogate: no calibration covers "
          << sim::surrogate_axis_name(opts.axis) << " = " << xs[miss_idx[0]]
          << " (" << miss_idx.size() << " of " << configs.size()
          << " points missed; store " << view.store().dir().string()
          << ", miss policy kError)";
      throw std::runtime_error(msg.str());
    }

    case SurrogateMissPolicy::kCalibrate: {
      const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
      sim::CalibrationCurve curve =
          calibrate_ber_surrogate(configs[0], *lo_it, *hi_it, opts);
      for (std::size_t i : miss_idx) {
        out[i] = result_from_query(curve.query(xs[i]), curve);
      }
      return out;
    }

    case SurrogateMissPolicy::kFallbackBackfill: {
      // Measure exactly the missed configs. Each adaptive point is a pure
      // function of (config, rule) — see core/parallel.h — so these
      // results are bit-identical to a direct sweep_ber_adaptive call.
      std::vector<LinkConfig> missed;
      missed.reserve(miss_idx.size());
      for (std::size_t i : miss_idx) missed.push_back(configs[i]);
      SweepOptions sweep_opts;
      sweep_opts.threads = opts.threads;
      std::vector<BerResult> mc =
          sweep_ber_adaptive(missed, opts.rule, sweep_opts);

      sim::CalibrationCurve curve =
          usable ? *stored : fresh_curve(fp, opts);
      for (std::size_t k = 0; k < miss_idx.size(); ++k) {
        out[miss_idx[k]] = mc[k];
        curve.merge_point(point_from_result(xs[miss_idx[k]], mc[k]));
      }
      view.put(curve);  // save failure tolerated: the store is a cache
      return out;
    }
  }
  return out;  // unreachable
}

BerResult run_ber_surrogate(const LinkConfig& cfg,
                            const SurrogateOptions& opts) {
  return sweep_ber_surrogate(std::span<const LinkConfig>(&cfg, 1), opts)[0];
}

// ---------------------------------------------------------------------------
// Deduplicated, pooled link evaluation
// ---------------------------------------------------------------------------

double quantize_axis(double x, double bin_width) {
  if (!(bin_width > 0.0)) return x;
  return std::round(x / bin_width) * bin_width;
}

std::vector<BerResult> sweep_ber_deduped(std::span<const LinkConfig> configs,
                                         const DedupOptions& opts,
                                         DedupStats* stats) {
  const SurrogateOptions& sopts = opts.surrogate;
  DedupStats st;
  st.queries = configs.size();
  std::vector<BerResult> out(configs.size());
  if (configs.empty()) {
    if (stats) *stats = st;
    return out;
  }

  // Distinct (fingerprint, quantized-axis) work list, first-appearance
  // order. The axis is snapped onto the bin grid BEFORE evaluation: the
  // representative config carries the binned value, so a key's result is
  // exactly what a direct measurement of that config would produce.
  // Quantized values of one bin are computed by the same expression from
  // the same bin index, so exact double equality in the key is sound.
  struct Entry {
    LinkConfig rep;
    std::string fp;
    double x = 0.0;
    BerResult result;
    bool warm = false;
  };
  std::vector<Entry> entries;
  std::map<std::pair<std::string, double>, std::size_t> index;
  std::vector<std::size_t> slot_of(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::string fp = surrogate_fingerprint(configs[i], sopts.axis);
    if (fp.empty()) {
      throw std::invalid_argument(
          "sweep_ber_deduped: config " + std::to_string(i) +
          " not fingerprintable (custom_rf, or axis snr_db with snr_db "
          "unset)");
    }
    const double x = axis_value(configs[i], sopts.axis);
    if (!std::isfinite(x)) {
      throw std::invalid_argument("sweep_ber_deduped: config " +
                                  std::to_string(i) +
                                  " has a non-finite axis value");
    }
    const double qx = quantize_axis(x, opts.bin_width_db);
    const auto [it, inserted] =
        index.try_emplace({std::move(fp), qx}, entries.size());
    if (inserted) {
      Entry e;
      e.rep = configs[i];
      set_axis_value(e.rep, sopts.axis, qx);
      e.fp = it->first.first;
      e.x = qx;
      entries.push_back(std::move(e));
    }
    slot_of[i] = it->second;
  }
  st.distinct = entries.size();

  sim::BerSurrogate local = make_local_view(sopts);
  sim::BerSurrogate& view = sopts.cache ? *sopts.cache : local;

  // Warm pass: a key whose fingerprint has a stored, rule-matched curve
  // covering its bin is answered from the curve. Backfilled knots sit at
  // exactly the bin values, so warm answers are knot-exact replays of the
  // MC results that filled them.
  if (opts.use_store) {
    for (Entry& e : entries) {
      const sim::CalibrationCurve* curve = view.lookup(e.fp);
      if (curve && rule_matches(*curve, sopts.rule) && curve->covers(e.x)) {
        e.result = result_from_query(curve->query(e.x), *curve);
        e.warm = true;
      }
    }
  }

  // Pooled cold pass: ONE adaptive sweep over every cold key across all
  // fingerprint groups, so the wave scheduler steals work across the whole
  // miss list and TX-scene memoization applies whenever the groups share a
  // TX fingerprint. Each point is a pure function of (config, rule) — see
  // core/parallel.h — so pooling changes nothing about any single result,
  // and a cold_pass hook may equally run the list as one in-process sweep
  // or shard it across worker processes: the per-point purity makes any
  // partition merge back bit-identically. The hook sees the keys in
  // first-appearance order (the order `cold` preserves), which is the
  // order shard partitions and checkpoint keys are defined against.
  std::vector<std::size_t> cold;
  for (std::size_t k = 0; k < entries.size(); ++k)
    if (!entries[k].warm) cold.push_back(k);
  if (!cold.empty()) {
    std::vector<LinkConfig> cfgs;
    cfgs.reserve(cold.size());
    for (const std::size_t k : cold) cfgs.push_back(entries[k].rep);
    SweepOptions sweep_opts;
    sweep_opts.threads = sopts.threads;
    const std::vector<BerResult> mc =
        opts.cold_pass ? opts.cold_pass(cfgs, sopts.rule, sweep_opts)
                       : sweep_ber_adaptive(cfgs, sopts.rule, sweep_opts);
    if (mc.size() != cold.size())
      throw std::logic_error(
          "sweep_ber_deduped: cold_pass hook returned " +
          std::to_string(mc.size()) + " results for " +
          std::to_string(cold.size()) + " configs");
    for (std::size_t j = 0; j < cold.size(); ++j)
      entries[cold[j]].result = mc[j];

    if (opts.use_store) {
      // Backfill one curve per fingerprint group so the next mobility step
      // (and the next process) hits warm.
      std::map<std::string, std::vector<std::size_t>, std::less<>> by_fp;
      for (const std::size_t k : cold) by_fp[entries[k].fp].push_back(k);
      for (const auto& [fp, ks] : by_fp) {
        const sim::CalibrationCurve* stored = view.lookup(fp);
        sim::CalibrationCurve curve = stored && rule_matches(*stored, sopts.rule)
                                          ? *stored
                                          : fresh_curve(fp, sopts);
        for (const std::size_t k : ks) {
          curve.merge_point(
              point_from_result(entries[k].x, entries[k].result));
        }
        view.put(curve);  // save failure tolerated: the store is a cache
      }
    }
  }

  for (std::size_t i = 0; i < configs.size(); ++i)
    out[i] = entries[slot_of[i]].result;
  st.cold = cold.size();
  st.warm = st.distinct - st.cold;
  if (stats) *stats = st;
  return out;
}

}  // namespace wlansim::core
