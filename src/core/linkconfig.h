// Master configuration for an end-to-end WLAN link verification run:
// 802.11a transmitter -> channel (+ optional adjacent-channel interferer)
// -> RF front-end model -> 802.11a receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "channel/fading.h"
#include "channel/interferer.h"
#include "phy80211a/params.h"
#include "phy80211a/receiver.h"
#include "rf/receiver_chain.h"
#include "sim/cosim.h"
#include "sim/graph.h"

namespace wlansim::core {

/// Packet evaluation strategy (see LinkConfig::packet_path).
enum class PacketPath {
  kAuto,    ///< direct when bit-identical to the graph, graph otherwise
  kDirect,  ///< force the direct hot path (falls back where unsupported)
  kGraph    ///< force the dataflow-graph reference path
};

/// Which model (if any) stands between the channel and the DSP receiver.
enum class RfEngine {
  kNone,         ///< idealized RF (the "neglected or idealized" baseline)
  kSystemLevel,  ///< behavioral models at the system rate (SPW-style)
  kCosim,        ///< fine-timestep co-simulation (AMS-Designer-style)
  kCustom        ///< caller-supplied block (e.g. an extracted J&K model)
};

struct LinkConfig {
  // --- Traffic --------------------------------------------------------------
  phy::Rate rate = phy::Rate::kMbps24;
  std::size_t psdu_bytes = 200;

  // --- Levels ---------------------------------------------------------------
  /// Wanted-signal level at the receiver input [dBm]. The paper's receiver
  /// accepts -88 to -23 dBm.
  double rx_power_dbm = -65.0;

  // --- Channel --------------------------------------------------------------
  /// AWGN SNR [dB] measured in the signal bandwidth at the receiver input;
  /// nullopt = no excess channel noise.
  std::optional<double> snr_db = 25.0;
  /// Antenna-referred noise density [dBm/Hz]; the physical floor is
  /// -174 dBm/Hz (kT0). Always present unless pushed below -250 — a truly
  /// zero-noise air interface would be unphysical and starves the AGC
  /// power detector between frames.
  double antenna_noise_density_dbm_hz = -174.0;
  std::optional<channel::FadingConfig> fading;
  std::optional<channel::InterfererConfig> interferer;

  /// Transmit sampling-clock offset [ppm] relative to the receiver's clock
  /// (Std 802.11a 17.3.9.4/17.3.9.5 allow +/-20 ppm per side). Applied by
  /// fractional resampling of the oversampled transmit waveform; over a
  /// long frame the accumulated drift rotates carrier k by a growing
  /// linear phase, which only the receiver's pilot timing tracking absorbs.
  double sco_ppm = 0.0;

  // --- Transmitter RF ---------------------------------------------------------
  /// Optional transmit power amplifier (paper §4/§6: "the RF subsystems of
  /// receiver and transmitter"). Applied at the oversampled rate after
  /// interpolation. `tx_pa_backoff_db` positions the PA's input P1dB above
  /// the signal's mean power; nullopt = ideal transmitter.
  std::optional<double> tx_pa_backoff_db;
  rf::NonlinearityModel tx_pa_model = rf::NonlinearityModel::kRapp;
  double tx_pa_am_pm_max_deg = 0.0;
  /// Transmit upconverter impairments (quadrature modulator): IQ imbalance
  /// and LO (carrier) leakage, expressed as a fraction of the signal RMS.
  double tx_iq_gain_imbalance_db = 0.0;
  double tx_iq_phase_error_deg = 0.0;
  double tx_lo_leakage_rel = 0.0;

  // --- RF front-end ----------------------------------------------------------
  RfEngine rf_engine = RfEngine::kSystemLevel;
  /// Oversampling factor of the RF model relative to 20 Msps. 4x (80 Msps)
  /// fulfills the sampling theorem with a +/-20 MHz adjacent channel
  /// present (paper §4.1).
  std::size_t oversample = 4;
  rf::DoubleConversionConfig rf{};  ///< sample_rate_hz is derived, see link.cpp
  sim::CosimConfig cosim{};
  /// Factory for RfEngine::kCustom — e.g. instantiating an extracted
  /// black-box (J&K) model in place of the full chain. Called once per
  /// packet with a packet-specific RNG.
  std::function<std::unique_ptr<rf::RfBlock>(dsp::Rng)> custom_rf;

  // --- DSP receiver ------------------------------------------------------------
  phy::Receiver::Config receiver{};

  // --- Execution --------------------------------------------------------------
  sim::ExecutionMode mode = sim::ExecutionMode::kCompiled;
  /// How run_packet evaluates the chain. kAuto picks the allocation-free
  /// direct path (persistent blocks + reused buffers) whenever it is
  /// bit-identical to the dataflow graph — compiled mode with the kNone or
  /// kSystemLevel engine — and the graph otherwise. kGraph forces the
  /// dataflow engine (the reference); kDirect forces the direct path where
  /// supported and falls back to the graph elsewhere.
  PacketPath packet_path = PacketPath::kAuto;
  /// Idle samples (20 Msps) before the frame: AGC settling + detection run-in.
  std::size_t lead_samples = 600;
  std::size_t tail_samples = 200;
  std::uint64_t seed = 1;
};

}  // namespace wlansim::core
