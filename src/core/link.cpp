#include "core/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/awgn.h"
#include "dsp/kernels.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "phy80211a/bits.h"
#include "rf/amplifier.h"
#include "rf/mixer.h"
#include "rf/receiver_chain.h"
#include "sim/sweep.h"

namespace wlansim::core {

std::uint64_t packet_seed(std::uint64_t seed, std::uint64_t idx) {
  std::uint64_t z = seed + (idx + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// Zero-padding the dataflow engine appends after the longest source so
/// every streaming filter flushes (Graph::run's `tail`, in base-rate units).
constexpr std::size_t kFlushTail = 64;

}  // namespace

WlanLink::WlanLink(LinkConfig cfg) : cfg_(std::move(cfg)), rx_(cfg_.receiver) {
  if (cfg_.oversample == 0)
    throw std::invalid_argument("WlanLink: zero oversampling factor");
  cfg_.rf.sample_rate_hz =
      phy::kSampleRate * static_cast<double>(cfg_.oversample);
  if (cfg_.psdu_bytes == 0 || cfg_.psdu_bytes > 4095)
    throw std::invalid_argument("WlanLink: PSDU must be 1..4095 bytes");
}

PacketResult WlanLink::run_packet(std::uint64_t packet_index) {
  return run_packet_with_payload({}, packet_index, nullptr);
}

bool WlanLink::use_direct_path() const {
  // Co-simulation goes through the graph; everything else runs directly.
  // Caller-supplied (kCustom) blocks are constructed per packet on both
  // paths, so the direct scene gives them the same lifecycle the graph
  // did — and the same fast engine the built-in front-end enjoys.
  const bool supported = cfg_.rf_engine == RfEngine::kNone ||
                         cfg_.rf_engine == RfEngine::kSystemLevel ||
                         (cfg_.rf_engine == RfEngine::kCustom &&
                          cfg_.custom_rf != nullptr);
  switch (cfg_.packet_path) {
    case PacketPath::kGraph:
      return false;
    case PacketPath::kDirect:
      return supported;
    case PacketPath::kAuto:
      return supported && cfg_.mode == sim::ExecutionMode::kCompiled;
  }
  return false;
}

PacketResult WlanLink::run_packet_with_payload(
    std::span<const std::uint8_t> psdu, std::uint64_t packet_index,
    phy::Bytes* rx_psdu) {
  return run_packet_impl(psdu, packet_index, rx_psdu, nullptr);
}

PacketResult WlanLink::run_packet_memo(std::uint64_t packet_index,
                                       TxScene& scene) {
  return run_packet_impl({}, packet_index, nullptr, &scene);
}

PacketResult WlanLink::run_packet_impl(std::span<const std::uint8_t> psdu,
                                       std::uint64_t packet_index,
                                       phy::Bytes* rx_psdu, TxScene* scene) {
  // Scene replay: the TX waveform, impairments, and interferer for this
  // packet index were already built by an earlier run whose config differs
  // only in noise level. Restore the packet RNG at the noise fork and run
  // just the noise + front-end + receiver half.
  if (scene != nullptr && scene->valid_ &&
      scene->packet_index_ == packet_index && psdu.empty() &&
      use_direct_path()) {
    ws_.scene_a.assign(scene->scene_.begin(), scene->scene_.end());
    dsp::Rng rng = scene->rng_post_tx_;
    finish_scene_direct(scene->base_units_, rng, &scene->noise_units_);
    return receiver_epilogue(scene->payload_, nullptr, nullptr, scene,
                             rx_psdu);
  }

  // The scene can only be captured on the direct path with a generated
  // payload; anything else runs unmemoized.
  const bool memoize =
      scene != nullptr && psdu.empty() && use_direct_path();
  if (scene != nullptr) scene->reset();

  dsp::Rng rng(packet_seed(cfg_.seed, packet_index));

  // --- Transmit side (20 Msps) --------------------------------------------
  phy::Transmitter::Config txc;
  txc.scrambler_seed =
      static_cast<std::uint8_t>(1 + rng.uniform_int(0, 126));
  txc.output_power_dbm = cfg_.rx_power_dbm;
  phy::Transmitter tx(txc);
  const phy::Bytes payload =
      psdu.empty() ? phy::random_bytes(cfg_.psdu_bytes, rng)
                   : phy::Bytes(psdu.begin(), psdu.end());
  const phy::Frame frame{cfg_.rate, payload};
  dsp::CVec wave = tx.modulate(frame);

  // Optional multipath (block-static per packet, applied at 20 Msps).
  if (cfg_.fading.has_value()) {
    channel::FadingConfig fc = *cfg_.fading;
    fc.sample_rate_hz = phy::kSampleRate;
    const channel::MultipathChannel mp(fc, rng);
    wave = mp.apply(wave);
  }

  dsp::CVec& padded = ws_.padded;
  padded.clear();
  padded.reserve(cfg_.lead_samples + wave.size() + cfg_.tail_samples);
  padded.insert(padded.end(), cfg_.lead_samples, dsp::Cplx{0.0, 0.0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), cfg_.tail_samples, dsp::Cplx{0.0, 0.0});

  // --- Channel + RF front-end ----------------------------------------------
  if (memoize) {
    const std::size_t base_units = build_scene_prenoise(padded, rng);
    scene->valid_ = true;
    scene->packet_index_ = packet_index;
    scene->scrambler_seed_ = txc.scrambler_seed;
    scene->payload_ = payload;
    scene->scene_.assign(ws_.scene_a.begin(), ws_.scene_a.end());
    scene->base_units_ = base_units;
    scene->rng_post_tx_ = rng;
    scene->noise_units_.clear();
    finish_scene_direct(base_units, rng, &scene->noise_units_);
  } else if (use_direct_path()) {
    run_scene_direct(padded, rng);
  } else {
    run_scene_graph(std::move(padded), rng);
  }

  return receiver_epilogue(payload, &tx, &frame, memoize ? scene : nullptr,
                           rx_psdu);
}

PacketResult WlanLink::receiver_epilogue(const phy::Bytes& payload,
                                         const phy::Transmitter* tx,
                                         const phy::Frame* frame,
                                         TxScene* scene, phy::Bytes* rx_psdu) {
  // --- DSP receiver ---------------------------------------------------------
  const phy::RxResult res = rx_.receive(last_rx_);

  PacketResult out;
  out.bits = 8 * payload.size();
  out.cfo_norm = res.cfo_norm;
  const bool ok = res.header_ok && res.signal.length == payload.size() &&
                  res.psdu.size() == payload.size();
  out.decoded = ok;
  if (!ok) {
    out.bit_errors = out.bits / 2;  // undecoded: half the bits on average
    return out;
  }
  phy::BerCounter ctr;
  ctr.add_packet(payload, res.psdu, true);
  out.bit_errors = ctr.bit_errors();
  if (rx_psdu != nullptr) *rx_psdu = res.psdu;

  // EVM against the transmitted constellation (the equalizer's channel
  // estimate removes the chain gain, so points are directly comparable).
  // The reference is a pure function of (scrambler seed, frame), so a
  // memoized scene computes it once and reuses it at every noise level.
  const std::vector<dsp::CVec>* ref = nullptr;
  std::vector<dsp::CVec> local_ref;
  if (scene != nullptr && scene->valid_) {
    if (!scene->ref_points_valid_) {
      if (tx != nullptr) {
        scene->ref_points_ = tx->data_symbol_points(*frame);
      } else {
        phy::Transmitter::Config txc;
        txc.scrambler_seed = scene->scrambler_seed_;
        txc.output_power_dbm = cfg_.rx_power_dbm;
        const phy::Transmitter stx(txc);
        const phy::Frame sframe{cfg_.rate, scene->payload_};
        scene->ref_points_ = stx.data_symbol_points(sframe);
      }
      scene->ref_points_valid_ = true;
    }
    ref = &scene->ref_points_;
  } else {
    local_ref = tx->data_symbol_points(*frame);
    ref = &local_ref;
  }
  phy::EvmCounter evm;
  const std::size_t nsym = std::min(ref->size(), res.data_points.size());
  for (std::size_t s = 0; s < nsym; ++s)
    evm.add(res.data_points[s], (*ref)[s]);
  out.evm_rms = evm.evm_rms();
  return out;
}

// Allocation-free steady-state replica of the dataflow graph below. Every
// node in that graph is a per-sample streaming operator, so evaluating the
// chain whole-buffer in the same sample order — with the same filter taps,
// the same rng.fork() sequence, and the graph's run length — produces
// bit-identical output while skipping the per-packet graph assembly, FIFO
// churn, and block construction (notably the flicker source's 32k-sample
// spectral calibration).
void WlanLink::run_scene_direct(const dsp::CVec& padded, dsp::Rng& rng) {
  const std::size_t base_units = build_scene_prenoise(padded, rng);
  finish_scene_direct(base_units, rng, nullptr);
}

std::size_t WlanLink::build_scene_prenoise(const dsp::CVec& padded,
                                           dsp::Rng& rng) {
  const double p_sig = dsp::dbm_to_watts(cfg_.rx_power_dbm);
  const double fs_over = cfg_.rf.sample_rate_hz;
  const std::size_t os = cfg_.oversample;
  const std::size_t over_len = padded.size() * os;

  dsp::CVec& a = ws_.scene_a;

  // Run length: the graph pumps every source for the longest source's
  // duration (in base-rate units) plus the flush tail; shorter sources pad
  // with zeros.
  std::size_t base_units;
  if (cfg_.sco_ppm != 0.0) {
    // Sampling-clock offset: stretch the oversampled waveform by the ppm
    // ratio before it enters the scene (the transmit DAC clock error).
    dsp::CVec wave_over = dsp::upsample(padded, os);
    wave_over = dsp::fractional_resample(wave_over, 1.0 + cfg_.sco_ppm * 1e-6);
    base_units = (wave_over.size() + os - 1) / os + kFlushTail;
    if (cfg_.interferer.has_value())
      base_units = std::max(base_units, padded.size() + kFlushTail);
    a.assign(base_units * os, dsp::Cplx{0.0, 0.0});
    std::copy(wave_over.begin(), wave_over.end(), a.begin());
  } else {
    base_units = padded.size() + kFlushTail;
    if (os > 1) {
      // UpsampleNode semantics: zero-stuff scaled input streamed through
      // the image-reject lowpass from cleared state. The polyphase kernel
      // skips the structurally-zero products and reads `padded` directly,
      // but sums the surviving terms in the same order, so its output is
      // bit-identical to the zero-stuff + stream formulation.
      if (ws_.up_taps.empty()) ws_.up_taps = dsp::resampling_taps(os);
      const std::size_t ntaps = ws_.up_taps.size();
      // The lead/tail pads are exact +0.0 and a filter window of +-0.0
      // inputs accumulates to +0.0 (the accumulator starts at +0.0 and
      // adding +-0.0 never changes it), so outputs whose windows never
      // touch the nonzero span equal the zero fill bit-for-bit. Run the
      // kernel only over the span that can produce nonzero output.
      std::size_t lo = 0, hi = padded.size();
      const dsp::Cplx zero{0.0, 0.0};
      while (lo < hi && padded[lo] == zero) ++lo;
      while (hi > lo && padded[hi - 1] == zero) --hi;
      a.assign(base_units * os, zero);
      if (lo < hi) {
        const std::size_t q0 = lo * os;
        const std::size_t q_end =
            std::min(a.size(), (hi + ntaps - 1) * os);
        dsp::kernels::fir_interp(ws_.up_taps.data(), ntaps, os,
                                 padded.data() + lo, padded.size() - lo,
                                 static_cast<double>(os), a.data() + q0,
                                 q_end - q0);
      }
    } else {
      a.assign(base_units, dsp::Cplx{0.0, 0.0});
      std::copy(padded.begin(), padded.end(), a.begin());
    }
  }

  // The fork order below must match run_scene_graph exactly — every
  // consumer draws from the same packet stream whether or not its block is
  // freshly constructed.
  if (cfg_.tx_pa_backoff_db.has_value()) {
    if (!ws_.tx_pa) {
      rf::AmplifierConfig pa;
      pa.label = "tx_pa";
      pa.gain_db = 0.0;
      pa.model = cfg_.tx_pa_model;
      pa.p1db_in_dbm = cfg_.rx_power_dbm + *cfg_.tx_pa_backoff_db;
      pa.am_pm_max_deg = cfg_.tx_pa_am_pm_max_deg;
      pa.noise_enabled = false;
      ws_.tx_pa = std::make_unique<rf::Amplifier>(pa, fs_over, rng.fork());
    } else {
      ws_.tx_pa->reset();
      ws_.tx_pa->set_rng(rng.fork());
    }
    ws_.tx_pa->process_into(a, a);
  }

  if (cfg_.tx_iq_gain_imbalance_db != 0.0 ||
      cfg_.tx_iq_phase_error_deg != 0.0 || cfg_.tx_lo_leakage_rel != 0.0) {
    if (!ws_.tx_upconverter) {
      rf::MixerConfig up;
      up.label = "tx_upconverter";
      up.iq_gain_imbalance_db = cfg_.tx_iq_gain_imbalance_db;
      up.iq_phase_error_deg = cfg_.tx_iq_phase_error_deg;
      up.dc_offset = cfg_.tx_lo_leakage_rel * std::sqrt(p_sig);
      up.noise_enabled = false;
      ws_.tx_upconverter =
          std::make_unique<rf::Mixer>(up, fs_over, rng.fork());
    } else {
      ws_.tx_upconverter->reset();
      ws_.tx_upconverter->set_rng(rng.fork());
    }
    ws_.tx_upconverter->process_into(a, a);
  }

  if (cfg_.interferer.has_value()) {
    dsp::Rng irng = rng.fork();
    ws_.jam = channel::make_interferer(over_len, fs_over, p_sig,
                                       *cfg_.interferer, irng);
    const std::size_t n = std::min(ws_.jam.size(), a.size());
    for (std::size_t i = 0; i < n; ++i) a[i] += ws_.jam[i];
  }

  return base_units;
}

void WlanLink::finish_scene_direct(std::size_t base_units, dsp::Rng& rng,
                                   dsp::RVec* noise_units) {
  const double p_sig = dsp::dbm_to_watts(cfg_.rx_power_dbm);
  const double fs_over = cfg_.rf.sample_rate_hz;
  const std::size_t os = cfg_.oversample;

  dsp::CVec& a = ws_.scene_a;

  double n_total =
      cfg_.antenna_noise_density_dbm_hz > -250.0
          ? dsp::dbm_to_watts(cfg_.antenna_noise_density_dbm_hz) * fs_over
          : 0.0;
  if (cfg_.snr_db.has_value()) {
    n_total += p_sig / dsp::from_db(*cfg_.snr_db) *
               static_cast<double>(cfg_.oversample);
  }
  if (n_total > 0.0) {
    dsp::Rng nrng = rng.fork();
    if (noise_units == nullptr) {
      // Bulk form of `a[i] += cgaussian(n_total)`: cgaussian draws two
      // unit normals and scales each by s = sqrt(v/2), so filling the
      // normals first and applying the scaled pairs performs the exact
      // same arithmetic in the exact same stream order.
      ws_.noise_scratch.resize(2 * a.size());
      nrng.fill_gaussian(ws_.noise_scratch.data(), ws_.noise_scratch.size());
      const double s = std::sqrt(n_total / 2.0);
      dsp::kernels::add_scaled_pairs(a.data(), a.size(), s,
                                     ws_.noise_scratch.data());
    } else {
      // Memoized noise: cache the unit normals on the first pass and
      // replay them at every other noise level. cgaussian(v) evaluates
      // s*u0, s*u1 with s = sqrt(v/2), so scaling the cached normals here
      // performs the exact same arithmetic as the direct loop above.
      if (noise_units->empty()) {
        noise_units->resize(2 * a.size());
        nrng.fill_gaussian(noise_units->data(), noise_units->size());
      }
      const double s = std::sqrt(n_total / 2.0);
      dsp::kernels::add_scaled_pairs(a.data(), a.size(), s,
                                     noise_units->data());
    }
  }

  const dsp::CVec* rx_over = &a;
  if (cfg_.rf_engine == RfEngine::kSystemLevel) {
    if (!ws_.frontend) {
      ws_.frontend =
          std::make_unique<rf::DoubleConversionReceiver>(cfg_.rf, rng.fork());
    } else {
      ws_.frontend->reset();
      ws_.frontend->reseed(rng.fork());
    }
    // Runs the fused ChainExecutor: the whole oversampled scene streams
    // through the front-end cascade in L1-sized tiles (cfg_.rf.tile_size,
    // 0 = auto), bit-identical to block-at-a-time execution and to the
    // 512-chunk graph path by the tile-continuity contract.
    ws_.frontend->process_into(a, ws_.scene_b);
    rx_over = &ws_.scene_b;
  } else if (cfg_.rf_engine == RfEngine::kCustom) {
    // Constructed per packet, exactly like the graph's rf_frontend_custom
    // node (the factory owns any state reset policy).
    const auto frontend = cfg_.custom_rf(rng.fork());
    frontend->process_into(a, ws_.scene_b);
    rx_over = &ws_.scene_b;
  }

  if (os > 1) {
    last_rx_.resize(base_units);
    if (cfg_.rf_engine == RfEngine::kNone) {
      // DownsampleNode: the anti-alias lowpass delay line advances on every
      // sample but only the kept phase-0 outputs need their dot product.
      if (!ws_.down_filt)
        ws_.down_filt =
            std::make_unique<dsp::FirFilter>(dsp::resampling_taps(os));
      ws_.down_filt->reset();
      ws_.down_filt->process_decim_into(*rx_over, os, last_rx_);
    } else {
      // DecimateNode: the ADC samples the analog output raw.
      for (std::size_t i = 0, oi = 0; i < rx_over->size(); i += os)
        last_rx_[oi++] = (*rx_over)[i];
    }
  } else {
    last_rx_.assign(rx_over->begin(), rx_over->end());
  }

  // The rf_input_probe tap: `a` still holds the post-noise/pre-frontend
  // signal (the front-end wrote into scene_b), so hand the buffer over
  // instead of copying it. The workspace gets it back at the next assign.
  std::swap(last_rf_input_, a);
}

// Reference path: assemble and run the dataflow block diagram. Required for
// interpreted execution, co-simulation, and custom RF blocks; also the
// baseline the direct path is verified against.
void WlanLink::run_scene_graph(dsp::CVec padded, dsp::Rng& rng) {
  const double p_sig = dsp::dbm_to_watts(cfg_.rx_power_dbm);
  const double fs_over = cfg_.rf.sample_rate_hz;
  const std::size_t over_len = padded.size() * cfg_.oversample;

  sim::Graph g;
  sim::Node* head = nullptr;
  if (cfg_.sco_ppm != 0.0) {
    // Sampling-clock offset: stretch the oversampled waveform by the ppm
    // ratio before it enters the scene (the transmit DAC clock error).
    dsp::CVec wave_over = dsp::upsample(padded, cfg_.oversample);
    wave_over = dsp::fractional_resample(wave_over, 1.0 + cfg_.sco_ppm * 1e-6);
    auto* src = g.add<sim::SourceNode>("tx_wave_sco", std::move(wave_over));
    src->set_rate_weight(cfg_.oversample);
    head = src;
  } else {
    auto* src = g.add<sim::SourceNode>("tx_wave", std::move(padded));
    head = src;
    if (cfg_.oversample > 1) {
      auto* up = g.add<sim::UpsampleNode>("oversample", cfg_.oversample);
      g.connect(head, up);
      head = up;
    }
  }

  if (cfg_.tx_pa_backoff_db.has_value()) {
    rf::AmplifierConfig pa;
    pa.label = "tx_pa";
    pa.gain_db = 0.0;
    pa.model = cfg_.tx_pa_model;
    pa.p1db_in_dbm = cfg_.rx_power_dbm + *cfg_.tx_pa_backoff_db;
    pa.am_pm_max_deg = cfg_.tx_pa_am_pm_max_deg;
    pa.noise_enabled = false;  // PA noise is negligible next to its distortion
    auto* pa_node = g.add<sim::RfNode>(
        "tx_pa", std::make_unique<rf::Amplifier>(pa, fs_over, rng.fork()));
    g.connect(head, pa_node);
    head = pa_node;
  }

  if (cfg_.tx_iq_gain_imbalance_db != 0.0 ||
      cfg_.tx_iq_phase_error_deg != 0.0 || cfg_.tx_lo_leakage_rel != 0.0) {
    rf::MixerConfig up;
    up.label = "tx_upconverter";
    up.iq_gain_imbalance_db = cfg_.tx_iq_gain_imbalance_db;
    up.iq_phase_error_deg = cfg_.tx_iq_phase_error_deg;
    up.dc_offset = cfg_.tx_lo_leakage_rel * std::sqrt(p_sig);
    up.noise_enabled = false;
    auto* up_node = g.add<sim::RfNode>(
        "tx_upconverter",
        std::make_unique<rf::Mixer>(up, fs_over, rng.fork()));
    g.connect(head, up_node);
    head = up_node;
  }

  if (cfg_.interferer.has_value()) {
    dsp::Rng irng = rng.fork();
    dsp::CVec jam = channel::make_interferer(over_len, fs_over, p_sig,
                                             *cfg_.interferer, irng);
    auto* isrc = g.add<sim::SourceNode>("interferer", std::move(jam));
    isrc->set_rate_weight(cfg_.oversample);
    auto* add = g.add<sim::AddNode>("air_sum", 2);
    g.connect(head, 0, add, 0);
    g.connect(isrc, 0, add, 1);
    head = add;
  }

  // Channel noise: the antenna thermal floor plus (optionally) excess AWGN
  // sized for the requested SNR. SNR is defined against the in-band
  // (20 MHz) noise; the full-rate white noise carries `oversample` times
  // that power.
  double n_total =
      cfg_.antenna_noise_density_dbm_hz > -250.0
          ? dsp::dbm_to_watts(cfg_.antenna_noise_density_dbm_hz) * fs_over
          : 0.0;
  if (cfg_.snr_db.has_value()) {
    n_total += p_sig / dsp::from_db(*cfg_.snr_db) *
               static_cast<double>(cfg_.oversample);
  }
  if (n_total > 0.0) {
    dsp::Rng nrng = rng.fork();
    auto* awgn = g.add<sim::FunctionNode>(
        "awgn", [n_total, nrng](std::span<const dsp::Cplx> in) mutable {
          return channel::add_awgn(in, n_total, nrng);
        });
    g.connect(head, awgn);
    head = awgn;
  }

  auto* rf_probe = g.add<sim::ProbeNode>("rf_input_probe");
  g.connect(head, rf_probe);
  head = rf_probe;

  switch (cfg_.rf_engine) {
    case RfEngine::kNone:
      break;
    case RfEngine::kSystemLevel: {
      auto* rf = g.add<sim::RfNode>(
          "rf_frontend",
          std::make_unique<rf::DoubleConversionReceiver>(cfg_.rf, rng.fork()));
      g.connect(head, rf);
      head = rf;
      break;
    }
    case RfEngine::kCosim: {
      auto* rf = g.add<sim::RfNode>(
          "rf_frontend_cosim",
          std::make_unique<sim::CosimRfReceiver>(cfg_.rf, cfg_.cosim,
                                                 rng.fork()));
      g.connect(head, rf);
      head = rf;
      break;
    }
    case RfEngine::kCustom: {
      if (!cfg_.custom_rf)
        throw std::invalid_argument("WlanLink: kCustom needs custom_rf");
      auto* rf =
          g.add<sim::RfNode>("rf_frontend_custom", cfg_.custom_rf(rng.fork()));
      g.connect(head, rf);
      head = rf;
      break;
    }
  }

  if (cfg_.oversample > 1) {
    sim::Node* down = nullptr;
    if (cfg_.rf_engine == RfEngine::kNone) {
      // Idealized front-end: a perfect digital anti-alias + decimate.
      down = g.add<sim::DownsampleNode>("ideal_decimate", cfg_.oversample);
    } else {
      // Physical ADC sampling: whatever the analog channel-select filter
      // left beyond Nyquist aliases into band.
      down = g.add<sim::DecimateNode>("adc_sampling", cfg_.oversample);
    }
    g.connect(head, down);
    head = down;
  }
  auto* sink = g.add<sim::SinkNode>("rx_wave");
  g.connect(head, sink);

  g.run(cfg_.mode, 512, /*tail=*/kFlushTail);

  last_rx_ = sink->data();
  last_rf_input_ = rf_probe->data();
}

BerResult WlanLink::run_ber(std::size_t num_packets) {
  BerResult agg;
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  for (std::size_t i = 0; i < num_packets; ++i) {
    const PacketResult r = run_packet(i);
    ++agg.packets;
    agg.bits += r.bits;
    agg.bit_errors += r.bit_errors;
    if (r.bit_errors > 0 || !r.decoded) ++agg.packet_errors;
    if (!r.decoded) {
      ++agg.packets_lost;
    } else {
      evm_acc += r.evm_rms;
      ++evm_n;
    }
  }
  agg.evm_rms_avg = evm_n ? evm_acc / static_cast<double>(evm_n) : 0.0;
  agg.ber_ci_rel = sim::wilson_rel_halfwidth(agg.bit_errors, agg.bits,
                                             kDefaultConfidenceZ);
  return agg;
}

}  // namespace wlansim::core
