// End-to-end WLAN link: the verification testbench of the paper —
// "the model of the double conversion receiver ... is inserted in front of
// the DSP receiver part" of the IEEE 802.11a demo system (§4.1, Fig. 3).
//
// Each packet run assembles a dataflow graph
//
//   TX source (20 Msps) -> upsample -> [+ interferer] -> [+ AWGN]
//     -> RF front-end (system-level or co-simulated) -> downsample
//     -> DSP receiver (sync, channel est., Viterbi)
//
// and reports bit errors and constellation quality.
#pragma once

#include <limits>
#include <memory>

#include "core/linkconfig.h"
#include "dsp/fir.h"
#include "dsp/rng.h"
#include "phy80211a/measure.h"
#include "phy80211a/receiver.h"
#include "phy80211a/transmitter.h"

namespace wlansim::core {

/// Memoized TX scene for one (configuration, packet index) pair: the
/// payload, the pre-noise oversampled composite (TX waveform + impairments
/// + interferer), the RNG state at the noise-injection point, and the unit
/// noise normals. Everything stored here is independent of the noise level
/// (SNR / antenna noise density), so a BER sweep can build the scene once
/// at the first SNR point and replay it bit-identically at every other —
/// see WlanLink::run_packet_memo.
class TxScene {
 public:
  TxScene() = default;

  bool valid() const { return valid_; }
  std::uint64_t packet_index() const { return packet_index_; }

  /// Drop the cached scene (e.g. when the owning sweep changes packets).
  /// Clears the front-end noise tapes too: their contents belong to the
  /// packet index the scene was built for, and every rebuild funnels
  /// through here, so a tape can never replay under the wrong packet.
  void reset() {
    valid_ = false;
    ref_points_valid_ = false;
    lna_tape_.clear();
    flicker_tape_.clear();
  }

 private:
  friend class WlanLink;

  bool valid_ = false;
  std::uint64_t packet_index_ = 0;
  std::uint8_t scrambler_seed_ = 1;
  phy::Bytes payload_;
  dsp::CVec scene_;            ///< pre-noise oversampled composite
  std::size_t base_units_ = 0; ///< scene run length in base-rate units
  dsp::Rng rng_post_tx_{0};    ///< packet RNG state at the noise fork
  dsp::RVec noise_units_;      ///< cached unit normals (2 per scene sample)
  bool ref_points_valid_ = false;
  std::vector<dsp::CVec> ref_points_;  ///< TX constellation (EVM reference)
  /// Front-end unit-normal tapes recorded by the lane path (see
  /// rf/lane_tape.h): like noise_units_, pure functions of the packet
  /// index, so later sweep points replay instead of re-deriving gaussians.
  dsp::RVec lna_tape_;
  dsp::RVec flicker_tape_;
};

/// Outcome of one packet through the link.
struct PacketResult {
  bool decoded = false;       ///< header decoded and payload length matched
  std::size_t bits = 0;       ///< payload bits transmitted
  std::size_t bit_errors = 0; ///< payload bit errors (bits/2 when undecoded)
  double evm_rms = 0.0;       ///< EVM vs. the transmitted constellation
  double cfo_norm = 0.0;      ///< receiver CFO estimate
};

/// Confidence multiplier the fixed-budget engines report BER intervals at
/// (95 %); the adaptive engine substitutes its StoppingRule::confidence_z.
inline constexpr double kDefaultConfidenceZ = 1.96;

/// The per-packet RNG seed: a splitmix64-style mix of the configuration
/// seed and the packet counter. Every random draw of packet i — scrambler
/// seed, payload, fading, impairment and noise streams — descends from this
/// one value, so a packet's result is a pure function of (config, index)
/// and is identical no matter which thread runs it, in which order, or how
/// many packets surround it. This is the contract every parallel and
/// adaptive measurement engine in core/parallel relies on.
std::uint64_t packet_seed(std::uint64_t seed, std::uint64_t packet_index);

/// Aggregate of a multi-packet measurement.
struct BerResult {
  std::size_t packets = 0;
  std::size_t packets_lost = 0;    ///< header/sync failures (nothing decoded)
  std::size_t packet_errors = 0;   ///< lost or decoded with bit errors
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double evm_rms_avg = 0.0;

  // Streaming statistics (adaptive Monte-Carlo engine; see core/parallel.h).
  /// Wilson relative CI half-width of the BER estimate at the reporting
  /// confidence (a pure function of bit_errors/bits, so it is as
  /// deterministic as the counters); +inf until the first bit error.
  double ber_ci_rel = std::numeric_limits<double>::infinity();
  /// Wall time from the measurement's start until this point's stopping
  /// decision. Only the adaptive engines fill it; 0 elsewhere.
  double wall_seconds = 0.0;
  /// True when the stopping rule was met before the packet cap (the cap and
  /// fixed-budget runs report false).
  bool converged = false;

  // Surrogate-model results (core/surrogate.h). When a point is answered
  // from a calibration curve instead of Monte-Carlo packets, the model's
  // interpolated rates land here (the counters above stay zero — there were
  // no packets), ber_ci_rel carries the calibrated Wilson CI of the
  // bracketing knots, and from_surrogate is set. -1 = unset.
  double model_ber = -1.0;
  double model_per = -1.0;
  bool from_surrogate = false;

  double ber() const {
    if (model_ber >= 0.0) return model_ber;
    return bits ? static_cast<double>(bit_errors) / static_cast<double>(bits)
                : 0.0;
  }
  double per() const {
    if (model_per >= 0.0) return model_per;
    return packets ? static_cast<double>(packet_errors) /
                         static_cast<double>(packets)
                   : 0.0;
  }
};

struct PacketBatch;  // core/packet_batch.h

class WlanLink {
 public:
  explicit WlanLink(LinkConfig cfg);

  /// Run one packet; `packet_index` seeds the per-packet randomness so
  /// runs are reproducible and sweep points can share random numbers.
  PacketResult run_packet(std::uint64_t packet_index);

  /// Run one packet carrying a caller-supplied PSDU (e.g. a framed MPDU
  /// with FCS). The payload length overrides cfg.psdu_bytes for this
  /// packet; channel/noise randomness still derives from `packet_index`.
  /// On success `rx_psdu` receives the decoded PSDU bytes.
  PacketResult run_packet_with_payload(std::span<const std::uint8_t> psdu,
                                       std::uint64_t packet_index,
                                       phy::Bytes* rx_psdu = nullptr);

  /// Run one packet, caching or replaying its noise-independent TX scene
  /// in `scene`. When `scene` is valid for this packet index (built by an
  /// earlier call on a link whose config differs only in noise level), the
  /// TX side, channel build, and interferer are replayed bit-identically
  /// instead of recomputed. Otherwise the packet runs in full and `scene`
  /// is (re)built. Configurations the direct packet path cannot serve run
  /// unmemoized and leave `scene` invalid.
  PacketResult run_packet_memo(std::uint64_t packet_index, TxScene& scene);

  /// Run `count` consecutive packets [begin_index, begin_index + count) as
  /// one lockstep lane wave: each packet's TX scene is built (or replayed
  /// from `scenes`) exactly as run_packet_memo would, then all lanes march
  /// through AWGN, the RF front-end, and decimation together on a width-
  /// `count` SoA buffer (see dsp/kernels.h "Packet-lane (SoA) kernels").
  /// Lanes never mix arithmetically, so out[l] is bit-identical to
  /// run_packet / run_packet_memo of the same index — the contract pinned
  /// by tests/core/test_batch_wave.cpp.
  ///
  /// `scenes` is either null (no memoization; batch-local scratch scenes
  /// are used) or `count` TxScene slots, one per lane, with the same
  /// build-or-replay semantics as run_packet_memo. On the memoized path
  /// the wave additionally records the front-end's unit-normal noise tapes
  /// into the scenes so later sweep points replay the gaussians instead of
  /// re-deriving them.
  ///
  /// Returns false — computing nothing and leaving `out` untouched — when
  /// the configuration cannot run in lockstep (graph path, co-simulation,
  /// custom RF, phase noise, non-Rapp-p2 LNA, count outside [2, W]); the
  /// caller then falls back to the scalar per-packet path. Scenes already
  /// (re)built before a mid-wave bailout stay valid for that fallback.
  /// The wave does not maintain last_rx_baseband()/last_rf_input() (debug
  /// probes of the scalar path).
  bool run_packet_wave(std::uint64_t begin_index, std::size_t count,
                       PacketBatch& batch, TxScene* scenes, PacketResult* out);

  /// Run `num_packets` packets and aggregate.
  BerResult run_ber(std::size_t num_packets);

  /// The received baseband (20 Msps, post-RF) of the last packet — for
  /// spectrum plots and debugging.
  const dsp::CVec& last_rx_baseband() const { return last_rx_; }

  const LinkConfig& config() const { return cfg_; }

  /// The composite oversampled waveform (wanted + interferer + noise) the
  /// RF front-end saw on the last packet — input of Fig. 4's spectrum.
  const dsp::CVec& last_rf_input() const { return last_rf_input_; }

 private:
  /// Per-link scratch state for the direct (allocation-free) packet path.
  /// Buffers keep their capacity across packets; blocks are constructed
  /// once and re-randomized per packet (reset + reseed), which is exactly
  /// equivalent to the per-packet construction the graph path performs.
  /// Every buffer is invalidated by the next run_packet call.
  struct Workspace {
    dsp::CVec padded;           ///< 20 Msps frame with lead/tail padding
    dsp::CVec scene_a, scene_b; ///< oversampled ping-pong buffers
    dsp::CVec jam;              ///< interferer waveform
    dsp::RVec up_taps;          ///< TX interpolation taps (polyphase kernel)
    dsp::RVec noise_scratch;    ///< bulk unit normals for the AWGN fill
    std::unique_ptr<dsp::FirFilter> down_filt;  ///< ideal RX decimation
    std::unique_ptr<rf::Amplifier> tx_pa;
    std::unique_ptr<rf::Mixer> tx_upconverter;
    std::unique_ptr<rf::DoubleConversionReceiver> frontend;
  };

  bool use_direct_path() const;
  void run_scene_direct(const dsp::CVec& padded, dsp::Rng& rng);
  void run_scene_graph(dsp::CVec padded, dsp::Rng& rng);

  PacketResult run_packet_impl(std::span<const std::uint8_t> psdu,
                               std::uint64_t packet_index, phy::Bytes* rx_psdu,
                               TxScene* scene);
  /// First half of the direct scene: upsample + TX impairments + interferer
  /// into ws_.scene_a. Returns the run length in base-rate units.
  std::size_t build_scene_prenoise(const dsp::CVec& padded, dsp::Rng& rng);
  /// Second half: channel noise, RF front-end, downsample (ws_.scene_a ->
  /// last_rx_ / last_rf_input_). `noise_units` selects the noise mode:
  /// nullptr draws directly from the rng fork; empty caches the unit
  /// normals while applying them; non-empty replays the cached normals
  /// (advancing the rng fork identically). All three are bit-identical.
  void finish_scene_direct(std::size_t base_units, dsp::Rng& rng,
                           dsp::RVec* noise_units);
  /// DSP receiver + BER/EVM bookkeeping on last_rx_. `tx`/`frame` are the
  /// live transmitter when the packet was just built (null on scene
  /// replay, where the EVM reference is rebuilt from `scene`).
  PacketResult receiver_epilogue(const phy::Bytes& payload,
                                 const phy::Transmitter* tx,
                                 const phy::Frame* frame, TxScene* scene,
                                 phy::Bytes* rx_psdu);

  LinkConfig cfg_;
  phy::Transmitter tx_;
  phy::Receiver rx_;
  dsp::CVec last_rx_;
  dsp::CVec last_rf_input_;
  Workspace ws_;
};

}  // namespace wlansim::core
