// Reusable workspace for WlanLink::run_packet_wave: W same-configuration
// packets carried as SoA lanes (sample-major, packet-minor) through the
// noise + RF + decimation half of the link. Allocate one per measurement
// thread and reuse it across waves — every buffer keeps its capacity.
#pragma once

#include <vector>

#include "core/link.h"
#include "dsp/rng.h"
#include "dsp/types.h"

namespace wlansim::core {

struct PacketBatch {
  /// The lane buffer: 2 * nl * n doubles, sample row i holding the lane
  /// re rails then the lane im rails (see dsp/kernels.h lane layout).
  dsp::RVec soa;
  /// Per-lane scratch scenes for unmemoized waves (reset every wave, so a
  /// stale scene can never replay under a different sweep point).
  std::vector<TxScene> local_scenes;
  /// Per-lane packet RNG state at the noise fork (the scalar path's `rng`
  /// right after build_scene_prenoise).
  std::vector<dsp::Rng> lane_rng;
  /// Ideal RX decimation taps (the RfEngine::kNone path), built lazily.
  dsp::RVec down_taps;
};

}  // namespace wlansim::core
