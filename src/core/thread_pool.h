// Persistent worker pool with chunked dynamic scheduling.
//
// Multi-packet measurements used to spawn and join a fresh set of
// std::threads per call — per sweep point, that is thread creation plus a
// full per-worker WlanLink construction on every point. The pool keeps its
// workers (and whatever per-worker state the caller caches) alive across
// calls, so a 20-point sweep pays the startup cost once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wlansim::core {

class ThreadPool {
 public:
  /// `threads` = total workers participating in parallel_for, including the
  /// calling thread (0 = hardware concurrency). A pool of size 1 runs
  /// everything inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Invoke `fn(worker, index)` for every index in [0, n). Indices are
  /// claimed in contiguous chunks of `chunk` by whichever worker is free
  /// (dynamic scheduling); `worker` is a stable id in [0, size()), with the
  /// calling thread participating as worker 0. Blocks until all indices are
  /// done and returns true. Not reentrant — one parallel_for at a time per
  /// pool. After shutdown() the call is rejected: returns false with NO
  /// index invoked (callers owning result buffers must check).
  bool parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Graceful drain: waits for an in-flight parallel_for to finish its full
  /// index range (nothing is interrupted mid-chunk), rejects any submit
  /// that arrives after this call, then joins the worker threads. Safe to
  /// call while another thread is inside parallel_for, and idempotent —
  /// late/duplicate calls return once the pool is quiescent. The daemon's
  /// SIGTERM path: stop accepting jobs, shutdown() the pool, exit.
  void shutdown();

  /// True once shutdown() has been requested (submits are being rejected).
  bool is_shutdown() const;

  /// Process-wide pool at hardware concurrency, created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop(std::size_t worker);
  void drain(std::size_t worker);

  std::size_t size_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::size_t next_ = 0;        ///< next unclaimed index (guarded by mu_)
  std::size_t generation_ = 0;  ///< bumped per parallel_for
  std::size_t active_ = 0;      ///< helpers still inside the current job
  bool in_flight_ = false;      ///< a parallel_for is between entry and exit
  bool draining_ = false;       ///< shutdown requested; reject new submits
  bool stop_ = false;
};

}  // namespace wlansim::core
