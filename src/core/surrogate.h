// Surrogate-backed BER measurement drivers: answer BER queries from a
// persistent calibration curve (sim/ber_surrogate.h) when one covers the
// query, and from the adaptive Monte-Carlo engine (core/parallel.h) when
// none does — backfilling the store so the next process never pays again.
//
// The split with sim/: sim owns the pure model (curves, interpolation,
// store); this layer owns everything that needs a WlanLink — computing the
// fingerprint key from a LinkConfig, driving sweep_ber_adaptive to fill
// curves, and mapping curve queries back into BerResult.
//
// Determinism: a miss under kFallbackBackfill runs sweep_ber_adaptive on
// exactly the missed configs. Each adaptive point is a pure function of
// (config, rule) — independent of which other points share the call (see
// the contract in core/parallel.h) — so the cold path is bit-identical to
// calling sweep_ber_adaptive directly on the full sweep.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "core/parallel.h"
#include "sim/ber_surrogate.h"

namespace wlansim::core {

/// What to do when no stored curve covers a query point.
enum class SurrogateMissPolicy {
  /// Measure the missed points with sweep_ber_adaptive, return those MC
  /// results (bit-identical to a direct adaptive sweep), and merge them
  /// into the stored curve so the next query hits. The default.
  kFallbackBackfill,
  /// Calibrate a fresh auto-chosen grid spanning the query range (knots at
  /// grid_step spacing, padded by grid_pad on both sides), store it, then
  /// answer every point from the curve.
  kCalibrate,
  /// Throw std::runtime_error. For callers that must never pay MC cost
  /// (e.g. a latency-bound service path).
  kError,
};

struct SurrogateOptions {
  /// Calibration store directory; empty = default_calibration_dir().
  std::filesystem::path store_dir;
  /// Which LinkConfig field the query sweeps (and the curve key's axis).
  sim::SurrogateAxis axis = sim::SurrogateAxis::kSnrDb;
  SurrogateMissPolicy miss_policy = SurrogateMissPolicy::kFallbackBackfill;
  /// Stopping rule for calibration / fallback MC runs.
  sim::StoppingRule rule;
  /// Auto-grid spacing and span padding [dB] for kCalibrate and
  /// calibrate_ber_surrogate. Knots land on multiples of grid_step so
  /// repeated calibrations over overlapping ranges share knots.
  double grid_step = 1.0;
  double grid_pad = 1.0;
  /// Worker threads for MC runs (run_ber_parallel semantics; 0 = shared).
  std::size_t threads = 0;
  /// Optional persistent in-memory cache. Default null: each call builds a
  /// fresh store view, re-reading disk — so deleting a store file between
  /// calls is observed as a miss (and, under kFallbackBackfill, reproduces
  /// the MC result bit-identically). Point at a long-lived sim::BerSurrogate
  /// to skip the disk read in tight loops that own their store's lifetime.
  sim::BerSurrogate* cache = nullptr;
};

/// The calibration store directory queries use when SurrogateOptions::
/// store_dir is empty: $WLANSIM_CALIB_DIR, else $XDG_CACHE_HOME/wlansim/
/// calib, else $HOME/.cache/wlansim/calib, else ./.wlansim-calib.
std::filesystem::path default_calibration_dir();

/// Calibrate (or extend) the curve for `base`'s fingerprint over
/// [x_lo, x_hi]: choose grid knots (multiples of opts.grid_step covering
/// the padded span), measure every knot not already stored via
/// sweep_ber_adaptive under opts.rule, merge, and persist. Returns the
/// resulting curve. Throws std::invalid_argument when `base` is not
/// fingerprintable (custom_rf, or axis kSnrDb with snr_db unset).
sim::CalibrationCurve calibrate_ber_surrogate(const LinkConfig& base,
                                              double x_lo, double x_hi,
                                              const SurrogateOptions& opts);

/// Surrogate-backed sweep: like sweep_ber_adaptive(configs, opts.rule) but
/// each point covered by a stored calibration curve is answered by
/// interpolation (microseconds) instead of packets. Covered points return a
/// BerResult with from_surrogate set, model_ber/model_per filled from the
/// curve, ber_ci_rel the conservative calibrated CI, and zero packet
/// counters; missed points follow opts.miss_policy. All configs must share
/// one surrogate fingerprint (differ only along opts.axis) — otherwise
/// std::invalid_argument.
std::vector<BerResult> sweep_ber_surrogate(std::span<const LinkConfig> configs,
                                           const SurrogateOptions& opts = {});

/// Single-point convenience wrapper over sweep_ber_surrogate.
BerResult run_ber_surrogate(const LinkConfig& cfg,
                            const SurrogateOptions& opts = {});

}  // namespace wlansim::core
