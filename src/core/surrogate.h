// Surrogate-backed BER measurement drivers: answer BER queries from a
// persistent calibration curve (sim/ber_surrogate.h) when one covers the
// query, and from the adaptive Monte-Carlo engine (core/parallel.h) when
// none does — backfilling the store so the next process never pays again.
//
// The split with sim/: sim owns the pure model (curves, interpolation,
// store); this layer owns everything that needs a WlanLink — computing the
// fingerprint key from a LinkConfig, driving sweep_ber_adaptive to fill
// curves, and mapping curve queries back into BerResult.
//
// Determinism: a miss under kFallbackBackfill runs sweep_ber_adaptive on
// exactly the missed configs. Each adaptive point is a pure function of
// (config, rule) — independent of which other points share the call (see
// the contract in core/parallel.h) — so the cold path is bit-identical to
// calling sweep_ber_adaptive directly on the full sweep.
#pragma once

#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "core/parallel.h"
#include "sim/ber_surrogate.h"

namespace wlansim::core {

/// What to do when no stored curve covers a query point.
enum class SurrogateMissPolicy {
  /// Measure the missed points with sweep_ber_adaptive, return those MC
  /// results (bit-identical to a direct adaptive sweep), and merge them
  /// into the stored curve so the next query hits. The default.
  kFallbackBackfill,
  /// Calibrate a fresh auto-chosen grid spanning the query range (knots at
  /// grid_step spacing, padded by grid_pad on both sides), store it, then
  /// answer every point from the curve.
  kCalibrate,
  /// Throw std::runtime_error. For callers that must never pay MC cost
  /// (e.g. a latency-bound service path).
  kError,
};

struct SurrogateOptions {
  /// Calibration store directory; empty = default_calibration_dir().
  std::filesystem::path store_dir;
  /// Which LinkConfig field the query sweeps (and the curve key's axis).
  sim::SurrogateAxis axis = sim::SurrogateAxis::kSnrDb;
  SurrogateMissPolicy miss_policy = SurrogateMissPolicy::kFallbackBackfill;
  /// Stopping rule for calibration / fallback MC runs.
  sim::StoppingRule rule;
  /// Auto-grid spacing and span padding [dB] for kCalibrate and
  /// calibrate_ber_surrogate. Knots land on multiples of grid_step so
  /// repeated calibrations over overlapping ranges share knots.
  double grid_step = 1.0;
  double grid_pad = 1.0;
  /// Worker threads for MC runs (run_ber_parallel semantics; 0 = shared).
  std::size_t threads = 0;
  /// Optional persistent in-memory cache. Default null: each call builds a
  /// fresh store view, re-reading disk — so deleting a store file between
  /// calls is observed as a miss (and, under kFallbackBackfill, reproduces
  /// the MC result bit-identically). Point at a long-lived sim::BerSurrogate
  /// to skip the disk read in tight loops that own their store's lifetime.
  sim::BerSurrogate* cache = nullptr;
};

/// The calibration store directory queries use when SurrogateOptions::
/// store_dir is empty: $WLANSIM_CALIB_DIR, else $XDG_CACHE_HOME/wlansim/
/// calib, else $HOME/.cache/wlansim/calib, else ./.wlansim-calib.
std::filesystem::path default_calibration_dir();

/// Calibrate (or extend) the curve for `base`'s fingerprint over
/// [x_lo, x_hi]: choose grid knots (multiples of opts.grid_step covering
/// the padded span), measure every knot not already stored via
/// sweep_ber_adaptive under opts.rule, merge, and persist. Returns the
/// resulting curve. Throws std::invalid_argument when `base` is not
/// fingerprintable (custom_rf, or axis kSnrDb with snr_db unset).
sim::CalibrationCurve calibrate_ber_surrogate(const LinkConfig& base,
                                              double x_lo, double x_hi,
                                              const SurrogateOptions& opts);

/// Surrogate-backed sweep: like sweep_ber_adaptive(configs, opts.rule) but
/// each point covered by a stored calibration curve is answered by
/// interpolation (microseconds) instead of packets. Covered points return a
/// BerResult with from_surrogate set, model_ber/model_per filled from the
/// curve, ber_ci_rel the conservative calibrated CI, and zero packet
/// counters; missed points follow opts.miss_policy. All configs must share
/// one surrogate fingerprint (differ only along opts.axis) — otherwise
/// std::invalid_argument.
std::vector<BerResult> sweep_ber_surrogate(std::span<const LinkConfig> configs,
                                           const SurrogateOptions& opts = {});

/// Single-point convenience wrapper over sweep_ber_surrogate.
BerResult run_ber_surrogate(const LinkConfig& cfg,
                            const SurrogateOptions& opts = {});

// ---------------------------------------------------------------------------
// Deduplicated, pooled link evaluation (the network-scale drop core)
// ---------------------------------------------------------------------------
//
// A multi-user drop asks for thousands-to-millions of link evaluations, but
// the queries collapse onto a few hundred distinct (front-end fingerprint,
// quantized-axis) points: stations share the base link configuration and
// differ only in geometry-derived SNR. sweep_ber_deduped exploits that:
// quantize, deduplicate, answer warm keys from the calibration store, run
// every cold key in ONE pooled sweep_ber_adaptive pass (so the wave
// scheduler's cross-point work stealing and TX-scene memoization keep
// sharing work across the whole miss list), backfill the store, and scatter
// results back to the full query list.

/// Snap `x` onto the quantization grid: the nearest multiple of
/// `bin_width` (std::round ties go away from zero, so the mapping is
/// symmetric around 0 and platform-independent). bin_width <= 0 disables
/// quantization and returns `x` unchanged.
double quantize_axis(double x, double bin_width);

/// A replacement for the pooled cold pass (see DedupOptions::cold_pass and
/// scenario::DropConfig::cold_pass). The contract: the function MUST return
/// results bit-identical to sweep_ber_adaptive(cfgs, rule, sweep_opts) for
/// every field except wall_seconds — each point is a pure function of
/// (config, rule), so a conforming implementation may checkpoint, resume,
/// or shard the pass across worker processes (service/shard.h) without
/// changing a single bit of any result. A hook that cannot finish
/// (preemption) should throw; the exception propagates out before any
/// store backfill.
using ColdPassFn = std::function<std::vector<BerResult>(
    std::span<const LinkConfig>, const sim::StoppingRule&,
    const SweepOptions&)>;

struct DedupOptions {
  /// Store / axis / rule / threads / cache — the same knobs as the plain
  /// surrogate drivers. miss_policy is ignored: cold keys always run in
  /// the pooled adaptive pass and backfill (kFallbackBackfill semantics).
  SurrogateOptions surrogate;
  /// Axis quantization bin width [dB]: every query's axis value snaps to
  /// the nearest multiple before keying AND evaluation, so a key's result
  /// is exactly what a direct measurement of its representative config
  /// would produce. See docs/PERFORMANCE.md for choosing the width
  /// against the stopping rule's CI.
  double bin_width_db = 0.5;
  /// false: never touch the calibration store — every distinct key runs
  /// in the pooled pass and nothing is persisted (pure deduplication).
  bool use_store = true;
  /// Optional replacement for the pooled cold pass. Null (the default)
  /// runs sweep_ber_adaptive(cfgs, rule, sweep_opts) directly; a service
  /// layer substitutes a checkpointing wrapper (run_cold_pass_checkpointed)
  /// or a sharded coordinator fanning the pass out across worker processes
  /// (service/shard.h) here. The cold keys reach the hook in
  /// first-appearance order — the order a shard partition is defined
  /// against. See ColdPassFn for the bit-identity contract; the dedup
  /// layer backfills the store from the hook's results, and an exception
  /// (preemption) propagates out of sweep_ber_deduped before any backfill,
  /// leaving the store untouched.
  ColdPassFn cold_pass;
};

struct DedupStats {
  std::size_t queries = 0;   ///< configs in
  std::size_t distinct = 0;  ///< distinct (fingerprint, bin) keys
  std::size_t warm = 0;      ///< keys answered from a stored curve
  std::size_t cold = 0;      ///< keys measured in the pooled adaptive pass

  DedupStats& operator+=(const DedupStats& o) {
    queries += o.queries;
    distinct += o.distinct;
    warm += o.warm;
    cold += o.cold;
    return *this;
  }
};

/// Evaluate every config, deduplicated by (surrogate_fingerprint,
/// quantized-axis-bin). Unlike sweep_ber_surrogate the configs may span
/// multiple fingerprints (e.g. stations with different quantized
/// interferer levels); each fingerprint group keys its own calibration
/// curve. out[i] is the result of the representative config of i's key:
/// bit-identical to run_ber_adaptive on that config when the key was cold,
/// and the stored curve's knot-exact answer when warm. Axis values must be
/// finite; throws std::invalid_argument on a non-fingerprintable config.
std::vector<BerResult> sweep_ber_deduped(std::span<const LinkConfig> configs,
                                         const DedupOptions& opts,
                                         DedupStats* stats = nullptr);

}  // namespace wlansim::core
