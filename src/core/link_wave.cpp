// The lockstep packet wave: width-W SoA batching of the noise + RF +
// decimation half of the link. Each lane reproduces the scalar per-packet
// path bit for bit — lanes share loop control and memory traffic, never
// arithmetic — so run_packet_wave is a pure throughput optimization under
// the determinism contract of core/parallel.h.
//
// Per lane the scalar sequence being replicated is exactly
// run_packet_impl: rng(packet_seed) -> scrambler seed -> payload ->
// modulate -> [fading] -> pad -> build_scene_prenoise (TX impairments +
// interferer, per-lane AoS since it is packet-specific and cheap), then
// pack into the SoA buffer and run the shared half in lockstep:
// fork 1 = AWGN normals, fork 2 = front-end reseed, fused RF lane tiles,
// phase-0 decimation, DSP receiver epilogue.
#include <cmath>
#include <memory>
#include <utility>

#include "channel/fading.h"
#include "core/packet_batch.h"
#include "dsp/kernels.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "phy80211a/bits.h"
#include "rf/receiver_chain.h"

namespace wlansim::core {

bool WlanLink::run_packet_wave(std::uint64_t begin_index, std::size_t count,
                               PacketBatch& batch, TxScene* scenes,
                               PacketResult* out) {
  namespace kn = dsp::kernels;
  if (count < 2 || count > kn::kLaneWidth) return false;
  if (!use_direct_path()) return false;
  if (cfg_.rf_engine != RfEngine::kNone &&
      cfg_.rf_engine != RfEngine::kSystemLevel)
    return false;

  if (cfg_.rf_engine == RfEngine::kSystemLevel) {
    // The front-end is constructed once per link; the construction rng is
    // irrelevant because every lane (and every later scalar packet) resets
    // and reseeds it before use — the documented reset()+reseed() ==
    // fresh-construction equivalence.
    if (!ws_.frontend)
      ws_.frontend = std::make_unique<rf::DoubleConversionReceiver>(
          cfg_.rf, dsp::Rng(packet_seed(cfg_.seed, begin_index)));
    ws_.frontend->reset();
    if (!ws_.frontend->supports_lanes()) return false;
  }

  // --- Per-lane TX build or scene replay (packet-specific, sequential) ----
  batch.local_scenes.resize(count);
  batch.lane_rng.resize(count);
  std::size_t scene_len = 0;
  std::size_t base_units = 0;

  for (std::size_t l = 0; l < count; ++l) {
    const std::uint64_t idx = begin_index + l;
    TxScene* sc = scenes != nullptr ? &scenes[l] : &batch.local_scenes[l];
    const dsp::Cplx* src;
    std::size_t lane_len, lane_units;

    if (scenes != nullptr && sc->valid_ && sc->packet_index_ == idx) {
      // Replay: restore the packet rng at the noise fork.
      batch.lane_rng[l] = sc->rng_post_tx_;
      src = sc->scene_.data();
      lane_len = sc->scene_.size();
      lane_units = sc->base_units_;
    } else {
      sc->reset();
      dsp::Rng rng(packet_seed(cfg_.seed, idx));

      phy::Transmitter::Config txc;
      txc.scrambler_seed =
          static_cast<std::uint8_t>(1 + rng.uniform_int(0, 126));
      txc.output_power_dbm = cfg_.rx_power_dbm;
      phy::Transmitter tx(txc);
      phy::Bytes payload = phy::random_bytes(cfg_.psdu_bytes, rng);
      const phy::Frame frame{cfg_.rate, payload};
      dsp::CVec wave = tx.modulate(frame);

      if (cfg_.fading.has_value()) {
        channel::FadingConfig fc = *cfg_.fading;
        fc.sample_rate_hz = phy::kSampleRate;
        const channel::MultipathChannel mp(fc, rng);
        wave = mp.apply(wave);
      }

      dsp::CVec& padded = ws_.padded;
      padded.clear();
      padded.reserve(cfg_.lead_samples + wave.size() + cfg_.tail_samples);
      padded.insert(padded.end(), cfg_.lead_samples, dsp::Cplx{0.0, 0.0});
      padded.insert(padded.end(), wave.begin(), wave.end());
      padded.insert(padded.end(), cfg_.tail_samples, dsp::Cplx{0.0, 0.0});

      lane_units = build_scene_prenoise(padded, rng);
      sc->valid_ = true;
      sc->packet_index_ = idx;
      sc->scrambler_seed_ = txc.scrambler_seed;
      sc->payload_ = std::move(payload);
      sc->base_units_ = lane_units;
      sc->rng_post_tx_ = rng;
      sc->noise_units_.clear();
      if (scenes != nullptr)
        sc->scene_.assign(ws_.scene_a.begin(), ws_.scene_a.end());
      batch.lane_rng[l] = rng;
      src = ws_.scene_a.data();
      lane_len = ws_.scene_a.size();
    }

    if (l == 0) {
      scene_len = lane_len;
      base_units = lane_units;
      if (scene_len == 0) return false;
      batch.soa.resize(2 * count * scene_len);
    } else if (lane_len != scene_len || lane_units != base_units) {
      // Same-config packets always match; bail to the scalar path if a
      // caller mixes configurations. Scenes built so far stay valid.
      return false;
    }
    kn::lanes_pack(src, scene_len, count, l, batch.soa.data());
  }

  double* soa = batch.soa.data();
  const std::size_t n = scene_len;
  const std::size_t os = cfg_.oversample;

  // --- Channel noise (fork 1 per lane, same arithmetic as the scalar
  // add_scaled_pairs path, just strided into the lane) --------------------
  const double p_sig = dsp::dbm_to_watts(cfg_.rx_power_dbm);
  const double fs_over = cfg_.rf.sample_rate_hz;
  double n_total =
      cfg_.antenna_noise_density_dbm_hz > -250.0
          ? dsp::dbm_to_watts(cfg_.antenna_noise_density_dbm_hz) * fs_over
          : 0.0;
  if (cfg_.snr_db.has_value()) {
    n_total += p_sig / dsp::from_db(*cfg_.snr_db) * static_cast<double>(os);
  }
  if (n_total > 0.0) {
    const double s = std::sqrt(n_total / 2.0);
    // Gather every lane's unit normals first (cached in the scene on the
    // memo path, else in a per-lane segment of the batch scratch), then add
    // them all in one fused row-major pass over the SoA buffer.
    const double* units[dsp::kernels::kLaneWidth];
    if (scenes == nullptr) ws_.noise_scratch.resize(2 * n * count);
    for (std::size_t l = 0; l < count; ++l) {
      dsp::Rng nrng = batch.lane_rng[l].fork();
      if (scenes != nullptr) {
        dsp::RVec& cached = scenes[l].noise_units_;
        if (cached.empty()) {
          cached.resize(2 * n);
          nrng.fill_gaussian(cached.data(), cached.size());
        }
        units[l] = cached.data();
      } else {
        double* seg = ws_.noise_scratch.data() + l * 2 * n;
        nrng.fill_gaussian(seg, 2 * n);
        units[l] = seg;
      }
    }
    kn::lanes_add_scaled_pairs_multi(soa, n, count, s, units);
  }

  // --- RF front-end: all lanes through the fused tile loop ---------------
  if (cfg_.rf_engine == RfEngine::kSystemLevel) {
    rf::DoubleConversionReceiver& fe = *ws_.frontend;
    fe.begin_lanes(count);
    for (std::size_t l = 0; l < count; ++l) {
      fe.reseed_lanes(l, batch.lane_rng[l].fork());
      dsp::RVec* lna_tape = nullptr;
      dsp::RVec* flicker_tape = nullptr;
      if (scenes != nullptr) {
        // A tape is usable only when empty (record) or complete (replay);
        // anything else would desync the lane rng stream mid-buffer, so
        // draw fresh instead. TxScene::reset() clears tapes on rebuild,
        // which makes a same-length stale tape impossible.
        TxScene& sc = scenes[l];
        if (sc.lna_tape_.empty() || sc.lna_tape_.size() == 2 * n)
          lna_tape = &sc.lna_tape_;
        if (sc.flicker_tape_.empty() || sc.flicker_tape_.size() == 2 * n)
          flicker_tape = &sc.flicker_tape_;
      }
      fe.set_lane_tapes(l, lna_tape, flicker_tape);
    }
    fe.process_tile_lanes(soa, n, count);
  }

  // --- Phase-0 decimation + DSP receiver, one lane at a time -------------
  for (std::size_t l = 0; l < count; ++l) {
    TxScene* sc = scenes != nullptr ? &scenes[l] : &batch.local_scenes[l];
    if (os > 1) {
      last_rx_.resize(base_units);
      if (cfg_.rf_engine == RfEngine::kNone) {
        if (batch.down_taps.empty()) batch.down_taps = dsp::resampling_taps(os);
        kn::lanes_fir_decim(soa, n, count, l, batch.down_taps.data(),
                            batch.down_taps.size(), os, last_rx_.data());
      } else {
        kn::lanes_unpack_decim(soa, n, count, l, os, last_rx_.data());
      }
    } else {
      last_rx_.resize(n);
      kn::lanes_unpack(soa, n, count, l, last_rx_.data());
    }
    // The scene always carries (scrambler seed, payload) here, so the EVM
    // reference reconstruction inside is bit-identical to the live-tx one
    // the unmemoized scalar path uses — a pure function of those two.
    out[l] = receiver_epilogue(sc->payload_, nullptr, nullptr, sc, nullptr);
  }
  return true;
}

}  // namespace wlansim::core
