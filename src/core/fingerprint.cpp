#include "core/fingerprint.h"

#include <optional>
#include <type_traits>

namespace wlansim::core {

namespace {

template <typename T>
void put(std::string& s, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  s.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void put_opt(std::string& s, const std::optional<T>& v) {
  put(s, v.has_value());
  if (v.has_value()) put(s, *v);
}

}  // namespace

std::string link_fingerprint(const LinkConfig& c) {
  if (c.custom_rf) return {};
  std::string s;
  s.reserve(256);
  put(s, c.rate);
  put(s, c.psdu_bytes);
  put(s, c.rx_power_dbm);
  put_opt(s, c.snr_db);
  put(s, c.antenna_noise_density_dbm_hz);
  put(s, c.fading.has_value());
  if (c.fading) {
    put(s, c.fading->rms_delay_spread_s);
    put(s, c.fading->sample_rate_hz);
    put(s, c.fading->truncation);
    put(s, c.fading->normalize);
  }
  put(s, c.interferer.has_value());
  if (c.interferer) {
    put(s, c.interferer->offset_hz);
    put(s, c.interferer->level_db);
    put(s, c.interferer->rate);
    put(s, c.interferer->psdu_bytes);
  }
  put(s, c.sco_ppm);
  put_opt(s, c.tx_pa_backoff_db);
  put(s, c.tx_pa_model);
  put(s, c.tx_pa_am_pm_max_deg);
  put(s, c.tx_iq_gain_imbalance_db);
  put(s, c.tx_iq_phase_error_deg);
  put(s, c.tx_lo_leakage_rel);
  put(s, c.rf_engine);
  put(s, c.oversample);

  const rf::DoubleConversionConfig& rf = c.rf;
  put(s, rf.sample_rate_hz);
  put(s, rf.lna_gain_db);
  put(s, rf.lna_nf_db);
  put(s, rf.lna_p1db_in_dbm);
  put(s, rf.lna_model);
  put(s, rf.lna_am_pm_max_deg);
  put(s, rf.mixer1_gain_db);
  put(s, rf.mixer2_gain_db);
  put(s, rf.lo_offset_hz);
  put(s, rf.lo_phase_noise.level_dbc_hz);
  put(s, rf.lo_phase_noise.offset_hz);
  put(s, rf.mixer1_image_rejection_db);
  put(s, rf.mixer2_dc_offset);
  put(s, rf.mixer2_flicker_power_dbm);
  put(s, rf.flicker_corner_hz);
  put(s, rf.hpf_order);
  put(s, rf.hpf_cutoff_hz);
  put(s, rf.bb_filter_order);
  put(s, rf.bb_filter_ripple_db);
  put(s, rf.bb_filter_edge_hz);
  put(s, rf.bb_bandwidth_factor);
  put(s, rf.agc.target_power_dbm);
  put(s, rf.agc.max_gain_db);
  put(s, rf.agc.min_gain_db);
  put(s, rf.agc.loop_gain);
  put(s, rf.agc.attack_db_per_sample);
  put(s, rf.agc.decay_db_per_sample);
  put(s, rf.agc.detector_time_const);
  put(s, rf.agc.initial_gain_db);
  put(s, rf.agc.lock_window_db);
  put(s, rf.agc.lock_count);
  put(s, rf.agc.unlock_window_db);
  put(s, rf.adc.bits);
  put(s, rf.adc.full_scale);
  put(s, rf.adc.enabled);
  put(s, rf.noise_enabled);

  put(s, c.cosim.analog_oversample);
  put(s, c.cosim.supports_noise_functions);
  put(s, c.cosim.sync_overhead_ops);
  put(s, c.receiver.track_phase);
  put(s, c.receiver.track_timing);
  put(s, c.receiver.detect_threshold);
  put(s, c.receiver.chanest_smoothing);
  put(s, c.mode);
  put(s, c.packet_path);
  put(s, c.lead_samples);
  put(s, c.tail_samples);
  put(s, c.seed);
  return s;
}

std::string tx_scene_fingerprint(const LinkConfig& c) {
  if (c.custom_rf) return {};
  std::string s;
  s.reserve(160);
  put(s, c.rate);
  put(s, c.psdu_bytes);
  put(s, c.rx_power_dbm);
  put(s, c.fading.has_value());
  if (c.fading) {
    put(s, c.fading->rms_delay_spread_s);
    put(s, c.fading->sample_rate_hz);
    put(s, c.fading->truncation);
    put(s, c.fading->normalize);
  }
  put(s, c.interferer.has_value());
  if (c.interferer) {
    put(s, c.interferer->offset_hz);
    put(s, c.interferer->level_db);
    put(s, c.interferer->rate);
    put(s, c.interferer->psdu_bytes);
  }
  put(s, c.sco_ppm);
  put_opt(s, c.tx_pa_backoff_db);
  put(s, c.tx_pa_model);
  put(s, c.tx_pa_am_pm_max_deg);
  put(s, c.tx_iq_gain_imbalance_db);
  put(s, c.tx_iq_phase_error_deg);
  put(s, c.tx_lo_leakage_rel);
  put(s, c.rf_engine);
  put(s, c.oversample);
  put(s, c.mode);
  put(s, c.packet_path);
  put(s, c.lead_samples);
  put(s, c.tail_samples);
  put(s, c.seed);
  return s;
}

std::string surrogate_fingerprint(const LinkConfig& c,
                                  sim::SurrogateAxis axis) {
  // Canonicalize the axis field to a fixed value, so configs differing
  // only along the axis serialize identically; the leading tag byte keeps
  // curves of different axes (and a canonicalized config that genuinely
  // has the canonical value) from colliding.
  LinkConfig canon = c;
  switch (axis) {
    case sim::SurrogateAxis::kSnrDb:
      if (!canon.snr_db.has_value()) return {};
      canon.snr_db = 0.0;
      break;
    case sim::SurrogateAxis::kRxPowerDbm:
      canon.rx_power_dbm = 0.0;
      break;
  }
  std::string body = link_fingerprint(canon);
  if (body.empty()) return {};
  std::string s;
  s.reserve(body.size() + 2);
  put(s, static_cast<std::uint8_t>(axis));
  s += body;
  return s;
}

}  // namespace wlansim::core
