#include "core/experiments.h"

#include <chrono>
#include <cmath>

#include "core/parallel.h"
#include "dsp/mathutil.h"

namespace wlansim::core {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::map<std::string, double> ber_row(const BerResult& r) {
  return {{"ber", r.ber()}, {"per", r.per()}, {"evm", r.evm_rms_avg}};
}

}  // namespace

LinkConfig default_link_config() {
  LinkConfig cfg;
  cfg.rate = phy::Rate::kMbps24;
  cfg.psdu_bytes = 200;
  cfg.rx_power_dbm = -65.0;
  cfg.snr_db = 25.0;
  cfg.rf_engine = RfEngine::kSystemLevel;
  cfg.oversample = 4;
  cfg.seed = 2003;  // venue year
  return cfg;
}

SpectrumResult experiment_fig4_spectrum(LinkConfig base) {
  if (!base.interferer.has_value()) {
    channel::InterfererConfig jam;
    jam.offset_hz = 20e6;
    jam.level_db = 16.0;
    base.interferer = jam;
  }
  // A longer packet gives the PSD estimator more segments.
  base.psdu_bytes = 1000;
  WlanLink link(base);
  (void)link.run_packet(0);

  SpectrumResult out;
  out.sample_rate_hz = base.rf.sample_rate_hz;
  out.offset_hz = base.interferer->offset_hz;
  dsp::WelchConfig wc;
  wc.nfft = 1024;
  out.psd = dsp::welch_psd(link.last_rf_input(), wc);

  const double bw_norm = 16.6e6 / out.sample_rate_hz;
  out.wanted_power_dbm =
      dsp::watts_to_dbm(out.psd.band_power(0.0, bw_norm));
  out.adjacent_power_dbm = dsp::watts_to_dbm(
      out.psd.band_power(out.offset_hz / out.sample_rate_hz, bw_norm));
  return out;
}

sim::SweepResult experiment_fig5_filter_bandwidth(
    LinkConfig base, const std::vector<double>& bandwidth_factors,
    std::size_t packets_per_point) {
  if (!base.interferer.has_value()) {
    channel::InterfererConfig jam;
    jam.offset_hz = 20e6;
    jam.level_db = 16.0;
    base.interferer = jam;
  }
  return sim::run_sweep(
      "bandwidth_factor", bandwidth_factors,
      [&](double factor) {
        LinkConfig cfg = base;
        cfg.rf.bb_bandwidth_factor = factor;
        WlanLink link(cfg);
        return ber_row(link.run_ber(packets_per_point));
      });
}

sim::SweepResult experiment_fig6_compression(
    LinkConfig base, const std::vector<double>& p1db_dbm,
    std::size_t packets_per_point) {
  // The +40 MHz non-adjacent channel needs 8x oversampling to stay inside
  // Nyquist (paper §4.1: "over-sampled to fulfill the sampling theorem").
  base.oversample = std::max<std::size_t>(base.oversample, 8);
  // Drive levels matching the paper's spec (§2.2): strong wanted signal,
  // adjacent +16 dB, non-adjacent (second adjacent) +32 dB.
  base.rx_power_dbm = -40.0;

  return sim::run_sweep(
      "lna_p1db_dbm", p1db_dbm,
      [&](double p1db) {
        std::map<std::string, double> row;

        LinkConfig adj = base;
        adj.rf.lna_p1db_in_dbm = p1db;
        adj.interferer = channel::InterfererConfig{
            .offset_hz = 20e6, .level_db = 16.0};
        WlanLink link_adj(adj);
        const BerResult a = link_adj.run_ber(packets_per_point);
        row["ber_adjacent"] = a.ber();
        row["per_adjacent"] = a.per();

        LinkConfig non = base;
        non.rf.lna_p1db_in_dbm = p1db;
        non.interferer = channel::InterfererConfig{
            .offset_hz = 40e6, .level_db = 32.0};
        WlanLink link_non(non);
        const BerResult b = link_non.run_ber(packets_per_point);
        row["ber_nonadjacent"] = b.ber();
        row["per_nonadjacent"] = b.per();
        return row;
      });
}

sim::SweepResult experiment_ip3_sweep(LinkConfig base,
                                      const std::vector<double>& iip3_dbm,
                                      std::size_t packets_per_point) {
  if (!base.interferer.has_value()) {
    base.interferer =
        channel::InterfererConfig{.offset_hz = 20e6, .level_db = 16.0};
  }
  base.rx_power_dbm = -40.0;
  base.rf.lna_model = rf::NonlinearityModel::kClippedCubic;
  return sim::run_sweep(
      "lna_iip3_dbm", iip3_dbm,
      [&](double iip3) {
        LinkConfig cfg = base;
        // For the cubic model IIP3 sits 9.6 dB above P1dB.
        cfg.rf.lna_p1db_in_dbm = iip3 - 9.6;
        WlanLink link(cfg);
        return ber_row(link.run_ber(packets_per_point));
      });
}

sim::SweepResult experiment_ber_waterfall_adaptive(
    LinkConfig base, const std::vector<double>& snrs_db,
    const sim::StoppingRule& rule, std::size_t threads) {
  std::vector<LinkConfig> points;
  points.reserve(snrs_db.size());
  for (const double snr : snrs_db) {
    LinkConfig cfg = base;
    cfg.snr_db = snr;
    points.push_back(cfg);
  }
  SweepOptions opts;
  opts.threads = threads;
  const std::vector<BerResult> results =
      sweep_ber_adaptive(points, rule, opts);

  sim::SweepResult out;
  out.param_name = "snr_db";
  out.rows.reserve(snrs_db.size());
  for (std::size_t k = 0; k < snrs_db.size(); ++k) {
    const BerResult& r = results[k];
    std::map<std::string, double> row = ber_row(r);
    row["packets"] = static_cast<double>(r.packets);
    row["bit_errors"] = static_cast<double>(r.bit_errors);
    row["ci_rel"] = r.ber_ci_rel;
    row["converged"] = r.converged ? 1.0 : 0.0;
    row["wall_s"] = r.wall_seconds;
    out.rows.push_back(sim::SweepRow{snrs_db[k], std::move(row)});
  }
  return out;
}

std::vector<TimingRow> experiment_table2_timing(
    LinkConfig base, const std::vector<std::size_t>& packet_counts) {
  std::vector<TimingRow> rows;
  for (std::size_t n : packet_counts) {
    TimingRow row;
    row.packets = n;

    LinkConfig sys = base;
    sys.rf_engine = RfEngine::kSystemLevel;
    {
      WlanLink link(sys);
      const double t0 = now_seconds();
      (void)link.run_ber(n);
      row.system_seconds = now_seconds() - t0;
    }

    LinkConfig co = base;
    co.rf_engine = RfEngine::kCosim;
    {
      WlanLink link(co);
      const double t0 = now_seconds();
      (void)link.run_ber(n);
      row.cosim_seconds = now_seconds() - t0;
    }

    row.ratio = row.system_seconds > 0.0
                    ? row.cosim_seconds / row.system_seconds
                    : 0.0;
    rows.push_back(row);
  }
  return rows;
}

sim::SweepResult experiment_evm_vs_power(LinkConfig base,
                                         const std::vector<double>& rx_dbm,
                                         std::size_t packets_per_point) {
  return sim::run_sweep(
      "rx_power_dbm", rx_dbm,
      [&](double dbm) {
        LinkConfig cfg = base;
        cfg.rx_power_dbm = dbm;
        WlanLink link(cfg);
        const BerResult r = link.run_ber(packets_per_point);
        return std::map<std::string, double>{
            {"evm_percent", 100.0 * r.evm_rms_avg},
            {"evm_db", r.evm_rms_avg > 0.0
                           ? 20.0 * std::log10(r.evm_rms_avg)
                           : -100.0},
            {"ber", r.ber()}};
      });
}

NoiseGapResult experiment_noise_gap(LinkConfig base,
                                    std::size_t packets_per_point) {
  // The gap concerns the RF subsystem's own noise sources; remove channel
  // noise so they dominate, and run close to sensitivity.
  base.snr_db.reset();
  NoiseGapResult out;

  LinkConfig sys = base;
  sys.rf_engine = RfEngine::kSystemLevel;
  sys.rf.noise_enabled = true;
  {
    WlanLink link(sys);
    const BerResult r = link.run_ber(packets_per_point);
    out.ber_system = r.ber();
    out.evm_system = r.evm_rms_avg;
  }

  LinkConfig co = base;
  co.rf_engine = RfEngine::kCosim;
  co.rf.noise_enabled = true;
  co.cosim.supports_noise_functions = false;  // the AMS 2.0 limitation
  {
    WlanLink link(co);
    const BerResult r = link.run_ber(packets_per_point);
    out.ber_cosim_nonoise = r.ber();
    out.evm_cosim_nonoise = r.evm_rms_avg;
  }

  LinkConfig fixed = co;
  fixed.cosim.supports_noise_functions = true;  // the paper's workaround
  {
    WlanLink link(fixed);
    const BerResult r = link.run_ber(packets_per_point);
    out.ber_cosim_fixed = r.ber();
  }
  return out;
}

}  // namespace wlansim::core
