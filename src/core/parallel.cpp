#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>

#include "core/thread_pool.h"

namespace wlansim::core {

namespace {

/// Packets per scheduling chunk: large enough that chunk handoff is noise
/// next to a packet's cost, small enough to balance tail latency.
constexpr std::size_t kPacketChunk = 8;

template <typename T>
void put(std::string& s, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  s.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void put_opt(std::string& s, const std::optional<T>& v) {
  put(s, v.has_value());
  if (v.has_value()) put(s, *v);
}

/// Byte-exact serialization of every LinkConfig field that influences
/// run_packet, used as the worker-side link-cache key. Field-by-field (never
/// whole structs) so padding bytes cannot poison the comparison. Returns ""
/// when the config is not fingerprintable (callable members).
std::string fingerprint(const LinkConfig& c) {
  if (c.custom_rf) return {};
  std::string s;
  s.reserve(256);
  put(s, c.rate);
  put(s, c.psdu_bytes);
  put(s, c.rx_power_dbm);
  put_opt(s, c.snr_db);
  put(s, c.antenna_noise_density_dbm_hz);
  put(s, c.fading.has_value());
  if (c.fading) {
    put(s, c.fading->rms_delay_spread_s);
    put(s, c.fading->sample_rate_hz);
    put(s, c.fading->truncation);
    put(s, c.fading->normalize);
  }
  put(s, c.interferer.has_value());
  if (c.interferer) {
    put(s, c.interferer->offset_hz);
    put(s, c.interferer->level_db);
    put(s, c.interferer->rate);
    put(s, c.interferer->psdu_bytes);
  }
  put(s, c.sco_ppm);
  put_opt(s, c.tx_pa_backoff_db);
  put(s, c.tx_pa_model);
  put(s, c.tx_pa_am_pm_max_deg);
  put(s, c.tx_iq_gain_imbalance_db);
  put(s, c.tx_iq_phase_error_deg);
  put(s, c.tx_lo_leakage_rel);
  put(s, c.rf_engine);
  put(s, c.oversample);

  const rf::DoubleConversionConfig& rf = c.rf;
  put(s, rf.sample_rate_hz);
  put(s, rf.lna_gain_db);
  put(s, rf.lna_nf_db);
  put(s, rf.lna_p1db_in_dbm);
  put(s, rf.lna_model);
  put(s, rf.lna_am_pm_max_deg);
  put(s, rf.mixer1_gain_db);
  put(s, rf.mixer2_gain_db);
  put(s, rf.lo_offset_hz);
  put(s, rf.lo_phase_noise.level_dbc_hz);
  put(s, rf.lo_phase_noise.offset_hz);
  put(s, rf.mixer1_image_rejection_db);
  put(s, rf.mixer2_dc_offset);
  put(s, rf.mixer2_flicker_power_dbm);
  put(s, rf.flicker_corner_hz);
  put(s, rf.hpf_order);
  put(s, rf.hpf_cutoff_hz);
  put(s, rf.bb_filter_order);
  put(s, rf.bb_filter_ripple_db);
  put(s, rf.bb_filter_edge_hz);
  put(s, rf.bb_bandwidth_factor);
  put(s, rf.agc.target_power_dbm);
  put(s, rf.agc.max_gain_db);
  put(s, rf.agc.min_gain_db);
  put(s, rf.agc.loop_gain);
  put(s, rf.agc.attack_db_per_sample);
  put(s, rf.agc.decay_db_per_sample);
  put(s, rf.agc.detector_time_const);
  put(s, rf.agc.initial_gain_db);
  put(s, rf.agc.lock_window_db);
  put(s, rf.agc.lock_count);
  put(s, rf.agc.unlock_window_db);
  put(s, rf.adc.bits);
  put(s, rf.adc.full_scale);
  put(s, rf.adc.enabled);
  put(s, rf.noise_enabled);

  put(s, c.cosim.analog_oversample);
  put(s, c.cosim.supports_noise_functions);
  put(s, c.cosim.sync_overhead_ops);
  put(s, c.receiver.track_phase);
  put(s, c.receiver.track_timing);
  put(s, c.receiver.detect_threshold);
  put(s, c.receiver.chanest_smoothing);
  put(s, c.mode);
  put(s, c.packet_path);
  put(s, c.lead_samples);
  put(s, c.tail_samples);
  put(s, c.seed);
  return s;
}

/// The calling worker's cached link, rebuilt only when the key changes.
/// Lives on the pool's persistent threads, so repeated measurements of one
/// configuration construct each worker's link exactly once.
WlanLink& worker_link(const LinkConfig& cfg, const std::string& key) {
  thread_local std::string cached_key;
  thread_local std::unique_ptr<WlanLink> link;
  if (!link || cached_key != key) {
    link = std::make_unique<WlanLink>(cfg);
    cached_key = key;
  }
  return *link;
}

BerResult reduce_in_packet_order(const std::vector<PacketResult>& results) {
  // Sequential fold in packet order — the exact arithmetic of
  // WlanLink::run_ber, so the parallel result matches bit for bit.
  BerResult agg;
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  for (const PacketResult& r : results) {
    ++agg.packets;
    agg.bits += r.bits;
    agg.bit_errors += r.bit_errors;
    if (r.bit_errors > 0 || !r.decoded) ++agg.packet_errors;
    if (!r.decoded) {
      ++agg.packets_lost;
    } else {
      evm_acc += r.evm_rms;
      ++evm_n;
    }
  }
  agg.evm_rms_avg = evm_n ? evm_acc / static_cast<double>(evm_n) : 0.0;
  return agg;
}

}  // namespace

BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads) {
  if (num_packets == 0) return {};

  std::string key = fingerprint(cfg);
  if (key.empty()) {
    // Not fingerprintable: key the cache to this call so links are fresh
    // per call but still shared by all packets of the call.
    static std::atomic<std::uint64_t> serial{0};
    key = "#call-" + std::to_string(++serial);
  }

  std::vector<PacketResult> results(num_packets);
  const auto body = [&](std::size_t /*worker*/, std::size_t i) {
    results[i] = worker_link(cfg, key).run_packet(i);
  };

  // More threads than 8-packet chunks would only contend on the queue.
  const std::size_t max_useful = (num_packets + kPacketChunk - 1) / kPacketChunk;
  if (threads == 0) {
    ThreadPool::shared().parallel_for(num_packets, kPacketChunk, body);
  } else if (std::min(threads, max_useful) <= 1) {
    for (std::size_t i = 0; i < num_packets; ++i) body(0, i);
  } else {
    ThreadPool dedicated(std::min(threads, max_useful));
    dedicated.parallel_for(num_packets, kPacketChunk, body);
  }
  return reduce_in_packet_order(results);
}

std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads) {
  std::vector<BerResult> out;
  out.reserve(configs.size());
  for (const LinkConfig& cfg : configs)
    out.push_back(run_ber_parallel(cfg, num_packets, threads));
  return out;
}

}  // namespace wlansim::core
