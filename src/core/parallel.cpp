#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/fingerprint.h"
#include "core/packet_batch.h"
#include "core/thread_pool.h"

namespace wlansim::core {

namespace {

/// Packets per scheduling chunk: large enough that chunk handoff is noise
/// next to a packet's cost, small enough to balance tail latency.
constexpr std::size_t kPacketChunk = 8;

/// The calling worker's cached link, rebuilt only when the key changes.
/// Lives on the pool's persistent threads, so repeated measurements of one
/// configuration construct each worker's link exactly once.
WlanLink& worker_link(const LinkConfig& cfg, const std::string& key) {
  thread_local std::string cached_key;
  thread_local std::unique_ptr<WlanLink> link;
  if (!link || cached_key != key) {
    link = std::make_unique<WlanLink>(cfg);
    cached_key = key;
  }
  return *link;
}

/// A sweep worker holds one link per sweep point (keyed by the full config
/// fingerprint), unlike worker_link's single slot: the joint schedule
/// alternates points within a chunk, and rebuilding a link per item would
/// dwarf the memoization win.
WlanLink& sweep_worker_link(const LinkConfig& cfg, const std::string& key) {
  thread_local std::unordered_map<std::string, std::unique_ptr<WlanLink>>*
      links = new std::unordered_map<std::string,
                                     std::unique_ptr<WlanLink>>();  // immortal
  auto it = links->find(key);
  if (it == links->end()) {
    if (links->size() >= 64) links->clear();  // bound long-lived growth
    it = links->emplace(key, std::make_unique<WlanLink>(cfg)).first;
  }
  return *it->second;
}

/// Per-worker TX scenes for the packet chunk the worker is currently
/// sweeping across points. Invalidated whenever the worker moves to a
/// different chunk (or a different sweep call).
struct SceneCache {
  std::uint64_t sweep_id = 0;
  std::size_t chunk = static_cast<std::size_t>(-1);
  std::vector<TxScene> scenes;
};

BerResult reduce_in_packet_order(std::span<const PacketResult> results) {
  // Sequential fold in packet order — the exact arithmetic of
  // WlanLink::run_ber, so the parallel result matches bit for bit.
  BerResult agg;
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  for (const PacketResult& r : results) {
    ++agg.packets;
    agg.bits += r.bits;
    agg.bit_errors += r.bit_errors;
    if (r.bit_errors > 0 || !r.decoded) ++agg.packet_errors;
    if (!r.decoded) {
      ++agg.packets_lost;
    } else {
      evm_acc += r.evm_rms;
      ++evm_n;
    }
  }
  agg.evm_rms_avg = evm_n ? evm_acc / static_cast<double>(evm_n) : 0.0;
  agg.ber_ci_rel = sim::wilson_rel_halfwidth(agg.bit_errors, agg.bits,
                                             kDefaultConfidenceZ);
  return agg;
}

/// Run packets [begin, end) of one point as a lockstep lane wave when the
/// width and configuration allow it, else packet by packet on the scalar
/// path. `scenes` (null = unmemoized) and `out` are lane-indexed: slot p
/// belongs to packet begin + p. Both paths are bit-identical, so callers
/// never need to know which one ran.
void run_chunk(WlanLink& link, std::size_t begin, std::size_t end,
               TxScene* scenes, PacketResult* out, std::size_t batch_width) {
  const std::size_t count = end - begin;
  if (batch_width >= 2 && count >= 2 && count <= batch_width) {
    thread_local PacketBatch batch;  // per-worker, reused across waves
    if (link.run_packet_wave(begin, count, batch, scenes, out)) return;
  }
  for (std::size_t p = 0; p < count; ++p)
    out[p] = scenes != nullptr ? link.run_packet_memo(begin + p, scenes[p])
                               : link.run_packet(begin + p);
}

BerResult run_ber_parallel_impl(const LinkConfig& cfg, std::size_t num_packets,
                                std::size_t threads,
                                std::size_t batch_width) {
  if (num_packets == 0) return {};

  std::string key = link_fingerprint(cfg);
  if (key.empty()) {
    // Not fingerprintable: key the cache to this call so links are fresh
    // per call but still shared by all packets of the call.
    static std::atomic<std::uint64_t> serial{0};
    key = "#call-" + std::to_string(++serial);
  }

  // Work items are 8-packet chunks (not packets): each chunk runs as one
  // lockstep lane wave where the config supports it, scalar otherwise —
  // either way bit-identical to the per-packet loop.
  std::vector<PacketResult> results(num_packets);
  const std::size_t nchunks = (num_packets + kPacketChunk - 1) / kPacketChunk;
  const auto body = [&](std::size_t /*worker*/, std::size_t c) {
    const std::size_t begin = c * kPacketChunk;
    const std::size_t end = std::min(begin + kPacketChunk, num_packets);
    run_chunk(worker_link(cfg, key), begin, end, nullptr, &results[begin],
              batch_width);
  };

  // More threads than 8-packet chunks would only contend on the queue.
  const std::size_t max_useful = nchunks;
  if (threads == 0) {
    ThreadPool::shared().parallel_for(nchunks, 1, body);
  } else if (std::min(threads, max_useful) <= 1) {
    for (std::size_t c = 0; c < nchunks; ++c) body(0, c);
  } else {
    ThreadPool dedicated(std::min(threads, max_useful));
    dedicated.parallel_for(nchunks, 1, body);
  }
  return reduce_in_packet_order(results);
}

}  // namespace

BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads) {
  return run_ber_parallel_impl(cfg, num_packets, threads, kPacketChunk);
}

namespace {

/// Joint (point, packet-chunk) schedule with TX-scene memoization. Work
/// item i covers packet chunk i/npts at sweep point i%npts; the chunk-major
/// order means a worker draining consecutive items runs one chunk across
/// all points — building each packet's TX scene at the first point it
/// serves and replaying it (bit-identically) at the rest. Per-point results
/// still reduce in packet order, so the output matches the sequential
/// per-point sweep bit for bit.
std::vector<BerResult> sweep_ber_memoized(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads,
                                          std::size_t batch_width,
                                          std::span<const std::string> keys) {
  static std::atomic<std::uint64_t> sweep_serial{0};
  const std::uint64_t sweep_id = ++sweep_serial;
  const std::size_t npts = configs.size();
  const std::size_t nchunks =
      (num_packets + kPacketChunk - 1) / kPacketChunk;
  const std::size_t nitems = nchunks * npts;

  std::vector<std::vector<PacketResult>> results(npts);
  for (auto& r : results) r.resize(num_packets);

  const auto body = [&](std::size_t /*worker*/, std::size_t item) {
    const std::size_t k = item % npts;
    const std::size_t chunk = item / npts;
    thread_local SceneCache cache;
    if (cache.sweep_id != sweep_id || cache.chunk != chunk) {
      cache.sweep_id = sweep_id;
      cache.chunk = chunk;
      cache.scenes.assign(kPacketChunk, TxScene());
    }
    WlanLink& link = sweep_worker_link(configs[k], keys[k]);
    const std::size_t begin = chunk * kPacketChunk;
    const std::size_t end = std::min(begin + kPacketChunk, num_packets);
    run_chunk(link, begin, end, cache.scenes.data(), &results[k][begin],
              batch_width);
  };

  // Granularity npts: a worker claims one chunk's items across all points
  // contiguously, so it builds each scene once and replays it npts-1 times
  // — two workers never duplicate a chunk's scene builds.
  const std::size_t max_useful = nchunks;
  if (threads == 0) {
    ThreadPool::shared().parallel_for(nitems, npts, body);
  } else if (std::min(threads, max_useful) <= 1) {
    for (std::size_t i = 0; i < nitems; ++i) body(0, i);
  } else {
    ThreadPool dedicated(std::min(threads, max_useful));
    dedicated.parallel_for(nitems, npts, body);
  }

  std::vector<BerResult> out;
  out.reserve(npts);
  for (const auto& r : results) out.push_back(reduce_in_packet_order(r));
  return out;
}

}  // namespace

std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          const SweepOptions& opts) {
  const std::size_t npts = configs.size();
  if (npts == 0) return {};

  // Memoize only when every point shares one TX-side fingerprint and every
  // full config is fingerprintable (the worker link-cache key).
  bool memo = opts.memoize_tx && npts > 1 && num_packets > 0;
  std::vector<std::string> keys;
  if (memo) {
    const std::string tx0 = tx_scene_fingerprint(configs[0]);
    if (tx0.empty()) memo = false;
    keys.reserve(npts);
    for (std::size_t k = 0; memo && k < npts; ++k) {
      if (k > 0 && tx_scene_fingerprint(configs[k]) != tx0) memo = false;
      keys.push_back(link_fingerprint(configs[k]));
      if (keys.back().empty()) memo = false;
    }
  }
  if (!memo) {
    std::vector<BerResult> out;
    out.reserve(npts);
    for (const LinkConfig& cfg : configs)
      out.push_back(run_ber_parallel_impl(cfg, num_packets, opts.threads,
                                          opts.batch_width));
    return out;
  }
  return sweep_ber_memoized(configs, num_packets, opts.threads,
                            opts.batch_width, keys);
}

std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads) {
  SweepOptions opts;
  opts.threads = threads;
  return sweep_ber_parallel(configs, num_packets, opts);
}

// ---------------------------------------------------------------------------
// Adaptive Monte-Carlo engine
// ---------------------------------------------------------------------------

namespace {

/// Stopping-rule boundaries are multiples of kStopQuantum (plus the cap),
/// so the stop index never depends on how waves happened to be sized.
/// Public as kAdaptiveStopQuantum: it is also the checkpoint/resume unit.
constexpr std::size_t kStopQuantum = kAdaptiveStopQuantum;
static_assert(kAdaptiveStopQuantum == kPacketChunk,
              "resume contract: checkpoint boundaries are packet chunks");

/// Wave sizing: geometric growth between kWaveMin and kWaveMax packets per
/// point, quantum-aligned. Purely a throughput knob — the stop index is
/// invariant to it (parallel.h determinism contract); larger waves only run
/// more speculative packets past the stop.
constexpr std::size_t kWaveMin = 2 * kPacketChunk;
constexpr std::size_t kWaveMax = 32 * kPacketChunk;

std::size_t round_up_quantum(std::size_t n) {
  return (n + kStopQuantum - 1) / kStopQuantum * kStopQuantum;
}

std::size_t next_wave_size(const sim::StoppingRule& rule,
                           std::size_t scheduled) {
  std::size_t w = std::clamp(scheduled, kWaveMin, kWaveMax);
  if (scheduled == 0) w = std::max(w, round_up_quantum(rule.min_packets));
  w = round_up_quantum(w);
  return std::min(w, rule.max_packets - scheduled);
}

/// Scheduler state of one sweep point. The reduction is streaming: the
/// stopping scan folds each quantum's packets into the accumulators in
/// packet order (the exact arithmetic of reduce_in_packet_order), so the
/// state at any quantum boundary is checkpointable as a SweepPointProgress
/// and the final BerResult needs no second pass over raw results.
struct AdaptivePoint {
  std::vector<PacketResult> results;  ///< per-packet slots, sized to `scheduled`
  std::size_t scheduled = 0;   ///< packets dispatched to workers so far
  std::size_t evaluated = 0;   ///< in-order prefix consumed by the rule scan
  std::size_t bits = 0;          ///< prefix bit count
  std::size_t bit_errors = 0;    ///< prefix bit-error count
  std::size_t packets_lost = 0;  ///< prefix header/sync failures
  std::size_t packet_errors = 0; ///< prefix lost-or-errored packets
  double evm_sum = 0.0;          ///< prefix EVM fold (decoded packets)
  std::size_t evm_packets = 0;
  bool stopped = false;
  bool converged = false;      ///< rule met (vs. ran into the cap)
  std::size_t stop_index = 0;  ///< valid once stopped
  double wall_seconds = 0.0;   ///< sweep start -> stopping decision

  SweepPointProgress progress() const {
    SweepPointProgress p;
    p.packets = stopped ? stop_index : evaluated;
    p.packets_lost = packets_lost;
    p.packet_errors = packet_errors;
    p.bits = bits;
    p.bit_errors = bit_errors;
    p.evm_sum = evm_sum;
    p.evm_packets = evm_packets;
    p.stopped = stopped;
    p.converged = converged;
    return p;
  }

  void restore(const SweepPointProgress& p) {
    scheduled = evaluated = static_cast<std::size_t>(p.packets);
    bits = static_cast<std::size_t>(p.bits);
    bit_errors = static_cast<std::size_t>(p.bit_errors);
    packets_lost = static_cast<std::size_t>(p.packets_lost);
    packet_errors = static_cast<std::size_t>(p.packet_errors);
    evm_sum = p.evm_sum;
    evm_packets = static_cast<std::size_t>(p.evm_packets);
    stopped = p.stopped;
    converged = p.converged;
    stop_index = stopped ? static_cast<std::size_t>(p.packets) : 0;
  }
};

/// One ≤8-packet chunk of one point, the unit workers claim from the shared
/// wave queue.
struct WaveItem {
  std::size_t point = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

std::vector<BerResult> sweep_ber_adaptive_resumable(
    std::span<const LinkConfig> configs, const sim::StoppingRule& rule,
    const SweepOptions& opts, AdaptiveResume* resume) {
  const std::size_t npts = configs.size();
  if (npts == 0) return {};
  if (rule.max_packets == 0)
    throw std::invalid_argument(
        "sweep_ber_adaptive: StoppingRule::max_packets must be > 0");
  if (resume != nullptr && !resume->progress.empty() &&
      resume->progress.size() != npts)
    throw std::invalid_argument(
        "sweep_ber_adaptive_resumable: resume progress must be empty or have "
        "one entry per config");

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  static std::atomic<std::uint64_t> adaptive_serial{0};
  const std::uint64_t sweep_id = ++adaptive_serial;

  // Worker link-cache keys; a non-fingerprintable config gets a call-unique
  // key (fresh links for this call, shared by all its packets) and disables
  // TX memoization, exactly like the fixed engines.
  std::vector<std::string> keys(npts);
  bool memo = opts.memoize_tx && npts > 1;
  for (std::size_t k = 0; k < npts; ++k) {
    keys[k] = link_fingerprint(configs[k]);
    if (keys[k].empty()) {
      keys[k] = "#adaptive-" + std::to_string(sweep_id) + "-" +
                std::to_string(k);
      memo = false;
    }
  }
  if (memo) {
    const std::string tx0 = tx_scene_fingerprint(configs[0]);
    if (tx0.empty()) memo = false;
    for (std::size_t k = 1; memo && k < npts; ++k)
      if (tx_scene_fingerprint(configs[k]) != tx0) memo = false;
  }

  std::vector<AdaptivePoint> pts(npts);
  if (resume != nullptr && !resume->progress.empty()) {
    for (std::size_t k = 0; k < npts; ++k) {
      const SweepPointProgress& p = resume->progress[k];
      if (p.packets > rule.max_packets ||
          (!p.stopped && (p.packets >= rule.max_packets ||
                          p.packets % kStopQuantum != 0)))
        throw std::invalid_argument(
            "sweep_ber_adaptive_resumable: resume progress for point " +
            std::to_string(k) +
            " is not a valid quantum-boundary state under this rule");
      pts[k].restore(p);
      // Slots [0, scheduled) are never touched again — the prefix already
      // lives in the accumulators; only packets from `scheduled` on run.
      pts[k].results.resize(pts[k].scheduled);
    }
  }
  if (resume != nullptr) resume->preempted = false;
  std::vector<WaveItem> items;
  std::optional<ThreadPool> dedicated;

  const auto body = [&](std::size_t /*worker*/, std::size_t i) {
    const WaveItem& it = items[i];
    WlanLink& link = sweep_worker_link(configs[it.point], keys[it.point]);
    if (memo) {
      // Same per-chunk scene cache as the fixed memoized sweep: with the
      // queue ordered chunk-major, a worker draining consecutive items runs
      // one chunk across every point still active, building each packet's
      // TX scene once and replaying it at the rest.
      thread_local SceneCache cache;
      const std::size_t chunk = it.begin / kPacketChunk;
      if (cache.sweep_id != sweep_id || cache.chunk != chunk) {
        cache.sweep_id = sweep_id;
        cache.chunk = chunk;
        cache.scenes.assign(kPacketChunk, TxScene());
      }
      run_chunk(link, it.begin, it.end, cache.scenes.data(),
                &pts[it.point].results[it.begin], opts.batch_width);
    } else {
      run_chunk(link, it.begin, it.end, nullptr,
                &pts[it.point].results[it.begin], opts.batch_width);
    }
  };

  while (true) {
    // --- Schedule the next wave over every still-active point -------------
    items.clear();
    std::size_t active = 0;
    for (std::size_t k = 0; k < npts; ++k) {
      AdaptivePoint& P = pts[k];
      if (P.stopped) continue;
      const std::size_t wave = next_wave_size(rule, P.scheduled);
      if (wave == 0) continue;  // at the cap; the scan below retires it
      ++active;
      const std::size_t begin = P.scheduled;
      P.scheduled += wave;
      P.results.resize(P.scheduled);
      for (std::size_t b = begin; b < P.scheduled; b += kPacketChunk)
        items.push_back(
            {k, b, std::min(b + kPacketChunk, P.scheduled)});
    }
    if (items.empty()) break;

    // Chunk-major queue order: all points' copies of a chunk are adjacent,
    // which is what lets one worker reuse a TX scene across points. Points
    // at different depths simply have no queue neighbors to share with.
    std::sort(items.begin(), items.end(),
              [](const WaveItem& a, const WaveItem& b) {
                const std::size_t ca = a.begin / kPacketChunk;
                const std::size_t cb = b.begin / kPacketChunk;
                return ca != cb ? ca < cb : a.point < b.point;
              });

    // One shared queue per wave = cross-point work stealing: a worker done
    // with a converged-point chunk immediately claims whatever straggler
    // chunks remain.
    const std::size_t granularity = memo ? std::max<std::size_t>(active, 1) : 1;
    if (opts.threads == 0) {
      ThreadPool::shared().parallel_for(items.size(), granularity, body);
    } else if (opts.threads <= 1) {
      for (std::size_t i = 0; i < items.size(); ++i) body(0, i);
    } else {
      if (!dedicated) dedicated.emplace(opts.threads);
      dedicated->parallel_for(items.size(), granularity, body);
    }

    // --- Deterministic stopping scan on the in-order prefix ---------------
    // The stop index is the earliest quantum boundary whose prefix meets the
    // rule (or the cap), regardless of how far the wave overshot; the
    // speculative packets past it are discarded. The fold mirrors
    // reduce_in_packet_order term for term, so the accumulated state at any
    // boundary is the bit-exact streaming reduction of the prefix.
    for (std::size_t k = 0; k < npts; ++k) {
      AdaptivePoint& P = pts[k];
      if (P.stopped) continue;
      while (P.evaluated < P.scheduled) {
        const std::size_t b =
            std::min(P.evaluated + kStopQuantum, P.scheduled);
        for (std::size_t p = P.evaluated; p < b; ++p) {
          const PacketResult& r = P.results[p];
          P.bits += r.bits;
          P.bit_errors += r.bit_errors;
          if (r.bit_errors > 0 || !r.decoded) ++P.packet_errors;
          if (!r.decoded) {
            ++P.packets_lost;
          } else {
            P.evm_sum += r.evm_rms;
            ++P.evm_packets;
          }
        }
        P.evaluated = b;
        if (sim::stopping_rule_met(rule, b, P.bit_errors, P.bits)) {
          P.stopped = true;
          P.converged = true;
          P.stop_index = b;
          P.wall_seconds = elapsed();
          break;
        }
        if (b >= rule.max_packets) {
          P.stopped = true;
          P.converged = false;
          P.stop_index = rule.max_packets;
          P.wall_seconds = elapsed();
          break;
        }
      }
    }

    // --- Checkpoint hook / preemption --------------------------------------
    // Every point now sits at a quantum boundary, so the progress vector is
    // a complete resume state. A false return preempts: scheduling stops,
    // partial points keep their prefix statistics for a later resume.
    if (resume != nullptr && resume->on_wave) {
      resume->progress.resize(npts);
      for (std::size_t k = 0; k < npts; ++k)
        resume->progress[k] = pts[k].progress();
      if (!resume->on_wave(resume->progress)) {
        resume->preempted = true;
        break;
      }
    }
  }

  if (resume != nullptr) {
    resume->progress.resize(npts);
    for (std::size_t k = 0; k < npts; ++k)
      resume->progress[k] = pts[k].progress();
  }

  std::vector<BerResult> out;
  out.reserve(npts);
  for (std::size_t k = 0; k < npts; ++k) {
    const AdaptivePoint& P = pts[k];
    BerResult r;
    r.packets = P.stopped ? P.stop_index : P.evaluated;
    r.packets_lost = P.packets_lost;
    r.packet_errors = P.packet_errors;
    r.bits = P.bits;
    r.bit_errors = P.bit_errors;
    r.evm_rms_avg = P.evm_packets != 0
                        ? P.evm_sum / static_cast<double>(P.evm_packets)
                        : 0.0;
    r.ber_ci_rel =
        sim::wilson_rel_halfwidth(r.bit_errors, r.bits, rule.confidence_z);
    r.wall_seconds = P.wall_seconds;
    r.converged = P.converged;
    out.push_back(r);
  }
  return out;
}

std::vector<BerResult> sweep_ber_adaptive(std::span<const LinkConfig> configs,
                                          const sim::StoppingRule& rule,
                                          const SweepOptions& opts) {
  return sweep_ber_adaptive_resumable(configs, rule, opts, nullptr);
}

BerResult run_ber_adaptive(const LinkConfig& cfg, const sim::StoppingRule& rule,
                           std::size_t threads) {
  SweepOptions opts;
  opts.threads = threads;
  opts.memoize_tx = false;  // one point: no scene to share across points
  const auto out =
      sweep_ber_adaptive(std::span<const LinkConfig>(&cfg, 1), rule, opts);
  return out.empty() ? BerResult{} : out.front();
}

}  // namespace wlansim::core
