#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace wlansim::core {

BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<std::size_t>(threads, std::max<std::size_t>(1, num_packets));

  struct Partial {
    std::size_t packets = 0, lost = 0, errors = 0, bits = 0, bit_errors = 0;
    double evm_acc = 0.0;
    std::size_t evm_n = 0;
  };
  std::vector<Partial> partials(threads);
  std::atomic<std::size_t> next{0};

  auto worker = [&](std::size_t tid) {
    WlanLink link(cfg);  // each worker owns an independent link
    Partial& p = partials[tid];
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= num_packets) break;
      const PacketResult r = link.run_packet(i);
      ++p.packets;
      p.bits += r.bits;
      p.bit_errors += r.bit_errors;
      if (r.bit_errors > 0 || !r.decoded) ++p.errors;
      if (!r.decoded) {
        ++p.lost;
      } else {
        p.evm_acc += r.evm_rms;
        ++p.evm_n;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  BerResult out;
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  for (const Partial& p : partials) {
    out.packets += p.packets;
    out.packets_lost += p.lost;
    out.packet_errors += p.errors;
    out.bits += p.bits;
    out.bit_errors += p.bit_errors;
    evm_acc += p.evm_acc;
    evm_n += p.evm_n;
  }
  out.evm_rms_avg = evm_n ? evm_acc / static_cast<double>(evm_n) : 0.0;
  return out;
}

}  // namespace wlansim::core
