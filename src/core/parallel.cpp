#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/thread_pool.h"

namespace wlansim::core {

namespace {

/// Packets per scheduling chunk: large enough that chunk handoff is noise
/// next to a packet's cost, small enough to balance tail latency.
constexpr std::size_t kPacketChunk = 8;

template <typename T>
void put(std::string& s, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  s.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void put_opt(std::string& s, const std::optional<T>& v) {
  put(s, v.has_value());
  if (v.has_value()) put(s, *v);
}

/// Byte-exact serialization of every LinkConfig field that influences
/// run_packet, used as the worker-side link-cache key. Field-by-field (never
/// whole structs) so padding bytes cannot poison the comparison. Returns ""
/// when the config is not fingerprintable (callable members).
std::string fingerprint(const LinkConfig& c) {
  if (c.custom_rf) return {};
  std::string s;
  s.reserve(256);
  put(s, c.rate);
  put(s, c.psdu_bytes);
  put(s, c.rx_power_dbm);
  put_opt(s, c.snr_db);
  put(s, c.antenna_noise_density_dbm_hz);
  put(s, c.fading.has_value());
  if (c.fading) {
    put(s, c.fading->rms_delay_spread_s);
    put(s, c.fading->sample_rate_hz);
    put(s, c.fading->truncation);
    put(s, c.fading->normalize);
  }
  put(s, c.interferer.has_value());
  if (c.interferer) {
    put(s, c.interferer->offset_hz);
    put(s, c.interferer->level_db);
    put(s, c.interferer->rate);
    put(s, c.interferer->psdu_bytes);
  }
  put(s, c.sco_ppm);
  put_opt(s, c.tx_pa_backoff_db);
  put(s, c.tx_pa_model);
  put(s, c.tx_pa_am_pm_max_deg);
  put(s, c.tx_iq_gain_imbalance_db);
  put(s, c.tx_iq_phase_error_deg);
  put(s, c.tx_lo_leakage_rel);
  put(s, c.rf_engine);
  put(s, c.oversample);

  const rf::DoubleConversionConfig& rf = c.rf;
  put(s, rf.sample_rate_hz);
  put(s, rf.lna_gain_db);
  put(s, rf.lna_nf_db);
  put(s, rf.lna_p1db_in_dbm);
  put(s, rf.lna_model);
  put(s, rf.lna_am_pm_max_deg);
  put(s, rf.mixer1_gain_db);
  put(s, rf.mixer2_gain_db);
  put(s, rf.lo_offset_hz);
  put(s, rf.lo_phase_noise.level_dbc_hz);
  put(s, rf.lo_phase_noise.offset_hz);
  put(s, rf.mixer1_image_rejection_db);
  put(s, rf.mixer2_dc_offset);
  put(s, rf.mixer2_flicker_power_dbm);
  put(s, rf.flicker_corner_hz);
  put(s, rf.hpf_order);
  put(s, rf.hpf_cutoff_hz);
  put(s, rf.bb_filter_order);
  put(s, rf.bb_filter_ripple_db);
  put(s, rf.bb_filter_edge_hz);
  put(s, rf.bb_bandwidth_factor);
  put(s, rf.agc.target_power_dbm);
  put(s, rf.agc.max_gain_db);
  put(s, rf.agc.min_gain_db);
  put(s, rf.agc.loop_gain);
  put(s, rf.agc.attack_db_per_sample);
  put(s, rf.agc.decay_db_per_sample);
  put(s, rf.agc.detector_time_const);
  put(s, rf.agc.initial_gain_db);
  put(s, rf.agc.lock_window_db);
  put(s, rf.agc.lock_count);
  put(s, rf.agc.unlock_window_db);
  put(s, rf.adc.bits);
  put(s, rf.adc.full_scale);
  put(s, rf.adc.enabled);
  put(s, rf.noise_enabled);

  put(s, c.cosim.analog_oversample);
  put(s, c.cosim.supports_noise_functions);
  put(s, c.cosim.sync_overhead_ops);
  put(s, c.receiver.track_phase);
  put(s, c.receiver.track_timing);
  put(s, c.receiver.detect_threshold);
  put(s, c.receiver.chanest_smoothing);
  put(s, c.mode);
  put(s, c.packet_path);
  put(s, c.lead_samples);
  put(s, c.tail_samples);
  put(s, c.seed);
  return s;
}

/// Byte-exact serialization of the LinkConfig fields that shape a packet's
/// noise-independent TX scene: everything WlanLink consumes up to (and
/// including) the interferer, plus the fields that decide the packet path.
/// Two configs with equal TX fingerprints build bit-identical pre-noise
/// scenes for every packet index, so a sweep over them can share one
/// TxScene per packet. Noise-level fields (snr_db, antenna noise density),
/// the RF front-end, and the receiver are deliberately absent — those act
/// after the scene snapshot. Returns "" when not fingerprintable.
std::string tx_scene_fingerprint(const LinkConfig& c) {
  if (c.custom_rf) return {};
  std::string s;
  s.reserve(160);
  put(s, c.rate);
  put(s, c.psdu_bytes);
  put(s, c.rx_power_dbm);
  put(s, c.fading.has_value());
  if (c.fading) {
    put(s, c.fading->rms_delay_spread_s);
    put(s, c.fading->sample_rate_hz);
    put(s, c.fading->truncation);
    put(s, c.fading->normalize);
  }
  put(s, c.interferer.has_value());
  if (c.interferer) {
    put(s, c.interferer->offset_hz);
    put(s, c.interferer->level_db);
    put(s, c.interferer->rate);
    put(s, c.interferer->psdu_bytes);
  }
  put(s, c.sco_ppm);
  put_opt(s, c.tx_pa_backoff_db);
  put(s, c.tx_pa_model);
  put(s, c.tx_pa_am_pm_max_deg);
  put(s, c.tx_iq_gain_imbalance_db);
  put(s, c.tx_iq_phase_error_deg);
  put(s, c.tx_lo_leakage_rel);
  put(s, c.rf_engine);
  put(s, c.oversample);
  put(s, c.mode);
  put(s, c.packet_path);
  put(s, c.lead_samples);
  put(s, c.tail_samples);
  put(s, c.seed);
  return s;
}

/// The calling worker's cached link, rebuilt only when the key changes.
/// Lives on the pool's persistent threads, so repeated measurements of one
/// configuration construct each worker's link exactly once.
WlanLink& worker_link(const LinkConfig& cfg, const std::string& key) {
  thread_local std::string cached_key;
  thread_local std::unique_ptr<WlanLink> link;
  if (!link || cached_key != key) {
    link = std::make_unique<WlanLink>(cfg);
    cached_key = key;
  }
  return *link;
}

/// A sweep worker holds one link per sweep point (keyed by the full config
/// fingerprint), unlike worker_link's single slot: the joint schedule
/// alternates points within a chunk, and rebuilding a link per item would
/// dwarf the memoization win.
WlanLink& sweep_worker_link(const LinkConfig& cfg, const std::string& key) {
  thread_local std::unordered_map<std::string, std::unique_ptr<WlanLink>>*
      links = new std::unordered_map<std::string,
                                     std::unique_ptr<WlanLink>>();  // immortal
  auto it = links->find(key);
  if (it == links->end()) {
    if (links->size() >= 64) links->clear();  // bound long-lived growth
    it = links->emplace(key, std::make_unique<WlanLink>(cfg)).first;
  }
  return *it->second;
}

/// Per-worker TX scenes for the packet chunk the worker is currently
/// sweeping across points. Invalidated whenever the worker moves to a
/// different chunk (or a different sweep call).
struct SceneCache {
  std::uint64_t sweep_id = 0;
  std::size_t chunk = static_cast<std::size_t>(-1);
  std::vector<TxScene> scenes;
};

BerResult reduce_in_packet_order(const std::vector<PacketResult>& results) {
  // Sequential fold in packet order — the exact arithmetic of
  // WlanLink::run_ber, so the parallel result matches bit for bit.
  BerResult agg;
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  for (const PacketResult& r : results) {
    ++agg.packets;
    agg.bits += r.bits;
    agg.bit_errors += r.bit_errors;
    if (r.bit_errors > 0 || !r.decoded) ++agg.packet_errors;
    if (!r.decoded) {
      ++agg.packets_lost;
    } else {
      evm_acc += r.evm_rms;
      ++evm_n;
    }
  }
  agg.evm_rms_avg = evm_n ? evm_acc / static_cast<double>(evm_n) : 0.0;
  return agg;
}

}  // namespace

BerResult run_ber_parallel(const LinkConfig& cfg, std::size_t num_packets,
                           std::size_t threads) {
  if (num_packets == 0) return {};

  std::string key = fingerprint(cfg);
  if (key.empty()) {
    // Not fingerprintable: key the cache to this call so links are fresh
    // per call but still shared by all packets of the call.
    static std::atomic<std::uint64_t> serial{0};
    key = "#call-" + std::to_string(++serial);
  }

  std::vector<PacketResult> results(num_packets);
  const auto body = [&](std::size_t /*worker*/, std::size_t i) {
    results[i] = worker_link(cfg, key).run_packet(i);
  };

  // More threads than 8-packet chunks would only contend on the queue.
  const std::size_t max_useful = (num_packets + kPacketChunk - 1) / kPacketChunk;
  if (threads == 0) {
    ThreadPool::shared().parallel_for(num_packets, kPacketChunk, body);
  } else if (std::min(threads, max_useful) <= 1) {
    for (std::size_t i = 0; i < num_packets; ++i) body(0, i);
  } else {
    ThreadPool dedicated(std::min(threads, max_useful));
    dedicated.parallel_for(num_packets, kPacketChunk, body);
  }
  return reduce_in_packet_order(results);
}

namespace {

/// Joint (point, packet-chunk) schedule with TX-scene memoization. Work
/// item i covers packet chunk i/npts at sweep point i%npts; the chunk-major
/// order means a worker draining consecutive items runs one chunk across
/// all points — building each packet's TX scene at the first point it
/// serves and replaying it (bit-identically) at the rest. Per-point results
/// still reduce in packet order, so the output matches the sequential
/// per-point sweep bit for bit.
std::vector<BerResult> sweep_ber_memoized(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads,
                                          std::span<const std::string> keys) {
  static std::atomic<std::uint64_t> sweep_serial{0};
  const std::uint64_t sweep_id = ++sweep_serial;
  const std::size_t npts = configs.size();
  const std::size_t nchunks =
      (num_packets + kPacketChunk - 1) / kPacketChunk;
  const std::size_t nitems = nchunks * npts;

  std::vector<std::vector<PacketResult>> results(npts);
  for (auto& r : results) r.resize(num_packets);

  const auto body = [&](std::size_t /*worker*/, std::size_t item) {
    const std::size_t k = item % npts;
    const std::size_t chunk = item / npts;
    thread_local SceneCache cache;
    if (cache.sweep_id != sweep_id || cache.chunk != chunk) {
      cache.sweep_id = sweep_id;
      cache.chunk = chunk;
      cache.scenes.assign(kPacketChunk, TxScene());
    }
    WlanLink& link = sweep_worker_link(configs[k], keys[k]);
    const std::size_t begin = chunk * kPacketChunk;
    const std::size_t end = std::min(begin + kPacketChunk, num_packets);
    for (std::size_t p = begin; p < end; ++p)
      results[k][p] = link.run_packet_memo(p, cache.scenes[p - begin]);
  };

  // Granularity npts: a worker claims one chunk's items across all points
  // contiguously, so it builds each scene once and replays it npts-1 times
  // — two workers never duplicate a chunk's scene builds.
  const std::size_t max_useful = nchunks;
  if (threads == 0) {
    ThreadPool::shared().parallel_for(nitems, npts, body);
  } else if (std::min(threads, max_useful) <= 1) {
    for (std::size_t i = 0; i < nitems; ++i) body(0, i);
  } else {
    ThreadPool dedicated(std::min(threads, max_useful));
    dedicated.parallel_for(nitems, npts, body);
  }

  std::vector<BerResult> out;
  out.reserve(npts);
  for (const auto& r : results) out.push_back(reduce_in_packet_order(r));
  return out;
}

}  // namespace

std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          const SweepOptions& opts) {
  const std::size_t npts = configs.size();
  if (npts == 0) return {};

  // Memoize only when every point shares one TX-side fingerprint and every
  // full config is fingerprintable (the worker link-cache key).
  bool memo = opts.memoize_tx && npts > 1 && num_packets > 0;
  std::vector<std::string> keys;
  if (memo) {
    const std::string tx0 = tx_scene_fingerprint(configs[0]);
    if (tx0.empty()) memo = false;
    keys.reserve(npts);
    for (std::size_t k = 0; memo && k < npts; ++k) {
      if (k > 0 && tx_scene_fingerprint(configs[k]) != tx0) memo = false;
      keys.push_back(fingerprint(configs[k]));
      if (keys.back().empty()) memo = false;
    }
  }
  if (!memo) {
    std::vector<BerResult> out;
    out.reserve(npts);
    for (const LinkConfig& cfg : configs)
      out.push_back(run_ber_parallel(cfg, num_packets, opts.threads));
    return out;
  }
  return sweep_ber_memoized(configs, num_packets, opts.threads, keys);
}

std::vector<BerResult> sweep_ber_parallel(std::span<const LinkConfig> configs,
                                          std::size_t num_packets,
                                          std::size_t threads) {
  SweepOptions opts;
  opts.threads = threads;
  return sweep_ber_parallel(configs, num_packets, opts);
}

}  // namespace wlansim::core
