// Block-static frequency-selective fading: an exponentially decaying
// Rayleigh power-delay profile, the standard indoor model for 802.11a
// evaluations (the "fading channel" option of the SPW demo system).
#pragma once

#include <span>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace wlansim::channel {

struct FadingConfig {
  /// RMS delay spread [s]; typical office values are 25..100 ns.
  double rms_delay_spread_s = 50e-9;
  double sample_rate_hz = 20e6;
  /// Taps beyond this energy fraction of the profile are truncated.
  double truncation = 1e-3;
  /// Normalize so the expected channel power gain is one.
  bool normalize = true;
};

/// Standard indoor/office environment presets (RMS delay spreads in the
/// range the 802.11 channel-model work used: flat office through large
/// open space).
enum class Environment {
  kFlat,         ///< no delay spread (single Rayleigh tap)
  kResidential,  ///< ~15 ns RMS
  kOffice,       ///< ~50 ns RMS
  kLargeOffice,  ///< ~100 ns RMS
  kOpenSpace     ///< ~150 ns RMS
};

/// Preset fading configuration for an environment at the given rate.
FadingConfig environment_config(Environment env,
                                double sample_rate_hz = 20e6);

/// One realization of a multipath channel (FIR taps at the sample rate).
class MultipathChannel {
 public:
  /// Draw a new Rayleigh realization from the exponential profile.
  MultipathChannel(const FadingConfig& cfg, dsp::Rng& rng);

  /// Explicit taps (for tests and deterministic scenarios).
  explicit MultipathChannel(dsp::CVec taps);

  const dsp::CVec& taps() const { return taps_; }

  /// Convolve (same-length output; the tail is truncated). Runs on
  /// kernels::cfir_conv, bit-identical to apply_reference().
  dsp::CVec apply(std::span<const dsp::Cplx> in) const;

  /// apply() into a caller-provided buffer (out.size() == in.size(),
  /// no aliasing) — the allocation-free form the packet hot path uses.
  void apply_into(std::span<const dsp::Cplx> in,
                  std::span<dsp::Cplx> out) const;

  /// The original std::complex tapped-delay loop, kept as the semantic
  /// definition for the kernel equivalence tests.
  dsp::CVec apply_reference(std::span<const dsp::Cplx> in) const;

  /// Frequency response at normalized frequency f (fraction of fs).
  dsp::Cplx response(double f_norm) const;

 private:
  dsp::CVec taps_;
};

}  // namespace wlansim::channel
