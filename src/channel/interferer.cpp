#include "channel/interferer.h"

#include <cmath>
#include <stdexcept>

#include "dsp/iir.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "phy80211a/bits.h"
#include "phy80211a/transmitter.h"

namespace wlansim::channel {

dsp::CVec make_interferer(std::size_t length, double sample_rate_hz,
                          double wanted_power_watts,
                          const InterfererConfig& cfg, dsp::Rng& rng) {
  if (sample_rate_hz < phy::kSampleRate)
    throw std::invalid_argument("make_interferer: rate below 20 Msps");
  const double ratio = sample_rate_hz / phy::kSampleRate;
  const auto factor = static_cast<std::size_t>(std::lround(ratio));
  if (std::abs(ratio - static_cast<double>(factor)) > 1e-9)
    throw std::invalid_argument("make_interferer: need integer oversampling");
  // The shifted spectrum must stay inside Nyquist: |offset| + 10 MHz <= fs/2.
  if (std::abs(cfg.offset_hz) + 10e6 > sample_rate_hz / 2.0)
    throw std::invalid_argument(
        "make_interferer: offset violates the sampling theorem at this rate");

  // Tile transmitter frames (fresh random payload each) until long enough.
  phy::Transmitter tx({.scrambler_seed = 0x13, .output_power_dbm = 0.0});
  dsp::CVec base;
  base.reserve(length / factor + 2048);
  while (base.size() * factor < length) {
    const phy::Bytes payload = phy::random_bytes(cfg.psdu_bytes, rng);
    const dsp::CVec frame = tx.modulate({cfg.rate, payload});
    base.insert(base.end(), frame.begin(), frame.end());
    // Short idle gap between frames, like a busy but realistic channel.
    base.insert(base.end(), 40, dsp::Cplx{0.0, 0.0});
  }

  dsp::CVec over = factor > 1 ? dsp::upsample(base, factor) : std::move(base);
  over.resize(length);

  // Shift to the adjacent channel and set the level.
  const double f_norm = cfg.offset_hz / sample_rate_hz;
  dsp::CVec shifted =
      dsp::frequency_shift(over, f_norm, rng.uniform(0.0, dsp::kTwoPi));
  const double target = wanted_power_watts * dsp::from_db(cfg.level_db);
  dsp::set_mean_power(shifted, target);
  return shifted;
}

dsp::CVec make_dsss_interferer(std::size_t length, double sample_rate_hz,
                               double wanted_power_watts, double offset_hz,
                               double level_db, dsp::Rng& rng) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("make_dsss_interferer: bad sample rate");
  const double chip_rate = 11e6;
  // The DSSS main lobe spans +/- chip_rate around the offset.
  if (std::abs(offset_hz) + chip_rate > sample_rate_hz / 2.0)
    throw std::invalid_argument(
        "make_dsss_interferer: offset violates the sampling theorem");

  // Barker-spread DBPSK chip stream, synthesized by NCO chip indexing so
  // any output rate works (chips are rectangular; the spectrum is the
  // classic DSSS sinc).
  static constexpr double kBarker[11] = {1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1};
  dsp::CVec out(length);
  double phase = 0.0;  // DBPSK phase
  const double dt = 1.0 / sample_rate_hz;
  std::int64_t last_sym = -1;
  for (std::size_t n = 0; n < length; ++n) {
    const auto chip_idx =
        static_cast<std::int64_t>(static_cast<double>(n) * dt * chip_rate);
    const std::int64_t sym_idx = chip_idx / 11;
    if (sym_idx != last_sym) {
      phase += rng.bit() ? dsp::kPi : 0.0;  // new symbol, random data
      last_sym = sym_idx;
    }
    out[n] = kBarker[chip_idx % 11] * dsp::Cplx{std::cos(phase), std::sin(phase)};
  }

  // Transmit spectrum shaping: raw rectangular chips carry sinc sidelobes
  // far outside the channel; the 802.11b transmit mask (-30 dBr at 11 MHz)
  // implies baseband filtering, modeled with a Butterworth lowpass.
  dsp::BiquadCascade tx_filter =
      dsp::design_butterworth_lowpass(5, 9e6 / sample_rate_hz);
  out = tx_filter.process(out);

  dsp::CVec shifted = dsp::frequency_shift(out, offset_hz / sample_rate_hz,
                                           rng.uniform(0.0, dsp::kTwoPi));
  dsp::set_mean_power(shifted, wanted_power_watts * dsp::from_db(level_db));
  return shifted;
}

}  // namespace wlansim::channel
