// Adjacent-channel interferer: a duplicated 802.11a transmitter whose OFDM
// signal is shifted in frequency — exactly the construction of the paper
// (§4.1: "the transmitter model was duplicated and its OFDM signal was
// shifted by 20 MHz in the frequency domain. The baseband signal was
// over-sampled to fulfill the sampling theorem.").
#pragma once

#include "dsp/rng.h"
#include "dsp/types.h"
#include "phy80211a/params.h"

namespace wlansim::channel {

struct InterfererConfig {
  /// Channel offset [Hz]: +20 MHz = adjacent, +40 MHz = non-adjacent
  /// (second adjacent) in the 802.11a band plan.
  double offset_hz = 20e6;
  /// Interferer power relative to the wanted signal [dB]. The paper's
  /// receiver spec allows +16 dB adjacent and +32 dB non-adjacent.
  double level_db = 16.0;
  /// Interfering traffic parameters.
  phy::Rate rate = phy::Rate::kMbps24;
  std::size_t psdu_bytes = 400;
};

/// Generate `length` samples of interferer signal at the oversampled rate
/// `sample_rate_hz`, frequency-shifted and scaled to `level_db` above
/// `wanted_power_watts`. Continuous OFDM frames are tiled (with random data
/// per frame) so the interferer is always on.
dsp::CVec make_interferer(std::size_t length, double sample_rate_hz,
                          double wanted_power_watts,
                          const InterfererConfig& cfg, dsp::Rng& rng);

/// Legacy 802.11b DSSS interferer: Barker-spread DBPSK traffic at
/// 11 Mchip/s synthesized directly at `sample_rate_hz` (chip timing by
/// NCO, so any rate works), frequency-shifted to `offset_hz` and scaled to
/// `level_db` above `wanted_power_watts`. The coexistence scenario of the
/// paper's Table 1 world: 11 Mbit/s legacy gear next to high-speed WLAN.
dsp::CVec make_dsss_interferer(std::size_t length, double sample_rate_hz,
                               double wanted_power_watts, double offset_hz,
                               double level_db, dsp::Rng& rng);

}  // namespace wlansim::channel
