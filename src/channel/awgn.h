// AWGN channel — the baseline channel of the SPW 802.11a demo system.
#pragma once

#include <span>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace wlansim::channel {

/// Add complex white Gaussian noise of the given total variance [W].
dsp::CVec add_awgn(std::span<const dsp::Cplx> in, double noise_power_watts,
                   dsp::Rng& rng);

/// Add noise sized for a target SNR [dB] relative to the mean power of the
/// *reference* span (usually the wanted signal before interferers).
dsp::CVec add_awgn_snr(std::span<const dsp::Cplx> in,
                       std::span<const dsp::Cplx> reference, double snr_db,
                       dsp::Rng& rng);

/// Thermal noise power [W] for a bandwidth and noise figure
/// (kT0 * B * 10^{NF/10}).
double thermal_noise_power(double bandwidth_hz, double nf_db = 0.0);

}  // namespace wlansim::channel
