#include "channel/awgn.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::channel {

dsp::CVec add_awgn(std::span<const dsp::Cplx> in, double noise_power_watts,
                   dsp::Rng& rng) {
  if (noise_power_watts < 0.0)
    throw std::invalid_argument("add_awgn: negative noise power");
  dsp::CVec out(in.begin(), in.end());
  if (noise_power_watts > 0.0) {
    for (auto& v : out) v += rng.cgaussian(noise_power_watts);
  }
  return out;
}

dsp::CVec add_awgn_snr(std::span<const dsp::Cplx> in,
                       std::span<const dsp::Cplx> reference, double snr_db,
                       dsp::Rng& rng) {
  const double p_sig = dsp::mean_power(reference);
  const double p_noise = p_sig / dsp::from_db(snr_db);
  return add_awgn(in, p_noise, rng);
}

double thermal_noise_power(double bandwidth_hz, double nf_db) {
  return dsp::kBoltzmann * dsp::kT0 * bandwidth_hz * dsp::from_db(nf_db);
}

}  // namespace wlansim::channel
