#include "channel/fading.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"

namespace wlansim::channel {

FadingConfig environment_config(Environment env, double sample_rate_hz) {
  FadingConfig cfg;
  cfg.sample_rate_hz = sample_rate_hz;
  switch (env) {
    case Environment::kFlat: cfg.rms_delay_spread_s = 0.0; break;
    case Environment::kResidential: cfg.rms_delay_spread_s = 15e-9; break;
    case Environment::kOffice: cfg.rms_delay_spread_s = 50e-9; break;
    case Environment::kLargeOffice: cfg.rms_delay_spread_s = 100e-9; break;
    case Environment::kOpenSpace: cfg.rms_delay_spread_s = 150e-9; break;
  }
  return cfg;
}

MultipathChannel::MultipathChannel(const FadingConfig& cfg, dsp::Rng& rng) {
  if (cfg.rms_delay_spread_s < 0.0 || cfg.sample_rate_hz <= 0.0)
    throw std::invalid_argument("MultipathChannel: bad config");
  const double ts = 1.0 / cfg.sample_rate_hz;
  if (cfg.rms_delay_spread_s < ts / 10.0) {
    // Effectively flat: single Rayleigh tap.
    taps_ = {rng.cgaussian(1.0)};
  } else {
    // Exponential profile p_k ~ exp(-k Ts / tau), truncated.
    const double tau = cfg.rms_delay_spread_s;
    const std::size_t ntaps = static_cast<std::size_t>(
        std::ceil(-std::log(cfg.truncation) * tau / ts)) + 1;
    taps_.resize(ntaps);
    double norm = 0.0;
    for (std::size_t k = 0; k < ntaps; ++k) {
      const double p = std::exp(-static_cast<double>(k) * ts / tau);
      taps_[k] = rng.cgaussian(p);
      norm += p;
    }
    if (cfg.normalize) {
      const double g = 1.0 / std::sqrt(norm);
      for (auto& t : taps_) t *= g;
    }
  }
}

MultipathChannel::MultipathChannel(dsp::CVec taps) : taps_(std::move(taps)) {
  if (taps_.empty())
    throw std::invalid_argument("MultipathChannel: empty taps");
}

dsp::CVec MultipathChannel::apply(std::span<const dsp::Cplx> in) const {
  dsp::CVec out(in.size());
  apply_into(in, std::span<dsp::Cplx>(out));
  return out;
}

void MultipathChannel::apply_into(std::span<const dsp::Cplx> in,
                                  std::span<dsp::Cplx> out) const {
  if (out.size() != in.size())
    throw std::invalid_argument("MultipathChannel: output size mismatch");
  dsp::kernels::cfir_conv(taps_.data(), taps_.size(), in.data(), in.size(),
                          out.data());
}

dsp::CVec MultipathChannel::apply_reference(
    std::span<const dsp::Cplx> in) const {
  dsp::CVec out(in.size(), dsp::Cplx{0.0, 0.0});
  for (std::size_t n = 0; n < in.size(); ++n) {
    dsp::Cplx acc{0.0, 0.0};
    const std::size_t kmax = std::min(taps_.size(), n + 1);
    for (std::size_t k = 0; k < kmax; ++k) acc += taps_[k] * in[n - k];
    out[n] = acc;
  }
  return out;
}

dsp::Cplx MultipathChannel::response(double f_norm) const {
  dsp::Cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const double ang = -dsp::kTwoPi * f_norm * static_cast<double>(k);
    acc += taps_[k] * dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

}  // namespace wlansim::channel
