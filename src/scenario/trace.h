// Streaming per-station trace output for drop runs: CSV and JSON-lines,
// one row per StationSample, tagged with a run identifier so concatenated
// traces from different runs stay distinguishable.
//
// Byte-stability contract: rows are formatted with fixed printf conversions
// of deterministic sample fields only (wall-clock never appears), so two
// drops with the same (config, seed) produce byte-identical trace files
// regardless of thread count — pinned by tests/scenario/test_drop.cpp.
#pragma once

#include <ostream>
#include <string>

#include "scenario/drop.h"

namespace wlansim::scenario {

enum class TraceFormat {
  kCsv,    ///< header row + one comma-separated row per sample
  kJsonl,  ///< one JSON object per line, no enclosing array
};

/// The CSV header row (no trailing newline).
std::string trace_csv_header();

/// One sample as a CSV row / JSON-lines object (no trailing newline).
/// adj_level_db renders as an empty CSV field — and is omitted from the
/// JSON object — when the station hears no adjacent interferer.
std::string trace_csv_row(const std::string& run_tag, const StationSample& s);
std::string trace_jsonl_row(const std::string& run_tag, const StationSample& s);

/// Streams samples to `out` as they arrive (kCsv writes the header up
/// front). Usable directly as the run_drop sink via `writer.sink()`.
class TraceWriter {
 public:
  TraceWriter(std::ostream& out, TraceFormat format, std::string run_tag);

  void write(const StationSample& s);
  SampleSink sink();

 private:
  std::ostream& out_;
  TraceFormat format_;
  std::string run_tag_;
};

}  // namespace wlansim::scenario
