#include "scenario/geometry.h"

#include <cmath>

#include "dsp/rng.h"

namespace wlansim::scenario {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Reflect `v` into [-half, half] (handles multiple bounces for steps
/// longer than the area).
double reflect(double v, double half) {
  if (half <= 0.0) return 0.0;
  const double period = 4.0 * half;
  double r = std::fmod(v + half, period);
  if (r < 0.0) r += period;
  return r <= 2.0 * half ? r - half : 3.0 * half - r;
}

}  // namespace

double distance_m(Vec2 a, Vec2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

std::uint64_t geo_seed(std::uint64_t seed, GeoStream stream,
                       std::uint64_t entity, std::uint64_t step) {
  // Chain the mix so each argument lands in a distinct avalanche round:
  // equal XOR-sums of different tuples cannot collide.
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ static_cast<std::uint64_t>(stream));
  h = mix64(h ^ entity);
  h = mix64(h ^ step);
  return h;
}

double log_distance_path_loss_db(const PathLossConfig& cfg, double dist) {
  const double d = std::max(dist, cfg.min_distance_m);
  return cfg.ref_loss_db +
         10.0 * cfg.exponent * std::log10(d / cfg.ref_distance_m);
}

double shadowing_db(std::uint64_t seed, std::uint64_t station,
                    std::uint64_t bss, std::uint64_t step, double sigma_db) {
  if (!(sigma_db > 0.0)) return 0.0;
  // Fold (station, bss) into one entity counter; bss counts are tiny next
  // to the 2^32 stride, so tuples never alias.
  const std::uint64_t entity = (bss << 32) ^ station;
  dsp::Rng rng(geo_seed(seed, GeoStream::kShadowing, entity, step));
  return rng.gaussian(sigma_db);
}

Vec2 place_uniform(std::uint64_t seed, std::uint64_t entity,
                   double area_half_m) {
  dsp::Rng rng(geo_seed(seed, GeoStream::kPlacement, entity));
  return {rng.uniform(-area_half_m, area_half_m),
          rng.uniform(-area_half_m, area_half_m)};
}

Vec2 walk_step(Vec2 pos, std::uint64_t seed, std::uint64_t station,
               std::uint64_t step, double step_m, double area_half_m) {
  if (!(step_m > 0.0)) return pos;
  dsp::Rng rng(geo_seed(seed, GeoStream::kWalk, station, step));
  const double theta = rng.uniform(0.0, 2.0 * M_PI);
  return {reflect(pos.x + step_m * std::cos(theta), area_half_m),
          reflect(pos.y + step_m * std::sin(theta), area_half_m)};
}

}  // namespace wlansim::scenario
