#include "scenario/trace.h"

#include <cstdio>

namespace wlansim::scenario {

namespace {

/// Shortest round-trippable decimal: stable for identical doubles, and
/// integral values print without a spurious fraction.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest precision that round-trips (matches how the rest
  // of the toolchain prints sweep output; keeps 0.5 as "0.5" not
  // "0.5000000000000000").
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // keep rows one-line
    out.push_back(c);
  }
  return out;
}

const char* source_of(const StationSample& s) {
  return s.result.from_surrogate ? "surrogate" : "mc";
}

}  // namespace

std::string trace_csv_header() {
  return "run_tag,step,station,x_m,y_m,dist_m,path_loss_db,shadowing_db,"
         "snr_db,snr_bin_db,adj_level_db,ber,per,evm,goodput_mbps,packets,"
         "source";
}

std::string trace_csv_row(const std::string& run_tag, const StationSample& s) {
  std::string row;
  row.reserve(200);
  row += run_tag;
  row += ',';
  row += std::to_string(s.step);
  row += ',';
  row += std::to_string(s.station);
  for (double v : {s.pos.x, s.pos.y, s.dist_m, s.path_loss_db, s.shadowing_db,
                   s.snr_db, s.snr_bin_db}) {
    row += ',';
    row += fmt(v);
  }
  row += ',';
  if (s.adj_level_db.has_value()) row += fmt(*s.adj_level_db);
  for (double v : {s.result.ber(), s.result.per(), s.result.evm_rms_avg,
                   s.goodput_mbps}) {
    row += ',';
    row += fmt(v);
  }
  row += ',';
  row += std::to_string(s.result.packets);
  row += ',';
  row += source_of(s);
  return row;
}

std::string trace_jsonl_row(const std::string& run_tag,
                            const StationSample& s) {
  std::string row;
  row.reserve(300);
  row += "{\"run_tag\":\"";
  row += json_escape(run_tag);
  row += "\",\"step\":";
  row += std::to_string(s.step);
  row += ",\"station\":";
  row += std::to_string(s.station);
  const auto field = [&row](const char* key, double v) {
    row += ",\"";
    row += key;
    row += "\":";
    row += fmt(v);
  };
  field("x_m", s.pos.x);
  field("y_m", s.pos.y);
  field("dist_m", s.dist_m);
  field("path_loss_db", s.path_loss_db);
  field("shadowing_db", s.shadowing_db);
  field("snr_db", s.snr_db);
  field("snr_bin_db", s.snr_bin_db);
  if (s.adj_level_db.has_value()) field("adj_level_db", *s.adj_level_db);
  field("ber", s.result.ber());
  field("per", s.result.per());
  field("evm", s.result.evm_rms_avg);
  field("goodput_mbps", s.goodput_mbps);
  row += ",\"packets\":";
  row += std::to_string(s.result.packets);
  row += ",\"source\":\"";
  row += source_of(s);
  row += "\"}";
  return row;
}

TraceWriter::TraceWriter(std::ostream& out, TraceFormat format,
                         std::string run_tag)
    : out_(out), format_(format), run_tag_(std::move(run_tag)) {
  if (format_ == TraceFormat::kCsv) out_ << trace_csv_header() << '\n';
}

void TraceWriter::write(const StationSample& s) {
  out_ << (format_ == TraceFormat::kCsv ? trace_csv_row(run_tag_, s)
                                        : trace_jsonl_row(run_tag_, s))
       << '\n';
}

SampleSink TraceWriter::sink() {
  return [this](const StationSample& s) { write(s); };
}

}  // namespace wlansim::scenario
