#include "scenario/drop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "phy80211a/params.h"

namespace wlansim::scenario {

namespace {

double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Geometry half of one sample: everything except the link evaluation.
struct Geo {
  Vec2 pos{};
  double dist_m = 0.0;
  double path_loss_db = 0.0;
  double shadowing_db = 0.0;
  double snr_db = 0.0;      ///< clamped SINR
  double snr_bin_db = 0.0;  ///< quantized evaluation point
  std::optional<double> adj_level_db;
};

/// The single adjacent-channel offset of the drop (all adjacent BSSs must
/// share it — their powers sum into one PHY interferer).
std::optional<double> adjacent_offset(const DropConfig& cfg) {
  std::optional<double> offset;
  for (const InterfererBss& bss : cfg.interferers) {
    if (bss.offset_hz == 0.0) continue;
    if (offset.has_value() && *offset != bss.offset_hz) {
      throw std::invalid_argument(
          "run_drop: all adjacent-channel BSSs must share one offset_hz "
          "(the link hosts a single PHY interferer; co-channel BSSs are "
          "unrestricted)");
    }
    offset = bss.offset_hz;
  }
  return offset;
}

Geo station_geometry(const DropConfig& cfg, double noise_floor_dbm,
                     std::uint32_t station, std::uint32_t step, Vec2 pos) {
  Geo g;
  g.pos = pos;
  g.dist_m = distance_m(pos, cfg.ap);
  g.path_loss_db = log_distance_path_loss_db(cfg.path_loss, g.dist_m);
  g.shadowing_db = shadowing_db(cfg.seed, station, 0, step,
                                cfg.path_loss.shadowing_sigma_db);
  const double wanted_dbm = cfg.tx_power_dbm - g.path_loss_db - g.shadowing_db;

  // Interference-as-noise for co-channel BSSs; adjacent BSSs sum into the
  // PHY interferer level (they hit the RF front-end as real OFDM signal,
  // which no SINR abstraction reproduces).
  double denom_lin = db_to_lin(noise_floor_dbm);
  double adj_lin = 0.0;
  for (std::size_t j = 0; j < cfg.interferers.size(); ++j) {
    const InterfererBss& bss = cfg.interferers[j];
    const double pl =
        log_distance_path_loss_db(cfg.path_loss, distance_m(pos, bss.position));
    const double sh = shadowing_db(cfg.seed, station, j + 1, step,
                                   cfg.path_loss.shadowing_sigma_db);
    const double rx_dbm = bss.tx_power_dbm - pl - sh;
    if (bss.offset_hz == 0.0) {
      denom_lin += db_to_lin(rx_dbm);
    } else {
      adj_lin += db_to_lin(rx_dbm);
    }
  }

  const double sinr_db = wanted_dbm - 10.0 * std::log10(denom_lin);
  g.snr_db = std::clamp(sinr_db, cfg.snr_min_db, cfg.snr_max_db);
  g.snr_bin_db = core::quantize_axis(g.snr_db, cfg.snr_bin_db);

  if (adj_lin > 0.0) {
    const double rel_db = 10.0 * std::log10(adj_lin) - wanted_dbm;
    if (rel_db >= cfg.adj_floor_db) {
      g.adj_level_db = core::quantize_axis(rel_db, cfg.adj_bin_db);
    }
  }
  return g;
}

core::LinkConfig station_link_config(const DropConfig& cfg, double snr_db,
                                     std::optional<double> adj_level_db,
                                     std::optional<double> adj_offset_hz) {
  core::LinkConfig link = cfg.link;
  link.snr_db = snr_db;
  if (adj_level_db.has_value()) {
    channel::InterfererConfig jam =
        cfg.link.interferer.value_or(channel::InterfererConfig{});
    jam.offset_hz = adj_offset_hz.value_or(jam.offset_hz);
    jam.level_db = *adj_level_db;
    link.interferer = jam;
  } else {
    link.interferer.reset();
  }
  return link;
}

}  // namespace

core::LinkConfig sample_link_config(const DropConfig& cfg,
                                    const StationSample& s) {
  return station_link_config(cfg, s.snr_bin_db, s.adj_level_db,
                             adjacent_offset(cfg));
}

DropSummary run_drop(const DropConfig& cfg, const SampleSink& sink) {
  if (!(cfg.snr_min_db <= cfg.snr_max_db)) {
    throw std::invalid_argument("run_drop: snr_min_db > snr_max_db");
  }
  const std::optional<double> adj_offset = adjacent_offset(cfg);
  const double noise_floor_dbm = -174.0 +
                                 10.0 * std::log10(cfg.bandwidth_hz) +
                                 cfg.noise_figure_db;

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // One in-memory store view for the whole drop: curves read once, and
  // each step's backfill is visible to the next without a disk round-trip.
  std::optional<sim::BerSurrogate> cache;
  if (cfg.use_store) {
    std::filesystem::path dir = cfg.store_dir.empty()
                                    ? core::default_calibration_dir()
                                    : cfg.store_dir;
    cache.emplace(sim::CalibrationStore(std::move(dir)));
  }
  core::DedupOptions dopts;
  dopts.surrogate.axis = sim::SurrogateAxis::kSnrDb;
  dopts.surrogate.rule = cfg.rule;
  dopts.surrogate.threads = cfg.threads;
  dopts.surrogate.store_dir = cfg.store_dir;
  dopts.surrogate.cache = cache.has_value() ? &*cache : nullptr;
  dopts.bin_width_db = cfg.snr_bin_db;
  dopts.use_store = cfg.use_store;
  dopts.cold_pass = cfg.cold_pass;

  std::vector<Vec2> pos(cfg.num_stations);
  for (std::size_t i = 0; i < cfg.num_stations; ++i)
    pos[i] = place_uniform(cfg.seed, i, cfg.area_half_m);

  DropSummary summary;
  std::vector<Geo> geo(cfg.num_stations);
  std::vector<core::LinkConfig> configs(cfg.num_stations);
  for (std::uint32_t step = 0; step < cfg.num_steps; ++step) {
    if (step > 0) {
      for (std::size_t i = 0; i < cfg.num_stations; ++i) {
        pos[i] = walk_step(pos[i], cfg.seed, i, step, cfg.mobility.step_m,
                           cfg.area_half_m);
      }
    }
    const double step_t0 = elapsed();
    for (std::size_t i = 0; i < cfg.num_stations; ++i) {
      geo[i] = station_geometry(cfg, noise_floor_dbm,
                                static_cast<std::uint32_t>(i), step, pos[i]);
      configs[i] = station_link_config(cfg, geo[i].snr_db,
                                       geo[i].adj_level_db, adj_offset);
    }

    StepSummary ss;
    ss.step = step;
    const std::vector<core::BerResult> results =
        core::sweep_ber_deduped(configs, dopts, &ss.dedup);
    ss.wall_seconds = elapsed() - step_t0;

    for (std::size_t i = 0; i < cfg.num_stations; ++i) {
      StationSample s;
      s.step = step;
      s.station = static_cast<std::uint32_t>(i);
      s.pos = geo[i].pos;
      s.dist_m = geo[i].dist_m;
      s.path_loss_db = geo[i].path_loss_db;
      s.shadowing_db = geo[i].shadowing_db;
      s.snr_db = geo[i].snr_db;
      s.snr_bin_db = geo[i].snr_bin_db;
      s.adj_level_db = geo[i].adj_level_db;
      s.result = results[i];
      s.goodput_mbps = phy::rate_params(cfg.link.rate).rate_mbps *
                       (1.0 - s.result.per());
      ss.mean_snr_db += s.snr_db;
      ss.mean_ber += s.result.ber();
      ss.mean_goodput_mbps += s.goodput_mbps;
      if (sink) sink(s);
    }
    if (cfg.num_stations > 0) {
      const double n = static_cast<double>(cfg.num_stations);
      ss.mean_snr_db /= n;
      ss.mean_ber /= n;
      ss.mean_goodput_mbps /= n;
    }
    summary.totals += ss.dedup;
    summary.steps.push_back(std::move(ss));
  }
  summary.wall_seconds = elapsed();
  return summary;
}

std::string drop_summary_table(const DropSummary& summary) {
  // The byte-exact table `wlansim drop` has always printed; the service
  // path ships these same bytes to `wlansim_client drop`, so any format
  // change here is a wire-visible change (pinned by tests/service/).
  std::string out;
  char line[160];
  out += "step  stations  distinct  warm  cold  mean_snr_db  mean_ber"
         "   goodput_mbps  wall_s\n";
  for (const StepSummary& st : summary.steps) {
    std::snprintf(line, sizeof(line),
                  "%4u  %8zu  %8zu  %4zu  %4zu  %11.2f  %.2e  %12.2f  %6.2f\n",
                  st.step, st.dedup.queries, st.dedup.distinct, st.dedup.warm,
                  st.dedup.cold, st.mean_snr_db, st.mean_ber,
                  st.mean_goodput_mbps, st.wall_seconds);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %zu evaluations -> %zu distinct (%zu warm, %zu cold) "
                "in %.2f s\n",
                summary.totals.queries, summary.totals.distinct,
                summary.totals.warm, summary.totals.cold,
                summary.wall_seconds);
  out += line;
  return out;
}

DropSummary run_drop_collect(const DropConfig& cfg,
                             std::vector<StationSample>& samples) {
  samples.clear();
  samples.reserve(cfg.num_stations * cfg.num_steps);
  return run_drop(cfg, [&samples](const StationSample& s) {
    samples.push_back(s);
  });
}

}  // namespace wlansim::scenario
