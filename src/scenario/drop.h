// The network-scale drop engine: N stations placed in an area around an
// AP, log-distance path loss + lognormal shadowing + random-walk mobility,
// co-channel / adjacent-channel interferer BSSs — every station-step
// evaluated through the REAL PHY/RF chain (what distinguishes this from an
// abstracted network simulator), at throughput scale.
//
// The perf core (layer 2): a drop's link evaluations collapse onto a few
// distinct (front-end fingerprint, quantized-SNR-bin) points, so each step
// routes its stations through core::sweep_ber_deduped — warm bins answered
// from the calibration store, all cold bins batched into ONE pooled
// adaptive Monte-Carlo pass, then backfilled so the next mobility step
// (and the next run) is warm.
//
// Determinism: geometry is a pure function of (seed, stream, entity, step)
// — see scenario/geometry.h — and the link evaluations inherit the
// adaptive engine's (configs, rule)-purity, so a drop's samples are
// byte-identical across thread counts. Wall-clock fields are excluded from
// samples for exactly that reason.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/surrogate.h"
#include "scenario/geometry.h"

namespace wlansim::scenario {

/// One interfering BSS (an always-transmitting AP).
struct InterfererBss {
  Vec2 position{};
  double tx_power_dbm = 16.0;
  /// 0 = co-channel: its received power adds to the noise floor
  /// (interference-as-noise), lowering the station's SINR. Non-zero =
  /// adjacent-channel: run through the real PHY interferer path
  /// (channel::InterfererConfig) at the geometry-derived level. All
  /// adjacent BSSs of a drop must share one offset; their powers sum.
  double offset_hz = 0.0;
};

struct DropConfig {
  // --- Geometry -----------------------------------------------------------
  std::size_t num_stations = 100;
  std::size_t num_steps = 1;
  /// Stations walk inside [-area_half_m, area_half_m]^2; the AP sits at
  /// `ap` (default: the center).
  double area_half_m = 50.0;
  Vec2 ap{};
  double tx_power_dbm = 16.0;
  double noise_figure_db = 7.0;
  double bandwidth_hz = 20e6;  ///< noise bandwidth for the floor
  PathLossConfig path_loss;
  MobilityConfig mobility;
  std::vector<InterfererBss> interferers;
  std::uint64_t seed = 1;

  // --- Link (layer below the geometry) ------------------------------------
  /// Base link every station runs: rate, PSDU size, RF front-end, receiver.
  /// snr_db and interferer are overwritten per station-step from the
  /// geometry; everything else is shared (and so is the surrogate
  /// fingerprint). The config seed stays — it is part of the key.
  core::LinkConfig link;

  // --- Dedup / evaluation (the perf contract) ------------------------------
  /// SNR quantization bin [dB] for deduplication (core::quantize_axis).
  double snr_bin_db = 0.5;
  /// Geometry SNRs clamp onto [snr_min_db, snr_max_db] before binning:
  /// beyond the span the BER curve is flat (error floor / error-free), so
  /// the clamp bounds the distinct-bin count without moving any result
  /// that matters.
  double snr_min_db = 0.0;
  double snr_max_db = 30.0;
  /// Adjacent-interferer level quantization bin [dB] (the level is part of
  /// the fingerprint, so binning it bounds the distinct-curve count).
  double adj_bin_db = 2.0;
  /// Adjacent interference below this level relative to the wanted signal
  /// is dropped entirely (negligible, and each distinct level is a whole
  /// calibration curve).
  double adj_floor_db = -10.0;
  /// Stopping rule for the pooled adaptive passes (and the store key).
  sim::StoppingRule rule;
  std::size_t threads = 0;
  /// false: pure dedup, no calibration store (cross-step warmth is lost).
  bool use_store = true;
  /// Calibration store directory; empty = core::default_calibration_dir().
  std::filesystem::path store_dir;
  /// Optional replacement for each step's pooled cold pass, forwarded into
  /// core::DedupOptions::cold_pass — the service layer routes this to its
  /// checkpointed (and sharded, service/shard.h) executor so a drop served
  /// over the socket checkpoints and fans out exactly like a sweep job.
  /// Same bit-identity contract as core::ColdPassFn.
  core::ColdPassFn cold_pass;
};

/// One station at one mobility step, with its link evaluation.
struct StationSample {
  std::uint32_t step = 0;
  std::uint32_t station = 0;
  Vec2 pos{};
  double dist_m = 0.0;          ///< to the serving AP
  double path_loss_db = 0.0;    ///< deterministic part (no shadowing)
  double shadowing_db = 0.0;    ///< AP-link shadowing draw
  double snr_db = 0.0;          ///< geometry SINR, clamped onto the axis span
  double snr_bin_db = 0.0;      ///< quantized evaluation point
  /// Quantized adjacent-interferer level relative to the wanted signal
  /// [dB]; nullopt when no adjacent BSS is audible above the floor.
  std::optional<double> adj_level_db;
  core::BerResult result;       ///< link evaluation at the binned point
  double goodput_mbps = 0.0;    ///< rate * (1 - PER): PHY goodput
};

struct StepSummary {
  std::uint32_t step = 0;
  core::DedupStats dedup;
  double wall_seconds = 0.0;  ///< measurement wall clock (NOT in samples)
  double mean_snr_db = 0.0;
  double mean_ber = 0.0;
  double mean_goodput_mbps = 0.0;
};

struct DropSummary {
  std::vector<StepSummary> steps;
  core::DedupStats totals;
  double wall_seconds = 0.0;
};

/// Stream sink for samples, called in deterministic (step-major, station-
/// ascending) order — a million-station drop never needs to hold its
/// samples in memory.
using SampleSink = std::function<void(const StationSample&)>;

/// Run the drop: for each step, update mobility, derive every station's
/// SINR, evaluate all stations through core::sweep_ber_deduped, and emit
/// samples to `sink`.
DropSummary run_drop(const DropConfig& cfg, const SampleSink& sink);

/// Convenience wrapper collecting every sample (small drops / tests).
DropSummary run_drop_collect(const DropConfig& cfg,
                             std::vector<StationSample>& samples);

/// Render `summary` as the CLI's per-step table (header, one row per step,
/// totals line) — the exact bytes `wlansim drop` prints, shared with the
/// service path so `wlansim_client drop` output is byte-identical.
std::string drop_summary_table(const DropSummary& summary);

/// The exact LinkConfig the drop evaluated for `s` (base link + binned SNR
/// + quantized adjacent interferer): running core::run_ber_adaptive on it
/// under cfg.rule reproduces a cold sample's counters bit-for-bit — the
/// dedup-vs-direct identity contract, pinned by tests/scenario/.
core::LinkConfig sample_link_config(const DropConfig& cfg,
                                    const StationSample& s);

}  // namespace wlansim::scenario
