// Drop geometry: deterministic counter-seeded station placement, the
// log-distance path-loss + lognormal-shadowing radio model, and random-walk
// mobility — the layer that turns "N stations in an area" into a
// per-station per-step SNR (the scenario template of the ns-3 exemplar:
// random-walk STAs inside +/- area_half bounds around an AP, with
// interferer BSSs; see ROADMAP item 1).
//
// Determinism contract: every random quantity is a pure function of
// (drop seed, stream, entity, step) through the counter-based geo_seed
// below — no draw depends on evaluation order, thread count, or how many
// stations surround it. That is the scenario-level analogue of
// core::packet_seed's per-packet contract, and what makes drop traces
// byte-identical across thread counts.
#pragma once

#include <cstdint>

namespace wlansim::scenario {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double distance_m(Vec2 a, Vec2 b);

/// Log-distance path loss with lognormal shadowing:
///   PL(d) = ref_loss_db + 10 * exponent * log10(d / ref_distance_m) + X
/// where X ~ N(0, shadowing_sigma_db^2) is drawn per (station, BSS, step).
struct PathLossConfig {
  /// Loss at the reference distance [dB]. Default: free space at 1 m,
  /// 5.2 GHz (20 log10(4 pi d f / c) = 46.7 dB) — the 802.11a band.
  double ref_loss_db = 46.7;
  double ref_distance_m = 1.0;
  /// Distance exponent: 2 = free space, ~3 = indoor office with walls.
  double exponent = 3.0;
  double shadowing_sigma_db = 6.0;
  /// Distances below this clamp to it: the far-field model has no meaning
  /// at (and diverges toward) zero range.
  double min_distance_m = 1.0;
};

struct MobilityConfig {
  /// Random-walk step length per drop step [m]; 0 = static stations.
  /// Direction is uniform per (station, step); positions reflect off the
  /// +/- area_half boundary.
  double step_m = 1.0;
};

/// Named sub-streams of the drop's randomness. Values are part of the
/// reproducibility contract: changing them reshuffles every drop.
enum class GeoStream : std::uint64_t {
  kPlacement = 1,  ///< initial station / BSS positions
  kWalk = 2,       ///< per-step random-walk directions
  kShadowing = 3,  ///< per-(station, BSS, step) shadowing draws
};

/// Counter-based sub-seed: a splitmix64-style mix of the drop seed, the
/// stream tag, the entity index, and the step counter. Statistically
/// independent across any two distinct argument tuples, and — like
/// core::packet_seed — schedule-independent by construction.
std::uint64_t geo_seed(std::uint64_t seed, GeoStream stream,
                       std::uint64_t entity, std::uint64_t step = 0);

/// Deterministic path loss (no shadowing) at `dist` meters.
double log_distance_path_loss_db(const PathLossConfig& cfg, double dist);

/// The shadowing term [dB] station `station` sees from transmitter `bss`
/// at `step`: N(0, sigma^2) from the kShadowing stream. Entity 0 is the
/// serving AP; interferer BSS j uses entity j + 1.
double shadowing_db(std::uint64_t seed, std::uint64_t station,
                    std::uint64_t bss, std::uint64_t step, double sigma_db);

/// Uniform placement in the square [-area_half, area_half]^2 from the
/// kPlacement stream.
Vec2 place_uniform(std::uint64_t seed, std::uint64_t entity,
                   double area_half_m);

/// One random-walk step from `pos`: direction uniform in [0, 2 pi) from
/// the kWalk stream, length `step_m`, reflected at the +/- area_half
/// boundary so stations never leave the drop area.
Vec2 walk_step(Vec2 pos, std::uint64_t seed, std::uint64_t station,
               std::uint64_t step, double step_m, double area_half_m);

}  // namespace wlansim::scenario
