#include "phy80211a/measure.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"
#include "phy80211a/mapper.h"
#include "phy80211a/ofdm.h"

namespace wlansim::phy {

void BerCounter::add_packet(std::span<const std::uint8_t> tx_bytes,
                            std::span<const std::uint8_t> rx_bytes, bool rx_ok) {
  const std::size_t nbits = 8 * tx_bytes.size();
  bits_total_ += nbits;
  ++packets_total_;
  if (!rx_ok || rx_bytes.size() != tx_bytes.size()) {
    // Treat an undecodable packet as fully errored: one random guess per
    // bit would average nbits/2, but counting all keeps BER monotone with
    // packet loss and matches the worst-case convention. Use half to stay
    // closer to the information-loss view.
    bit_errors_ += nbits / 2;
    ++packet_errors_;
    return;
  }
  std::size_t errs = 0;
  for (std::size_t i = 0; i < tx_bytes.size(); ++i) {
    std::uint8_t x = static_cast<std::uint8_t>(tx_bytes[i] ^ rx_bytes[i]);
    while (x) {
      errs += x & 1;
      x >>= 1;
    }
  }
  bit_errors_ += errs;
  if (errs > 0) ++packet_errors_;
}

void BerCounter::add_lost_packet(std::size_t tx_bytes) {
  bits_total_ += 8 * tx_bytes;
  bit_errors_ += 8 * tx_bytes / 2;
  ++packets_total_;
  ++packet_errors_;
}

double BerCounter::ber() const {
  return bits_total_ ? static_cast<double>(bit_errors_) /
                           static_cast<double>(bits_total_)
                     : 0.0;
}

double BerCounter::per() const {
  return packets_total_ ? static_cast<double>(packet_errors_) /
                              static_cast<double>(packets_total_)
                        : 0.0;
}

void EvmCounter::add(std::span<const dsp::Cplx> rx,
                     std::span<const dsp::Cplx> ref) {
  if (rx.size() != ref.size())
    throw std::invalid_argument("EvmCounter: size mismatch");
  dsp::kernels::evm_accum(rx.data(), ref.data(), rx.size(), &err_acc_,
                          &ref_acc_);
  count_ += rx.size();
}

void EvmCounter::add_decision_directed(std::span<const dsp::Cplx> rx,
                                       Modulation mod) {
  const Mapper mapper(mod);
  for (const dsp::Cplx& y : rx) {
    const dsp::Cplx ref = mapper.nearest_point(y);
    err_acc_ += std::norm(y - ref);
    ref_acc_ += std::norm(ref);
    ++count_;
  }
}

double EvmCounter::evm_rms() const {
  if (ref_acc_ <= 0.0) return 0.0;
  return std::sqrt(err_acc_ / ref_acc_);
}

double EvmCounter::evm_percent() const { return 100.0 * evm_rms(); }

double EvmCounter::evm_db() const {
  const double e = evm_rms();
  return e > 0.0 ? 20.0 * std::log10(e) : -200.0;
}

double papr_db(std::span<const dsp::Cplx> x) {
  const double mean = dsp::mean_power(x);
  if (mean <= 0.0) return 0.0;
  double peak = 0.0;
  for (const auto& v : x) peak = std::max(peak, std::norm(v));
  return dsp::to_db(peak / mean);
}

std::vector<double> papr_ccdf(std::span<const dsp::Cplx> x,
                              std::span<const double> thresholds_db) {
  std::vector<double> out(thresholds_db.size(), 0.0);
  const double mean = dsp::mean_power(x);
  if (mean <= 0.0 || x.empty()) return out;
  for (std::size_t t = 0; t < thresholds_db.size(); ++t) {
    const double limit = mean * dsp::from_db(thresholds_db[t]);
    std::size_t count = 0;
    for (const auto& v : x) {
      if (std::norm(v) > limit) ++count;
    }
    out[t] = static_cast<double>(count) / static_cast<double>(x.size());
  }
  return out;
}

void PerCarrierEvm::add_symbol(std::span<const dsp::Cplx> rx,
                               std::span<const dsp::Cplx> ref) {
  if (rx.size() != kNumDataCarriers || ref.size() != kNumDataCarriers)
    throw std::invalid_argument("PerCarrierEvm: need 48 points per symbol");
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    err_[i] += std::norm(rx[i] - ref[i]);
    ref_[i] += std::norm(ref[i]);
  }
  ++symbols_;
}

std::array<double, kNumDataCarriers> PerCarrierEvm::evm_per_carrier() const {
  std::array<double, kNumDataCarriers> out{};
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    out[i] = ref_[i] > 0.0 ? std::sqrt(err_[i] / ref_[i]) : 0.0;
  }
  return out;
}

int PerCarrierEvm::carrier_index(std::size_t i) {
  return data_carrier_indices().at(i);
}

}  // namespace wlansim::phy
