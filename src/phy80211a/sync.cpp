#include "phy80211a/sync.h"

#include <cfloat>
#include <cmath>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"
#include "phy80211a/params.h"
#include "phy80211a/preamble.h"

namespace wlansim::phy {

namespace {
constexpr std::size_t kLag = 16;      // short-preamble periodicity
constexpr std::size_t kCorrLen = 32;  // detection correlation window

// Sliding-window bookkeeping for the fast paths: re-sum the window exactly
// every kRefresh positions so one pass accumulates at most kRefresh slide
// roundings, and whenever a slid power sum falls below the worst-case
// rounding bound for those slides (kDriftSlides * eps * largest term seen
// since the refresh, with slack). The guard matters for all-zero stretches:
// a slid p can drift to a tiny nonzero value where the reference computes an
// exact 0 — and a near-zero denominator would turn that drift into an O(1)
// metric error. After the guard fires, a true zero window re-sums to exactly
// 0.0 and takes the same p <= 0 branch as the reference.
constexpr std::size_t kRefresh = 256;
constexpr double kDriftEps = 64.0 * DBL_EPSILON;
}  // namespace

std::optional<DetectionResult> detect_packet(std::span<const dsp::Cplx> rx,
                                             double threshold) {
  if (rx.size() < kCorrLen + kLag + 1) return std::nullopt;
  // Same metric and plateau logic as detect_packet_reference, but the three
  // window sums (delay correlation c, power p, mean) advance in O(1) per
  // position: the window over n..n+31 becomes the window over n+1..n+32 by
  // subtracting the leaving term and adding the entering one.
  std::size_t run = 0;
  const std::size_t last = rx.size() - kCorrLen - kLag;
  dsp::Cplx c{0.0, 0.0};
  dsp::Cplx mean{0.0, 0.0};
  double p = 0.0;
  double peak_norm = 0.0;  // largest |r|^2 to enter the sums since refresh
  const auto recompute = [&](std::size_t n) {
    c = dsp::Cplx{0.0, 0.0};
    mean = dsp::Cplx{0.0, 0.0};
    p = 0.0;
    peak_norm = 0.0;
    for (std::size_t k = 0; k < kCorrLen; ++k) {
      const dsp::Cplx d = rx[n + k + kLag];
      c += d * std::conj(rx[n + k]);
      const double d2 = std::norm(d);
      p += d2;
      mean += d;
      if (d2 > peak_norm) peak_norm = d2;
    }
  };
  for (std::size_t n = 0; n < last; ++n) {
    if (n % kRefresh == 0) {
      recompute(n);
    } else {
      const dsp::Cplx enter = rx[n + kCorrLen - 1 + kLag];
      const dsp::Cplx leave = rx[n - 1 + kLag];
      c += enter * std::conj(rx[n + kCorrLen - 1]) -
           leave * std::conj(rx[n - 1]);
      const double enter2 = std::norm(enter);
      p += enter2 - std::norm(leave);
      mean += enter - leave;
      if (enter2 > peak_norm) peak_norm = enter2;
      if (p < kDriftEps * static_cast<double>(kCorrLen) * peak_norm)
        recompute(n);
    }
    double m = (p > 0.0) ? std::abs(c) / p : 0.0;
    const double dc_frac =
        (p > 0.0) ? std::norm(mean) / (static_cast<double>(kCorrLen) * p) : 0.0;
    if (dc_frac > 0.5) m = 0.0;
    if (m > threshold) {
      ++run;
      if (run >= 32) {
        const std::size_t det = n + 1 - run;
        return DetectionResult{det, coarse_cfo(rx, det)};
      }
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

std::optional<DetectionResult> detect_packet_reference(
    std::span<const dsp::Cplx> rx, double threshold) {
  if (rx.size() < kCorrLen + kLag + 1) return std::nullopt;
  // m(n) = |sum r[n+k+16] conj(r[n+k])| / sum |r[n+k+16]|^2; a plateau near
  // 1 marks the short preamble. Require the metric to hold for 32
  // consecutive positions to reject noise spikes.
  std::size_t run = 0;
  const std::size_t last = rx.size() - kCorrLen - kLag;
  for (std::size_t n = 0; n < last; ++n) {
    dsp::Cplx c{0.0, 0.0};
    dsp::Cplx mean{0.0, 0.0};
    double p = 0.0;
    for (std::size_t k = 0; k < kCorrLen; ++k) {
      c += rx[n + k + kLag] * std::conj(rx[n + k]);
      p += std::norm(rx[n + k + kLag]);
      mean += rx[n + k + kLag];
    }
    double m = (p > 0.0) ? std::abs(c) / p : 0.0;
    // A DC offset (LO self-mixing residue) is periodic at every lag and
    // would fire the detector; the short preamble itself carries no DC
    // subcarrier, so reject windows whose energy is mostly at 0 Hz.
    const double dc_frac =
        (p > 0.0) ? std::norm(mean) / (static_cast<double>(kCorrLen) * p) : 0.0;
    if (dc_frac > 0.5) m = 0.0;
    if (m > threshold) {
      ++run;
      if (run >= 32) {
        const std::size_t det = n + 1 - run;
        return DetectionResult{det, coarse_cfo(rx, det)};
      }
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

double coarse_cfo(std::span<const dsp::Cplx> rx, std::size_t start,
                  std::size_t len) {
  dsp::Cplx c{0.0, 0.0};
  const std::size_t end = std::min(rx.size(), start + len);
  for (std::size_t n = start; n + kLag < end; ++n)
    c += rx[n + kLag] * std::conj(rx[n]);
  // r[n+16] = r[n] e^{j 2 pi f 16}  =>  f = arg(c) / (2 pi 16).
  return std::arg(c) / (dsp::kTwoPi * static_cast<double>(kLag));
}

double fine_cfo(std::span<const dsp::Cplx> rx, std::size_t lts_start) {
  dsp::Cplx c{0.0, 0.0};
  for (std::size_t n = 0; n < kNfft; ++n) {
    const std::size_t i = lts_start + n;
    if (i + kNfft >= rx.size()) break;
    c += rx[i + kNfft] * std::conj(rx[i]);
  }
  return std::arg(c) / (dsp::kTwoPi * static_cast<double>(kNfft));
}

std::optional<std::size_t> locate_long_training(std::span<const dsp::Cplx> rx,
                                                std::size_t search_start,
                                                std::size_t search_end) {
  const dsp::CVec& ref = long_training_symbol();
  if (search_end > rx.size() + 1)
    search_end = rx.size() >= kNfft ? rx.size() - kNfft + 1 : 0;
  if (search_start >= search_end) return std::nullopt;

  // Normalized cross-correlation peaks at the two LTS copies; take the
  // first of the two (they are 64 samples apart). The correlation runs on
  // the dispatched xcorr_accum kernel and the window power slides by
  // recurrence (exact re-sum on the usual refresh/drift schedule).
  double best = 0.0;
  std::size_t best_idx = 0;
  double p = 0.0;
  double peak_norm = 0.0;
  const auto recompute_p = [&](std::size_t n) {
    p = dsp::kernels::power_sum(rx.data() + n, kNfft);
    peak_norm = 0.0;
    for (std::size_t k = 0; k < kNfft; ++k) {
      const double d2 = std::norm(rx[n + k]);
      if (d2 > peak_norm) peak_norm = d2;
    }
  };
  for (std::size_t n = search_start; n < search_end; ++n) {
    if (n + kNfft > rx.size()) break;
    if ((n - search_start) % kRefresh == 0) {
      recompute_p(n);
    } else {
      const double enter2 = std::norm(rx[n + kNfft - 1]);
      p += enter2 - std::norm(rx[n - 1]);
      if (enter2 > peak_norm) peak_norm = enter2;
      if (p < kDriftEps * static_cast<double>(kNfft) * peak_norm)
        recompute_p(n);
    }
    double re = 0.0, im = 0.0;
    dsp::kernels::xcorr_accum(rx.data() + n, ref.data(), kNfft, &re, &im);
    const double m = (p > 0.0) ? (re * re + im * im) / p : 0.0;
    if (m > best) {
      best = m;
      best_idx = n;
    }
  }
  if (best <= 0.0) return std::nullopt;
  // best_idx may be the first or the second LTS copy; disambiguate by
  // testing the correlation 64 samples earlier.
  if (best_idx >= search_start + kNfft) {
    const std::size_t prev = best_idx - kNfft;
    double re = 0.0, im = 0.0;
    dsp::kernels::xcorr_accum(rx.data() + prev, ref.data(), kNfft, &re, &im);
    const double pp = dsp::kernels::power_sum(rx.data() + prev, kNfft);
    const double m = (pp > 0.0) ? (re * re + im * im) / pp : 0.0;
    if (m > 0.5 * best) return prev;
  }
  return best_idx;
}

std::optional<std::size_t> locate_long_training_reference(
    std::span<const dsp::Cplx> rx, std::size_t search_start,
    std::size_t search_end) {
  const dsp::CVec& ref = long_training_symbol();
  if (search_end > rx.size() + 1)
    search_end = rx.size() >= kNfft ? rx.size() - kNfft + 1 : 0;
  if (search_start >= search_end) return std::nullopt;

  // Normalized cross-correlation peaks at the two LTS copies; take the
  // first of the two (they are 64 samples apart).
  double best = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t n = search_start; n < search_end; ++n) {
    if (n + kNfft > rx.size()) break;
    dsp::Cplx c{0.0, 0.0};
    double p = 0.0;
    for (std::size_t k = 0; k < kNfft; ++k) {
      c += rx[n + k] * std::conj(ref[k]);
      p += std::norm(rx[n + k]);
    }
    const double m = (p > 0.0) ? std::norm(c) / p : 0.0;
    if (m > best) {
      best = m;
      best_idx = n;
    }
  }
  if (best <= 0.0) return std::nullopt;
  // best_idx may be the first or the second LTS copy; disambiguate by
  // testing the correlation 64 samples earlier.
  if (best_idx >= search_start + kNfft) {
    const std::size_t prev = best_idx - kNfft;
    dsp::Cplx c{0.0, 0.0};
    double p = 0.0;
    for (std::size_t k = 0; k < kNfft; ++k) {
      c += rx[prev + k] * std::conj(ref[k]);
      p += std::norm(rx[prev + k]);
    }
    const double m = (p > 0.0) ? std::norm(c) / p : 0.0;
    if (m > 0.5 * best) return prev;
  }
  return best_idx;
}

void correct_cfo(std::span<dsp::Cplx> rx, double cfo_norm) {
  double phase = 0.0;
  const double dphi = -dsp::kTwoPi * cfo_norm;
  for (dsp::Cplx& v : rx) {
    v *= dsp::Cplx{std::cos(phase), std::sin(phase)};
    phase += dphi;
    if (phase > 64.0 * dsp::kPi || phase < -64.0 * dsp::kPi)
      phase = dsp::wrap_phase(phase);
  }
}

}  // namespace wlansim::phy
