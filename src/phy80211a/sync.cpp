#include "phy80211a/sync.h"

#include <cmath>

#include "dsp/mathutil.h"
#include "phy80211a/params.h"
#include "phy80211a/preamble.h"

namespace wlansim::phy {

namespace {
constexpr std::size_t kLag = 16;      // short-preamble periodicity
constexpr std::size_t kCorrLen = 32;  // detection correlation window
}  // namespace

std::optional<DetectionResult> detect_packet(std::span<const dsp::Cplx> rx,
                                             double threshold) {
  if (rx.size() < kCorrLen + kLag + 1) return std::nullopt;
  // m(n) = |sum r[n+k+16] conj(r[n+k])| / sum |r[n+k+16]|^2; a plateau near
  // 1 marks the short preamble. Require the metric to hold for 32
  // consecutive positions to reject noise spikes.
  std::size_t run = 0;
  const std::size_t last = rx.size() - kCorrLen - kLag;
  for (std::size_t n = 0; n < last; ++n) {
    dsp::Cplx c{0.0, 0.0};
    dsp::Cplx mean{0.0, 0.0};
    double p = 0.0;
    for (std::size_t k = 0; k < kCorrLen; ++k) {
      c += rx[n + k + kLag] * std::conj(rx[n + k]);
      p += std::norm(rx[n + k + kLag]);
      mean += rx[n + k + kLag];
    }
    double m = (p > 0.0) ? std::abs(c) / p : 0.0;
    // A DC offset (LO self-mixing residue) is periodic at every lag and
    // would fire the detector; the short preamble itself carries no DC
    // subcarrier, so reject windows whose energy is mostly at 0 Hz.
    const double dc_frac =
        (p > 0.0) ? std::norm(mean) / (static_cast<double>(kCorrLen) * p) : 0.0;
    if (dc_frac > 0.5) m = 0.0;
    if (m > threshold) {
      ++run;
      if (run >= 32) {
        const std::size_t det = n + 1 - run;
        return DetectionResult{det, coarse_cfo(rx, det)};
      }
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

double coarse_cfo(std::span<const dsp::Cplx> rx, std::size_t start,
                  std::size_t len) {
  dsp::Cplx c{0.0, 0.0};
  const std::size_t end = std::min(rx.size(), start + len);
  for (std::size_t n = start; n + kLag < end; ++n)
    c += rx[n + kLag] * std::conj(rx[n]);
  // r[n+16] = r[n] e^{j 2 pi f 16}  =>  f = arg(c) / (2 pi 16).
  return std::arg(c) / (dsp::kTwoPi * static_cast<double>(kLag));
}

double fine_cfo(std::span<const dsp::Cplx> rx, std::size_t lts_start) {
  dsp::Cplx c{0.0, 0.0};
  for (std::size_t n = 0; n < kNfft; ++n) {
    const std::size_t i = lts_start + n;
    if (i + kNfft >= rx.size()) break;
    c += rx[i + kNfft] * std::conj(rx[i]);
  }
  return std::arg(c) / (dsp::kTwoPi * static_cast<double>(kNfft));
}

std::optional<std::size_t> locate_long_training(std::span<const dsp::Cplx> rx,
                                                std::size_t search_start,
                                                std::size_t search_end) {
  const dsp::CVec& ref = long_training_symbol();
  if (search_end > rx.size() + 1) search_end = rx.size() >= kNfft ? rx.size() - kNfft + 1 : 0;
  if (search_start >= search_end) return std::nullopt;

  // Normalized cross-correlation peaks at the two LTS copies; take the
  // first of the two (they are 64 samples apart).
  double best = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t n = search_start; n < search_end; ++n) {
    if (n + kNfft > rx.size()) break;
    dsp::Cplx c{0.0, 0.0};
    double p = 0.0;
    for (std::size_t k = 0; k < kNfft; ++k) {
      c += rx[n + k] * std::conj(ref[k]);
      p += std::norm(rx[n + k]);
    }
    const double m = (p > 0.0) ? std::norm(c) / p : 0.0;
    if (m > best) {
      best = m;
      best_idx = n;
    }
  }
  if (best <= 0.0) return std::nullopt;
  // best_idx may be the first or the second LTS copy; disambiguate by
  // testing the correlation 64 samples earlier.
  if (best_idx >= search_start + kNfft) {
    const std::size_t prev = best_idx - kNfft;
    dsp::Cplx c{0.0, 0.0};
    double p = 0.0;
    for (std::size_t k = 0; k < kNfft; ++k) {
      c += rx[prev + k] * std::conj(ref[k]);
      p += std::norm(rx[prev + k]);
    }
    const double m = (p > 0.0) ? std::norm(c) / p : 0.0;
    if (m > 0.5 * best) return prev;
  }
  return best_idx;
}

void correct_cfo(std::span<dsp::Cplx> rx, double cfo_norm) {
  double phase = 0.0;
  const double dphi = -dsp::kTwoPi * cfo_norm;
  for (dsp::Cplx& v : rx) {
    v *= dsp::Cplx{std::cos(phase), std::sin(phase)};
    phase += dphi;
    if (phase > 64.0 * dsp::kPi || phase < -64.0 * dsp::kPi)
      phase = dsp::wrap_phase(phase);
  }
}

}  // namespace wlansim::phy
