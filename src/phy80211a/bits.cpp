#include "phy80211a/bits.h"

#include <algorithm>
#include <stdexcept>

namespace wlansim::phy {

Bits bytes_to_bits(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes)
    for (int i = 0; i < 8; ++i) bits.push_back((b >> i) & 1);
  return bits;
}

Bytes bits_to_bytes(std::span<const std::uint8_t> bits) {
  if (bits.size() % 8 != 0)
    throw std::invalid_argument("bits_to_bytes: size must be a multiple of 8");
  Bytes bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    bytes[i / 8] |= static_cast<std::uint8_t>((bits[i] & 1) << (i % 8));
  return bytes;
}

Bytes random_bytes(std::size_t n, dsp::Rng& rng) {
  Bytes out(n);
  rng.bytes(out.data(), n);
  return out;
}

std::size_t count_bit_errors(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t errs = 0;
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & 1) != (b[i] & 1)) ++errs;
  return errs;
}

}  // namespace wlansim::phy
