#include "phy80211a/params.h"

#include <array>
#include <stdexcept>

namespace wlansim::phy {

namespace {

constexpr std::array<RateParams, kNumRates> kTable = {{
    //  Mbps   modulation            code rate        NBPSC NCBPS NDBPS RATE
    {6.0,  Modulation::kBpsk,  CodeRate::kR12, 1, 48,  24,  0b1101},
    {9.0,  Modulation::kBpsk,  CodeRate::kR34, 1, 48,  36,  0b1111},
    {12.0, Modulation::kQpsk,  CodeRate::kR12, 2, 96,  48,  0b0101},
    {18.0, Modulation::kQpsk,  CodeRate::kR34, 2, 96,  72,  0b0111},
    {24.0, Modulation::kQam16, CodeRate::kR12, 4, 192, 96,  0b1001},
    {36.0, Modulation::kQam16, CodeRate::kR34, 4, 192, 144, 0b1011},
    {48.0, Modulation::kQam64, CodeRate::kR23, 6, 288, 192, 0b0001},
    {54.0, Modulation::kQam64, CodeRate::kR34, 6, 288, 216, 0b0011},
}};

constexpr std::array<std::string_view, kNumRates> kNames = {
    "6 Mbps (BPSK 1/2)",    "9 Mbps (BPSK 3/4)",
    "12 Mbps (QPSK 1/2)",   "18 Mbps (QPSK 3/4)",
    "24 Mbps (16-QAM 1/2)", "36 Mbps (16-QAM 3/4)",
    "48 Mbps (64-QAM 2/3)", "54 Mbps (64-QAM 3/4)",
};

}  // namespace

const RateParams& rate_params(Rate r) {
  return kTable[static_cast<std::size_t>(r)];
}

bool rate_from_field(std::uint8_t field, Rate* out) {
  for (std::size_t i = 0; i < kNumRates; ++i) {
    if (kTable[i].rate_field == field) {
      *out = static_cast<Rate>(i);
      return true;
    }
  }
  return false;
}

std::string_view rate_name(Rate r) { return kNames[static_cast<std::size_t>(r)]; }

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  throw std::invalid_argument("bits_per_symbol: bad modulation");
}

void code_rate_fraction(CodeRate r, std::size_t* num, std::size_t* den) {
  switch (r) {
    case CodeRate::kR12: *num = 1; *den = 2; return;
    case CodeRate::kR23: *num = 2; *den = 3; return;
    case CodeRate::kR34: *num = 3; *den = 4; return;
  }
  throw std::invalid_argument("code_rate_fraction: bad rate");
}

std::size_t num_data_symbols(Rate r, std::size_t psdu_bytes) {
  const RateParams& p = rate_params(r);
  const std::size_t total_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  return (total_bits + p.ndbps - 1) / p.ndbps;
}

}  // namespace wlansim::phy
