// Block interleaver over one OFDM symbol's coded bits — the two-permutation
// scheme of IEEE 802.11a-1999, 17.3.5.6: the first permutation spreads
// adjacent coded bits onto nonadjacent subcarriers; the second alternates
// them between more and less significant constellation bits.
#pragma once

#include <cstddef>
#include <vector>

#include "phy80211a/bits.h"
#include "phy80211a/convcode.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Precomputed interleaving permutation for one (NCBPS, NBPSC) pair.
class Interleaver {
 public:
  Interleaver(std::size_t ncbps, std::size_t nbpsc);

  /// Convenience: build from a rate's parameters.
  explicit Interleaver(Rate r);

  std::size_t block_size() const { return fwd_.size(); }

  /// Interleave exactly one symbol block (size must equal block_size()).
  Bits interleave(const Bits& in) const;

  /// De-interleave one symbol block of hard bits.
  Bits deinterleave(const Bits& in) const;

  /// De-interleave one symbol block of soft metrics.
  SoftBits deinterleave_soft(const SoftBits& in) const;

  /// deinterleave_soft into a caller-provided buffer of block_size()
  /// doubles (no aliasing) — the allocation-free form of the RX data path.
  void deinterleave_soft_into(const double* in, double* out) const;

  /// fwd()[k] is the post-interleaving position of input bit k.
  const std::vector<std::size_t>& fwd() const { return fwd_; }

  /// inv()[j] is the pre-interleaving position of post-interleaving bit j:
  /// a soft metric produced at demap position j belongs at deinterleaved
  /// position inv()[j]. The batched receiver uses this as a scatter table
  /// so LLRs land in decoder order without an intermediate copy.
  const std::vector<std::size_t>& inv() const { return inv_; }

 private:
  std::vector<std::size_t> fwd_;
  std::vector<std::size_t> inv_;
};

/// Process-wide per-rate interleaver tables, lazily built on first use —
/// the hot paths share these instead of rebuilding the permutation every
/// packet. The returned reference lives for the process.
const Interleaver& interleaver_for(Rate r);

}  // namespace wlansim::phy
