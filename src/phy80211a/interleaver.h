// Block interleaver over one OFDM symbol's coded bits — the two-permutation
// scheme of IEEE 802.11a-1999, 17.3.5.6: the first permutation spreads
// adjacent coded bits onto nonadjacent subcarriers; the second alternates
// them between more and less significant constellation bits.
#pragma once

#include <cstddef>
#include <vector>

#include "phy80211a/bits.h"
#include "phy80211a/convcode.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Precomputed interleaving permutation for one (NCBPS, NBPSC) pair.
class Interleaver {
 public:
  Interleaver(std::size_t ncbps, std::size_t nbpsc);

  /// Convenience: build from a rate's parameters.
  explicit Interleaver(Rate r);

  std::size_t block_size() const { return fwd_.size(); }

  /// Interleave exactly one symbol block (size must equal block_size()).
  Bits interleave(const Bits& in) const;

  /// De-interleave one symbol block of hard bits.
  Bits deinterleave(const Bits& in) const;

  /// De-interleave one symbol block of soft metrics.
  SoftBits deinterleave_soft(const SoftBits& in) const;

  /// fwd()[k] is the post-interleaving position of input bit k.
  const std::vector<std::size_t>& fwd() const { return fwd_; }

 private:
  std::vector<std::size_t> fwd_;
  std::vector<std::size_t> inv_;
};

}  // namespace wlansim::phy
