#include "phy80211a/receiver.h"

#include <cmath>

#include "phy80211a/convcode.h"
#include "phy80211a/interleaver.h"
#include "phy80211a/mapper.h"
#include "phy80211a/ofdm.h"
#include "phy80211a/scrambler.h"
#include "phy80211a/sync.h"

namespace wlansim::phy {

namespace {

/// Take the FFT window a few samples into the guard interval; the resulting
/// linear phase is common to channel estimate and data symbols and cancels
/// in equalization, while small timing errors and channel delay spread no
/// longer push the window past the symbol boundary.
constexpr std::size_t kTimingBackoff = 3;

}  // namespace

Receiver::Receiver() : Receiver(Config()) {}

Receiver::Receiver(Config cfg) : cfg_(cfg) {}

RxResult Receiver::decode_from(std::span<const dsp::Cplx> rx,
                               std::size_t lts_start, double cfo_total) const {
  RxResult res;
  res.detected = true;
  res.cfo_norm = cfo_total;
  res.frame_start = (lts_start >= kShortPreambleLen + 32)
                        ? lts_start - kShortPreambleLen - 32
                        : 0;

  if (lts_start < kTimingBackoff) return res;
  const std::size_t lts_win = lts_start - kTimingBackoff;
  if (lts_win + 2 * kNfft > rx.size()) return res;

  // With the FFT windows shifted into the guard by the same backoff, the
  // induced phase ramp is common to LTS and data and cancels out. The LTS
  // copies are contiguous, so shift both windows identically by taking
  // 128 samples starting at the backed-off position.
  ChannelEstimate est = estimate_channel(rx.subspan(lts_win, 2 * kNfft));
  if (cfg_.chanest_smoothing > 1)
    est = smooth_channel(est, cfg_.chanest_smoothing);

  // SIGNAL symbol.
  const std::size_t sig_fft = lts_start + 2 * kNfft + kCpLen - kTimingBackoff;
  if (sig_fft + kNfft > rx.size()) return res;
  const DemodulatedSymbol sig_sym =
      ofdm_demodulate_symbol(rx.subspan(sig_fft, kNfft));
  const EqualizedSymbol sig_eq =
      equalize_symbol(sig_sym, est, /*symbol_index=*/0, cfg_.track_phase,
                      cfg_.track_timing);
  const auto header = decode_signal_field(sig_eq.points, sig_eq.weights);
  if (!header) return res;
  res.header_ok = true;
  res.signal = *header;

  const RateParams& p = rate_params(header->rate);
  const std::size_t nsym = num_data_symbols(header->rate, header->length);
  const std::size_t data_base = lts_start + 2 * kNfft + kSymbolLen;

  SoftBits soft_all;
  res.data_points.reserve(nsym);
  const bool complete =
      cfg_.batched_data_path
          ? demod_data_batched(rx, data_base, nsym, header->rate, est, res,
                               soft_all)
          : demod_data_reference(rx, data_base, nsym, header->rate, est, res,
                                 soft_all);
  if (!complete) {
    res.header_ok = false;  // truncated frame
    return res;
  }

  const SoftBits mother = depuncture(soft_all, p.code_rate);
  // Scrambled pad bits after the tail leave the encoder in an arbitrary
  // state: start the traceback from the best survivor.
  Bits decoded = viterbi_decode(mother, /*terminated=*/false);

  // Descramble: recover the seed from the seven zero SERVICE bits.
  const Bits first7(decoded.begin(), decoded.begin() + 7);
  Scrambler descr(recover_scrambler_seed(first7));
  descr.process(decoded);

  const std::size_t psdu_bits = 8 * header->length;
  if (kServiceBits + psdu_bits > decoded.size()) {
    res.header_ok = false;
    return res;
  }
  const Bits payload(decoded.begin() + kServiceBits,
                     decoded.begin() + kServiceBits + psdu_bits);
  res.psdu = bits_to_bytes(payload);
  return res;
}

bool Receiver::demod_data_reference(std::span<const dsp::Cplx> rx,
                                    std::size_t data_base, std::size_t nsym,
                                    Rate rate, const ChannelEstimate& est,
                                    RxResult& res, SoftBits& soft_all) const {
  const RateParams& p = rate_params(rate);
  const Interleaver& il = interleaver_for(rate);
  const Mapper mapper(p.modulation);
  soft_all.reserve(nsym * p.ncbps);

  for (std::size_t s = 0; s < nsym; ++s) {
    const std::size_t fft_pos =
        data_base + s * kSymbolLen + kCpLen - kTimingBackoff;
    if (fft_pos + kNfft > rx.size()) return false;  // truncated frame
    const DemodulatedSymbol sym =
        ofdm_demodulate_symbol(rx.subspan(fft_pos, kNfft));
    const EqualizedSymbol eq =
        equalize_symbol(sym, est, /*symbol_index=*/s + 1, cfg_.track_phase,
                        cfg_.track_timing);
    res.data_points.emplace_back(eq.points.begin(), eq.points.end());

    const SoftBits soft = mapper.demap_soft(
        std::span<const dsp::Cplx>(eq.points),
        std::span<const double>(eq.weights));
    const SoftBits deint = il.deinterleave_soft(soft);
    soft_all.insert(soft_all.end(), deint.begin(), deint.end());
  }
  return true;
}

bool Receiver::demod_data_batched(std::span<const dsp::Cplx> rx,
                                  std::size_t data_base, std::size_t nsym,
                                  Rate rate, const ChannelEstimate& est,
                                  RxResult& res, SoftBits& soft_all) const {
  const RateParams& p = rate_params(rate);

  // The FFT windows advance by kSymbolLen, so the symbols that fit in the
  // buffer form a prefix; a truncated frame demodulates exactly the
  // symbols the reference loop would have before bailing out.
  const std::size_t off = data_base + kCpLen - kTimingBackoff;
  std::size_t navail = 0;
  if (rx.size() >= off + kNfft)
    navail = std::min(nsym, (rx.size() - off - kNfft) / kSymbolLen + 1);

  if (navail > 0) {
    // Per-thread scratch: warm after the first packet, so the steady-state
    // data path performs no heap allocation outside the result containers.
    struct Workspace {
      dsp::CVec data;       // demodulated data bins, nsym x 48
      dsp::CVec pilots;     // demodulated pilot bins, nsym x 4
      dsp::CVec points;     // equalized points, nsym x 48
      std::vector<double> weights;  // CSI weights, nsym x 48
    };
    thread_local Workspace ws;
    ws.data.resize(navail * kNumDataCarriers);
    ws.pilots.resize(navail * kNumPilots);
    ws.points.resize(navail * kNumDataCarriers);
    ws.weights.resize(navail * kNumDataCarriers);

    // One batch FFT over every DATA symbol, lifting the 64-sample windows
    // straight out of the kSymbolLen-spaced frame.
    ofdm_demodulate_symbols_into(rx.data() + off, kSymbolLen, navail,
                                 ws.data.data(), ws.pilots.data());
    equalize_symbols(ws.data.data(), ws.pilots.data(), navail,
                     /*first_symbol_index=*/1, est, cfg_.track_phase,
                     cfg_.track_timing, ws.points.data(), ws.weights.data());

    // Demap with the deinterleave permutation fused in: symbol s's LLRs
    // land directly in decoder order at soft_all[s*ncbps + inv[j]].
    const Interleaver& il = interleaver_for(rate);
    const std::size_t* deint = il.inv().data();
    const Mapper mapper(p.modulation);
    soft_all.resize(navail * p.ncbps);
    for (std::size_t s = 0; s < navail; ++s) {
      const dsp::Cplx* pts = ws.points.data() + s * kNumDataCarriers;
      res.data_points.emplace_back(pts, pts + kNumDataCarriers);
      mapper.demap_soft_deinterleaved(
          std::span<const dsp::Cplx>(pts, kNumDataCarriers),
          std::span<const double>(ws.weights.data() + s * kNumDataCarriers,
                                  kNumDataCarriers),
          deint, soft_all.data() + s * p.ncbps);
    }
  }
  return navail == nsym;
}

RxResult Receiver::receive(std::span<const dsp::Cplx> rx) const {
  RxResult res;
  const auto det = detect_packet(rx, cfg_.detect_threshold);
  if (!det) return res;

  // Work on a CFO-corrected copy starting at the detection point.
  dsp::CVec buf(rx.begin() + static_cast<std::ptrdiff_t>(det->detect_index),
                rx.end());
  correct_cfo(buf, det->coarse_cfo_norm);

  // The long preamble begins no later than ~352 samples past detection
  // (detection can fire a little before the true frame start).
  const std::size_t search_end = std::min<std::size_t>(buf.size(), 420);
  const auto lts = locate_long_training(buf, 0, search_end);
  if (!lts) return res;

  const double residual = fine_cfo(buf, *lts);
  correct_cfo(buf, residual);

  RxResult out = decode_from(buf, *lts, det->coarse_cfo_norm + residual);
  out.frame_start += det->detect_index;
  return out;
}

RxResult Receiver::receive_at(std::span<const dsp::Cplx> rx,
                              std::size_t frame_start, double cfo_norm) const {
  dsp::CVec buf(rx.begin() + static_cast<std::ptrdiff_t>(frame_start), rx.end());
  if (cfo_norm != 0.0) correct_cfo(buf, cfo_norm);
  const std::size_t lts_start = kShortPreambleLen + 32;
  if (buf.size() > lts_start + 2 * kNfft) {
    const double residual = fine_cfo(buf, lts_start);
    correct_cfo(buf, residual);
    RxResult out = decode_from(buf, lts_start, cfo_norm + residual);
    out.frame_start = frame_start;
    return out;
  }
  return {};
}

}  // namespace wlansim::phy
