#include "phy80211a/signal_field.h"

#include <stdexcept>

#include "phy80211a/interleaver.h"
#include "phy80211a/mapper.h"
#include "phy80211a/ofdm.h"

namespace wlansim::phy {

Bits signal_field_bits(const SignalField& sf) {
  if (sf.length == 0 || sf.length > 4095)
    throw std::invalid_argument("signal_field_bits: LENGTH must be 1..4095");
  Bits b;
  b.reserve(24);
  const std::uint8_t rate_field = rate_params(sf.rate).rate_field;
  for (int i = 3; i >= 0; --i) b.push_back((rate_field >> i) & 1);  // R1..R4
  b.push_back(0);  // reserved
  for (int i = 0; i < 12; ++i)
    b.push_back(static_cast<std::uint8_t>((sf.length >> i) & 1));  // LSB first
  std::uint8_t parity = 0;
  for (std::uint8_t v : b) parity ^= (v & 1);
  b.push_back(parity);                  // even parity over bits 0..16
  for (int i = 0; i < 6; ++i) b.push_back(0);  // tail
  return b;
}

std::optional<SignalField> parse_signal_field(const Bits& bits) {
  if (bits.size() != 24) return std::nullopt;
  std::uint8_t parity = 0;
  for (std::size_t i = 0; i < 18; ++i) parity ^= (bits[i] & 1);
  if (parity != 0) return std::nullopt;  // even parity violated
  std::uint8_t rate_field = 0;
  for (int i = 0; i < 4; ++i)
    rate_field = static_cast<std::uint8_t>((rate_field << 1) | (bits[i] & 1));
  Rate rate;
  if (!rate_from_field(rate_field, &rate)) return std::nullopt;
  std::size_t length = 0;
  for (int i = 0; i < 12; ++i)
    length |= static_cast<std::size_t>(bits[5 + i] & 1) << i;
  if (length == 0) return std::nullopt;
  return SignalField{rate, length};
}

dsp::CVec modulate_signal_field(const SignalField& sf) {
  const Bits info = signal_field_bits(sf);
  const Bits coded = convolutional_encode(info);  // 48 bits, R=1/2
  // SIGNAL is always BPSK over 48 carriers — the 6 Mbps permutation.
  const Interleaver& il = interleaver_for(Rate::kMbps6);
  const Bits inter = il.interleave(coded);
  const Mapper mapper(Modulation::kBpsk);
  const dsp::CVec pts = mapper.map(inter);
  return ofdm_modulate_symbol(pts, /*symbol_index=*/0);
}

std::optional<SignalField> decode_signal_field(
    std::span<const dsp::Cplx> data48, std::span<const double> weights) {
  if (data48.size() != kNumDataCarriers || weights.size() != kNumDataCarriers)
    throw std::invalid_argument("decode_signal_field: need 48 points");
  const Mapper mapper(Modulation::kBpsk);
  const SoftBits soft = mapper.demap_soft(data48, weights);
  const Interleaver& il = interleaver_for(Rate::kMbps6);
  const SoftBits deinter = il.deinterleave_soft(soft);
  const Bits info = viterbi_decode(deinter);
  return parse_signal_field(info);
}

}  // namespace wlansim::phy
