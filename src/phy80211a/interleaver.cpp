#include "phy80211a/interleaver.h"

#include <stdexcept>

namespace wlansim::phy {

Interleaver::Interleaver(std::size_t ncbps, std::size_t nbpsc) {
  if (ncbps == 0 || ncbps % 16 != 0)
    throw std::invalid_argument("Interleaver: NCBPS must be a multiple of 16");
  const std::size_t s = std::max<std::size_t>(nbpsc / 2, 1);
  fwd_.resize(ncbps);
  inv_.resize(ncbps);
  for (std::size_t k = 0; k < ncbps; ++k) {
    // First permutation (Std 802.11a Eq. 15).
    const std::size_t i = (ncbps / 16) * (k % 16) + k / 16;
    // Second permutation (Eq. 16).
    const std::size_t j =
        s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
    fwd_[k] = j;
    inv_[j] = k;
  }
}

Interleaver::Interleaver(Rate r)
    : Interleaver(rate_params(r).ncbps, rate_params(r).nbpsc) {}

Bits Interleaver::interleave(const Bits& in) const {
  if (in.size() != fwd_.size())
    throw std::invalid_argument("Interleaver: block size mismatch");
  Bits out(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) out[fwd_[k]] = in[k];
  return out;
}

Bits Interleaver::deinterleave(const Bits& in) const {
  if (in.size() != inv_.size())
    throw std::invalid_argument("Interleaver: block size mismatch");
  Bits out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) out[inv_[j]] = in[j];
  return out;
}

SoftBits Interleaver::deinterleave_soft(const SoftBits& in) const {
  if (in.size() != inv_.size())
    throw std::invalid_argument("Interleaver: block size mismatch");
  SoftBits out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) out[inv_[j]] = in[j];
  return out;
}

}  // namespace wlansim::phy
