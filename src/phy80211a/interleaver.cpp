#include "phy80211a/interleaver.h"

#include <stdexcept>

namespace wlansim::phy {

Interleaver::Interleaver(std::size_t ncbps, std::size_t nbpsc) {
  if (ncbps == 0 || ncbps % 16 != 0)
    throw std::invalid_argument("Interleaver: NCBPS must be a multiple of 16");
  const std::size_t s = std::max<std::size_t>(nbpsc / 2, 1);
  fwd_.resize(ncbps);
  inv_.resize(ncbps);
  for (std::size_t k = 0; k < ncbps; ++k) {
    // First permutation (Std 802.11a Eq. 15).
    const std::size_t i = (ncbps / 16) * (k % 16) + k / 16;
    // Second permutation (Eq. 16).
    const std::size_t j =
        s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
    fwd_[k] = j;
    inv_[j] = k;
  }
}

Interleaver::Interleaver(Rate r)
    : Interleaver(rate_params(r).ncbps, rate_params(r).nbpsc) {}

Bits Interleaver::interleave(const Bits& in) const {
  if (in.size() != fwd_.size())
    throw std::invalid_argument("Interleaver: block size mismatch");
  Bits out(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) out[fwd_[k]] = in[k];
  return out;
}

Bits Interleaver::deinterleave(const Bits& in) const {
  if (in.size() != inv_.size())
    throw std::invalid_argument("Interleaver: block size mismatch");
  Bits out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) out[inv_[j]] = in[j];
  return out;
}

SoftBits Interleaver::deinterleave_soft(const SoftBits& in) const {
  if (in.size() != inv_.size())
    throw std::invalid_argument("Interleaver: block size mismatch");
  SoftBits out(in.size());
  deinterleave_soft_into(in.data(), out.data());
  return out;
}

void Interleaver::deinterleave_soft_into(const double* in, double* out) const {
  const std::size_t* __restrict inv = inv_.data();
  const std::size_t n = inv_.size();
  for (std::size_t j = 0; j < n; ++j) out[inv[j]] = in[j];
}

const Interleaver& interleaver_for(Rate r) {
  // Function-local statics: thread-safe lazy construction, one table per
  // rate for the life of the process.
  switch (r) {
    case Rate::kMbps6: {
      static const Interleaver il(Rate::kMbps6);
      return il;
    }
    case Rate::kMbps9: {
      static const Interleaver il(Rate::kMbps9);
      return il;
    }
    case Rate::kMbps12: {
      static const Interleaver il(Rate::kMbps12);
      return il;
    }
    case Rate::kMbps18: {
      static const Interleaver il(Rate::kMbps18);
      return il;
    }
    case Rate::kMbps24: {
      static const Interleaver il(Rate::kMbps24);
      return il;
    }
    case Rate::kMbps36: {
      static const Interleaver il(Rate::kMbps36);
      return il;
    }
    case Rate::kMbps48: {
      static const Interleaver il(Rate::kMbps48);
      return il;
    }
    case Rate::kMbps54: {
      static const Interleaver il(Rate::kMbps54);
      return il;
    }
  }
  throw std::invalid_argument("interleaver_for: bad rate");
}

}  // namespace wlansim::phy
