#include "phy80211a/mpdu.h"

#include <array>
#include <cstdio>

namespace wlansim::phy {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint16_t>(in[pos] | (in[pos + 1] << 8));
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

MacAddress MacAddress::broadcast() {
  MacAddress a;
  a.octets.fill(0xFF);
  return a;
}

MacAddress MacAddress::from_id(std::uint16_t id) {
  // Locally administered, unicast: 02:00:57:4C:hi:lo ("WL").
  MacAddress a;
  a.octets = {0x02, 0x00, 0x57, 0x4C, static_cast<std::uint8_t>(id >> 8),
              static_cast<std::uint8_t>(id & 0xff)};
  return a;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

Bytes build_data_mpdu(const MacHeader& hdr,
                      std::span<const std::uint8_t> payload) {
  Bytes out;
  out.reserve(kMacHeaderBytes + payload.size() + kFcsBytes);
  put_u16(out, hdr.frame_control);
  put_u16(out, hdr.duration);
  for (const MacAddress* a : {&hdr.addr1, &hdr.addr2, &hdr.addr3})
    out.insert(out.end(), a->octets.begin(), a->octets.end());
  put_u16(out, hdr.sequence_control);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t fcs = crc32(out);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xff));
  return out;
}

std::optional<ParsedMpdu> parse_mpdu(std::span<const std::uint8_t> psdu) {
  if (psdu.size() < kMacHeaderBytes + kFcsBytes) return std::nullopt;
  const std::size_t body = psdu.size() - kFcsBytes;
  std::uint32_t fcs_rx = 0;
  for (int i = 0; i < 4; ++i)
    fcs_rx |= static_cast<std::uint32_t>(psdu[body + i]) << (8 * i);
  if (crc32(psdu.first(body)) != fcs_rx) return std::nullopt;

  ParsedMpdu out;
  out.header.frame_control = get_u16(psdu, 0);
  out.header.duration = get_u16(psdu, 2);
  for (std::size_t a = 0; a < 3; ++a) {
    MacAddress* dst = a == 0   ? &out.header.addr1
                      : a == 1 ? &out.header.addr2
                               : &out.header.addr3;
    for (std::size_t i = 0; i < 6; ++i) dst->octets[i] = psdu[4 + 6 * a + i];
  }
  out.header.sequence_control = get_u16(psdu, 22);
  out.payload.assign(psdu.begin() + kMacHeaderBytes,
                     psdu.begin() + static_cast<std::ptrdiff_t>(body));
  return out;
}

}  // namespace wlansim::phy
