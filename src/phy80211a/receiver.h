// Complete 802.11a receiver (the DSP part of the paper's Fig. 1): packet
// detection, timing/frequency synchronization, OFDM demodulation, channel
// correction, demapping, deinterleaving, depuncturing, Viterbi decoding and
// descrambling. Also provides the genie-aided "ideal receiver" the paper
// uses for EVM measurements (§5.2).
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"
#include "phy80211a/bits.h"
#include "phy80211a/equalizer.h"
#include "phy80211a/signal_field.h"

namespace wlansim::phy {

/// Outcome of one receive attempt.
struct RxResult {
  bool detected = false;      ///< short-preamble plateau found
  bool header_ok = false;     ///< SIGNAL field decoded and parity passed
  SignalField signal;         ///< decoded header (valid if header_ok)
  Bytes psdu;                 ///< decoded payload (valid if header_ok)
  double cfo_norm = 0.0;      ///< total CFO estimate, cycles/sample
  std::size_t frame_start = 0;  ///< index of the first short-preamble sample
  /// Equalized data constellation points of every DATA symbol, for EVM and
  /// constellation plots.
  std::vector<dsp::CVec> data_points;
};

class Receiver {
 public:
  struct Config {
    bool track_phase = true;      ///< pilot common-phase-error correction
    /// Pilot linear-phase-slope (timing drift) correction; absorbs
    /// sampling-clock offset across long frames.
    bool track_timing = true;
    double detect_threshold = 0.6;
    /// Channel-estimate smoothing window across carriers (odd; 1 = off).
    /// Reduces estimation noise on near-flat channels, biases the estimate
    /// on frequency-selective ones (see bench/ablation_chanest).
    std::size_t chanest_smoothing = 1;
    /// Use the fused batch data path (batch FFT over all DATA symbols,
    /// vectorized equalization, demap scattered straight into decoder
    /// order). Bit-identical to the per-symbol reference loop; `false`
    /// selects the reference for equivalence testing.
    bool batched_data_path = true;
  };

  Receiver();
  explicit Receiver(Config cfg);

  /// Full reception with synchronization from the raw 20 Msps stream.
  RxResult receive(std::span<const dsp::Cplx> rx) const;

  /// Genie-aided reception: the caller supplies the exact index of the
  /// first preamble sample (e.g. from the test harness). Channel estimation
  /// still runs on the long training field; synchronization is bypassed.
  RxResult receive_at(std::span<const dsp::Cplx> rx, std::size_t frame_start,
                      double cfo_norm = 0.0) const;

 private:
  RxResult decode_from(std::span<const dsp::Cplx> aligned,
                       std::size_t frame_start, double cfo_total) const;

  /// Demodulate/equalize/demap the DATA symbols starting at `data_base`,
  /// appending equalized points to res.data_points and decoder-ordered
  /// (deinterleaved) LLRs to soft_all. Returns false if the frame is
  /// truncated before `nsym` symbols. The two implementations are
  /// bit-identical; the reference is the per-symbol semantic definition.
  bool demod_data_reference(std::span<const dsp::Cplx> rx,
                            std::size_t data_base, std::size_t nsym, Rate rate,
                            const ChannelEstimate& est, RxResult& res,
                            SoftBits& soft_all) const;
  bool demod_data_batched(std::span<const dsp::Cplx> rx, std::size_t data_base,
                          std::size_t nsym, Rate rate,
                          const ChannelEstimate& est, RxResult& res,
                          SoftBits& soft_all) const;

  Config cfg_;
};

}  // namespace wlansim::phy
