// Complete 802.11a receiver (the DSP part of the paper's Fig. 1): packet
// detection, timing/frequency synchronization, OFDM demodulation, channel
// correction, demapping, deinterleaving, depuncturing, Viterbi decoding and
// descrambling. Also provides the genie-aided "ideal receiver" the paper
// uses for EVM measurements (§5.2).
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"
#include "phy80211a/bits.h"
#include "phy80211a/equalizer.h"
#include "phy80211a/signal_field.h"

namespace wlansim::phy {

/// Outcome of one receive attempt.
struct RxResult {
  bool detected = false;      ///< short-preamble plateau found
  bool header_ok = false;     ///< SIGNAL field decoded and parity passed
  SignalField signal;         ///< decoded header (valid if header_ok)
  Bytes psdu;                 ///< decoded payload (valid if header_ok)
  double cfo_norm = 0.0;      ///< total CFO estimate, cycles/sample
  std::size_t frame_start = 0;  ///< index of the first short-preamble sample
  /// Equalized data constellation points of every DATA symbol, for EVM and
  /// constellation plots.
  std::vector<dsp::CVec> data_points;
};

class Receiver {
 public:
  struct Config {
    bool track_phase = true;      ///< pilot common-phase-error correction
    /// Pilot linear-phase-slope (timing drift) correction; absorbs
    /// sampling-clock offset across long frames.
    bool track_timing = true;
    double detect_threshold = 0.6;
    /// Channel-estimate smoothing window across carriers (odd; 1 = off).
    /// Reduces estimation noise on near-flat channels, biases the estimate
    /// on frequency-selective ones (see bench/ablation_chanest).
    std::size_t chanest_smoothing = 1;
  };

  Receiver();
  explicit Receiver(Config cfg);

  /// Full reception with synchronization from the raw 20 Msps stream.
  RxResult receive(std::span<const dsp::Cplx> rx) const;

  /// Genie-aided reception: the caller supplies the exact index of the
  /// first preamble sample (e.g. from the test harness). Channel estimation
  /// still runs on the long training field; synchronization is bypassed.
  RxResult receive_at(std::span<const dsp::Cplx> rx, std::size_t frame_start,
                      double cfo_norm = 0.0) const;

 private:
  RxResult decode_from(std::span<const dsp::Cplx> aligned,
                       std::size_t frame_start, double cfo_total) const;

  Config cfg_;
};

}  // namespace wlansim::phy
