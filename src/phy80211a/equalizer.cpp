#include "phy80211a/equalizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "phy80211a/preamble.h"

namespace wlansim::phy {

std::array<dsp::Cplx, kNumDataCarriers> ChannelEstimate::data_carriers() const {
  std::array<dsp::Cplx, kNumDataCarriers> out;
  const auto& dc = data_carrier_indices();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) out[i] = at_carrier(dc[i]);
  return out;
}

std::array<dsp::Cplx, kNumPilots> ChannelEstimate::pilot_carriers() const {
  std::array<dsp::Cplx, kNumPilots> out;
  const auto& pc = pilot_carrier_indices();
  for (std::size_t i = 0; i < kNumPilots; ++i) out[i] = at_carrier(pc[i]);
  return out;
}

ChannelEstimate estimate_channel(std::span<const dsp::Cplx> lts) {
  if (lts.size() < 2 * kNfft)
    throw std::invalid_argument("estimate_channel: need 128 samples");
  static const dsp::Fft engine(kNfft);
  const dsp::CVec y1 = engine.forward(lts.first(kNfft));
  const dsp::CVec y2 = engine.forward(lts.subspan(kNfft, kNfft));
  const dsp::CVec& l = long_training_freq();

  ChannelEstimate est;
  for (int k = -26; k <= 26; ++k) {
    const dsp::Cplx lk = l[static_cast<std::size_t>(k + 26)];
    if (std::abs(lk) < 1e-12) {
      est.h[static_cast<std::size_t>(k + 26)] = dsp::Cplx{0.0, 0.0};  // DC unused
      continue;
    }
    const std::size_t bin = carrier_to_bin(k);
    est.h[static_cast<std::size_t>(k + 26)] = (y1[bin] + y2[bin]) / (2.0 * lk);
  }
  return est;
}

ChannelEstimate smooth_channel(const ChannelEstimate& est, std::size_t window) {
  if (window % 2 == 0 || window == 0)
    throw std::invalid_argument("smooth_channel: window must be odd >= 1");
  if (window == 1) return est;

  // The raw estimate carries a steep linear phase ramp (bulk group delay of
  // the front-end plus the receiver's timing backoff); averaging complex
  // neighbors across that ramp would destroy the magnitude. Estimate the
  // ramp from adjacent-carrier phase increments, derotate, smooth, rerotate.
  dsp::Cplx slope_acc{0.0, 0.0};
  for (int k = -26; k < 26; ++k) {
    if (k == 0 || k == -1) continue;  // skip pairs spanning the DC hole
    slope_acc += est.at_carrier(k + 1) * std::conj(est.at_carrier(k));
  }
  const double slope = std::abs(slope_acc) > 0.0 ? std::arg(slope_acc) : 0.0;

  auto derot = [&](int k) {
    const double ang = -slope * static_cast<double>(k);
    return est.at_carrier(k) * dsp::Cplx{std::cos(ang), std::sin(ang)};
  };

  const int half = static_cast<int>(window / 2);
  ChannelEstimate out;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) {
      out.h[26] = dsp::Cplx{0.0, 0.0};  // DC carrier unused
      continue;
    }
    dsp::Cplx acc{0.0, 0.0};
    int n = 0;
    for (int d = -half; d <= half; ++d) {
      const int kk = k + d;
      if (kk < -26 || kk > 26 || kk == 0) continue;  // stay inside the band
      acc += derot(kk);
      ++n;
    }
    const double ang = slope * static_cast<double>(k);
    out.h[static_cast<std::size_t>(k + 26)] =
        n > 0 ? (acc / static_cast<double>(n)) *
                    dsp::Cplx{std::cos(ang), std::sin(ang)}
              : est.at_carrier(k);
  }
  return out;
}

ChannelEstimate flat_channel() {
  ChannelEstimate est;
  est.h.fill(dsp::Cplx{1.0, 0.0});
  est.h[26] = dsp::Cplx{0.0, 0.0};  // DC carrier unused
  return est;
}

EqualizedSymbol equalize_symbol(const DemodulatedSymbol& sym,
                                const ChannelEstimate& est,
                                std::size_t symbol_index, bool track_phase,
                                bool track_timing) {
  EqualizedSymbol out;

  // Common complex gain error from the four pilots (least squares):
  // c = sum_k Y_k conj(H_k X_k) / sum_k |H_k X_k|^2. The phase part tracks
  // residual CFO and LO phase noise; the magnitude part tracks slow AGC
  // gain drift across the frame. A second LS fit over the pilot carrier
  // indices extracts the linear phase slope — sampling-clock / FFT-window
  // drift, which rotates carrier k by slope * k and is invisible to the
  // common-phase term.
  dsp::Cplx derot{1.0, 0.0};
  double cpe = 0.0;
  double slope = 0.0;
  if (track_phase) {
    const double pol = pilot_polarity(symbol_index);
    const auto& pv = pilot_base_values();
    const auto& pc = pilot_carrier_indices();
    const auto hp = est.pilot_carriers();
    dsp::Cplx num{0.0, 0.0};
    double den = 0.0;
    std::array<dsp::Cplx, kNumPilots> ratio{};
    for (std::size_t i = 0; i < kNumPilots; ++i) {
      const dsp::Cplx ref = hp[i] * (pol * pv[i]);
      ratio[i] = sym.pilots[i] * std::conj(ref);
      num += ratio[i];
      den += std::norm(ref);
    }
    if (den > 0.0 && std::abs(num) > 0.0) {
      dsp::Cplx c = num / den;
      cpe = std::arg(c);
      // Clamp the magnitude correction: the four noisy pilots must not be
      // allowed to scale the whole symbol arbitrarily.
      const double mag = std::clamp(std::abs(c), 0.5, 2.0);
      c = mag * dsp::Cplx{std::cos(cpe), std::sin(cpe)};
      derot = 1.0 / c;

      if (track_timing) {
        // Residual phase per pilot after common derotation, LS fit against
        // the pilot carrier index (indices are symmetric, so the slope is
        // sum(theta k) / sum(k^2)). Working on residuals keeps every
        // angle small and wrap-free for timing errors within the CP.
        double num_s = 0.0, den_s = 0.0;
        for (std::size_t i = 0; i < kNumPilots; ++i) {
          if (std::abs(ratio[i]) <= 0.0) continue;
          const double theta = std::arg(ratio[i] * std::conj(c));
          const double k = static_cast<double>(pc[i]);
          num_s += theta * k;
          den_s += k * k;
        }
        if (den_s > 0.0) slope = num_s / den_s;
      }
    }
  }
  out.common_phase_error = cpe;
  out.phase_slope = slope;

  const auto& dc = data_carrier_indices();
  const auto hd = est.data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    const double mag2 = std::norm(hd[i]);
    if (mag2 < 1e-18) {
      out.points[i] = dsp::Cplx{0.0, 0.0};
      out.weights[i] = 0.0;
      continue;
    }
    dsp::Cplx p = sym.data[i] * derot / hd[i];
    if (slope != 0.0) {
      const double ang = -slope * static_cast<double>(dc[i]);
      p *= dsp::Cplx{std::cos(ang), std::sin(ang)};
    }
    out.points[i] = p;
    out.weights[i] = mag2;  // CSI weighting for the soft demapper
  }
  return out;
}

void equalize_symbols(const dsp::Cplx* data, const dsp::Cplx* pilots,
                      std::size_t nsym, std::size_t first_symbol_index,
                      const ChannelEstimate& est, bool track_phase,
                      bool track_timing, dsp::Cplx* points, double* weights) {
  // Hoisted once: these are recomputed per call inside equalize_symbol but
  // their values do not depend on the symbol, so lifting them out of the
  // loop changes no arithmetic.
  const auto& pv = pilot_base_values();
  const auto& pc = pilot_carrier_indices();
  const auto& dc = data_carrier_indices();
  const auto hp = est.pilot_carriers();
  const auto hd = est.data_carriers();

  for (std::size_t s = 0; s < nsym; ++s) {
    const dsp::Cplx* __restrict sp = pilots + s * kNumPilots;
    const dsp::Cplx* __restrict sd = data + s * kNumDataCarriers;
    dsp::Cplx* __restrict op = points + s * kNumDataCarriers;
    double* __restrict ow = weights + s * kNumDataCarriers;

    dsp::Cplx derot{1.0, 0.0};
    double slope = 0.0;
    if (track_phase) {
      const double pol = pilot_polarity(first_symbol_index + s);
      dsp::Cplx num{0.0, 0.0};
      double den = 0.0;
      std::array<dsp::Cplx, kNumPilots> ratio{};
      for (std::size_t i = 0; i < kNumPilots; ++i) {
        const dsp::Cplx ref = hp[i] * (pol * pv[i]);
        ratio[i] = sp[i] * std::conj(ref);
        num += ratio[i];
        den += std::norm(ref);
      }
      if (den > 0.0 && std::abs(num) > 0.0) {
        dsp::Cplx c = num / den;
        const double cpe = std::arg(c);
        const double mag = std::clamp(std::abs(c), 0.5, 2.0);
        c = mag * dsp::Cplx{std::cos(cpe), std::sin(cpe)};
        derot = 1.0 / c;

        if (track_timing) {
          double num_s = 0.0, den_s = 0.0;
          for (std::size_t i = 0; i < kNumPilots; ++i) {
            if (std::abs(ratio[i]) <= 0.0) continue;
            const double theta = std::arg(ratio[i] * std::conj(c));
            const double k = static_cast<double>(pc[i]);
            num_s += theta * k;
            den_s += k * k;
          }
          if (den_s > 0.0) slope = num_s / den_s;
        }
      }
    }

    for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
      const double mag2 = std::norm(hd[i]);
      if (mag2 < 1e-18) {
        op[i] = dsp::Cplx{0.0, 0.0};
        ow[i] = 0.0;
        continue;
      }
      dsp::Cplx p = sd[i] * derot / hd[i];
      if (slope != 0.0) {
        const double ang = -slope * static_cast<double>(dc[i]);
        p *= dsp::Cplx{std::cos(ang), std::sin(ang)};
      }
      op[i] = p;
      ow[i] = mag2;
    }
  }
}

}  // namespace wlansim::phy
