// Gray-coded constellation mapping and max-log soft demapping
// (IEEE 802.11a-1999, 17.3.5.7, Tables 81-84).
//
// All four 802.11a constellations are square with independent I/Q gray
// coding, so mapping and demapping decompose per axis; the soft demapper
// needs at most 8 distance evaluations per axis.
#pragma once

#include <span>

#include "dsp/types.h"
#include "phy80211a/bits.h"
#include "phy80211a/convcode.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

class Mapper {
 public:
  explicit Mapper(Modulation mod);

  Modulation modulation() const { return mod_; }
  std::size_t bits_per_point() const { return nbpsc_; }

  /// Average-unit-energy normalization factor (1, 1/sqrt2, 1/sqrt10,
  /// 1/sqrt42).
  double norm() const { return norm_; }

  /// Map `nbpsc` bits to one constellation point (unit average energy).
  dsp::Cplx map_point(std::span<const std::uint8_t> bits) const;

  /// Map a bit stream (length must be a multiple of bits_per_point()).
  dsp::CVec map(const Bits& bits) const;

  /// Hard-decide one received point back to bits.
  Bits demap_hard_point(dsp::Cplx y) const;

  /// Hard-decide a symbol stream.
  Bits demap_hard(std::span<const dsp::Cplx> pts) const;

  /// Max-log LLRs for one equalized point. `weight` scales the metrics
  /// (use |H|^2 / N0 for CSI-weighted decoding); positive LLR means the
  /// bit is more likely 0.
  SoftBits demap_soft_point(dsp::Cplx y, double weight) const;

  /// Soft-demap a symbol stream with per-point weights.
  SoftBits demap_soft(std::span<const dsp::Cplx> pts,
                      std::span<const double> weights) const;

  /// demap_soft into a caller-provided buffer of pts.size()*bits_per_point()
  /// doubles — the allocation-free form. Bit-identical to demap_soft.
  void demap_soft_into(std::span<const dsp::Cplx> pts,
                       std::span<const double> weights, double* out) const;

  /// Fused demap + deinterleave scatter: the LLR that demap_soft would
  /// write at position j lands at out[deint[j]] instead (deint is the
  /// per-rate Interleaver::inv() table; j in [0, pts.size()*nbpsc)). Each
  /// LLR value is bit-identical to demap_soft's — only the destination
  /// index changes — so batch RX can emit decoder-ordered LLRs with zero
  /// intermediate copies.
  void demap_soft_deinterleaved(std::span<const dsp::Cplx> pts,
                                std::span<const double> weights,
                                const std::size_t* deint, double* out) const;

  /// Fused interleave + map gather: point i is mapped from the bits
  /// bits[perm[i*nbpsc + t]], t ascending. With perm = Interleaver::inv()
  /// this equals map(interleave(bits)) bit-for-bit, skipping the
  /// intermediate interleaved block entirely.
  void map_permuted(const std::uint8_t* bits, const std::size_t* perm,
                    std::size_t npoints, dsp::Cplx* out) const;

  /// Nearest ideal constellation point (used by EVM measurement).
  dsp::Cplx nearest_point(dsp::Cplx y) const;

 private:
  /// Per-axis helpers: `axis_bits` gray bits -> level index and back.
  double axis_level(std::span<const std::uint8_t> axis_bits) const;
  void demap_axis_soft(double y, double weight, SoftBits* out) const;
  /// Unweighted max-log LLRs for one axis, written to out[0..bits_per_axis).
  void demap_axis_raw(double y, double* out) const;
  void demap_axis_hard(double y, Bits* out) const;

  Modulation mod_;
  std::size_t nbpsc_;
  std::size_t bits_per_axis_;
  double norm_;
  /// levels_[g] = unnormalized axis level for gray code g.
  std::vector<double> levels_;
  /// slevels_[g] = levels_[g] * norm_, the normalized constellation axis —
  /// precomputed so the demap inner loop carries no multiply. The product
  /// is the same double the reference expression produced inline.
  std::vector<double> slevels_;
};

}  // namespace wlansim::phy
