#include "phy80211a/transmitter.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"
#include "phy80211a/convcode.h"
#include "phy80211a/interleaver.h"
#include "phy80211a/mapper.h"
#include "phy80211a/ofdm.h"
#include "phy80211a/preamble.h"
#include "phy80211a/scrambler.h"

namespace wlansim::phy {

Transmitter::Transmitter() : Transmitter(Config()) {}

Transmitter::Transmitter(Config cfg) : cfg_(cfg) {
  if ((cfg_.scrambler_seed & 0x7F) == 0)
    throw std::invalid_argument("Transmitter: scrambler seed must be non-zero");
}

Bits Transmitter::encode_data_field(const Frame& frame) const {
  if (frame.psdu.empty() || frame.psdu.size() > 4095)
    throw std::invalid_argument("Transmitter: PSDU must be 1..4095 bytes");
  const RateParams& p = rate_params(frame.rate);
  const std::size_t nsym = num_data_symbols(frame.rate, frame.psdu.size());

  // SERVICE (16 zero bits) + PSDU + tail + pad (Std 17.3.5.3).
  Bits bits(kServiceBits, 0);
  const Bits payload = bytes_to_bits(frame.psdu);
  bits.insert(bits.end(), payload.begin(), payload.end());
  const std::size_t tail_pos = bits.size();
  bits.insert(bits.end(), kTailBits, 0);
  bits.resize(nsym * p.ndbps, 0);

  // Scramble everything, then zero the scrambled tail bits so the
  // convolutional code still terminates (Std 17.3.5.2 step d).
  Scrambler scr(cfg_.scrambler_seed);
  scr.process(bits);
  for (std::size_t i = 0; i < kTailBits; ++i) bits[tail_pos + i] = 0;
  return bits;
}

std::vector<dsp::CVec> Transmitter::data_symbol_points(const Frame& frame) const {
  const RateParams& p = rate_params(frame.rate);
  const Bits data_bits = encode_data_field(frame);
  const Bits coded = puncture(convolutional_encode(data_bits), p.code_rate);

  const Interleaver& il = interleaver_for(frame.rate);
  const Mapper mapper(p.modulation);
  const std::size_t nsym = coded.size() / p.ncbps;

  std::vector<dsp::CVec> out;
  out.reserve(nsym);
  for (std::size_t s = 0; s < nsym; ++s) {
    Bits block(coded.begin() + static_cast<std::ptrdiff_t>(s * p.ncbps),
               coded.begin() + static_cast<std::ptrdiff_t>((s + 1) * p.ncbps));
    out.push_back(mapper.map(il.interleave(block)));
  }
  return out;
}

namespace {

/// Append one 80-sample OFDM symbol with a raised-cosine crossfade of `w`
/// samples into the already-emitted tail. The crossfade uses the symbol's
/// cyclic structure: its last `w` samples (an extension of the FFT period)
/// fade out while the next symbol's first CP samples fade in.
void overlap_add_symbol(dsp::CVec& out, std::span<const dsp::Cplx> sym,
                        std::size_t w) {
  if (w == 0 || out.size() < w) {
    out.insert(out.end(), sym.begin(), sym.end());
    return;
  }
  // Cyclic post-extension of the previous symbol was already appended by
  // the previous call (the `w` trailing samples); fade the new symbol in
  // over them.
  const std::size_t base = out.size() - w;
  for (std::size_t i = 0; i < w; ++i) {
    const double r =
        0.5 * (1.0 - std::cos(dsp::kPi * (static_cast<double>(i) + 0.5) /
                              static_cast<double>(w)));
    out[base + i] = out[base + i] * (1.0 - r) + sym[i] * r;
  }
  out.insert(out.end(), sym.begin() + static_cast<std::ptrdiff_t>(w),
             sym.end());
}

/// Cyclic post-extension: the first `w` samples of the FFT period, i.e.
/// the samples that would follow the symbol if it continued periodically.
void append_cyclic_tail(dsp::CVec& out, std::span<const dsp::Cplx> sym,
                        std::size_t w) {
  if (w == 0) return;
  out.insert(out.end(), sym.begin() + kCpLen,
             sym.begin() + static_cast<std::ptrdiff_t>(kCpLen + w));
}

/// Shared post-processing for both modulate paths: fade the final window
/// extension out, clip envelope peaks, normalize the OFDM portion.
void finish_frame(dsp::CVec& ppdu, const Transmitter::Config& cfg) {
  const std::size_t w = cfg.window_overlap;
  if (w > 0) {
    // Fade the final extension out so the frame ends smoothly.
    for (std::size_t i = 0; i < w; ++i) {
      const double r =
          0.5 * (1.0 - std::cos(dsp::kPi * (static_cast<double>(i) + 0.5) /
                                static_cast<double>(w)));
      ppdu[ppdu.size() - w + i] *= (1.0 - r);
    }
  }

  // Optional crest-factor reduction: hard-limit envelope peaks beyond the
  // configured PAPR, preserving phase.
  if (cfg.clip_papr_db > 0.0) {
    const double mean = dsp::mean_power(ppdu);
    const double limit = std::sqrt(mean * std::pow(10.0, cfg.clip_papr_db / 10.0));
    for (dsp::Cplx& v : ppdu) {
      const double a = std::abs(v);
      if (a > limit) v *= limit / a;
    }
  }

  // Normalize so the OFDM portion (preamble excluded from the average to
  // keep DATA at the nominal level) has the requested mean power.
  const double target = dsp::dbm_to_watts(cfg.output_power_dbm);
  const std::span<const dsp::Cplx> data_part(
      ppdu.data() + kPreambleLen, ppdu.size() - kPreambleLen);
  const double current = dsp::mean_power(data_part);
  if (current > 0.0) {
    const double g = std::sqrt(target / current);
    for (dsp::Cplx& v : ppdu) v *= g;
  }
}

}  // namespace

dsp::CVec Transmitter::modulate(const Frame& frame) const {
  const std::size_t w = cfg_.window_overlap;
  if (w >= kCpLen / 2)
    throw std::invalid_argument("Transmitter: window overlap too large");

  const RateParams& p = rate_params(frame.rate);
  const Bits data_bits = encode_data_field(frame);
  const Bits coded = puncture(convolutional_encode(data_bits), p.code_rate);
  const std::size_t nsym = coded.size() / p.ncbps;

  // Fused interleave+map: gather each symbol's constellation points
  // straight from the coded bit block through the inverse permutation
  // (points[i] reads coded[inv[i*nbpsc + t]], which is exactly
  // map(interleave(block))), then one batch IFFT over every DATA symbol.
  const Interleaver& il = interleaver_for(frame.rate);
  const Mapper mapper(p.modulation);
  const std::size_t* perm = il.inv().data();
  thread_local dsp::CVec points, td;
  points.resize(nsym * kNumDataCarriers);
  td.resize(nsym * kSymbolLen);
  for (std::size_t s = 0; s < nsym; ++s)
    mapper.map_permuted(coded.data() + s * p.ncbps, perm, kNumDataCarriers,
                        points.data() + s * kNumDataCarriers);
  ofdm_modulate_symbols_into(points.data(), nsym, /*first_symbol_index=*/1,
                             td.data());

  dsp::CVec ppdu = full_preamble();
  ppdu.reserve(kPreambleLen + (nsym + 1) * kSymbolLen + w + 1);
  const dsp::CVec sig = modulate_signal_field({frame.rate, frame.psdu.size()});
  ppdu.insert(ppdu.end(), sig.begin(), sig.end());
  if (w > 0) append_cyclic_tail(ppdu, sig, w);
  for (std::size_t s = 0; s < nsym; ++s) {
    const std::span<const dsp::Cplx> sym(td.data() + s * kSymbolLen,
                                         kSymbolLen);
    overlap_add_symbol(ppdu, sym, w);
    if (w > 0) append_cyclic_tail(ppdu, sym, w);
  }
  finish_frame(ppdu, cfg_);
  return ppdu;
}

dsp::CVec Transmitter::modulate_reference(const Frame& frame) const {
  const auto symbols = data_symbol_points(frame);
  const std::size_t w = cfg_.window_overlap;
  if (w >= kCpLen / 2)
    throw std::invalid_argument("Transmitter: window overlap too large");

  dsp::CVec ppdu = full_preamble();
  const dsp::CVec sig = modulate_signal_field({frame.rate, frame.psdu.size()});
  ppdu.insert(ppdu.end(), sig.begin(), sig.end());
  if (w > 0) append_cyclic_tail(ppdu, sig, w);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const dsp::CVec sym = ofdm_modulate_symbol(symbols[s], s + 1);
    overlap_add_symbol(ppdu, sym, w);
    if (w > 0) append_cyclic_tail(ppdu, sym, w);
  }
  finish_frame(ppdu, cfg_);
  return ppdu;
}

}  // namespace wlansim::phy
