// 802.11a PPDU transmitter: PLCP preamble + SIGNAL + DATA
// (IEEE 802.11a-1999, 17.3.2 - 17.3.5). Output is 20 Msps complex baseband.
#pragma once

#include "dsp/types.h"
#include "phy80211a/bits.h"
#include "phy80211a/params.h"
#include "phy80211a/signal_field.h"

namespace wlansim::phy {

/// One frame to transmit.
struct Frame {
  Rate rate = Rate::kMbps6;
  Bytes psdu;  ///< MAC payload, 1..4095 bytes
};

class Transmitter {
 public:
  struct Config {
    std::uint8_t scrambler_seed = 0x5D;  ///< non-zero 7-bit seed
    double output_power_dbm = 0.0;       ///< mean power of the DATA portion
    /// Raised-cosine time-domain window overlap between OFDM symbols, in
    /// samples (Std 17.3.2.4's optional pulse shaping; smooths symbol
    /// transitions and improves the transmit spectral mask). 0 disables.
    /// Must stay a few samples below the cyclic prefix so receivers with a
    /// small timing backoff never see the crossfade region.
    std::size_t window_overlap = 0;
    /// PAPR clipping threshold [dB above the mean power]; envelope peaks
    /// beyond it are hard-limited (phase preserved). The classic crest-
    /// factor reduction: buys PA backoff at the price of in-band clipping
    /// noise (TX EVM) and spectral regrowth. <= 0 disables.
    double clip_papr_db = 0.0;
  };

  Transmitter();
  explicit Transmitter(Config cfg);

  /// Full PPDU: 320-sample preamble, SIGNAL symbol, N DATA symbols.
  /// Runs the batched pipeline (fused interleave+map gather into a flat
  /// points buffer, one batch IFFT over every DATA symbol, one-pass
  /// CP/window assembly); bit-identical to modulate_reference().
  dsp::CVec modulate(const Frame& frame) const;

  /// The original symbol-at-a-time modulator, kept as the semantic
  /// definition for the batch-equivalence tests.
  dsp::CVec modulate_reference(const Frame& frame) const;

  /// The scrambled/encoded DATA-field bits after padding (pre-modulation),
  /// exposed for tests against the standard's reference flow.
  Bits encode_data_field(const Frame& frame) const;

  /// The 48 constellation points of each DATA symbol (pre-OFDM); used by
  /// EVM measurement as the ideal reference.
  std::vector<dsp::CVec> data_symbol_points(const Frame& frame) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace wlansim::phy
