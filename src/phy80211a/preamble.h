// PLCP preamble generation: short training field (packet detect, AGC,
// coarse frequency) and long training field (channel estimation, fine
// frequency/timing) — IEEE 802.11a-1999, 17.3.3.
#pragma once

#include "dsp/types.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Frequency-domain short training sequence on carriers -26..26
/// (index i = carrier i-26), already scaled by sqrt(13/6).
const dsp::CVec& short_training_freq();

/// Frequency-domain long training sequence on carriers -26..26 (+/-1
/// values, 0 at DC).
const dsp::CVec& long_training_freq();

/// 160-sample short training field (ten repetitions of the 16-sample
/// pattern).
const dsp::CVec& short_preamble();

/// 160-sample long training field (32-sample guard + two 64-sample
/// training symbols).
const dsp::CVec& long_preamble();

/// One 64-sample long training symbol (the cross-correlation reference
/// used by timing synchronization).
const dsp::CVec& long_training_symbol();

/// Complete 320-sample PLCP preamble.
dsp::CVec full_preamble();

}  // namespace wlansim::phy
