// Link-quality measurements: bit/packet error counters and error vector
// magnitude (paper §5.1 / §5.2).
#pragma once

#include <span>

#include "dsp/types.h"
#include "phy80211a/bits.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Accumulating bit/packet error-rate counter.
class BerCounter {
 public:
  /// Compare a transmitted and received payload; a missing/failed packet
  /// counts every bit as errored.
  void add_packet(std::span<const std::uint8_t> tx_bytes,
                  std::span<const std::uint8_t> rx_bytes, bool rx_ok);

  /// Record a packet that was never decoded (all bits errored).
  void add_lost_packet(std::size_t tx_bytes);

  std::size_t bits_total() const { return bits_total_; }
  std::size_t bit_errors() const { return bit_errors_; }
  std::size_t packets_total() const { return packets_total_; }
  std::size_t packet_errors() const { return packet_errors_; }

  double ber() const;
  double per() const;

 private:
  std::size_t bits_total_ = 0;
  std::size_t bit_errors_ = 0;
  std::size_t packets_total_ = 0;
  std::size_t packet_errors_ = 0;
};

/// Error vector magnitude between received and reference constellation
/// points: EVM_rms = sqrt(mean |y - ref|^2 / mean |ref|^2).
class EvmCounter {
 public:
  /// Add one symbol's worth of points against explicit references.
  void add(std::span<const dsp::Cplx> rx, std::span<const dsp::Cplx> ref);

  /// Add points against the nearest ideal constellation point (decision-
  /// directed EVM, used when the transmitted data is unknown).
  void add_decision_directed(std::span<const dsp::Cplx> rx, Modulation mod);

  std::size_t count() const { return count_; }
  double evm_rms() const;       ///< fraction (0.1 == 10 %)
  double evm_percent() const;   ///< percent
  double evm_db() const;        ///< 20 log10(evm_rms)

 private:
  double err_acc_ = 0.0;
  double ref_acc_ = 0.0;
  std::size_t count_ = 0;
};

/// Peak-to-average power ratio of a waveform [dB].
double papr_db(std::span<const dsp::Cplx> x);

/// CCDF of the instantaneous PAPR: for each threshold [dB], the fraction
/// of samples whose instantaneous power exceeds the mean by more than the
/// threshold — the standard OFDM PAPR plot.
std::vector<double> papr_ccdf(std::span<const dsp::Cplx> x,
                              std::span<const double> thresholds_db);

/// Per-carrier EVM accumulator: resolves constellation error onto the 48
/// data subcarriers. The profile localizes impairments spectrally —
/// flicker/DC products hit the innermost carriers, channel-filter rolloff
/// and group-delay ripple hit the outermost (paper §5.2's EVM idea, taken
/// one step further).
class PerCarrierEvm {
 public:
  /// Add one OFDM symbol: 48 received and 48 reference points in
  /// transmission order.
  void add_symbol(std::span<const dsp::Cplx> rx,
                  std::span<const dsp::Cplx> ref);

  std::size_t symbols() const { return symbols_; }

  /// EVM (rms fraction) per data carrier, transmission order.
  std::array<double, kNumDataCarriers> evm_per_carrier() const;

  /// Logical subcarrier index (-26..26) for profile axis labeling.
  static int carrier_index(std::size_t i);

 private:
  std::array<double, kNumDataCarriers> err_{};
  std::array<double, kNumDataCarriers> ref_{};
  std::size_t symbols_ = 0;
};

}  // namespace wlansim::phy
