#include "phy80211a/convcode.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

namespace wlansim::phy {

namespace {

// Generator polynomials g0 = 133o, g1 = 171o expressed as tap masks over the
// 7-bit window (bit 0 = current input, bit k = input k steps ago):
// g0: 1 + D^2 + D^3 + D^5 + D^6, g1: 1 + D + D^2 + D^3 + D^6.
constexpr std::uint32_t kMaskA = 0x6D;
constexpr std::uint32_t kMaskB = 0x4F;
constexpr std::size_t kNumStates = 64;

// Output pair (A<<1)|B for every 7-bit encoder window — shared by the
// encoder and the Viterbi branch tables.
constexpr std::array<std::uint8_t, 128> kEncOut = [] {
  std::array<std::uint8_t, 128> t{};
  for (std::uint32_t full = 0; full < 128; ++full) {
    const std::uint32_t a = static_cast<std::uint32_t>(std::popcount(full & kMaskA)) & 1u;
    const std::uint32_t b = static_cast<std::uint32_t>(std::popcount(full & kMaskB)) & 1u;
    t[full] = static_cast<std::uint8_t>((a << 1) | b);
  }
  return t;
}();

// Branch-metric selector per butterfly: butterfly j pairs next states
// {2j, 2j+1} with predecessors {j, j+32}. Both generator masks contain bits
// 0 and 6, so flipping the input bit or the oldest state bit negates both
// output parities: all four branch metrics of a butterfly are +/-d with
// d = bm(pred j, input 0), whose sign pattern is kEncOut[j<<1].
constexpr std::array<std::uint8_t, 32> kDeltaIdx = [] {
  std::array<std::uint8_t, 32> t{};
  for (std::uint32_t j = 0; j < 32; ++j) t[j] = kEncOut[j << 1];
  return t;
}();

// Puncturing patterns over one period of mother-coded bits (A/B interlaced).
// kR23: keep A1 B1 A2, drop B2. kR34: keep A1 B1 A2 B3, drop B2 A3.
constexpr std::array<std::uint8_t, 4> kKeep23 = {1, 1, 1, 0};
constexpr std::array<std::uint8_t, 6> kKeep34 = {1, 1, 1, 0, 0, 1};

std::span<const std::uint8_t> keep_pattern(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12: return {};
    case CodeRate::kR23: return kKeep23;
    case CodeRate::kR34: return kKeep34;
  }
  throw std::invalid_argument("keep_pattern: bad rate");
}

}  // namespace

Bits convolutional_encode(const Bits& in) {
  Bits out(in.size() * 2);
  std::uint32_t state = 0;  // last six input bits, newest at bit 0
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::uint32_t full = (state << 1) | (in[i] & 1u);
    const std::uint8_t o = kEncOut[full];
    out[2 * i] = static_cast<std::uint8_t>(o >> 1);
    out[2 * i + 1] = static_cast<std::uint8_t>(o & 1);
    state = full & 0x3F;
  }
  return out;
}

Bits puncture(const Bits& coded, CodeRate rate) {
  const auto keep = keep_pattern(rate);
  if (keep.empty()) return coded;
  if (coded.size() % keep.size() != 0)
    throw std::invalid_argument("puncture: length not a pattern multiple");
  Bits out(punctured_length(coded.size() / 2, rate));
  std::size_t o = 0;
  for (std::size_t i = 0; i < coded.size(); ++i)
    if (keep[i % keep.size()]) out[o++] = coded[i];
  return out;
}

std::size_t punctured_length(std::size_t input_bits, CodeRate rate) {
  const std::size_t coded = 2 * input_bits;
  switch (rate) {
    case CodeRate::kR12: return coded;
    case CodeRate::kR23:
      if (coded % 4 != 0)
        throw std::invalid_argument("punctured_length: bad length for 2/3");
      return coded / 4 * 3;
    case CodeRate::kR34:
      if (coded % 6 != 0)
        throw std::invalid_argument("punctured_length: bad length for 3/4");
      return coded / 6 * 4;
  }
  throw std::invalid_argument("punctured_length: bad rate");
}

SoftBits depuncture(const SoftBits& soft, CodeRate rate) {
  const auto keep = keep_pattern(rate);
  if (keep.empty()) return soft;
  const std::size_t kept_per_period =
      static_cast<std::size_t>(std::count(keep.begin(), keep.end(), 1));
  if (soft.size() % kept_per_period != 0)
    throw std::invalid_argument("depuncture: length not a pattern multiple");
  const std::size_t periods = soft.size() / kept_per_period;
  SoftBits out(periods * keep.size());
  std::size_t src = 0;
  std::size_t o = 0;
  for (std::size_t p = 0; p < periods; ++p) {
    for (std::uint8_t k : keep) {
      out[o++] = k ? soft[src++] : 0.0;
    }
  }
  return out;
}

// Butterfly add-compare-select. Per step only four branch-metric values
// exist (±la±lb); butterfly j reads survivors {j, j+32}, writes {2j, 2j+1}
// with a branchless max-select, and packs the decision bits into the same
// per-step std::uint64_t words the traceback has always consumed. Float
// path metrics with periodic renormalization replace the old -inf
// sentinels: never-reached states carry a large negative value that cannot
// win a comparison against any live survivor, and the bits recorded for
// them are never visited by a traceback that starts in a live state.
// Tie-breaking matches the reference decoder: the strict `greater`
// comparison lets the low predecessor (oldest state bit 0) win ties.
Bits viterbi_decode(const SoftBits& soft, bool terminated) {
  if (soft.size() % 2 != 0)
    throw std::invalid_argument("viterbi_decode: need A/B pairs");
  const std::size_t steps = soft.size() / 2;

  constexpr float kUnreachable = -1.0e9f;
  alignas(64) float m0buf[kNumStates];
  alignas(64) float m1buf[kNumStates];
  for (std::size_t s = 0; s < kNumStates; ++s) m0buf[s] = kUnreachable;
  m0buf[0] = 0.0f;  // encoder starts in the zero state
  float* cur = m0buf;
  float* nxt = m1buf;

  // One predecessor-decision word per step: bit s records which of state
  // s's two predecessors won (1 = the one with the oldest bit set). The
  // buffer is reused across calls on the same thread; every word is
  // overwritten before traceback.
  thread_local std::vector<std::uint64_t> decisions;
  if (decisions.size() < steps) decisions.resize(steps);

  for (std::size_t t = 0; t < steps; ++t) {
    const float la = static_cast<float>(soft[2 * t]);      // + -> A likely 0
    const float lb = static_cast<float>(soft[2 * t + 1]);  // + -> B likely 0
    const float bm4[4] = {la + lb, la - lb, -la + lb, -la - lb};
    std::uint64_t dec = 0;
    for (std::uint32_t j = 0; j < 32; ++j) {
      const float d = bm4[kDeltaIdx[j]];
      const float ma = cur[j];
      const float mb = cur[j + 32];
      const float c00 = ma + d;  // into 2j   via predecessor j
      const float c01 = mb - d;  // into 2j   via predecessor j+32
      const float c10 = ma - d;  // into 2j+1 via predecessor j
      const float c11 = mb + d;  // into 2j+1 via predecessor j+32
      const bool w0 = c01 > c00;
      const bool w1 = c11 > c10;
      nxt[2 * j] = w0 ? c01 : c00;
      nxt[2 * j + 1] = w1 ? c11 : c10;
      dec |= (static_cast<std::uint64_t>(w0) << (2 * j)) |
             (static_cast<std::uint64_t>(w1) << (2 * j + 1));
    }
    decisions[t] = dec;
    std::swap(cur, nxt);
    if ((t & 63u) == 63u) {
      float mx = cur[0];
      for (std::size_t s = 1; s < kNumStates; ++s)
        if (cur[s] > mx) mx = cur[s];
      for (std::size_t s = 0; s < kNumStates; ++s) cur[s] -= mx;
    }
  }

  // Traceback start: the zero state for exactly-terminated streams, the
  // best-metric survivor otherwise.
  Bits out(steps, 0);
  std::uint32_t state = 0;
  if (!terminated) {
    float best = cur[0];
    for (std::uint32_t s = 1; s < kNumStates; ++s) {
      if (cur[s] > best) {
        best = cur[s];
        state = s;
      }
    }
  }
  for (std::size_t t = steps; t-- > 0;) {
    out[t] = static_cast<std::uint8_t>(state & 1);  // input bit = state bit 0
    const std::uint32_t old_bit5 =
        static_cast<std::uint32_t>((decisions[t] >> state) & 1);
    state = (state >> 1) | (old_bit5 << 5);
  }
  return out;
}

// The pre-butterfly decoder, retained verbatim as the semantic reference:
// double metrics, -inf sentinels, explicit per-branch metric evaluation.
// tests/phy/test_viterbi_equivalence.cpp pins viterbi_decode against it
// bit for bit on randomized quantized inputs.
Bits viterbi_decode_reference(const SoftBits& soft, bool terminated) {
  if (soft.size() % 2 != 0)
    throw std::invalid_argument("viterbi_decode: need A/B pairs");
  const std::size_t steps = soft.size() / 2;

  // Precompute per-state/per-input expected output pair and next state.
  struct Branch {
    std::uint8_t next;
    std::uint8_t out_a, out_b;
  };
  static const auto kBranches = [] {
    std::array<std::array<Branch, 2>, kNumStates> t{};
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      for (std::uint32_t b = 0; b < 2; ++b) {
        const std::uint32_t full = (s << 1) | b;
        t[s][b] = {static_cast<std::uint8_t>(full & 0x3F),
                   static_cast<std::uint8_t>(kEncOut[full] >> 1),
                   static_cast<std::uint8_t>(kEncOut[full] & 1)};
      }
    }
    return t;
  }();

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::array<double, kNumStates> metric{};
  metric.fill(kNegInf);
  metric[0] = 0.0;  // encoder starts in the zero state

  std::vector<std::uint64_t> decisions(steps);

  std::array<double, kNumStates> next_metric{};
  for (std::size_t t = 0; t < steps; ++t) {
    next_metric.fill(kNegInf);
    const double la = soft[2 * t];      // positive -> bit A likely 0
    const double lb = soft[2 * t + 1];  // positive -> bit B likely 0
    std::uint64_t dec = 0;
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (std::uint32_t b = 0; b < 2; ++b) {
        const Branch& br = kBranches[s][b];
        const double m =
            metric[s] + (br.out_a ? -la : la) + (br.out_b ? -lb : lb);
        if (m > next_metric[br.next]) {
          next_metric[br.next] = m;
          // Predecessor of `next` is s; record its oldest bit (bit 5),
          // which is the one bit the two predecessors differ in.
          if (s & 0x20)
            dec |= (std::uint64_t{1} << br.next);
          else
            dec &= ~(std::uint64_t{1} << br.next);
        }
      }
    }
    decisions[t] = dec;
    metric = next_metric;
  }

  Bits out(steps, 0);
  std::uint32_t state = 0;
  if (!terminated) {
    double best = metric[0];
    for (std::uint32_t s = 1; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  }
  for (std::size_t t = steps; t-- > 0;) {
    out[t] = static_cast<std::uint8_t>(state & 1);  // input bit = state bit 0
    const std::uint32_t old_bit5 =
        static_cast<std::uint32_t>((decisions[t] >> state) & 1);
    state = (state >> 1) | (old_bit5 << 5);
  }
  return out;
}

Bits viterbi_decode_hard(const Bits& coded, bool terminated) {
  SoftBits soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = (coded[i] & 1) ? -1.0 : 1.0;
  return viterbi_decode(soft, terminated);
}

}  // namespace wlansim::phy
