#include "phy80211a/convcode.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <span>
#include <stdexcept>

namespace wlansim::phy {

namespace {

// Generator polynomials g0 = 133o, g1 = 171o expressed as tap masks over the
// 7-bit window (bit 0 = current input, bit k = input k steps ago):
// g0: 1 + D^2 + D^3 + D^5 + D^6, g1: 1 + D + D^2 + D^3 + D^6.
constexpr std::uint32_t kMaskA = 0x6D;
constexpr std::uint32_t kMaskB = 0x4F;
constexpr std::size_t kNumStates = 64;

inline std::uint8_t parity(std::uint32_t v) {
  return static_cast<std::uint8_t>(std::popcount(v) & 1);
}

// Puncturing patterns over one period of mother-coded bits (A/B interlaced).
// kR23: keep A1 B1 A2, drop B2. kR34: keep A1 B1 A2 B3, drop B2 A3.
constexpr std::array<std::uint8_t, 4> kKeep23 = {1, 1, 1, 0};
constexpr std::array<std::uint8_t, 6> kKeep34 = {1, 1, 1, 0, 0, 1};

std::span<const std::uint8_t> keep_pattern(CodeRate rate) {
  switch (rate) {
    case CodeRate::kR12: return {};
    case CodeRate::kR23: return kKeep23;
    case CodeRate::kR34: return kKeep34;
  }
  throw std::invalid_argument("keep_pattern: bad rate");
}

}  // namespace

Bits convolutional_encode(const Bits& in) {
  Bits out;
  out.reserve(in.size() * 2);
  std::uint32_t state = 0;  // last six input bits, newest at bit 0
  for (std::uint8_t b : in) {
    const std::uint32_t full = (state << 1) | (b & 1);
    out.push_back(parity(full & kMaskA));
    out.push_back(parity(full & kMaskB));
    state = full & 0x3F;
  }
  return out;
}

Bits puncture(const Bits& coded, CodeRate rate) {
  const auto keep = keep_pattern(rate);
  if (keep.empty()) return coded;
  if (coded.size() % keep.size() != 0)
    throw std::invalid_argument("puncture: length not a pattern multiple");
  Bits out;
  out.reserve(punctured_length(coded.size() / 2, rate));
  for (std::size_t i = 0; i < coded.size(); ++i)
    if (keep[i % keep.size()]) out.push_back(coded[i]);
  return out;
}

std::size_t punctured_length(std::size_t input_bits, CodeRate rate) {
  const std::size_t coded = 2 * input_bits;
  switch (rate) {
    case CodeRate::kR12: return coded;
    case CodeRate::kR23:
      if (coded % 4 != 0)
        throw std::invalid_argument("punctured_length: bad length for 2/3");
      return coded / 4 * 3;
    case CodeRate::kR34:
      if (coded % 6 != 0)
        throw std::invalid_argument("punctured_length: bad length for 3/4");
      return coded / 6 * 4;
  }
  throw std::invalid_argument("punctured_length: bad rate");
}

SoftBits depuncture(const SoftBits& soft, CodeRate rate) {
  const auto keep = keep_pattern(rate);
  if (keep.empty()) return soft;
  const std::size_t kept_per_period =
      static_cast<std::size_t>(std::count(keep.begin(), keep.end(), 1));
  if (soft.size() % kept_per_period != 0)
    throw std::invalid_argument("depuncture: length not a pattern multiple");
  const std::size_t periods = soft.size() / kept_per_period;
  SoftBits out;
  out.reserve(periods * keep.size());
  std::size_t src = 0;
  for (std::size_t p = 0; p < periods; ++p) {
    for (std::uint8_t k : keep) {
      out.push_back(k ? soft[src++] : 0.0);
    }
  }
  return out;
}

Bits viterbi_decode(const SoftBits& soft, bool terminated) {
  if (soft.size() % 2 != 0)
    throw std::invalid_argument("viterbi_decode: need A/B pairs");
  const std::size_t steps = soft.size() / 2;

  // Precompute per-state/per-input expected output pair and next state.
  struct Branch {
    std::uint8_t next;
    std::uint8_t out_a, out_b;
  };
  static const auto kBranches = [] {
    std::array<std::array<Branch, 2>, kNumStates> t{};
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      for (std::uint32_t b = 0; b < 2; ++b) {
        const std::uint32_t full = (s << 1) | b;
        t[s][b] = {static_cast<std::uint8_t>(full & 0x3F),
                   parity(full & kMaskA), parity(full & kMaskB)};
      }
    }
    return t;
  }();

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::array<double, kNumStates> metric{};
  metric.fill(kNegInf);
  metric[0] = 0.0;  // encoder starts in the zero state

  // One predecessor-decision word per step: bit s = chosen input bit that
  // led into state s (the input bit equals next_state bit 0, so we instead
  // record which of the two predecessors won). The buffer is reused across
  // calls on the same thread; every word is overwritten before traceback.
  thread_local std::vector<std::uint64_t> decisions;
  if (decisions.size() < steps) decisions.resize(steps);

  std::array<double, kNumStates> next_metric{};
  for (std::size_t t = 0; t < steps; ++t) {
    next_metric.fill(kNegInf);
    const double la = soft[2 * t];      // positive -> bit A likely 0
    const double lb = soft[2 * t + 1];  // positive -> bit B likely 0
    std::uint64_t dec = 0;
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (std::uint32_t b = 0; b < 2; ++b) {
        const Branch& br = kBranches[s][b];
        const double m = metric[s] + (br.out_a ? -la : la) + (br.out_b ? -lb : lb);
        if (m > next_metric[br.next]) {
          next_metric[br.next] = m;
          // Predecessor of `next` is s; record its oldest bit (bit 5),
          // which is the one bit the two predecessors differ in.
          if (s & 0x20)
            dec |= (std::uint64_t{1} << br.next);
          else
            dec &= ~(std::uint64_t{1} << br.next);
        }
      }
    }
    decisions[t] = dec;
    metric = next_metric;
  }

  // Traceback start: the zero state for exactly-terminated streams, the
  // best-metric survivor otherwise.
  Bits out(steps, 0);
  std::uint32_t state = 0;
  if (!terminated) {
    double best = metric[0];
    for (std::uint32_t s = 1; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  }
  for (std::size_t t = steps; t-- > 0;) {
    out[t] = static_cast<std::uint8_t>(state & 1);  // input bit = state bit 0
    const std::uint32_t old_bit5 =
        static_cast<std::uint32_t>((decisions[t] >> state) & 1);
    state = (state >> 1) | (old_bit5 << 5);
  }
  return out;
}

Bits viterbi_decode_hard(const Bits& coded, bool terminated) {
  SoftBits soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = (coded[i] & 1) ? -1.0 : 1.0;
  return viterbi_decode(soft, terminated);
}

}  // namespace wlansim::phy
