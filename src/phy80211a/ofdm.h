// OFDM symbol assembly/disassembly: subcarrier mapping (48 data + 4 pilot
// carriers on a 64-point FFT), cyclic prefix, and the pilot polarity
// sequence (IEEE 802.11a-1999, 17.3.5.8 / 17.3.5.9).
#pragma once

#include <array>
#include <span>

#include "dsp/types.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Logical subcarrier indices (-26..26, excluding 0 and pilots) of the 48
/// data carriers, in transmission order.
const std::array<int, kNumDataCarriers>& data_carrier_indices();

/// Pilot subcarrier indices {-21, -7, 7, 21}.
const std::array<int, kNumPilots>& pilot_carrier_indices();

/// Base pilot values {1, 1, 1, -1} before polarity scrambling.
const std::array<double, kNumPilots>& pilot_base_values();

/// 127-periodic pilot polarity sequence p_n (Std 17.3.5.9); the SIGNAL
/// symbol uses index 0, DATA symbol n uses index n+1.
double pilot_polarity(std::size_t symbol_index);

/// Assemble one time-domain OFDM symbol (CP + 64 samples) from 48 data
/// constellation points. `symbol_index` selects the pilot polarity (0 for
/// SIGNAL, n+1 for DATA symbol n).
dsp::CVec ofdm_modulate_symbol(std::span<const dsp::Cplx> data48,
                               std::size_t symbol_index);

/// Same, into a caller-provided buffer (resized to kSymbolLen). With a warm
/// `out` this performs no heap allocation: the 64-point IFFT runs through a
/// cached out-of-place plan and per-thread scratch.
void ofdm_modulate_symbol_into(std::span<const dsp::Cplx> data48,
                               std::size_t symbol_index, dsp::CVec& out);

/// FFT of one received symbol (64 samples, CP already removed) and
/// extraction of the 48 data bins and 4 pilot bins.
struct DemodulatedSymbol {
  std::array<dsp::Cplx, kNumDataCarriers> data;
  std::array<dsp::Cplx, kNumPilots> pilots;
};
DemodulatedSymbol ofdm_demodulate_symbol(std::span<const dsp::Cplx> time64);

/// Batch demodulate `nsym` symbols through one batch FFT: symbol s's 64
/// FFT-input samples start at time[s*stride] (stride >= 64; the receiver
/// passes kSymbolLen to lift the FFT windows straight out of the frame
/// without a copy). Writes data48[s*48 + i] and pilots4[s*4 + i]. Each
/// symbol's transform and bin extraction is bit-identical to
/// ofdm_demodulate_symbol.
void ofdm_demodulate_symbols_into(const dsp::Cplx* time, std::size_t stride,
                                  std::size_t nsym, dsp::Cplx* data48,
                                  dsp::Cplx* pilots4);

/// Batch modulate `nsym` symbols through one batch IFFT: symbol s is built
/// from points48[s*48..] with pilot polarity index first_symbol_index + s,
/// and written to out[s*kSymbolLen..] as cyclic prefix + body.
/// Bit-identical per symbol to ofdm_modulate_symbol_into.
void ofdm_modulate_symbols_into(const dsp::Cplx* points48, std::size_t nsym,
                                std::size_t first_symbol_index,
                                dsp::Cplx* out);

/// Map a logical subcarrier index (-32..31) to its FFT bin (0..63).
std::size_t carrier_to_bin(int carrier);

/// Full 53-entry frequency-domain view used by channel estimation:
/// carriers -26..26 (index i corresponds to carrier i-26).
std::array<dsp::Cplx, 53> extract_occupied_bins(std::span<const dsp::Cplx> fd64);

}  // namespace wlansim::phy
