#include "phy80211a/preamble.h"

#include <cmath>

#include "dsp/fft.h"
#include "phy80211a/ofdm.h"

namespace wlansim::phy {

namespace {

/// Build the 53-entry (carriers -26..26) short training sequence.
dsp::CVec make_short_freq() {
  dsp::CVec s(53, dsp::Cplx{0.0, 0.0});
  const double a = std::sqrt(13.0 / 6.0);
  const dsp::Cplx pp{a, a};    // (1+j) * sqrt(13/6)
  const dsp::Cplx mm{-a, -a};  // (-1-j) * sqrt(13/6)
  auto set = [&](int k, dsp::Cplx v) { s[k + 26] = v; };
  set(-24, pp); set(-20, mm); set(-16, pp); set(-12, mm);
  set(-8, mm);  set(-4, pp);  set(4, mm);   set(8, mm);
  set(12, pp);  set(16, pp);  set(20, pp);  set(24, pp);
  return s;
}

/// Long training sequence values for carriers -26..26 (Std Eq. 8).
dsp::CVec make_long_freq() {
  static constexpr int kL[53] = {
      1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1,
      1, -1, 1, -1, 1, 1, 1, 1, 0, 1, -1, -1, 1, 1, -1, 1, -1, 1,
      -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1};
  dsp::CVec l(53);
  for (int i = 0; i < 53; ++i) l[i] = dsp::Cplx{static_cast<double>(kL[i]), 0.0};
  return l;
}

/// 64-point IFFT of a 53-entry carrier loading (carriers -26..26).
dsp::CVec ifft_of_carriers(const dsp::CVec& carriers53) {
  dsp::CVec fd(kNfft, dsp::Cplx{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) fd[carrier_to_bin(k)] = carriers53[k + 26];
  static const dsp::Fft engine(kNfft);
  return engine.inverse(std::span<const dsp::Cplx>(fd));
}

}  // namespace

const dsp::CVec& short_training_freq() {
  static const dsp::CVec s = make_short_freq();
  return s;
}

const dsp::CVec& long_training_freq() {
  static const dsp::CVec l = make_long_freq();
  return l;
}

const dsp::CVec& short_preamble() {
  static const dsp::CVec t = [] {
    const dsp::CVec period64 = ifft_of_carriers(short_training_freq());
    // The IFFT output is 16-periodic (only every 4th carrier loaded); emit
    // ten repetitions of the first 16 samples.
    dsp::CVec out;
    out.reserve(kShortPreambleLen);
    for (std::size_t r = 0; r < 10; ++r)
      out.insert(out.end(), period64.begin(), period64.begin() + 16);
    return out;
  }();
  return t;
}

const dsp::CVec& long_training_symbol() {
  static const dsp::CVec t = ifft_of_carriers(long_training_freq());
  return t;
}

const dsp::CVec& long_preamble() {
  static const dsp::CVec t = [] {
    const dsp::CVec& sym = long_training_symbol();
    dsp::CVec out;
    out.reserve(kLongPreambleLen);
    out.insert(out.end(), sym.end() - 32, sym.end());  // guard interval
    out.insert(out.end(), sym.begin(), sym.end());
    out.insert(out.end(), sym.begin(), sym.end());
    return out;
  }();
  return t;
}

dsp::CVec full_preamble() {
  dsp::CVec out;
  out.reserve(kPreambleLen);
  const dsp::CVec& s = short_preamble();
  const dsp::CVec& l = long_preamble();
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), l.begin(), l.end());
  return out;
}

}  // namespace wlansim::phy
