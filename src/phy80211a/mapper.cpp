#include "phy80211a/mapper.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/kernels.h"

namespace wlansim::phy {

namespace {

/// Axis levels indexed by the gray-coded bit group (b_first..b_last read as
/// an integer with the first bit as MSB), per Std 802.11a Tables 81-84.
std::vector<double> gray_levels(std::size_t bits_per_axis) {
  switch (bits_per_axis) {
    case 1: return {-1.0, 1.0};                    // 0 -> -1, 1 -> +1
    case 2: return {-3.0, -1.0, 3.0, 1.0};          // 00,01,10,11
    case 3: return {-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0};
    default: throw std::invalid_argument("gray_levels: bad width");
  }
}

double norm_factor(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 1.0 / std::sqrt(2.0);
    case Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case Modulation::kQam64: return 1.0 / std::sqrt(42.0);
  }
  throw std::invalid_argument("norm_factor: bad modulation");
}

}  // namespace

Mapper::Mapper(Modulation mod)
    : mod_(mod),
      nbpsc_(bits_per_symbol(mod)),
      bits_per_axis_(mod == Modulation::kBpsk ? 1 : nbpsc_ / 2),
      norm_(norm_factor(mod)),
      levels_(gray_levels(bits_per_axis_)) {
  slevels_.resize(levels_.size());
  for (std::size_t g = 0; g < levels_.size(); ++g)
    slevels_[g] = levels_[g] * norm_;
}

double Mapper::axis_level(std::span<const std::uint8_t> axis_bits) const {
  std::size_t g = 0;
  for (std::uint8_t b : axis_bits) g = (g << 1) | (b & 1);
  return levels_[g];
}

dsp::Cplx Mapper::map_point(std::span<const std::uint8_t> bits) const {
  if (bits.size() != nbpsc_)
    throw std::invalid_argument("Mapper: wrong number of bits");
  const double i = axis_level(bits.first(bits_per_axis_));
  const double q = (mod_ == Modulation::kBpsk)
                       ? 0.0
                       : axis_level(bits.subspan(bits_per_axis_));
  return norm_ * dsp::Cplx{i, q};
}

dsp::CVec Mapper::map(const Bits& bits) const {
  if (bits.size() % nbpsc_ != 0)
    throw std::invalid_argument("Mapper: bit count not a multiple of NBPSC");
  dsp::CVec out;
  out.reserve(bits.size() / nbpsc_);
  for (std::size_t i = 0; i < bits.size(); i += nbpsc_)
    out.push_back(map_point(std::span<const std::uint8_t>(bits).subspan(i, nbpsc_)));
  return out;
}

void Mapper::demap_axis_hard(double y, Bits* out) const {
  std::size_t best = 0;
  double bestd = std::numeric_limits<double>::max();
  for (std::size_t g = 0; g < levels_.size(); ++g) {
    const double d = std::abs(y - levels_[g] * norm_);
    if (d < bestd) {
      bestd = d;
      best = g;
    }
  }
  for (std::size_t i = 0; i < bits_per_axis_; ++i)
    out->push_back(
        static_cast<std::uint8_t>((best >> (bits_per_axis_ - 1 - i)) & 1));
}

Bits Mapper::demap_hard_point(dsp::Cplx y) const {
  Bits out;
  out.reserve(nbpsc_);
  demap_axis_hard(y.real(), &out);
  if (mod_ != Modulation::kBpsk) demap_axis_hard(y.imag(), &out);
  return out;
}

Bits Mapper::demap_hard(std::span<const dsp::Cplx> pts) const {
  Bits out;
  out.reserve(pts.size() * nbpsc_);
  for (dsp::Cplx p : pts) {
    const Bits b = demap_hard_point(p);
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

void Mapper::demap_axis_raw(double y, double* out) const {
  // Max-log: LLR_i = min_{s:bit=1} (y-s)^2 - min_{s:bit=0} (y-s)^2;
  // positive favors bit 0. The caller applies the CSI weight.
  //
  // Table-driven form: the squared distances to the slevels_ table are
  // computed once and shared across the axis bits (the per-bit loop used
  // to recompute all of them). d[g] is the same expression as before, and
  // each bit's min scans g in the same ascending order with the same
  // strict < test, so the selected d0/d1 — and the LLRs — are unchanged
  // bit-for-bit.
  double d[8];
  const std::size_t nlev = levels_.size();
  const double* __restrict sl = slevels_.data();
  for (std::size_t g = 0; g < nlev; ++g) {
    const double diff = y - sl[g];
    d[g] = diff * diff;
  }
  for (std::size_t i = 0; i < bits_per_axis_; ++i) {
    double d0 = std::numeric_limits<double>::max();
    double d1 = std::numeric_limits<double>::max();
    const std::size_t shift = bits_per_axis_ - 1 - i;
    for (std::size_t g = 0; g < nlev; ++g) {
      const bool bit = ((g >> shift) & 1) != 0;
      if (bit) {
        if (d[g] < d1) d1 = d[g];
      } else {
        if (d[g] < d0) d0 = d[g];
      }
    }
    out[i] = d1 - d0;
  }
}

void Mapper::demap_axis_soft(double y, double weight, SoftBits* out) const {
  // w * (d1 - d0) per bit, through the shared-distance raw demap.
  double raw[3];
  demap_axis_raw(y, raw);
  for (std::size_t i = 0; i < bits_per_axis_; ++i)
    out->push_back(weight * raw[i]);
}

SoftBits Mapper::demap_soft_point(dsp::Cplx y, double weight) const {
  SoftBits out;
  out.reserve(nbpsc_);
  demap_axis_soft(y.real(), weight, &out);
  if (mod_ != Modulation::kBpsk) demap_axis_soft(y.imag(), weight, &out);
  return out;
}

SoftBits Mapper::demap_soft(std::span<const dsp::Cplx> pts,
                            std::span<const double> weights) const {
  SoftBits out(pts.size() * nbpsc_);
  demap_soft_into(pts, weights, out.data());
  return out;
}

void Mapper::demap_soft_into(std::span<const dsp::Cplx> pts,
                             std::span<const double> weights,
                             double* out) const {
  if (pts.size() != weights.size())
    throw std::invalid_argument("Mapper: weights size mismatch");
  // Indexed writes (no per-point vector), with the CSI weight applied as
  // a block scale over each point's LLRs: w*(d1-d0) bit-identically
  // equals (d1-d0)*w.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    double* dst = out + i * nbpsc_;
    demap_axis_raw(pts[i].real(), dst);
    if (mod_ != Modulation::kBpsk)
      demap_axis_raw(pts[i].imag(), dst + bits_per_axis_);
    dsp::kernels::scale(dst, nbpsc_, weights[i]);
  }
}

void Mapper::demap_soft_deinterleaved(std::span<const dsp::Cplx> pts,
                                      std::span<const double> weights,
                                      const std::size_t* deint,
                                      double* out) const {
  if (pts.size() != weights.size())
    throw std::invalid_argument("Mapper: weights size mismatch");
  double raw[6];
  for (std::size_t i = 0; i < pts.size(); ++i) {
    demap_axis_raw(pts[i].real(), raw);
    if (mod_ != Modulation::kBpsk)
      demap_axis_raw(pts[i].imag(), raw + bits_per_axis_);
    const double w = weights[i];
    const std::size_t* __restrict dj = deint + i * nbpsc_;
    for (std::size_t b = 0; b < nbpsc_; ++b) out[dj[b]] = raw[b] * w;
  }
}

void Mapper::map_permuted(const std::uint8_t* bits, const std::size_t* perm,
                          std::size_t npoints, dsp::Cplx* out) const {
  const std::size_t bpa = bits_per_axis_;
  for (std::size_t p = 0; p < npoints; ++p) {
    const std::size_t* __restrict pp = perm + p * nbpsc_;
    std::size_t gi = 0;
    for (std::size_t t = 0; t < bpa; ++t)
      gi = (gi << 1) | (bits[pp[t]] & 1);
    const double iv = levels_[gi];
    double qv = 0.0;
    if (mod_ != Modulation::kBpsk) {
      std::size_t gq = 0;
      for (std::size_t t = 0; t < bpa; ++t)
        gq = (gq << 1) | (bits[pp[bpa + t]] & 1);
      qv = levels_[gq];
    }
    out[p] = norm_ * dsp::Cplx{iv, qv};
  }
}

dsp::Cplx Mapper::nearest_point(dsp::Cplx y) const {
  const Bits b = demap_hard_point(y);
  return map_point(b);
}

}  // namespace wlansim::phy
