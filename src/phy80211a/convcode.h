// Rate-1/2 K=7 convolutional code (g0 = 133o, g1 = 171o) with the 802.11a
// puncturing patterns, plus a soft-decision Viterbi decoder
// (IEEE 802.11a-1999, 17.3.5.5 / 17.3.5.6).
#pragma once

#include <cstdint>
#include <vector>

#include "phy80211a/bits.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Soft bit metric: positive means "bit is more likely 0" (LLR convention
/// LLR = log P(b=0)/P(b=1)). Magnitude carries reliability; exact 0 means
/// "no information" (used for punctured positions).
using SoftBits = std::vector<double>;

/// Encode at mother rate 1/2; output has 2x input length, ordered A0 B0
/// A1 B1 ... The encoder starts and must end in the zero state (callers
/// append tail bits).
Bits convolutional_encode(const Bits& in);

/// Remove bits according to the puncturing pattern for `rate`. Identity for
/// kR12. Input length must be a multiple of the pattern period.
Bits puncture(const Bits& coded, CodeRate rate);

/// Reinsert zero-information soft values at punctured positions so the
/// decoder sees mother-rate metrics.
SoftBits depuncture(const SoftBits& soft, CodeRate rate);

/// Expected punctured length for `input_bits` information bits at `rate`.
std::size_t punctured_length(std::size_t input_bits, CodeRate rate);

/// Soft-decision Viterbi decoder for the mother code. `soft` holds
/// 2 * n_info metrics (A/B interlaced); returns n_info decoded bits.
/// With `terminated` the traceback starts from the zero state (valid when
/// the stream ends exactly at the tail, like the SIGNAL field); without it
/// the traceback starts from the best-metric state — required for the
/// DATA field, whose scrambled pad bits after the tail leave the encoder
/// in an arbitrary state.
Bits viterbi_decode(const SoftBits& soft, bool terminated = true);

/// The straightforward pre-butterfly decoder (double metrics, -inf
/// sentinels), retained as the semantic reference the production decoder is
/// pinned against. On soft inputs whose values and running metric sums are
/// exactly representable in float (e.g. small dyadic-rational LLRs), the
/// two decoders produce identical bits.
Bits viterbi_decode_reference(const SoftBits& soft, bool terminated = true);

/// Hard-decision convenience wrapper: converts bits to +/-1 metrics.
Bits viterbi_decode_hard(const Bits& coded, bool terminated = true);

}  // namespace wlansim::phy
