#include "phy80211a/ofdm.h"

#include <stdexcept>

#include "dsp/fft.h"

namespace wlansim::phy {

namespace {

std::array<int, kNumDataCarriers> make_data_carriers() {
  std::array<int, kNumDataCarriers> out{};
  std::size_t n = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21) continue;
    out[n++] = k;
  }
  return out;
}

// Pilot polarity sequence p_0..p_126 (Std 802.11a 17.3.5.9).
constexpr std::array<int, 127> kPolarity = {
    1, 1, 1, 1, -1, -1, -1, 1,  -1, -1, -1, -1, 1,  1,  -1, 1,
    -1, -1, 1, 1, -1, 1, 1, -1, 1,  1,  1,  1,  1,  1,  -1, 1,
    1, 1, -1, 1, 1, -1, -1, 1,  1,  1,  -1, 1,  -1, -1, -1, 1,
    -1, 1, -1, -1, 1, -1, -1, 1, 1,  1,  1,  1,  -1, -1, 1,  1,
    -1, -1, 1, -1, 1, -1, 1, 1,  -1, -1, -1, 1,  1,  -1, -1, -1,
    -1, 1, -1, -1, 1, -1, 1, 1,  1,  1,  -1, 1,  -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1, -1, 1, 1,  -1, 1,  -1, 1,  1,  1,  -1,
    -1, 1, -1, -1, -1, 1, 1, 1,  -1, -1, -1, -1, -1, -1, -1};

const dsp::Fft& fft64() {
  static const dsp::Fft engine(kNfft);
  return engine;
}

/// FFT bin numbers of the 48 data carriers, in transmission order.
const std::array<std::size_t, kNumDataCarriers>& data_bins() {
  static const auto table = [] {
    std::array<std::size_t, kNumDataCarriers> t{};
    const auto& dc = data_carrier_indices();
    for (std::size_t i = 0; i < kNumDataCarriers; ++i)
      t[i] = carrier_to_bin(dc[i]);
    return t;
  }();
  return table;
}

/// FFT bin numbers of the 4 pilot carriers.
const std::array<std::size_t, kNumPilots>& pilot_bins() {
  static const auto table = [] {
    std::array<std::size_t, kNumPilots> t{};
    const auto& pc = pilot_carrier_indices();
    for (std::size_t i = 0; i < kNumPilots; ++i)
      t[i] = carrier_to_bin(pc[i]);
    return t;
  }();
  return table;
}

}  // namespace

const std::array<int, kNumDataCarriers>& data_carrier_indices() {
  static const auto table = make_data_carriers();
  return table;
}

const std::array<int, kNumPilots>& pilot_carrier_indices() {
  static const std::array<int, kNumPilots> table = {-21, -7, 7, 21};
  return table;
}

const std::array<double, kNumPilots>& pilot_base_values() {
  static const std::array<double, kNumPilots> table = {1.0, 1.0, 1.0, -1.0};
  return table;
}

double pilot_polarity(std::size_t symbol_index) {
  return static_cast<double>(kPolarity[symbol_index % kPolarity.size()]);
}

std::size_t carrier_to_bin(int carrier) {
  if (carrier < -32 || carrier > 31)
    throw std::invalid_argument("carrier_to_bin: out of range");
  return static_cast<std::size_t>((carrier + kNfft) % kNfft);
}

dsp::CVec ofdm_modulate_symbol(std::span<const dsp::Cplx> data48,
                               std::size_t symbol_index) {
  dsp::CVec out;
  ofdm_modulate_symbol_into(data48, symbol_index, out);
  return out;
}

void ofdm_modulate_symbol_into(std::span<const dsp::Cplx> data48,
                               std::size_t symbol_index, dsp::CVec& out) {
  if (data48.size() != kNumDataCarriers)
    throw std::invalid_argument("ofdm_modulate_symbol: need 48 points");
  thread_local dsp::CVec fd, td;
  fd.assign(kNfft, dsp::Cplx{0.0, 0.0});
  td.resize(kNfft);
  const auto& dc = data_carrier_indices();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i)
    fd[carrier_to_bin(dc[i])] = data48[i];
  const double pol = pilot_polarity(symbol_index);
  const auto& pc = pilot_carrier_indices();
  const auto& pv = pilot_base_values();
  for (std::size_t i = 0; i < kNumPilots; ++i)
    fd[carrier_to_bin(pc[i])] = pol * pv[i];

  fft64().inverse(std::span<const dsp::Cplx>(fd), std::span<dsp::Cplx>(td));
  // The 64-point IFFT with 52 unit-power carriers yields mean power 52/64;
  // no extra scaling — the transmitter normalizes the whole frame.
  out.resize(kSymbolLen);
  for (std::size_t i = 0; i < kCpLen; ++i)
    out[i] = td[kNfft - kCpLen + i];  // cyclic prefix
  for (std::size_t i = 0; i < kNfft; ++i) out[kCpLen + i] = td[i];
}

DemodulatedSymbol ofdm_demodulate_symbol(std::span<const dsp::Cplx> time64) {
  if (time64.size() != kNfft)
    throw std::invalid_argument("ofdm_demodulate_symbol: need 64 samples");
  thread_local dsp::CVec fd;
  fd.resize(kNfft);
  fft64().forward(time64, std::span<dsp::Cplx>(fd));
  DemodulatedSymbol out;
  const auto& dc = data_carrier_indices();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i)
    out.data[i] = fd[carrier_to_bin(dc[i])];
  const auto& pc = pilot_carrier_indices();
  for (std::size_t i = 0; i < kNumPilots; ++i)
    out.pilots[i] = fd[carrier_to_bin(pc[i])];
  return out;
}

void ofdm_demodulate_symbols_into(const dsp::Cplx* time, std::size_t stride,
                                  std::size_t nsym, dsp::Cplx* data48,
                                  dsp::Cplx* pilots4) {
  if (nsym == 0) return;
  // One batch FFT over all symbols (row r reads time[r*stride..+64)), then
  // a table-driven bin gather. Rows are transformed independently with the
  // same butterfly schedule as the single-symbol path, so every extracted
  // bin matches ofdm_demodulate_symbol bit-for-bit.
  thread_local dsp::CVec fd;
  fd.resize(nsym * kNfft);
  fft64().forward_batch(time, stride, fd.data(), nsym);
  const auto& db = data_bins();
  const auto& pb = pilot_bins();
  for (std::size_t s = 0; s < nsym; ++s) {
    const dsp::Cplx* __restrict row = fd.data() + s * kNfft;
    dsp::Cplx* __restrict d = data48 + s * kNumDataCarriers;
    for (std::size_t i = 0; i < kNumDataCarriers; ++i) d[i] = row[db[i]];
    dsp::Cplx* __restrict p = pilots4 + s * kNumPilots;
    for (std::size_t i = 0; i < kNumPilots; ++i) p[i] = row[pb[i]];
  }
}

void ofdm_modulate_symbols_into(const dsp::Cplx* points48, std::size_t nsym,
                                std::size_t first_symbol_index,
                                dsp::Cplx* out) {
  if (nsym == 0) return;
  thread_local dsp::CVec fd, td;
  fd.assign(nsym * kNfft, dsp::Cplx{0.0, 0.0});
  td.resize(nsym * kNfft);
  const auto& db = data_bins();
  const auto& pb = pilot_bins();
  const auto& pv = pilot_base_values();
  for (std::size_t s = 0; s < nsym; ++s) {
    dsp::Cplx* __restrict row = fd.data() + s * kNfft;
    const dsp::Cplx* __restrict pts = points48 + s * kNumDataCarriers;
    for (std::size_t i = 0; i < kNumDataCarriers; ++i) row[db[i]] = pts[i];
    const double pol = pilot_polarity(first_symbol_index + s);
    for (std::size_t i = 0; i < kNumPilots; ++i) row[pb[i]] = pol * pv[i];
  }
  fft64().inverse_batch(fd.data(), kNfft, td.data(), nsym);
  for (std::size_t s = 0; s < nsym; ++s) {
    const dsp::Cplx* __restrict body = td.data() + s * kNfft;
    dsp::Cplx* __restrict sym = out + s * kSymbolLen;
    for (std::size_t i = 0; i < kCpLen; ++i)
      sym[i] = body[kNfft - kCpLen + i];  // cyclic prefix
    for (std::size_t i = 0; i < kNfft; ++i) sym[kCpLen + i] = body[i];
  }
}

std::array<dsp::Cplx, 53> extract_occupied_bins(std::span<const dsp::Cplx> fd64) {
  if (fd64.size() != kNfft)
    throw std::invalid_argument("extract_occupied_bins: need 64 bins");
  std::array<dsp::Cplx, 53> out;
  for (int k = -26; k <= 26; ++k) out[k + 26] = fd64[carrier_to_bin(k)];
  return out;
}

}  // namespace wlansim::phy
