// Channel estimation from the long training field and pilot-based common
// phase error tracking (the "Channel Correction" block of the paper's
// Fig. 1 receiver diagram).
#pragma once

#include <array>
#include <span>

#include "dsp/types.h"
#include "phy80211a/ofdm.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Frequency-domain channel estimate over the 53 occupied carriers
/// (-26..26; index k+26).
struct ChannelEstimate {
  std::array<dsp::Cplx, 53> h{};

  dsp::Cplx at_carrier(int k) const { return h[static_cast<std::size_t>(k + 26)]; }

  /// Per-data-carrier estimate in transmission order.
  std::array<dsp::Cplx, kNumDataCarriers> data_carriers() const;

  /// Per-pilot estimate.
  std::array<dsp::Cplx, kNumPilots> pilot_carriers() const;
};

/// Least-squares estimate from the two 64-sample long training symbols
/// (already time- and frequency-aligned). `lts` must hold 128 samples.
ChannelEstimate estimate_channel(std::span<const dsp::Cplx> lts);

/// Smooth an estimate across carriers with a short moving average
/// (odd `window` >= 1; 1 = no-op). Averaging neighboring carriers reduces
/// the estimation noise by ~window, at the cost of bias when the channel
/// is frequency-selective — the classic smoothing tradeoff, exposed as a
/// receiver option and quantified by bench/ablation_chanest.
ChannelEstimate smooth_channel(const ChannelEstimate& est, std::size_t window);

/// An ideal flat channel estimate (gain 1) for genie-aided reception.
ChannelEstimate flat_channel();

/// Result of equalizing one OFDM data symbol.
struct EqualizedSymbol {
  std::array<dsp::Cplx, kNumDataCarriers> points;   ///< equalized data points
  std::array<double, kNumDataCarriers> weights;     ///< |H|^2 demap weights
  double common_phase_error = 0.0;                  ///< radians, from pilots
  double phase_slope = 0.0;  ///< radians/carrier (timing drift), from pilots
};

/// Equalize a demodulated symbol against `est`, removing the pilot-derived
/// common phase error when `track_phase` is set, and — when `track_timing`
/// is also set — the pilot-derived linear phase slope across carriers
/// (sampling-clock / window drift: a timing shift of d samples rotates
/// carrier k by 2 pi k d / 64, which common-phase tracking cannot absorb).
/// `symbol_index` selects the expected pilot polarity (0 = SIGNAL,
/// n+1 = DATA n).
EqualizedSymbol equalize_symbol(const DemodulatedSymbol& sym,
                                const ChannelEstimate& est,
                                std::size_t symbol_index,
                                bool track_phase = true,
                                bool track_timing = true);

/// Batch equalization over `nsym` demodulated symbols laid out flat
/// (data[s*48 + i], pilots[s*4 + i]); symbol s uses pilot polarity index
/// first_symbol_index + s. Writes points[s*48 + i] and weights[s*48 + i].
/// The per-symbol arithmetic is bit-identical to equalize_symbol — the
/// batch form only hoists the per-carrier channel tables out of the symbol
/// loop (their values are the same every iteration).
void equalize_symbols(const dsp::Cplx* data, const dsp::Cplx* pilots,
                      std::size_t nsym, std::size_t first_symbol_index,
                      const ChannelEstimate& est, bool track_phase,
                      bool track_timing, dsp::Cplx* points, double* weights);

}  // namespace wlansim::phy
