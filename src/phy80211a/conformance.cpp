#include "phy80211a/conformance.h"

#include <algorithm>
#include <cmath>

#include "dsp/mathutil.h"

namespace wlansim::phy {

double spectral_mask_dbr(double f_hz) {
  const double f = std::abs(f_hz);
  struct Point {
    double f, dbr;
  };
  // Std 802.11a Figure 120 breakpoints.
  static constexpr Point kMask[] = {
      {0.0, 0.0}, {9e6, 0.0}, {11e6, -20.0}, {20e6, -28.0}, {30e6, -40.0}};
  if (f >= 30e6) return -40.0;
  for (std::size_t i = 1; i < std::size(kMask); ++i) {
    if (f <= kMask[i].f) {
      const double w = (f - kMask[i - 1].f) / (kMask[i].f - kMask[i - 1].f);
      return kMask[i - 1].dbr + w * (kMask[i].dbr - kMask[i - 1].dbr);
    }
  }
  return -40.0;
}

MaskCheckResult check_spectral_mask(const dsp::PsdEstimate& psd,
                                    double sample_rate_hz,
                                    double min_offset_hz) {
  // Bin the PSD into 100 kHz resolution cells, find the in-band maximum as
  // the 0 dBr reference, then compare every cell against the mask.
  const double cell_hz = 100e3;
  const double cell_norm = cell_hz / sample_rate_hz;
  const double half = sample_rate_hz / 2.0;

  double ref = 0.0;
  for (double f = -9e6; f <= 9e6; f += cell_hz) {
    ref = std::max(ref, psd.band_power(f / sample_rate_hz, cell_norm));
  }
  MaskCheckResult out;
  if (ref <= 0.0) {
    out.pass = false;
    return out;
  }
  for (double f = -half + cell_hz; f < half - cell_hz; f += cell_hz) {
    if (std::abs(f) < min_offset_hz) continue;
    const double p = psd.band_power(f / sample_rate_hz, cell_norm);
    const double dbr = dsp::to_db(std::max(p, 1e-30) / ref);
    const double limit = spectral_mask_dbr(f);
    const double margin = limit - dbr;
    if (margin < out.worst_margin_db) {
      out.worst_margin_db = margin;
      out.worst_offset_hz = f;
    }
  }
  out.pass = out.worst_margin_db >= 0.0;
  return out;
}

double required_tx_evm_db(Rate rate) {
  // Std 802.11a Table 90 (relative constellation error).
  switch (rate) {
    case Rate::kMbps6: return -5.0;
    case Rate::kMbps9: return -8.0;
    case Rate::kMbps12: return -10.0;
    case Rate::kMbps18: return -13.0;
    case Rate::kMbps24: return -16.0;
    case Rate::kMbps36: return -19.0;
    case Rate::kMbps48: return -22.0;
    case Rate::kMbps54: return -25.0;
  }
  return 0.0;
}

double required_sensitivity_dbm(Rate rate) {
  // Std 802.11a Table 91.
  switch (rate) {
    case Rate::kMbps6: return -82.0;
    case Rate::kMbps9: return -81.0;
    case Rate::kMbps12: return -79.0;
    case Rate::kMbps18: return -77.0;
    case Rate::kMbps24: return -74.0;
    case Rate::kMbps36: return -70.0;
    case Rate::kMbps48: return -66.0;
    case Rate::kMbps54: return -65.0;
  }
  return 0.0;
}

}  // namespace wlansim::phy
