#include "phy80211a/scrambler.h"

#include <stdexcept>

namespace wlansim::phy {

Scrambler::Scrambler(std::uint8_t seed) : state_(seed & 0x7F) {
  if (state_ == 0)
    throw std::invalid_argument("Scrambler: seed must be non-zero");
}

std::uint8_t Scrambler::next_bit() {
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return fb;
}

void Scrambler::process(Bits& bits) {
  for (std::uint8_t& b : bits) b = (b ^ next_bit()) & 1;
}

std::uint8_t recover_scrambler_seed(const Bits& first7_scrambled) {
  if (first7_scrambled.size() < 7)
    throw std::invalid_argument("recover_scrambler_seed: need 7 bits");
  // The SERVICE field starts with seven zero bits, so the received scrambled
  // bits equal the scrambling sequence itself. 127 candidate seeds is a
  // trivially small search.
  for (int seed = 1; seed < 128; ++seed) {
    Scrambler s(static_cast<std::uint8_t>(seed));
    bool match = true;
    for (int i = 0; i < 7; ++i) {
      if (s.next_bit() != (first7_scrambled[i] & 1)) {
        match = false;
        break;
      }
    }
    if (match) return static_cast<std::uint8_t>(seed);
  }
  // All-zero observation can only arise from heavy corruption; fall back to
  // an arbitrary seed so decoding proceeds (the frame will fail CRC anyway).
  return 0x5D;
}

}  // namespace wlansim::phy
