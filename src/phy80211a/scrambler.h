// Frame-synchronous scrambler, generator x^7 + x^4 + 1
// (IEEE 802.11a-1999, 17.3.5.4). The same structure scrambles and
// descrambles; the receiver recovers the transmit seed from the seven
// leading zero SERVICE bits.
#pragma once

#include <cstdint>

#include "phy80211a/bits.h"

namespace wlansim::phy {

class Scrambler {
 public:
  /// `seed` is the 7-bit initial state; must be non-zero.
  explicit Scrambler(std::uint8_t seed = 0x5D);

  /// Next pseudo-random bit (advances the state).
  std::uint8_t next_bit();

  /// Scramble (== descramble) a bit sequence in place.
  void process(Bits& bits);

  /// Current 7-bit state.
  std::uint8_t state() const { return state_; }

 private:
  std::uint8_t state_;
};

/// Recover the transmitter's scrambler seed from the first 7 descrambler
/// input bits, exploiting that SERVICE bits 0..6 are transmitted as zero.
/// (Std 802.11a 17.3.5.4: "the seven LSBs of the SERVICE field will be set
/// to all zeros prior to scrambling to enable estimation of the initial
/// state of the scrambler in the receiver.")
std::uint8_t recover_scrambler_seed(const Bits& first7_scrambled);

}  // namespace wlansim::phy
