// MAC data-plane framing: the MPDU ("MAC PDU stream" at the right edge of
// the paper's Fig. 1) that rides inside the PHY's PSDU. Provides the
// 802.11 data-frame header, IEEE CRC-32 FCS generation/checking, and
// sequence numbering — enough MAC to measure realistic frame error rates
// (FCS-validated) instead of genie payload comparison.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "phy80211a/bits.h"

namespace wlansim::phy {

/// IEEE CRC-32 (polynomial 0x04C11DB7, reflected, init/final 0xFFFFFFFF) —
/// the 802.11 FCS.
std::uint32_t crc32(std::span<const std::uint8_t> data);

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  static MacAddress broadcast();
  /// Deterministic locally-administered address from a small id.
  static MacAddress from_id(std::uint16_t id);

  std::string to_string() const;
  bool operator==(const MacAddress&) const = default;
};

/// Header of an 802.11 data frame (24 bytes on air).
struct MacHeader {
  std::uint16_t frame_control = 0x0008;  ///< type=data, subtype=0
  std::uint16_t duration = 0;
  MacAddress addr1;  ///< receiver
  MacAddress addr2;  ///< transmitter
  MacAddress addr3;  ///< BSSID
  std::uint16_t sequence_control = 0;  ///< seq << 4 | fragment

  std::uint16_t sequence_number() const { return sequence_control >> 4; }
  void set_sequence_number(std::uint16_t s) {
    sequence_control = static_cast<std::uint16_t>((s & 0x0FFF) << 4);
  }
};

inline constexpr std::size_t kMacHeaderBytes = 24;
inline constexpr std::size_t kFcsBytes = 4;

/// Assemble header + payload + FCS into a PSDU.
Bytes build_data_mpdu(const MacHeader& hdr,
                      std::span<const std::uint8_t> payload);

/// A successfully FCS-validated received frame.
struct ParsedMpdu {
  MacHeader header;
  Bytes payload;
};

/// Parse and FCS-check a received PSDU; nullopt on length/FCS failure.
std::optional<ParsedMpdu> parse_mpdu(std::span<const std::uint8_t> psdu);

}  // namespace wlansim::phy
