// Timing and frequency synchronization on the received sample stream:
// Schmidl&Cox-style delay-correlation packet detection and coarse CFO on
// the short preamble, cross-correlation fine timing and lag-64 fine CFO on
// the long preamble.
#pragma once

#include <optional>
#include <span>

#include "dsp/types.h"

namespace wlansim::phy {

struct DetectionResult {
  std::size_t detect_index = 0;  ///< first sample where the plateau holds
  double coarse_cfo_norm = 0.0;  ///< CFO estimate, cycles/sample
};

/// Detect a frame via the 16-sample periodicity of the short preamble.
/// Returns nullopt if no plateau is found.
///
/// O(N): the 32-sample correlation, power, and mean windows advance by a
/// sliding-window recurrence (add the entering term, subtract the leaving
/// one) with an exact recomputation every few hundred positions to bound
/// rounding drift, instead of re-summing the window at every position.
/// The decision sequence matches detect_packet_reference on any signal
/// whose metric is not within ~1e-12 of the threshold.
std::optional<DetectionResult> detect_packet(std::span<const dsp::Cplx> rx,
                                             double threshold = 0.6);

/// Reference O(N*W) implementation (full window re-sum per position), the
/// semantic definition detect_packet is tested against.
std::optional<DetectionResult> detect_packet_reference(
    std::span<const dsp::Cplx> rx, double threshold = 0.6);

/// Coarse CFO (cycles/sample) from lag-16 autocorrelation over `len`
/// samples starting at `start`.
double coarse_cfo(std::span<const dsp::Cplx> rx, std::size_t start,
                  std::size_t len = 128);

/// Fine CFO (cycles/sample) from the lag-64 correlation of the two long
/// training symbols; `lts_start` is the index of the first LTS symbol
/// (after its guard interval).
double fine_cfo(std::span<const dsp::Cplx> rx, std::size_t lts_start);

/// Locate the start of the first long training symbol by cross-correlating
/// with the known LTS within [search_start, search_end). Returns the index
/// of the first sample of the first 64-sample LTS.
///
/// The 64-sample window power slides by recurrence (exact recompute every
/// few hundred positions) and the cross-correlation runs on the
/// dsp::kernels xcorr_accum kernel (split re/im 4-lane chains, vectorized
/// in the WLANSIM_NATIVE build). Peak choice matches the reference except
/// for metric ties closer than the accumulated ulp drift.
std::optional<std::size_t> locate_long_training(std::span<const dsp::Cplx> rx,
                                                std::size_t search_start,
                                                std::size_t search_end);

/// Reference implementation (sequential complex accumulation, full power
/// re-sum per position), the semantic definition the fast path is tested
/// against.
std::optional<std::size_t> locate_long_training_reference(
    std::span<const dsp::Cplx> rx, std::size_t search_start,
    std::size_t search_end);

/// Multiply by e^{-j 2 pi cfo n} in place to remove a frequency offset
/// (n counted from the start of the span).
void correct_cfo(std::span<dsp::Cplx> rx, double cfo_norm);

}  // namespace wlansim::phy
