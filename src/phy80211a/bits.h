// Bit-vector helpers. Bits travel as one bit per byte (0/1) — simple,
// debuggable, and fast enough since link simulations are FFT/Viterbi bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/rng.h"

namespace wlansim::phy {

using Bits = std::vector<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Expand bytes to bits, LSB of each byte first (802.11 bit ordering).
Bits bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Pack bits (LSB first) back into bytes; size must be a multiple of 8.
Bytes bits_to_bytes(std::span<const std::uint8_t> bits);

/// Generate `n` random payload bytes.
Bytes random_bytes(std::size_t n, dsp::Rng& rng);

/// Count positions where a and b differ (up to the shorter length).
std::size_t count_bit_errors(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

}  // namespace wlansim::phy
