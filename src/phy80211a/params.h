// IEEE 802.11a-1999 PHY constants and rate-dependent parameters
// (Std 802.11a Table 78 and related clauses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wlansim::phy {

/// Baseband sample rate of the 20 MHz channelization [Hz].
inline constexpr double kSampleRate = 20e6;

/// FFT size of the OFDM modulator.
inline constexpr std::size_t kNfft = 64;

/// Cyclic prefix (guard interval) length in samples.
inline constexpr std::size_t kCpLen = 16;

/// Total samples per OFDM symbol (4.0 us at 20 Msps).
inline constexpr std::size_t kSymbolLen = kNfft + kCpLen;

/// Number of data subcarriers.
inline constexpr std::size_t kNumDataCarriers = 48;

/// Number of pilot subcarriers.
inline constexpr std::size_t kNumPilots = 4;

/// Short training field length in samples (10 x 16).
inline constexpr std::size_t kShortPreambleLen = 160;

/// Long training field length in samples (32 CP + 2 x 64).
inline constexpr std::size_t kLongPreambleLen = 160;

/// Total PLCP preamble length in samples.
inline constexpr std::size_t kPreambleLen = kShortPreambleLen + kLongPreambleLen;

/// Number of SERVICE field bits (all zero on air; first 7 carry the
/// scrambler state to the receiver).
inline constexpr std::size_t kServiceBits = 16;

/// Number of tail bits terminating the convolutional code.
inline constexpr std::size_t kTailBits = 6;

/// Channel spacing of the 5 GHz band plan [Hz] (adjacent channel offset).
inline constexpr double kChannelSpacing = 20e6;

/// Modulation of the data subcarriers.
enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

/// Convolutional code rate after puncturing.
enum class CodeRate : std::uint8_t { kR12, kR23, kR34 };

/// One row of the 802.11a rate table.
struct RateParams {
  double rate_mbps;        ///< nominal data rate
  Modulation modulation;   ///< subcarrier modulation
  CodeRate code_rate;      ///< punctured code rate
  std::size_t nbpsc;       ///< coded bits per subcarrier
  std::size_t ncbps;       ///< coded bits per OFDM symbol
  std::size_t ndbps;       ///< data bits per OFDM symbol
  std::uint8_t rate_field; ///< 4-bit RATE field of the SIGNAL symbol
};

/// The eight mandatory/optional 802.11a rates.
enum class Rate : std::uint8_t {
  kMbps6, kMbps9, kMbps12, kMbps18, kMbps24, kMbps36, kMbps48, kMbps54
};

inline constexpr std::size_t kNumRates = 8;

/// Look up the parameter row for a rate.
const RateParams& rate_params(Rate r);

/// Decode a SIGNAL-field RATE value; returns false if invalid.
bool rate_from_field(std::uint8_t field, Rate* out);

/// Human-readable rate name, e.g. "54 Mbps (64-QAM 3/4)".
std::string_view rate_name(Rate r);

/// Bits per subcarrier for a modulation.
std::size_t bits_per_symbol(Modulation m);

/// Numerator/denominator of a code rate (e.g. kR34 -> 3, 4).
void code_rate_fraction(CodeRate r, std::size_t* num, std::size_t* den);

/// Number of OFDM data symbols needed for `psdu_bytes` of payload at rate
/// `r` (includes SERVICE, tail, and padding; Std 802.11a 17.3.5.3).
std::size_t num_data_symbols(Rate r, std::size_t psdu_bytes);

}  // namespace wlansim::phy
