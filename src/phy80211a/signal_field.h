// SIGNAL field: the one-symbol PLCP header carrying RATE and LENGTH,
// always sent at 6 Mbps BPSK R=1/2 and never scrambled
// (IEEE 802.11a-1999, 17.3.4).
#pragma once

#include <cstdint>
#include <optional>

#include "dsp/types.h"
#include "phy80211a/convcode.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

struct SignalField {
  Rate rate = Rate::kMbps6;
  std::size_t length = 0;  ///< PSDU length in bytes (1..4095)
};

/// Assemble the 24 SIGNAL bits: RATE(4) | reserved(1) | LENGTH(12, LSB
/// first) | even parity(1) | tail(6 zeros).
Bits signal_field_bits(const SignalField& sf);

/// Parse 24 decoded SIGNAL bits; empty on parity failure or invalid RATE.
std::optional<SignalField> parse_signal_field(const Bits& bits);

/// Encode the SIGNAL field to one 80-sample OFDM symbol (pilot polarity
/// index 0).
dsp::CVec modulate_signal_field(const SignalField& sf);

/// Decode one received SIGNAL symbol from equalized data-carrier points.
/// `weights` are the per-carrier demapper weights (|H|^2 scaling).
std::optional<SignalField> decode_signal_field(
    std::span<const dsp::Cplx> data48, std::span<const double> weights);

}  // namespace wlansim::phy
