// Transmit and receive conformance limits of IEEE 802.11a-1999:
// the transmit spectral mask (17.3.9.2) and the minimum receiver
// sensitivity table (17.3.10.1). Used by the conformance benches and by
// anyone validating a modified front-end against the standard.
#pragma once

#include "dsp/spectrum.h"
#include "phy80211a/params.h"

namespace wlansim::phy {

/// Transmit spectral mask limit [dBr relative to the in-band maximum] at
/// frequency offset `f_hz` from the channel center (Std Fig. 120:
/// 0 dBr to +/-9 MHz, -20 dBr at 11 MHz, -28 dBr at 20 MHz, -40 dBr at
/// 30 MHz and beyond; linear interpolation in between).
double spectral_mask_dbr(double f_hz);

struct MaskCheckResult {
  bool pass = true;
  double worst_margin_db = 1e9;  ///< min(limit - measured); negative = fail
  double worst_offset_hz = 0.0;
};

/// Check a PSD (of a transmit waveform at `sample_rate_hz`) against the
/// mask. The 0 dBr reference is the maximum 100 kHz-binned in-band level,
/// per the standard's measurement description. `min_offset_hz` restricts
/// the check to offsets beyond it (the in-band peak touches 0 dBr by
/// construction, so out-of-band checks usually start at 9 MHz).
MaskCheckResult check_spectral_mask(const dsp::PsdEstimate& psd,
                                    double sample_rate_hz,
                                    double min_offset_hz = 0.0);

/// Minimum receiver sensitivity [dBm] required for a rate
/// (Std Table 91; 10 % PER at 1000-byte PSDU, assuming 10 dB NF and 5 dB
/// implementation margin).
double required_sensitivity_dbm(Rate rate);

/// Maximum allowed transmit relative constellation error (TX EVM) [dB]
/// for a rate (Std 17.3.9.6.3, Table 90: -5 dB at 6 Mbps down to -25 dB
/// at 54 Mbps).
double required_tx_evm_db(Rate rate);

}  // namespace wlansim::phy
