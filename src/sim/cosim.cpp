#include "sim/cosim.h"

#include <cmath>
#include <stdexcept>

namespace wlansim::sim {

CosimRfReceiver::CosimRfReceiver(const rf::DoubleConversionConfig& rf_cfg,
                                 const CosimConfig& cosim_cfg, dsp::Rng rng)
    : cfg_(cosim_cfg) {
  if (cfg_.analog_oversample == 0)
    throw std::invalid_argument("CosimRfReceiver: zero oversample");

  rf::DoubleConversionConfig fine = rf_cfg;
  fine.sample_rate_hz =
      rf_cfg.sample_rate_hz * static_cast<double>(cfg_.analog_oversample);
  // The analog transient drops the noise functions unless supported
  // (white_noise/flicker_noise limitation, paper §4.3).
  fine.noise_enabled = rf_cfg.noise_enabled && cfg_.supports_noise_functions;
  // AGC/ADC loop rates are per-sample quantities; rescale the loop so the
  // behavior matches the system-rate model.
  fine.agc.attack_db_per_sample /= static_cast<double>(cfg_.analog_oversample);
  fine.agc.decay_db_per_sample /= static_cast<double>(cfg_.analog_oversample);
  fine.agc.loop_gain /= static_cast<double>(cfg_.analog_oversample);
  fine.agc.detector_time_const *= static_cast<double>(cfg_.analog_oversample);

  analog_ = std::make_unique<rf::DoubleConversionReceiver>(fine, rng);
}

dsp::CVec CosimRfReceiver::process(std::span<const dsp::Cplx> in) {
  const std::size_t r = cfg_.analog_oversample;
  dsp::CVec out;
  out.reserve(in.size());
  dsp::CVec fine(r);
  for (const dsp::Cplx& x : in) {
    // Event synchronization handshake between the two simulators.
    double h = 0.0;
    for (std::size_t k = 0; k < cfg_.sync_overhead_ops; ++k)
      h += std::sqrt(static_cast<double>(k + 1));
    sync_sink_ = h;

    // First-order hold: the analog solver sees a continuous ramp between
    // consecutive digital samples.
    for (std::size_t k = 0; k < r; ++k) {
      const double a =
          (static_cast<double>(k) + 1.0) / static_cast<double>(r);
      fine[k] = prev_in_ + a * (x - prev_in_);
    }
    prev_in_ = x;

    const dsp::CVec y = analog_->process(fine);
    analog_steps_ += r;
    out.push_back(y.back());  // value at the synchronization boundary
  }
  return out;
}

void CosimRfReceiver::reset() {
  analog_->reset();
  prev_in_ = dsp::Cplx{0.0, 0.0};
  analog_steps_ = 0;
}

}  // namespace wlansim::sim
