// Parameter sweep manager — the counterpart of the SPW "simulation
// manager" the paper uses to measure BER versus RF front-end parameters
// (§4.1: "The simulation manager allows to setup parameter sweeps").
//
// Also home of the sequential early-stopping rule the adaptive Monte-Carlo
// BER engine (core/parallel) evaluates: the statistics are generic Bernoulli
// confidence-interval math and live here so they can be unit-tested without
// the link layer.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace wlansim::sim {

/// One sweep point: the parameter value and named scalar results.
struct SweepRow {
  double value = 0.0;
  std::map<std::string, double> results;
};

struct SweepResult {
  std::string param_name;
  std::vector<SweepRow> rows;

  /// Column of one result across the sweep.
  std::vector<double> column(const std::string& key) const;

  /// Render as an aligned ASCII table.
  std::string to_table() const;

  /// Render as CSV (header + rows).
  std::string to_csv() const;
};

/// Evaluate `fn` at every value (in order); `fn` returns named scalars.
SweepResult run_sweep(
    const std::string& param_name, const std::vector<double>& values,
    const std::function<std::map<std::string, double>(double)>& fn);

// ---------------------------------------------------------------------------
// Sequential early stopping
// ---------------------------------------------------------------------------

/// Stopping rule for a sequential Monte-Carlo error-rate measurement: keep
/// drawing packets until the bit-error-rate estimate is tight enough, with
/// an error-count floor guarding the small-sample regime and a hard packet
/// cap bounding the rare-error tail.
///
/// The rule is met at a prefix of `packets` in-order packet results holding
/// `bit_errors` errors out of `bits` transmitted bits when ALL of:
///   - packets    >= min_packets
///   - bit_errors >= min_errors  (CI math is meaningless on a handful of
///                                errors; 100 is the classic Monte-Carlo
///                                floor, also absorbing the burstiness of
///                                post-Viterbi bit errors)
///   - the Wilson-score relative half-width of the BER estimate at
///     confidence_z is <= target_rel_ci (> 0; 0 disables the CI test,
///     leaving a pure fixed budget of max_packets)
/// Independently of the rule, the measurement stops at max_packets.
struct StoppingRule {
  double target_rel_ci = 0.10;     ///< CI half-width / BER estimate; 0 = off
  double confidence_z = 1.96;      ///< normal quantile (1.96 = 95 %)
  std::size_t min_errors = 100;    ///< bit-error floor before a CI stop
  std::size_t min_packets = 8;     ///< packet floor before a CI stop
  std::size_t max_packets = 10000; ///< hard cap (the fixed budget when the
                                   ///< CI test is disabled or unreachable)
};

/// Half-width of the Wilson score interval for `errors` successes in
/// `trials` Bernoulli draws at normal quantile `z`. Well-behaved down to
/// zero errors (unlike the Wald interval); +inf when trials == 0.
double wilson_halfwidth(std::size_t errors, std::size_t trials, double z);

/// wilson_halfwidth relative to the maximum-likelihood estimate
/// errors/trials; +inf when errors == 0 (no estimate to be relative to).
double wilson_rel_halfwidth(std::size_t errors, std::size_t trials, double z);

/// Evaluate `rule` on the in-order prefix statistics (see StoppingRule).
bool stopping_rule_met(const StoppingRule& rule, std::size_t packets,
                       std::size_t bit_errors, std::size_t bits);

/// Linearly spaced values [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Logarithmically spaced values [lo, hi] inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace wlansim::sim
