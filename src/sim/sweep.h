// Parameter sweep manager — the counterpart of the SPW "simulation
// manager" the paper uses to measure BER versus RF front-end parameters
// (§4.1: "The simulation manager allows to setup parameter sweeps").
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace wlansim::sim {

/// One sweep point: the parameter value and named scalar results.
struct SweepRow {
  double value = 0.0;
  std::map<std::string, double> results;
};

struct SweepResult {
  std::string param_name;
  std::vector<SweepRow> rows;

  /// Column of one result across the sweep.
  std::vector<double> column(const std::string& key) const;

  /// Render as an aligned ASCII table.
  std::string to_table() const;

  /// Render as CSV (header + rows).
  std::string to_csv() const;
};

/// Evaluate `fn` at every value (in order); `fn` returns named scalars.
SweepResult run_sweep(
    const std::string& param_name, const std::vector<double>& values,
    const std::function<std::map<std::string, double>(double)>& fn);

/// Linearly spaced values [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Logarithmically spaced values [lo, hi] inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace wlansim::sim
