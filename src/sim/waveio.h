// Waveform export for offline inspection — the stand-in for the SigCalc /
// signalscan waveform viewers the paper uses ("if probes were set before
// simulating, the probed signals can be displayed by using the SPW SigCalc
// viewer", §4.3). Writes CSV (time, I, Q) and a simple two-column
// spectrum format any plotting tool ingests.
#pragma once

#include <string>

#include "dsp/spectrum.h"
#include "dsp/types.h"

namespace wlansim::sim {

/// Write samples as CSV: `time_s,i,q` rows with a header line.
/// Throws std::runtime_error on I/O failure.
void write_waveform_csv(const std::string& path,
                        std::span<const dsp::Cplx> samples,
                        double sample_rate_hz);

/// Write a PSD as CSV: `freq_hz,power_dbm` rows with a header line.
void write_psd_csv(const std::string& path, const dsp::PsdEstimate& psd,
                   double sample_rate_hz);

/// Read back a waveform CSV written by write_waveform_csv (for tests and
/// for replaying captured stimuli). Throws on parse failure.
dsp::CVec read_waveform_csv(const std::string& path,
                            double* sample_rate_hz = nullptr);

}  // namespace wlansim::sim
