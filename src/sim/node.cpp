#include "sim/node.h"

#include <stdexcept>

namespace wlansim::sim {

Node::Node(std::string name, std::size_t num_in, std::size_t num_out,
           std::size_t interp, std::size_t decim)
    : name_(std::move(name)),
      num_in_(num_in),
      num_out_(num_out),
      interp_(interp),
      decim_(decim) {
  if (interp_ == 0 || decim_ == 0)
    throw std::invalid_argument("Node: zero rate factor");
}

SourceNode::SourceNode(std::string name, dsp::CVec samples)
    : Node(std::move(name), 0, 1), samples_(std::move(samples)) {}

void SourceNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                      std::vector<dsp::CVec>& out) {
  (void)in;
  dsp::CVec& o = out[0];
  for (std::size_t i = 0; i < chunk_; ++i) {
    o.push_back(pos_ < samples_.size() ? samples_[pos_] : dsp::Cplx{0.0, 0.0});
    ++pos_;
  }
}

std::size_t SourceNode::remaining() const {
  return pos_ >= samples_.size() ? 0 : samples_.size() - pos_;
}

SinkNode::SinkNode(std::string name) : Node(std::move(name), 1, 0) {}

void SinkNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                    std::vector<dsp::CVec>& out) {
  (void)out;
  data_.insert(data_.end(), in[0].begin(), in[0].end());
}

AddNode::AddNode(std::string name, std::size_t num_in)
    : Node(std::move(name), num_in, 1) {
  if (num_in < 2) throw std::invalid_argument("AddNode: need >= 2 inputs");
}

void AddNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                   std::vector<dsp::CVec>& out) {
  const std::size_t n = in[0].size();
  dsp::CVec& o = out[0];
  const std::size_t base = o.size();
  o.resize(base + n);
  for (std::size_t i = 0; i < n; ++i) {
    dsp::Cplx acc{0.0, 0.0};
    for (const auto& port : in) acc += port[i];
    o[base + i] = acc;
  }
}

GainNode::GainNode(std::string name, dsp::Cplx gain)
    : Node(std::move(name), 1, 1), gain_(gain) {}

void GainNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                    std::vector<dsp::CVec>& out) {
  for (const dsp::Cplx& v : in[0]) out[0].push_back(gain_ * v);
}

FunctionNode::FunctionNode(std::string name, Fn fn)
    : Node(std::move(name), 1, 1), fn_(std::move(fn)) {}

void FunctionNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                        std::vector<dsp::CVec>& out) {
  const dsp::CVec y = fn_(in[0]);
  if (y.size() != in[0].size())
    throw std::runtime_error("FunctionNode: rate-1 function changed length");
  out[0].insert(out[0].end(), y.begin(), y.end());
}

RfNode::RfNode(std::string name, std::unique_ptr<rf::RfBlock> block)
    : Node(std::move(name), 1, 1), block_(std::move(block)) {
  if (!block_) throw std::invalid_argument("RfNode: null block");
}

void RfNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                  std::vector<dsp::CVec>& out) {
  const dsp::CVec y = block_->process(in[0]);
  out[0].insert(out[0].end(), y.begin(), y.end());
}

namespace {

dsp::RVec resampler_taps(std::size_t factor, double atten_db) {
  const double cutoff = 0.5 / static_cast<double>(factor);
  const double transition = 0.25 * cutoff;
  return dsp::design_kaiser_lowpass(cutoff - transition / 2.0, transition,
                                    atten_db);
}

}  // namespace

UpsampleNode::UpsampleNode(std::string name, std::size_t factor,
                           double atten_db)
    : Node(std::move(name), 1, 1, factor, 1),
      factor_(factor),
      filt_(std::make_unique<dsp::FirFilter>(resampler_taps(factor, atten_db))) {
  if (factor == 0) throw std::invalid_argument("UpsampleNode: zero factor");
}

void UpsampleNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                        std::vector<dsp::CVec>& out) {
  const double scale = static_cast<double>(factor_);
  for (const dsp::Cplx& v : in[0]) {
    out[0].push_back(filt_->step(scale * v));
    for (std::size_t k = 1; k < factor_; ++k)
      out[0].push_back(filt_->step(dsp::Cplx{0.0, 0.0}));
  }
}

DownsampleNode::DownsampleNode(std::string name, std::size_t factor,
                               double atten_db)
    : Node(std::move(name), 1, 1, 1, factor),
      factor_(factor),
      filt_(std::make_unique<dsp::FirFilter>(resampler_taps(factor, atten_db))) {
  if (factor == 0) throw std::invalid_argument("DownsampleNode: zero factor");
}

void DownsampleNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                          std::vector<dsp::CVec>& out) {
  for (const dsp::Cplx& v : in[0]) {
    const dsp::Cplx y = filt_->step(v);
    if (phase_ == 0) out[0].push_back(y);
    phase_ = (phase_ + 1) % factor_;
  }
}

DecimateNode::DecimateNode(std::string name, std::size_t factor)
    : Node(std::move(name), 1, 1, 1, factor), factor_(factor) {
  if (factor == 0) throw std::invalid_argument("DecimateNode: zero factor");
}

void DecimateNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                        std::vector<dsp::CVec>& out) {
  for (const dsp::Cplx& v : in[0]) {
    if (phase_ == 0) out[0].push_back(v);
    phase_ = (phase_ + 1) % factor_;
  }
}

ProbeNode::ProbeNode(std::string name) : Node(std::move(name), 1, 1) {}

void ProbeNode::fire(const std::vector<std::span<const dsp::Cplx>>& in,
                     std::vector<dsp::CVec>& out) {
  if (selected_) data_.insert(data_.end(), in[0].begin(), in[0].end());
  out[0].insert(out[0].end(), in[0].begin(), in[0].end());
}

}  // namespace wlansim::sim
