// Co-simulation engine: runs the analog RF subsystem at a fine "analog
// solver" timestep synchronized sample-by-sample with the system-rate
// dataflow side — the C++ stand-in for the SPW <-> AMS Designer
// co-simulation the paper evaluates (§4.3, §5.3).
//
// Two properties of the real tool chain are reproduced deliberately:
//  * cost — every system-rate sample triggers an event synchronization and
//    `analog_oversample` fine-step evaluations of the full analog model,
//    which is why the paper measures co-simulation 30-40x slower than the
//    pure system simulation (Table 2);
//  * the noise-function gap — AMS Designer 2.0 ignored the Verilog-A
//    white_noise/flicker_noise functions in transient analysis (§4.3), so
//    co-simulated BER came out optimistic (§5.1). The same limitation is
//    the default here and can be lifted like the paper's proposed fix.
#pragma once

#include "dsp/rng.h"
#include "rf/receiver_chain.h"

namespace wlansim::sim {

struct CosimConfig {
  /// Fine analog steps per system-rate sample. The default resolves ~0.1 ns
  /// dynamics from the 80 Msps boundary — an analog transient of a 2.6 GHz
  /// front-end must step at a fraction of the carrier period, which is
  /// precisely why the paper measured co-simulation 30-40x slower.
  std::size_t analog_oversample = 128;
  /// Whether the analog transient supports the noise functions. AMS 2.0
  /// did not; enabling this models the paper's "insert noise functionality
  /// ... by using Verilog-AMS random functions" workaround.
  bool supports_noise_functions = false;
  /// Extra per-sample synchronization work (number of handshake
  /// operations) to model the simulator-coupling (VPI) overhead.
  std::size_t sync_overhead_ops = 256;
};

/// Drop-in replacement for rf::DoubleConversionReceiver that evaluates the
/// same front-end through the co-simulation path: first-order-hold
/// interpolation to the fine timestep, full analog evaluation per fine
/// step, decimation back to the system rate.
class CosimRfReceiver : public rf::RfBlock {
 public:
  CosimRfReceiver(const rf::DoubleConversionConfig& rf_cfg,
                  const CosimConfig& cosim_cfg, dsp::Rng rng);

  dsp::CVec process(std::span<const dsp::Cplx> in) override;
  void reset() override;
  std::string name() const override { return "cosim_rf_rx"; }

  const CosimConfig& cosim_config() const { return cfg_; }

  /// Number of analog fine-step evaluations performed so far.
  std::size_t analog_steps() const { return analog_steps_; }

 private:
  CosimConfig cfg_;
  std::unique_ptr<rf::DoubleConversionReceiver> analog_;
  dsp::Cplx prev_in_{0.0, 0.0};
  std::size_t analog_steps_ = 0;
  volatile double sync_sink_ = 0.0;  ///< defeats optimizing the handshake away
};

}  // namespace wlansim::sim
