#include "sim/waveio.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::sim {

void write_waveform_csv(const std::string& path,
                        std::span<const dsp::Cplx> samples,
                        double sample_rate_hz) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("write_waveform_csv: bad sample rate");
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_waveform_csv: cannot open " + path);
  os << "time_s,i,q\n";
  os.precision(12);
  const double ts = 1.0 / sample_rate_hz;
  for (std::size_t n = 0; n < samples.size(); ++n) {
    os << static_cast<double>(n) * ts << ',' << samples[n].real() << ','
       << samples[n].imag() << '\n';
  }
  if (!os) throw std::runtime_error("write_waveform_csv: write failed");
}

void write_psd_csv(const std::string& path, const dsp::PsdEstimate& psd,
                   double sample_rate_hz) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_psd_csv: cannot open " + path);
  os << "freq_hz,power_dbm\n";
  os.precision(10);
  for (std::size_t i = 0; i < psd.size(); ++i) {
    os << psd.freq_norm[i] * sample_rate_hz << ','
       << dsp::watts_to_dbm(std::max(psd.power[i], 1e-30)) << '\n';
  }
  if (!os) throw std::runtime_error("write_psd_csv: write failed");
}

dsp::CVec read_waveform_csv(const std::string& path, double* sample_rate_hz) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_waveform_csv: cannot open " + path);
  std::string line;
  if (!std::getline(is, line) || line.rfind("time_s", 0) != 0)
    throw std::runtime_error("read_waveform_csv: bad header in " + path);

  dsp::CVec out;
  double t0 = 0.0, t1 = 0.0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    double t, i, q;
    char c1, c2;
    if (!(ls >> t >> c1 >> i >> c2 >> q) || c1 != ',' || c2 != ',')
      throw std::runtime_error("read_waveform_csv: bad row: " + line);
    if (out.empty()) t0 = t;
    if (out.size() == 1) t1 = t;
    out.emplace_back(i, q);
  }
  if (sample_rate_hz != nullptr) {
    *sample_rate_hz = (out.size() >= 2 && t1 > t0) ? 1.0 / (t1 - t0) : 0.0;
  }
  (void)t0;
  return out;
}

}  // namespace wlansim::sim
