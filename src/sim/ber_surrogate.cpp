#include "sim/ber_surrogate.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace wlansim::sim {

namespace {

/// Log-domain value of an error-rate knot. Zero-count knots (no observed
/// errors) are floored at half an event over the observed sample so the
/// log is finite — the standard "rule of half" continuity correction.
double log_rate(double rate, std::uint64_t trials) {
  const double floor = 0.5 / static_cast<double>(std::max<std::uint64_t>(trials, 1));
  return std::log(std::max(rate, floor));
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace

std::string_view surrogate_axis_name(SurrogateAxis axis) {
  switch (axis) {
    case SurrogateAxis::kSnrDb: return "snr_db";
    case SurrogateAxis::kRxPowerDbm: return "rx_power_dbm";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Interpolation
// ---------------------------------------------------------------------------

double monotone_interp(std::span<const double> xs, std::span<const double> ys,
                       double x) {
  const std::size_t n = xs.size();
  if (n < 2 || ys.size() != n) {
    throw std::invalid_argument("monotone_interp: need >= 2 matching knots");
  }
  if (x < xs.front() || x > xs.back()) {
    throw std::invalid_argument("monotone_interp: x outside knot range");
  }

  // Bracketing interval [i, i+1].
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(xs.begin(), xs.end(), x) - xs.begin());
  if (i > 0) --i;
  if (i >= n - 1) i = n - 2;

  auto secant = [&](std::size_t k) { return (ys[k + 1] - ys[k]) / (xs[k + 1] - xs[k]); };

  // Fritsch–Butland tangent at an interior knot k: the weighted harmonic
  // mean of the adjacent secants when they agree in sign, zero at local
  // extrema. Keeps d/delta within [0, 3] — the Fritsch–Carlson monotone
  // region — so the Hermite piece can neither overshoot nor oscillate.
  auto tangent = [&](std::size_t k) -> double {
    if (k == 0) return secant(0);
    if (k == n - 1) return secant(n - 2);
    const double d0 = secant(k - 1);
    const double d1 = secant(k);
    if (d0 * d1 <= 0.0) return 0.0;
    const double h0 = xs[k] - xs[k - 1];
    const double h1 = xs[k + 1] - xs[k];
    return 3.0 * (h0 + h1) / ((2.0 * h1 + h0) / d0 + (h1 + 2.0 * h0) / d1);
  };

  const double h = xs[i + 1] - xs[i];
  const double t = (x - xs[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * ys[i] + h10 * h * tangent(i) + h01 * ys[i + 1] +
         h11 * h * tangent(i + 1);
}

double eesm_effective_snr_db(std::span<const double> subcarrier_snr_db,
                             double beta) {
  if (subcarrier_snr_db.empty()) {
    throw std::invalid_argument("eesm_effective_snr_db: empty SNR span");
  }
  if (!(beta > 0.0)) {
    throw std::invalid_argument("eesm_effective_snr_db: beta must be > 0");
  }
  // eff = -beta * ln( mean_k exp(-snr_k / beta) ), in linear power.
  // Evaluated via log-sum-exp so one deeply-faded (or very strong)
  // subcarrier cannot underflow the whole mean to zero.
  double m = -std::numeric_limits<double>::infinity();
  for (double s_db : subcarrier_snr_db) {
    m = std::max(m, -std::pow(10.0, s_db / 10.0) / beta);
  }
  double acc = 0.0;
  for (double s_db : subcarrier_snr_db) {
    acc += std::exp(-std::pow(10.0, s_db / 10.0) / beta - m);
  }
  const double log_mean =
      m + std::log(acc / static_cast<double>(subcarrier_snr_db.size()));
  const double eff_lin = -beta * log_mean;
  return 10.0 * std::log10(eff_lin);
}

// ---------------------------------------------------------------------------
// CalibrationCurve
// ---------------------------------------------------------------------------

bool CalibrationCurve::covers(double x) const {
  if (points.empty()) return false;
  for (const CalibrationPoint& p : points) {
    if (std::abs(p.x - x) <= kKnotTol) return true;
  }
  if (x < points.front().x || x > points.back().x) return false;
  auto hi = std::lower_bound(
      points.begin(), points.end(), x,
      [](const CalibrationPoint& p, double v) { return p.x < v; });
  auto lo = hi - 1;
  return (hi->x - lo->x) <= max_gap + kKnotTol;
}

SurrogateQuery CalibrationCurve::query(double x) const {
  for (const CalibrationPoint& p : points) {
    if (std::abs(p.x - x) <= kKnotTol) {
      // Knot hit: hand back the stored measurement exactly.
      return SurrogateQuery{p.ber, p.ber_ci_rel, p.per, p.evm};
    }
  }
  if (!covers(x)) {
    throw std::out_of_range("CalibrationCurve::query: x not covered; "
                            "check covers() before querying");
  }

  const std::size_t n = points.size();
  std::vector<double> xs(n), lber(n), lper(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = points[i].x;
    lber[i] = log_rate(points[i].ber, points[i].bits);
    lper[i] = log_rate(points[i].per, points[i].packets);
  }

  auto hi = std::lower_bound(
      points.begin(), points.end(), x,
      [](const CalibrationPoint& p, double v) { return p.x < v; });
  const std::size_t i1 = static_cast<std::size_t>(hi - points.begin());
  const std::size_t i0 = i1 - 1;
  const CalibrationPoint& a = points[i0];
  const CalibrationPoint& b = points[i1];

  SurrogateQuery q;
  // Two flooredly-zero knots bracket genuinely error-free territory:
  // report zero, not the floor artifact.
  q.ber = (a.ber == 0.0 && b.ber == 0.0)
              ? 0.0
              : std::exp(monotone_interp(xs, lber, x));
  q.per = (a.per == 0.0 && b.per == 0.0)
              ? 0.0
              : std::exp(monotone_interp(xs, lper, x));
  const double t = (x - a.x) / (b.x - a.x);
  q.evm = lerp(a.evm, b.evm, t);
  // Conservative CI: an interpolated value cannot be known more tightly
  // than the looser of the measurements it sits between.
  q.ber_ci_rel = std::max(a.ber_ci_rel, b.ber_ci_rel);
  return q;
}

void CalibrationCurve::merge_point(const CalibrationPoint& p) {
  auto it = std::lower_bound(
      points.begin(), points.end(), p.x - kKnotTol,
      [](const CalibrationPoint& q, double v) { return q.x < v; });
  if (it != points.end() && std::abs(it->x - p.x) <= kKnotTol) {
    *it = p;
    return;
  }
  points.insert(it, p);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

std::string hex_encode(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

bool hex_decode(std::string_view hex, std::string& out) {
  if (hex.size() % 2 != 0) return false;
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hiv = nib(hex[i]);
    const int lov = nib(hex[i + 1]);
    if (hiv < 0 || lov < 0) return false;
    out.push_back(static_cast<char>((hiv << 4) | lov));
  }
  return true;
}

// C99 hex-float: every finite double round-trips bit-exactly, and
// infinities (an unconverged knot's ber_ci_rel) print/parse as "inf".
void append_double(std::string& s, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  s += buf;
}

bool parse_double(std::string_view tok, double& out) {
  if (tok.empty()) return false;
  std::string z(tok);
  char* end = nullptr;
  out = std::strtod(z.c_str(), &end);
  return end == z.c_str() + z.size();
}

bool parse_u64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  std::string z(tok);
  char* end = nullptr;
  out = std::strtoull(z.c_str(), &end, 10);
  return end == z.c_str() + z.size();
}

constexpr std::string_view kMagic = "wlansim-calib v1";

}  // namespace

std::string serialize_curve(const CalibrationCurve& curve) {
  std::string s;
  s.reserve(256 + curve.points.size() * 160);
  s += kMagic;
  s += '\n';
  s += "axis ";
  s += surrogate_axis_name(curve.axis);
  s += '\n';
  s += "fingerprint ";
  s += hex_encode(curve.fingerprint);
  s += '\n';
  s += "rule ";
  append_double(s, curve.target_rel_ci);
  s += ' ';
  append_double(s, curve.confidence_z);
  s += ' ';
  s += std::to_string(curve.min_errors);
  s += ' ';
  s += std::to_string(curve.min_packets);
  s += ' ';
  s += std::to_string(curve.max_packets);
  s += '\n';
  s += "max_gap ";
  append_double(s, curve.max_gap);
  s += '\n';
  s += "points ";
  s += std::to_string(curve.points.size());
  s += '\n';
  for (const CalibrationPoint& p : curve.points) {
    s += "point ";
    append_double(s, p.x);
    s += ' ';
    append_double(s, p.ber);
    s += ' ';
    append_double(s, p.ber_ci_rel);
    s += ' ';
    append_double(s, p.per);
    s += ' ';
    append_double(s, p.evm);
    s += ' ';
    s += std::to_string(p.bits);
    s += ' ';
    s += std::to_string(p.bit_errors);
    s += ' ';
    s += std::to_string(p.packets);
    s += ' ';
    s += p.converged ? '1' : '0';
    s += '\n';
  }
  return s;
}

std::optional<CalibrationCurve> parse_curve(
    std::string_view text, std::string_view expected_fingerprint) {
  std::istringstream in{std::string(text)};
  std::string line;

  if (!std::getline(in, line) || line != kMagic) return std::nullopt;

  auto fields = [](const std::string& l) {
    std::vector<std::string> out;
    std::istringstream ls(l);
    std::string tok;
    while (ls >> tok) out.push_back(tok);
    return out;
  };

  CalibrationCurve c;

  if (!std::getline(in, line)) return std::nullopt;
  {
    auto f = fields(line);
    if (f.size() != 2 || f[0] != "axis") return std::nullopt;
    if (f[1] == surrogate_axis_name(SurrogateAxis::kSnrDb)) {
      c.axis = SurrogateAxis::kSnrDb;
    } else if (f[1] == surrogate_axis_name(SurrogateAxis::kRxPowerDbm)) {
      c.axis = SurrogateAxis::kRxPowerDbm;
    } else {
      return std::nullopt;
    }
  }

  if (!std::getline(in, line)) return std::nullopt;
  {
    auto f = fields(line);
    if (f.empty() || f[0] != "fingerprint" || f.size() > 2) return std::nullopt;
    if (!hex_decode(f.size() == 2 ? f[1] : "", c.fingerprint)) return std::nullopt;
  }
  if (!expected_fingerprint.empty() && c.fingerprint != expected_fingerprint) {
    return std::nullopt;  // hash collision or foreign file: a miss, not data
  }

  if (!std::getline(in, line)) return std::nullopt;
  {
    auto f = fields(line);
    if (f.size() != 6 || f[0] != "rule") return std::nullopt;
    if (!parse_double(f[1], c.target_rel_ci) ||
        !parse_double(f[2], c.confidence_z) ||
        !parse_u64(f[3], c.min_errors) || !parse_u64(f[4], c.min_packets) ||
        !parse_u64(f[5], c.max_packets)) {
      return std::nullopt;
    }
  }

  if (!std::getline(in, line)) return std::nullopt;
  {
    auto f = fields(line);
    if (f.size() != 2 || f[0] != "max_gap" || !parse_double(f[1], c.max_gap)) {
      return std::nullopt;
    }
  }

  if (!std::getline(in, line)) return std::nullopt;
  std::uint64_t n = 0;
  {
    auto f = fields(line);
    if (f.size() != 2 || f[0] != "points" || !parse_u64(f[1], n)) {
      return std::nullopt;
    }
  }

  c.points.reserve(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    if (!std::getline(in, line)) return std::nullopt;
    auto f = fields(line);
    if (f.size() != 10 || f[0] != "point") return std::nullopt;
    CalibrationPoint p;
    std::uint64_t conv = 0;
    if (!parse_double(f[1], p.x) || !parse_double(f[2], p.ber) ||
        !parse_double(f[3], p.ber_ci_rel) || !parse_double(f[4], p.per) ||
        !parse_double(f[5], p.evm) || !parse_u64(f[6], p.bits) ||
        !parse_u64(f[7], p.bit_errors) || !parse_u64(f[8], p.packets) ||
        !parse_u64(f[9], conv) || conv > 1) {
      return std::nullopt;
    }
    p.converged = conv == 1;
    if (!c.points.empty() && !(p.x > c.points.back().x)) {
      return std::nullopt;  // must be strictly ascending
    }
    c.points.push_back(p);
  }
  return c;
}

// ---------------------------------------------------------------------------
// CalibrationStore
// ---------------------------------------------------------------------------

std::string CalibrationStore::key_hex(std::string_view fingerprint) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::filesystem::path CalibrationStore::path_for(
    std::string_view fingerprint) const {
  return dir_ / (key_hex(fingerprint) + ".calib");
}

std::optional<CalibrationCurve> CalibrationStore::load(
    std::string_view fingerprint) const {
  if (fingerprint.empty()) return std::nullopt;
  std::ifstream in(path_for(fingerprint), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return parse_curve(buf.str(), fingerprint);
}

namespace {

/// One atomic tmp+rename publish attempt. Unique temp name per writer so
/// two processes calibrating the same key never interleave writes; rename()
/// then publishes whole files only.
bool save_attempt(const std::filesystem::path& dir,
                  const std::filesystem::path& final_path,
                  const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  static std::atomic<unsigned> counter{0};
  std::filesystem::path tmp = final_path;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << payload;
    out.flush();
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

bool CalibrationStore::save(const CalibrationCurve& curve) const {
  if (curve.fingerprint.empty()) return false;
  const std::filesystem::path final_path = path_for(curve.fingerprint);
  const std::string payload = serialize_curve(curve);

  // Bounded retry with exponential backoff. Concurrent daemon shards racing
  // on the same content-addressed key write identical payloads, so
  // last-writer-wins is safe — a transient failure (rename contention,
  // directory creation race, brief EMFILE) should be absorbed here rather
  // than surfaced to a caller that would only retry the identical write.
  constexpr int kAttempts = 5;
  std::chrono::milliseconds backoff{1};
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    if (save_attempt(dir_, final_path, payload)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// BerSurrogate
// ---------------------------------------------------------------------------

const CalibrationCurve* BerSurrogate::lookup(std::string_view fingerprint) {
  if (fingerprint.empty()) return nullptr;
  auto it = curves_.find(fingerprint);
  if (it != curves_.end()) return &it->second;
  std::optional<CalibrationCurve> loaded = store_.load(fingerprint);
  if (!loaded) return nullptr;
  auto [pos, inserted] =
      curves_.emplace(std::string(fingerprint), std::move(*loaded));
  return &pos->second;
}

bool BerSurrogate::put(CalibrationCurve curve) {
  if (!store_.save(curve)) return false;
  std::string key = curve.fingerprint;
  curves_.insert_or_assign(std::move(key), std::move(curve));
  return true;
}

}  // namespace wlansim::sim
