#include "sim/graph.h"

#include <algorithm>
#include <stdexcept>

namespace wlansim::sim {

void Graph::Edge::compact() {
  if (read > 4096 && read > fifo.size() / 2) {
    fifo.erase(fifo.begin(), fifo.begin() + static_cast<std::ptrdiff_t>(read));
    read = 0;
  }
}

std::size_t Graph::node_index(const Node* n) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].get() == n) return i;
  throw std::invalid_argument("Graph: node not owned by this graph");
}

void Graph::connect(Node* src, std::size_t out_port, Node* dst,
                    std::size_t in_port) {
  if (compiled_) throw std::logic_error("Graph: connect after compile");
  const std::size_t si = node_index(src);
  const std::size_t di = node_index(dst);
  if (out_port >= src->num_outputs())
    throw std::invalid_argument("Graph: bad output port on " + src->name());
  if (in_port >= dst->num_inputs())
    throw std::invalid_argument("Graph: bad input port on " + dst->name());
  for (const Edge& e : connections_) {
    if (e.dst == di && e.in_port == in_port)
      throw std::invalid_argument("Graph: input already connected on " +
                                  dst->name());
  }
  connections_.push_back(Edge{si, out_port, di, in_port, {}, 0});
}

void Graph::compile() {
  if (compiled_) return;
  in_edges_.assign(nodes_.size(), {});
  out_edges_.assign(nodes_.size(), {});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    in_edges_[i].assign(nodes_[i]->num_inputs(), SIZE_MAX);
    out_edges_[i].assign(nodes_[i]->num_outputs(), {});
  }
  for (std::size_t e = 0; e < connections_.size(); ++e) {
    const Edge& edge = connections_[e];
    in_edges_[edge.dst][edge.in_port] = e;
    out_edges_[edge.src][edge.out_port].push_back(e);
  }
  // Every input port must be driven.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t p = 0; p < nodes_[i]->num_inputs(); ++p) {
      if (in_edges_[i][p] == SIZE_MAX)
        throw std::logic_error("Graph: unconnected input on " +
                               nodes_[i]->name());
    }
  }

  // Kahn topological sort over node dependencies.
  std::vector<std::size_t> indeg(nodes_.size(), 0);
  for (const Edge& e : connections_) ++indeg[e.dst];
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) queue.push_back(i);
    if (nodes_[i]->num_inputs() == 0) sources_.push_back(i);
  }
  schedule_.clear();
  while (!queue.empty()) {
    const std::size_t n = queue.back();
    queue.pop_back();
    schedule_.push_back(n);
    for (const Edge& e : connections_) {
      if (e.src == n && --indeg[e.dst] == 0) queue.push_back(e.dst);
    }
  }
  if (schedule_.size() != nodes_.size())
    throw std::logic_error("Graph: cycle detected (dataflow must be acyclic)");
  compiled_ = true;
}

bool Graph::fire_node(std::size_t idx, ExecutionMode mode) {
  Node& node = *nodes_[idx];
  if (node.num_inputs() == 0) return false;  // sources are pumped by run()

  // Firings possible: limited by the scarcest input port.
  std::size_t k = SIZE_MAX;
  for (std::size_t p = 0; p < node.num_inputs(); ++p) {
    const Edge& e = connections_[in_edges_[idx][p]];
    k = std::min(k, e.available() / node.decim());
  }
  if (k == 0 || k == SIZE_MAX) return false;
  if (mode == ExecutionMode::kInterpreted) k = 1;

  const std::size_t consume = k * node.decim();
  std::vector<std::span<const dsp::Cplx>> in(node.num_inputs());
  for (std::size_t p = 0; p < node.num_inputs(); ++p) {
    Edge& e = connections_[in_edges_[idx][p]];
    in[p] = std::span<const dsp::Cplx>(e.fifo).subspan(e.read, consume);
  }

  std::vector<dsp::CVec> out(node.num_outputs());
  node.fire(in, out);

  for (std::size_t p = 0; p < node.num_inputs(); ++p) {
    Edge& e = connections_[in_edges_[idx][p]];
    e.read += consume;
    e.compact();
  }
  for (std::size_t p = 0; p < node.num_outputs(); ++p) {
    if (out[p].size() != k * node.interp())
      throw std::runtime_error("Graph: node " + node.name() +
                               " produced a wrong sample count");
    for (std::size_t eidx : out_edges_[idx][p]) {
      Edge& e = connections_[eidx];
      e.fifo.insert(e.fifo.end(), out[p].begin(), out[p].end());
    }
  }
  return true;
}

void Graph::run(ExecutionMode mode, std::size_t chunk, std::size_t tail) {
  compile();
  if (chunk == 0) throw std::invalid_argument("Graph: zero chunk");

  // All sources are pumped uniformly so multi-input nodes never starve:
  // the run length is the longest source plus the flush tail (shorter
  // sources pad with zeros).
  // Run length is measured in base-rate units; a source with rate weight w
  // emits w samples per unit.
  std::size_t total_target = tail;
  for (std::size_t s : sources_) {
    if (auto* src = dynamic_cast<SourceNode*>(nodes_[s].get())) {
      const std::size_t w = src->rate_weight();
      total_target = std::max(total_target, (src->total() + w - 1) / w + tail);
    }
  }

  std::size_t pumped = 0;
  while (pumped < total_target) {
    const std::size_t want = std::min(chunk, total_target - pumped);
    for (std::size_t s : sources_) {
      auto* src = dynamic_cast<SourceNode*>(nodes_[s].get());
      if (src == nullptr) continue;
      src->set_chunk(want * src->rate_weight());
      std::vector<std::span<const dsp::Cplx>> no_in;
      std::vector<dsp::CVec> out(1);
      src->fire(no_in, out);
      for (std::size_t eidx : out_edges_[s][0]) {
        Edge& e = connections_[eidx];
        e.fifo.insert(e.fifo.end(), out[0].begin(), out[0].end());
      }
    }
    pumped += want;
    // Drain: fire nodes in topological order until quiescent.
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t idx : schedule_) {
        while (fire_node(idx, mode)) {
          any = true;
          if (mode == ExecutionMode::kCompiled) break;  // one batch per pass
        }
      }
    }
  }
}

void Graph::reset() {
  for (auto& n : nodes_) n->reset();
  for (Edge& e : connections_) {
    e.fifo.clear();
    e.read = 0;
  }
}

}  // namespace wlansim::sim
