// Calibrated effective-SNR BER surrogate — the model + store half.
//
// A BER query through the full PHY/RF chain costs hundreds of Monte-Carlo
// packets (~100 ms even on the adaptive engine); the surrogate answers the
// same query in microseconds from a calibration curve measured ONCE per
// front-end configuration. The curve maps one swept axis (channel SNR or
// receive power, both in dB) to the link's error statistics, each knot
// carrying the Wilson confidence interval the adaptive MC engine stopped
// at, and lives in a content-addressed on-disk store keyed by the config
// fingerprint (core/fingerprint.h) — so calibration amortizes across
// processes and sessions, not just across one run.
//
// This layer is deliberately link-free: curves, interpolation, the EESM
// effective-SNR reduction, and the store are pure data + filesystem code,
// unit-testable without a WlanLink. The drivers that fill curves by
// running the adaptive MC engine live in core/surrogate.h.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wlansim::sim {

/// Which LinkConfig field a calibration curve sweeps. Everything else is
/// frozen into the curve's fingerprint key.
enum class SurrogateAxis : std::uint8_t {
  kSnrDb = 0,       ///< channel SNR [dB] (LinkConfig::snr_db)
  kRxPowerDbm = 1,  ///< wanted-signal level [dBm] (LinkConfig::rx_power_dbm)
};

std::string_view surrogate_axis_name(SurrogateAxis axis);

/// One calibrated knot: the axis value and the full statistics of the
/// adaptive MC measurement that produced it. The raw counters ride along
/// so a knot is auditable (and so zero-error knots can be floored at half
/// a count when interpolating in the log domain).
struct CalibrationPoint {
  double x = 0.0;  ///< axis value [dB or dBm]
  double ber = 0.0;
  double ber_ci_rel = std::numeric_limits<double>::infinity();
  double per = 0.0;
  double evm = 0.0;
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  std::uint64_t packets = 0;
  bool converged = false;  ///< stopping rule met (vs. ran into the cap)
};

/// Interpolated surrogate answer at one axis value.
struct SurrogateQuery {
  double ber = 0.0;
  double ber_ci_rel = std::numeric_limits<double>::infinity();
  double per = 0.0;
  double evm = 0.0;
};

/// A per-(config fingerprint) calibration curve: knots sorted strictly
/// ascending in x, plus the stopping rule they were measured under.
struct CalibrationCurve {
  SurrogateAxis axis = SurrogateAxis::kSnrDb;
  std::string fingerprint;  ///< raw key bytes (core::surrogate_fingerprint)

  // Stopping rule the knots were calibrated under (metadata: a consumer
  // wanting a tighter CI than this recalibrates rather than trusts).
  double target_rel_ci = 0.0;
  double confidence_z = 0.0;
  std::uint64_t min_errors = 0;
  std::uint64_t min_packets = 0;
  std::uint64_t max_packets = 0;

  /// Widest knot spacing a query may interpolate across [dB]. Gaps wider
  /// than this are treated as uncalibrated territory (covers() == false)
  /// rather than bridged by a long, unsupported interpolation.
  double max_gap = 2.5;

  std::vector<CalibrationPoint> points;  ///< sorted, strictly ascending x

  /// True when `x` lands on a knot or strictly inside a bracketed interval
  /// no wider than max_gap — i.e. query(x) is supported.
  bool covers(double x) const;

  /// Interpolated answer; requires covers(x). On a knot (within tolerance)
  /// the stored values are returned exactly; between knots, BER and PER
  /// interpolate with the monotone log-domain rule (see monotone_interp),
  /// EVM linearly, and the CI conservatively as the wider of the two
  /// bracketing knots' intervals.
  SurrogateQuery query(double x) const;

  /// Insert `p` keeping x-order; a knot within kKnotTol of an existing x
  /// replaces it (re-calibration wins over stale data).
  void merge_point(const CalibrationPoint& p);

  /// Knot-coincidence tolerance on the axis [dB].
  static constexpr double kKnotTol = 1e-6;
};

/// Monotone-shape-preserving piecewise-cubic interpolation (Fritsch–
/// Butland tangents, Hermite evaluation): exact at the knots, never
/// overshoots the bracketing knot values, and monotone wherever the data
/// is. `xs` strictly increasing, `xs.size() == ys.size() >= 2`, and `x`
/// within [xs.front(), xs.back()].
double monotone_interp(std::span<const double> xs, std::span<const double> ys,
                       double x);

/// EESM reduction: collapse per-subcarrier SNRs [dB] to the scalar
/// effective SNR [dB] whose AWGN BER matches the frequency-selective
/// channel's: eff = -beta * ln( mean_k exp(-snr_k / beta) ) in linear
/// power terms. beta > 0 is the per-(rate, constellation) calibration
/// constant; small beta weights the worst subcarriers, large beta
/// approaches the linear mean. Throws on an empty span or beta <= 0.
double eesm_effective_snr_db(std::span<const double> subcarrier_snr_db,
                             double beta);

// ---------------------------------------------------------------------------
// Content-addressed on-disk store
// ---------------------------------------------------------------------------

/// One curve per file under `dir`, named by a 64-bit FNV-1a hash of the
/// fingerprint bytes ("<16 hex>.calib"). The full fingerprint is embedded
/// in the file and verified on load, so a hash collision (or a hand-copied
/// file) reads as a miss, never as wrong data. Writes go through a
/// temp-file + rename, so concurrent writers of the same key leave one
/// complete curve, never a torn one. Every double is serialized as a C99
/// hex-float and round-trips bit-exactly.
class CalibrationStore {
 public:
  explicit CalibrationStore(std::filesystem::path dir) : dir_(std::move(dir)) {}

  const std::filesystem::path& dir() const { return dir_; }

  /// FNV-1a 64-bit hash of the raw fingerprint bytes, as 16 hex digits.
  static std::string key_hex(std::string_view fingerprint);

  std::filesystem::path path_for(std::string_view fingerprint) const;

  /// The stored curve for this exact fingerprint; nullopt when absent,
  /// unreadable, corrupt, or belonging to a different (colliding) key —
  /// every failure mode is a cache miss, never an error.
  std::optional<CalibrationCurve> load(std::string_view fingerprint) const;

  /// Persist `curve` (creating the directory if needed); false on I/O
  /// failure. A cache store must never throw on a full or read-only disk.
  bool save(const CalibrationCurve& curve) const;

 private:
  std::filesystem::path dir_;
};

/// Serialized curve text (exposed for tests; the store's file payload).
std::string serialize_curve(const CalibrationCurve& curve);

/// Parse a serialized curve; nullopt on any malformed input. When
/// `expected_fingerprint` is non-empty the embedded fingerprint must match
/// byte-for-byte (the content-address collision guard).
std::optional<CalibrationCurve> parse_curve(
    std::string_view text, std::string_view expected_fingerprint);

// ---------------------------------------------------------------------------
// Query-side cache
// ---------------------------------------------------------------------------

/// A memory-cached view over a CalibrationStore for inner loops that query
/// the same curve millions of times (the co-design loop, the service
/// cache): first lookup of a fingerprint reads the disk, later lookups are
/// a map find. NOTE the cache deliberately does NOT watch the directory —
/// a caller that deletes store files mid-run and wants to observe the miss
/// must invalidate() (the core sweep drivers default to a fresh
/// BerSurrogate per call for exactly this reason).
class BerSurrogate {
 public:
  explicit BerSurrogate(CalibrationStore store) : store_(std::move(store)) {}

  /// The curve for `fingerprint`, loading and caching it on first touch;
  /// nullptr on miss. The pointer stays valid until put()/invalidate().
  const CalibrationCurve* lookup(std::string_view fingerprint);

  /// Save to the store and (on success) replace the cached entry.
  bool put(CalibrationCurve curve);

  void invalidate() { curves_.clear(); }

  const CalibrationStore& store() const { return store_; }

 private:
  CalibrationStore store_;
  std::map<std::string, CalibrationCurve, std::less<>> curves_;
};

}  // namespace wlansim::sim
