// Block-diagram simulation graph with a static topological schedule —
// the "system level simulator" substrate (SPW stand-in).
//
// Two execution modes reproduce the SPW simulation options the paper
// discusses (§4.1: "simulations in interpreted or compiled mode; the
// compiled mode (SPB-C) is suggested for long simulation times"):
//  * kCompiled    — each node fires on whole chunks (batch dispatch);
//  * kInterpreted — one firing at a time (per-firing dispatch overhead,
//                   like an interpreted schematic).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/node.h"

namespace wlansim::sim {

enum class ExecutionMode { kCompiled, kInterpreted };

class Graph {
 public:
  /// Add a node; the graph owns it. Returns a typed handle.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  /// Connect (src, out_port) -> (dst, in_port). Fan-out from one output to
  /// several inputs is allowed; each input accepts exactly one connection.
  void connect(Node* src, std::size_t out_port, Node* dst, std::size_t in_port);

  /// Convenience: SISO chain connection (port 0 -> port 0).
  void connect(Node* src, Node* dst) { connect(src, 0, dst, 0); }

  /// Validate the graph and freeze the schedule. Called automatically by
  /// run(); may be called early to surface wiring errors.
  void compile();

  /// Run until every source is exhausted, then keep pumping zeros for
  /// `tail` extra samples per source to flush filter pipelines.
  void run(ExecutionMode mode = ExecutionMode::kCompiled,
           std::size_t chunk = 512, std::size_t tail = 0);

  /// Reset every node and clear all FIFOs.
  void reset();

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Edge {
    std::size_t src = 0;
    std::size_t out_port = 0;
    std::size_t dst = 0;
    std::size_t in_port = 0;
    dsp::CVec fifo;
    std::size_t read = 0;  ///< consumed prefix

    std::size_t available() const { return fifo.size() - read; }
    void compact();
  };

  /// Fire node `idx` as much as the mode allows; returns true if any
  /// firing happened.
  bool fire_node(std::size_t idx, ExecutionMode mode);

  std::size_t node_index(const Node* n) const;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Edge> connections_;
  /// Per node: input edge index per in-port (exactly one each).
  std::vector<std::vector<std::size_t>> in_edges_;
  /// Per node: list of outgoing edge indices per out-port.
  std::vector<std::vector<std::vector<std::size_t>>> out_edges_;
  std::vector<std::size_t> schedule_;  ///< topological node order
  std::vector<std::size_t> sources_;
  bool compiled_ = false;
};

}  // namespace wlansim::sim
