// Dataflow nodes for the block-diagram simulation framework — the C++
// stand-in for SPW's schematic blocks. Nodes are synchronous-dataflow
// actors with integer rate changes: one firing consumes `decim` samples
// per input port and produces `interp` samples per output port.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsp/fir.h"
#include "dsp/types.h"
#include "rf/rfblock.h"

namespace wlansim::sim {

class Node {
 public:
  Node(std::string name, std::size_t num_in, std::size_t num_out,
       std::size_t interp = 1, std::size_t decim = 1);
  virtual ~Node() = default;

  const std::string& name() const { return name_; }
  std::size_t num_inputs() const { return num_in_; }
  std::size_t num_outputs() const { return num_out_; }
  std::size_t interp() const { return interp_; }
  std::size_t decim() const { return decim_; }

  /// One firing: each `in` span holds k * decim() samples; append
  /// k * interp() samples to each entry of `out`.
  virtual void fire(const std::vector<std::span<const dsp::Cplx>>& in,
                    std::vector<dsp::CVec>& out) = 0;

  virtual void reset() {}

 private:
  std::string name_;
  std::size_t num_in_, num_out_;
  std::size_t interp_, decim_;
};

/// Source: emits a prepared buffer chunk by chunk, then zeros.
class SourceNode : public Node {
 public:
  SourceNode(std::string name, dsp::CVec samples);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override { pos_ = 0; }

  /// Samples remaining before the source pads with zeros.
  std::size_t remaining() const;

  /// Total samples in the prepared buffer.
  std::size_t total() const { return samples_.size(); }

  /// The graph asks the source for `n` samples per pump; tracked here.
  void set_chunk(std::size_t n) { chunk_ = n; }
  std::size_t chunk() const { return chunk_; }

  /// Samples this source emits per base-rate pump unit. A source feeding an
  /// already-oversampled branch (e.g. an interferer generated at 4x the
  /// system rate) sets the oversampling factor here so every branch of the
  /// graph advances in lock-step.
  void set_rate_weight(std::size_t w) { rate_weight_ = w == 0 ? 1 : w; }
  std::size_t rate_weight() const { return rate_weight_; }

 private:
  dsp::CVec samples_;
  std::size_t pos_ = 0;
  std::size_t chunk_ = 256;
  std::size_t rate_weight_ = 1;
};

/// Sink: collects everything it receives.
class SinkNode : public Node {
 public:
  explicit SinkNode(std::string name);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override { data_.clear(); }

  const dsp::CVec& data() const { return data_; }

 private:
  dsp::CVec data_;
};

/// Elementwise sum of all inputs.
class AddNode : public Node {
 public:
  AddNode(std::string name, std::size_t num_in);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
};

/// Multiply by a constant (the paper's "input and output level ... adapted
/// with constant multipliers", §4.1).
class GainNode : public Node {
 public:
  GainNode(std::string name, dsp::Cplx gain);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;

 private:
  dsp::Cplx gain_;
};

/// SISO node from a lambda over whole chunks.
class FunctionNode : public Node {
 public:
  using Fn = std::function<dsp::CVec(std::span<const dsp::Cplx>)>;
  FunctionNode(std::string name, Fn fn);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;

 private:
  Fn fn_;
};

/// Adapter: runs any rf::RfBlock inside the dataflow graph.
class RfNode : public Node {
 public:
  RfNode(std::string name, std::unique_ptr<rf::RfBlock> block);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override { block_->reset(); }

  rf::RfBlock& block() { return *block_; }

 private:
  std::unique_ptr<rf::RfBlock> block_;
};

/// Streaming integer upsampler (zero-stuff + image-reject lowpass).
class UpsampleNode : public Node {
 public:
  UpsampleNode(std::string name, std::size_t factor, double atten_db = 60.0);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override { filt_->reset(); }

 private:
  std::size_t factor_;
  std::unique_ptr<dsp::FirFilter> filt_;
};

/// Streaming integer downsampler (anti-alias lowpass + decimate).
class DownsampleNode : public Node {
 public:
  DownsampleNode(std::string name, std::size_t factor, double atten_db = 60.0);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override {
    filt_->reset();
    phase_ = 0;
  }

 private:
  std::size_t factor_;
  std::unique_ptr<dsp::FirFilter> filt_;
  std::size_t phase_ = 0;
};

/// Raw decimator with NO anti-alias filter: models the ADC sampling the
/// analog output at the system rate. Whatever the analog channel-select
/// filter failed to remove aliases into band — the physical mechanism
/// behind the Fig. 5 wide-filter BER degradation.
class DecimateNode : public Node {
 public:
  DecimateNode(std::string name, std::size_t factor);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override { phase_ = 0; }

 private:
  std::size_t factor_;
  std::size_t phase_ = 0;
};

/// Pass-through probe that records its input when selected — the paper
/// notes probes must be deselectable "to avoid a data overload" (§5.1).
class ProbeNode : public Node {
 public:
  explicit ProbeNode(std::string name);

  void fire(const std::vector<std::span<const dsp::Cplx>>& in,
            std::vector<dsp::CVec>& out) override;
  void reset() override { data_.clear(); }

  void select(bool on) { selected_ = on; }
  bool selected() const { return selected_; }
  const dsp::CVec& data() const { return data_; }

 private:
  bool selected_ = true;
  dsp::CVec data_;
};

}  // namespace wlansim::sim
