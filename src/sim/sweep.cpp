#include "sim/sweep.h"

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace wlansim::sim {

std::vector<double> SweepResult::column(const std::string& key) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const SweepRow& r : rows) {
    const auto it = r.results.find(key);
    if (it == r.results.end())
      throw std::invalid_argument("SweepResult: no column " + key);
    out.push_back(it->second);
  }
  return out;
}

namespace {

std::vector<std::string> all_keys(const std::vector<SweepRow>& rows) {
  std::set<std::string> keys;
  for (const SweepRow& r : rows)
    for (const auto& [k, v] : r.results) keys.insert(k);
  return {keys.begin(), keys.end()};
}

}  // namespace

std::string SweepResult::to_table() const {
  const auto keys = all_keys(rows);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << param_name;
  for (const auto& k : keys) os << '\t' << k;
  os << '\n';
  for (const SweepRow& r : rows) {
    os << r.value;
    for (const auto& k : keys) {
      const auto it = r.results.find(k);
      os << '\t' << (it != r.results.end() ? it->second : std::nan(""));
    }
    os << '\n';
  }
  return os.str();
}

std::string SweepResult::to_csv() const {
  const auto keys = all_keys(rows);
  std::ostringstream os;
  os.precision(10);
  os << param_name;
  for (const auto& k : keys) os << ',' << k;
  os << '\n';
  for (const SweepRow& r : rows) {
    os << r.value;
    for (const auto& k : keys) {
      const auto it = r.results.find(k);
      os << ',' << (it != r.results.end() ? it->second : std::nan(""));
    }
    os << '\n';
  }
  return os.str();
}

SweepResult run_sweep(
    const std::string& param_name, const std::vector<double>& values,
    const std::function<std::map<std::string, double>(double)>& fn) {
  SweepResult out;
  out.param_name = param_name;
  out.rows.reserve(values.size());
  for (double v : values) {
    out.rows.push_back(SweepRow{v, fn(v)});
  }
  return out;
}

double wilson_halfwidth(std::size_t errors, std::size_t trials, double z) {
  if (trials == 0) return std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(errors) / n;
  const double z2 = z * z;
  return z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) /
         (1.0 + z2 / n);
}

double wilson_rel_halfwidth(std::size_t errors, std::size_t trials, double z) {
  if (errors == 0 || trials == 0)
    return std::numeric_limits<double>::infinity();
  const double p = static_cast<double>(errors) / static_cast<double>(trials);
  return wilson_halfwidth(errors, trials, z) / p;
}

bool stopping_rule_met(const StoppingRule& rule, std::size_t packets,
                       std::size_t bit_errors, std::size_t bits) {
  if (rule.target_rel_ci <= 0.0) return false;
  if (packets < rule.min_packets || bit_errors < rule.min_errors) return false;
  return wilson_rel_halfwidth(bit_errors, bits, rule.confidence_z) <=
         rule.target_rel_ci;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("linspace: n must be >= 1");
  std::vector<double> out(n);
  if (n == 1) {
    out[0] = lo;
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("logspace: bounds must be positive");
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), n);
  for (double& v : out) v = std::pow(10.0, v);
  return out;
}

}  // namespace wlansim::sim
