// Decibel / power conversions and small numeric helpers used across the
// RF and PHY libraries. All power quantities are in watts unless the name
// says otherwise; all voltages are normalized to a 1-ohm system, so
// power == mean |x|^2.
#pragma once

#include <span>

#include "dsp/types.h"

namespace wlansim::dsp {

/// Convert a power ratio to decibels.
double to_db(double ratio);

/// Convert decibels to a power ratio.
double from_db(double db);

/// Convert a power in watts to dBm.
double watts_to_dbm(double watts);

/// Convert a power in dBm to watts.
double dbm_to_watts(double dbm);

/// Mean power (mean |x|^2) of a complex signal; 0 for an empty span.
double mean_power(std::span<const Cplx> x);

/// Mean power of a real signal; 0 for an empty span.
double mean_power_real(std::span<const double> x);

/// Root-mean-square amplitude of a complex signal.
double rms(std::span<const Cplx> x);

/// Scale a signal in place so its mean power equals `target_watts`.
/// A zero-power input is left untouched.
void set_mean_power(std::span<Cplx> x, double target_watts);

/// Normalized sinc: sin(pi x) / (pi x), with sinc(0) == 1.
double sinc(double x);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Modified Bessel function of the first kind, order zero (series
/// expansion); used by the Kaiser window.
double bessel_i0(double x);

/// Wrap an angle to (-pi, pi].
double wrap_phase(double phi);

}  // namespace wlansim::dsp
