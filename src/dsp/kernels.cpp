#include "dsp/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace wlansim::dsp::kernels {

namespace ref {
#include "dsp/kernels_impl.inc"
}  // namespace ref

#ifdef WLANSIM_HAVE_NATIVE
namespace native {
// Defined in kernels_native.cpp (compiled -march=native -ffp-contract=off).
void mix_const_lo(const Cplx* in, std::size_t n, Cplx lo, const MixParams& p,
                  Cplx* out);
void mix_phase(const Cplx* in, const double* phase, std::size_t n,
               const MixParams& p, Cplx* out);
std::size_t fir_stream(const double* taps, std::size_t ntaps, Cplx* delay,
                       std::size_t pos, const Cplx* in, std::size_t m,
                       Cplx* out);
std::size_t fir_stream_decim(const double* taps, std::size_t ntaps,
                             Cplx* delay, std::size_t pos, const Cplx* in,
                             std::size_t m, std::size_t decim, Cplx* out);
void fir_interp(const double* taps, std::size_t ntaps, std::size_t os,
                const Cplx* src, std::size_t nsrc, double scale, Cplx* out,
                std::size_t nout);
void fft_butterflies_batch(Cplx* x, std::size_t rows, std::size_t n,
                           const Cplx* twiddle);
void cfir_conv(const Cplx* taps, std::size_t ntaps, const Cplx* in,
               std::size_t n, Cplx* out);
double power_sum(const Cplx* x, std::size_t n);
void evm_accum(const Cplx* rx, const Cplx* ref, std::size_t n, double* err,
               double* ref_pow);
void xcorr_accum(const Cplx* x, const Cplx* ref, std::size_t n, double* re,
                 double* im);
void scale(double* x, std::size_t n, double s);
void add_scaled_pairs(Cplx* a, std::size_t n, double s, const double* units);
void quantize_clamp(const Cplx* in, std::size_t n, double inv_step,
                    double step, double fs, Cplx* out);
void lanes_pack(const Cplx* src, std::size_t n, std::size_t nl,
                std::size_t lane, double* soa);
void lanes_unpack(const double* soa, std::size_t n, std::size_t nl,
                  std::size_t lane, Cplx* dst);
void lanes_unpack_decim(const double* soa, std::size_t n, std::size_t nl,
                        std::size_t lane, std::size_t decim, Cplx* dst);
void lanes_add_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                            std::size_t lane, double s, const double* units);
void lanes_write_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                              std::size_t lane, double s0, double s1,
                              const double* units);
void lanes_add_scaled_pairs_multi(double* soa, std::size_t n, std::size_t nl,
                                  double s, const double* const* units);
void lanes_write_scaled_pairs_multi(double* soa, std::size_t n,
                                    std::size_t nl, double s0, double s1,
                                    const double* const* units);
void lanes_add(double* dst, const double* src, std::size_t count);
void lanes_biquad(double* soa, std::size_t n, std::size_t nl, double b0,
                  double b1, double b2, double a1, double a2, double* state);
void lanes_mix_unity_lo(double* soa, std::size_t n, std::size_t nl,
                        const MixParams& p);
void lanes_amp_rapp_p2(double* soa, std::size_t n, std::size_t nl,
                       double lin_gain, double lin_gain2, double inv_vsat2);
void lanes_fir_decim(const double* soa, std::size_t n, std::size_t nl,
                     std::size_t lane, const double* taps, std::size_t ntaps,
                     std::size_t decim, Cplx* out);
bool cpu_supported();
}  // namespace native
#endif

namespace {

struct Table {
  decltype(&ref::mix_const_lo) mix_const_lo = &ref::mix_const_lo;
  decltype(&ref::mix_phase) mix_phase = &ref::mix_phase;
  decltype(&ref::fir_stream) fir_stream = &ref::fir_stream;
  decltype(&ref::fir_stream_decim) fir_stream_decim = &ref::fir_stream_decim;
  decltype(&ref::fir_interp) fir_interp = &ref::fir_interp;
  decltype(&ref::fft_butterflies_batch) fft_butterflies_batch =
      &ref::fft_butterflies_batch;
  decltype(&ref::cfir_conv) cfir_conv = &ref::cfir_conv;
  decltype(&ref::power_sum) power_sum = &ref::power_sum;
  decltype(&ref::evm_accum) evm_accum = &ref::evm_accum;
  decltype(&ref::xcorr_accum) xcorr_accum = &ref::xcorr_accum;
  decltype(&ref::scale) scale = &ref::scale;
  decltype(&ref::add_scaled_pairs) add_scaled_pairs = &ref::add_scaled_pairs;
  decltype(&ref::quantize_clamp) quantize_clamp = &ref::quantize_clamp;
  decltype(&ref::lanes_pack) lanes_pack = &ref::lanes_pack;
  decltype(&ref::lanes_unpack) lanes_unpack = &ref::lanes_unpack;
  decltype(&ref::lanes_unpack_decim) lanes_unpack_decim =
      &ref::lanes_unpack_decim;
  decltype(&ref::lanes_add_scaled_pairs) lanes_add_scaled_pairs =
      &ref::lanes_add_scaled_pairs;
  decltype(&ref::lanes_write_scaled_pairs) lanes_write_scaled_pairs =
      &ref::lanes_write_scaled_pairs;
  decltype(&ref::lanes_add_scaled_pairs_multi) lanes_add_scaled_pairs_multi =
      &ref::lanes_add_scaled_pairs_multi;
  decltype(&ref::lanes_write_scaled_pairs_multi)
      lanes_write_scaled_pairs_multi = &ref::lanes_write_scaled_pairs_multi;
  decltype(&ref::lanes_add) lanes_add = &ref::lanes_add;
  decltype(&ref::lanes_biquad) lanes_biquad = &ref::lanes_biquad;
  decltype(&ref::lanes_mix_unity_lo) lanes_mix_unity_lo =
      &ref::lanes_mix_unity_lo;
  decltype(&ref::lanes_amp_rapp_p2) lanes_amp_rapp_p2 =
      &ref::lanes_amp_rapp_p2;
  decltype(&ref::lanes_fir_decim) lanes_fir_decim = &ref::lanes_fir_decim;
  const char* name = "scalar";
};

// Per-kernel rows of the WLANSIM_LOG_DISPATCH=1 report: name + batch width
// (1 = scalar-sample kernel, kLaneWidth = packet-lane kernel). The dispatch
// target is uniform (the whole table flips to native or none of it does),
// but the report prints it per kernel so a Release bench log pins exactly
// which path produced the numbers.
struct KernelRow {
  const char* kernel;
  std::size_t width;
};

constexpr KernelRow kKernelRows[] = {
    {"mix_const_lo", 1},          {"mix_phase", 1},
    {"fir_stream", 1},            {"fir_stream_decim", 1},
    {"fir_interp", 1},            {"fft_butterflies_batch", 1},
    {"cfir_conv", 1},             {"power_sum", 1},
    {"evm_accum", 1},             {"xcorr_accum", 1},
    {"scale", 1},                 {"add_scaled_pairs", 1},
    {"quantize_clamp", 1},        {"lanes_pack", kLaneWidth},
    {"lanes_unpack", kLaneWidth}, {"lanes_unpack_decim", kLaneWidth},
    {"lanes_add_scaled_pairs", kLaneWidth},
    {"lanes_write_scaled_pairs", kLaneWidth},
    {"lanes_add_scaled_pairs_multi", kLaneWidth},
    {"lanes_write_scaled_pairs_multi", kLaneWidth},
    {"lanes_add", kLaneWidth},    {"lanes_biquad", kLaneWidth},
    {"lanes_mix_unity_lo", kLaneWidth},
    {"lanes_amp_rapp_p2", kLaneWidth},
    {"lanes_fir_decim", kLaneWidth},
};

void log_dispatch(const Table& t) {
  const char* log = std::getenv("WLANSIM_LOG_DISPATCH");
  if (log == nullptr || std::strcmp(log, "1") != 0) return;
  std::fprintf(stderr, "wlansim kernels: dispatch=%s (lane width %zu)\n",
               t.name, kLaneWidth);
  for (const KernelRow& row : kKernelRows)
    std::fprintf(stderr, "wlansim kernels:   %-24s target=%-6s width=%zu\n",
                 row.kernel, t.name, row.width);
}

Table make_table() {
  Table t;
#ifdef WLANSIM_HAVE_NATIVE
  const char* force = std::getenv("WLANSIM_KERNELS");
  const bool want_scalar = force != nullptr && std::strcmp(force, "scalar") == 0;
  if (!want_scalar && native::cpu_supported()) {
    t.mix_const_lo = &native::mix_const_lo;
    t.mix_phase = &native::mix_phase;
    t.fir_stream = &native::fir_stream;
    t.fir_stream_decim = &native::fir_stream_decim;
    t.fir_interp = &native::fir_interp;
    t.fft_butterflies_batch = &native::fft_butterflies_batch;
    t.cfir_conv = &native::cfir_conv;
    t.power_sum = &native::power_sum;
    t.evm_accum = &native::evm_accum;
    t.xcorr_accum = &native::xcorr_accum;
    t.scale = &native::scale;
    t.add_scaled_pairs = &native::add_scaled_pairs;
    t.quantize_clamp = &native::quantize_clamp;
    t.lanes_pack = &native::lanes_pack;
    t.lanes_unpack = &native::lanes_unpack;
    t.lanes_unpack_decim = &native::lanes_unpack_decim;
    t.lanes_add_scaled_pairs = &native::lanes_add_scaled_pairs;
    t.lanes_write_scaled_pairs = &native::lanes_write_scaled_pairs;
    t.lanes_add_scaled_pairs_multi = &native::lanes_add_scaled_pairs_multi;
    t.lanes_write_scaled_pairs_multi = &native::lanes_write_scaled_pairs_multi;
    t.lanes_add = &native::lanes_add;
    t.lanes_biquad = &native::lanes_biquad;
    t.lanes_mix_unity_lo = &native::lanes_mix_unity_lo;
    t.lanes_amp_rapp_p2 = &native::lanes_amp_rapp_p2;
    t.lanes_fir_decim = &native::lanes_fir_decim;
    t.name = "native";
  }
#endif
  log_dispatch(t);
  return t;
}

const Table& table() {
  static const Table t = make_table();
  return t;
}

}  // namespace

void mix_const_lo(const Cplx* in, std::size_t n, Cplx lo, const MixParams& p,
                  Cplx* out) {
  table().mix_const_lo(in, n, lo, p, out);
}

void mix_phase(const Cplx* in, const double* phase, std::size_t n,
               const MixParams& p, Cplx* out) {
  table().mix_phase(in, phase, n, p, out);
}

std::size_t fir_stream(const double* taps, std::size_t ntaps, Cplx* delay,
                       std::size_t pos, const Cplx* in, std::size_t m,
                       Cplx* out) {
  return table().fir_stream(taps, ntaps, delay, pos, in, m, out);
}

std::size_t fir_stream_decim(const double* taps, std::size_t ntaps,
                             Cplx* delay, std::size_t pos, const Cplx* in,
                             std::size_t m, std::size_t decim, Cplx* out) {
  return table().fir_stream_decim(taps, ntaps, delay, pos, in, m, decim, out);
}

void fir_interp(const double* taps, std::size_t ntaps, std::size_t os,
                const Cplx* src, std::size_t nsrc, double scale, Cplx* out,
                std::size_t nout) {
  table().fir_interp(taps, ntaps, os, src, nsrc, scale, out, nout);
}

void fft_butterflies_batch(Cplx* x, std::size_t rows, std::size_t n,
                           const Cplx* twiddle) {
  table().fft_butterflies_batch(x, rows, n, twiddle);
}

void cfir_conv(const Cplx* taps, std::size_t ntaps, const Cplx* in,
               std::size_t n, Cplx* out) {
  table().cfir_conv(taps, ntaps, in, n, out);
}

double power_sum(const Cplx* x, std::size_t n) {
  return table().power_sum(x, n);
}

void evm_accum(const Cplx* rx, const Cplx* ref, std::size_t n, double* err,
               double* ref_pow) {
  table().evm_accum(rx, ref, n, err, ref_pow);
}

void xcorr_accum(const Cplx* x, const Cplx* ref, std::size_t n, double* re,
                 double* im) {
  table().xcorr_accum(x, ref, n, re, im);
}

void scale(double* x, std::size_t n, double s) { table().scale(x, n, s); }

void add_scaled_pairs(Cplx* a, std::size_t n, double s, const double* units) {
  table().add_scaled_pairs(a, n, s, units);
}

void quantize_clamp(const Cplx* in, std::size_t n, double inv_step,
                    double step, double fs, Cplx* out) {
  table().quantize_clamp(in, n, inv_step, step, fs, out);
}

void lanes_pack(const Cplx* src, std::size_t n, std::size_t nl,
                std::size_t lane, double* soa) {
  table().lanes_pack(src, n, nl, lane, soa);
}

void lanes_unpack(const double* soa, std::size_t n, std::size_t nl,
                  std::size_t lane, Cplx* dst) {
  table().lanes_unpack(soa, n, nl, lane, dst);
}

void lanes_unpack_decim(const double* soa, std::size_t n, std::size_t nl,
                        std::size_t lane, std::size_t decim, Cplx* dst) {
  table().lanes_unpack_decim(soa, n, nl, lane, decim, dst);
}

void lanes_add_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                            std::size_t lane, double s, const double* units) {
  table().lanes_add_scaled_pairs(soa, n, nl, lane, s, units);
}

void lanes_write_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                              std::size_t lane, double s0, double s1,
                              const double* units) {
  table().lanes_write_scaled_pairs(soa, n, nl, lane, s0, s1, units);
}

void lanes_add_scaled_pairs_multi(double* soa, std::size_t n, std::size_t nl,
                                  double s, const double* const* units) {
  table().lanes_add_scaled_pairs_multi(soa, n, nl, s, units);
}

void lanes_write_scaled_pairs_multi(double* soa, std::size_t n,
                                    std::size_t nl, double s0, double s1,
                                    const double* const* units) {
  table().lanes_write_scaled_pairs_multi(soa, n, nl, s0, s1, units);
}

void lanes_add(double* dst, const double* src, std::size_t count) {
  table().lanes_add(dst, src, count);
}

void lanes_biquad(double* soa, std::size_t n, std::size_t nl, double b0,
                  double b1, double b2, double a1, double a2, double* state) {
  table().lanes_biquad(soa, n, nl, b0, b1, b2, a1, a2, state);
}

void lanes_mix_unity_lo(double* soa, std::size_t n, std::size_t nl,
                        const MixParams& p) {
  table().lanes_mix_unity_lo(soa, n, nl, p);
}

void lanes_amp_rapp_p2(double* soa, std::size_t n, std::size_t nl,
                       double lin_gain, double lin_gain2, double inv_vsat2) {
  table().lanes_amp_rapp_p2(soa, n, nl, lin_gain, lin_gain2, inv_vsat2);
}

void lanes_fir_decim(const double* soa, std::size_t n, std::size_t nl,
                     std::size_t lane, const double* taps, std::size_t ntaps,
                     std::size_t decim, Cplx* out) {
  table().lanes_fir_decim(soa, n, nl, lane, taps, ntaps, decim, out);
}

const char* active_path() { return table().name; }

std::string impl_name() {
  return std::string(table().name) + " (lane width " +
         std::to_string(kLaneWidth) + ")";
}

}  // namespace wlansim::dsp::kernels
