#include "dsp/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace wlansim::dsp::kernels {

namespace ref {
#include "dsp/kernels_impl.inc"
}  // namespace ref

#ifdef WLANSIM_HAVE_NATIVE
namespace native {
// Defined in kernels_native.cpp (compiled -march=native -ffp-contract=off).
void mix_const_lo(const Cplx* in, std::size_t n, Cplx lo, const MixParams& p,
                  Cplx* out);
void mix_phase(const Cplx* in, const double* phase, std::size_t n,
               const MixParams& p, Cplx* out);
std::size_t fir_stream(const double* taps, std::size_t ntaps, Cplx* delay,
                       std::size_t pos, const Cplx* in, std::size_t m,
                       Cplx* out);
std::size_t fir_stream_decim(const double* taps, std::size_t ntaps,
                             Cplx* delay, std::size_t pos, const Cplx* in,
                             std::size_t m, std::size_t decim, Cplx* out);
void fir_interp(const double* taps, std::size_t ntaps, std::size_t os,
                const Cplx* src, std::size_t nsrc, double scale, Cplx* out,
                std::size_t nout);
void fft_butterflies_batch(Cplx* x, std::size_t rows, std::size_t n,
                           const Cplx* twiddle);
void cfir_conv(const Cplx* taps, std::size_t ntaps, const Cplx* in,
               std::size_t n, Cplx* out);
double power_sum(const Cplx* x, std::size_t n);
void evm_accum(const Cplx* rx, const Cplx* ref, std::size_t n, double* err,
               double* ref_pow);
void xcorr_accum(const Cplx* x, const Cplx* ref, std::size_t n, double* re,
                 double* im);
void scale(double* x, std::size_t n, double s);
void add_scaled_pairs(Cplx* a, std::size_t n, double s, const double* units);
void quantize_clamp(const Cplx* in, std::size_t n, double inv_step,
                    double step, double fs, Cplx* out);
bool cpu_supported();
}  // namespace native
#endif

namespace {

struct Table {
  decltype(&ref::mix_const_lo) mix_const_lo = &ref::mix_const_lo;
  decltype(&ref::mix_phase) mix_phase = &ref::mix_phase;
  decltype(&ref::fir_stream) fir_stream = &ref::fir_stream;
  decltype(&ref::fir_stream_decim) fir_stream_decim = &ref::fir_stream_decim;
  decltype(&ref::fir_interp) fir_interp = &ref::fir_interp;
  decltype(&ref::fft_butterflies_batch) fft_butterflies_batch =
      &ref::fft_butterflies_batch;
  decltype(&ref::cfir_conv) cfir_conv = &ref::cfir_conv;
  decltype(&ref::power_sum) power_sum = &ref::power_sum;
  decltype(&ref::evm_accum) evm_accum = &ref::evm_accum;
  decltype(&ref::xcorr_accum) xcorr_accum = &ref::xcorr_accum;
  decltype(&ref::scale) scale = &ref::scale;
  decltype(&ref::add_scaled_pairs) add_scaled_pairs = &ref::add_scaled_pairs;
  decltype(&ref::quantize_clamp) quantize_clamp = &ref::quantize_clamp;
  const char* name = "scalar";
};

Table make_table() {
  Table t;
#ifdef WLANSIM_HAVE_NATIVE
  const char* force = std::getenv("WLANSIM_KERNELS");
  const bool want_scalar = force != nullptr && std::strcmp(force, "scalar") == 0;
  if (!want_scalar && native::cpu_supported()) {
    t.mix_const_lo = &native::mix_const_lo;
    t.mix_phase = &native::mix_phase;
    t.fir_stream = &native::fir_stream;
    t.fir_stream_decim = &native::fir_stream_decim;
    t.fir_interp = &native::fir_interp;
    t.fft_butterflies_batch = &native::fft_butterflies_batch;
    t.cfir_conv = &native::cfir_conv;
    t.power_sum = &native::power_sum;
    t.evm_accum = &native::evm_accum;
    t.xcorr_accum = &native::xcorr_accum;
    t.scale = &native::scale;
    t.add_scaled_pairs = &native::add_scaled_pairs;
    t.quantize_clamp = &native::quantize_clamp;
    t.name = "native";
  }
#endif
  return t;
}

const Table& table() {
  static const Table t = make_table();
  return t;
}

}  // namespace

void mix_const_lo(const Cplx* in, std::size_t n, Cplx lo, const MixParams& p,
                  Cplx* out) {
  table().mix_const_lo(in, n, lo, p, out);
}

void mix_phase(const Cplx* in, const double* phase, std::size_t n,
               const MixParams& p, Cplx* out) {
  table().mix_phase(in, phase, n, p, out);
}

std::size_t fir_stream(const double* taps, std::size_t ntaps, Cplx* delay,
                       std::size_t pos, const Cplx* in, std::size_t m,
                       Cplx* out) {
  return table().fir_stream(taps, ntaps, delay, pos, in, m, out);
}

std::size_t fir_stream_decim(const double* taps, std::size_t ntaps,
                             Cplx* delay, std::size_t pos, const Cplx* in,
                             std::size_t m, std::size_t decim, Cplx* out) {
  return table().fir_stream_decim(taps, ntaps, delay, pos, in, m, decim, out);
}

void fir_interp(const double* taps, std::size_t ntaps, std::size_t os,
                const Cplx* src, std::size_t nsrc, double scale, Cplx* out,
                std::size_t nout) {
  table().fir_interp(taps, ntaps, os, src, nsrc, scale, out, nout);
}

void fft_butterflies_batch(Cplx* x, std::size_t rows, std::size_t n,
                           const Cplx* twiddle) {
  table().fft_butterflies_batch(x, rows, n, twiddle);
}

void cfir_conv(const Cplx* taps, std::size_t ntaps, const Cplx* in,
               std::size_t n, Cplx* out) {
  table().cfir_conv(taps, ntaps, in, n, out);
}

double power_sum(const Cplx* x, std::size_t n) {
  return table().power_sum(x, n);
}

void evm_accum(const Cplx* rx, const Cplx* ref, std::size_t n, double* err,
               double* ref_pow) {
  table().evm_accum(rx, ref, n, err, ref_pow);
}

void xcorr_accum(const Cplx* x, const Cplx* ref, std::size_t n, double* re,
                 double* im) {
  table().xcorr_accum(x, ref, n, re, im);
}

void scale(double* x, std::size_t n, double s) { table().scale(x, n, s); }

void add_scaled_pairs(Cplx* a, std::size_t n, double s, const double* units) {
  table().add_scaled_pairs(a, n, s, units);
}

void quantize_clamp(const Cplx* in, std::size_t n, double inv_step,
                    double step, double fs, Cplx* out) {
  table().quantize_clamp(in, n, inv_step, step, fs, out);
}

const char* active_path() { return table().name; }

}  // namespace wlansim::dsp::kernels
