// Window functions for FIR design and spectral estimation.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace wlansim::dsp {

enum class WindowType { kRect, kHann, kHamming, kBlackman, kKaiser };

/// Generate an n-point symmetric window. `kaiser_beta` is only used for
/// WindowType::kKaiser.
RVec make_window(WindowType type, std::size_t n, double kaiser_beta = 8.6);

/// Kaiser beta giving approximately `atten_db` of sidelobe attenuation
/// (standard Kaiser design formula).
double kaiser_beta_for_attenuation(double atten_db);

/// Number of taps a Kaiser-window FIR needs for `atten_db` stopband
/// attenuation and `transition_norm` transition width (fraction of the
/// sample rate). Always returns an odd count >= 3.
std::size_t kaiser_length(double atten_db, double transition_norm);

}  // namespace wlansim::dsp
