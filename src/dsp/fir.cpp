#include "dsp/fir.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/kernels.h"
#include "dsp/mathutil.h"

namespace wlansim::dsp {

namespace {

void check_design(std::size_t taps, double cutoff_norm) {
  if (taps < 3 || taps % 2 == 0)
    throw std::invalid_argument("FIR design: taps must be odd and >= 3");
  if (cutoff_norm <= 0.0 || cutoff_norm >= 0.5)
    throw std::invalid_argument("FIR design: cutoff must be in (0, 0.5)");
}

}  // namespace

RVec design_lowpass_fir(std::size_t taps, double cutoff_norm, WindowType window,
                        double kaiser_beta) {
  check_design(taps, cutoff_norm);
  const RVec w = make_window(window, taps, kaiser_beta);
  RVec h(taps);
  const double m = (static_cast<double>(taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - m;
    h[i] = 2.0 * cutoff_norm * sinc(2.0 * cutoff_norm * t) * w[i];
    sum += h[i];
  }
  // Normalize to unity DC gain.
  for (double& v : h) v /= sum;
  return h;
}

RVec design_highpass_fir(std::size_t taps, double cutoff_norm, WindowType window,
                         double kaiser_beta) {
  RVec h = design_lowpass_fir(taps, cutoff_norm, window, kaiser_beta);
  // Spectral inversion: delta[n - m] - lowpass.
  for (double& v : h) v = -v;
  h[(taps - 1) / 2] += 1.0;
  return h;
}

RVec design_bandpass_fir(std::size_t taps, double lo_norm, double hi_norm,
                         WindowType window, double kaiser_beta) {
  if (lo_norm >= hi_norm)
    throw std::invalid_argument("FIR design: bandpass needs lo < hi");
  const RVec hl = design_lowpass_fir(taps, hi_norm, window, kaiser_beta);
  const RVec hs = design_lowpass_fir(taps, lo_norm, window, kaiser_beta);
  RVec h(taps);
  for (std::size_t i = 0; i < taps; ++i) h[i] = hl[i] - hs[i];
  return h;
}

RVec design_kaiser_lowpass(double cutoff_norm, double transition_norm,
                           double atten_db) {
  const std::size_t taps = kaiser_length(atten_db, transition_norm);
  const double beta = kaiser_beta_for_attenuation(atten_db);
  return design_lowpass_fir(taps, cutoff_norm, WindowType::kKaiser, beta);
}

FirFilter::FirFilter(RVec taps) : taps_(std::move(taps)), pos_(0) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
}

Cplx FirFilter::step(Cplx in) {
  const std::size_t n = taps_.size();
  pos_ = (pos_ == 0) ? n - 1 : pos_ - 1;
  delay_[pos_] = delay_[pos_ + n] = in;
  // delay_[pos_ + k] is the k-th most recent sample: contiguous window,
  // taps ascending — the same summation order as a circular delay line.
  const Cplx* w = delay_.data() + pos_;
  double re = 0.0, im = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    re += taps_[k] * w[k].real();
    im += taps_[k] * w[k].imag();
  }
  return {re, im};
}

CVec FirFilter::process(std::span<const Cplx> in) {
  CVec out(in.size());
  process_into(in, out);
  return out;
}

void FirFilter::process_into(std::span<const Cplx> in, std::span<Cplx> out) {
  // Same per-sample arithmetic as step(), block-wise on the kernel layer.
  pos_ = kernels::fir_stream(taps_.data(), taps_.size(), delay_.data(), pos_,
                             in.data(), in.size(), out.data());
}

void FirFilter::process_decim_into(std::span<const Cplx> in, std::size_t decim,
                                   std::span<Cplx> out) {
  pos_ = kernels::fir_stream_decim(taps_.data(), taps_.size(), delay_.data(),
                                   pos_, in.data(), in.size(), decim,
                                   out.data());
}

void FirFilter::reset() {
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
  pos_ = 0;
}

Cplx FirFilter::response(double f_norm) const {
  Cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const double ang = -kTwoPi * f_norm * static_cast<double>(k);
    acc += taps_[k] * Cplx{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

CFirFilter::CFirFilter(CVec taps) : taps_(std::move(taps)), pos_(0) {
  if (taps_.empty()) throw std::invalid_argument("CFirFilter: empty taps");
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
}

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's tree vectorizer turns the four-chain complex dot product below
// into shuffle-heavy SSE2 (unpck/movhpd per element plus accumulator
// spills) that runs ~2x slower than the scalar chains; keep it scalar.
__attribute__((optimize("no-tree-vectorize")))
#endif
Cplx CFirFilter::step(Cplx in) {
  const std::size_t n = taps_.size();
  pos_ = (pos_ == 0) ? n - 1 : pos_ - 1;
  delay_[pos_] = delay_[pos_ + n] = in;
  const Cplx* w = delay_.data() + pos_;
  const Cplx* t = taps_.data();
  // Four stride-4 partial chains per rail, combined as (a0+a1)+(a2+a3):
  // a single loop-carried accumulator pair serializes the 61-tap black-box
  // filter on one add latency per tap, which dominates the surrogate's
  // runtime. The chain structure is fixed (step and process_into agree bit
  // for bit), not a build-dependent reassociation.
  double re[4] = {0.0, 0.0, 0.0, 0.0};
  double im[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      const double tr = t[k + l].real(), ti = t[k + l].imag();
      const double xr = w[k + l].real(), xi = w[k + l].imag();
      re[l] += tr * xr - ti * xi;
      im[l] += tr * xi + ti * xr;
    }
  }
  for (; k < n; ++k) {
    const double tr = t[k].real(), ti = t[k].imag();
    const double xr = w[k].real(), xi = w[k].imag();
    re[0] += tr * xr - ti * xi;
    im[0] += tr * xi + ti * xr;
  }
  return {(re[0] + re[1]) + (re[2] + re[3]),
          (im[0] + im[1]) + (im[2] + im[3])};
}

CVec CFirFilter::process(std::span<const Cplx> in) {
  CVec out(in.size());
  process_into(in, out);
  return out;
}

void CFirFilter::build_ols() {
  const std::size_t n = taps_.size();
  // Smallest power of two giving a valid-block length of at least ~7x the
  // overlap: FFT cost per output sample is flat across nearby sizes, so
  // just keep the overlap fraction small.
  std::size_t fft_n = 64;
  while (fft_n < 8 * n) fft_n *= 2;
  ols_n_ = fft_n;
  ols_l_ = fft_n - (n - 1);
  CVec padded(fft_n, Cplx{0.0, 0.0});
  std::copy(taps_.begin(), taps_.end(), padded.begin());
  ols_h_ = fft_plan(fft_n).forward(std::span<const Cplx>(padded));
  ols_x_.assign(fft_n, Cplx{0.0, 0.0});
  ols_f_.assign(fft_n, Cplx{0.0, 0.0});
  ols_y_.assign(fft_n, Cplx{0.0, 0.0});
}

void CFirFilter::process_into(std::span<const Cplx> in, std::span<Cplx> out) {
  const std::size_t n = taps_.size();
  const std::size_t m = in.size();
  if (m < 8 * n) {  // short call: direct evaluation is cheaper than FFTs
    for (std::size_t i = 0; i < m; ++i) out[i] = step(in[i]);
    return;
  }
  if (ols_n_ == 0) build_ols();
  const std::size_t ov = n - 1;
  const Fft& plan = fft_plan(ols_n_);
  // Seed the staging history with the delay line in chronological order
  // (w[0] is the newest sample), so the block path continues the stream.
  const Cplx* w = delay_.data() + pos_;
  for (std::size_t k = 0; k < ov; ++k) ols_x_[k] = w[ov - 1 - k];
  std::size_t done = 0;
  while (done < m) {
    const std::size_t take = std::min(ols_l_, m - done);
    // Copy this block's inputs into staging before writing any of its
    // outputs: with out aliasing in, previously written outputs all lie
    // strictly below in[done].
    std::copy(in.begin() + done, in.begin() + done + take,
              ols_x_.begin() + ov);
    std::fill(ols_x_.begin() + ov + take, ols_x_.end(), Cplx{0.0, 0.0});
    plan.forward(ols_x_, ols_f_);
    for (std::size_t k = 0; k < ols_n_; ++k) ols_f_[k] *= ols_h_[k];
    plan.inverse(ols_f_, ols_y_);
    // Circular wrap-around only contaminates the first ov outputs; the
    // next `take` are the exact linear convolution for this block.
    std::copy(ols_y_.begin() + ov, ols_y_.begin() + ov + take,
              out.begin() + done);
    // Slide: the last ov filled staging samples become the next history.
    std::copy(ols_x_.begin() + take, ols_x_.begin() + take + ov,
              ols_x_.begin());
    done += take;
  }
  // Leave the delay line as a sample-by-sample run would (m >= n here):
  // the ov most recent inputs, newest first, mirrored for the doubled
  // layout. Slot n-1 is never read before the next step() overwrites it.
  // Read them from staging, not `in`, which may alias the outputs.
  pos_ = 0;
  for (std::size_t k = 0; k < ov; ++k)
    delay_[k] = delay_[k + n] = ols_x_[ov - 1 - k];
  delay_[ov] = delay_[ov + n] = Cplx{0.0, 0.0};
}

void CFirFilter::reset() {
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
  pos_ = 0;
}

Cplx CFirFilter::response(double f_norm) const {
  Cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const double ang = -kTwoPi * f_norm * static_cast<double>(k);
    acc += taps_[k] * Cplx{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

CVec filter_aligned(const RVec& taps, std::span<const Cplx> in) {
  FirFilter f(taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  CVec out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const Cplx y = f.step(in[i]);
    if (i >= delay) out.push_back(y);
  }
  // Flush: feed zeros to recover the last `delay` aligned outputs.
  for (std::size_t i = 0; i < delay; ++i) out.push_back(f.step(Cplx{0.0, 0.0}));
  return out;
}

}  // namespace wlansim::dsp
