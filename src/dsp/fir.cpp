#include "dsp/fir.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"

namespace wlansim::dsp {

namespace {

void check_design(std::size_t taps, double cutoff_norm) {
  if (taps < 3 || taps % 2 == 0)
    throw std::invalid_argument("FIR design: taps must be odd and >= 3");
  if (cutoff_norm <= 0.0 || cutoff_norm >= 0.5)
    throw std::invalid_argument("FIR design: cutoff must be in (0, 0.5)");
}

}  // namespace

RVec design_lowpass_fir(std::size_t taps, double cutoff_norm, WindowType window,
                        double kaiser_beta) {
  check_design(taps, cutoff_norm);
  const RVec w = make_window(window, taps, kaiser_beta);
  RVec h(taps);
  const double m = (static_cast<double>(taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - m;
    h[i] = 2.0 * cutoff_norm * sinc(2.0 * cutoff_norm * t) * w[i];
    sum += h[i];
  }
  // Normalize to unity DC gain.
  for (double& v : h) v /= sum;
  return h;
}

RVec design_highpass_fir(std::size_t taps, double cutoff_norm, WindowType window,
                         double kaiser_beta) {
  RVec h = design_lowpass_fir(taps, cutoff_norm, window, kaiser_beta);
  // Spectral inversion: delta[n - m] - lowpass.
  for (double& v : h) v = -v;
  h[(taps - 1) / 2] += 1.0;
  return h;
}

RVec design_bandpass_fir(std::size_t taps, double lo_norm, double hi_norm,
                         WindowType window, double kaiser_beta) {
  if (lo_norm >= hi_norm)
    throw std::invalid_argument("FIR design: bandpass needs lo < hi");
  const RVec hl = design_lowpass_fir(taps, hi_norm, window, kaiser_beta);
  const RVec hs = design_lowpass_fir(taps, lo_norm, window, kaiser_beta);
  RVec h(taps);
  for (std::size_t i = 0; i < taps; ++i) h[i] = hl[i] - hs[i];
  return h;
}

RVec design_kaiser_lowpass(double cutoff_norm, double transition_norm,
                           double atten_db) {
  const std::size_t taps = kaiser_length(atten_db, transition_norm);
  const double beta = kaiser_beta_for_attenuation(atten_db);
  return design_lowpass_fir(taps, cutoff_norm, WindowType::kKaiser, beta);
}

FirFilter::FirFilter(RVec taps) : taps_(std::move(taps)), pos_(0) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
}

Cplx FirFilter::step(Cplx in) {
  const std::size_t n = taps_.size();
  pos_ = (pos_ == 0) ? n - 1 : pos_ - 1;
  delay_[pos_] = delay_[pos_ + n] = in;
  // delay_[pos_ + k] is the k-th most recent sample: contiguous window,
  // taps ascending — the same summation order as a circular delay line.
  const Cplx* w = delay_.data() + pos_;
  double re = 0.0, im = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    re += taps_[k] * w[k].real();
    im += taps_[k] * w[k].imag();
  }
  return {re, im};
}

CVec FirFilter::process(std::span<const Cplx> in) {
  CVec out(in.size());
  process_into(in, out);
  return out;
}

void FirFilter::process_into(std::span<const Cplx> in, std::span<Cplx> out) {
  // Same per-sample arithmetic as step(), block-wise on the kernel layer.
  pos_ = kernels::fir_stream(taps_.data(), taps_.size(), delay_.data(), pos_,
                             in.data(), in.size(), out.data());
}

void FirFilter::process_decim_into(std::span<const Cplx> in, std::size_t decim,
                                   std::span<Cplx> out) {
  pos_ = kernels::fir_stream_decim(taps_.data(), taps_.size(), delay_.data(),
                                   pos_, in.data(), in.size(), decim,
                                   out.data());
}

void FirFilter::reset() {
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
  pos_ = 0;
}

Cplx FirFilter::response(double f_norm) const {
  Cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const double ang = -kTwoPi * f_norm * static_cast<double>(k);
    acc += taps_[k] * Cplx{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

CFirFilter::CFirFilter(CVec taps) : taps_(std::move(taps)), pos_(0) {
  if (taps_.empty()) throw std::invalid_argument("CFirFilter: empty taps");
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
}

Cplx CFirFilter::step(Cplx in) {
  const std::size_t n = taps_.size();
  pos_ = (pos_ == 0) ? n - 1 : pos_ - 1;
  delay_[pos_] = delay_[pos_ + n] = in;
  const Cplx* w = delay_.data() + pos_;
  double re = 0.0, im = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double tr = taps_[k].real(), ti = taps_[k].imag();
    const double xr = w[k].real(), xi = w[k].imag();
    re += tr * xr - ti * xi;
    im += tr * xi + ti * xr;
  }
  return {re, im};
}

CVec CFirFilter::process(std::span<const Cplx> in) {
  CVec out(in.size());
  process_into(in, out);
  return out;
}

void CFirFilter::process_into(std::span<const Cplx> in, std::span<Cplx> out) {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = step(in[i]);
}

void CFirFilter::reset() {
  delay_.assign(2 * taps_.size(), Cplx{0.0, 0.0});
  pos_ = 0;
}

Cplx CFirFilter::response(double f_norm) const {
  Cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const double ang = -kTwoPi * f_norm * static_cast<double>(k);
    acc += taps_[k] * Cplx{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

CVec filter_aligned(const RVec& taps, std::span<const Cplx> in) {
  FirFilter f(taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  CVec out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const Cplx y = f.step(in[i]);
    if (i >= delay) out.push_back(y);
  }
  // Flush: feed zeros to recover the last `delay` aligned outputs.
  for (std::size_t i = 0; i < delay; ++i) out.push_back(f.step(Cplx{0.0, 0.0}));
  return out;
}

}  // namespace wlansim::dsp
