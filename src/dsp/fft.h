// Radix-2 decimation-in-time FFT with cached twiddle tables.
//
// 802.11a OFDM uses 64-point transforms; spectral measurements use up to a
// few thousand points. An iterative radix-2 kernel with per-size twiddle
// caching is sufficient and allocation-free on the hot path.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace wlansim::dsp {

/// FFT engine for one fixed power-of-two size. Reusable and cheap to copy.
class Fft {
 public:
  /// `n` must be a power of two >= 2.
  explicit Fft(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform (engineering sign convention:
  /// X[k] = sum_n x[n] e^{-j 2 pi k n / N}); `x.size()` must equal size().
  void forward(std::span<Cplx> x) const;

  /// In-place inverse transform including the 1/N factor, so that
  /// inverse(forward(x)) == x.
  void inverse(std::span<Cplx> x) const;

  /// Out-of-place convenience wrappers.
  CVec forward(std::span<const Cplx> x) const;
  CVec inverse(std::span<const Cplx> x) const;

 private:
  void transform(std::span<Cplx> x, bool inv) const;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  CVec twiddle_fwd_;  // e^{-j 2 pi k / N}, k = 0..N/2-1
};

/// One-shot FFT of any power-of-two-length signal.
CVec fft(std::span<const Cplx> x);

/// One-shot inverse FFT (includes 1/N).
CVec ifft(std::span<const Cplx> x);

/// Rotate a spectrum so DC is centered (bin N/2), matching analyzer plots.
CVec fftshift(std::span<const Cplx> x);

/// fftshift for real vectors (e.g. PSD arrays).
RVec fftshift(std::span<const double> x);

}  // namespace wlansim::dsp
