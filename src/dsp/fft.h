// Radix-2 decimation-in-time FFT with cached twiddle tables.
//
// 802.11a OFDM uses 64-point transforms; spectral measurements use up to a
// few thousand points. An iterative radix-2 kernel with per-size twiddle
// caching is sufficient and allocation-free on the hot path.
//
// Hot-path design notes:
//  * forward and inverse twiddles are both precomputed, so the butterfly
//    inner loop carries no direction branch and no per-butterfly conj;
//  * the out-of-place transforms copy the input in bit-reversed order,
//    which removes the separate in-place permutation pass — this is the
//    plan the per-symbol OFDM (de)modulator uses;
//  * `fft()`/`ifft()` draw their engine from a process-wide plan cache
//    keyed by size instead of rebuilding twiddle tables per call.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace wlansim::dsp {

/// FFT engine for one fixed power-of-two size. Reusable and cheap to copy.
class Fft {
 public:
  /// `n` must be a power of two >= 2.
  explicit Fft(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform (engineering sign convention:
  /// X[k] = sum_n x[n] e^{-j 2 pi k n / N}); `x.size()` must equal size().
  void forward(std::span<Cplx> x) const;

  /// In-place inverse transform including the 1/N factor, so that
  /// inverse(forward(x)) == x.
  void inverse(std::span<Cplx> x) const;

  /// Out-of-place transforms into a caller-provided buffer (`out` must not
  /// alias `in`; both sized size()). The input copy happens in bit-reversed
  /// order, skipping the in-place permutation pass — the fastest plan for
  /// repeated fixed-size transforms. Allocation-free.
  void forward(std::span<const Cplx> in, std::span<Cplx> out) const;
  void inverse(std::span<const Cplx> in, std::span<Cplx> out) const;

  /// Out-of-place convenience wrappers.
  CVec forward(std::span<const Cplx> x) const;
  CVec inverse(std::span<const Cplx> x) const;

  /// Batched out-of-place transforms: `m` stacked size()-point transforms
  /// through one twiddle walk (kernels::fft_butterflies_batch). Row r
  /// reads in[r*in_stride .. r*in_stride+size()) and writes the contiguous
  /// row out[r*size() ..). Each row's result is bit-identical to the
  /// single-row forward()/inverse() — batching amortizes dispatch and
  /// keeps the symbol matrix cache-resident, it never reassociates a
  /// butterfly. `in_stride >= size()` lets callers lift symbol windows
  /// straight out of a longer signal (e.g. 80-sample OFDM symbol spacing)
  /// without a gather pass. `out` must not alias `in`. Allocation-free.
  void forward_batch(const Cplx* in, std::size_t in_stride, Cplx* out,
                     std::size_t m) const;
  void inverse_batch(const Cplx* in, std::size_t in_stride, Cplx* out,
                     std::size_t m) const;

 private:
  // Raw pointers, not span/vector refs: g++ -O2 keeps reloading a
  // vector-reference's data pointer in the inner loop (~1.8x slower).
  void butterflies(Cplx* x, const Cplx* twiddle) const;
  void scatter_bitrev(std::span<const Cplx> in, std::span<Cplx> out) const;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  CVec twiddle_fwd_;  // e^{-j 2 pi k / N}, k = 0..N/2-1
  CVec twiddle_inv_;  // conj(twiddle_fwd_), hoisted out of the inner loop
};

/// Process-wide plan cache: the shared engine for size `n` (power of two
/// >= 2). Thread-safe; the returned reference lives for the process.
const Fft& fft_plan(std::size_t n);

/// One-shot FFT of any power-of-two-length signal (plan-cached).
CVec fft(std::span<const Cplx> x);

/// One-shot inverse FFT (includes 1/N; plan-cached).
CVec ifft(std::span<const Cplx> x);

/// Rotate a spectrum so DC is centered (bin N/2), matching analyzer plots.
CVec fftshift(std::span<const Cplx> x);

/// fftshift for real vectors (e.g. PSD arrays).
RVec fftshift(std::span<const double> x);

}  // namespace wlansim::dsp
