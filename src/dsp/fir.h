// FIR filter design (windowed-sinc) and streaming FIR filtering.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"
#include "dsp/window.h"

namespace wlansim::dsp {

/// Lowpass FIR taps via windowed sinc. `cutoff_norm` is the -6 dB cutoff as
/// a fraction of the sample rate (0 < cutoff_norm < 0.5). `taps` must be odd.
RVec design_lowpass_fir(std::size_t taps, double cutoff_norm,
                        WindowType window = WindowType::kHamming,
                        double kaiser_beta = 8.6);

/// Highpass FIR taps (spectral inversion of the lowpass). `taps` must be odd.
RVec design_highpass_fir(std::size_t taps, double cutoff_norm,
                         WindowType window = WindowType::kHamming,
                         double kaiser_beta = 8.6);

/// Bandpass FIR taps between `lo_norm` and `hi_norm` (fractions of fs).
RVec design_bandpass_fir(std::size_t taps, double lo_norm, double hi_norm,
                         WindowType window = WindowType::kHamming,
                         double kaiser_beta = 8.6);

/// Kaiser-designed lowpass meeting `atten_db` stopband attenuation with the
/// given transition width (fraction of fs). Tap count chosen automatically.
RVec design_kaiser_lowpass(double cutoff_norm, double transition_norm,
                           double atten_db);

/// Streaming FIR filter over complex samples with real taps. Keeps state
/// across process() calls so a long signal can be filtered in chunks.
///
/// The delay line is stored twice back to back so the newest-to-oldest
/// window is always contiguous: no modulo in the inner loop and the
/// compiler can vectorize the dot product. Summation order matches the
/// classic circular implementation (taps ascending, samples newest first),
/// so results are bit-identical to it.
class FirFilter {
 public:
  explicit FirFilter(RVec taps);

  std::size_t num_taps() const { return taps_.size(); }
  const RVec& taps() const { return taps_; }

  /// Group delay in samples ((taps-1)/2 for the symmetric designs above).
  double group_delay() const {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

  /// Filter one sample.
  Cplx step(Cplx in);

  /// Filter a block; output has the same length (streaming convolution).
  CVec process(std::span<const Cplx> in);

  /// Filter a block into a caller-provided buffer (`out.size()` must equal
  /// `in.size()`; `out` may alias `in` for in-place use). Allocation-free.
  void process_into(std::span<const Cplx> in, std::span<Cplx> out);

  /// Filter a block but evaluate only every `decim`-th output (input phase
  /// 0), writing ceil(in.size()/decim) samples to `out`. The delay line
  /// advances for every input, so the kept outputs are bit-identical to
  /// step()-ing each sample and keeping indices i % decim == 0.
  void process_decim_into(std::span<const Cplx> in, std::size_t decim,
                          std::span<Cplx> out);

  /// Clear the delay line.
  void reset();

  /// Complex frequency response at normalized frequency f (fraction of fs,
  /// may be negative).
  Cplx response(double f_norm) const;

 private:
  RVec taps_;
  CVec delay_;       // doubled delay line (size 2 * num_taps)
  std::size_t pos_;  // newest-sample index, in [0, num_taps)
};

/// Convolve then trim the tails so the output aligns with and matches the
/// input length (group delay removed). For one-shot whole-signal filtering.
CVec filter_aligned(const RVec& taps, std::span<const Cplx> in);

/// Streaming FIR with complex taps — needed for baseband-equivalent
/// responses of passband systems, which are not conjugate-symmetric.
class CFirFilter {
 public:
  explicit CFirFilter(CVec taps);

  std::size_t num_taps() const { return taps_.size(); }
  const CVec& taps() const { return taps_; }

  Cplx step(Cplx in);
  CVec process(std::span<const Cplx> in);

  /// Filter a block into a caller-provided buffer (`out.size()` must equal
  /// `in.size()`; `out` may alias `in`). Allocation-free once the
  /// convolution work buffers are warm.
  ///
  /// Buffers much longer than the tap count are evaluated by FFT
  /// overlap-save block convolution (the direct complex dot costs ~8
  /// scalar flops per tap per sample; the black-box surrogate's 61-tap
  /// linear part dominates its runtime otherwise). The result is the same
  /// filter to within FFT rounding (~1e-15 relative), but unlike step(),
  /// the exact floating-point values depend on how the stream is split
  /// into calls. The delay line is kept consistent, so mixing step() and
  /// block calls is fine.
  void process_into(std::span<const Cplx> in, std::span<Cplx> out);

  void reset();

  /// Complex frequency response at normalized frequency f (may be
  /// negative).
  Cplx response(double f_norm) const;

 private:
  void build_ols();  // lazily set up the overlap-save engine

  CVec taps_;
  CVec delay_;       // doubled delay line (size 2 * num_taps)
  std::size_t pos_;  // newest-sample index, in [0, num_taps)

  // Overlap-save state, built on the first long process_into() call.
  std::size_t ols_n_ = 0;  // FFT size (0 until built)
  std::size_t ols_l_ = 0;  // new samples per block (= ols_n_ - taps + 1)
  CVec ols_h_;             // FFT of the zero-padded taps
  CVec ols_x_;             // staging: [taps-1 history | <= ols_l_ new]
  CVec ols_f_;             // frequency-domain work buffer
  CVec ols_y_;             // time-domain block output
};

}  // namespace wlansim::dsp
