#include "dsp/window.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::dsp {

RVec make_window(WindowType type, std::size_t n, double kaiser_beta) {
  if (n == 0) throw std::invalid_argument("make_window: n must be >= 1");
  RVec w(n, 1.0);
  if (n == 1) return w;
  const double m = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / m;  // 0..1
    switch (type) {
      case WindowType::kRect:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2 * kTwoPi * x);
        break;
      case WindowType::kKaiser: {
        const double r = 2.0 * x - 1.0;  // -1..1
        w[i] = bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - r * r))) /
               bessel_i0(kaiser_beta);
        break;
      }
    }
  }
  return w;
}

double kaiser_beta_for_attenuation(double atten_db) {
  if (atten_db > 50.0) return 0.1102 * (atten_db - 8.7);
  if (atten_db >= 21.0)
    return 0.5842 * std::pow(atten_db - 21.0, 0.4) + 0.07886 * (atten_db - 21.0);
  return 0.0;
}

std::size_t kaiser_length(double atten_db, double transition_norm) {
  if (transition_norm <= 0.0)
    throw std::invalid_argument("kaiser_length: transition width must be > 0");
  const double n = (atten_db - 7.95) / (2.285 * kTwoPi * transition_norm) + 1.0;
  auto taps = static_cast<std::size_t>(std::ceil(std::max(3.0, n)));
  if (taps % 2 == 0) ++taps;  // odd length -> integer group delay
  return taps;
}

}  // namespace wlansim::dsp
