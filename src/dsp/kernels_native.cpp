// Wide kernel path: the exact loop bodies of kernels_impl.inc rebuilt with
// -march=native -mno-fma -mno-avx512vl -ffp-contract=off -fopenmp-simd
// (see src/dsp/CMakeLists.txt). Contraction stays off — including gcc's
// complex-multiply vfmaddsub idiom, which fuses past -ffp-contract=off
// unless FMA and AVX512VL are both disabled — and the loops carry their
// reduction order explicitly, so this TU is componentwise-identical to the
// scalar reference: it only gets wider registers and unrolling. Compiled
// only when -DWLANSIM_NATIVE=ON; selected at runtime when cpu_supported()
// says the host has every ISA extension this TU was built for.
#include "dsp/kernels.h"

#include <cmath>
#include <cstdint>

namespace wlansim::dsp::kernels::native {

#include "dsp/kernels_impl.inc"

bool cpu_supported() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
#ifdef __AVX512F__
  if (!__builtin_cpu_supports("avx512f")) return false;
#endif
#ifdef __AVX2__
  if (!__builtin_cpu_supports("avx2")) return false;
#endif
#ifdef __FMA__
  if (!__builtin_cpu_supports("fma")) return false;
#endif
#ifdef __AVX__
  if (!__builtin_cpu_supports("avx")) return false;
#endif
#ifdef __SSE4_2__
  if (!__builtin_cpu_supports("sse4.2")) return false;
#endif
#endif
  return true;
}

}  // namespace wlansim::dsp::kernels::native
