// Flat-array compute kernels for the oversampled hot path.
//
// Every kernel exists twice: `kernels::ref::X` is the scalar reference
// (always compiled, plain loops, the semantic definition), and `kernels::X`
// is the runtime-dispatched entry the hot path calls. In the default build
// the dispatched entry *is* the scalar reference. With -DWLANSIM_NATIVE=ON
// a second translation unit compiles the identical loop bodies with
// -march=native -ffp-contract=off -fopenmp-simd; it is selected at startup
// only when the running CPU supports every ISA extension that TU was built
// with. Because the wide build keeps FP contraction off and every kernel
// either is element-wise or carries its reduction order in its contract
// (fixed 4-lane chains, sequential FIR dots), the dispatched results are
// componentwise-identical to the scalar reference in both builds —
// tests/dsp/test_kernels.cpp asserts exact equality.
//
// Layout rules: kernels take raw pointers + lengths (never vector/span
// references — the optimizer re-loads spans' data pointers through the
// reference on every iteration), and any per-sample parameter stream
// (e.g. the mixer's LO phase) is a separate flat double array (SoA), not
// an array of structs.
#pragma once

#include <cstddef>
#include <string>

#include "dsp/types.h"

namespace wlansim::dsp::kernels {

/// Static impairment parameters for the mixer kernels (see rf::Mixer:
/// the kernels reproduce its per-sample arithmetic exactly, including
/// association order).
struct MixParams {
  double gain = 1.0;       ///< linear conversion gain
  double image_amp = 0.0;  ///< relative image amplitude (0 = perfect IR)
  double iq_eps = 1.0;     ///< Q-rail gain ratio
  double iq_sin = 0.0;     ///< sin(quadrature phase error)
  double iq_cos = 1.0;     ///< cos(quadrature phase error)
  bool iq_active = false;  ///< apply the I/Q imbalance stage
  Cplx dc{0.0, 0.0};       ///< additive DC offset (always added)
};

// ---- scalar reference ------------------------------------------------------
namespace ref {

/// Mix with a constant LO phasor: y = g*x*lo [+ ia*g*conj(x*lo)] [IQ] + dc.
/// In-place safe (out may alias in).
void mix_const_lo(const Cplx* in, std::size_t n, Cplx lo, const MixParams& p,
                  Cplx* out);

/// Mix with a per-sample LO phase (radians): lo[i] = exp(j*phase[i]).
void mix_phase(const Cplx* in, const double* phase, std::size_t n,
               const MixParams& p, Cplx* out);

/// Streaming FIR over a doubled delay line (dsp::FirFilter layout:
/// delay[pos..pos+ntaps) is the window, newest first, taps ascending, split
/// real/imag accumulation chains). Processes m samples, returns the updated
/// write position. In-place safe.
std::size_t fir_stream(const double* taps, std::size_t ntaps, Cplx* delay,
                       std::size_t pos, const Cplx* in, std::size_t m,
                       Cplx* out);

/// fir_stream that evaluates the dot product only every `decim`-th input
/// (phase 0), writing ceil(m/decim) outputs. The delay line is updated for
/// every input, so the kept outputs are bit-identical to fir_stream's.
std::size_t fir_stream_decim(const double* taps, std::size_t ntaps,
                             Cplx* delay, std::size_t pos, const Cplx* in,
                             std::size_t m, std::size_t decim, Cplx* out);

/// Polyphase zero-stuffed interpolation: identical (including the summation
/// order of the nonzero terms) to streaming `taps` over the sequence
/// z[j*os] = scale*src[j], z elsewhere 0, with a zero-initialized filter —
/// skipping only the structurally-zero products. Writes nout samples; src
/// positions beyond nsrc are the zero flush tail.
void fir_interp(const double* taps, std::size_t ntaps, std::size_t os,
                const Cplx* src, std::size_t nsrc, double scale, Cplx* out,
                std::size_t nout);

/// `rows` stacked n-point radix-2 DIT transforms (row-major, contiguous,
/// already bit-reverse permuted) pushed through one twiddle walk. Each row
/// is bit-identical to a single dsp::Fft butterfly pass: rows are
/// independent, so the row/stage loop interchange cannot reorder any
/// row's arithmetic. Backs Fft::forward_batch / inverse_batch.
void fft_butterflies_batch(Cplx* x, std::size_t rows, std::size_t n,
                           const Cplx* twiddle);

/// Complex-tap truncated convolution (the fading tapped-delay line):
/// out[i] = sum_{k<=min(ntaps-1,i)} taps[k]*in[i-k], ascending-k split
/// re/im chains, componentwise identical to the std::complex loop. `out`
/// must not alias `in`.
void cfir_conv(const Cplx* taps, std::size_t ntaps, const Cplx* in,
               std::size_t n, Cplx* out);

/// sum |x[i]|^2 over four fixed stride-4 partial chains, combined as
/// (a0+a1)+(a2+a3). The chain structure is part of the contract.
double power_sum(const Cplx* x, std::size_t n);

/// err += sum |rx-ref|^2, ref_pow += sum |ref|^2 (same 4-lane chains).
void evm_accum(const Cplx* rx, const Cplx* ref, std::size_t n, double* err,
               double* ref_pow);

/// Cross-correlation: *re/*im = sum x[k]*conj(ref[k]) over four fixed
/// stride-4 lane chains combined as (a0+a1)+(a2+a3); the chain structure is
/// part of the contract. Used by the long-training fine-timing search.
void xcorr_accum(const Cplx* x, const Cplx* ref, std::size_t n, double* re,
                 double* im);

/// LLR / weight scaling: x[i] *= s.
void scale(double* x, std::size_t n, double s);

/// Noise replay: a[i] += Cplx{s*units[2i], s*units[2i+1]} — the arithmetic
/// of adding Rng::cgaussian draws whose unit normals were cached.
void add_scaled_pairs(Cplx* a, std::size_t n, double s, const double* units);

/// Per-rail mid-tread quantizer with rail clamp (the rf::Adc hot loop):
/// each rail v becomes clamp(round(v*inv_step)*step, -fs, fs) where round
/// is std::round (half away from zero), computed arithmetically so the
/// loop stays call-free — bit-identical to the std::round/std::clamp form
/// for every input, including ties, ±0, rails and infinities. In-place
/// safe.
void quantize_clamp(const Cplx* in, std::size_t n, double inv_step,
                    double step, double fs, Cplx* out);

// ---- width-W packet-lane kernels (SoA, sample-major / packet-minor) --------
//
// The batched packet engine (core::PacketBatch) runs W same-config packets
// in lockstep through one flat buffer: sample i occupies one 2*nl-double
// row [re lane 0..nl-1][im lane 0..nl-1]. Lanes never mix arithmetically —
// every lane kernel performs, per lane, the exact operation sequence of the
// scalar block it replaces (same products, same association order, libm
// calls kept scalar per lane), so lane l of a batch is bit-identical to the
// single-packet path by construction. nl == kLaneWidth hits the fixed-width
// fast instantiation; any other nl takes the runtime-width body (same
// arithmetic).

/// Scatter an AoS packet into lane `lane` of the SoA buffer.
void lanes_pack(const Cplx* src, std::size_t n, std::size_t nl,
                std::size_t lane, double* soa);

/// Gather lane `lane` back to AoS.
void lanes_unpack(const double* soa, std::size_t n, std::size_t nl,
                  std::size_t lane, Cplx* dst);

/// Gather every `decim`-th sample (phase 0) of lane `lane` — the raw ADC
/// decimation of the direct packet path. Writes ceil(n/decim) samples.
void lanes_unpack_decim(const double* soa, std::size_t n, std::size_t nl,
                        std::size_t lane, std::size_t decim, Cplx* dst);

/// add_scaled_pairs into one lane: row i of lane `lane` gains
/// {s*units[2i], s*units[2i+1]} — the AWGN / front-end noise add.
void lanes_add_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                            std::size_t lane, double s, const double* units);

/// Write (s0*units[2i])*s1 / (s0*units[2i+1])*s1 into lane `lane` (the
/// flicker drive: cgaussian(1)*drive decomposes into exactly these two
/// multiplies per rail).
void lanes_write_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                              std::size_t lane, double s0, double s1,
                              const double* units);

/// All-lane fusion of lanes_add_scaled_pairs: one row-major pass adds
/// {s*units[l][2i], s*units[l][2i+1]} to every lane l < nl. Each element
/// op is the same single multiply-add as the per-lane kernel (elements are
/// independent, so iteration order cannot change bits) — the fusion only
/// replaces nl strided passes over the SoA buffer with one.
void lanes_add_scaled_pairs_multi(double* soa, std::size_t n, std::size_t nl,
                                  double s, const double* const* units);

/// All-lane fusion of lanes_write_scaled_pairs (same contract as the
/// _multi add: identical per-element arithmetic, one pass).
void lanes_write_scaled_pairs_multi(double* soa, std::size_t n,
                                    std::size_t nl, double s0, double s1,
                                    const double* const* units);

/// dst[j] += src[j] over `count` doubles (flicker noise merge).
void lanes_add(double* dst, const double* src, std::size_t count);

/// One biquad section (direct form II transposed, real coefficients) over
/// all 2*nl rails at once. `state` holds 4*nl doubles: s1 row (2*nl) then
/// s2 row (2*nl). Per rail the recurrence is y = b0*x + s1;
/// s1 = (b1*x - a1*y) + s2; s2 = b2*x - a2*y — the exact association of
/// dsp::Biquad::step on std::complex rails.
void lanes_biquad(double* soa, std::size_t n, std::size_t nl, double b0,
                  double b1, double b2, double a1, double a2, double* state);

/// Unity-LO mixer over all lanes in place (the default receiver chain's
/// mixers: no LO offset, no phase noise, phase 0). Per lane the arithmetic
/// of detail::mix_unity_lo_t, including the image and IQ stages.
void lanes_mix_unity_lo(double* soa, std::size_t n, std::size_t nl,
                        const MixParams& p);

/// Rapp p == 2 envelope compression over all lanes in place: per lane
/// n2 = re*re + im*im, r2 = (lin_gain2*n2)*inv_vsat2,
/// g = lin_gain/sqrt(sqrt(1 + r2*r2)), rails *= g — the exact arithmetic
/// of rf::Amplifier's norm-domain fast path.
void lanes_amp_rapp_p2(double* soa, std::size_t n, std::size_t nl,
                       double lin_gain, double lin_gain2, double inv_vsat2);

/// FIR decimation of lane `lane` from zero-initial state: out[t] =
/// sum_k taps[k] * x[t*decim - k] (x == 0 before the buffer), ascending-k
/// split re/im chains — bit-identical to dsp::FirFilter::reset() +
/// process_decim_into on the unpacked lane. Writes ceil(n/decim) samples.
void lanes_fir_decim(const double* soa, std::size_t n, std::size_t nl,
                     std::size_t lane, const double* taps, std::size_t ntaps,
                     std::size_t decim, Cplx* out);

}  // namespace ref

// ---- runtime-dispatched entries (same signatures, same results) ------------
void mix_const_lo(const Cplx* in, std::size_t n, Cplx lo, const MixParams& p,
                  Cplx* out);
void mix_phase(const Cplx* in, const double* phase, std::size_t n,
               const MixParams& p, Cplx* out);
std::size_t fir_stream(const double* taps, std::size_t ntaps, Cplx* delay,
                       std::size_t pos, const Cplx* in, std::size_t m,
                       Cplx* out);
std::size_t fir_stream_decim(const double* taps, std::size_t ntaps,
                             Cplx* delay, std::size_t pos, const Cplx* in,
                             std::size_t m, std::size_t decim, Cplx* out);
void fir_interp(const double* taps, std::size_t ntaps, std::size_t os,
                const Cplx* src, std::size_t nsrc, double scale, Cplx* out,
                std::size_t nout);
void fft_butterflies_batch(Cplx* x, std::size_t rows, std::size_t n,
                           const Cplx* twiddle);
void cfir_conv(const Cplx* taps, std::size_t ntaps, const Cplx* in,
               std::size_t n, Cplx* out);
double power_sum(const Cplx* x, std::size_t n);
void evm_accum(const Cplx* rx, const Cplx* ref, std::size_t n, double* err,
               double* ref_pow);
void xcorr_accum(const Cplx* x, const Cplx* ref, std::size_t n, double* re,
                 double* im);
void scale(double* x, std::size_t n, double s);
void add_scaled_pairs(Cplx* a, std::size_t n, double s, const double* units);
void quantize_clamp(const Cplx* in, std::size_t n, double inv_step,
                    double step, double fs, Cplx* out);

/// Default batch width of the packet-lane kernels: one 8-packet scheduling
/// quantum per wave, and a row of 2*8 doubles == 128 B == two cache lines.
inline constexpr std::size_t kLaneWidth = 8;

void lanes_pack(const Cplx* src, std::size_t n, std::size_t nl,
                std::size_t lane, double* soa);
void lanes_unpack(const double* soa, std::size_t n, std::size_t nl,
                  std::size_t lane, Cplx* dst);
void lanes_unpack_decim(const double* soa, std::size_t n, std::size_t nl,
                        std::size_t lane, std::size_t decim, Cplx* dst);
void lanes_add_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                            std::size_t lane, double s, const double* units);
void lanes_write_scaled_pairs(double* soa, std::size_t n, std::size_t nl,
                              std::size_t lane, double s0, double s1,
                              const double* units);
void lanes_add_scaled_pairs_multi(double* soa, std::size_t n, std::size_t nl,
                                  double s, const double* const* units);
void lanes_write_scaled_pairs_multi(double* soa, std::size_t n,
                                    std::size_t nl, double s0, double s1,
                                    const double* const* units);
void lanes_add(double* dst, const double* src, std::size_t count);
void lanes_biquad(double* soa, std::size_t n, std::size_t nl, double b0,
                  double b1, double b2, double a1, double a2, double* state);
void lanes_mix_unity_lo(double* soa, std::size_t n, std::size_t nl,
                        const MixParams& p);
void lanes_amp_rapp_p2(double* soa, std::size_t n, std::size_t nl,
                       double lin_gain, double lin_gain2, double inv_vsat2);
void lanes_fir_decim(const double* soa, std::size_t n, std::size_t nl,
                     std::size_t lane, const double* taps, std::size_t ntaps,
                     std::size_t decim, Cplx* out);

/// "scalar" or "native" — which implementation the dispatched entries call.
/// WLANSIM_KERNELS=scalar in the environment forces the scalar path.
const char* active_path();

/// One-line description of the dispatched implementation, e.g.
/// "native (lane width 8)". Set WLANSIM_LOG_DISPATCH=1 to print the full
/// per-kernel dispatch table (target + batch width) to stderr the first
/// time any dispatched kernel runs.
std::string impl_name();

}  // namespace wlansim::dsp::kernels
