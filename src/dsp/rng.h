// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component (noise sources, channels, data sources) takes an
// explicit Rng so that a whole link run is reproducible from a single seed,
// and so that parameter sweeps can use common random numbers across points.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "dsp/types.h"

namespace wlansim::dsp {

/// Seedable random source wrapping a 64-bit Mersenne Twister.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  /// Re-seed; the stream restarts deterministically.
  void seed(std::uint64_t s) {
    gen_.seed(s);
    normal_.reset();
  }

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal (mean 0, variance 1). Defined inline: the front-end
  /// noise sources draw per oversampled sample, and an out-of-line call
  /// here (plus the nested gaussian()/cgaussian() calls) is measurable on
  /// the packet hot path. Same engine, same persistent distribution object
  /// — the stream is unchanged.
  double gaussian() { return normal_(gen_); }

  /// Normal with the given standard deviation.
  double gaussian(double sigma) { return sigma * gaussian(); }

  /// Circularly-symmetric complex Gaussian with total variance
  /// E|x|^2 == variance (variance/2 per rail).
  Cplx cgaussian(double variance) {
    const double s = std::sqrt(variance / 2.0);
    return {gaussian(s), gaussian(s)};
  }

  /// A single fair random bit.
  bool bit();

  /// Fill a byte buffer with random bytes.
  void bytes(std::uint8_t* dst, std::size_t n);

  /// Derive an independent child generator (for giving each block its own
  /// stream while keeping the whole run a function of one master seed).
  Rng fork();

  /// Direct access for std:: distributions.
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  // Persistent so the pair the polar method produces per round trip is not
  // thrown away: constructing a fresh distribution per draw (the obvious
  // one-liner) doubles the cost of every noise sample, and the front-end
  // noise draws dominate the packet hot path.
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace wlansim::dsp
