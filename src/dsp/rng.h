// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component (noise sources, channels, data sources) takes an
// explicit Rng so that a whole link run is reproducible from a single seed,
// and so that parameter sweeps can use common random numbers across points.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "dsp/types.h"

namespace wlansim::dsp {

/// MT19937-64 with block regeneration: the twist recomputes all 312 state
/// words at once (branchless matrix-A select) and tempers them into an
/// output buffer in a second, auto-vectorizable pass, so a draw in steady
/// state is a load + increment instead of libstdc++'s per-call twist
/// bookkeeping (~4x on the raw stream). The output sequence is mandated by
/// the C++ standard [rand.predef], so it is bit-identical to
/// std::mt19937_64 — and tests/dsp/test_window_rng.cpp pins that equality
/// against the host libstdc++ directly, because the memoized-TX replay and
/// graph-vs-direct equivalence tests depend on the noise stream never
/// moving.
class Mt19937_64 {
 public:
  using result_type = std::uint64_t;

  explicit Mt19937_64(std::uint64_t s = 5489u) { seed(s); }

  void seed(std::uint64_t s) {
    state_[0] = s;
    for (std::size_t i = 1; i < kN; ++i) {
      state_[i] =
          6364136223846793005ull * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
    }
    idx_ = kN;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    if (idx_ >= kN) regen();
    return out_[idx_++];
  }

  /// Copy the next n raw draws into dst — the exact sequence n successive
  /// operator() calls would return, served as memcpy spans of the tempered
  /// block. Lets bulk consumers (Rng::fill_gaussian) amortize the per-draw
  /// index bookkeeping away.
  void block(std::uint64_t* dst, std::size_t n);

 private:
  static constexpr std::size_t kN = 312;
  static constexpr std::size_t kM = 156;

  void regen();  // twist + temper the whole block (rng.cpp)

  std::uint64_t state_[kN];
  std::uint64_t out_[kN];  // tempered, ready-to-serve values
  std::size_t idx_ = kN;
};

/// Seedable random source wrapping a 64-bit Mersenne Twister.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  /// Re-seed; the stream restarts deterministically.
  void seed(std::uint64_t s) {
    gen_.seed(s);
    saved_available_ = false;
  }

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal (mean 0, variance 1). The polar (Marsaglia) rejection
  /// method, replicating libstdc++'s std::normal_distribution<double>
  /// draw-for-draw: identical canonical-uniform conversion, identical
  /// rejection test, identical save-the-second-value pairing — so the
  /// noise stream is bit-identical to what the std distribution produced,
  /// while running on the faster block engine above. Inline because the
  /// front-end noise sources draw per oversampled sample.
  double gaussian() {
    if (saved_available_) {
      saved_available_ = false;
      return saved_;
    }
    double x, y, r2;
    do {
      x = 2.0 * canonical_() - 1.0;
      y = 2.0 * canonical_() - 1.0;
      r2 = x * x + y * y;
    } while (r2 > 1.0 || r2 == 0.0);
    const double mult = std::sqrt(-2.0 * std::log(r2) / r2);
    saved_ = x * mult;
    saved_available_ = true;
    return y * mult;
  }

  /// Normal with the given standard deviation.
  double gaussian(double sigma) { return sigma * gaussian(); }

  /// Fill dst with n standard-normal draws: the exact same stream as n
  /// successive gaussian() calls (including the carried half-pair at the
  /// boundaries), but restructured into engine-block-sized straight-line
  /// passes with a branch-free accept compaction, so the per-draw cost is
  /// the log/sqrt math rather than rejection-loop mispredicts. The bulk
  /// noise loops (AWGN fill, LNA/mixer additive noise tiles) use this.
  void fill_gaussian(double* dst, std::size_t n);

  /// Circularly-symmetric complex Gaussian with total variance
  /// E|x|^2 == variance (variance/2 per rail).
  Cplx cgaussian(double variance) {
    const double s = std::sqrt(variance / 2.0);
    return {gaussian(s), gaussian(s)};
  }

  /// A single fair random bit.
  bool bit();

  /// Fill a byte buffer with random bytes.
  void bytes(std::uint8_t* dst, std::size_t n);

  /// Derive an independent child generator (for giving each block its own
  /// stream while keeping the whole run a function of one master seed).
  Rng fork();

  /// Direct access for std:: distributions.
  Mt19937_64& engine() { return gen_; }

 private:
  // libstdc++'s generate_canonical<double, 53> over a 64-bit engine: one
  // raw draw scaled by 2^-64 (an exact operation), clamped below 1.0 the
  // same way the library does.
  //
  // The halves form hi*2^-32 + lo*2^-64 is bit-identical to
  // double(raw)*2^-64: both scalings are exact (32-bit integers convert
  // exactly, powers of two scale exactly), so the one rounded operation is
  // the sum — which rounds the exact value raw*2^-64 once, just as the
  // int64->double conversion rounds raw once before its exact scaling.
  // Unlike double(uint64), it compiles branch-free: the sign-test branch
  // gcc emits for the unsigned conversion mispredicts half the time on
  // random draws and dominates the canonical cost.
  static double to_canonical_(std::uint64_t raw) {
    const double hi = static_cast<double>(static_cast<std::uint32_t>(raw >> 32));
    const double lo = static_cast<double>(static_cast<std::uint32_t>(raw));
    double r = hi * 0x1p-32 + lo * 0x1p-64;
    if (r >= 1.0) r = 0x1.fffffffffffffp-1;
    return r;
  }

  double canonical_() { return to_canonical_(gen_()); }

  Mt19937_64 gen_;
  // The second value of each polar pair, carried across calls exactly like
  // std::normal_distribution's _M_saved so the stream pairing is preserved.
  double saved_ = 0.0;
  bool saved_available_ = false;
};

}  // namespace wlansim::dsp
