#include "dsp/mathutil.h"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.h"

namespace wlansim::dsp {

double to_db(double ratio) { return 10.0 * std::log10(ratio); }

double from_db(double db) { return std::pow(10.0, db / 10.0); }

double watts_to_dbm(double watts) { return 10.0 * std::log10(watts * 1e3); }

double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

double mean_power(std::span<const Cplx> x) {
  if (x.empty()) return 0.0;
  return kernels::power_sum(x.data(), x.size()) /
         static_cast<double>(x.size());
}

double mean_power_real(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc / static_cast<double>(x.size());
}

double rms(std::span<const Cplx> x) { return std::sqrt(mean_power(x)); }

void set_mean_power(std::span<Cplx> x, double target_watts) {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const double g = std::sqrt(target_watts / p);
  for (Cplx& v : x) v *= g;
}

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

std::size_t next_pow2(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

double bessel_i0(double x) {
  // Power series: I0(x) = sum_k ((x/2)^k / k!)^2. Converges quickly for the
  // argument range Kaiser windows use (|x| < ~30).
  const double half = x / 2.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= half / k;
    const double t2 = term * term;
    sum += t2;
    if (t2 < sum * 1e-17) break;
  }
  return sum;
}

double wrap_phase(double phi) {
  phi = std::fmod(phi + kPi, kTwoPi);
  if (phi <= 0.0) phi += kTwoPi;
  return phi - kPi;
}

}  // namespace wlansim::dsp
