// IIR filtering: biquad cascades with classic analog-prototype designs
// (Butterworth, Chebyshev type I) mapped through the bilinear transform.
//
// These model the channel-selection and DC-blocking filters of the RF
// receiver chain. Chebyshev-I lowpass is the paper's Fig. 5 subject
// ("impact of the chebyshev filter bandwidth to the BER").
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace wlansim::dsp {

/// Second-order section with real coefficients, direct form II transposed.
/// Filters complex samples (applied independently to I and Q).
struct Biquad {
  // y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  Cplx s1{0.0, 0.0}, s2{0.0, 0.0};  // state

  Cplx step(Cplx x);
  void reset() { s1 = s2 = Cplx{0.0, 0.0}; }

  /// Complex response at normalized frequency f (fraction of fs).
  Cplx response(double f_norm) const;
};

/// Cascade of biquads with an overall scalar gain.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  BiquadCascade(std::vector<Biquad> sections, double gain)
      : sections_(std::move(sections)), gain_(gain) {}

  std::size_t num_sections() const { return sections_.size(); }
  double gain() const { return gain_; }
  /// Coefficient access for the width-W packet-lane path, which runs the
  /// same sections over SoA rails with external per-lane state.
  const std::vector<Biquad>& sections() const { return sections_; }

  Cplx step(Cplx x);
  CVec process(std::span<const Cplx> in);

  /// Filter a block into a caller-provided buffer (`out.size()` must equal
  /// `in.size()`; `out` may alias `in`). Allocation-free.
  void process_into(std::span<const Cplx> in, std::span<Cplx> out);

  void reset();

  Cplx response(double f_norm) const;

 private:
  std::vector<Biquad> sections_;
  double gain_ = 1.0;
};

/// Butterworth lowpass: `order` poles, -3 dB at `cutoff_norm` (fraction of
/// fs, in (0, 0.5)).
BiquadCascade design_butterworth_lowpass(std::size_t order, double cutoff_norm);

/// Butterworth highpass, -3 dB at `cutoff_norm`.
BiquadCascade design_butterworth_highpass(std::size_t order, double cutoff_norm);

/// Chebyshev type-I lowpass with `ripple_db` passband ripple; the passband
/// edge (where the response first leaves the ripple band) is `edge_norm`.
BiquadCascade design_chebyshev1_lowpass(std::size_t order, double ripple_db,
                                        double edge_norm);

/// Chebyshev type-I highpass with passband edge `edge_norm`.
BiquadCascade design_chebyshev1_highpass(std::size_t order, double ripple_db,
                                         double edge_norm);

}  // namespace wlansim::dsp
