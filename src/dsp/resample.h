// Integer-factor resampling with anti-alias/anti-image FIR filtering.
//
// The 802.11a baseband runs at 20 Msps; the RF front-end model runs
// oversampled (typically 4x = 80 Msps) so that adjacent channels at
// +/-20 MHz are representable. These helpers move signals between rates.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace wlansim::dsp {

/// Upsample by an integer factor: zero-stuff then image-reject lowpass.
/// Output length is factor * input length; amplitude is preserved.
CVec upsample(std::span<const Cplx> in, std::size_t factor,
              double atten_db = 60.0);

/// Downsample by an integer factor: anti-alias lowpass then decimate.
/// Output length is input length / factor (floor).
CVec downsample(std::span<const Cplx> in, std::size_t factor,
                double atten_db = 60.0);

/// Caller-provided-output variants of the above. `out` is resized to the
/// result length; once its capacity is warm these perform no heap
/// allocation (the anti-alias taps and filter state come from per-thread
/// caches keyed by (factor, atten_db)). Results are bit-identical to the
/// returning versions.
void upsample_into(std::span<const Cplx> in, std::size_t factor, CVec& out,
                   double atten_db = 60.0);
void downsample_into(std::span<const Cplx> in, std::size_t factor, CVec& out,
                     double atten_db = 60.0);

/// The shared anti-alias/anti-image lowpass used by the resamplers for a
/// given factor (process-wide cache; the reference lives for the process).
const RVec& resampling_taps(std::size_t factor, double atten_db = 60.0);

/// Frequency-shift a signal by `freq_norm` cycles/sample (fraction of fs):
/// y[n] = x[n] * exp(j 2 pi freq_norm (n + phase0/2pi...)). `start_phase`
/// is the oscillator phase at the first sample, in radians.
CVec frequency_shift(std::span<const Cplx> in, double freq_norm,
                     double start_phase = 0.0);

/// Arbitrary-ratio resampling by cubic (Catmull-Rom) interpolation:
/// output sample k is the input evaluated at t = k / ratio. Used to move
/// between unrelated rates (e.g. the 11 Mchip/s DSSS modem into an
/// 80 Msps RF scene) and to model sampling-clock offset (ratio = 1 + ppm).
/// The input must be adequately oversampled relative to its bandwidth —
/// cubic interpolation adds no anti-alias filtering. Output length is
/// floor((in.size() - 3) * ratio).
CVec fractional_resample(std::span<const Cplx> in, double ratio);

}  // namespace wlansim::dsp
