#include "dsp/iir.h"

#include <cmath>
#include <stdexcept>

#include "dsp/mathutil.h"

namespace wlansim::dsp {

Cplx Biquad::step(Cplx x) {
  // Direct form II transposed.
  const Cplx y = b0 * x + s1;
  s1 = b1 * x - a1 * y + s2;
  s2 = b2 * x - a2 * y;
  return y;
}

Cplx Biquad::response(double f_norm) const {
  const double w = kTwoPi * f_norm;
  const Cplx z1{std::cos(-w), std::sin(-w)};  // z^-1
  const Cplx z2 = z1 * z1;
  return (b0 + b1 * z1 + b2 * z2) / (1.0 + a1 * z1 + a2 * z2);
}

Cplx BiquadCascade::step(Cplx x) {
  Cplx y = gain_ * x;
  for (Biquad& s : sections_) y = s.step(y);
  return y;
}

CVec BiquadCascade::process(std::span<const Cplx> in) {
  CVec out(in.size());
  process_into(in, out);
  return out;
}

void BiquadCascade::process_into(std::span<const Cplx> in,
                                 std::span<Cplx> out) {
  // Stage-outer: each section streams over the whole block with its state
  // and coefficients in registers, instead of walking the section vector
  // per sample. Values are identical to the step() form — every sample
  // still passes through the stages in the same order with the same
  // recurrence; only the iteration order over (sample, stage) changes, and
  // no arithmetic is reassociated.
  const std::size_t n = in.size();
  const Cplx* src = in.data();  // may alias dst (in-place is allowed)
  Cplx* dst = out.data();
  const double g = gain_;
  for (std::size_t i = 0; i < n; ++i) dst[i] = g * src[i];
  for (Biquad& s : sections_) {
    const double b0 = s.b0, b1 = s.b1, b2 = s.b2, a1 = s.a1, a2 = s.a2;
    Cplx s1 = s.s1, s2 = s.s2;
    for (std::size_t i = 0; i < n; ++i) {
      const Cplx x = dst[i];
      const Cplx y = b0 * x + s1;
      s1 = b1 * x - a1 * y + s2;
      s2 = b2 * x - a2 * y;
      dst[i] = y;
    }
    s.s1 = s1;
    s.s2 = s2;
  }
}

void BiquadCascade::reset() {
  for (Biquad& s : sections_) s.reset();
}

Cplx BiquadCascade::response(double f_norm) const {
  Cplx h{gain_, 0.0};
  for (const Biquad& s : sections_) h *= s.response(f_norm);
  return h;
}

namespace {

void check_cutoff(std::size_t order, double cutoff_norm) {
  if (order == 0) throw std::invalid_argument("IIR design: order must be >= 1");
  if (cutoff_norm <= 0.0 || cutoff_norm >= 0.5)
    throw std::invalid_argument("IIR design: cutoff must be in (0, 0.5)");
}

/// Normalized (cutoff 1 rad/s) Butterworth prototype poles, left half plane.
std::vector<Cplx> butterworth_poles(std::size_t order) {
  std::vector<Cplx> p;
  p.reserve(order);
  for (std::size_t k = 0; k < order; ++k) {
    const double theta = kPi / 2.0 + kPi * (2.0 * static_cast<double>(k) + 1.0) /
                                         (2.0 * static_cast<double>(order));
    p.emplace_back(std::cos(theta), std::sin(theta));
  }
  return p;
}

/// Chebyshev-I prototype poles (passband edge at 1 rad/s) and the gain of
/// the prototype at the reference frequency (DC): 1/sqrt(1+eps^2) for even
/// order, 1 for odd.
std::vector<Cplx> chebyshev1_poles(std::size_t order, double ripple_db,
                                   double* ref_gain) {
  const double eps = std::sqrt(std::pow(10.0, ripple_db / 10.0) - 1.0);
  const double mu = std::asinh(1.0 / eps) / static_cast<double>(order);
  std::vector<Cplx> p;
  p.reserve(order);
  for (std::size_t k = 0; k < order; ++k) {
    const double theta = kPi * (2.0 * static_cast<double>(k) + 1.0) /
                         (2.0 * static_cast<double>(order));
    // Poles on an ellipse: -sinh(mu) sin(theta) + j cosh(mu) cos(theta).
    p.emplace_back(-std::sinh(mu) * std::sin(theta),
                   std::cosh(mu) * std::cos(theta));
  }
  *ref_gain = (order % 2 == 0) ? 1.0 / std::sqrt(1.0 + eps * eps) : 1.0;
  return p;
}

/// Map analog prototype poles (cutoff 1 rad/s) to a digital biquad cascade
/// via LP->LP (or LP->HP) frequency transform and the bilinear transform.
/// `ref_gain` is the desired magnitude at DC (lowpass) or Nyquist (highpass).
BiquadCascade realize(const std::vector<Cplx>& proto_poles, double cutoff_norm,
                      bool highpass, double ref_gain) {
  // Prewarp the cutoff for the bilinear transform with fs = 1.
  const double wc = 2.0 * std::tan(kPi * cutoff_norm);
  const double fs2 = 2.0;  // 2 * fs

  std::vector<Cplx> poles;
  poles.reserve(proto_poles.size());
  for (const Cplx& p : proto_poles)
    poles.push_back(highpass ? wc / p : p * wc);

  // The prototype generators emit poles so that index k and index n-1-k are
  // conjugates; pair them from both ends. An odd order leaves one real pole.
  std::vector<Biquad> sections;
  std::size_t lo = 0, hi = poles.size();
  while (hi - lo >= 2) {
    const Cplx p = poles[lo];
    const Cplx zp = (fs2 + p) / (fs2 - p);  // bilinear-mapped z-pole
    Biquad s;
    s.a1 = -2.0 * zp.real();
    s.a2 = std::norm(zp);
    if (highpass) {
      s.b0 = 1.0; s.b1 = -2.0; s.b2 = 1.0;  // zeros at z = +1
    } else {
      s.b0 = 1.0; s.b1 = 2.0; s.b2 = 1.0;   // zeros at z = -1
    }
    sections.push_back(s);
    ++lo;
    --hi;
  }
  if (hi - lo == 1) {
    const Cplx p = poles[lo];
    const double zp = ((fs2 + p) / (fs2 - p)).real();
    Biquad s;
    s.a1 = -zp;
    s.a2 = 0.0;
    s.b0 = 1.0;
    s.b1 = highpass ? -1.0 : 1.0;
    s.b2 = 0.0;
    sections.push_back(s);
  }

  const BiquadCascade unity(sections, 1.0);
  const double fref = highpass ? 0.5 : 0.0;
  const double mag = std::abs(unity.response(fref));
  if (mag <= 0.0) throw std::runtime_error("IIR design: degenerate response");
  return BiquadCascade(std::move(sections), ref_gain / mag);
}

}  // namespace

BiquadCascade design_butterworth_lowpass(std::size_t order, double cutoff_norm) {
  check_cutoff(order, cutoff_norm);
  return realize(butterworth_poles(order), cutoff_norm, /*highpass=*/false, 1.0);
}

BiquadCascade design_butterworth_highpass(std::size_t order, double cutoff_norm) {
  check_cutoff(order, cutoff_norm);
  return realize(butterworth_poles(order), cutoff_norm, /*highpass=*/true, 1.0);
}

BiquadCascade design_chebyshev1_lowpass(std::size_t order, double ripple_db,
                                        double edge_norm) {
  check_cutoff(order, edge_norm);
  if (ripple_db <= 0.0)
    throw std::invalid_argument("Chebyshev design: ripple must be > 0 dB");
  double ref_gain = 1.0;
  const auto poles = chebyshev1_poles(order, ripple_db, &ref_gain);
  return realize(poles, edge_norm, /*highpass=*/false, ref_gain);
}

BiquadCascade design_chebyshev1_highpass(std::size_t order, double ripple_db,
                                         double edge_norm) {
  check_cutoff(order, edge_norm);
  if (ripple_db <= 0.0)
    throw std::invalid_argument("Chebyshev design: ripple must be > 0 dB");
  double ref_gain = 1.0;
  const auto poles = chebyshev1_poles(order, ripple_db, &ref_gain);
  return realize(poles, edge_norm, /*highpass=*/true, ref_gain);
}

}  // namespace wlansim::dsp
