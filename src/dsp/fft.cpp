#include "dsp/fft.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "dsp/kernels.h"
#include "dsp/mathutil.h"

namespace wlansim::dsp {

Fft::Fft(std::size_t n) : n_(n) {
  if (!is_pow2(n) || n < 2)
    throw std::invalid_argument("Fft: size must be a power of two >= 2");
  bitrev_.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    bitrev_[i] = r;
  }
  twiddle_fwd_.resize(n / 2);
  twiddle_inv_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = {std::cos(ang), std::sin(ang)};
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }
}

void Fft::butterflies(Cplx* __restrict x, const Cplx* __restrict twiddle) const {
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n_ / len;
    for (std::size_t base = 0; base < n_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Cplx w = twiddle[k * step];
        const Cplx u = x[base + k];
        const Cplx v = x[base + k + half] * w;
        x[base + k] = u + v;
        x[base + k + half] = u - v;
      }
    }
  }
}

void Fft::scatter_bitrev(std::span<const Cplx> in, std::span<Cplx> out) const {
  const Cplx* __restrict src = in.data();
  Cplx* __restrict dst = out.data();
  const std::size_t* __restrict rev = bitrev_.data();
  for (std::size_t i = 0; i < n_; ++i) dst[i] = src[rev[i]];
}

void Fft::forward(std::span<Cplx> x) const {
  if (x.size() != n_) throw std::invalid_argument("Fft: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (j > i) std::swap(x[i], x[j]);
  }
  butterflies(x.data(), twiddle_fwd_.data());
}

void Fft::inverse(std::span<Cplx> x) const {
  if (x.size() != n_) throw std::invalid_argument("Fft: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (j > i) std::swap(x[i], x[j]);
  }
  butterflies(x.data(), twiddle_inv_.data());
  const double s = 1.0 / static_cast<double>(n_);
  for (Cplx& v : x) v *= s;
}

void Fft::forward(std::span<const Cplx> in, std::span<Cplx> out) const {
  if (in.size() != n_ || out.size() != n_)
    throw std::invalid_argument("Fft: size mismatch");
  scatter_bitrev(in, out);
  butterflies(out.data(), twiddle_fwd_.data());
}

void Fft::inverse(std::span<const Cplx> in, std::span<Cplx> out) const {
  if (in.size() != n_ || out.size() != n_)
    throw std::invalid_argument("Fft: size mismatch");
  scatter_bitrev(in, out);
  butterflies(out.data(), twiddle_inv_.data());
  const double s = 1.0 / static_cast<double>(n_);
  for (Cplx& v : out) v *= s;
}

void Fft::forward_batch(const Cplx* in, std::size_t in_stride, Cplx* out,
                        std::size_t m) const {
  if (in_stride < n_)
    throw std::invalid_argument("Fft: batch stride below size");
  const std::size_t* __restrict rev = bitrev_.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Cplx* __restrict src = in + r * in_stride;
    Cplx* __restrict dst = out + r * n_;
    for (std::size_t i = 0; i < n_; ++i) dst[i] = src[rev[i]];
  }
  kernels::fft_butterflies_batch(out, m, n_, twiddle_fwd_.data());
}

void Fft::inverse_batch(const Cplx* in, std::size_t in_stride, Cplx* out,
                        std::size_t m) const {
  if (in_stride < n_)
    throw std::invalid_argument("Fft: batch stride below size");
  const std::size_t* __restrict rev = bitrev_.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Cplx* __restrict src = in + r * in_stride;
    Cplx* __restrict dst = out + r * n_;
    for (std::size_t i = 0; i < n_; ++i) dst[i] = src[rev[i]];
  }
  kernels::fft_butterflies_batch(out, m, n_, twiddle_inv_.data());
  const double s = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < m * n_; ++i) out[i] *= s;
}

CVec Fft::forward(std::span<const Cplx> x) const {
  CVec out(n_);
  forward(x, std::span<Cplx>(out));
  return out;
}

CVec Fft::inverse(std::span<const Cplx> x) const {
  CVec out(n_);
  inverse(x, std::span<Cplx>(out));
  return out;
}

const Fft& fft_plan(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<Fft>>* cache =
      new std::map<std::size_t, std::unique_ptr<Fft>>();  // leaked: immortal
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(n);
  if (it == cache->end())
    it = cache->emplace(n, std::make_unique<Fft>(n)).first;
  return *it->second;
}

CVec fft(std::span<const Cplx> x) { return fft_plan(x.size()).forward(x); }
CVec ifft(std::span<const Cplx> x) { return fft_plan(x.size()).inverse(x); }

CVec fftshift(std::span<const Cplx> x) {
  CVec out(x.size());
  const std::size_t h = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[(i + h) % x.size()];
  return out;
}

RVec fftshift(std::span<const double> x) {
  RVec out(x.size());
  const std::size_t h = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[(i + h) % x.size()];
  return out;
}

}  // namespace wlansim::dsp
