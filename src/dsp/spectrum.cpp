#include "dsp/spectrum.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/mathutil.h"

namespace wlansim::dsp {

double PsdEstimate::dbm_at(double f_norm) const {
  if (power.empty()) throw std::logic_error("PsdEstimate: empty");
  std::size_t best = 0;
  double bestd = 1e300;
  for (std::size_t i = 0; i < freq_norm.size(); ++i) {
    const double d = std::abs(freq_norm[i] - f_norm);
    if (d < bestd) {
      bestd = d;
      best = i;
    }
  }
  return watts_to_dbm(std::max(power[best], 1e-30));
}

double PsdEstimate::band_power(double f_center_norm, double bw_norm) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    if (std::abs(freq_norm[i] - f_center_norm) <= bw_norm / 2.0)
      acc += power[i];
  }
  return acc;
}

PsdEstimate welch_psd(std::span<const Cplx> x, const WelchConfig& cfg) {
  if (!is_pow2(cfg.nfft) || cfg.nfft < 8)
    throw std::invalid_argument("welch_psd: nfft must be a power of two >= 8");
  if (cfg.overlap < 0.0 || cfg.overlap >= 1.0)
    throw std::invalid_argument("welch_psd: overlap must be in [0, 1)");
  if (x.size() < cfg.nfft)
    throw std::invalid_argument("welch_psd: signal shorter than nfft");

  const std::size_t n = cfg.nfft;
  const std::size_t hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround((1.0 - cfg.overlap) * n)));
  const RVec w = make_window(cfg.window, n);
  double wpow = 0.0;
  for (double v : w) wpow += v * v;
  wpow /= static_cast<double>(n);

  const Fft engine(n);
  RVec acc(n, 0.0);
  std::size_t segments = 0;
  CVec seg(n);
  for (std::size_t start = 0; start + n <= x.size(); start += hop) {
    for (std::size_t i = 0; i < n; ++i) seg[i] = x[start + i] * w[i];
    engine.forward(std::span<Cplx>(seg));
    for (std::size_t i = 0; i < n; ++i) acc[i] += std::norm(seg[i]);
    ++segments;
  }
  // Normalize so that the bin powers sum to the mean signal power:
  // periodogram |X[k]|^2 / N^2, corrected for the window's power loss.
  const double scale =
      1.0 / (static_cast<double>(segments) * static_cast<double>(n) *
             static_cast<double>(n) * wpow);
  for (double& v : acc) v *= scale;

  PsdEstimate out;
  out.power = fftshift(std::span<const double>(acc));
  out.freq_norm.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.freq_norm[i] =
        (static_cast<double>(i) - static_cast<double>(n / 2)) / static_cast<double>(n);
  }
  return out;
}

}  // namespace wlansim::dsp
