#include "dsp/resample.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fir.h"
#include "dsp/mathutil.h"

namespace wlansim::dsp {

namespace {

RVec resampling_filter(std::size_t factor, double atten_db) {
  // Cut at half the original Nyquist band in the high-rate domain, with a
  // transition band that keeps tap counts moderate.
  const double cutoff = 0.5 / static_cast<double>(factor);
  const double transition = 0.25 * cutoff;
  return design_kaiser_lowpass(cutoff - transition / 2.0, transition, atten_db);
}

}  // namespace

CVec upsample(std::span<const Cplx> in, std::size_t factor, double atten_db) {
  if (factor == 0) throw std::invalid_argument("upsample: factor must be >= 1");
  if (factor == 1) return CVec(in.begin(), in.end());
  CVec stuffed(in.size() * factor, Cplx{0.0, 0.0});
  for (std::size_t i = 0; i < in.size(); ++i)
    stuffed[i * factor] = in[i] * static_cast<double>(factor);  // keep amplitude
  const RVec taps = resampling_filter(factor, atten_db);
  return filter_aligned(taps, stuffed);
}

CVec downsample(std::span<const Cplx> in, std::size_t factor, double atten_db) {
  if (factor == 0) throw std::invalid_argument("downsample: factor must be >= 1");
  if (factor == 1) return CVec(in.begin(), in.end());
  const RVec taps = resampling_filter(factor, atten_db);
  const CVec filtered = filter_aligned(taps, in);
  CVec out;
  out.reserve(filtered.size() / factor);
  for (std::size_t i = 0; i < filtered.size(); i += factor)
    out.push_back(filtered[i]);
  return out;
}

CVec frequency_shift(std::span<const Cplx> in, double freq_norm,
                     double start_phase) {
  CVec out(in.size());
  double phase = start_phase;
  const double dphi = kTwoPi * freq_norm;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] * Cplx{std::cos(phase), std::sin(phase)};
    phase += dphi;
    if (phase > kPi * 64.0 || phase < -kPi * 64.0) phase = wrap_phase(phase);
  }
  return out;
}

CVec fractional_resample(std::span<const Cplx> in, double ratio) {
  if (ratio <= 0.0)
    throw std::invalid_argument("fractional_resample: ratio must be > 0");
  if (in.size() < 4) return {};
  const std::size_t out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(in.size() - 3) * ratio));
  CVec out(out_len);
  for (std::size_t k = 0; k < out_len; ++k) {
    const double t = static_cast<double>(k) / ratio;
    const auto i = static_cast<std::size_t>(t);
    const double mu = t - static_cast<double>(i);
    // Catmull-Rom over the four points around t (i maps to p1).
    const Cplx p0 = in[i == 0 ? 0 : i - 1];
    const Cplx p1 = in[i];
    const Cplx p2 = in[i + 1];
    const Cplx p3 = in[i + 2];
    const double mu2 = mu * mu;
    const double mu3 = mu2 * mu;
    out[k] = 0.5 * ((2.0 * p1) + (-p0 + p2) * mu +
                    (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * mu2 +
                    (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * mu3);
  }
  return out;
}

}  // namespace wlansim::dsp
