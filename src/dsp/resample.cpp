#include "dsp/resample.h"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "dsp/fir.h"
#include "dsp/mathutil.h"

namespace wlansim::dsp {

namespace {

// Per-thread streaming filter reused across calls. reset() before each use
// makes it equivalent to a freshly constructed FirFilter.
FirFilter& cached_filter(std::size_t factor, double atten_db) {
  thread_local std::map<std::pair<std::size_t, double>, FirFilter>* filters =
      new std::map<std::pair<std::size_t, double>, FirFilter>();  // immortal
  const auto key = std::make_pair(factor, atten_db);
  auto it = filters->find(key);
  if (it == filters->end())
    it = filters->emplace(key, FirFilter(resampling_taps(factor, atten_db)))
             .first;
  it->second.reset();
  return it->second;
}

// Run `f` over the virtual input produced by `sample(j)` for j in [0, n),
// writing the group-delay-aligned output (same length n) into out.
template <typename SampleFn>
void filter_aligned_into(FirFilter& f, std::size_t n, SampleFn sample,
                         CVec& out) {
  out.resize(n);
  const std::size_t delay = (f.num_taps() - 1) / 2;
  std::size_t oi = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const Cplx y = f.step(sample(j));
    if (j >= delay) out[oi++] = y;
  }
  for (std::size_t j = 0; j < delay; ++j) out[oi++] = f.step(Cplx{0.0, 0.0});
}

}  // namespace

const RVec& resampling_taps(std::size_t factor, double atten_db) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, double>, RVec>* cache =
      new std::map<std::pair<std::size_t, double>, RVec>();  // immortal
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(factor, atten_db);
  auto it = cache->find(key);
  if (it == cache->end()) {
    // Cut at half the original Nyquist band in the high-rate domain, with a
    // transition band that keeps tap counts moderate.
    const double cutoff = 0.5 / static_cast<double>(factor);
    const double transition = 0.25 * cutoff;
    it = cache
             ->emplace(key, design_kaiser_lowpass(cutoff - transition / 2.0,
                                                  transition, atten_db))
             .first;
  }
  return it->second;
}

CVec upsample(std::span<const Cplx> in, std::size_t factor, double atten_db) {
  CVec out;
  upsample_into(in, factor, out, atten_db);
  return out;
}

void upsample_into(std::span<const Cplx> in, std::size_t factor, CVec& out,
                   double atten_db) {
  if (factor == 0) throw std::invalid_argument("upsample: factor must be >= 1");
  if (factor == 1) {
    out.assign(in.begin(), in.end());
    return;
  }
  FirFilter& f = cached_filter(factor, atten_db);
  const double scale = static_cast<double>(factor);  // keep amplitude
  filter_aligned_into(
      f, in.size() * factor,
      [&](std::size_t j) {
        return (j % factor == 0) ? in[j / factor] * scale : Cplx{0.0, 0.0};
      },
      out);
}

CVec downsample(std::span<const Cplx> in, std::size_t factor, double atten_db) {
  CVec out;
  downsample_into(in, factor, out, atten_db);
  return out;
}

void downsample_into(std::span<const Cplx> in, std::size_t factor, CVec& out,
                     double atten_db) {
  if (factor == 0)
    throw std::invalid_argument("downsample: factor must be >= 1");
  if (factor == 1) {
    out.assign(in.begin(), in.end());
    return;
  }
  FirFilter& f = cached_filter(factor, atten_db);
  // Aligned filter then keep every factor-th sample, without materializing
  // the intermediate full-rate vector.
  out.resize((in.size() + factor - 1) / factor);
  const std::size_t delay = (f.num_taps() - 1) / 2;
  std::size_t oi = 0, aligned_idx = 0;
  auto emit = [&](Cplx y) {
    if (aligned_idx % factor == 0) out[oi++] = y;
    ++aligned_idx;
  };
  for (std::size_t j = 0; j < in.size(); ++j) {
    const Cplx y = f.step(in[j]);
    if (j >= delay) emit(y);
  }
  for (std::size_t j = 0; j < delay; ++j) emit(f.step(Cplx{0.0, 0.0}));
  out.resize(oi);
}

CVec frequency_shift(std::span<const Cplx> in, double freq_norm,
                     double start_phase) {
  CVec out(in.size());
  double phase = start_phase;
  const double dphi = kTwoPi * freq_norm;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] * Cplx{std::cos(phase), std::sin(phase)};
    phase += dphi;
    if (phase > kPi * 64.0 || phase < -kPi * 64.0) phase = wrap_phase(phase);
  }
  return out;
}

CVec fractional_resample(std::span<const Cplx> in, double ratio) {
  if (ratio <= 0.0)
    throw std::invalid_argument("fractional_resample: ratio must be > 0");
  if (in.size() < 4) return {};
  const std::size_t out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(in.size() - 3) * ratio));
  CVec out(out_len);
  for (std::size_t k = 0; k < out_len; ++k) {
    const double t = static_cast<double>(k) / ratio;
    const auto i = static_cast<std::size_t>(t);
    const double mu = t - static_cast<double>(i);
    // Catmull-Rom over the four points around t (i maps to p1).
    const Cplx p0 = in[i == 0 ? 0 : i - 1];
    const Cplx p1 = in[i];
    const Cplx p2 = in[i + 1];
    const Cplx p3 = in[i + 2];
    const double mu2 = mu * mu;
    const double mu3 = mu2 * mu;
    out[k] = 0.5 * ((2.0 * p1) + (-p0 + p2) * mu +
                    (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * mu2 +
                    (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * mu3);
  }
  return out;
}

}  // namespace wlansim::dsp
