// Basic numeric types shared by every wlansim library.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

namespace wlansim::dsp {

/// Complex baseband sample. Double precision throughout: link-level BER work
/// is dominated by FFT/Viterbi cost, not by arithmetic width, and double
/// removes quantization as a confounder when measuring RF impairments.
using Cplx = std::complex<double>;

/// Contiguous complex signal buffer.
using CVec = std::vector<Cplx>;

/// Contiguous real signal buffer.
using RVec = std::vector<double>;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Boltzmann constant [J/K]; used for thermal noise floors.
inline constexpr double kBoltzmann = 1.380649e-23;

/// Reference temperature for noise-figure definitions [K].
inline constexpr double kT0 = 290.0;

}  // namespace wlansim::dsp
