// Power spectral density estimation (Welch's method) — the measurement
// behind the paper's Fig. 4 (OFDM signal with adjacent channel).
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"
#include "dsp/window.h"

namespace wlansim::dsp {

struct PsdEstimate {
  /// PSD bins in watts/bin, DC-centered (fftshifted).
  RVec power;
  /// Normalized frequency of each bin (fraction of fs, in [-0.5, 0.5)).
  RVec freq_norm;

  std::size_t size() const { return power.size(); }

  /// PSD value in dBm at the bin nearest `f_norm`.
  double dbm_at(double f_norm) const;

  /// Total power (watts) integrated over bins with |f - f_center| <= bw/2.
  double band_power(double f_center_norm, double bw_norm) const;
};

struct WelchConfig {
  std::size_t nfft = 1024;           ///< segment length (power of two)
  double overlap = 0.5;              ///< fractional overlap between segments
  WindowType window = WindowType::kHann;
};

/// Welch-averaged periodogram. Bin powers sum to the total signal power
/// (Parseval-consistent: sum(power) == mean |x|^2).
PsdEstimate welch_psd(std::span<const Cplx> x, const WelchConfig& cfg = {});

}  // namespace wlansim::dsp
