#include "dsp/rng.h"

#include <cmath>

namespace wlansim::dsp {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

bool Rng::bit() { return (gen_() & 1u) != 0; }

void Rng::bytes(std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(gen_() & 0xff);
  }
}

Rng Rng::fork() {
  // Mix the next raw draw so sibling forks are decorrelated.
  const std::uint64_t s = gen_() ^ 0x9e3779b97f4a7c15ull;
  return Rng(s);
}

}  // namespace wlansim::dsp
