#include "dsp/rng.h"

#include <cmath>
#include <cstring>

namespace wlansim::dsp {

void Mt19937_64::regen() {
  constexpr std::uint64_t kMatrixA = 0xb5026f5aa96619e9ull;
  constexpr std::uint64_t kUpperMask = 0xffffffff80000000ull;
  constexpr std::uint64_t kLowerMask = 0x000000007fffffffull;
  std::uint64_t* x = state_;
  // Three ranges so x[i + kM] / x[i + kM - kN] never wraps inside a loop;
  // (-(y & 1)) & kMatrixA is the branchless conditional-xor — the data-
  // dependent branch form mispredicts half the time and dominates the
  // twist. ivdep: the only in-loop dependences are the x[i+1] anti-dep
  // (distance 1, reads precede the store in every vector shape) and the
  // x[i +/- kM] flow deps at distance >= 156, so packed-integer
  // vectorization of these integer ops is always bit-exact.
#pragma GCC ivdep
  for (std::size_t i = 0; i < kN - kM; ++i) {
    const std::uint64_t y = (x[i] & kUpperMask) | (x[i + 1] & kLowerMask);
    x[i] = x[i + kM] ^ (y >> 1) ^ ((-(y & 1ull)) & kMatrixA);
  }
#pragma GCC ivdep
  for (std::size_t i = kN - kM; i < kN - 1; ++i) {
    const std::uint64_t y = (x[i] & kUpperMask) | (x[i + 1] & kLowerMask);
    x[i] = x[i + kM - kN] ^ (y >> 1) ^ ((-(y & 1ull)) & kMatrixA);
  }
  {
    const std::uint64_t y = (x[kN - 1] & kUpperMask) | (x[0] & kLowerMask);
    x[kN - 1] = x[kM - 1] ^ (y >> 1) ^ ((-(y & 1ull)) & kMatrixA);
  }
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint64_t z = x[i];
    z ^= (z >> 29) & 0x5555555555555555ull;
    z ^= (z << 17) & 0x71d67fffeda60000ull;
    z ^= (z << 37) & 0xfff7eee000000000ull;
    z ^= z >> 43;
    out_[i] = z;
  }
  idx_ = 0;
}

void Mt19937_64::block(std::uint64_t* dst, std::size_t n) {
  while (n > 0) {
    if (idx_ >= kN) regen();
    std::size_t take = kN - idx_;
    if (take > n) take = n;
    std::memcpy(dst, out_ + idx_, take * sizeof(std::uint64_t));
    idx_ += take;
    dst += take;
    n -= take;
  }
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

bool Rng::bit() { return (gen_() & 1u) != 0; }

void Rng::bytes(std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(gen_() & 0xff);
  }
}

void Rng::fill_gaussian(double* dst, std::size_t n) {
  std::size_t i = 0;
  if (saved_available_ && i < n) {
    saved_available_ = false;
    dst[i++] = saved_;
  }
  // Block phase: pull raw draws a batch at a time and split the polar
  // method into three straight-line passes — branch-free canonical
  // conversion, branch-free accept compaction (a rejected pair is simply
  // overwritten in place, so the ~21% rejection rate never touches the
  // branch predictor), then one independent log/sqrt per surviving pair.
  // Capping each batch at the number of pairs still owed means even the
  // worst case (every candidate accepted) never draws past what the
  // classic rejection loop would consume; together with matching every FP
  // operation of that loop, the output stream and the engine position stay
  // bit-identical to it for any call size.
  constexpr std::size_t kPairs = 156;  // 2*kPairs raws == one engine block
  std::uint64_t raw[2 * kPairs];
  double cand[2 * kPairs], xs[kPairs], ys[kPairs], r2s[kPairs];
  while (n - i >= 2) {
    const std::size_t need = (n - i) / 2;
    const std::size_t p = need < kPairs ? need : kPairs;
    gen_.block(raw, 2 * p);
    for (std::size_t k = 0; k < 2 * p; ++k) {
      cand[k] = 2.0 * to_canonical_(raw[k]) - 1.0;
    }
    std::size_t a = 0;
    for (std::size_t j = 0; j < p; ++j) {
      const double x = cand[2 * j];
      const double y = cand[2 * j + 1];
      const double r2 = x * x + y * y;
      xs[a] = x;
      ys[a] = y;
      r2s[a] = r2;
      a += static_cast<std::size_t>((r2 <= 1.0) & (r2 != 0.0));
    }
    for (std::size_t j = 0; j < a; ++j) {
      const double mult = std::sqrt(-2.0 * std::log(r2s[j]) / r2s[j]);
      dst[i++] = ys[j] * mult;
      dst[i++] = xs[j] * mult;
    }
  }
  if (i < n) {
    dst[i] = gaussian();  // banks the leftover half-pair in saved_
  }
}

Rng Rng::fork() {
  // Mix the next raw draw so sibling forks are decorrelated.
  const std::uint64_t s = gen_() ^ 0x9e3779b97f4a7c15ull;
  return Rng(s);
}

}  // namespace wlansim::dsp
